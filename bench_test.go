// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation as testing.B benchmarks: each BenchmarkFigNN/TableN
// runs the corresponding experiment configuration and reports, besides the
// usual ns/op of the simulation itself, the measured OMB-Py overhead (or
// the figure's headline statistic) as a custom "us_overhead" metric so
// `go test -bench` output doubles as a reproduction record.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

// benchSizes keeps benchmark wall time reasonable while still covering the
// small/large split: the full sweeps live in cmd/ombrepro.
const (
	benchSmallMin, benchSmallMax = 1, 8 * 1024
	benchLargeMin, benchLargeMax = 16 * 1024, 256 * 1024
)

func runOrFatal(b *testing.B, opts core.Options) *stats.Series {
	b.Helper()
	opts.Iters, opts.Warmup = 20, 2
	opts.LargeIters, opts.LargeWarmup = 5, 1
	rep, err := core.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	return &rep.Series
}

// pairOverhead runs OMB and OMB-Py and reports the average overhead metric.
func pairOverhead(b *testing.B, base core.Options) {
	b.Helper()
	var overhead float64
	for i := 0; i < b.N; i++ {
		cOpts := base
		cOpts.Mode = core.ModeC
		omb := runOrFatal(b, cOpts)
		pyOpts := base
		pyOpts.Mode = core.ModePy
		if pyOpts.Buffer == pybuf.Bytearray && !pyOpts.UseGPU {
			pyOpts.Buffer = pybuf.NumPy
		}
		ombpy := runOrFatal(b, pyOpts)
		overhead = stats.AvgOverheadUs(ombpy, omb)
	}
	b.ReportMetric(overhead, "us_overhead")
}

// --- Figures 2-7: intra-node latency on the three CPU clusters ---

func benchIntra(b *testing.B, cluster string, minS, maxS int) {
	pairOverhead(b, core.Options{
		Benchmark: core.Latency, Cluster: cluster, Ranks: 2, PPN: 2,
		MinSize: minS, MaxSize: maxS,
	})
}

func BenchmarkFig02IntraLatencySmallFrontera(b *testing.B) {
	benchIntra(b, "frontera", benchSmallMin, benchSmallMax)
}
func BenchmarkFig03IntraLatencyLargeFrontera(b *testing.B) {
	benchIntra(b, "frontera", benchLargeMin, benchLargeMax)
}
func BenchmarkFig04IntraLatencySmallStampede2(b *testing.B) {
	benchIntra(b, "stampede2", benchSmallMin, benchSmallMax)
}
func BenchmarkFig05IntraLatencyLargeStampede2(b *testing.B) {
	benchIntra(b, "stampede2", benchLargeMin, benchLargeMax)
}
func BenchmarkFig06IntraLatencySmallRI2(b *testing.B) {
	benchIntra(b, "ri2", benchSmallMin, benchSmallMax)
}
func BenchmarkFig07IntraLatencyLargeRI2(b *testing.B) {
	benchIntra(b, "ri2", benchLargeMin, benchLargeMax)
}

// --- Figures 8-11: inter-node latency and bandwidth on Frontera ---

func BenchmarkFig08InterLatencySmall(b *testing.B) {
	pairOverhead(b, core.Options{
		Benchmark: core.Latency, Ranks: 2, PPN: 1,
		MinSize: benchSmallMin, MaxSize: benchSmallMax,
	})
}

func BenchmarkFig09InterLatencyLarge(b *testing.B) {
	pairOverhead(b, core.Options{
		Benchmark: core.Latency, Ranks: 2, PPN: 1,
		MinSize: benchLargeMin, MaxSize: benchLargeMax,
	})
}

func benchBandwidthGap(b *testing.B, minS, maxS int) {
	b.Helper()
	var gap float64
	for i := 0; i < b.N; i++ {
		base := core.Options{
			Benchmark: core.Bandwidth, Ranks: 2, PPN: 1,
			MinSize: minS, MaxSize: maxS,
		}
		cOpts := base
		cOpts.Mode = core.ModeC
		omb := runOrFatal(b, cOpts)
		pyOpts := base
		pyOpts.Mode = core.ModePy
		pyOpts.Buffer = pybuf.NumPy
		ombpy := runOrFatal(b, pyOpts)
		gap = stats.AvgBandwidthGapMBps(ombpy, omb)
	}
	b.ReportMetric(gap, "MBps_deficit")
}

func BenchmarkFig10InterBandwidthSmall(b *testing.B) {
	benchBandwidthGap(b, benchSmallMin, benchSmallMax)
}
func BenchmarkFig11InterBandwidthLarge(b *testing.B) {
	benchBandwidthGap(b, benchLargeMin, benchLargeMax)
}

// --- Figures 12-19: Allreduce and Allgather collectives ---

func benchCollectivePair(b *testing.B, bench core.Benchmark, ranks, ppn, minS, maxS int, timingOnly bool) {
	pairOverhead(b, core.Options{
		Benchmark: bench, Ranks: ranks, PPN: ppn,
		MinSize: minS, MaxSize: maxS, TimingOnly: timingOnly,
	})
}

func BenchmarkFig12AllreduceSmall16x1(b *testing.B) {
	benchCollectivePair(b, core.Allreduce, 16, 1, 4, benchSmallMax, false)
}
func BenchmarkFig13AllreduceLarge16x1(b *testing.B) {
	benchCollectivePair(b, core.Allreduce, 16, 1, benchLargeMin, benchLargeMax, false)
}
func BenchmarkFig14AllreduceSmallFullSub(b *testing.B) {
	benchCollectivePair(b, core.Allreduce, 896, 56, 4, 1024, true)
}
func BenchmarkFig15AllreduceLargeFullSub(b *testing.B) {
	benchCollectivePair(b, core.Allreduce, 896, 56, benchLargeMin, 32*1024, true)
}
func BenchmarkFig16AllgatherSmall16x1(b *testing.B) {
	benchCollectivePair(b, core.Allgather, 16, 1, benchSmallMin, benchSmallMax, false)
}
func BenchmarkFig17AllgatherLarge16x1(b *testing.B) {
	benchCollectivePair(b, core.Allgather, 16, 1, benchLargeMin, benchLargeMax, false)
}
func BenchmarkFig18AllgatherSmallFullSub(b *testing.B) {
	benchCollectivePair(b, core.Allgather, 896, 56, 1, 64, true)
}
func BenchmarkFig19AllgatherLargeFullSub(b *testing.B) {
	benchCollectivePair(b, core.Allgather, 896, 56, benchLargeMin, 32*1024, true)
}

// --- Figures 20-25: GPU buffers on Bridges-2 ---

func benchGPU(b *testing.B, bench core.Benchmark, lib pybuf.Library, ranks, ppn, minS, maxS int) {
	b.Helper()
	var overhead float64
	for i := 0; i < b.N; i++ {
		base := core.Options{
			Benchmark: bench, Cluster: "bridges2", Ranks: ranks, PPN: ppn,
			UseGPU: true, MinSize: minS, MaxSize: maxS,
		}
		cOpts := base
		cOpts.Mode = core.ModeC
		omb := runOrFatal(b, cOpts)
		pyOpts := base
		pyOpts.Mode = core.ModePy
		pyOpts.Buffer = lib
		ombpy := runOrFatal(b, pyOpts)
		overhead = stats.AvgOverheadUs(ombpy, omb)
	}
	b.ReportMetric(overhead, "us_overhead")
}

func BenchmarkFig20GPULatencySmall(b *testing.B) {
	for _, lib := range pybuf.GPULibraries() {
		b.Run(lib.String(), func(b *testing.B) {
			benchGPU(b, core.Latency, lib, 2, 1, 8, benchSmallMax)
		})
	}
}

func BenchmarkFig21GPULatencyLarge(b *testing.B) {
	for _, lib := range pybuf.GPULibraries() {
		b.Run(lib.String(), func(b *testing.B) {
			benchGPU(b, core.Latency, lib, 2, 1, benchLargeMin, benchLargeMax)
		})
	}
}

func BenchmarkFig22GPUAllreduceSmall(b *testing.B) {
	for _, lib := range pybuf.GPULibraries() {
		b.Run(lib.String(), func(b *testing.B) {
			benchGPU(b, core.Allreduce, lib, 16, 8, 4, benchSmallMax)
		})
	}
}

func BenchmarkFig23GPUAllreduceLarge(b *testing.B) {
	for _, lib := range pybuf.GPULibraries() {
		b.Run(lib.String(), func(b *testing.B) {
			benchGPU(b, core.Allreduce, lib, 16, 8, benchLargeMin, benchLargeMax)
		})
	}
}

func BenchmarkFig24GPUAllgatherSmall(b *testing.B) {
	for _, lib := range pybuf.GPULibraries() {
		b.Run(lib.String(), func(b *testing.B) {
			benchGPU(b, core.Allgather, lib, 16, 8, benchSmallMin, benchSmallMax)
		})
	}
}

func BenchmarkFig25GPUAllgatherLarge(b *testing.B) {
	for _, lib := range pybuf.GPULibraries() {
		b.Run(lib.String(), func(b *testing.B) {
			benchGPU(b, core.Allgather, lib, 16, 8, benchLargeMin, benchLargeMax)
		})
	}
}

// --- Figures 26-29: MVAPICH2 vs Intel MPI generality ---

func BenchmarkFig26to27IntelMPILatencyDelta(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		base := core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.NumPy,
			Ranks: 2, PPN: 1, MinSize: benchSmallMin, MaxSize: benchLargeMax,
		}
		mv := runOrFatal(b, base)
		base.Impl = netmodel.IntelMPI
		impi := runOrFatal(b, base)
		delta = stats.AvgOverheadUs(impi, mv)
	}
	b.ReportMetric(delta, "us_delta")
}

func BenchmarkFig28to29IntelMPIBandwidthDelta(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		base := core.Options{
			Benchmark: core.Bandwidth, Mode: core.ModePy, Buffer: pybuf.NumPy,
			Ranks: 2, PPN: 1, MinSize: benchSmallMin, MaxSize: benchLargeMax,
		}
		mv := runOrFatal(b, base)
		base.Impl = netmodel.IntelMPI
		impi := runOrFatal(b, base)
		gap = stats.AvgBandwidthGapMBps(impi, mv)
	}
	b.ReportMetric(gap, "MBps_deficit")
}

// --- Figures 30-33: pickle vs direct buffers ---

func benchPickle(b *testing.B, bench core.Benchmark, minS, maxS int, bandwidth bool) {
	b.Helper()
	var metric float64
	for i := 0; i < b.N; i++ {
		base := core.Options{
			Benchmark: bench, Ranks: 2, PPN: 1, Buffer: pybuf.NumPy,
			MinSize: minS, MaxSize: maxS,
		}
		direct := base
		direct.Mode = core.ModePy
		d := runOrFatal(b, direct)
		pk := base
		pk.Mode = core.ModePickle
		p := runOrFatal(b, pk)
		if bandwidth {
			metric = stats.AvgBandwidthGapMBps(p, d)
		} else {
			metric = stats.AvgOverheadUs(p, d)
		}
	}
	if bandwidth {
		b.ReportMetric(metric, "MBps_deficit")
	} else {
		b.ReportMetric(metric, "us_overhead")
	}
}

func BenchmarkFig30PickleLatencySmall(b *testing.B) {
	benchPickle(b, core.Latency, benchSmallMin, benchSmallMax, false)
}
func BenchmarkFig31PickleLatencyLarge(b *testing.B) {
	benchPickle(b, core.Latency, benchLargeMin, benchLargeMax, false)
}
func BenchmarkFig32PickleBandwidthSmall(b *testing.B) {
	benchPickle(b, core.Bandwidth, benchSmallMin, benchSmallMax, true)
}
func BenchmarkFig33PickleBandwidthLarge(b *testing.B) {
	benchPickle(b, core.Bandwidth, benchLargeMin, benchLargeMax, true)
}

// --- Tables II & III ---

// BenchmarkTable2 runs every registered benchmark once (the inventory),
// driven from the registry metadata: each spec supplies its minimum rank
// count and supported modes.
func BenchmarkTable2AllBenchmarks(b *testing.B) {
	for _, bench := range core.Benchmarks() {
		spec, err := core.LookupBenchmark(string(bench))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(bench), func(b *testing.B) {
			ranks, mode := spec.InventoryConfig()
			for i := 0; i < b.N; i++ {
				runOrFatal(b, core.Options{
					Benchmark: bench, Mode: mode, Buffer: pybuf.NumPy,
					Ranks: ranks, PPN: 2, MinSize: 8, MaxSize: 1024,
				})
			}
		})
	}
}

// BenchmarkMultiPairMessageRate runs the registry-registered mbw_mr family
// at the placements BENCH_PR5.json records (16x1 sparse, 63x7 folded) and
// reports the aggregate message rate at 8 bytes as a custom metric.
func BenchmarkMultiPairMessageRate(b *testing.B) {
	for _, shape := range [][2]int{{16, 1}, {63, 7}} {
		ranks, ppn := shape[0], shape[1]
		b.Run(fmt.Sprintf("%dx%d", ranks, ppn), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				s := runOrFatal(b, core.Options{
					Benchmark: core.MultiBWMR, Mode: core.ModeC,
					Ranks: ranks, PPN: ppn, TimingOnly: true,
					MinSize: 8, MaxSize: 8,
				})
				rate = s.Rows[0].MsgRate
			}
			b.ReportMetric(rate, "msgs/s")
		})
	}
}

// BenchmarkTable3OverheadMatrix reproduces the summary matrix rows.
func BenchmarkTable3OverheadMatrix(b *testing.B) {
	b.Run("intra_small", func(b *testing.B) { benchIntra(b, "frontera", benchSmallMin, benchSmallMax) })
	b.Run("inter_small", func(b *testing.B) {
		pairOverhead(b, core.Options{Benchmark: core.Latency, Ranks: 2, PPN: 1,
			MinSize: benchSmallMin, MaxSize: benchSmallMax})
	})
	b.Run("allreduce_small", func(b *testing.B) {
		benchCollectivePair(b, core.Allreduce, 16, 1, 4, benchSmallMax, false)
	})
	b.Run("gpu_cupy_small", func(b *testing.B) { benchGPU(b, core.Latency, pybuf.CuPy, 2, 1, 8, benchSmallMax) })
}

// --- Sweep engine ---

// sweepVariants builds an 8-variant allreduce sweep (2 algorithms x 2
// implementations x 2 modes), the shape behind the ablation figures.
func sweepVariants() core.Sweep {
	var variants []core.Variant
	for _, algo := range []string{"recursive_doubling", "rabenseifner"} {
		for _, impl := range []netmodel.Impl{netmodel.MVAPICH2, netmodel.IntelMPI} {
			for _, mode := range []core.Mode{core.ModeC, core.ModePy} {
				algo, impl, mode := algo, impl, mode
				variants = append(variants, core.Variant{
					Name: string(impl) + "/" + mode.String() + "/" + algo,
					Mutate: func(o *core.Options) {
						o.Algorithms = map[string]string{"allreduce": algo}
						o.Impl = impl
						o.Mode = mode
					},
				})
			}
		}
	}
	return core.Sweep{
		Base: core.Options{
			Benchmark: core.Allreduce, Mode: core.ModeC, Buffer: pybuf.NumPy,
			Ranks: 16, PPN: 4, MinSize: 4, MaxSize: benchLargeMax,
			Iters: 20, Warmup: 2, LargeIters: 5, LargeWarmup: 1,
		},
		Variants: variants,
	}
}

// BenchmarkSweepParallel contrasts the serial sweep with the bounded
// worker pool on the same 8-variant sweep; the speedup is the wall-clock
// ratio of the workers_1 and workers_8 ns/op numbers. Variants are
// embarrassingly parallel (each simulates an independent virtual world),
// so the ratio tracks min(workers, GOMAXPROCS) -- on a single-CPU runner
// the numbers converge instead of improving. Results are bit-identical
// regardless of the worker count, which TestSweepParallelBitIdentical
// proves.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			sw := sweepVariants()
			sw.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := sw.Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Reports) != len(sw.Variants) {
					b.Fatalf("reports: %d", len(res.Reports))
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md section 4) ---

// BenchmarkAblationEagerThreshold contrasts one-way latency just below and
// just above the inter-node rendezvous switch: the knee is the design
// choice (eager copies vs handshake) the protocol model encodes.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	for _, size := range []int{8 * 1024, 16 * 1024} {
		b.Run(stats.HumanBytes(size), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := runOrFatal(b, core.Options{
					Benchmark: core.Latency, Mode: core.ModeC, Ranks: 2, PPN: 1,
					MinSize: size, MaxSize: size,
				})
				lat = s.Rows[0].AvgUs
			}
			b.ReportMetric(lat, "us_latency")
		})
	}
}

// BenchmarkAblationAllreduceAlgo forces each Allreduce algorithm (via the
// tuning knobs) on the same 256 KiB workload: Rabenseifner's reduce-scatter
// + allgather vs whole-vector recursive doubling.
func BenchmarkAblationAllreduceAlgo(b *testing.B) {
	const size = 256 * 1024
	cases := []struct {
		name   string
		tuning mpi.Tuning
	}{
		{"rabenseifner", mpi.Tuning{AllreduceRabenseifnerMin: 1}},
		{"recdoubling", mpi.Tuning{AllreduceRabenseifnerMin: 1 << 30}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := runOrFatal(b, core.Options{
					Benchmark: core.Allreduce, Mode: core.ModeC, Ranks: 16, PPN: 1,
					MinSize: size, MaxSize: size, Tuning: c.tuning,
				})
				lat = s.Rows[0].AvgUs
			}
			b.ReportMetric(lat, "us_latency")
		})
	}
}

// BenchmarkAblationAllgatherAlgo forces each Allgather algorithm on the
// same 16-rank, 8 KiB-per-rank workload.
func BenchmarkAblationAllgatherAlgo(b *testing.B) {
	const size = 8 * 1024
	big := 1 << 30
	cases := []struct {
		name   string
		ranks  int
		tuning mpi.Tuning
	}{
		{"recdoubling", 16, mpi.Tuning{AllgatherRDMaxTotal: big}},
		{"bruck", 16, mpi.Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: big}},
		{"ring", 16, mpi.Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: -1}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := runOrFatal(b, core.Options{
					Benchmark: core.Allgather, Mode: core.ModeC, Ranks: c.ranks, PPN: 1,
					MinSize: size, MaxSize: size, Tuning: c.tuning,
				})
				lat = s.Rows[0].AvgUs
			}
			b.ReportMetric(lat, "us_latency")
		})
	}
}

// BenchmarkAblationStaging isolates the binding layer: identical schedule
// and network, with and without the Cython staging model.
func BenchmarkAblationStaging(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeC, core.ModePy} {
		b.Run(mode.String(), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := runOrFatal(b, core.Options{
					Benchmark: core.Latency, Mode: mode, Buffer: pybuf.NumPy,
					Ranks: 2, PPN: 1, MinSize: 8, MaxSize: 8,
				})
				lat = s.Rows[0].AvgUs
			}
			b.ReportMetric(lat, "us_latency")
		})
	}
}

// BenchmarkAblationPickle separates the serializer's framing cost from the
// payload copy by comparing direct, pickle-small and pickle-large.
func BenchmarkAblationPickle(b *testing.B) {
	cases := []struct {
		name string
		mode core.Mode
		size int
	}{
		{"direct_1K", core.ModePy, 1024},
		{"pickle_1K", core.ModePickle, 1024},
		{"direct_256K", core.ModePy, 256 * 1024},
		{"pickle_256K", core.ModePickle, 256 * 1024},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s := runOrFatal(b, core.Options{
					Benchmark: core.Latency, Mode: c.mode, Buffer: pybuf.NumPy,
					Ranks: 2, PPN: 1, MinSize: c.size, MaxSize: c.size,
				})
				lat = s.Rows[0].AvgUs
			}
			b.ReportMetric(lat, "us_latency")
		})
	}
}
