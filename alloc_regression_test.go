package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
)

// Steady-state allocation ceilings for the huge-world timing-only sweep.
// The PR5 baseline sat at ~437k allocations per 4096-rank run; the
// symmetry-folded engine plus the cross-world schedule/step caches brought
// a warm run to ~96k (and ~25k at 1024 ranks). The ceilings pin those
// numbers with headroom for runtime jitter, so a regression that reverts
// any single pooling layer (schedule store, step cache, arena seeds,
// per-rank slabs) trips the test long before the sweep gets slow.
var allocCeilings = []struct {
	ranks   int
	ceiling uint64
}{
	{1024, 33_000},
	{4096, 109_188}, // >=4x under the 436_752/run PR5 baseline
	// The schedfold PR's slab pools (rank/mailbox/rank-state) plus the
	// class-indexed token memo hold a warm 16Ki run to ~71k mallocs —
	// under a fifth of the 341_444/run it recorded pre-schedfold. The
	// ceiling leaves jitter headroom while still tripping if any single
	// pool stops recycling.
	{16384, 100_000},
}

func hugeWorldRun(t *testing.T, ranks int) {
	t.Helper()
	if _, err := core.Run(hugeWorldOptions(ranks, false)); err != nil {
		t.Fatal(err)
	}
}

// TestHugeWorldAllocRegression measures the malloc count of one warm
// huge-world run against the pinned ceilings. Two untimed runs first warm
// the process-wide caches (compiled step lists, recycled schedules), which
// is exactly the steady state a parameter sweep lives in.
func TestHugeWorldAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under the race detector")
	}
	if testing.Short() {
		t.Skip("huge-world run in -short mode")
	}
	for _, tc := range allocCeilings {
		t.Run(fmt.Sprint(tc.ranks), func(t *testing.T) {
			hugeWorldRun(t, tc.ranks)
			hugeWorldRun(t, tc.ranks)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			hugeWorldRun(t, tc.ranks)
			runtime.ReadMemStats(&after)
			got := after.Mallocs - before.Mallocs
			t.Logf("%d ranks: %d allocations (ceiling %d)", tc.ranks, got, tc.ceiling)
			if got > tc.ceiling {
				t.Errorf("warm %d-rank sweep made %d allocations, ceiling %d",
					tc.ranks, got, tc.ceiling)
			}
		})
	}
}
