// Command ombtune searches the collective-selection policy space with an
// ALNS/bandit auto-tuner and emits a generated per-topology tuning table
// plus a provenance report.
//
// Examples:
//
//	ombtune -seed 1 -iters 400                    # tune 16x1 and 224x56
//	ombtune -placements 16x1,63x7 -collectives allreduce,alltoall
//	ombtune -serve http://127.0.0.1:8439          # probe through ombserve
//	ombtune -table - -provenance ""               # table to stdout only
//
// The same seed and iteration budget always produce byte-identical
// outputs, at any -parallel value and against either evaluator backend;
// -budget trades that determinism for a wall-clock bound. Apply the
// result with ombpy/ombrepro -tuning-table FILE.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/serve"
	"repro/internal/tune"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "search seed; same seed + budget = byte-identical outputs")
		iters      = flag.Int("iters", 400, "iteration budget (mutations proposed)")
		budget     = flag.Duration("budget", 0, "wall-clock budget (0 = none); stopping early forfeits byte-identity")
		placements = flag.String("placements", "16x1,224x56", "comma-separated RANKSxPPN placements to tune")
		colls      = flag.String("collectives", "", "comma-separated collectives to tune (default: all)")
		cluster    = flag.String("cluster", "frontera", "cluster model")
		impl       = flag.String("impl", "mvapich2", "MPI implementation: mvapich2, intelmpi")
		minSize    = flag.Int("min", 1<<10, "smallest probe message size (power of two)")
		maxSize    = flag.Int("max", 1<<20, "largest probe message size (power of two)")
		par        = flag.Int("parallel", 0, "probe-evaluation workers for batch phases (0 = serial; the answer is identical either way)")
		serveURL   = flag.String("serve", "", "evaluate probes through an ombserve instance at this base URL instead of in process")
		tableOut   = flag.String("table", "tuning_table.json", "output file for the generated table (\"-\" = stdout, \"\" = skip)")
		provOut    = flag.String("provenance", "tuning_provenance.json", "output file for the provenance report (\"-\" = stdout, \"\" = skip)")
	)
	flag.Parse()

	pls, err := tune.ParsePlacements(*placements)
	check(err)
	mpiImpl, err := netmodel.ParseImpl(*impl)
	check(err)

	cfg := tune.Config{
		Seed:       *seed,
		Iterations: *iters,
		Budget:     *budget,
		Placements: pls,
		Cluster:    *cluster,
		Impl:       mpiImpl,
		Workers:    *par,
	}
	if *colls != "" {
		for _, tok := range strings.Split(*colls, ",") {
			coll, err := mpi.ParseCollective(strings.TrimSpace(tok))
			check(err)
			cfg.Collectives = append(cfg.Collectives, coll)
		}
	}
	if *minSize < 4 || *maxSize < *minSize {
		check(fmt.Errorf("bad size range [%d, %d]", *minSize, *maxSize))
	}
	for size := *minSize; size <= *maxSize; size *= 2 {
		cfg.Sizes = append(cfg.Sizes, size)
	}

	var client *serve.Client
	if *serveURL != "" {
		client = &serve.Client{BaseURL: strings.TrimRight(*serveURL, "/")}
		cfg.Evaluator = &tune.ServeEvaluator{Client: client}
	}

	start := time.Now()
	res, err := tune.Run(context.Background(), cfg)
	check(err)

	prov := res.Provenance
	fmt.Fprintf(os.Stderr, "ombtune: %d iterations, %d evaluations (%.0f%% cache hits) in %.1fs\n",
		prov.Iterations, prov.Evaluations, 100*prov.CacheHitRatio, time.Since(start).Seconds())
	fmt.Fprintf(os.Stderr, "ombtune: modeled sweep latency %.1fus -> %.1fus (%.2f%% better than shipped defaults)\n",
		prov.DefaultTotalUs, prov.TunedTotalUs, prov.ImprovementPct)
	for _, cr := range prov.Contexts {
		forced := ""
		if cr.Forced != "" {
			forced = " forced=" + cr.Forced
		}
		fmt.Fprintf(os.Stderr, "ombtune:   %-9s %-14s %-16s %8.1fus -> %8.1fus (%+.2f%%)%s\n",
			cr.Placement, cr.Collective, "["+cr.Source+"]", cr.DefaultUs, cr.TunedUs, -cr.ImprovementPct, forced)
	}
	if client != nil {
		if st, err := client.Stats(context.Background()); err == nil {
			fmt.Fprintf(os.Stderr, "ombtune: server cache: %d hits, %d misses, %d coalesced, %d entries, %d shed\n",
				st.CacheHits, st.CacheMisses, st.Coalesced, st.CacheEntries, st.Shed)
		} else {
			fmt.Fprintf(os.Stderr, "ombtune: GET /stats failed: %v\n", err)
		}
	}

	table, err := res.TableJSON()
	check(err)
	provJSON, err := res.ProvenanceJSON()
	check(err)
	check(emit(*tableOut, table, "table"))
	check(emit(*provOut, provJSON, "provenance"))
}

// emit writes an artifact to a file, stdout ("-"), or nowhere ("").
func emit(dest string, data []byte, what string) error {
	switch dest {
	case "":
		return nil
	case "-":
		_, err := os.Stdout.Write(append(data, '\n'))
		return err
	default:
		if err := os.WriteFile(dest, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ombtune: wrote %s to %s\n", what, dest)
		return nil
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ombtune:", err)
		os.Exit(1)
	}
}
