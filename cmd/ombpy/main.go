// Command ombpy runs a single micro-benchmark in the style of the OSU
// benchmark executables (osu_latency, osu_bw, osu_allreduce, ...), on the
// simulated cluster of your choice, in OMB (C), OMB-Py (direct buffer) or
// OMB-Py pickle mode.
//
// Examples:
//
//	ombpy -bench latency -mode py -buffer numpy -cluster frontera -ppn 2
//	ombpy -bench allreduce -mode py -ranks 16 -ppn 1
//	ombpy -bench latency -mode py -buffer cupy -cluster bridges2 -gpu
//	ombpy -bench bw -mode pickle
//	ombpy -bench allgather -ranks 16 -algorithm ring
//	ombpy -bench allreduce -ranks 16 -algorithm all -parallel 4
//	ombpy -bench iallreduce -mode c -ranks 16      # overlap benchmark
//	ombpy -bench mbw_mr -ranks 16 -pairs 4         # multi-pair message rate
//	ombpy -algorithm list
//	ombpy -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	var (
		bench     = flag.String("bench", "latency", "benchmark name (see -list)")
		cluster   = flag.String("cluster", "frontera", "cluster model: "+strings.Join(topology.Names(), ", "))
		impl      = flag.String("impl", "mvapich2", "MPI implementation: mvapich2, intelmpi")
		mode      = flag.String("mode", "py", "mode: c (OMB baseline), py (OMB-Py), pickle")
		buffer    = flag.String("buffer", "numpy", "buffer library: bytearray, numpy, cupy, pycuda, numba")
		gpu       = flag.Bool("gpu", false, "bind ranks to GPUs and use device buffers")
		ranks     = flag.Int("ranks", 2, "number of MPI ranks")
		ppn       = flag.Int("ppn", 1, "processes per node")
		minSize   = flag.Int("min", 1, "smallest message size in bytes")
		maxSize   = flag.Int("max", 1<<20, "largest message size in bytes")
		iters     = flag.Int("iters", 100, "timed iterations per size")
		warmup    = flag.Int("warmup", 10, "warm-up iterations per size")
		window    = flag.Int("window", 64, "window size for bandwidth tests")
		pairs     = flag.Int("pairs", 0, "pair count for the multi-pair benchmarks (0 = ranks/2)")
		timing    = flag.Bool("timing-only", false, "skip payloads (huge-scale runs)")
		engine    = flag.String("engine", "auto", "execution engine: auto (event for timing-only runs), goroutine, event")
		fold      = flag.Bool("fold", true, "let the event engine fold symmetric ranks (false forces every rank to execute; reported numbers are identical either way)")
		schedfold = flag.Bool("schedfold", true, "let the event engine compile and replay collective schedules per equivalence class (false keeps the schedule-level gather; reported numbers are identical either way)")
		algo      = flag.String("algorithm", "", "force collective algorithms: a name for this benchmark's collective, coll=name pairs, \"all\" to sweep every algorithm, \"list\" to show the registry")
		faults    = flag.String("faults", "", "deterministic fault plan, e.g. \"kill:rank=3,after=2:allreduce; noise:sigma=5us; jitter:link=0.1; seed:42\"")
		par       = flag.Int("parallel", 0, "worker count for the -algorithm all sweep (0 = serial)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); expiry reports \"# FAILED: timeout\" instead of running on")
		tableFile = flag.String("tuning-table", "", "apply a generated tuning table (see ombtune) as the per-placement default selection policy")
		asJSON    = flag.Bool("json", false, "emit the report as JSON")
		plot      = flag.Bool("plot", false, "render the series as an ASCII chart")
		list      = flag.Bool("list", false, "list available benchmarks")
	)
	flag.Parse()

	if *algo == "list" {
		fmt.Print(mpi.DescribeRegistry())
		return
	}

	if *list {
		fmt.Print(core.DescribeBenchmarks())
		return
	}

	if *tableFile != "" {
		data, err := os.ReadFile(*tableFile)
		check(err)
		table, err := mpi.ParseTuningTable(data)
		if err != nil {
			check(fmt.Errorf("-tuning-table %s: %w", *tableFile, err))
		}
		core.SetDefaultTuningTable(table)
	}

	b, err := core.ParseBenchmark(*bench)
	check(err)
	m, err := core.ParseMode(*mode)
	check(err)
	lib, err := pybuf.ParseLibrary(*buffer)
	check(err)
	mpiImpl, err := netmodel.ParseImpl(*impl)
	check(err)

	opts := core.Options{
		Benchmark:   b,
		Cluster:     *cluster,
		Impl:        mpiImpl,
		Mode:        m,
		Buffer:      lib,
		UseGPU:      *gpu,
		Ranks:       *ranks,
		PPN:         *ppn,
		MinSize:     *minSize,
		MaxSize:     *maxSize,
		Iters:       *iters,
		Warmup:      *warmup,
		Window:      *window,
		Pairs:       *pairs,
		TimingOnly:  *timing,
		Engine:      *engine,
		NoFold:      !*fold,
		NoSchedFold: !*schedfold,
		Faults:      *faults,
	}

	// The budget covers the whole invocation (a sweep shares one deadline
	// across its variants); expiry unwinds through the engines' structured
	// cancellation and is classified in Report.Failure, never an abort
	// mid-sweep.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *algo == "all" {
		runAlgorithmSweep(ctx, opts, *par, *asJSON, *plot)
		return
	}
	if *algo != "" {
		opts.Algorithms = parseAlgorithmFlag(*algo, b)
	}

	rep, err := core.RunContext(ctx, opts)
	check(err)

	switch {
	case *asJSON:
		out, err := json.MarshalIndent(rep, "", "  ")
		check(err)
		fmt.Println(string(out))
	default:
		fmt.Print(rep.Text())
	}
	if *plot {
		metric := "latency(us)"
		if cols := b.Columns(); cols == core.ColumnsBandwidth || cols == core.ColumnsMessageRate {
			metric = "bandwidth(MB/s)"
		}
		ch := stats.Chart{
			Metric: metric,
			Series: []*stats.Series{&rep.Series},
			LogY:   metric == "latency(us)",
		}
		fmt.Print(ch.Render())
	}
}

// parseAlgorithmFlag accepts either comma-separated coll=name pairs or a
// bare algorithm name applied to the benchmark's own collective.
func parseAlgorithmFlag(algo string, b core.Benchmark) map[string]string {
	if strings.Contains(algo, "=") {
		m, err := core.ParseAlgorithmList(algo)
		check(err)
		return m
	}
	coll, ok := b.Collective()
	if !ok {
		check(fmt.Errorf("benchmark %s has no selectable algorithms; use coll=name pairs", b))
	}
	canon, err := mpi.CanonicalAlgorithm(coll, algo)
	check(err)
	return map[string]string{string(coll): canon}
}

// runAlgorithmSweep runs the benchmark once per registered algorithm of
// its collective (skipping ones infeasible at this rank count) on the
// parallel sweep engine and prints the aligned table.
func runAlgorithmSweep(ctx context.Context, opts core.Options, workers int, asJSON, plot bool) {
	variants, err := core.AlgorithmVariants(opts)
	check(err)
	res, err := core.Sweep{Base: opts, Variants: variants, Workers: workers}.RunContext(ctx)
	check(err)
	switch {
	case asJSON:
		out, err := json.MarshalIndent(res.Reports, "", "  ")
		check(err)
		fmt.Println(string(out))
	default:
		tab := res.Table(fmt.Sprintf("%s algorithms", opts.Benchmark), "latency(us)")
		fmt.Print(tab.Render())
	}
	if plot {
		ch := stats.Chart{Metric: "latency(us)", Series: res.Series(), LogY: true}
		fmt.Print(ch.Render())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ombpy:", err)
		os.Exit(1)
	}
}
