// Command ombserve runs the tuning service: an HTTP front end over the
// deterministic simulator, built for auto-tuner query workloads — cached,
// deduplicated, backpressured, and drained gracefully on SIGTERM. See
// internal/serve for the API and hardening semantics.
//
// Usage:
//
//	ombserve -addr :8080 -workers 8 -queue 64 -request-timeout 60s
//
// Endpoints:
//
//	POST /sweep       run one benchmark configuration (JSON options in,
//	                  report JSON out; X-Cache: hit|coalesced|miss)
//	GET  /benchmarks  benchmark registry metadata
//	GET  /healthz     liveness + service counters
//	GET  /readyz      200 accepting, 503 draining
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth beyond the worker pool")
	reqTimeout := flag.Duration("request-timeout", 60*time.Second, "per-simulation deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget after SIGTERM")
	cacheEntries := flag.Int("cache-entries", 4096, "result-cache capacity")
	flag.Parse()

	svc := serve.NewServer(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		CacheEntries:   *cacheEntries,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	// SIGTERM/SIGINT starts the drain; the context carries the signal.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ombserve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ombserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: flip readiness (load balancers stop routing), stop
	// accepting, let in-flight requests finish inside the drain budget,
	// then cancel whatever is still running and close the listener hard.
	fmt.Fprintf(os.Stderr, "ombserve: draining (budget %s)\n", *drainTimeout)
	svc.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ombserve: drain deadline passed, canceling in-flight runs\n")
		svc.CancelInFlight()
		if err := httpSrv.Close(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ombserve: close: %v\n", err)
		}
	}

	// Flush the final counters so an operator's last look at the drain has
	// the cache and shed numbers in it.
	stats, _ := json.Marshal(svc.Snapshot())
	fmt.Fprintf(os.Stderr, "ombserve: final stats %s\n", stats)
}
