// Command ombrepro regenerates the paper's figures and tables.
//
// Usage:
//
//	ombrepro -experiment fig2        # one experiment
//	ombrepro -experiment algo_allgather -parallel 4   # algorithm ablation
//	ombrepro -all                    # everything except the 896-rank runs
//	ombrepro -all -heavy             # everything
//	ombrepro -all -algorithm allgather=ring           # forced-algorithm rerun
//	ombrepro -list                   # enumerate experiment ids
//
// Each experiment prints the series its figure plots plus a
// paper-vs-measured line for every statistic the paper quotes in prose.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func main() {
	var (
		id        = flag.String("experiment", "", "experiment id (fig1..fig34, table1..table3, algo_*)")
		all       = flag.Bool("all", false, "run every experiment")
		heavy     = flag.Bool("heavy", false, "include the 896-rank full-subscription experiments")
		list      = flag.Bool("list", false, "list experiment ids")
		plot      = flag.Bool("plot", false, "render each experiment's series as an ASCII chart")
		algo      = flag.String("algorithm", "", "force collective algorithms for every run, as coll=name pairs (e.g. allgather=ring,allreduce=rd)")
		par       = flag.Int("parallel", 0, "sweep worker count for multi-variant experiments (0 = serial)")
		engine    = flag.String("engine", "auto", "execution engine for every run: auto (event for timing-only runs), goroutine, event")
		fold      = flag.Bool("fold", true, "let the event engine fold symmetric ranks (false forces every rank to execute; reported numbers are identical either way)")
		schedfold = flag.Bool("schedfold", true, "let the event engine compile and replay collective schedules per equivalence class (false keeps the schedule-level gather; reported numbers are identical either way)")
		faults    = flag.String("faults", "", "deterministic fault plan applied to every run, e.g. \"noise:sigma=2us; jitter:link=0.1; seed:7\"")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget per benchmark run (0 = none); expiry reports a structured timeout failure instead of running on")
		tableFile = flag.String("tuning-table", "", "apply a generated tuning table (see ombtune) as the per-placement default selection policy")
	)
	flag.Parse()
	plotCharts = *plot

	if *tableFile != "" {
		data, err := os.ReadFile(*tableFile)
		if err != nil {
			fatal(err)
		}
		table, err := mpi.ParseTuningTable(data)
		if err != nil {
			fatal(fmt.Errorf("-tuning-table %s: %w", *tableFile, err))
		}
		core.SetDefaultTuningTable(table)
	}

	if *algo != "" {
		forced, err := core.ParseAlgorithmList(*algo)
		if err != nil {
			fatal(err)
		}
		core.SetDefaultAlgorithms(forced)
	}
	core.SetDefaultSweepWorkers(*par)
	core.SetDefaultEngine(*engine)
	core.SetDefaultFold(*fold)
	core.SetDefaultSchedFold(*schedfold)
	core.SetDefaultFaults(*faults)
	core.SetDefaultTimeout(*timeout)

	switch {
	case *list:
		for _, e := range experiments.All() {
			tag := ""
			if e.Heavy {
				tag = " [heavy]"
			}
			fmt.Printf("%-8s %s%s\n", e.ID, e.Title, tag)
		}
	case *id != "":
		e, err := experiments.ByID(*id)
		if err != nil {
			fatal(err)
		}
		if err := runOne(e); err != nil {
			fatal(err)
		}
	case *all:
		failed := 0
		for _, e := range experiments.All() {
			if e.Heavy && !*heavy {
				fmt.Printf("=== %s: %s === (skipped; pass -heavy)\n\n", e.ID, e.Title)
				continue
			}
			if err := runOne(e); err != nil {
				fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
				failed++
			}
		}
		if failed > 0 {
			fatal(fmt.Errorf("%d experiments failed", failed))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// plotCharts mirrors the -plot flag.
var plotCharts bool

func runOne(e experiments.Experiment) error {
	start := time.Now()
	res, err := e.Run()
	if err != nil {
		return err
	}
	res.Title = e.Title
	fmt.Print(res.Render())
	if plotCharts && len(res.Table.Series) > 0 {
		ch := stats.Chart{
			Metric: res.Table.Metric,
			Series: res.Table.Series,
			LogY:   strings.Contains(res.Table.Metric, "latency"),
		}
		fmt.Print(ch.Render())
	}
	fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ombrepro:", err)
	os.Exit(1)
}
