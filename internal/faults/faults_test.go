package faults

import (
	"strings"
	"testing"
)

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "   ", " ; ; "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if spec == " ; ; " {
			// All-empty clauses still yield a plan object, but an inert one.
			if p.Active() {
				t.Fatalf("Parse(%q) produced an active plan: %+v", spec, p)
			}
			continue
		}
		if p != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", spec, p)
		}
	}
	if (*Plan)(nil).Active() || (*Plan)(nil).HasKills() {
		t.Fatal("nil plan must be inert")
	}
}

func TestParseFull(t *testing.T) {
	p, err := Parse("kill:rank=3,after=2:allreduce; noise:sigma=5us; jitter:link=0.1; seed:42")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kills) != 1 {
		t.Fatalf("kills = %+v", p.Kills)
	}
	k := p.Kills[0]
	if k.Rank != 3 || k.After != 2 || k.Coll != "allreduce" || k.At >= 0 {
		t.Fatalf("kill = %+v", k)
	}
	if p.NoiseSigma != 5 || p.Jitter != 0.1 || p.Seed != 42 {
		t.Fatalf("plan = %+v", p)
	}
	if !p.Active() || !p.HasKills() {
		t.Fatal("plan should be active with kills")
	}
}

func TestParseTimeKillAndUnits(t *testing.T) {
	p, err := Parse("kill:rank=0,at=1.5ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Kills[0].At; got != 1500 {
		t.Fatalf("at = %v us, want 1500", got)
	}
	p, err = Parse("noise:sigma=2")
	if err != nil {
		t.Fatal(err)
	}
	if p.NoiseSigma != 2 {
		t.Fatalf("bare sigma = %v, want 2 us", p.NoiseSigma)
	}
	p, err = Parse("kill:rank=1,at=2s")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kills[0].At != 2e6 {
		t.Fatalf("at = %v us, want 2e6", p.Kills[0].At)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"kill:after=2",                 // missing rank
		"kill:rank=-1",                 // negative rank
		"kill:rank=0,at=5us:allreduce", // at + collective
		"kill:rank=0,when=now",         // unknown key
		"noise:sigma=0",                // non-positive sigma
		"noise:mean=5us",               // wrong key
		"jitter:link=-0.5",             // negative fraction
		"seed:banana",                  // non-integer seed
		"frobnicate:hard",              // unknown clause
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	const spec = "kill:rank=3,after=2:allreduce; noise:sigma=5us; jitter:link=0.1; seed:42"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if q.String() != p.String() {
		t.Fatalf("round trip: %q != %q", q.String(), p.String())
	}
	if !strings.Contains(p.String(), "seed:42") {
		t.Fatalf("non-default seed missing from %q", p.String())
	}
}

func TestUniformRangeAndDeterminism(t *testing.T) {
	seen := map[float64]bool{}
	for rank := uint64(0); rank < 8; rank++ {
		for ctr := uint64(0); ctr < 256; ctr++ {
			u := Uniform(7, rank, ctr)
			if u < 0 || u >= 1 {
				t.Fatalf("Uniform(7,%d,%d) = %v out of [0,1)", rank, ctr, u)
			}
			if u2 := Uniform(7, rank, ctr); u2 != u {
				t.Fatalf("Uniform not pure: %v vs %v", u, u2)
			}
			seen[u] = true
		}
	}
	if len(seen) < 2040 {
		t.Fatalf("only %d distinct draws out of 2048 — stream collisions", len(seen))
	}
	if Uniform(1, 0, 0) == Uniform(2, 0, 0) {
		t.Fatal("seed does not decorrelate draws")
	}
	if Uniform(1, 0, 5) == Uniform(1, 1, 5) {
		t.Fatal("rank does not decorrelate draws")
	}
}
