// Package faults describes deterministic fault-injection plans for the
// simulator: rank death (at a virtual time or on the Nth invocation of a
// collective), per-link latency jitter, and OS-noise compute stragglers.
// A Plan is pure data — the mpi runtime interprets it — and every random
// draw comes from a counter-based PRNG keyed on (seed, rank, counter), so
// the same plan produces bit-identical virtual times on every engine, under
// parallel sweeps, and with symmetry folding on or off (faults disable the
// fold fast path deterministically; see mpi's fold gate).
//
// Spec grammar (clauses separated by ';'):
//
//	kill:rank=R[,after=N][,at=Tus][:collective]
//	noise:sigma=Dus
//	jitter:link=F
//	seed:N
//
// A kill clause with after=N lets the rank survive N matching collective
// invocations and kills it on entry to the N+1th; an optional trailing
// collective name ("allreduce", "barrier", ...) restricts which invocations
// count. A kill clause with at=T instead kills the rank at its first
// collective entry with virtual clock >= T microseconds. noise adds a
// seeded compute delay, uniform on [0, 2*sigma) (mean sigma), at every
// collective entry of every rank. jitter stretches every message's wire
// time by a seeded factor uniform on [1, 1+F). Durations accept "us", "ms"
// and "s" suffixes (microseconds when bare).
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kill describes one rank-death rule.
type Kill struct {
	// Rank is the world rank to kill.
	Rank int
	// After is the number of matching collective invocations the rank
	// survives; it dies at entry to the next one. Ignored when At >= 0.
	After int
	// Coll restricts which collective invocations count toward After
	// ("allreduce", "barrier", ...); empty means every collective counts.
	Coll string
	// At, when >= 0, kills the rank at its first collective entry with
	// virtual clock >= At microseconds, instead of counting invocations.
	At float64
}

// Plan is a parsed fault-injection plan. The zero value injects nothing;
// a nil *Plan is the universal "no faults" and every method tolerates it.
type Plan struct {
	// Seed keys every random draw. Two plans differing only in Seed
	// produce different (but individually reproducible) noise and jitter.
	Seed uint64
	// Kills are the rank-death rules, applied independently.
	Kills []Kill
	// NoiseSigma is the mean OS-noise compute delay injected at every
	// collective entry, in virtual microseconds; 0 disables noise.
	NoiseSigma float64
	// Jitter is the fractional wire-time stretch applied per message:
	// each message's wire time is multiplied by 1 + Jitter*u with u
	// uniform on [0, 1). 0 disables jitter.
	Jitter float64
}

// HasKills reports whether the plan can kill a rank (nil-safe).
func (p *Plan) HasKills() bool { return p != nil && len(p.Kills) > 0 }

// Active reports whether the plan injects anything at all (nil-safe).
func (p *Plan) Active() bool {
	return p != nil && (len(p.Kills) > 0 || p.NoiseSigma > 0 || p.Jitter > 0)
}

// String renders the plan back in spec grammar, canonically ordered.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	kills := append([]Kill(nil), p.Kills...)
	sort.SliceStable(kills, func(i, j int) bool { return kills[i].Rank < kills[j].Rank })
	for _, k := range kills {
		var b strings.Builder
		fmt.Fprintf(&b, "kill:rank=%d", k.Rank)
		if k.At >= 0 {
			fmt.Fprintf(&b, ",at=%gus", k.At)
		} else if k.After > 0 {
			fmt.Fprintf(&b, ",after=%d", k.After)
		}
		if k.Coll != "" {
			fmt.Fprintf(&b, ":%s", k.Coll)
		}
		parts = append(parts, b.String())
	}
	if p.NoiseSigma > 0 {
		parts = append(parts, fmt.Sprintf("noise:sigma=%gus", p.NoiseSigma))
	}
	if p.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter:link=%g", p.Jitter))
	}
	if p.Seed != defaultSeed {
		parts = append(parts, fmt.Sprintf("seed:%d", p.Seed))
	}
	return strings.Join(parts, "; ")
}

// defaultSeed keys plans whose spec carries no seed clause.
const defaultSeed = 1

// Parse parses a fault spec string. An empty (or all-whitespace) spec
// returns (nil, nil): no plan installed.
func Parse(spec string) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	p := &Plan{Seed: defaultSeed}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, _ := strings.Cut(clause, ":")
		kind = strings.TrimSpace(strings.ToLower(kind))
		rest = strings.TrimSpace(rest)
		var err error
		switch kind {
		case "kill":
			err = p.parseKill(rest)
		case "noise":
			err = p.parseNoise(rest)
		case "jitter":
			err = p.parseJitter(rest)
		case "seed":
			p.Seed, err = strconv.ParseUint(rest, 10, 64)
			if err != nil {
				err = fmt.Errorf("seed %q is not an unsigned integer", rest)
			}
		default:
			err = fmt.Errorf("unknown clause kind %q (have kill, noise, jitter, seed)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
	}
	return p, nil
}

// parseKill parses "rank=R[,after=N][,at=Tus][:coll]".
func (p *Plan) parseKill(rest string) error {
	args, coll, _ := strings.Cut(rest, ":")
	k := Kill{Rank: -1, At: -1, Coll: strings.TrimSpace(strings.ToLower(coll))}
	for _, kv := range strings.Split(args, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("%q is not key=value", kv)
		}
		key, val = strings.TrimSpace(strings.ToLower(key)), strings.TrimSpace(val)
		switch key {
		case "rank":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("rank %q must be a non-negative integer", val)
			}
			k.Rank = n
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("after %q must be a non-negative integer", val)
			}
			k.After = n
		case "at":
			t, err := parseDuration(val)
			if err != nil {
				return err
			}
			k.At = t
		default:
			return fmt.Errorf("unknown kill key %q (have rank, after, at)", key)
		}
	}
	if k.Rank < 0 {
		return fmt.Errorf("kill needs rank=R")
	}
	if k.At >= 0 && k.Coll != "" {
		return fmt.Errorf("at=T kills cannot name a collective (they fire on any entry)")
	}
	p.Kills = append(p.Kills, k)
	return nil
}

// parseNoise parses "sigma=Dus".
func (p *Plan) parseNoise(rest string) error {
	key, val, ok := strings.Cut(rest, "=")
	if !ok || strings.TrimSpace(strings.ToLower(key)) != "sigma" {
		return fmt.Errorf("noise needs sigma=D, got %q", rest)
	}
	d, err := parseDuration(strings.TrimSpace(val))
	if err != nil {
		return err
	}
	if d <= 0 {
		return fmt.Errorf("noise sigma must be positive, got %q", val)
	}
	p.NoiseSigma = d
	return nil
}

// parseJitter parses "link=F".
func (p *Plan) parseJitter(rest string) error {
	key, val, ok := strings.Cut(rest, "=")
	if !ok || strings.TrimSpace(strings.ToLower(key)) != "link" {
		return fmt.Errorf("jitter needs link=F, got %q", rest)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
	if err != nil || f < 0 {
		return fmt.Errorf("jitter fraction %q must be a non-negative number", val)
	}
	p.Jitter = f
	return nil
}

// parseDuration parses a virtual duration into microseconds; bare numbers
// are microseconds.
func parseDuration(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "us"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], 1e3
	case strings.HasSuffix(s, "s"):
		s, mult = s[:len(s)-1], 1e6
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("duration %q must be a non-negative number with an optional us/ms/s suffix", s)
	}
	return v * mult, nil
}

// Uniform draws the (seed, rank, counter) sample as a float64 uniform on
// [0, 1). It is a pure function — no state, no locks — which is what makes
// fault sampling bit-identical across engines and across parallel sweep
// workers: every draw site derives its counter from per-rank operation
// counts that advance identically on both engines. Distinct draw sites use
// disjoint counter streams (high counter bits) so noise and jitter samples
// never collide.
func Uniform(seed, rank, counter uint64) float64 {
	h := mix(seed ^ mix(rank*0x9e3779b97f4a7c15) ^ mix(counter*0xd1342543de82ef95))
	return float64(h>>11) / (1 << 53)
}

// mix is the SplitMix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
