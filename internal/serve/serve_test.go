package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	// A workload that panics before running, for the panic-isolation test:
	// its Validate hook fires inside the flight leader, past the decode
	// checks, exactly where a latent bug in a real workload would.
	core.RegisterBenchmark(core.BenchmarkSpec{
		Name:     "serve_test_panic",
		Kind:     core.KindCollective,
		Group:    "serve-test",
		Summary:  "panics on validate (serve panic-isolation test)",
		Validate: func(o core.Options) error { panic("serve_test_panic: boom") },
		Body:     func(b *core.Bench) (stats.Row, error) { return stats.Row{}, nil },
	})
}

// fastSweep is a sub-millisecond request body.
func fastSweep(iters int) string {
	return fmt.Sprintf(`{"benchmark":"latency","mode":"c","iters":%d,"warmup":1,"max_size":4}`, iters)
}

// slowSweep is a request body that takes long enough to still be in flight
// when a test pokes at it (a cold 1024-rank event-engine sweep).
func slowSweep(iters int) string {
	return fmt.Sprintf(`{"benchmark":"allreduce","mode":"c","ranks":1024,"ppn":64,"timing_only":true,`+
		`"engine":"event","min_size":16384,"max_size":65536,"iters":%d,"warmup":2}`, iters)
}

func post(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/sweep", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestSweepCacheByteIdentical pins the cache contract: the second request
// for the same configuration is a hit and its body is byte-identical to
// the miss that computed it — determinism end to end through the service.
func TestSweepCacheByteIdentical(t *testing.T) {
	s := NewServer(Config{})
	first := post(t, s.Handler(), fastSweep(3))
	if first.Code != http.StatusOK {
		t.Fatalf("first POST: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first POST X-Cache = %q, want miss", got)
	}
	second := post(t, s.Handler(), fastSweep(3))
	if second.Code != http.StatusOK {
		t.Fatalf("second POST: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit body differs from the miss body")
	}
	if first.Header().Get("X-Cache-Key") != second.Header().Get("X-Cache-Key") {
		t.Error("identical requests got different cache keys")
	}
	// Spelling must not split the cache: an aliased, reordered, defaulted
	// variant of the same configuration hits the same entry.
	aliased := post(t, s.Handler(), `{"warmup":1,"iters":3,"max_size":4,"mode":"c","benchmark":"latency","cluster":"frontera"}`)
	if got := aliased.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("canonically-equal request X-Cache = %q, want hit", got)
	}
	if snap := s.Snapshot(); snap.CacheHits != 2 || snap.CacheMisses != 1 {
		t.Errorf("counters = %+v, want 2 hits / 1 miss", snap)
	}
}

// TestSweepCoalesce pins singleflight: concurrent identical cold requests
// share one computation (exactly one miss) and all read the same bytes.
func TestSweepCoalesce(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(t, s.Handler(), slowSweep(10))
			if rec.Code == http.StatusOK {
				bodies[i] = rec.Body.Bytes()
			}
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if b == nil {
			t.Fatalf("client %d got no 200 response", i)
		}
		if !bytes.Equal(b, bodies[0]) {
			t.Errorf("client %d read different bytes", i)
		}
	}
	snap := s.Snapshot()
	if snap.CacheMisses != 1 {
		t.Errorf("%d misses for %d identical concurrent requests, want exactly 1 computation", snap.CacheMisses, clients)
	}
	if snap.Coalesced+snap.CacheHits != clients-1 {
		t.Errorf("coalesced %d + hits %d, want %d followers", snap.Coalesced, snap.CacheHits, clients-1)
	}
}

// TestSweepShedsWhenOverloaded pins backpressure: once the worker pool and
// the admission queue are full, fresh work is refused immediately with
// 429 + Retry-After instead of queuing without bound.
func TestSweepShedsWhenOverloaded(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var wg sync.WaitGroup
	// Fill the pool (1) and the queue (1) with distinct slow keys.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(t, s.Handler(), slowSweep(40+i))
		}(i)
	}
	defer func() { close(release); wg.Wait() }()
	deadline := time.Now().Add(5 * time.Second)
	for s.backlog.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("backlog never filled")
		}
		time.Sleep(time.Millisecond)
	}
	rec := post(t, s.Handler(), fastSweep(9))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded POST answered %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	if snap := s.Snapshot(); snap.Shed != 1 {
		t.Errorf("shed counter = %d, want 1", snap.Shed)
	}
}

// TestClientDisconnectCancelsRun pins disconnect cancellation: when the
// only client waiting on a computation goes away, the simulation is
// canceled (the backlog drains without the run completing) and nothing is
// cached — a later identical request recomputes.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	body := slowSweep(60)
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/sweep", strings.NewReader(body)).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}()
	// Wait until the flight is admitted, then hang up.
	deadline := time.Now().Add(5 * time.Second)
	for s.backlog.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	for s.backlog.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled flight never drained: disconnect did not cancel the run")
		}
		time.Sleep(time.Millisecond)
	}
	// The canceled outcome must not have been cached.
	rec := post(t, s.Handler(), body)
	if got := rec.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("request after disconnect X-Cache = %q, want miss (canceled results are not cacheable)", got)
	}
	var rep struct {
		Failure *core.Failure `json:"failure"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Errorf("recomputed run inherited failure %+v", rep.Failure)
	}
}

// TestRequestTimeoutClassified pins the per-request deadline: a simulation
// over budget answers 200 with a structured "timeout" failure, and the
// non-deterministic outcome is not cached.
func TestRequestTimeoutClassified(t *testing.T) {
	s := NewServer(Config{RequestTimeout: 5 * time.Millisecond})
	rec := post(t, s.Handler(), slowSweep(80))
	if rec.Code != http.StatusOK {
		t.Fatalf("timed-out POST answered %d %s, want 200 with a classified failure", rec.Code, rec.Body)
	}
	var rep struct {
		Failure *core.Failure `json:"failure"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil || rep.Failure.Code != "timeout" {
		t.Fatalf("failure = %+v, want code timeout", rep.Failure)
	}
	if s.cache.len() != 0 {
		t.Error("timed-out result was cached")
	}
}

// TestBadRequests pins the 400 surface: malformed JSON, unknown fields
// (typo'd knobs must not silently default), and options the simulator
// rejects.
func TestBadRequests(t *testing.T) {
	s := NewServer(Config{})
	for name, body := range map[string]string{
		"malformed":       `{"benchmark":`,
		"unknown_field":   `{"benchmark":"latency","itres":5}`,
		"no_benchmark":    `{"mode":"c"}`,
		"bad_mode":        `{"benchmark":"latency","mode":"fortran"}`,
		"unknown_bench":   `{"benchmark":"nosuch"}`,
		"invalid_options": `{"benchmark":"latency","ranks":7}`,
	} {
		t.Run(name, func(t *testing.T) {
			rec := post(t, s.Handler(), body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("answered %d %s, want 400", rec.Code, rec.Body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Errorf("400 body %q is not an error object", rec.Body)
			}
		})
	}
}

// TestPanicIsolation pins that a panicking workload answers 500 and the
// service keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := NewServer(Config{})
	rec := post(t, s.Handler(), `{"benchmark":"serve_test_panic"}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking sweep answered %d %s, want 500", rec.Code, rec.Body)
	}
	if snap := s.Snapshot(); snap.Panics != 1 {
		t.Errorf("panic counter = %d, want 1", snap.Panics)
	}
	// Still alive and serving.
	if rec := post(t, s.Handler(), fastSweep(4)); rec.Code != http.StatusOK {
		t.Fatalf("POST after panic answered %d, want 200", rec.Code)
	}
	if rec := get(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic answered %d", rec.Code)
	}
}

// TestDrain pins the drain sequence: readiness flips to 503 for load
// balancers, new sweeps are refused, liveness stays 200.
func TestDrain(t *testing.T) {
	s := NewServer(Config{})
	if rec := get(t, s.Handler(), "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", rec.Code)
	}
	s.StartDrain()
	if rec := get(t, s.Handler(), "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rec.Code)
	}
	if rec := post(t, s.Handler(), fastSweep(5)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("sweep while draining: %d, want 503", rec.Code)
	}
	if rec := get(t, s.Handler(), "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200 (liveness is not readiness)", rec.Code)
	}
}

// TestBenchmarksEndpoint pins the registry listing.
func TestBenchmarksEndpoint(t *testing.T) {
	s := NewServer(Config{})
	rec := get(t, s.Handler(), "/benchmarks")
	if rec.Code != http.StatusOK {
		t.Fatalf("benchmarks: %d", rec.Code)
	}
	var infos []benchmarkInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	byName := map[string]benchmarkInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if info, ok := byName["allreduce"]; !ok || info.Collective != "allreduce" || info.Kind != "collective" {
		t.Errorf("allreduce entry = %+v, want collective metadata", info)
	}
	if info, ok := byName["latency"]; !ok || info.Kind != "pt2pt" {
		t.Errorf("latency entry = %+v, want pt2pt", info)
	}
}

// TestCacheLRUEviction pins the bound: the cache never exceeds its
// capacity and evicts least-recently-used first.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	c.get("a") // refresh a; b is now oldest
	c.put("c", []byte("C"))
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction; LRU order ignored")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently-used a was evicted")
	}
}
