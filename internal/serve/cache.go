package serve

import (
	"container/list"
	"sync"
)

// resultCache is a bounded LRU of rendered report bodies keyed by
// Options.CacheKey. Determinism makes eviction the only invalidation the
// cache ever needs: a key's body can never go stale, it can only be
// recomputed bit-identically. Bodies are stored (and served) verbatim, so
// a hit is byte-identical to the miss that populated it.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached body for key, refreshing its recency.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes it (the body is
// necessarily identical: keys are content addresses).
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the live entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
