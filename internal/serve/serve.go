// Package serve implements the tuning service: a long-running HTTP front
// end over the deterministic simulator. The service exists because
// algorithm tuning is a query workload — an auto-tuner probes many
// configurations, most of them repeats — and determinism makes the
// simulator an ideal server: every result is a pure function of its
// canonicalized options, so responses are content-addressed, cacheable
// forever, and deduplicatable while in flight.
//
// Hardening is the point, not an afterthought:
//
//   - Backpressure: a bounded worker pool plus a bounded admission queue;
//     requests beyond both are shed immediately with 429 + Retry-After
//     rather than queued without bound.
//   - Timeouts: every simulation runs under a per-request deadline; expiry
//     surfaces as the run's structured "timeout" failure, not a hung
//     connection.
//   - Client disconnects: a request whose last interested client went away
//     cancels its simulation (PR 9's engine cancellation) instead of
//     burning a worker on an answer nobody wants.
//   - Panic isolation: a panicking run answers 500 and the server keeps
//     serving.
//   - Graceful drain: SIGTERM stops admission (readyz flips to 503 for
//     load balancers), lets in-flight runs finish inside the drain
//     deadline, then cancels whatever remains.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config tunes the service; zero values take the documented defaults.
type Config struct {
	// Workers bounds concurrently running simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-not-yet-running requests beyond the
	// worker pool (default 64); admissions past Workers+QueueDepth shed.
	QueueDepth int
	// RequestTimeout is the per-simulation deadline (default 60s).
	RequestTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight runs
	// (default 10s). The HTTP entry point enforces it; the Server only
	// records it for /healthz.
	DrainTimeout time.Duration
	// CacheEntries bounds the result cache (default 4096).
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	return c
}

// flight is one in-flight simulation, shared by every request that asked
// for the same cache key while it ran. The leader goroutine fills status/
// body and closes done; waiters (including the leader's own handler) hold
// a reference counted in waiters, and the last one to give up cancels the
// simulation.
type flight struct {
	key     string
	ctx     context.Context
	cancel  context.CancelFunc
	waiters atomic.Int64
	done    chan struct{}
	status  int
	body    []byte
}

// leave drops one waiter reference; the last leaving waiter cancels the
// flight's simulation — nobody is left to read its answer.
func (f *flight) leave() {
	if f.waiters.Add(-1) == 0 {
		f.cancel()
	}
}

// NewServer builds a service with the given configuration. Mount it via
// Handler; shut it down with StartDrain and, past the drain deadline,
// CancelInFlight.
func NewServer(cfg Config) *Service {
	cfg = cfg.withDefaults()
	base, cancelAll := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		baseCtx:   base,
		cancelAll: cancelAll,
		slots:     make(chan struct{}, cfg.Workers),
		flights:   make(map[string]*flight),
		cache:     newResultCache(cfg.CacheEntries),
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("GET /benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Service is the tuning service state behind the HTTP handlers.
type Service struct {
	cfg       Config
	baseCtx   context.Context
	cancelAll context.CancelFunc
	mux       *http.ServeMux

	// slots is the worker pool: one token per concurrently running
	// simulation. backlog counts admitted flights (running or queued);
	// admission beyond Workers+QueueDepth sheds with 429.
	slots   chan struct{}
	backlog atomic.Int64

	mu      sync.Mutex
	flights map[string]*flight
	cache   *resultCache

	draining atomic.Bool

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	shed      atomic.Int64
	panics    atomic.Int64
}

// Handler returns the service's HTTP handler.
func (s *Service) Handler() http.Handler { return s.mux }

// StartDrain flips the service into draining mode: /readyz answers 503 so
// load balancers stop routing here, and new /sweep requests are refused.
// In-flight simulations keep running; the caller bounds them with
// CancelInFlight after its drain deadline.
func (s *Service) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Service) Draining() bool { return s.draining.Load() }

// CancelInFlight cancels every running simulation (their requests answer
// with structured "canceled" failures). Used after the drain deadline.
func (s *Service) CancelInFlight() { s.cancelAll() }

// Stats is the /healthz payload.
type Stats struct {
	Workers      int   `json:"workers"`
	QueueDepth   int   `json:"queue_depth"`
	Backlog      int64 `json:"backlog"`
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Coalesced    int64 `json:"coalesced"`
	Shed         int64 `json:"shed"`
	Panics       int64 `json:"panics"`
	Draining     bool  `json:"draining"`
}

// Snapshot returns the service counters (also served as /healthz).
func (s *Service) Snapshot() Stats {
	return Stats{
		Workers:      s.cfg.Workers,
		QueueDepth:   s.cfg.QueueDepth,
		Backlog:      s.backlog.Load(),
		CacheEntries: s.cache.len(),
		CacheHits:    s.hits.Load(),
		CacheMisses:  s.misses.Load(),
		Coalesced:    s.coalesced.Load(),
		Shed:         s.shed.Load(),
		Panics:       s.panics.Load(),
		Draining:     s.draining.Load(),
	}
}

// handleSweep is POST /sweep: resolve options, consult the cache, coalesce
// with an identical in-flight run, or lead a new one under admission
// control. The X-Cache header tells the client which path answered:
// "hit" (served from cache, byte-identical to the original computation),
// "coalesced" (shared an in-flight computation), or "miss" (led a fresh
// computation).
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "serve: draining")
		return
	}
	opts, err := decodeOptions(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := opts.CacheKey()
	w.Header().Set("X-Cache-Key", key)
	if body, ok := s.cache.get(key); ok {
		s.hits.Add(1)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		// An identical computation is already running: join it instead of
		// adding load.
		f.waiters.Add(1)
		s.mu.Unlock()
		s.coalesced.Add(1)
		w.Header().Set("X-Cache", "coalesced")
		s.await(w, r, f)
		return
	}
	// The flight may have finished between the cache check and the lock
	// (results are cached before the flight unregisters, so the orders
	// can't both miss): re-check before paying for a recomputation.
	if body, ok := s.cache.get(key); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	// Leading a fresh computation costs a worker eventually; shed now if
	// the pool and the queue are both full rather than queuing unboundedly.
	if s.backlog.Load() >= int64(s.cfg.Workers+s.cfg.QueueDepth) {
		s.mu.Unlock()
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "serve: overloaded, try again")
		return
	}
	s.backlog.Add(1)
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	f := &flight{key: key, ctx: ctx, cancel: cancel, done: make(chan struct{})}
	f.waiters.Store(1)
	s.flights[key] = f
	s.mu.Unlock()
	s.misses.Add(1)

	go s.lead(f, opts)
	w.Header().Set("X-Cache", "miss")
	s.await(w, r, f)
}

// lead runs one simulation and publishes its answer on the flight. It runs
// detached from any single request: coalesced waiters may outlive the
// leader's client, and the flight's context — not the request's — carries
// the cancellation (canceled when the last waiter leaves, the request
// timeout expires, or CancelInFlight fires).
func (s *Service) lead(f *flight, opts core.Options) {
	defer close(f.done)
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			f.status = http.StatusInternalServerError
			f.body = errorBody(fmt.Sprintf("serve: panic running sweep: %v", p))
		}
		s.mu.Lock()
		delete(s.flights, f.key)
		s.mu.Unlock()
		s.backlog.Add(-1)
		f.cancel()
	}()

	// Take a worker slot; a flight abandoned while queued never runs.
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-f.ctx.Done():
		f.status = http.StatusServiceUnavailable
		f.body = errorBody("serve: canceled before running")
		return
	}

	rep, err := core.RunContext(f.ctx, opts)
	if err != nil {
		f.status = http.StatusBadRequest
		f.body = errorBody(err.Error())
		return
	}
	body, err := json.Marshal(rep)
	if err != nil {
		f.status = http.StatusInternalServerError
		f.body = errorBody(err.Error())
		return
	}
	f.status = http.StatusOK
	f.body = body
	// Cache every deterministic outcome — clean runs and fault-plan
	// failures alike (a fault plan is part of the options and replays
	// bit-identically). Canceled and timed-out runs are the exception:
	// they depend on wall-clock scheduling, not content, so a repeat must
	// recompute.
	if rep.Failure == nil || (rep.Failure.Code != "canceled" && rep.Failure.Code != "timeout") {
		s.cache.put(f.key, body)
	}
}

// await parks one request on a flight until the answer is published or the
// client goes away. A leaving client drops its waiter reference; the last
// one to leave cancels the simulation.
func (s *Service) await(w http.ResponseWriter, r *http.Request, f *flight) {
	select {
	case <-f.done:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		w.Write(f.body)
	case <-r.Context().Done():
		f.leave()
	}
}

// handleBenchmarks is GET /benchmarks: the registry metadata.
func (s *Service) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listBenchmarks())
}

// handleHealthz is GET /healthz: liveness plus the service counters.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleStats is GET /stats: the service counters alone. The payload is
// the /healthz Stats struct, but the route exists as a stable monitoring
// contract: liveness probes may grow or change semantics, while /stats
// stays a plain counter dump — the numbers the auto-tuner's provenance
// report cites for real evaluator cache behavior (hit/miss/coalesced,
// cache size, shed count).
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleReadyz is GET /readyz: 200 while accepting, 503 while draining, so
// load balancers stop routing before the listener closes.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "serve: draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(errorBody(msg))
}

func errorBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}
