package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkServeLoad is the in-process load test bench.sh records: a
// concurrent mixed query stream against one service — 7/8 repeats of a hot
// configuration (cache hits after the first), 1/8 cold configurations that
// each pay for a fresh simulation. Beyond ns/op it reports the service-
// level numbers an operator cares about: sustained qps, p99 latency, and
// the cache-hit ratio of the mix.
func BenchmarkServeLoad(b *testing.B) {
	s := NewServer(Config{})
	h := s.Handler()
	hot := `{"benchmark":"latency","mode":"c","iters":50,"warmup":5,"max_size":1024}`
	coldBody := func(n int64) string {
		return fmt.Sprintf(`{"benchmark":"allreduce","mode":"c","ranks":64,"ppn":4,"iters":%d,"warmup":2,"max_size":4096}`, 10+n)
	}
	do := func(body string) int {
		req := httptest.NewRequest("POST", "/sweep", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(hot); code != http.StatusOK { // warm the hot key
		b.Fatalf("warm-up POST answered %d", code)
	}

	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N)
	var colds atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			body := hot
			if i%8 == 7 {
				body = coldBody(colds.Add(1))
			}
			i++
			start := time.Now()
			if code := do(body); code != http.StatusOK {
				b.Errorf("POST answered %d", code)
				return
			}
			d := time.Since(start)
			mu.Lock()
			lats = append(lats, d)
			mu.Unlock()
		}
	})
	b.StopTimer()

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	snap := s.Snapshot()
	served := snap.CacheHits + snap.CacheMisses + snap.Coalesced
	b.ReportMetric(float64(len(lats))/b.Elapsed().Seconds(), "qps")
	b.ReportMetric(float64(p99.Microseconds()), "p99_us")
	b.ReportMetric(float64(snap.CacheHits)/float64(served), "hit_ratio")
}
