package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// Client speaks the tuning-service protocol from the other side: it
// encodes core.Options into the POST /sweep wire form (the exact inverse
// of decodeOptions, pinned by TestClientEncodeRoundTrip) and decodes the
// report and cache-status answer. The auto-tuner's HTTP evaluator backend
// is built on it, so repeated probe configurations are answered from the
// service's content-addressed cache instead of recomputed.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8439".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// CacheStatus reports which path answered a sweep, from the X-Cache
// header: "hit" (served from the result cache), "coalesced" (shared an
// in-flight identical computation), or "miss" (led a fresh computation).
type CacheStatus string

// The cache-status values the service emits.
const (
	CacheHit       CacheStatus = "hit"
	CacheCoalesced CacheStatus = "coalesced"
	CacheMiss      CacheStatus = "miss"
)

// Cached reports whether the answer reused an existing or in-flight
// computation rather than costing a fresh one.
func (c CacheStatus) Cached() bool { return c == CacheHit || c == CacheCoalesced }

// SweepReport is the decoded POST /sweep answer: the stable report JSON
// schema (core.Report.MarshalJSON) from the client's side.
type SweepReport struct {
	Benchmark string        `json:"benchmark"`
	Cluster   string        `json:"cluster"`
	Impl      string        `json:"impl"`
	Mode      string        `json:"mode"`
	Buffer    string        `json:"buffer,omitempty"`
	GPU       bool          `json:"gpu,omitempty"`
	Ranks     int           `json:"ranks"`
	PPN       int           `json:"ppn"`
	Faults    string        `json:"faults,omitempty"`
	Rows      []SweepRow    `json:"rows"`
	Failure   *core.Failure `json:"failure,omitempty"`
}

// SweepRow is one message-size row of a sweep report.
type SweepRow struct {
	Size      int     `json:"size"`
	AvgUs     float64 `json:"avg_us"`
	MinUs     float64 `json:"min_us"`
	MaxUs     float64 `json:"max_us"`
	MBps      float64 `json:"mbps,omitempty"`
	Messages  float64 `json:"messages_per_s,omitempty"`
	CommUs    float64 `json:"comm_us,omitempty"`
	TotalUs   float64 `json:"total_us,omitempty"`
	OverlapPc float64 `json:"overlap_pct,omitempty"`
}

// Sweep posts one benchmark configuration and returns the decoded report
// plus the cache path that answered it. Non-2xx answers (validation
// errors, shedding, draining) surface as errors carrying the service's
// message.
func (c *Client) Sweep(ctx context.Context, opts core.Options) (*SweepReport, CacheStatus, error) {
	body, err := EncodeOptions(opts)
	if err != nil {
		return nil, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	status := CacheStatus(resp.Header.Get("X-Cache"))
	if resp.StatusCode != http.StatusOK {
		return nil, status, fmt.Errorf("serve: POST /sweep: %s: %s", resp.Status, serviceError(data))
	}
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, status, fmt.Errorf("serve: decoding sweep report: %w", err)
	}
	return &rep, status, nil
}

// Stats fetches the service counters from GET /stats.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Stats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("serve: GET /stats: %s: %s", resp.Status, serviceError(data))
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		return Stats{}, fmt.Errorf("serve: decoding stats: %w", err)
	}
	return st, nil
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// serviceError extracts the {"error": ...} message from an error body,
// falling back to the raw bytes.
func serviceError(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(data))
}

// EncodeOptions renders core.Options as a POST /sweep body — the exact
// inverse of decodeOptions: fields at their zero value are omitted (the
// decoder leaves omissions zero), enumerations are spelled with the same
// names their parsers accept. Options carrying a Profiler hook cannot
// travel and are rejected.
func EncodeOptions(opts core.Options) ([]byte, error) {
	if opts.Profiler != nil {
		return nil, fmt.Errorf("serve: options with a Profiler hook cannot be sent over HTTP")
	}
	if opts.Benchmark == "" {
		return nil, fmt.Errorf("serve: options need a benchmark")
	}
	req := sweepRequest{
		Benchmark:      string(opts.Benchmark),
		Cluster:        opts.Cluster,
		Impl:           string(opts.Impl),
		GPU:            opts.UseGPU,
		Ranks:          opts.Ranks,
		PPN:            opts.PPN,
		MinSize:        opts.MinSize,
		MaxSize:        opts.MaxSize,
		Iters:          opts.Iters,
		Warmup:         opts.Warmup,
		LargeThreshold: opts.LargeThreshold,
		LargeIters:     opts.LargeIters,
		LargeWarmup:    opts.LargeWarmup,
		Window:         opts.Window,
		Pairs:          opts.Pairs,
		TimingOnly:     opts.TimingOnly,
		Engine:         opts.Engine,
		NoFold:         opts.NoFold,
		NoSchedFold:    opts.NoSchedFold,
		Sizes:          opts.Sizes,
		Algorithms:     opts.Algorithms,
		Faults:         opts.Faults,
		Tuning: tuningJSON{
			BcastScatterRingMin:      opts.Tuning.BcastScatterRingMin,
			AllreduceRabenseifnerMin: opts.Tuning.AllreduceRabenseifnerMin,
			AllgatherRDMaxTotal:      opts.Tuning.AllgatherRDMaxTotal,
			AllgatherBruckMaxTotal:   opts.Tuning.AllgatherBruckMaxTotal,
			AlltoallBruckMaxBlock:    opts.Tuning.AlltoallBruckMaxBlock,
		},
	}
	if opts.Mode != core.ModeC {
		req.Mode = opts.Mode.String()
	}
	if opts.Buffer != 0 {
		req.Buffer = opts.Buffer.String()
	}
	if opts.DType != 0 {
		req.DType = opts.DType.String()
	}
	return json.Marshal(req)
}
