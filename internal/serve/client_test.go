package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpi4py"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
)

// TestStatsEndpoint pins GET /stats as a plain counter dump that tracks
// real traffic: a miss then a hit on the same body.
func TestStatsEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	h := s.Handler()

	rec := get(t, h, "/stats")
	if rec.Code != 200 {
		t.Fatalf("GET /stats = %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Errorf("fresh service stats = %+v", st)
	}

	if rec := post(t, h, fastSweep(3)); rec.Code != 200 {
		t.Fatalf("first sweep = %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, fastSweep(3)); rec.Code != 200 {
		t.Fatalf("second sweep = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 || st.CacheEntries != 1 {
		t.Errorf("after miss+hit, stats = %+v", st)
	}
	if st.Shed != 0 || st.Draining {
		t.Errorf("unexpected shed/draining in %+v", st)
	}
}

// TestClientEncodeRoundTrip pins EncodeOptions as the exact inverse of
// decodeOptions: decode(encode(opts)) == opts, field for field.
func TestClientEncodeRoundTrip(t *testing.T) {
	cases := map[string]core.Options{
		"minimal": {Benchmark: "latency"},
		"full": {
			Benchmark:  "allreduce",
			Cluster:    "frontera",
			Impl:       netmodel.MVAPICH2,
			Mode:       core.ModePy,
			Buffer:     pybuf.NumPy,
			Ranks:      16,
			PPN:        2,
			MinSize:    1024,
			MaxSize:    65536,
			Iters:      10,
			Warmup:     2,
			Window:     32,
			TimingOnly: true,
			Engine:     "event",
			Sizes:      []int{1024, 4096},
			DType:      mpi.Float64,
			Tuning:     mpi.Tuning{AllreduceRabenseifnerMin: 4096, AllgatherRDMaxTotal: -1},
			Algorithms: map[string]string{"allreduce": "rabenseifner"},
			Faults:     "noise:sigma=2us; seed:7",
		},
		"probe": {
			Benchmark:  "alltoall",
			Ranks:      224,
			PPN:        56,
			TimingOnly: true,
			Iters:      10,
			Warmup:     2,
			Sizes:      []int{1024, 2048},
			Tuning:     mpi.Tuning{AlltoallBruckMaxBlock: 2048},
		},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			body, err := EncodeOptions(opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := decodeOptions(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("decoding %s: %v", body, err)
			}
			if !reflect.DeepEqual(got, opts) {
				t.Errorf("round trip changed options\nsent: %+v\ngot:  %+v\nwire: %s", opts, got, body)
			}
		})
	}

	if _, err := EncodeOptions(core.Options{Benchmark: "latency", Profiler: &mpi4py.Profiler{}}); err == nil {
		t.Error("options with a Profiler hook should refuse to encode")
	}
	if _, err := EncodeOptions(core.Options{}); err == nil {
		t.Error("options without a benchmark should refuse to encode")
	}
}

// TestClientAgainstService drives the real handler over httptest: report
// decode, cache status progression, error mapping, and /stats.
func TestClientAgainstService(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	opts := core.Options{
		Benchmark: "allreduce", Ranks: 4, TimingOnly: true,
		Iters: 3, Warmup: 1, Sizes: []int{1024, 4096},
	}
	rep, status, err := c.Sweep(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheMiss || status.Cached() {
		t.Errorf("first sweep status = %q", status)
	}
	if rep.Benchmark != "allreduce" || rep.Ranks != 4 || len(rep.Rows) != 2 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Rows[0].Size != 1024 || rep.Rows[0].AvgUs <= 0 {
		t.Errorf("row = %+v", rep.Rows[0])
	}
	if rep.Failure != nil {
		t.Errorf("clean run decoded a failure: %+v", rep.Failure)
	}

	rep2, status, err := c.Sweep(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if status != CacheHit || !status.Cached() {
		t.Errorf("second sweep status = %q", status)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("hit decoded differently from miss")
	}

	if _, _, err := c.Sweep(ctx, core.Options{Benchmark: "no_such_bench"}); err == nil {
		t.Error("unknown benchmark should surface the service's 400")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.CacheMisses < 1 {
		t.Errorf("stats = %+v", st)
	}
}
