package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
)

// sweepRequest is the wire form of one benchmark configuration: the JSON
// body of POST /sweep. It mirrors core.Options field for field but spells
// enumerations as strings (mode "py", dtype "float32", ...) so clients
// write what they would pass the CLIs, and every name resolves through the
// same parsers the flags use. Hook fields (Options.Profiler) have no wire
// form on purpose: a callback cannot travel over JSON, and the service's
// cache key must cover everything that shapes the result.
type sweepRequest struct {
	Benchmark      string            `json:"benchmark"`
	Cluster        string            `json:"cluster,omitempty"`
	Impl           string            `json:"impl,omitempty"`
	Mode           string            `json:"mode,omitempty"`
	Buffer         string            `json:"buffer,omitempty"`
	GPU            bool              `json:"gpu,omitempty"`
	Ranks          int               `json:"ranks,omitempty"`
	PPN            int               `json:"ppn,omitempty"`
	MinSize        int               `json:"min_size,omitempty"`
	MaxSize        int               `json:"max_size,omitempty"`
	Iters          int               `json:"iters,omitempty"`
	Warmup         int               `json:"warmup,omitempty"`
	LargeThreshold int               `json:"large_threshold,omitempty"`
	LargeIters     int               `json:"large_iters,omitempty"`
	LargeWarmup    int               `json:"large_warmup,omitempty"`
	Window         int               `json:"window,omitempty"`
	Pairs          int               `json:"pairs,omitempty"`
	TimingOnly     bool              `json:"timing_only,omitempty"`
	Engine         string            `json:"engine,omitempty"`
	NoFold         bool              `json:"no_fold,omitempty"`
	NoSchedFold    bool              `json:"no_schedfold,omitempty"`
	Sizes          []int             `json:"sizes,omitempty"`
	DType          string            `json:"dtype,omitempty"`
	Tuning         tuningJSON        `json:"tuning,omitempty"`
	Algorithms     map[string]string `json:"algorithms,omitempty"`
	Faults         string            `json:"faults,omitempty"`
}

// tuningJSON is the wire form of mpi.Tuning (threshold overrides; zero
// fields keep the runtime defaults).
type tuningJSON struct {
	BcastScatterRingMin      int `json:"bcast_scatter_ring_min,omitempty"`
	AllreduceRabenseifnerMin int `json:"allreduce_rabenseifner_min,omitempty"`
	AllgatherRDMaxTotal      int `json:"allgather_rd_max_total,omitempty"`
	AllgatherBruckMaxTotal   int `json:"allgather_bruck_max_total,omitempty"`
	AlltoallBruckMaxBlock    int `json:"alltoall_bruck_max_block,omitempty"`
}

// decodeOptions reads one sweepRequest from the body and resolves it into
// core options. Unknown fields are rejected rather than ignored: a typo'd
// knob silently falling back to its default would cache and serve numbers
// the client did not ask for.
func decodeOptions(body io.Reader) (core.Options, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req sweepRequest
	if err := dec.Decode(&req); err != nil {
		return core.Options{}, fmt.Errorf("serve: bad request body: %w", err)
	}
	return req.options()
}

// options maps the wire form onto core.Options, resolving every
// enumeration through the same parser its CLI flag uses.
func (req sweepRequest) options() (core.Options, error) {
	opts := core.Options{
		Benchmark:      core.Benchmark(req.Benchmark),
		Cluster:        req.Cluster,
		UseGPU:         req.GPU,
		Ranks:          req.Ranks,
		PPN:            req.PPN,
		MinSize:        req.MinSize,
		MaxSize:        req.MaxSize,
		Iters:          req.Iters,
		Warmup:         req.Warmup,
		LargeThreshold: req.LargeThreshold,
		LargeIters:     req.LargeIters,
		LargeWarmup:    req.LargeWarmup,
		Window:         req.Window,
		Pairs:          req.Pairs,
		TimingOnly:     req.TimingOnly,
		Engine:         req.Engine,
		NoFold:         req.NoFold,
		NoSchedFold:    req.NoSchedFold,
		Sizes:          req.Sizes,
		Algorithms:     req.Algorithms,
		Faults:         req.Faults,
		Tuning: mpi.Tuning{
			BcastScatterRingMin:      req.Tuning.BcastScatterRingMin,
			AllreduceRabenseifnerMin: req.Tuning.AllreduceRabenseifnerMin,
			AllgatherRDMaxTotal:      req.Tuning.AllgatherRDMaxTotal,
			AllgatherBruckMaxTotal:   req.Tuning.AllgatherBruckMaxTotal,
			AlltoallBruckMaxBlock:    req.Tuning.AlltoallBruckMaxBlock,
		},
	}
	if req.Benchmark == "" {
		return core.Options{}, fmt.Errorf("serve: \"benchmark\" is required")
	}
	opts.Impl = netmodel.Impl(req.Impl)
	if req.Mode != "" {
		m, err := core.ParseMode(req.Mode)
		if err != nil {
			return core.Options{}, err
		}
		opts.Mode = m
	}
	if req.Buffer != "" {
		l, err := pybuf.ParseLibrary(req.Buffer)
		if err != nil {
			return core.Options{}, err
		}
		opts.Buffer = l
	}
	if req.DType != "" {
		d, err := mpi.ParseDType(req.DType)
		if err != nil {
			return core.Options{}, err
		}
		opts.DType = d
	}
	return opts, nil
}

// benchmarkInfo is one row of GET /benchmarks: the registry metadata a
// tuning client needs to enumerate the workload space.
type benchmarkInfo struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Columns  string `json:"columns"`
	MinRanks int    `json:"min_ranks,omitempty"`
	// Collective names the runtime collective with selectable algorithms,
	// if the workload has one — the axis an auto-tuner sweeps.
	Collective string `json:"collective,omitempty"`
}

// listBenchmarks renders the benchmark registry for GET /benchmarks.
func listBenchmarks() []benchmarkInfo {
	var out []benchmarkInfo
	for _, b := range core.Benchmarks() {
		info := benchmarkInfo{
			Name:    string(b),
			Kind:    kindName(b.Kind()),
			Columns: columnsName(b.Columns()),
		}
		if spec, err := core.LookupBenchmark(string(b)); err == nil {
			info.MinRanks = spec.MinRanks
		}
		if coll, ok := b.Collective(); ok {
			info.Collective = string(coll)
		}
		out = append(out, info)
	}
	return out
}

func kindName(k core.Kind) string {
	switch k {
	case core.KindPtPt:
		return "pt2pt"
	case core.KindCollective:
		return "collective"
	case core.KindVector:
		return "vector"
	case core.KindOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

func columnsName(c core.Columns) string {
	switch c {
	case core.ColumnsLatency:
		return "latency"
	case core.ColumnsBandwidth:
		return "bandwidth"
	case core.ColumnsOverlap:
		return "overlap"
	case core.ColumnsMessageRate:
		return "message_rate"
	default:
		return fmt.Sprintf("columns(%d)", int(c))
	}
}
