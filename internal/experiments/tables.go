package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

// Table experiments: Table II (the supported-benchmark inventory) and
// Table III (the average-overhead summary matrix).

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Feature matrix of the OMB-Py design (Table I)",
		Run:   table1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Benchmarks supported by OMB-Py (Table II)",
		Run:   table2,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Average OMB-Py overhead summary: CPU latency/Allreduce, GPU buffers (Table III)",
		Run:   table3,
	})
}

// table1 exercises every feature row the paper's Table I claims for the
// OMB-Py design: point-to-point, blocking collectives, vector variants,
// Python-side buffers of all five libraries. Each claim is verified by
// actually running a benchmark that depends on it.
func table1() (*Result, error) {
	var sb strings.Builder
	type claim struct {
		feature string
		opts    core.Options
	}
	claims := []claim{
		{"Point-to-Point", core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.NumPy,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"Blocking Collectives", core.Options{
			Benchmark: core.Allreduce, Mode: core.ModePy, Buffer: pybuf.NumPy,
			Ranks: 4, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"Vector Variant Blocking Collectives", core.Options{
			Benchmark: core.Allgatherv, Mode: core.ModePy, Buffer: pybuf.NumPy,
			Ranks: 4, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"Bytearray Buffers", core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.Bytearray,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"Numpy Buffers", core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.NumPy,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"CuPy Buffers", core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.CuPy,
			Cluster: "bridges2", UseGPU: true,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"PyCUDA Buffers", core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.PyCUDA,
			Cluster: "bridges2", UseGPU: true,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"Numba Buffers", core.Options{
			Benchmark: core.Latency, Mode: core.ModePy, Buffer: pybuf.Numba,
			Cluster: "bridges2", UseGPU: true,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
		{"Pickle (serialized objects)", core.Options{
			Benchmark: core.Latency, Mode: core.ModePickle, Buffer: pybuf.NumPy,
			Ranks: 2, PPN: 2, MinSize: 8, MaxSize: 64, Iters: 3, Warmup: 1}},
	}
	passed := 0
	for _, cl := range claims {
		if _, err := core.Run(cl.opts); err != nil {
			return nil, fmt.Errorf("table1: feature %q failed: %w", cl.feature, err)
		}
		passed++
		fmt.Fprintf(&sb, "%-40s supported (verified by run)\n", cl.feature)
	}
	return &Result{
		ID:    "table1",
		Title: "feature matrix",
		Table: stats.Table{Comment: sb.String()},
		Stats: []Stat{{Name: "Table I feature rows verified", Paper: float64(len(claims)),
			Measured: float64(passed), Unit: ""}},
	}, nil
}

// table2 verifies the benchmark registry implements every workload of the
// paper's Table II (plus the registered post-paper families) by running
// each one end-to-end at a small scale. The drive comes entirely from
// registry metadata: each spec supplies its listing group, minimum rank
// count and supported modes, so new workloads join the table by
// registering themselves.
func table2() (*Result, error) {
	var sb strings.Builder
	for _, b := range core.Benchmarks() {
		spec, err := core.LookupBenchmark(string(b))
		if err != nil {
			return nil, fmt.Errorf("table2: %w", err)
		}
		ranks, mode := spec.InventoryConfig()
		opts := core.Options{
			Benchmark: b, Mode: mode, Buffer: pybuf.NumPy,
			Ranks: ranks, PPN: 2, MinSize: 8, MaxSize: 1024,
			Iters: 3, Warmup: 1,
		}
		if _, err := core.Run(opts); err != nil {
			return nil, fmt.Errorf("table2: %s failed: %w", b, err)
		}
		fmt.Fprintf(&sb, "%-40s %s: ok\n", spec.Group, b)
	}
	return &Result{
		ID:    "table2",
		Title: "supported benchmarks",
		Table: stats.Table{Comment: sb.String()},
		Stats: []Stat{{Name: "benchmarks implemented and passing", Paper: 17,
			Measured: float64(len(core.Benchmarks())), Unit: ""}},
	}, nil
}

// table3 reproduces the paper's overhead summary matrix.
func table3() (*Result, error) {
	row := func(name string, paper float64, f func() (float64, error)) (Stat, error) {
		m, err := f()
		if err != nil {
			return Stat{}, fmt.Errorf("table3 %s: %w", name, err)
		}
		return Stat{Name: name, Paper: paper, Measured: m, Unit: "us"}, nil
	}
	latOver := func(ppn, minS, maxS int) func() (float64, error) {
		return func() (float64, error) {
			omb, ombpy, err := runPair(pairConfig{
				bench: core.Latency, cluster: "frontera", ranks: 2, ppn: ppn,
				minS: minS, maxS: maxS,
			})
			if err != nil {
				return 0, err
			}
			return stats.AvgOverheadUs(ombpy, omb), nil
		}
	}
	allreduceOver := func(minS, maxS int) func() (float64, error) {
		return func() (float64, error) {
			omb, ombpy, err := runPair(pairConfig{
				bench: core.Allreduce, cluster: "frontera", ranks: 16, ppn: 1,
				minS: minS, maxS: maxS,
			})
			if err != nil {
				return 0, err
			}
			return stats.AvgOverheadUs(ombpy, omb), nil
		}
	}
	gpuOver := func(lib pybuf.Library, minS, maxS int) func() (float64, error) {
		return func() (float64, error) {
			base := pairConfig{
				bench: core.Latency, cluster: "bridges2", ranks: 2, ppn: 1,
				useGPU: true, minS: minS, maxS: maxS,
			}
			cRep, err := core.Run(base.options(core.ModeC))
			if err != nil {
				return 0, err
			}
			base.buffer = lib
			pyRep, err := core.Run(base.options(core.ModePy))
			if err != nil {
				return 0, err
			}
			return stats.AvgOverheadUs(&pyRep.Series, &cRep.Series), nil
		}
	}

	type entry struct {
		name  string
		paper float64
		f     func() (float64, error)
	}
	entries := []entry{
		{"small: intra-node latency", 0.44, latOver(2, SmallMin, SmallMax)},
		{"small: inter-node latency", 0.43, latOver(1, SmallMin, SmallMax)},
		{"small: Allreduce 16x1", 0.93, allreduceOver(4, SmallMax)},
		{"small: GPU CuPy latency", 4.33, gpuOver(pybuf.CuPy, SmallMin, SmallMax)},
		{"small: GPU PyCUDA latency", 4.19, gpuOver(pybuf.PyCUDA, SmallMin, SmallMax)},
		{"small: GPU Numba latency", 6.19, gpuOver(pybuf.Numba, SmallMin, SmallMax)},
		{"large: intra-node latency", 2.31, latOver(2, LargeMin, LargeMax)},
		{"large: inter-node latency", 0.63, latOver(1, LargeMin, LargeMax)},
		{"large: Allreduce 16x1", 14.13, allreduceOver(LargeMin, LargeMax)},
		{"large: GPU CuPy latency", 8.67, gpuOver(pybuf.CuPy, LargeMin, LargeMax)},
		{"large: GPU PyCUDA latency", 8.40, gpuOver(pybuf.PyCUDA, LargeMin, LargeMax)},
		{"large: GPU Numba latency", 10.53, gpuOver(pybuf.Numba, LargeMin, LargeMax)},
	}
	var sts []Stat
	for _, e := range entries {
		st, err := row(e.name, e.paper, e.f)
		if err != nil {
			return nil, err
		}
		sts = append(sts, st)
	}
	return &Result{
		ID:    "table3",
		Title: "average overhead matrix",
		Table: stats.Table{Metric: "latency(us)"},
		Stats: sts,
	}, nil
}
