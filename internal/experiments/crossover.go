package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// algo_crossover_scan resolves the ROADMAP question about the allreduce
// recursive_doubling -> rabenseifner switch point: the power-of-two ablation
// (algo_allreduce) measures the crossover near 8 KiB at 16x1, four times
// below the 32 KiB threshold the MVAPICH2-style tuning tables ship. The
// event engine makes a fine-grained scan cheap, so this experiment walks
// the switch region in 1 KiB steps instead of octaves, under both a
// one-rank-per-node placement and a fully subscribed one, and reports where
// the crossover actually sits in each regime.

func init() {
	register(Experiment{
		ID:    "algo_crossover_scan",
		Title: "Allreduce rd->rabenseifner crossover, 1 KiB scan (beyond paper)",
		Run:   runCrossoverScan,
	})
}

// crossoverSizes is the 2-64 KiB axis in 1 KiB steps.
func crossoverSizes() []int {
	var sizes []int
	for s := 2 * 1024; s <= 64*1024; s += 1024 {
		sizes = append(sizes, s)
	}
	return sizes
}

// scanPlacement sweeps rd and rabenseifner over the fine axis on one
// placement and returns both series.
func scanPlacement(ranks, ppn int) (rd, raben *stats.Series, err error) {
	label := fmt.Sprintf("%dx%d", ranks, ppn)
	base := core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: ranks, PPN: ppn, TimingOnly: true, Engine: "event",
		Sizes: crossoverSizes(), MinSize: 2 * 1024, MaxSize: 64 * 1024,
		Iters: 20, Warmup: 2, LargeIters: 20, LargeWarmup: 2,
	}
	res, err := (core.Sweep{Base: base, Variants: []core.Variant{
		{Name: "rd/" + label, Mutate: func(o *core.Options) {
			o.Algorithms = map[string]string{"allreduce": "recursive_doubling"}
		}},
		{Name: "raben/" + label, Mutate: func(o *core.Options) {
			o.Algorithms = map[string]string{"allreduce": "rabenseifner"}
		}},
	}}).Run()
	if err != nil {
		return nil, nil, err
	}
	return &res.Reports[0].Series, &res.Reports[1].Series, nil
}

func runCrossoverScan() (*Result, error) {
	// The ROADMAP's 16x1 configuration, plus full subscription (56 ranks on
	// one Frontera node x 4 nodes) where the tuning tables must also hold.
	rd16, raben16, err := scanPlacement(16, 1)
	if err != nil {
		return nil, err
	}
	rdFull, rabenFull, err := scanPlacement(224, 56)
	if err != nil {
		return nil, err
	}
	shipped := float64(mpi.DefaultTuning().AllreduceRabenseifnerMin)

	cross16 := crossoverSize(rd16, raben16)
	crossFull := crossoverSize(rdFull, rabenFull)

	note := fmt.Sprintf(
		"1 KiB-step scan under the event engine; rabenseifner first beats rd at %s (16x1) and %s (224x56, fully subscribed) vs the shipped 32 KiB threshold. "+
			"The crossover is robustly 5-6 KiB across sparse and fully subscribed placements, so the ~8 KiB reading from algo_allreduce was octave-grid "+
			"resolution, not a placement artifact. Within this calibrated alpha-beta model the shipped threshold is genuinely conservative (~5x): "+
			"production tables evidently hedge against effects the linear model does not price (cache locality of rabenseifner's scattered "+
			"reduce-scatter blocks, segmentation and injection-rate limits at small blocks), not against placement",
		stats.HumanBytes(cross16), stats.HumanBytes(crossFull))

	return &Result{
		ID:    "algo_crossover_scan",
		Title: "allreduce rd->rabenseifner crossover scan",
		Table: stats.Table{
			Title:  "allreduce algorithms, 2-64 KiB in 1 KiB steps",
			Metric: "latency(us)",
			Series: []*stats.Series{rd16, raben16, rdFull, rabenFull},
		},
		Stats: []Stat{
			{Name: "rd -> rabenseifner switch point (16x1)", Paper: shipped,
				Measured: float64(cross16), Unit: "B"},
			{Name: "rd -> rabenseifner switch point (224x56)", Paper: shipped,
				Measured: float64(crossFull), Unit: "B"},
		},
		Notes: note,
	}, nil
}
