package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Pickle experiments, Figures 30-33: mpi4py's serializing object API
// against direct buffers, inter-node on Frontera.

func init() {
	register(Experiment{
		ID:    "fig30",
		Title: "Inter-node CPU latency, small, pickle vs direct buffer, Frontera",
		Run: func() (*Result, error) {
			pk, direct, err := pickleBench(core.Latency, SmallMin, SmallMax)
			if err != nil {
				return nil, err
			}
			return &Result{
				ID:    "fig30",
				Table: stats.Table{Metric: "latency(us)", Series: []*stats.Series{direct, pk}},
				Stats: []Stat{{Name: "avg pickle overhead (small)", Paper: 1.07,
					Measured: stats.AvgOverheadUs(pk, direct), Unit: "us"}},
			}, nil
		},
	})
	register(Experiment{
		ID:    "fig31",
		Title: "Inter-node CPU latency, large, pickle vs direct buffer, Frontera",
		Run: func() (*Result, error) {
			pk, direct, err := pickleBench(core.Latency, LargeMin, BWMax)
			if err != nil {
				return nil, err
			}
			worst, at := stats.MaxOverheadUs(pk, direct)
			return &Result{
				ID:    "fig31",
				Table: stats.Table{Metric: "latency(us)", Series: []*stats.Series{direct, pk}},
				Stats: []Stat{{Name: fmt.Sprintf("max pickle overhead (at %s)", stats.HumanBytes(at)),
					Paper: 1510, Measured: worst, Unit: "us"}},
				Notes: "paper: curves diverge past 64KiB, up to 1510us",
			}, nil
		},
	})
	register(Experiment{
		ID:    "fig32",
		Title: "Inter-node CPU bandwidth, small, pickle vs direct buffer, Frontera",
		Run: func() (*Result, error) {
			pk, direct, err := pickleBench(core.Bandwidth, SmallMin, SmallMax)
			if err != nil {
				return nil, err
			}
			gapAt8K := func() float64 {
				d, _ := direct.Get(8192)
				p, _ := pk.Get(8192)
				return (d.MBps - p.MBps) / 1024
			}
			return &Result{
				ID:    "fig32",
				Table: stats.Table{Metric: "bandwidth(MB/s)", Series: []*stats.Series{direct, pk}},
				Stats: []Stat{{Name: "pickle bandwidth deficit at 8KiB", Paper: 2.4,
					Measured: gapAt8K(), Unit: "GB/s"}},
			}, nil
		},
	})
	register(Experiment{
		ID:    "fig33",
		Title: "Inter-node CPU bandwidth, large, pickle vs direct buffer, Frontera",
		Run: func() (*Result, error) {
			pk, direct, err := pickleBench(core.Bandwidth, LargeMin, BWMax)
			if err != nil {
				return nil, err
			}
			return &Result{
				ID:    "fig33",
				Table: stats.Table{Metric: "bandwidth(MB/s)", Series: []*stats.Series{direct, pk}},
				Stats: []Stat{{Name: "avg pickle bandwidth deficit (large)", Paper: 0,
					Measured: stats.AvgBandwidthGapMBps(pk, direct), Unit: "MB/s"}},
				Notes: "paper reports the pickle curve catching up mid-range then dropping " +
					"again past 64KiB; no single number is quoted",
			}, nil
		},
	})
}

// pickleBench runs a benchmark in Pickle and Py (direct) modes.
func pickleBench(bench core.Benchmark, minS, maxS int) (pickleSeries, directSeries *stats.Series, err error) {
	base := pairConfig{
		bench: bench, cluster: "frontera", ranks: 2, ppn: 1, minS: minS, maxS: maxS,
	}
	direct, err := core.Run(base.options(core.ModePy))
	if err != nil {
		return nil, nil, fmt.Errorf("direct: %w", err)
	}
	direct.Series.Name = "direct-buffer"
	pk, err := core.Run(base.options(core.ModePickle))
	if err != nil {
		return nil, nil, fmt.Errorf("pickle: %w", err)
	}
	pk.Series.Name = "pickle"
	return &pk.Series, &direct.Series, nil
}
