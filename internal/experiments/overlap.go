package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Overlap ablation (beyond the paper's figures): the blocking ablations
// measure where Rabenseifner's allreduce starts beating recursive doubling
// on latency (~8 KiB under the calibrated model at 16x1, 4x below the
// shipped 32 KiB threshold — the ROADMAP's crossover-conservatism
// question). This experiment adds the nonblocking axis as a first
// datapoint: at that crossover region, how much communication can injected
// compute hide under each algorithm? A latency-optimal algorithm whose
// rounds serialize behind compute can lose to a nominally slower one that
// front-loads its injection, so overlap is a second dimension any
// re-tuning of the threshold has to weigh.

// overlapCrossover is the measured blocking rd->rabenseifner crossover at
// 16x1 that the sweep brackets.
const overlapCrossover = 8 * 1024

func init() {
	register(Experiment{
		ID:    "algo_overlap",
		Title: "Iallreduce overlap ablation: recursive doubling vs rabenseifner (beyond paper)",
		Run:   runAlgoOverlap,
	})
}

func runAlgoOverlap() (*Result, error) {
	const ranks = 16
	base := core.Options{
		Benchmark: core.IAllreduce, Mode: core.ModeC, Ranks: ranks, PPN: 1,
		MinSize: overlapCrossover / 4, MaxSize: overlapCrossover * 4,
		TimingOnly: true, Iters: 10, Warmup: 2,
	}
	variants := []core.Variant{
		{Name: "recursive_doubling", Mutate: func(o *core.Options) {
			o.Algorithms = map[string]string{"allreduce": "recursive_doubling"}
		}},
		{Name: "rabenseifner", Mutate: func(o *core.Options) {
			o.Algorithms = map[string]string{"allreduce": "rabenseifner"}
		}},
	}
	res, err := (core.Sweep{Base: base, Variants: variants}).Run()
	if err != nil {
		return nil, err
	}

	// Per-size overlap table and the head-to-head at the crossover size.
	var notes []string
	var sts []Stat
	for i, rep := range res.Reports {
		var rows []string
		for _, row := range rep.Series.Rows {
			rows = append(rows, fmt.Sprintf("%s=%.1f%%", stats.HumanBytes(row.Size), row.OverlapPct))
		}
		notes = append(notes, variants[i].Name+" overlap: "+strings.Join(rows, " "))
		if row, ok := rep.Series.Get(overlapCrossover); ok {
			sts = append(sts, Stat{
				Name:     fmt.Sprintf("%s overlap%% at measured crossover (8 KiB)", variants[i].Name),
				Paper:    100, // full communication/computation overlap
				Measured: row.OverlapPct,
				Unit:     "%",
			})
		}
	}
	return &Result{
		ID:    "algo_overlap",
		Title: "iallreduce overlap ablation at the rd->rabenseifner crossover",
		Table: res.Table("iallreduce total time (compute injected)", "latency(us)"),
		Stats: sts,
		Notes: strings.Join(notes, "; "),
	}, nil
}
