// Package experiments reproduces every figure and table of the paper's
// evaluation (Section IV): each experiment runs the same benchmark
// configuration the paper describes, emits the series the figure plots, and
// reports the summary statistic the paper quotes next to our measured value
// so the reproduction quality is visible at a glance.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

// Message-size ranges follow the paper's small/large split.
const (
	SmallMin = 1
	SmallMax = 8 * 1024
	LargeMin = 16 * 1024
	LargeMax = 1 << 20
	BWMax    = 4 << 20
	// HugeLargeMax caps the large range of the 896-rank experiments, whose
	// figures the paper cuts at 32 KiB anyway (Figure 19 quotes 32 KiB).
	HugeLargeMax = 128 * 1024
)

// Stat is one paper-vs-measured comparison.
type Stat struct {
	Name     string
	Paper    float64
	Measured float64
	Unit     string
}

// Dev returns the measured/paper ratio (1.0 = exact).
func (s Stat) Dev() float64 {
	if s.Paper == 0 {
		return 0
	}
	return s.Measured / s.Paper
}

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	Table stats.Table
	Stats []Stat
	Notes string
}

// Render pretty-prints the result.
func (r *Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	sb.WriteString(r.Table.Render())
	if len(r.Stats) > 0 {
		fmt.Fprintf(&sb, "%-44s %12s %12s %8s\n", "statistic", "paper", "measured", "ratio")
		for _, s := range r.Stats {
			fmt.Fprintf(&sb, "%-44s %9.2f %s %9.2f %s %8.2f\n",
				s.Name, s.Paper, s.Unit, s.Measured, s.Unit, s.Dev())
		}
	}
	if r.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", r.Notes)
	}
	return sb.String()
}

// Experiment is a runnable reproduction of one figure or table.
type Experiment struct {
	ID    string
	Title string
	// Heavy marks the 896-rank full-subscription runs.
	Heavy bool
	Run   func() (*Result, error)
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[strings.ToLower(id)]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return e, nil
}

// IDs lists experiment ids in registration (paper) order.
func IDs() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// latencyPair runs OMB (C) and OMB-Py (direct numpy unless overridden) for
// one latency-style benchmark and returns both series.
type pairConfig struct {
	bench      core.Benchmark
	cluster    string
	impl       netmodel.Impl
	ranks, ppn int
	useGPU     bool
	buffer     pybuf.Library
	minS, maxS int
	timingOnly bool
	iters      int
	warmup     int
}

func (pc pairConfig) options(mode core.Mode) core.Options {
	buf := pc.buffer
	if mode == core.ModeC {
		buf = pybuf.Bytearray // ignored by the C path
	}
	impl := pc.impl
	if impl == "" {
		impl = netmodel.MVAPICH2
	}
	return core.Options{
		Benchmark:  pc.bench,
		Cluster:    pc.cluster,
		Impl:       impl,
		Mode:       mode,
		Buffer:     buf,
		UseGPU:     pc.useGPU,
		Ranks:      pc.ranks,
		PPN:        pc.ppn,
		MinSize:    pc.minS,
		MaxSize:    pc.maxS,
		TimingOnly: pc.timingOnly,
		Iters:      pc.iters,
		Warmup:     pc.warmup,
	}
}

// runPair executes both modes as a two-variant sweep, so ombrepro's
// -parallel flag overlaps them on the sweep engine's worker pool.
func runPair(pc pairConfig) (omb, ombpy *stats.Series, err error) {
	if pc.buffer == 0 && !pc.useGPU {
		pc.buffer = pybuf.NumPy
	}
	sw := core.Sweep{
		Base: pc.options(core.ModeC),
		Variants: []core.Variant{
			{Name: "OMB"},
			{Name: "OMB-Py", Mutate: func(o *core.Options) { *o = pc.options(core.ModePy) }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		return nil, nil, err
	}
	return &res.Reports[0].Series, &res.Reports[1].Series, nil
}
