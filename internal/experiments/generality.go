package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netmodel"
	"repro/internal/stats"
)

// Generality experiments, Figures 26-29: OMB-Py under MVAPICH2 vs Intel MPI
// on Frontera (inter-node latency and bandwidth).

func init() {
	register(Experiment{
		ID:    "fig26",
		Title: "Inter-node CPU latency, small, OMB-Py with MVAPICH2 vs Intel MPI, Frontera",
		Run: func() (*Result, error) {
			return implCompare("fig26", core.Latency, SmallMin, SmallMax, true, 0.36)
		},
	})
	register(Experiment{
		ID:    "fig27",
		Title: "Inter-node CPU latency, large, OMB-Py with MVAPICH2 vs Intel MPI, Frontera",
		Run: func() (*Result, error) {
			return implCompare("fig27", core.Latency, LargeMin, LargeMax, true, 0.36)
		},
	})
	register(Experiment{
		ID:    "fig28",
		Title: "Inter-node CPU bandwidth, small, OMB-Py with MVAPICH2 vs Intel MPI, Frontera",
		Run: func() (*Result, error) {
			return implCompare("fig28", core.Bandwidth, SmallMin, SmallMax, false, 856)
		},
	})
	register(Experiment{
		ID:    "fig29",
		Title: "Inter-node CPU bandwidth, large, OMB-Py with MVAPICH2 vs Intel MPI, Frontera",
		Run: func() (*Result, error) {
			return implCompare("fig29", core.Bandwidth, LargeMin, BWMax, false, 856)
		},
	})
}

// implCompare runs OMB-Py under both MPI implementations across the FULL
// size range -- the paper quotes one average over all message sizes (0.36
// us latency, 856 MB/s bandwidth) -- and tables only the requested window.
func implCompare(id string, bench core.Benchmark, minS, maxS int, latency bool, paper float64) (*Result, error) {
	fullMax := LargeMax
	if !latency {
		fullMax = BWMax
	}
	run := func(impl netmodel.Impl) (*stats.Series, error) {
		pc := pairConfig{
			bench: bench, cluster: "frontera", impl: impl,
			ranks: 2, ppn: 1, minS: SmallMin, maxS: fullMax,
		}
		rep, err := core.Run(pc.options(core.ModePy))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", impl, err)
		}
		rep.Series.Name = "OMB-Py/" + string(impl)
		return &rep.Series, nil
	}
	mv, err := run(netmodel.MVAPICH2)
	if err != nil {
		return nil, err
	}
	impi, err := run(netmodel.IntelMPI)
	if err != nil {
		return nil, err
	}
	window := func(s *stats.Series) *stats.Series {
		out := &stats.Series{Name: s.Name}
		for _, r := range s.Rows {
			if r.Size >= minS && r.Size <= maxS {
				out.Rows = append(out.Rows, r)
			}
		}
		return out
	}
	res := &Result{
		ID:    id,
		Table: stats.Table{Series: []*stats.Series{window(mv), window(impi)}},
	}
	if latency {
		res.Table.Metric = "latency(us)"
		res.Stats = []Stat{{Name: "avg Intel MPI latency delta (all sizes)", Paper: paper,
			Measured: stats.AvgOverheadUs(impi, mv), Unit: "us"}}
	} else {
		res.Table.Metric = "bandwidth(MB/s)"
		res.Stats = []Stat{{Name: "avg Intel MPI bandwidth deficit (all sizes)", Paper: paper,
			Measured: stats.AvgBandwidthGapMBps(impi, mv), Unit: "MB/s"}}
	}
	res.Notes = "the paper quotes one average across all message sizes; the table shows this figure's window"
	return res, nil
}
