package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryFigureAndTable(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"fig24", "fig25", "fig26", "fig27", "fig28", "fig29", "fig30",
		"fig31", "fig32", "fig33", "fig34",
		"algo_bcast", "algo_allreduce", "algo_allgather", "algo_alltoall",
		"algo_reduce_scatter", "algo_overlap", "algo_crossover_scan",
		"algo_noise", "algo_autotune",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from the registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig2" || e.Run == nil {
		t.Errorf("ByID returned %+v", e)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id should fail")
	}
	if _, err := ByID("FIG2"); err != nil {
		t.Error("lookup should be case-insensitive")
	}
}

func TestHeavyFlags(t *testing.T) {
	heavy := map[string]bool{"fig14": true, "fig15": true, "fig18": true, "fig19": true}
	for _, e := range All() {
		if e.Heavy != heavy[e.ID] {
			t.Errorf("%s: Heavy = %v", e.ID, e.Heavy)
		}
	}
}

// TestLightExperimentsShapeHolds runs a representative subset end-to-end
// and asserts the paper's qualitative findings (not exact numbers): OMB-Py
// overhead positive, within 3x of the paper's quoted statistic.
func TestLightExperimentsShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs take seconds each")
	}
	for _, id := range []string{"fig2", "fig8", "fig12", "fig20", "fig30"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Stats) == 0 {
			t.Fatalf("%s: no statistics", id)
		}
		for _, s := range res.Stats {
			if s.Measured <= 0 {
				t.Errorf("%s %q: measured %v not positive", id, s.Name, s.Measured)
			}
			if s.Paper > 0 {
				if r := s.Dev(); r < 1.0/3 || r > 3 {
					t.Errorf("%s %q: ratio %0.2f outside [1/3, 3] (paper %v, measured %v)",
						id, s.Name, r, s.Paper, s.Measured)
				}
			}
		}
	}
}

func TestResultRender(t *testing.T) {
	res := &Result{
		ID:    "demo",
		Title: "demo title",
		Stats: []Stat{{Name: "x", Paper: 2, Measured: 1, Unit: "us"}},
		Notes: "a note",
	}
	out := res.Render()
	for _, want := range []string{"demo title", "statistic", "0.50", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
}

func TestStatDev(t *testing.T) {
	if (Stat{Paper: 2, Measured: 1}).Dev() != 0.5 {
		t.Error("Dev wrong")
	}
	if (Stat{Paper: 0, Measured: 1}).Dev() != 0 {
		t.Error("Dev with zero paper should be 0")
	}
}
