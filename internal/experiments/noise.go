package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// algo_noise asks whether the algo_crossover_scan conclusion survives an
// imperfect machine. The crossover scan runs on a noiseless model, but the
// tuning tables it judges were measured on real clusters with OS noise and
// link-level jitter. This experiment re-runs the 16x1 fine scan under a
// seeded fault plan (2 us compute noise per collective entry plus 10% link
// jitter) and compares the rd -> rabenseifner switch point against the
// clean scan. Because the fault layer is deterministic, the noisy scan is
// exactly reproducible: same plan, same numbers, on either engine.

func init() {
	register(Experiment{
		ID:    "algo_noise",
		Title: "Allreduce crossover under OS noise and link jitter (beyond paper)",
		Run:   runNoiseScan,
	})
}

// noisePlan is the fault plan under which the scan repeats: per-entry
// compute noise at sigma 2 us and 10% wire-time jitter, seed pinned for
// reproducibility.
const noisePlan = "noise:sigma=2us; jitter:link=0.1; seed:7"

// scanPlacementFaults is scanPlacement with a fault plan attached.
func scanPlacementFaults(ranks, ppn int, faultSpec, tag string) (rd, raben *stats.Series, err error) {
	label := fmt.Sprintf("%dx%d%s", ranks, ppn, tag)
	base := core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: ranks, PPN: ppn, TimingOnly: true, Engine: "event",
		Sizes: crossoverSizes(), MinSize: 2 * 1024, MaxSize: 64 * 1024,
		Iters: 20, Warmup: 2, LargeIters: 20, LargeWarmup: 2,
		Faults: faultSpec,
	}
	res, err := (core.Sweep{Base: base, Variants: []core.Variant{
		{Name: "rd/" + label, Mutate: func(o *core.Options) {
			o.Algorithms = map[string]string{"allreduce": "recursive_doubling"}
		}},
		{Name: "raben/" + label, Mutate: func(o *core.Options) {
			o.Algorithms = map[string]string{"allreduce": "rabenseifner"}
		}},
	}}).Run()
	if err != nil {
		return nil, nil, err
	}
	return &res.Reports[0].Series, &res.Reports[1].Series, nil
}

func runNoiseScan() (*Result, error) {
	rdClean, rabenClean, err := scanPlacementFaults(16, 1, "", "/clean")
	if err != nil {
		return nil, err
	}
	rdNoisy, rabenNoisy, err := scanPlacementFaults(16, 1, noisePlan, "/noisy")
	if err != nil {
		return nil, err
	}

	crossClean := crossoverSize(rdClean, rabenClean)
	crossNoisy := crossoverSize(rdNoisy, rabenNoisy)

	note := fmt.Sprintf(
		"16x1 crossover scan repeated under the deterministic fault plan %q. "+
			"Clean crossover %s, noisy crossover %s. Additive per-entry noise charges both algorithms "+
			"roughly equally per collective call, so the switch point moves little; what noise does do is "+
			"compress the relative gap near the crossover, which is one mechanism behind production "+
			"thresholds sitting far above the noiseless optimum — a hedge costs little when the margin "+
			"is within the noise floor. The noisy series is bit-reproducible (seeded counter-based PRNG), "+
			"so this figure regenerates identically on every run and engine",
		noisePlan, stats.HumanBytes(crossClean), stats.HumanBytes(crossNoisy))

	return &Result{
		ID:    "algo_noise",
		Title: "allreduce crossover under noise",
		Table: stats.Table{
			Title:  "allreduce algorithms 16x1, clean vs noise+jitter",
			Metric: "latency(us)",
			Series: []*stats.Series{rdClean, rabenClean, rdNoisy, rabenNoisy},
		},
		Stats: []Stat{
			{Name: "rd -> rabenseifner switch point (clean)", Paper: float64(crossClean),
				Measured: float64(crossClean), Unit: "B"},
			{Name: "rd -> rabenseifner switch point (noisy)", Paper: float64(crossClean),
				Measured: float64(crossNoisy), Unit: "B"},
		},
		Notes: note,
	}, nil
}
