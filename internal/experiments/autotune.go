package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/tune"
)

// algo_autotune closes the ROADMAP's tuning loop: instead of scanning one
// threshold by hand (algo_crossover_scan), it runs the ALNS/bandit
// auto-tuner over the full collective-selection policy space at the
// paper's sparse (16x1) and fully subscribed (224x56) placements and
// compares the generated tuning table against the shipped MVAPICH2-style
// defaults. The tuner's dominance guard means the generated table must be
// at least as fast on every (placement, collective, size) cell; this
// experiment verifies that end to end and reports where the search
// disagrees with the shipped thresholds.

func init() {
	register(Experiment{
		ID:    "algo_autotune",
		Title: "ALNS auto-tuned selection policy vs shipped defaults (beyond paper)",
		Run:   runAutotune,
	})
}

// autotunePlacements are the two regimes the tuning tables must hold in.
var autotunePlacements = []tune.Placement{{Ranks: 16, PPN: 1}, {Ranks: 224, PPN: 56}}

func runAutotune() (*Result, error) {
	res, err := tune.Run(context.Background(), tune.Config{
		Seed:       1,
		Iterations: 160,
		Placements: autotunePlacements,
		Workers:    4,
	})
	if err != nil {
		return nil, err
	}
	prov := res.Provenance

	// The dominance guard is the experiment's contract: fail loudly if any
	// shipped cell regressed rather than quietly reporting it.
	var table stats.Table
	table.Title = "collective suite latency, shipped defaults vs generated table"
	table.Metric = "latency(us)"
	cellsTotal, cellsImproved := 0, 0
	var disagreements []string
	perPlacement := map[string][2]float64{} // placement -> {shipped, tuned}
	for _, pl := range autotunePlacements {
		label := pl.String()
		shipped := &stats.Series{Name: label + " shipped"}
		tuned := &stats.Series{Name: label + " tuned"}
		sums := map[int][2]float64{}
		var totals [2]float64
		for _, cr := range prov.Contexts {
			if cr.Placement != label {
				continue
			}
			for _, cell := range cr.Cells {
				if cell.TunedUs > cell.DefaultUs {
					return nil, fmt.Errorf(
						"algo_autotune: dominance guard violated: %s/%s size %d tuned %.3fus > shipped %.3fus",
						cr.Placement, cr.Collective, cell.Size, cell.TunedUs, cell.DefaultUs)
				}
				cellsTotal++
				if cell.TunedUs < cell.DefaultUs {
					cellsImproved++
				}
				s := sums[cell.Size]
				s[0] += cell.DefaultUs
				s[1] += cell.TunedUs
				sums[cell.Size] = s
			}
			totals[0] += cr.DefaultUs
			totals[1] += cr.TunedUs
			if cr.Source != "default" {
				disagreements = append(disagreements, describeDisagreement(cr))
			}
		}
		sizes := make([]int, 0, len(sums))
		for sz := range sums {
			sizes = append(sizes, sz)
		}
		sort.Ints(sizes)
		for _, sz := range sizes {
			shipped.Rows = append(shipped.Rows, stats.Row{Size: sz, AvgUs: sums[sz][0]})
			tuned.Rows = append(tuned.Rows, stats.Row{Size: sz, AvgUs: sums[sz][1]})
		}
		table.Series = append(table.Series, shipped, tuned)
		perPlacement[label] = totals
	}

	result := &Result{
		ID:    "algo_autotune",
		Title: "ALNS auto-tuned selection policy vs shipped defaults (beyond paper)",
		Table: table,
	}
	// "Paper" here is the shipped MVAPICH2-style default, so ratio <= 1.0
	// is the dominance guarantee made visible.
	for _, pl := range autotunePlacements {
		t := perPlacement[pl.String()]
		result.Stats = append(result.Stats, Stat{
			Name:     pl.String() + " suite latency (shipped -> tuned)",
			Paper:    t[0],
			Measured: t[1],
			Unit:     "us",
		})
	}
	result.Stats = append(result.Stats,
		Stat{Name: "cells at least as fast as shipped", Paper: float64(cellsTotal),
			Measured: float64(cellsTotal), Unit: "cells"},
		Stat{Name: "cells strictly faster than shipped", Paper: float64(cellsTotal),
			Measured: float64(cellsImproved), Unit: "cells"},
	)
	result.Notes = fmt.Sprintf(
		"seed %d, %d iterations, %d probe evaluations (%.0f%% answered by the content-addressed cache); "+
			"overall modeled suite latency %.1fus -> %.1fus (%.2f%% better). The generated table dominates the shipped "+
			"defaults on every cell by construction (the tuner's finalize step falls back per context). Where the search "+
			"disagrees with the shipped policy: %s. Regenerate with: ombtune -seed %d -iters %d; apply with "+
			"ombrepro/ombpy -tuning-table FILE.",
		prov.Seed, prov.Iterations, prov.Evaluations, 100*prov.CacheHitRatio,
		prov.DefaultTotalUs, prov.TunedTotalUs, prov.ImprovementPct,
		strings.Join(disagreements, "; "), prov.Seed, prov.Iterations)
	return result, nil
}

// describeDisagreement summarizes how one tuned context departs from the
// shipped defaults, listing only the thresholds the search actually moved.
func describeDisagreement(cr tune.ContextReport) string {
	def := mpi.DefaultTuning()
	shipped := map[string]int{
		"bcast_scatter_ring_min":     def.BcastScatterRingMin,
		"allreduce_rabenseifner_min": def.AllreduceRabenseifnerMin,
		"allgather_rd_max_total":     def.AllgatherRDMaxTotal,
		"allgather_bruck_max_total":  def.AllgatherBruckMaxTotal,
		"alltoall_bruck_max_block":   def.AlltoallBruckMaxBlock,
	}
	var parts []string
	names := make([]string, 0, len(cr.Thresholds))
	for name := range cr.Thresholds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := cr.Thresholds[name]; v != shipped[name] {
			parts = append(parts, fmt.Sprintf("%s %d->%d", name, shipped[name], v))
		}
	}
	if cr.Forced != "" {
		parts = append(parts, "forced "+cr.Forced)
	}
	if len(parts) == 0 {
		parts = append(parts, "shipped thresholds, different finalize candidate")
	}
	return fmt.Sprintf("%s %s (%+.1f%%): %s",
		cr.Placement, cr.Collective, -cr.ImprovementPct, strings.Join(parts, ", "))
}
