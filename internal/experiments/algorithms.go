package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/stats"
)

// Algorithm-ablation experiments (beyond the paper's figures): for every
// collective with selectable algorithms, force each registered algorithm in
// turn over the full message-size sweep and emit one series per algorithm
// plus a crossover table -- the measured analogue of the MVAPICH2 tuning
// tables the registry's default policy encodes. The variants run on the
// parallel sweep engine (ombrepro -parallel).

// algoAblation describes one per-collective ablation.
type algoAblation struct {
	coll  mpi.Collective
	bench core.Benchmark
	// crossA/crossB name the small- and large-message algorithms of the
	// shipped switch point; paperSwitch is the threshold the default
	// tuning tables encode, in the bytes of the experiment's size axis.
	crossA, crossB string
	paperSwitch    float64
}

func init() {
	d := mpi.DefaultTuning()
	const ranks = 16 // power of two so every registered algorithm is feasible
	cases := []algoAblation{
		{coll: mpi.CollBcast, bench: core.Bcast,
			crossA: "binomial", crossB: "scatter_ring",
			paperSwitch: float64(d.BcastScatterRingMin)},
		{coll: mpi.CollAllreduce, bench: core.Allreduce,
			crossA: "recursive_doubling", crossB: "rabenseifner",
			paperSwitch: float64(d.AllreduceRabenseifnerMin)},
		{coll: mpi.CollAllgather, bench: core.Allgather,
			crossA: "bruck", crossB: "ring",
			// The allgather thresholds bound the total payload; the size
			// axis is the per-rank block.
			paperSwitch: float64(d.AllgatherBruckMaxTotal / ranks)},
		{coll: mpi.CollAlltoall, bench: core.Alltoall,
			crossA: "bruck", crossB: "pairwise",
			paperSwitch: float64(d.AlltoallBruckMaxBlock)},
		{coll: mpi.CollReduceScatter, bench: core.ReduceScatter},
	}
	for _, ac := range cases {
		ac := ac
		register(Experiment{
			ID: "algo_" + string(ac.coll),
			Title: fmt.Sprintf("Algorithm ablation: %s on %d ranks (beyond paper)",
				ac.coll, ranks),
			Run: func() (*Result, error) { return ac.run(ranks) },
		})
	}
}

// run sweeps every registered algorithm of the collective.
func (ac algoAblation) run(ranks int) (*Result, error) {
	base := core.Options{
		Benchmark: ac.bench, Mode: core.ModeC, Ranks: ranks, PPN: 1,
		MinSize: 4, MaxSize: 1 << 20, TimingOnly: true,
		Iters: 10, Warmup: 2,
	}
	variants, err := core.AlgorithmVariants(base)
	if err != nil {
		return nil, err
	}
	res, err := (core.Sweep{Base: base, Variants: variants}).Run()
	if err != nil {
		return nil, err
	}
	series := res.Series()

	// Crossover table: for every algorithm pair, the smallest size at
	// which the later-registered (large-message) algorithm wins.
	var crosses []string
	for i := 0; i < len(series); i++ {
		for j := i + 1; j < len(series); j++ {
			at := crossoverSize(series[i], series[j])
			if at == 0 {
				crosses = append(crosses,
					fmt.Sprintf("%s never beats %s", series[j].Name, series[i].Name))
				continue
			}
			crosses = append(crosses,
				fmt.Sprintf("%s beats %s from %s", series[j].Name, series[i].Name, stats.HumanBytes(at)))
		}
	}

	var sts []Stat
	if ac.crossA != "" {
		measured := crossoverSize(seriesByName(series, ac.crossA), seriesByName(series, ac.crossB))
		sts = append(sts, Stat{
			Name:     fmt.Sprintf("%s -> %s switch point", ac.crossA, ac.crossB),
			Paper:    ac.paperSwitch, // the shipped tuning-table threshold
			Measured: float64(measured),
			Unit:     "B",
		})
	}
	return &Result{
		ID:    "algo_" + string(ac.coll),
		Title: string(ac.coll) + " algorithm ablation",
		Table: res.Table(string(ac.coll)+" algorithms", "latency(us)"),
		Stats: sts,
		Notes: "crossovers: " + strings.Join(crosses, "; "),
	}, nil
}

// seriesByName finds a series by its variant name.
func seriesByName(series []*stats.Series, name string) *stats.Series {
	for _, s := range series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// crossoverSize returns the smallest size at which b is strictly faster
// than a, or 0 when it never is. Both series cover the same size axis.
func crossoverSize(a, b *stats.Series) int {
	if a == nil || b == nil {
		return 0
	}
	for _, row := range a.Rows {
		other, ok := b.Get(row.Size)
		if !ok {
			continue
		}
		if other.AvgUs < row.AvgUs {
			return row.Size
		}
	}
	return 0
}
