package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// CPU experiments: Figures 2-19 (point-to-point intra/inter-node latency
// and bandwidth on Frontera/Stampede2/RI2; Allreduce and Allgather
// collectives at 16 nodes with 1 and 56 processes per node).

func init() {
	// --- Intra-node latency, Figures 2-7 ---
	type intraCase struct {
		figSmall, figLarge string
		cluster            string
		paperSmall         float64
		paperLarge         float64
	}
	for _, ic := range []intraCase{
		{"fig2", "fig3", "frontera", 0.44, 2.31},
		{"fig4", "fig5", "stampede2", 0.41, 4.13},
		{"fig6", "fig7", "ri2", 0.41, 1.76},
	} {
		ic := ic
		register(Experiment{
			ID:    ic.figSmall,
			Title: fmt.Sprintf("Intra-node CPU latency, small messages, %s (OMB vs OMB-Py)", ic.cluster),
			Run: func() (*Result, error) {
				return latencyOverhead(ic.figSmall, ic.cluster, 2, 2, SmallMin, SmallMax,
					"avg OMB-Py overhead (small)", ic.paperSmall)
			},
		})
		register(Experiment{
			ID:    ic.figLarge,
			Title: fmt.Sprintf("Intra-node CPU latency, large messages, %s (OMB vs OMB-Py)", ic.cluster),
			Run: func() (*Result, error) {
				return latencyOverhead(ic.figLarge, ic.cluster, 2, 2, LargeMin, LargeMax,
					"avg OMB-Py overhead (large)", ic.paperLarge)
			},
		})
	}

	// --- Inter-node latency, Figures 8-9 ---
	register(Experiment{
		ID:    "fig8",
		Title: "Inter-node CPU latency, small messages, Frontera (OMB vs OMB-Py)",
		Run: func() (*Result, error) {
			return latencyOverhead("fig8", "frontera", 2, 1, SmallMin, SmallMax,
				"avg OMB-Py overhead (small)", 0.43)
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Inter-node CPU latency, large messages, Frontera (OMB vs OMB-Py)",
		Run: func() (*Result, error) {
			return latencyOverhead("fig9", "frontera", 2, 1, LargeMin, LargeMax,
				"avg OMB-Py overhead (large)", 0.63)
		},
	})

	// --- Inter-node bandwidth, Figures 10-11 ---
	register(Experiment{
		ID:    "fig10",
		Title: "Inter-node CPU bandwidth, small messages, Frontera (OMB vs OMB-Py)",
		Run: func() (*Result, error) {
			return bandwidthGap("fig10", "frontera", SmallMin, SmallMax,
				"avg OMB-Py bandwidth deficit 512B-8KiB", 1.05*1024, 512)
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Inter-node CPU bandwidth, large messages, Frontera (OMB vs OMB-Py)",
		Run: func() (*Result, error) {
			return bandwidthGap("fig11", "frontera", LargeMin, BWMax,
				"avg OMB-Py bandwidth deficit (large)", 331, 0)
		},
	})

	// --- Allreduce, Figures 12-15 ---
	register(Experiment{
		ID:    "fig12",
		Title: "Allreduce CPU latency, small, 16 nodes x 1 ppn, Frontera",
		Run: func() (*Result, error) {
			return collectiveOverhead("fig12", core.Allreduce, 16, 1, 4, SmallMax, false,
				"avg OMB-Py overhead (small)", 0.93)
		},
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Allreduce CPU latency, large, 16 nodes x 1 ppn, Frontera",
		Run: func() (*Result, error) {
			return collectiveOverhead("fig13", core.Allreduce, 16, 1, LargeMin, LargeMax, false,
				"avg OMB-Py overhead (large)", 14.13)
		},
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Allreduce CPU latency, small, 16 nodes x 56 ppn (full subscription), Frontera",
		Heavy: true,
		Run: func() (*Result, error) {
			return collectiveOverhead("fig14", core.Allreduce, 896, 56, 4, SmallMax, true,
				"avg OMB-Py overhead (small)", 4.21)
		},
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Allreduce CPU latency, large, 16 nodes x 56 ppn (full subscription), Frontera",
		Heavy: true,
		Run: func() (*Result, error) {
			res, err := collectiveOverhead("fig15", core.Allreduce, 896, 56, LargeMin, HugeLargeMax, true,
				"avg OMB-Py overhead (large)", 0)
			if err != nil {
				return nil, err
			}
			// The paper quotes no single number here; it reports degradation
			// from THREAD_MULTIPLE oversubscription. Require Py >> C.
			res.Stats = res.Stats[:0]
			res.Notes = "paper reports large-message degradation under full subscription " +
				"(THREAD_MULTIPLE oversubscribes cores); compare the two columns"
			return res, nil
		},
	})

	// --- Allgather, Figures 16-19 ---
	register(Experiment{
		ID:    "fig16",
		Title: "Allgather CPU latency, small, 16 nodes x 1 ppn, Frontera",
		Run: func() (*Result, error) {
			return collectiveOverhead("fig16", core.Allgather, 16, 1, SmallMin, SmallMax, false,
				"avg OMB-Py overhead (small)", 0.92)
		},
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Allgather CPU latency, large, 16 nodes x 1 ppn, Frontera",
		Run: func() (*Result, error) {
			return collectiveOverhead("fig17", core.Allgather, 16, 1, LargeMin, LargeMax, false,
				"avg OMB-Py overhead (large)", 23.4)
		},
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Allgather CPU latency, small, 16 nodes x 56 ppn (full subscription), Frontera",
		Heavy: true,
		Run:   fig18,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "Allgather CPU latency, large, 16 nodes x 56 ppn (full subscription), Frontera",
		Heavy: true,
		Run:   fig19,
	})
}

// latencyOverhead runs the latency pair and reports the average overhead.
func latencyOverhead(id, cluster string, ranks, ppn, minS, maxS int, statName string, paper float64) (*Result, error) {
	omb, ombpy, err := runPair(pairConfig{
		bench: core.Latency, cluster: cluster, ranks: ranks, ppn: ppn,
		minS: minS, maxS: maxS,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    id,
		Table: stats.Table{Metric: "latency(us)", Series: []*stats.Series{omb, ombpy}},
		Stats: []Stat{{Name: statName, Paper: paper,
			Measured: stats.AvgOverheadUs(ombpy, omb), Unit: "us"}},
	}, nil
}

// bandwidthGap runs the bandwidth pair and reports the average deficit over
// sizes >= gapMin (0 = all sizes).
func bandwidthGap(id, cluster string, minS, maxS int, statName string, paperMBps float64, gapMin int) (*Result, error) {
	omb, ombpy, err := runPair(pairConfig{
		bench: core.Bandwidth, cluster: cluster, ranks: 2, ppn: 1,
		minS: minS, maxS: maxS,
	})
	if err != nil {
		return nil, err
	}
	filtered := func(s *stats.Series) *stats.Series {
		if gapMin == 0 {
			return s
		}
		out := &stats.Series{Name: s.Name}
		for _, r := range s.Rows {
			if r.Size >= gapMin {
				out.Rows = append(out.Rows, r)
			}
		}
		return out
	}
	return &Result{
		ID:    id,
		Table: stats.Table{Metric: "bandwidth(MB/s)", Series: []*stats.Series{omb, ombpy}},
		Stats: []Stat{{Name: statName, Paper: paperMBps,
			Measured: stats.AvgBandwidthGapMBps(filtered(ombpy), filtered(omb)), Unit: "MB/s"}},
	}, nil
}

// collectiveOverhead runs a collective pair and reports average overhead.
func collectiveOverhead(id string, bench core.Benchmark, ranks, ppn, minS, maxS int, heavy bool, statName string, paper float64) (*Result, error) {
	pc := pairConfig{
		bench: bench, cluster: "frontera", ranks: ranks, ppn: ppn,
		minS: minS, maxS: maxS,
	}
	if heavy {
		pc.timingOnly = true
		pc.iters, pc.warmup = 3, 1
	}
	omb, ombpy, err := runPair(pc)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:    id,
		Table: stats.Table{Metric: "latency(us)", Series: []*stats.Series{omb, ombpy}},
	}
	if paper != 0 {
		res.Stats = []Stat{{Name: statName, Paper: paper,
			Measured: stats.AvgOverheadUs(ombpy, omb), Unit: "us"}}
	}
	return res, nil
}

// fig18: the paper reports overhead growing from ~8 us at 1 B to ~345 us at
// 8 KiB under full subscription.
func fig18() (*Result, error) {
	omb, ombpy, err := runPair(pairConfig{
		bench: core.Allgather, cluster: "frontera", ranks: 896, ppn: 56,
		minS: SmallMin, maxS: SmallMax, timingOnly: true, iters: 3, warmup: 1,
	})
	if err != nil {
		return nil, err
	}
	at := func(s *stats.Series, size int) float64 {
		r, _ := s.Get(size)
		return r.AvgUs
	}
	return &Result{
		ID:    "fig18",
		Table: stats.Table{Metric: "latency(us)", Series: []*stats.Series{omb, ombpy}},
		Stats: []Stat{
			{Name: "OMB-Py overhead at 1B", Paper: 8,
				Measured: at(ombpy, 1) - at(omb, 1), Unit: "us"},
			{Name: "OMB-Py overhead at 8KiB", Paper: 345,
				Measured: at(ombpy, 8192) - at(omb, 8192), Unit: "us"},
		},
	}, nil
}

// fig19: overhead up to ~41 ms at 32 KiB, ~16 ms average over the range.
func fig19() (*Result, error) {
	// The paper's Figure 19 reports 41 ms at 32 KiB and a 16 ms range
	// average, which brackets its plotted range around 16-32 KiB; larger
	// sizes at 896 ranks would dwarf those numbers on any model.
	omb, ombpy, err := runPair(pairConfig{
		bench: core.Allgather, cluster: "frontera", ranks: 896, ppn: 56,
		minS: LargeMin, maxS: 32 * 1024, timingOnly: true, iters: 2, warmup: 1,
	})
	if err != nil {
		return nil, err
	}
	at := func(s *stats.Series, size int) float64 {
		r, _ := s.Get(size)
		return r.AvgUs
	}
	return &Result{
		ID:    "fig19",
		Table: stats.Table{Metric: "latency(us)", Series: []*stats.Series{omb, ombpy}},
		Stats: []Stat{
			{Name: "OMB-Py overhead at 32KiB", Paper: 41000,
				Measured: at(ombpy, 32*1024) - at(omb, 32*1024), Unit: "us"},
			{Name: "avg OMB-Py overhead (range)", Paper: 16000,
				Measured: stats.AvgOverheadUs(ombpy, omb), Unit: "us"},
		},
	}, nil
}
