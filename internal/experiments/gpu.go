package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi4py"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

// GPU experiments on Bridges-2: point-to-point latency (Figures 20-21),
// Allreduce (22-23) and Allgather (24-25) on 16 GPUs, and the staging
// overhead breakdown (Figure 34).

func init() {
	type gpuCase struct {
		id, title  string
		bench      core.Benchmark
		ranks, ppn int
		minS, maxS int
		paper      map[pybuf.Library]float64
	}
	cases := []gpuCase{
		{"fig20", "GPU latency, small, 2 GPUs on 2 nodes, Bridges-2", core.Latency, 2, 1,
			SmallMin, SmallMax,
			map[pybuf.Library]float64{pybuf.CuPy: 4.33, pybuf.PyCUDA: 4.19, pybuf.Numba: 6.19}},
		{"fig21", "GPU latency, large, 2 GPUs on 2 nodes, Bridges-2", core.Latency, 2, 1,
			LargeMin, LargeMax,
			map[pybuf.Library]float64{pybuf.CuPy: 8.67, pybuf.PyCUDA: 8.40, pybuf.Numba: 10.53}},
		{"fig22", "Allreduce GPU latency, small, 16 GPUs (2x8), Bridges-2", core.Allreduce, 16, 8,
			4, SmallMax,
			map[pybuf.Library]float64{pybuf.CuPy: 8.19, pybuf.PyCUDA: 6.98, pybuf.Numba: 12.07}},
		{"fig23", "Allreduce GPU latency, large, 16 GPUs (2x8), Bridges-2", core.Allreduce, 16, 8,
			LargeMin, LargeMax,
			map[pybuf.Library]float64{pybuf.CuPy: 11.42, pybuf.PyCUDA: 12.17, pybuf.Numba: 14.76}},
		{"fig24", "Allgather GPU latency, small, 16 GPUs (2x8), Bridges-2", core.Allgather, 16, 8,
			SmallMin, SmallMax,
			map[pybuf.Library]float64{pybuf.CuPy: 10.63, pybuf.PyCUDA: 12.64, pybuf.Numba: 9.15}},
		{"fig25", "Allgather GPU latency, large, 16 GPUs (2x8), Bridges-2", core.Allgather, 16, 8,
			LargeMin, LargeMax,
			map[pybuf.Library]float64{pybuf.CuPy: 15.04, pybuf.PyCUDA: 16.99, pybuf.Numba: 19.36}},
	}
	for _, gc := range cases {
		gc := gc
		register(Experiment{ID: gc.id, Title: gc.title, Run: func() (*Result, error) {
			return gpuBuffers(gc.id, gc.bench, gc.ranks, gc.ppn, gc.minS, gc.maxS, gc.paper)
		}})
	}

	register(Experiment{
		ID:    "fig34",
		Title: "Allreduce GPU overhead breakdown (CuPy/PyCUDA/Numba staging phases), Bridges-2",
		Run:   fig34,
	})
}

// gpuBuffers runs OMB plus OMB-Py with each GPU buffer library and reports
// each library's average overhead against the paper's number.
func gpuBuffers(id string, bench core.Benchmark, ranks, ppn, minS, maxS int, paper map[pybuf.Library]float64) (*Result, error) {
	base := pairConfig{
		bench: bench, cluster: "bridges2", ranks: ranks, ppn: ppn,
		useGPU: true, minS: minS, maxS: maxS,
	}
	cRep, err := core.Run(base.options(core.ModeC))
	if err != nil {
		return nil, fmt.Errorf("OMB baseline: %w", err)
	}
	cRep.Series.Name = "OMB"
	series := []*stats.Series{&cRep.Series}
	var sts []Stat
	for _, lib := range pybuf.GPULibraries() {
		pc := base
		pc.buffer = lib
		rep, err := core.Run(pc.options(core.ModePy))
		if err != nil {
			return nil, fmt.Errorf("OMB-Py/%v: %w", lib, err)
		}
		rep.Series.Name = "OMB-Py/" + lib.String()
		s := rep.Series
		series = append(series, &s)
		sts = append(sts, Stat{
			Name:     fmt.Sprintf("avg %v overhead", lib),
			Paper:    paper[lib],
			Measured: stats.AvgOverheadUs(&s, &cRep.Series),
			Unit:     "us",
		})
	}
	return &Result{
		ID:    id,
		Table: stats.Table{Metric: "latency(us)", Series: series},
		Stats: sts,
	}, nil
}

// fig34 profiles the staging phases of the GPU Allreduce per buffer library
// and reports the phase shares the paper quotes (recv-prep ~48-50%,
// send-prep ~32-40%, misc ~10-20%; 80-90% of overhead is buffer staging).
func fig34() (*Result, error) {
	var sts []Stat
	paperShares := map[pybuf.Library][3]float64{ // misc, send, recv fractions
		pybuf.CuPy:   {0.16, 0.35, 0.49},
		pybuf.PyCUDA: {0.20, 0.32, 0.48},
		pybuf.Numba:  {0.10, 0.40, 0.50},
	}
	var notes string
	for _, lib := range pybuf.GPULibraries() {
		prof := mpi4py.NewProfiler()
		opts := core.Options{
			Benchmark: core.Allreduce, Cluster: "bridges2", Mode: core.ModePy,
			Buffer: lib, UseGPU: true, Ranks: 16, PPN: 8,
			MinSize: 4, MaxSize: 64 * 1024, Iters: 10, Warmup: 2,
			Profiler: prof,
		}
		if _, err := core.Run(opts); err != nil {
			return nil, fmt.Errorf("profiled run %v: %w", lib, err)
		}
		// Aggregate phase means across sizes.
		var misc, send, recv float64
		var n int
		for _, b := range prof.Snapshot() {
			misc += float64(b.PerPhase[mpi4py.PhaseMisc])
			send += float64(b.PerPhase[mpi4py.PhaseSendPrep])
			recv += float64(b.PerPhase[mpi4py.PhaseRecvPrep])
			n++
		}
		total := misc + send + recv
		if n == 0 || total == 0 {
			return nil, fmt.Errorf("profiler captured nothing for %v", lib)
		}
		shares := paperShares[lib]
		sts = append(sts,
			Stat{Name: fmt.Sprintf("%v misc share", lib), Paper: shares[0], Measured: misc / total, Unit: "frac"},
			Stat{Name: fmt.Sprintf("%v send-prep share", lib), Paper: shares[1], Measured: send / total, Unit: "frac"},
			Stat{Name: fmt.Sprintf("%v recv-prep share", lib), Paper: shares[2], Measured: recv / total, Unit: "frac"},
			Stat{Name: fmt.Sprintf("%v staging share of binding overhead", lib), Paper: 0.85,
				Measured: (send + recv) / total, Unit: "frac"},
		)
		notes = "staging fractions are means over message sizes 4B-64KiB"
	}
	return &Result{
		ID:    "fig34",
		Title: "staging-phase attribution",
		Table: stats.Table{Metric: "latency(us)"},
		Stats: sts,
		Notes: notes,
	}, nil
}
