package mpi4py

import (
	"repro/internal/mpi"
	"repro/internal/pybuf"
)

// Spec describes a buffer by library and byte size without materialising
// its storage. The huge-scale experiments (896 ranks x megabyte messages)
// run on timing-only worlds where allocating real buffers would need
// terabytes; Spec-based calls charge the identical staging costs and drive
// the identical communication schedules with nil payloads.
type Spec struct {
	Lib pybuf.Library
	N   int // bytes
}

// SendSpec is Send for a timing-only buffer.
func (c *Comm) SendSpec(s Spec, dst, tag int) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, PtPt)
	c.stageOne(s.Lib, s.N, PhaseSendPrep, PtPt)
	return c.raw.SendN(nil, s.N, dst, tag)
}

// RecvSpec is Recv for a timing-only buffer.
func (c *Comm) RecvSpec(s Spec, src, tag int) (mpi.Status, error) {
	c.stageOne(s.Lib, s.N, PhaseMisc, PtPt)
	c.stageOne(s.Lib, s.N, PhaseRecvPrep, PtPt)
	return c.raw.RecvN(nil, s.N, src, tag)
}

// BarrierSpec is Barrier (buffers are irrelevant; kept for symmetry).
func (c *Comm) BarrierSpec() error { return c.Barrier() }

// BcastSpec is Bcast for a timing-only buffer.
func (c *Comm) BcastSpec(s Spec, root int) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	if c.raw.Rank() == root {
		c.stageOne(s.Lib, s.N, PhaseSendPrep, Collective)
	} else {
		c.stageOne(s.Lib, s.N, PhaseRecvPrep, Collective)
	}
	return c.raw.BcastN(nil, s.N, root)
}

// stageBoth charges the full collective staging pipeline for a spec.
func (c *Comm) stageBoth(s Spec) {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N, PhaseSendPrep, Collective)
	c.stageOne(s.Lib, s.N, PhaseRecvPrep, Collective)
}

// ReduceSpec is Reduce for a timing-only buffer.
func (c *Comm) ReduceSpec(s Spec, dt mpi.DType, op mpi.Op, root int) error {
	c.stageBoth(s)
	return c.raw.ReduceN(nil, nil, s.N, dt, op, root)
}

// AllreduceSpec is Allreduce for a timing-only buffer.
func (c *Comm) AllreduceSpec(s Spec, dt mpi.DType, op mpi.Op) error {
	c.stageBoth(s)
	return c.raw.AllreduceN(nil, nil, s.N, dt, op)
}

// GatherSpec is Gather for a timing-only buffer (s.N per rank).
func (c *Comm) GatherSpec(s Spec, root int) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N, PhaseSendPrep, Collective)
	if c.raw.Rank() == root {
		c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseRecvPrep, Collective)
	}
	return c.raw.GatherN(nil, s.N, nil, root)
}

// ScatterSpec is Scatter for a timing-only buffer (s.N per rank).
func (c *Comm) ScatterSpec(s Spec, root int) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	if c.raw.Rank() == root {
		c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseSendPrep, Collective)
	}
	c.stageOne(s.Lib, s.N, PhaseRecvPrep, Collective)
	return c.raw.ScatterN(nil, nil, s.N, root)
}

// AllgatherSpec is Allgather for a timing-only buffer (s.N per rank).
func (c *Comm) AllgatherSpec(s Spec) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N, PhaseSendPrep, Collective)
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseRecvPrep, Collective)
	return c.raw.AllgatherN(nil, s.N, nil)
}

// AlltoallSpec is Alltoall for a timing-only buffer (s.N per destination).
func (c *Comm) AlltoallSpec(s Spec) error {
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseSendPrep, Collective)
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseRecvPrep, Collective)
	return c.raw.AlltoallN(nil, s.N, nil)
}

// ReduceScatterBlockSpec is ReduceScatterBlock for a timing-only buffer
// (s.N received per rank).
func (c *Comm) ReduceScatterBlockSpec(s Spec, dt mpi.DType, op mpi.Op) error {
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseSendPrep, Collective)
	c.stageOne(s.Lib, s.N, PhaseRecvPrep, Collective)
	return c.raw.ReduceScatterBlockN(nil, nil, s.N, dt, op)
}

// GathervSpec / ScattervSpec / AllgathervSpec / AlltoallvSpec drive the
// vector variants with uniform counts derived from the spec, which is what
// the OMB-Py vector benchmarks measure.
func (c *Comm) GathervSpec(s Spec, root int) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N, PhaseSendPrep, Collective)
	counts := uniformCounts(c.raw.Size(), s.N)
	if c.raw.Rank() == root {
		c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseRecvPrep, Collective)
	}
	return c.raw.GathervN(s.N, nil, counts, nil, root)
}

// ScattervSpec is Scatterv for a timing-only buffer.
func (c *Comm) ScattervSpec(s Spec, root int) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	if c.raw.Rank() == root {
		c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseSendPrep, Collective)
	}
	c.stageOne(s.Lib, s.N, PhaseRecvPrep, Collective)
	return c.raw.ScattervN(uniformCounts(c.raw.Size(), s.N), s.N, root)
}

// AllgathervSpec is Allgatherv for a timing-only buffer.
func (c *Comm) AllgathervSpec(s Spec) error {
	c.stageOne(s.Lib, s.N, PhaseMisc, Collective)
	c.stageOne(s.Lib, s.N, PhaseSendPrep, Collective)
	c.stageOne(s.Lib, s.N*c.raw.Size(), PhaseRecvPrep, Collective)
	return c.raw.Allgatherv(nil, nil, uniformCounts(c.raw.Size(), s.N), nil)
}

// AlltoallvSpec is Alltoallv for a timing-only buffer.
func (c *Comm) AlltoallvSpec(s Spec) error {
	total := s.N * c.raw.Size()
	c.stageOne(s.Lib, total, PhaseMisc, Collective)
	c.stageOne(s.Lib, total, PhaseSendPrep, Collective)
	c.stageOne(s.Lib, total, PhaseRecvPrep, Collective)
	counts := uniformCounts(c.raw.Size(), s.N)
	return c.raw.Alltoallv(nil, counts, nil, nil, counts, nil)
}

func uniformCounts(p, n int) []int {
	counts := make([]int, p)
	for i := range counts {
		counts[i] = n
	}
	return counts
}
