package mpi4py

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// pyWorld builds a PyMode world of n ranks on Frontera.
func pyWorld(t *testing.T, n, ppn int) *mpi.World {
	t.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, n, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		PyMode:    true,
		CarryData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWrapRequiresPyMode(t *testing.T) {
	place, _ := topology.NewPlacement(&topology.Frontera, 2, 2, topology.Block, false)
	w, err := mpi.NewWorld(mpi.Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		if _, err := Wrap(p.CommWorld()); err == nil {
			return errors.New("Wrap should fail on a non-PyMode world")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBuffers(t *testing.T) {
	w := pyWorld(t, 2, 2)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := pybuf.NewNumPy(mpi.Float64, 16)
			for i := 0; i < 16; i++ {
				pybuf.SetFloat64(buf, i, float64(i)*2)
			}
			return c.Send(buf, 1, 5)
		}
		buf := pybuf.NewNumPy(mpi.Float64, 16)
		st, err := c.Recv(buf, 0, 5)
		if err != nil {
			return err
		}
		if st.Count != 128 {
			return fmt.Errorf("status count %d", st.Count)
		}
		for i := 0; i < 16; i++ {
			if got := pybuf.GetFloat64(buf, i); got != float64(i)*2 {
				return fmt.Errorf("elem %d = %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStagingChargesTime(t *testing.T) {
	w := pyWorld(t, 2, 2)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		before := p.Wtime()
		buf := pybuf.NewNumPy(mpi.Float64, 4)
		if p.Rank() == 0 {
			if err := c.Send(buf, 1, 1); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(buf, 0, 1); err != nil {
				return err
			}
		}
		sp := profile(pybuf.NumPy, PtPt)
		min := sp.Misc // every call charges at least misc + one prep
		if p.Wtime()-before < min {
			return fmt.Errorf("staging did not advance the clock: %v", p.Wtime()-before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProfilerAttribution(t *testing.T) {
	prof := NewProfiler()
	w := pyWorld(t, 4, 4)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld(), WithProfiler(prof))
		if err != nil {
			return err
		}
		s := pybuf.NewNumPy(mpi.Float64, 8)
		r := pybuf.NewNumPy(mpi.Float64, 8)
		return c.Allreduce(s, r, mpi.OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := prof.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot entries: %d", len(snap))
	}
	b := snap[0]
	if b.Library != pybuf.NumPy || b.Bytes != 64 {
		t.Errorf("breakdown key %v/%d", b.Library, b.Bytes)
	}
	sp := profile(pybuf.NumPy, Collective)
	if got := b.PerPhase[PhaseSendPrep]; got != sp.SendPrep {
		t.Errorf("send-prep %v, want %v", got, sp.SendPrep)
	}
	if got := b.PerPhase[PhaseRecvPrep]; got != sp.RecvPrep {
		t.Errorf("recv-prep %v, want %v", got, sp.RecvPrep)
	}
	if b.Total() <= 0 || b.Fraction(PhaseRecvPrep) <= 0 {
		t.Error("breakdown totals wrong")
	}
	prof.Reset()
	if len(prof.Snapshot()) != 0 {
		t.Error("Reset should clear samples")
	}
}

func TestGPUNumbaCostlierThanCuPy(t *testing.T) {
	// Direct staging comparison without a full benchmark run.
	for _, class := range []OpClass{PtPt, Collective} {
		cupy := profile(pybuf.CuPy, class)
		numba := profile(pybuf.Numba, class)
		cTot := cupy.Misc + cupy.SendPrep + cupy.RecvPrep
		nTot := numba.Misc + numba.SendPrep + numba.RecvPrep
		if nTot <= cTot {
			t.Errorf("class %v: Numba staging %v should exceed CuPy %v", class, nTot, cTot)
		}
	}
}

func TestCAIResolutionPath(t *testing.T) {
	place, err := topology.NewPlacement(&topology.Bridges2, 2, 2, topology.Block, true)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Bridges2, netmodel.MVAPICH2),
		PyMode:    true,
		CarryData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		gpu := device.NewGPU(p.Rank(), 0)
		reg := device.NewRegistry([]*device.GPU{gpu})
		c, err := Wrap(p.CommWorld(), WithRegistry(reg))
		if err != nil {
			return err
		}
		buf, err := pybuf.NewGPUArray(pybuf.CuPy, gpu, mpi.Float32, 32)
		if err != nil {
			return err
		}
		defer buf.Free()
		if p.Rank() == 0 {
			pybuf.FillPattern(buf, 11)
			return c.Send(buf, 1, 9)
		}
		if _, err := c.Recv(buf, 0, 9); err != nil {
			return err
		}
		want, _ := pybuf.NewGPUArray(pybuf.CuPy, gpu, mpi.Float32, 32)
		defer want.Free()
		pybuf.FillPattern(want, 11)
		if !pybuf.Equal(buf, want) {
			return errors.New("GPU payload corrupted through CAI path")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectRoundTripAndCost(t *testing.T) {
	w := pyWorld(t, 2, 2)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			arr := pybuf.NewNumPy(mpi.Int32, 5)
			copy(arr.Raw(), mpi.EncodeInt32s([]int32{1, -2, 3, -4, 5}))
			return c.SendObject(arr, 1, 2)
		}
		before := p.Wtime()
		obj, st, err := c.RecvObject(0, 2, nil)
		if err != nil {
			return err
		}
		if st.Count <= 20 { // frame > payload
			return fmt.Errorf("frame size %d", st.Count)
		}
		got := mpi.DecodeInt32s(obj.Raw())
		for i, want := range []int32{1, -2, 3, -4, 5} {
			if got[i] != want {
				return fmt.Errorf("elem %d = %d", i, got[i])
			}
		}
		if p.Wtime() == before {
			return errors.New("unpickling should cost time")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastObject(t *testing.T) {
	w := pyWorld(t, 5, 5)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		var in pybuf.Buffer
		if p.Rank() == 2 {
			in = pybuf.NewNumPy(mpi.Float64, 3)
			for i := 0; i < 3; i++ {
				pybuf.SetFloat64(in, i, float64(i)+0.5)
			}
		}
		out, err := c.BcastObject(in, 2, nil)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if got := pybuf.GetFloat64(out, i); got != float64(i)+0.5 {
				return fmt.Errorf("rank %d elem %d = %v", p.Rank(), i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceObject(t *testing.T) {
	const p = 6
	w := pyWorld(t, p, 6)
	err := w.Run(func(pr *mpi.Proc) error {
		c, err := Wrap(pr.CommWorld())
		if err != nil {
			return err
		}
		in := pybuf.NewNumPy(mpi.Float64, 4)
		for i := 0; i < 4; i++ {
			pybuf.SetFloat64(in, i, float64(pr.Rank()+1))
		}
		out, err := c.AllreduceObject(in, mpi.OpSum, nil)
		if err != nil {
			return err
		}
		want := float64(p*(p+1)) / 2
		for i := 0; i < 4; i++ {
			if got := pybuf.GetFloat64(out, i); got != want {
				return fmt.Errorf("rank %d elem %d = %v, want %v", pr.Rank(), i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpecMatchesBufferTiming(t *testing.T) {
	// A Spec-driven allreduce must cost exactly what the buffer-driven one
	// does (same staging, same schedule).
	measure := func(useSpec bool) vtime.Micros {
		w := pyWorld(t, 4, 4)
		var elapsed vtime.Micros
		err := w.Run(func(p *mpi.Proc) error {
			c, err := Wrap(p.CommWorld())
			if err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			start := p.Wtime()
			if useSpec {
				if err := c.AllreduceSpec(Spec{Lib: pybuf.NumPy, N: 1024}, mpi.Float64, mpi.OpSum); err != nil {
					return err
				}
			} else {
				s := pybuf.NewNumPy(mpi.Float64, 128)
				r := pybuf.NewNumPy(mpi.Float64, 128)
				if err := c.Allreduce(s, r, mpi.OpSum); err != nil {
					return err
				}
			}
			if p.Rank() == 0 {
				elapsed = p.Wtime() - start
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if buf, spec := measure(false), measure(true); buf != spec {
		t.Fatalf("spec timing %v != buffer timing %v", spec, buf)
	}
}

func TestPhaseAndClassStrings(t *testing.T) {
	if PhaseMisc.String() != "misc" || PhaseSendPrep.String() != "send-prep" || PhaseRecvPrep.String() != "recv-prep" {
		t.Error("phase strings wrong")
	}
}
