package mpi4py

import (
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pybuf"
)

func TestScanThroughBinding(t *testing.T) {
	const p = 5
	w := pyWorld(t, p, p)
	err := w.Run(func(pr *mpi.Proc) error {
		c, err := Wrap(pr.CommWorld())
		if err != nil {
			return err
		}
		in := pybuf.NewNumPy(mpi.Float64, 3)
		for i := 0; i < 3; i++ {
			pybuf.SetFloat64(in, i, float64(pr.Rank()+1))
		}
		out := pybuf.NewNumPy(mpi.Float64, 3)
		if err := c.Scan(in, out, mpi.OpSum); err != nil {
			return err
		}
		r := pr.Rank()
		want := float64((r + 1) * (r + 2) / 2)
		for i := 0; i < 3; i++ {
			if got := pybuf.GetFloat64(out, i); got != want {
				return fmt.Errorf("rank %d elem %d: got %v want %v", r, i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscanThroughBinding(t *testing.T) {
	const p = 4
	w := pyWorld(t, p, p)
	err := w.Run(func(pr *mpi.Proc) error {
		c, err := Wrap(pr.CommWorld())
		if err != nil {
			return err
		}
		in := pybuf.NewNumPy(mpi.Int64, 1)
		copy(in.Raw(), encodeInt64(int64(pr.Rank()+1)))
		out := pybuf.NewNumPy(mpi.Int64, 1)
		if err := c.Exscan(in, out, mpi.OpSum); err != nil {
			return err
		}
		if pr.Rank() == 0 {
			return nil // undefined on rank 0
		}
		r := int64(pr.Rank())
		if got := decodeInt64(out.Raw()); got != r*(r+1)/2 {
			return fmt.Errorf("rank %d: got %d want %d", pr.Rank(), got, r*(r+1)/2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func encodeInt64(v int64) []byte {
	out := make([]byte, 8)
	for i := 0; i < 8; i++ {
		out[i] = byte(v >> (8 * i))
	}
	return out
}

func decodeInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

func TestSendrecvThroughBinding(t *testing.T) {
	w := pyWorld(t, 2, 2)
	err := w.Run(func(pr *mpi.Proc) error {
		c, err := Wrap(pr.CommWorld())
		if err != nil {
			return err
		}
		peer := 1 - pr.Rank()
		s := pybuf.NewNumPy(mpi.Uint8, 32)
		pybuf.FillPattern(s, pr.Rank())
		r := pybuf.NewNumPy(mpi.Uint8, 32)
		if _, err := c.Sendrecv(s, peer, 4, r, peer, 4); err != nil {
			return err
		}
		want := pybuf.NewNumPy(mpi.Uint8, 32)
		pybuf.FillPattern(want, peer)
		if !pybuf.Equal(r, want) {
			return fmt.Errorf("rank %d: exchange corrupted", pr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorSpecsRun(t *testing.T) {
	// The timing-only Spec forms of every vector collective must run and
	// advance the clock.
	w := pyWorld(t, 4, 4)
	err := w.Run(func(pr *mpi.Proc) error {
		c, err := Wrap(pr.CommWorld())
		if err != nil {
			return err
		}
		spec := Spec{Lib: pybuf.NumPy, N: 512}
		before := pr.Wtime()
		if err := c.GathervSpec(spec, 0); err != nil {
			return err
		}
		if err := c.ScattervSpec(spec, 0); err != nil {
			return err
		}
		if err := c.AllgathervSpec(spec); err != nil {
			return err
		}
		if err := c.AlltoallvSpec(spec); err != nil {
			return err
		}
		if pr.Wtime() <= before {
			return fmt.Errorf("vector specs advanced no time")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
