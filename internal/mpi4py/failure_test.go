package mpi4py

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pickle"
	"repro/internal/pybuf"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// dumpsForTest pickles a buffer with the communicator's cost model.
func dumpsForTest(b pybuf.Buffer, c *Comm) ([]byte, vtime.Micros, error) {
	return pickle.Dumps(b, c.pickleCosts)
}

// Failure injection: the binding layer must surface substrate failures
// (freed device memory, exhausted GPUs, corrupted pickle frames) as errors
// on the offending rank without wedging the world.

func TestSendFreedGPUBufferFails(t *testing.T) {
	place, err := topology.NewPlacement(&topology.Bridges2, 2, 2, topology.Block, true)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.NewWorld(mpi.Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Bridges2, netmodel.MVAPICH2),
		PyMode:    true, CarryData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *mpi.Proc) error {
		gpu := device.NewGPU(p.Rank(), 0)
		reg := device.NewRegistry([]*device.GPU{gpu})
		c, err := Wrap(p.CommWorld(), WithRegistry(reg))
		if err != nil {
			return err
		}
		if p.Rank() != 0 {
			return nil // rank 0 fails before any traffic; no one blocks
		}
		buf, err := pybuf.NewGPUArray(pybuf.CuPy, gpu, mpi.Float32, 8)
		if err != nil {
			return err
		}
		if err := buf.Free(); err != nil {
			return err
		}
		// The CAI pointer now dangles; staging must fail cleanly.
		sendErr := c.Send(buf, 1, 1)
		if sendErr == nil {
			return errors.New("Send of a freed GPU buffer should fail")
		}
		if !strings.Contains(sendErr.Error(), "CAI") {
			return errors.New("error should identify the CAI resolution: " + sendErr.Error())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGPUExhaustionSurfacesAsError(t *testing.T) {
	gpu := device.NewGPU(0, 1024) // 1 KiB device
	if _, err := pybuf.NewGPUArray(pybuf.CuPy, gpu, mpi.Float64, 64); err != nil {
		t.Fatalf("first allocation should fit: %v", err)
	}
	_, err := pybuf.NewGPUArray(pybuf.Numba, gpu, mpi.Float64, 128)
	var oom *device.ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestRecvObjectRejectsGarbageFrame(t *testing.T) {
	w := pyWorld(t, 2, 2)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			// Raw bytes that are not a pickle frame.
			return c.raw.Send([]byte("definitely not a frame"), 1, 3)
		}
		if _, _, err := c.RecvObject(0, 3, nil); err == nil {
			return errors.New("garbage frame should fail to unpickle")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedObjectFrameFails(t *testing.T) {
	w := pyWorld(t, 2, 2)
	err := w.Run(func(p *mpi.Proc) error {
		c, err := Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			// A frame whose header promises more payload than it carries.
			buf := pybuf.NewNumPy(mpi.Float64, 8)
			frame, _, err := dumpsForTest(buf, c)
			if err != nil {
				return err
			}
			return c.raw.Send(frame[:len(frame)-16], 1, 4)
		}
		if _, _, err := c.RecvObject(0, 4, nil); err == nil {
			return errors.New("truncated frame should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
