package mpi4py

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/pickle"
	"repro/internal/pybuf"
)

// Comm wraps an mpi.Comm with the binding layer's staging phase. Like the
// underlying communicator it is bound to one rank and must only be used
// from that rank's goroutine.
type Comm struct {
	raw         *mpi.Comm
	prof        *Profiler
	reg         *device.Registry
	pickleCosts pickle.Costs
}

// Option configures a wrapped communicator.
type Option func(*Comm)

// WithProfiler attaches a staging profiler (Figure 34's instrument).
func WithProfiler(p *Profiler) Option { return func(c *Comm) { c.prof = p } }

// WithRegistry attaches the CUDA Array Interface pointer registry used to
// resolve GPU buffers, mirroring the CUDA driver lookup mpi4py performs.
func WithRegistry(r *device.Registry) Option { return func(c *Comm) { c.reg = r } }

// WithPickleCosts overrides the serializer cost model.
func WithPickleCosts(pc pickle.Costs) Option { return func(c *Comm) { c.pickleCosts = pc } }

// Wrap builds the binding layer over a raw communicator. The world must
// have been created in PyMode (mpi4py initialises MPI with THREAD_MULTIPLE;
// the native-layer consequences are priced by the runtime itself).
func Wrap(raw *mpi.Comm, opts ...Option) (*Comm, error) {
	if !raw.Proc().World().PyMode() {
		return nil, fmt.Errorf("mpi4py: world was not created in PyMode; " +
			"set mpi.Config.PyMode (mpi4py initialises MPI_THREAD_MULTIPLE)")
	}
	c := &Comm{raw: raw, pickleCosts: pickle.DefaultCosts()}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Rank returns the communicator rank.
func (c *Comm) Rank() int { return c.raw.Rank() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.raw.Size() }

// Raw exposes the wrapped native communicator.
func (c *Comm) Raw() *mpi.Comm { return c.raw }

// stageOne charges and profiles one staging phase. The misc phase also
// carries the model's once-per-call extra for rendezvous-sized buffers
// (GDR pipeline setup on GPU systems; zero elsewhere).
func (c *Comm) stageOne(lib pybuf.Library, n int, phase Phase, class OpClass) {
	sp := profile(lib, class)
	var cost = sp.Misc
	switch phase {
	case PhaseSendPrep:
		cost = sp.prepCost(sp.SendPrep, n)
	case PhaseRecvPrep:
		cost = sp.prepCost(sp.RecvPrep, n)
	default:
		// The once-per-call pipeline setup is charged with the misc phase
		// but attributed to neither: the paper profiles it inside the
		// native library, not the Cython staging code.
		c.raw.Proc().AdvanceClock(c.raw.Proc().World().Model().PyCallExtra(n))
	}
	c.raw.Proc().AdvanceClock(cost)
	c.prof.record(lib, n, phase, cost)
}

// rawBytes performs the binding's buffer extraction: host buffers expose
// their storage directly; GPU buffers go through the CUDA Array Interface
// and, when a registry is attached, a real pointer resolution.
func (c *Comm) rawBytes(b pybuf.Buffer) ([]byte, error) {
	if b == nil {
		return nil, nil
	}
	db, ok := b.(pybuf.DeviceBuffer)
	if !ok {
		return b.Raw(), nil
	}
	ai := db.CAI()
	if c.reg != nil {
		alloc, err := c.reg.Resolve(ai.Data)
		if err != nil {
			return nil, fmt.Errorf("mpi4py: CAI resolution: %w", err)
		}
		return alloc.Bytes(), nil
	}
	return db.Alloc().Bytes(), nil
}

// stageSend stages a send buffer and returns its raw storage.
func (c *Comm) stageSend(b pybuf.Buffer, class OpClass) ([]byte, error) {
	raw, err := c.rawBytes(b)
	if err != nil {
		return nil, err
	}
	c.stageOne(b.Library(), b.NBytes(), PhaseSendPrep, class)
	return raw, nil
}

// stageRecv stages a receive buffer and returns its raw storage.
func (c *Comm) stageRecv(b pybuf.Buffer, class OpClass) ([]byte, error) {
	raw, err := c.rawBytes(b)
	if err != nil {
		return nil, err
	}
	c.stageOne(b.Library(), b.NBytes(), PhaseRecvPrep, class)
	return raw, nil
}

// --- Direct-buffer point-to-point (mpi4py's upper-case Send/Recv) ---

// Send transmits a buffer to communicator rank dst.
func (c *Comm) Send(buf pybuf.Buffer, dst, tag int) error {
	c.stageOne(buf.Library(), buf.NBytes(), PhaseMisc, PtPt)
	raw, err := c.stageSend(buf, PtPt)
	if err != nil {
		return err
	}
	return c.raw.Send(raw, dst, tag)
}

// Recv receives into a buffer from communicator rank src.
func (c *Comm) Recv(buf pybuf.Buffer, src, tag int) (mpi.Status, error) {
	c.stageOne(buf.Library(), buf.NBytes(), PhaseMisc, PtPt)
	raw, err := c.stageRecv(buf, PtPt)
	if err != nil {
		return mpi.Status{}, err
	}
	return c.raw.Recv(raw, src, tag)
}

// Sendrecv exchanges buffers with peers without deadlock.
func (c *Comm) Sendrecv(sbuf pybuf.Buffer, dst, stag int, rbuf pybuf.Buffer, src, rtag int) (mpi.Status, error) {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, PtPt)
	sraw, err := c.stageSend(sbuf, PtPt)
	if err != nil {
		return mpi.Status{}, err
	}
	rraw, err := c.stageRecv(rbuf, PtPt)
	if err != nil {
		return mpi.Status{}, err
	}
	return c.raw.Sendrecv(sraw, dst, stag, rraw, src, rtag)
}

// --- Direct-buffer collectives (mpi4py's upper-case family) ---

// Barrier synchronises all ranks; the binding adds only dispatch cost.
func (c *Comm) Barrier() error {
	c.stageOne(pybuf.NumPy, 0, PhaseMisc, Collective)
	return c.raw.Barrier()
}

// Bcast broadcasts a buffer from root: the root stages it as a send buffer,
// everyone else as a receive buffer.
func (c *Comm) Bcast(buf pybuf.Buffer, root int) error {
	c.stageOne(buf.Library(), buf.NBytes(), PhaseMisc, Collective)
	var raw []byte
	var err error
	if c.raw.Rank() == root {
		raw, err = c.stageSend(buf, Collective)
	} else {
		raw, err = c.stageRecv(buf, Collective)
	}
	if err != nil {
		return err
	}
	return c.raw.Bcast(raw, root)
}

// Reduce combines sbuf into rbuf at root.
func (c *Comm) Reduce(sbuf, rbuf pybuf.Buffer, op mpi.Op, root int) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Reduce(sraw, rraw, sbuf.DType(), op, root)
}

// Allreduce combines sbuf into rbuf on every rank.
func (c *Comm) Allreduce(sbuf, rbuf pybuf.Buffer, op mpi.Op) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Allreduce(sraw, rraw, sbuf.DType(), op)
}

// Gather collects equal-sized buffers at root.
func (c *Comm) Gather(sbuf, rbuf pybuf.Buffer, root int) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	var rraw []byte
	if c.raw.Rank() == root {
		if rraw, err = c.stageRecv(rbuf, Collective); err != nil {
			return err
		}
	}
	return c.raw.GatherN(sraw, sbuf.NBytes(), rraw, root)
}

// Scatter distributes root's buffer blocks to all ranks.
func (c *Comm) Scatter(sbuf, rbuf pybuf.Buffer, root int) error {
	c.stageOne(rbuf.Library(), rbuf.NBytes(), PhaseMisc, Collective)
	var sraw []byte
	var err error
	if c.raw.Rank() == root {
		if sraw, err = c.stageSend(sbuf, Collective); err != nil {
			return err
		}
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.ScatterN(sraw, rraw, rbuf.NBytes(), root)
}

// Allgather collects equal-sized buffers on every rank.
func (c *Comm) Allgather(sbuf, rbuf pybuf.Buffer) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.AllgatherN(sraw, sbuf.NBytes(), rraw)
}

// Alltoall exchanges per-destination blocks between all ranks.
func (c *Comm) Alltoall(sbuf, rbuf pybuf.Buffer) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Alltoall(sraw, rraw)
}

// ReduceScatterBlock reduces and scatters equal blocks.
func (c *Comm) ReduceScatterBlock(sbuf, rbuf pybuf.Buffer, op mpi.Op) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.ReduceScatterBlockN(sraw, rraw, rbuf.NBytes(), sbuf.DType(), op)
}

// Scan computes the inclusive prefix reduction into rbuf.
func (c *Comm) Scan(sbuf, rbuf pybuf.Buffer, op mpi.Op) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Scan(sraw, rraw, sbuf.DType(), op)
}

// Exscan computes the exclusive prefix reduction into rbuf.
func (c *Comm) Exscan(sbuf, rbuf pybuf.Buffer, op mpi.Op) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Exscan(sraw, rraw, sbuf.DType(), op)
}

// --- Vector variants (Allgatherv, Alltoallv, Gatherv, Scatterv) ---

// Gatherv collects variable-sized buffers at root (counts in bytes).
func (c *Comm) Gatherv(sbuf, rbuf pybuf.Buffer, counts []int, root int) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	var rraw []byte
	if c.raw.Rank() == root {
		if rraw, err = c.stageRecv(rbuf, Collective); err != nil {
			return err
		}
	}
	return c.raw.Gatherv(sraw, rraw, counts, nil, root)
}

// Scatterv distributes variable-sized blocks from root (counts in bytes).
func (c *Comm) Scatterv(sbuf pybuf.Buffer, counts []int, rbuf pybuf.Buffer, root int) error {
	c.stageOne(rbuf.Library(), rbuf.NBytes(), PhaseMisc, Collective)
	var sraw []byte
	var err error
	if c.raw.Rank() == root {
		if sraw, err = c.stageSend(sbuf, Collective); err != nil {
			return err
		}
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Scatterv(sraw, counts, nil, rraw, root)
}

// Allgatherv collects variable-sized buffers on every rank.
func (c *Comm) Allgatherv(sbuf, rbuf pybuf.Buffer, counts []int) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Allgatherv(sraw, rraw, counts, nil)
}

// Alltoallv exchanges variable-sized blocks (counts in bytes, packed).
func (c *Comm) Alltoallv(sbuf pybuf.Buffer, scounts []int, rbuf pybuf.Buffer, rcounts []int) error {
	c.stageOne(sbuf.Library(), sbuf.NBytes(), PhaseMisc, Collective)
	sraw, err := c.stageSend(sbuf, Collective)
	if err != nil {
		return err
	}
	rraw, err := c.stageRecv(rbuf, Collective)
	if err != nil {
		return err
	}
	return c.raw.Alltoallv(sraw, scounts, nil, rraw, rcounts, nil)
}
