// Package mpi4py simulates the mpi4py binding layer the paper measures: a
// wrapper around the native MPI runtime whose every call runs a staging
// phase (the Cython-layer buffer preparation the paper's Section V profiles)
// before delegating to the underlying operation. The staging phase performs
// the real work of the binding -- extracting raw storage from Python buffer
// objects, resolving CUDA Array Interface pointers for GPU arrays -- and
// charges its calibrated cost on the rank's virtual clock, attributed
// per-phase by the built-in profiler so Figure 34's breakdown is measured.
//
// Naming note: mpi4py distinguishes direct-buffer methods (upper-case
// Send/Recv/Allreduce) from pickle-based object methods (lower-case
// send/recv/allreduce). Go exports must be capitalised, so the pickle
// family is exposed as SendObject/RecvObject/AllreduceObject and so on.
package mpi4py

import (
	"repro/internal/pybuf"
	"repro/internal/vtime"
)

// Phase identifies a staging pipeline stage, per the paper's profiling of
// the Allreduce call: misc argument checks, send-buffer preparation
// (cro_send) and receive-buffer preparation (cro_recv).
type Phase int

// Staging phases.
const (
	PhaseMisc Phase = iota
	PhaseSendPrep
	PhaseRecvPrep
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseMisc:
		return "misc"
	case PhaseSendPrep:
		return "send-prep"
	case PhaseRecvPrep:
		return "recv-prep"
	default:
		return "unknown"
	}
}

// OpClass distinguishes point-to-point calls from collective calls: the
// latter stage both a send and a receive buffer and carry heavier argument
// translation, which is how the paper's per-benchmark overheads differ.
type OpClass int

// Operation classes.
const (
	PtPt OpClass = iota
	Collective
)

// stagingProfile is the calibrated per-call staging cost of one buffer
// library for one operation class. PerByte applies to each prepared
// buffer's size (GPU libraries: CAI resolution and pointer attribute
// lookups touch per-page state, so cost grows with size; host libraries
// stage in constant time).
type stagingProfile struct {
	Misc     vtime.Micros
	SendPrep vtime.Micros
	RecvPrep vtime.Micros
	PerByte  float64
}

// stagingTable maps (library, op class) to its profile. Values are fitted
// to the paper's Figures 2-25 and 34; see EXPERIMENTS.md for the
// paper-vs-measured record.
// Calibration note: in a ping-pong the receiver's staging largely overlaps
// the message's flight time (the receiver stages while the wire is busy),
// so the observable point-to-point overhead is dominated by the sender-side
// pipeline (misc + send-prep + the runtime's per-op lock). The PtPt rows
// are fitted with that in mind; the Collective rows land fully on the
// critical path because every rank stages before its first exchange.
var stagingTable = map[pybuf.Library][2]stagingProfile{
	pybuf.Bytearray: {
		PtPt:       {Misc: 0.09, SendPrep: 0.13, RecvPrep: 0.11, PerByte: 0},
		Collective: {Misc: 0.045, SendPrep: 0.07, RecvPrep: 0.09, PerByte: 0},
	},
	pybuf.NumPy: {
		PtPt:       {Misc: 0.10, SendPrep: 0.15, RecvPrep: 0.12, PerByte: 0},
		Collective: {Misc: 0.05, SendPrep: 0.08, RecvPrep: 0.10, PerByte: 0},
	},
	pybuf.CuPy: {
		PtPt:       {Misc: 0.62, SendPrep: 3.55, RecvPrep: 2.05, PerByte: 0},
		Collective: {Misc: 1.20, SendPrep: 2.60, RecvPrep: 3.65, PerByte: 0},
	},
	pybuf.PyCUDA: {
		PtPt:       {Misc: 0.60, SendPrep: 3.43, RecvPrep: 1.94, PerByte: 0},
		Collective: {Misc: 1.27, SendPrep: 2.03, RecvPrep: 3.04, PerByte: 0},
	},
	pybuf.Numba: {
		PtPt:       {Misc: 0.55, SendPrep: 5.48, RecvPrep: 3.02, PerByte: 0},
		Collective: {Misc: 1.15, SendPrep: 4.60, RecvPrep: 5.70, PerByte: 0},
	},
}

// profile looks up the staging profile for a library and op class.
func profile(lib pybuf.Library, class OpClass) stagingProfile {
	return stagingTable[lib][class]
}

// prepCost prices one buffer preparation (cro_send or cro_recv).
func (sp stagingProfile) prepCost(base vtime.Micros, n int) vtime.Micros {
	return base + vtime.Micros(float64(n)*sp.PerByte)
}
