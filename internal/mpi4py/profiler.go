package mpi4py

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/pybuf"
	"repro/internal/vtime"
)

// Profiler attributes staging time to (library, message size, phase), the
// decomposition the paper's Figure 34 plots. One Profiler may be shared by
// all ranks of a world (it locks), though experiments usually attach it to
// rank 0 only so critical-path numbers are not averaged away.
type Profiler struct {
	mu      sync.Mutex
	entries map[profKey]*profEntry
}

type profKey struct {
	lib   pybuf.Library
	bytes int
	phase Phase
}

type profEntry struct {
	total vtime.Micros
	calls int
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{entries: make(map[profKey]*profEntry)}
}

func (pr *Profiler) record(lib pybuf.Library, bytes int, phase Phase, d vtime.Micros) {
	if pr == nil {
		return
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	k := profKey{lib: lib, bytes: bytes, phase: phase}
	e := pr.entries[k]
	if e == nil {
		e = &profEntry{}
		pr.entries[k] = e
	}
	e.total += d
	e.calls++
}

// Breakdown is the aggregated staging attribution for one (library, size).
type Breakdown struct {
	Library pybuf.Library
	Bytes   int
	// PerPhase holds the mean per-call staging time of each phase.
	PerPhase map[Phase]vtime.Micros
	// Calls is the number of profiled calls.
	Calls int
}

// Total returns the mean per-call staging time across phases.
func (b Breakdown) Total() vtime.Micros {
	var t vtime.Micros
	for _, v := range b.PerPhase {
		t += v
	}
	return t
}

// Fraction returns phase's share of the total staging time.
func (b Breakdown) Fraction(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.PerPhase[p] / t)
}

// Snapshot returns per-(library, size) breakdowns sorted by library then
// size.
func (pr *Profiler) Snapshot() []Breakdown {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	agg := map[[2]int]*Breakdown{}
	for k, e := range pr.entries {
		ak := [2]int{int(k.lib), k.bytes}
		b := agg[ak]
		if b == nil {
			b = &Breakdown{Library: k.lib, Bytes: k.bytes, PerPhase: map[Phase]vtime.Micros{}}
			agg[ak] = b
		}
		b.PerPhase[k.phase] += e.total / vtime.Micros(e.calls)
		if e.calls > b.Calls {
			b.Calls = e.calls
		}
	}
	out := make([]Breakdown, 0, len(agg))
	for _, b := range agg {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Library != out[j].Library {
			return out[i].Library < out[j].Library
		}
		return out[i].Bytes < out[j].Bytes
	})
	return out
}

// Reset discards all recorded samples.
func (pr *Profiler) Reset() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.entries = make(map[profKey]*profEntry)
}

// String renders the snapshot as an ASCII table.
func (pr *Profiler) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %12s %12s %12s %8s\n",
		"library", "bytes", "misc[us]", "send[us]", "recv[us]", "calls")
	for _, b := range pr.Snapshot() {
		fmt.Fprintf(&sb, "%-10s %10d %12.3f %12.3f %12.3f %8d\n",
			b.Library, b.Bytes,
			float64(b.PerPhase[PhaseMisc]),
			float64(b.PerPhase[PhaseSendPrep]),
			float64(b.PerPhase[PhaseRecvPrep]),
			b.Calls)
	}
	return sb.String()
}
