package mpi4py

import (
	"encoding/binary"
	"fmt"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/pickle"
	"repro/internal/pybuf"
)

// The object family mirrors mpi4py's lower-case methods (send, recv, bcast,
// allreduce, ...): buffers are pickled into framed byte streams, transmitted
// as plain bytes, and unpickled on arrival. Serialization is real (bytes
// round-trip through internal/pickle) and its calibrated cost is charged on
// the rank's virtual clock, which is where the paper's Figures 30-33
// behaviour comes from.

// SendObject pickles and sends a buffer (mpi4py's comm.send).
func (c *Comm) SendObject(buf pybuf.Buffer, dst, tag int) error {
	frame, cost, err := pickle.Dumps(buf, c.pickleCosts)
	if err != nil {
		return err
	}
	c.raw.Proc().AdvanceClock(cost)
	return c.raw.Send(frame, dst, tag)
}

// RecvObject receives and unpickles a buffer (mpi4py's comm.recv). gpu is
// required to materialise GPU-library objects and may be nil otherwise.
func (c *Comm) RecvObject(src, tag int, gpu *device.GPU) (pybuf.Buffer, mpi.Status, error) {
	st, err := c.raw.Probe(src, tag)
	if err != nil {
		return nil, st, err
	}
	frame := make([]byte, st.Count)
	if st, err = c.raw.Recv(frame, st.Source, st.Tag); err != nil {
		return nil, st, err
	}
	buf, cost, err := pickle.Loads(frame, gpu, c.pickleCosts)
	if err != nil {
		return nil, st, err
	}
	c.raw.Proc().AdvanceClock(cost)
	return buf, st, nil
}

// SendObjectSpec / RecvObjectSpec are the timing-only forms: they charge
// serialization costs and move a frame-sized message without materialising
// payloads.
func (c *Comm) SendObjectSpec(s Spec, dst, tag int) error {
	c.raw.Proc().AdvanceClock(pickle.DumpsCost(s.N, c.pickleCosts))
	return c.raw.SendN(nil, pickle.FrameSize(s.N), dst, tag)
}

// RecvObjectSpec is the timing-only receive of a pickled buffer.
func (c *Comm) RecvObjectSpec(s Spec, src, tag int) (mpi.Status, error) {
	st, err := c.raw.RecvN(nil, pickle.FrameSize(s.N), src, tag)
	if err != nil {
		return st, err
	}
	c.raw.Proc().AdvanceClock(pickle.LoadsCost(s.N, c.pickleCosts))
	return st, nil
}

// BcastObject broadcasts a pickled buffer from root (mpi4py's comm.bcast):
// the frame length travels first, then the frame, then non-roots unpickle.
// Non-root ranks pass nil buf; the received object is returned everywhere.
func (c *Comm) BcastObject(buf pybuf.Buffer, root int, gpu *device.GPU) (pybuf.Buffer, error) {
	var frame []byte
	if c.raw.Rank() == root {
		f, cost, err := pickle.Dumps(buf, c.pickleCosts)
		if err != nil {
			return nil, err
		}
		frame = f
		c.raw.Proc().AdvanceClock(cost)
	}
	var lenBuf [8]byte
	if c.raw.Rank() == root {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(frame)))
	}
	if err := c.raw.Bcast(lenBuf[:], root); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint64(lenBuf[:]))
	if c.raw.Rank() != root {
		frame = make([]byte, n)
	}
	if err := c.raw.Bcast(frame, root); err != nil {
		return nil, err
	}
	if c.raw.Rank() == root {
		return buf, nil
	}
	out, cost, err := pickle.Loads(frame, gpu, c.pickleCosts)
	if err != nil {
		return nil, err
	}
	c.raw.Proc().AdvanceClock(cost)
	return out, nil
}

// AllreduceObject reduces pickled objects (mpi4py's comm.allreduce): a
// binomial-tree reduction where every hop pickles, ships, unpickles and
// applies op element-wise in "Python" (costed at the interpreter's rate),
// followed by an object broadcast of the result. Returns the reduced buffer
// on every rank.
func (c *Comm) AllreduceObject(buf pybuf.Buffer, op mpi.Op, gpu *device.GPU) (pybuf.Buffer, error) {
	p := c.raw.Size()
	acc, err := cloneBuffer(buf, gpu)
	if err != nil {
		return nil, err
	}
	// Binomial reduce to rank 0 over pickled frames.
	mask := 1
	for mask < p {
		if c.raw.Rank()&mask != 0 {
			dst := c.raw.Rank() &^ mask
			if err := c.SendObject(acc, dst, objTag); err != nil {
				return nil, err
			}
			break
		}
		src := c.raw.Rank() | mask
		if src < p {
			other, _, err := c.RecvObject(src, objTag, gpu)
			if err != nil {
				return nil, err
			}
			if err := pythonReduce(c, acc, other, op); err != nil {
				return nil, err
			}
		}
		mask <<= 1
	}
	return c.BcastObject(acc, 0, gpu)
}

// objTag is the reserved-by-convention user tag of the object collectives.
const objTag = mpi.MaxUserTag

// pythonReduce applies op element-wise at interpreter speed (roughly 20x
// the native reduction's per-byte cost -- object reductions in mpi4py run
// Python-level __add__ unless the payload is a NumPy array, where it is a
// vectorised call; we model the vectorised case).
func pythonReduce(c *Comm, dst, src pybuf.Buffer, op mpi.Op) error {
	if dst.NBytes() != src.NBytes() {
		return fmt.Errorf("mpi4py: object reduce size mismatch %d vs %d", dst.NBytes(), src.NBytes())
	}
	model := c.raw.Proc().World().Model()
	c.raw.Proc().AdvanceClock(3 * model.Compute(dst.NBytes(), true, false))
	return reduceBuffers(dst, src, op)
}

// cloneBuffer deep-copies a buffer through its own library.
func cloneBuffer(b pybuf.Buffer, gpu *device.GPU) (pybuf.Buffer, error) {
	out, err := pybuf.New(b.Library(), gpu, b.DType(), b.Count())
	if err != nil {
		return nil, err
	}
	copy(out.Raw(), b.Raw())
	return out, nil
}

// reduceBuffers applies op element-wise over two same-shaped buffers using
// the runtime's typed reduction kernels.
func reduceBuffers(dst, src pybuf.Buffer, op mpi.Op) error {
	return mpi.ReduceBuffers(dst.Raw(), src.Raw(), dst.DType(), op)
}
