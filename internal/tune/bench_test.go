package tune

import (
	"context"
	"testing"

	"repro/internal/mpi"
)

// BenchmarkAutotuneSearch runs a complete small search per iteration and
// reports the tuner's operational metrics alongside ns/op: probe
// evaluations per second (the number ombserve must sustain per tuner
// client), the in-process cache-hit ratio, and the objective trajectory
// endpoints (initial = shipped defaults, best = after the search). The
// autotune_search row in the bench JSON is parsed from this output.
func BenchmarkAutotuneSearch(b *testing.B) {
	cfg := Config{
		Seed:        1,
		Iterations:  64,
		Placements:  []Placement{{Ranks: 16, PPN: 1}},
		Collectives: []mpi.Collective{mpi.CollBcast, mpi.CollAllreduce, mpi.CollAlltoall},
		Sizes:       []int{1024, 4096, 16384, 65536},
		ProbeIters:  3,
		ProbeWarmup: 1,
		Workers:     4,
	}
	b.ReportAllocs()
	var evals int
	var prov *Provenance
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Provenance.Evaluations
		prov = res.Provenance
	}
	b.StopTimer()
	if len(prov.Trajectory) == 0 {
		b.Fatal("no trajectory recorded")
	}
	b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "evals/s")
	b.ReportMetric(prov.CacheHitRatio, "hit_ratio")
	b.ReportMetric(prov.Trajectory[0].BestTotalUs, "init_obj_us")
	b.ReportMetric(prov.Trajectory[len(prov.Trajectory)-1].BestTotalUs, "best_obj_us")
}
