package tune

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mpi"
)

// Placement is one (ranks, processes-per-node) point the search tunes.
type Placement struct {
	Ranks int
	PPN   int
}

func (p Placement) String() string { return fmt.Sprintf("%dx%d", p.Ranks, p.PPN) }

// ParsePlacements parses a comma-separated placement list like
// "16x1,224x56".
func ParsePlacements(s string) ([]Placement, error) {
	var out []Placement
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		ranks, ppn, ok := strings.Cut(tok, "x")
		if !ok {
			return nil, fmt.Errorf("tune: placement %q is not RANKSxPPN", tok)
		}
		r, err1 := strconv.Atoi(ranks)
		p, err2 := strconv.Atoi(ppn)
		if err1 != nil || err2 != nil || r < 2 || p < 1 {
			return nil, fmt.Errorf("tune: bad placement %q", tok)
		}
		out = append(out, Placement{Ranks: r, PPN: p})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tune: no placements in %q", s)
	}
	return out, nil
}

// knob is one tunable threshold of a collective: a named pointer into
// mpi.Tuning plus the power-of-two lattice the operators move it on.
type knob struct {
	name     string
	get      func(t *mpi.Tuning) *int
	min, max int
}

// knobsFor returns the thresholds the selection predicates of coll
// consult. ReduceScatter has none: its policy space is forced overrides
// only.
func knobsFor(coll mpi.Collective) []knob {
	switch coll {
	case mpi.CollBcast:
		return []knob{{
			name: "bcast_scatter_ring_min",
			get:  func(t *mpi.Tuning) *int { return &t.BcastScatterRingMin },
			min:  1024, max: 8 << 20,
		}}
	case mpi.CollAllreduce:
		return []knob{{
			name: "allreduce_rabenseifner_min",
			get:  func(t *mpi.Tuning) *int { return &t.AllreduceRabenseifnerMin },
			min:  256, max: 8 << 20,
		}}
	case mpi.CollAllgather:
		return []knob{{
			name: "allgather_rd_max_total",
			get:  func(t *mpi.Tuning) *int { return &t.AllgatherRDMaxTotal },
			min:  4096, max: 64 << 20,
		}, {
			name: "allgather_bruck_max_total",
			get:  func(t *mpi.Tuning) *int { return &t.AllgatherBruckMaxTotal },
			min:  4096, max: 64 << 20,
		}}
	case mpi.CollAlltoall:
		return []knob{{
			name: "alltoall_bruck_max_block",
			get:  func(t *mpi.Tuning) *int { return &t.AlltoallBruckMaxBlock },
			min:  64, max: 1 << 20,
		}}
	default:
		return nil
	}
}

// gene is one candidate sub-policy: the threshold vector of a context's
// knobs plus an optional forced algorithm. A context's gene only ever
// touches its own collective's fields, so probes of different collectives
// occupy disjoint regions of the options space and a mutation in one
// context never invalidates the cached probes of another.
type gene struct {
	thresholds []int
	forced     string
}

func (g gene) clone() gene {
	out := gene{forced: g.forced}
	out.thresholds = append([]int(nil), g.thresholds...)
	return out
}

func (g gene) equal(o gene) bool {
	if g.forced != o.forced || len(g.thresholds) != len(o.thresholds) {
		return false
	}
	for i := range g.thresholds {
		if g.thresholds[i] != o.thresholds[i] {
			return false
		}
	}
	return true
}

// searchContext is one (placement, collective) cell group of the search:
// the bandit's context, the probe template, and the feasible moves.
type searchContext struct {
	placement Placement
	coll      mpi.Collective
	bench     core.Benchmark
	knobs     []knob
	// algos are the algorithm names feasible at this communicator size, in
	// registry (selection-priority) order — the force_swap operator's arms.
	algos []string
	// ops are the indices into the global operator set applicable here.
	ops []int
}

func (c *searchContext) name() string {
	return c.placement.String() + "/" + string(c.coll)
}

// buildContexts enumerates (placement, collective) in configured order.
func buildContexts(cfg Config) ([]*searchContext, error) {
	var out []*searchContext
	for _, pl := range cfg.Placements {
		for _, coll := range cfg.Collectives {
			bench := core.Benchmark(string(coll))
			if _, err := core.LookupBenchmark(string(bench)); err != nil {
				return nil, fmt.Errorf("tune: collective %s has no benchmark: %w", coll, err)
			}
			ctx := &searchContext{
				placement: pl,
				coll:      coll,
				bench:     bench,
				knobs:     knobsFor(coll),
			}
			sel := mpi.Selection{CommSize: pl.Ranks}
			for _, a := range mpi.Algorithms(coll) {
				if a.FeasibleFor(sel) {
					ctx.algos = append(ctx.algos, a.Name)
				}
			}
			if len(ctx.algos) == 0 {
				return nil, fmt.Errorf("tune: no feasible %s algorithm at %d ranks", coll, pl.Ranks)
			}
			out = append(out, ctx)
		}
	}
	return out, nil
}

// defaultGene is the shipped policy as a gene: default thresholds, no
// force.
func (c *searchContext) defaultGene() gene {
	g := gene{}
	def := mpi.DefaultTuning()
	for _, k := range c.knobs {
		g.thresholds = append(g.thresholds, *k.get(&def))
	}
	return g
}

// tuning renders the gene's thresholds into a Tuning that sets only this
// collective's fields (zero elsewhere).
func (c *searchContext) tuning(g gene) mpi.Tuning {
	var t mpi.Tuning
	for i, k := range c.knobs {
		*k.get(&t) = g.thresholds[i]
	}
	return t
}

// probeOptions builds the objective probe for one gene: a timing-only
// sweep of this context's collective benchmark at its placement, carrying
// only this collective's policy fields. Keeping the probe minimal is what
// makes the evaluator cache effective: the content address depends on
// nothing another context mutates.
func (c *searchContext) probeOptions(cfg Config, g gene) core.Options {
	opts := core.Options{
		Benchmark:  c.bench,
		Cluster:    cfg.Cluster,
		Impl:       cfg.Impl,
		Ranks:      c.placement.Ranks,
		PPN:        c.placement.PPN,
		TimingOnly: true,
		Iters:      cfg.ProbeIters,
		Warmup:     cfg.ProbeWarmup,
		Sizes:      cfg.Sizes,
		Tuning:     c.tuning(g),
	}
	if g.forced != "" {
		opts.Algorithms = map[string]string{string(c.coll): g.forced}
	}
	return opts
}

// selection mirrors the Selection the runtime builds when dispatching this
// collective at one benchmark message size (see the coll_*.go dispatch
// sites), so provenance can name the winning algorithm per cell without
// re-running anything.
func (c *searchContext) selection(size int) mpi.Selection {
	sel := mpi.Selection{CommSize: c.placement.Ranks, Bytes: size}
	const elemSize = 4 // reduces probe as float32
	switch c.coll {
	case mpi.CollAllreduce:
		sel.Elems = size / elemSize
	case mpi.CollReduceScatter:
		// The benchmark's size is the per-rank block; selection sees the
		// total payload.
		sel.Bytes = size * c.placement.Ranks
		sel.Elems = sel.Bytes / elemSize
	}
	return sel
}

// algorithmFor names the algorithm the gene's policy picks for one cell.
func (c *searchContext) algorithmFor(g gene, size int) string {
	p := mpi.Policy{Tuning: c.tuning(g)}
	if g.forced != "" {
		p.Forced = map[mpi.Collective]string{c.coll: g.forced}
	}
	a, err := p.Select(c.coll, c.selection(size))
	if err != nil {
		return "error: " + err.Error()
	}
	return a.Name
}

// assembleTable merges the chosen per-context genes into a
// placement-indexed tuning table with explicit effective thresholds.
func assembleTable(cfg Config, contexts []*searchContext, chosen []gene) *mpi.TuningTable {
	byPlacement := map[Placement]*mpi.TuningTableEntry{}
	var order []Placement
	for i, c := range contexts {
		e, ok := byPlacement[c.placement]
		if !ok {
			t := mpi.DefaultTuning()
			e = &mpi.TuningTableEntry{
				Ranks:  c.placement.Ranks,
				PPN:    c.placement.PPN,
				Policy: mpi.Policy{Tuning: t},
			}
			byPlacement[c.placement] = e
			order = append(order, c.placement)
		}
		g := chosen[i]
		for ki, k := range c.knobs {
			*k.get(&e.Policy.Tuning) = g.thresholds[ki]
		}
		if g.forced != "" {
			if e.Policy.Forced == nil {
				e.Policy.Forced = map[mpi.Collective]string{}
			}
			e.Policy.Forced[c.coll] = g.forced
		}
	}
	table := &mpi.TuningTable{
		Comment: fmt.Sprintf("generated by ombtune (seed %d, %d iterations)", cfg.Seed, cfg.Iterations),
	}
	for _, pl := range order {
		table.Entries = append(table.Entries, *byPlacement[pl])
	}
	table.Sort()
	return table
}

// thresholdMap renders a gene's thresholds keyed by knob name, for
// provenance.
func (c *searchContext) thresholdMap(g gene) map[string]int {
	if len(c.knobs) == 0 {
		return nil
	}
	out := make(map[string]int, len(c.knobs))
	for i, k := range c.knobs {
		out[k.name] = g.thresholds[i]
	}
	return out
}

// sortedSizes returns cfg.Sizes ascending (they are validated ascending;
// this is belt and braces for provenance ordering).
func sortedSizes(sizes []int) []int {
	out := append([]int(nil), sizes...)
	sort.Ints(out)
	return out
}
