package tune

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/mpi"
	"repro/internal/serve"
)

// testConfig is a small but real search: two placements, two collectives
// with different knob shapes, a few dozen iterations.
func testConfig(seed uint64) Config {
	return Config{
		Seed:        seed,
		Iterations:  48,
		Placements:  []Placement{{Ranks: 4, PPN: 1}, {Ranks: 8, PPN: 2}},
		Collectives: []mpi.Collective{mpi.CollAllreduce, mpi.CollAlltoall},
		Sizes:       []int{1024, 4096, 16384, 65536},
		ProbeIters:  3,
		ProbeWarmup: 1,
	}
}

// render returns the byte-exact artifacts of one run.
func render(t *testing.T, res *Result) (string, string) {
	t.Helper()
	table, err := res.TableJSON()
	if err != nil {
		t.Fatal(err)
	}
	prov, err := res.ProvenanceJSON()
	if err != nil {
		t.Fatal(err)
	}
	return string(table), string(prov)
}

// TestSearchDeterministicSameSeed pins the headline contract: same seed,
// same budget -> byte-identical table and provenance.
func TestSearchDeterministicSameSeed(t *testing.T) {
	ctx := context.Background()
	a, err := Run(ctx, testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	aTab, aProv := render(t, a)
	bTab, bProv := render(t, b)
	if aTab != bTab {
		t.Errorf("same seed produced different tables:\n%s\n---\n%s", aTab, bTab)
	}
	if aProv != bProv {
		t.Errorf("same seed produced different provenance:\n%s\n---\n%s", aProv, bProv)
	}
	if a.Provenance.Evaluations == 0 {
		t.Error("search made no evaluations")
	}
	if a.Provenance.CacheHits == 0 {
		t.Error("a 48-iteration search should revisit at least one configuration (finalize re-probes the best)")
	}
}

// TestSearchParallelMatchesSerial pins byte-identity across the -parallel
// evaluation knob.
func TestSearchParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serialCfg := testConfig(11)
	serialCfg.Workers = 1
	parallelCfg := testConfig(11)
	parallelCfg.Workers = 4

	serial, err := Run(ctx, serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(ctx, parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	sTab, sProv := render(t, serial)
	pTab, pProv := render(t, parallel)
	if sTab != pTab {
		t.Error("parallel evaluation changed the table")
	}
	if sProv != pProv {
		t.Error("parallel evaluation changed the provenance")
	}
}

// TestSearchHTTPMatchesInProcess pins byte-identity across evaluator
// backends, and that the search demonstrably hits the service's cache.
func TestSearchHTTPMatchesInProcess(t *testing.T) {
	ctx := context.Background()
	local, err := Run(ctx, testConfig(3))
	if err != nil {
		t.Fatal(err)
	}

	svc := serve.NewServer(serve.Config{Workers: 4})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	cfg := testConfig(3)
	cfg.Workers = 2
	cfg.Evaluator = &ServeEvaluator{Client: &serve.Client{BaseURL: srv.URL}}
	remote, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	lTab, lProv := render(t, local)
	rTab, rProv := render(t, remote)
	if lTab != rTab {
		t.Errorf("HTTP backend changed the table:\n%s\n---\n%s", lTab, rTab)
	}
	if lProv != rProv {
		t.Errorf("HTTP backend changed the provenance:\n%s\n---\n%s", lProv, rProv)
	}

	st := svc.Snapshot()
	if st.CacheHits == 0 {
		t.Errorf("search through ombserve recorded no cache hits: %+v", st)
	}
	if remote.Provenance.CacheHits == 0 || remote.Provenance.CacheHitRatio <= 0 {
		t.Errorf("provenance cites no cache behavior: %+v", remote.Provenance)
	}
}

// TestGeneratedTableNeverWorse pins the dominance guard: every shipped
// cell is at least as fast as the shipped default.
func TestGeneratedTableNeverWorse(t *testing.T) {
	res, err := Run(context.Background(), testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.Provenance.Contexts {
		for _, cell := range cr.Cells {
			if cell.TunedUs > cell.DefaultUs {
				t.Errorf("%s/%s size %d: tuned %.3fus > default %.3fus (source %s)",
					cr.Placement, cr.Collective, cell.Size, cell.TunedUs, cell.DefaultUs, cr.Source)
			}
		}
		if cr.TunedUs > cr.DefaultUs {
			t.Errorf("%s/%s: tuned objective %.3f > default %.3f",
				cr.Placement, cr.Collective, cr.TunedUs, cr.DefaultUs)
		}
	}
}

// TestGeneratedTableRoundTripsThroughJSON: the emitted artifact parses
// back into a table whose policies select identically — the "ship it"
// contract end to end.
func TestGeneratedTableRoundTrips(t *testing.T) {
	res, err := Run(context.Background(), testConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.TableJSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := mpi.ParseTuningTable(data)
	if err != nil {
		t.Fatalf("emitted table does not parse: %v\n%s", err, data)
	}
	if len(parsed.Entries) != 2 {
		t.Fatalf("expected 2 placements, got %d", len(parsed.Entries))
	}
	for _, e := range parsed.Entries {
		if _, ok := parsed.Lookup(e.Ranks, e.PPN); !ok {
			t.Errorf("lookup misses its own entry %dx%d", e.Ranks, e.PPN)
		}
	}
}

func TestParsePlacements(t *testing.T) {
	got, err := ParsePlacements("16x1, 224x56")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != (Placement{16, 1}) || got[1] != (Placement{224, 56}) {
		t.Errorf("ParsePlacements = %v", got)
	}
	for _, bad := range []string{"", "16", "0x1", "16x0", "axb"} {
		if _, err := ParsePlacements(bad); err == nil {
			t.Errorf("ParsePlacements(%q) should fail", bad)
		}
	}
}

// TestProbeIsolation pins the cache-friendliness invariant: a context's
// probe carries only its own collective's policy fields, so a mutation in
// one collective never changes another's probe keys.
func TestProbeIsolation(t *testing.T) {
	cfg := testConfig(1).withDefaults()
	contexts, err := buildContexts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range contexts {
		g := c.defaultGene()
		opts := c.probeOptions(cfg, g)
		tun := opts.Tuning
		switch c.coll {
		case mpi.CollAllreduce:
			if tun.AllreduceRabenseifnerMin == 0 || tun.AlltoallBruckMaxBlock != 0 ||
				tun.BcastScatterRingMin != 0 || tun.AllgatherRDMaxTotal != 0 {
				t.Errorf("allreduce probe leaks foreign knobs: %+v", tun)
			}
		case mpi.CollAlltoall:
			if tun.AlltoallBruckMaxBlock == 0 || tun.AllreduceRabenseifnerMin != 0 {
				t.Errorf("alltoall probe leaks foreign knobs: %+v", tun)
			}
		}
		if opts.Algorithms != nil {
			t.Errorf("unforced probe should not set Algorithms: %+v", opts.Algorithms)
		}
	}
}

// TestBanditPrefersRewardingArm sanity-checks UCB: with one arm always
// rewarded and one never, pulls concentrate on the former.
func TestBanditPrefersRewardingArm(t *testing.T) {
	b := newContextBandit([]int{0, 1})
	for i := 0; i < 100; i++ {
		arm := b.pick()
		if arm == 0 {
			b.update(arm, 1.0, true, false)
		} else {
			b.update(arm, 0.0, false, false)
		}
	}
	if b.pulls[0] <= b.pulls[1] {
		t.Errorf("bandit did not favor the rewarding arm: pulls %v", b.pulls)
	}
}
