package tune

// The provenance report is the "why" next to the table's "what": per cell
// the winning algorithm and its modeled latency against the shipped
// default, per context the operator/bandit statistics, and for the search
// as a whole the evaluation count, cache-hit ratio and best-objective
// trajectory. Everything in it is backend-independent — two runs with the
// same seed and budget produce byte-identical provenance whether probes
// were answered in process or by an ombserve instance (pinned by
// TestSearchHTTPMatchesInProcess).

// Provenance is the report emitted next to a generated table.
type Provenance struct {
	Seed           uint64  `json:"seed"`
	Iterations     int     `json:"iterations"`
	Evaluations    int     `json:"evaluations"`
	CacheHits      int     `json:"cache_hits"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	DefaultTotalUs float64 `json:"default_total_us"`
	TunedTotalUs   float64 `json:"tuned_total_us"`
	ImprovementPct float64 `json:"improvement_pct"`
	// Trajectory tracks the summed best objective: one point per
	// improvement, endpoints first and last.
	Trajectory []TrajPoint     `json:"trajectory"`
	Contexts   []ContextReport `json:"contexts"`
}

// TrajPoint is one best-objective improvement event.
type TrajPoint struct {
	Iteration   int     `json:"iteration"`
	BestTotalUs float64 `json:"best_total_us"`
}

// ContextReport is the per-(placement, collective) slice of the search.
type ContextReport struct {
	Placement  string `json:"placement"`
	Collective string `json:"collective"`
	// Source names where the shipped cell came from: "search" (the best
	// gene survived the dominance guard), "search_unforced" (its forced
	// override had to be dropped), or "default" (the search found nothing
	// that beats the shipped policy on every cell).
	Source         string           `json:"source"`
	DefaultUs      float64          `json:"default_us"`
	TunedUs        float64          `json:"tuned_us"`
	ImprovementPct float64          `json:"improvement_pct"`
	Thresholds     map[string]int   `json:"thresholds,omitempty"`
	Forced         string           `json:"forced,omitempty"`
	Cells          []CellReport     `json:"cells"`
	Operators      []OperatorReport `json:"operators,omitempty"`
}

// CellReport compares one (size) cell of the tuned policy against the
// shipped default.
type CellReport struct {
	Size             int     `json:"size"`
	DefaultAlgorithm string  `json:"default_algorithm"`
	TunedAlgorithm   string  `json:"tuned_algorithm"`
	DefaultUs        float64 `json:"default_us"`
	TunedUs          float64 `json:"tuned_us"`
}

// OperatorReport is one bandit arm's history in a context.
type OperatorReport struct {
	Name       string  `json:"name"`
	Pulls      int     `json:"pulls"`
	MeanReward float64 `json:"mean_reward"`
	Accepted   int     `json:"accepted"`
	Improved   int     `json:"improved"`
}
