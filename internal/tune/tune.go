// Package tune searches the collective-selection policy space and emits
// generated tuning tables: an adaptive large-neighborhood search (ALNS)
// whose candidate solutions are the runtime's own Policy/Tuning
// structures, with destroy/repair operators over threshold octaves and
// forced overrides, a contextual UCB bandit weighting operator selection
// per (placement, collective), simulated-annealing acceptance, and the
// deterministic event engine as the objective evaluator — in process or
// over HTTP through the ombserve content-addressed cache.
//
// Determinism is a contract, not an accident: all randomness flows
// through the counter-based PRNG discipline of internal/faults, probes
// are bit-identical functions of their options, and the emitted table and
// provenance report are byte-identical for a given (seed, iteration
// budget) across serial vs. parallel evaluation and across evaluator
// backends. A wall-clock budget (Config.Budget) trades that away
// knowingly: it stops the search early at a host-dependent iteration.
package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/netmodel"
)

// Config parameterizes one search. Zero values take the documented
// defaults.
type Config struct {
	// Seed fixes the search trajectory; same seed, same budget ->
	// byte-identical outputs.
	Seed uint64
	// Iterations is the move budget (default 300). Each iteration proposes
	// one mutation in one context, round-robin.
	Iterations int
	// Budget optionally bounds wall-clock time; the search stops early
	// with its best-so-far. Early stops are host-dependent, so a Budget
	// forfeits byte-identity; leave it zero where determinism matters.
	Budget time.Duration
	// Placements are the (ranks, ppn) points to tune (required).
	Placements []Placement
	// Collectives to tune (default: all registered).
	Collectives []mpi.Collective
	// Sizes is the message-size axis of every probe (default: powers of
	// two, 1 KiB to 1 MiB). Sizes must be multiples of 4 so reducing
	// collectives probe cleanly as float32.
	Sizes []int
	// Cluster and Impl select the modeled machine (defaults: the core
	// defaults, frontera / mvapich2).
	Cluster string
	Impl    netmodel.Impl
	// ProbeIters / ProbeWarmup are the per-size iteration counts of each
	// probe (defaults 10 / 2) — small, because the model is deterministic
	// and the averages are exact.
	ProbeIters  int
	ProbeWarmup int
	// Workers bounds parallel probe evaluation in the baseline and
	// finalization batches (default 1). The answer is identical at any
	// worker count.
	Workers int
	// Evaluator answers probes (default: a fresh in-process
	// CoreEvaluator). Use ServeEvaluator to drive an ombserve instance.
	Evaluator Evaluator
}

func (cfg Config) withDefaults() Config {
	if cfg.Iterations == 0 {
		cfg.Iterations = 300
	}
	if cfg.Collectives == nil {
		cfg.Collectives = mpi.Collectives()
	}
	if cfg.Sizes == nil {
		for size := 1 << 10; size <= 1<<20; size <<= 1 {
			cfg.Sizes = append(cfg.Sizes, size)
		}
	} else {
		cfg.Sizes = sortedSizes(cfg.Sizes)
	}
	if cfg.ProbeIters == 0 {
		cfg.ProbeIters = 10
	}
	if cfg.ProbeWarmup == 0 {
		cfg.ProbeWarmup = 2
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Evaluator == nil {
		cfg.Evaluator = NewCoreEvaluator()
	}
	return cfg
}

func (cfg Config) validate() error {
	if len(cfg.Placements) == 0 {
		return fmt.Errorf("tune: Config.Placements is required")
	}
	for _, p := range cfg.Placements {
		if p.Ranks < 2 || p.PPN < 1 {
			return fmt.Errorf("tune: bad placement %s", p)
		}
	}
	if cfg.Iterations < 0 {
		return fmt.Errorf("tune: negative iteration budget")
	}
	for _, s := range cfg.Sizes {
		if s <= 0 || s%4 != 0 {
			return fmt.Errorf("tune: probe size %d must be a positive multiple of 4", s)
		}
	}
	return nil
}

// Result is a finished search: the shippable table and its provenance.
type Result struct {
	Table      *mpi.TuningTable
	Provenance *Provenance
}

// TableJSON renders the table in the canonical indented form.
func (r *Result) TableJSON() ([]byte, error) {
	return json.MarshalIndent(r.Table, "", "  ")
}

// ProvenanceJSON renders the provenance report in the canonical indented
// form.
func (r *Result) ProvenanceJSON() ([]byte, error) {
	return json.MarshalIndent(r.Provenance, "", "  ")
}

// search is the mutable state of one run.
type search struct {
	cfg      Config
	eval     Evaluator
	rng      *rng
	contexts []*searchContext
	bandits  []*contextBandit

	cur, best       []gene
	curObj, bestObj []float64
	defaultCells    [][]Cell
	defaultObj      []float64
	temp0           []float64
	evals, hits     int
	executed        int
	traj            []TrajPoint
}

// Run executes one search to completion and returns the generated table
// plus provenance. ctx cancellation aborts with an error; Config.Budget
// expiry stops the search loop early but still finalizes.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	contexts, err := buildContexts(cfg)
	if err != nil {
		return nil, err
	}
	s := &search{cfg: cfg, eval: cfg.Evaluator, rng: newRNG(cfg.Seed), contexts: contexts}
	for ci := range contexts {
		var ops []int
		for oi := range operators {
			if operators[oi].wants(s, ci) {
				ops = append(ops, oi)
			}
		}
		contexts[ci].ops = ops
		s.bandits = append(s.bandits, newContextBandit(ops))
	}

	if err := s.baseline(ctx); err != nil {
		return nil, err
	}
	s.anneal(ctx)
	chosen, chosenCells, sources, err := s.finalize(ctx)
	if err != nil {
		return nil, err
	}
	return s.report(chosen, chosenCells, sources), nil
}

// baseline evaluates the shipped policy in every context: the reference
// cells for the dominance guard, the initial solutions, and the annealing
// temperature scale.
func (s *search) baseline(ctx context.Context) error {
	probes := make([]core.Options, len(s.contexts))
	for ci, c := range s.contexts {
		probes[ci] = c.probeOptions(s.cfg, c.defaultGene())
	}
	results, err := s.evalBatch(ctx, probes)
	if err != nil {
		return fmt.Errorf("tune: baseline: %w", err)
	}
	n := len(s.contexts)
	s.cur = make([]gene, n)
	s.best = make([]gene, n)
	s.curObj = make([]float64, n)
	s.bestObj = make([]float64, n)
	s.defaultCells = make([][]Cell, n)
	s.defaultObj = make([]float64, n)
	s.temp0 = make([]float64, n)
	for ci, c := range s.contexts {
		obj := objective(results[ci].Cells)
		s.defaultCells[ci] = results[ci].Cells
		s.defaultObj[ci] = obj
		s.cur[ci] = c.defaultGene()
		s.best[ci] = c.defaultGene()
		s.curObj[ci] = obj
		s.bestObj[ci] = obj
		s.temp0[ci] = 0.05 * obj
	}
	s.traj = append(s.traj, TrajPoint{Iteration: 0, BestTotalUs: s.totalBest()})
	return nil
}

// anneal is the search loop: round-robin over contexts, bandit-picked
// operator, probe, ALNS reward, simulated-annealing acceptance.
func (s *search) anneal(ctx context.Context) {
	budgetCtx := ctx
	if s.cfg.Budget > 0 {
		var cancel context.CancelFunc
		budgetCtx, cancel = context.WithTimeout(ctx, s.cfg.Budget)
		defer cancel()
	}
	for t := 1; t <= s.cfg.Iterations; t++ {
		if budgetCtx.Err() != nil {
			break
		}
		s.executed = t
		ci := (t - 1) % len(s.contexts)
		b := s.bandits[ci]
		arm := b.pick()
		op := operators[b.opIndex[arm]]
		cand, ok := op.apply(s.rng, s, ci, s.cur[ci].clone())
		if !ok || cand.equal(s.cur[ci]) {
			b.update(arm, rewardRejected, false, false)
			continue
		}
		res, evalErr := s.eval.Evaluate(ctx, s.contexts[ci].probeOptions(s.cfg, cand))
		if evalErr != nil {
			// Probes are pure functions of valid options; an error here is
			// environmental (service down, ctx canceled). Stop searching
			// and keep the best found so far; finalize will surface a
			// persistent failure.
			break
		}
		s.evals++
		if res.Cached {
			s.hits++
		}
		obj := objective(res.Cells)
		switch {
		case obj < s.bestObj[ci]:
			s.best[ci] = cand.clone()
			s.bestObj[ci] = obj
			s.cur[ci] = cand
			s.curObj[ci] = obj
			s.traj = append(s.traj, TrajPoint{Iteration: t, BestTotalUs: s.totalBest()})
			b.update(arm, rewardBest, true, true)
		case obj < s.curObj[ci]:
			s.cur[ci] = cand
			s.curObj[ci] = obj
			b.update(arm, rewardImprove, true, true)
		default:
			temp := s.temperature(ci, t)
			if temp > 0 && s.rng.float() < math.Exp(-(obj-s.curObj[ci])/temp) {
				s.cur[ci] = cand
				s.curObj[ci] = obj
				b.update(arm, rewardAccepted, true, false)
			} else {
				b.update(arm, rewardRejected, false, false)
			}
		}
	}
}

// temperature is the geometric cooling schedule: 5% of the context's
// default objective at the start, 1% of that by the last iteration.
func (s *search) temperature(ci, t int) float64 {
	frac := 0.0
	if s.cfg.Iterations > 1 {
		frac = float64(t-1) / float64(s.cfg.Iterations-1)
	}
	return s.temp0[ci] * math.Pow(0.01, frac)
}

// finalize applies the dominance guard: per context, ship the best gene
// only if it is at least as good as the shipped default on EVERY cell,
// else retry without its forced override, else keep the default. The
// guard re-evaluates genes the search already probed, so this phase is
// where a caching evaluator provably hits.
func (s *search) finalize(ctx context.Context) ([]gene, [][]Cell, []string, error) {
	type candidate struct {
		ci     int
		g      gene
		source string
	}
	var cands []candidate
	for ci, c := range s.contexts {
		def := c.defaultGene()
		seen := []gene{}
		add := func(g gene, source string) {
			for _, have := range seen {
				if g.equal(have) {
					return
				}
			}
			seen = append(seen, g)
			cands = append(cands, candidate{ci: ci, g: g, source: source})
		}
		add(s.best[ci], "search")
		if s.best[ci].forced != "" {
			unforced := s.best[ci].clone()
			unforced.forced = ""
			add(unforced, "search_unforced")
		}
		add(def, "default")
	}
	probes := make([]core.Options, len(cands))
	for i, cand := range cands {
		probes[i] = s.contexts[cand.ci].probeOptions(s.cfg, cand.g)
	}
	results, err := s.evalBatch(ctx, probes)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tune: finalize: %w", err)
	}

	n := len(s.contexts)
	chosen := make([]gene, n)
	cells := make([][]Cell, n)
	sources := make([]string, n)
	for i, cand := range cands {
		ci := cand.ci
		if sources[ci] != "" {
			continue // an earlier (preferred) candidate already won
		}
		if dominates(results[i].Cells, s.defaultCells[ci]) {
			chosen[ci] = cand.g
			cells[ci] = results[i].Cells
			sources[ci] = cand.source
		}
	}
	for ci := range s.contexts {
		if sources[ci] == "" {
			// Unreachable: the default candidate trivially dominates
			// itself. Kept as a hard failure rather than a silent fallback.
			return nil, nil, nil, fmt.Errorf("tune: context %s chose no candidate", s.contexts[ci].name())
		}
	}
	return chosen, cells, sources, nil
}

// dominates reports whether cand is at least as fast as ref on every
// cell.
func dominates(cand, ref []Cell) bool {
	if len(cand) != len(ref) {
		return false
	}
	for i := range cand {
		if cand[i].Size != ref[i].Size || cand[i].AvgUs > ref[i].AvgUs {
			return false
		}
	}
	return true
}

// report assembles the table and provenance from the guarded genes.
func (s *search) report(chosen []gene, chosenCells [][]Cell, sources []string) *Result {
	table := assembleTable(s.cfg, s.contexts, chosen)
	prov := &Provenance{
		Seed:       s.cfg.Seed,
		Iterations: s.executed,
		Trajectory: s.traj,
	}
	prov.Evaluations = s.evals
	prov.CacheHits = s.hits
	if s.evals > 0 {
		prov.CacheHitRatio = float64(s.hits) / float64(s.evals)
	}
	for ci, c := range s.contexts {
		defObj := s.defaultObj[ci]
		tunedObj := objective(chosenCells[ci])
		cr := ContextReport{
			Placement:      c.placement.String(),
			Collective:     string(c.coll),
			Source:         sources[ci],
			DefaultUs:      defObj,
			TunedUs:        tunedObj,
			ImprovementPct: improvementPct(defObj, tunedObj),
			Thresholds:     c.thresholdMap(chosen[ci]),
			Forced:         chosen[ci].forced,
		}
		def := c.defaultGene()
		for k, cell := range chosenCells[ci] {
			cr.Cells = append(cr.Cells, CellReport{
				Size:             cell.Size,
				DefaultAlgorithm: c.algorithmFor(def, cell.Size),
				TunedAlgorithm:   c.algorithmFor(chosen[ci], cell.Size),
				DefaultUs:        s.defaultCells[ci][k].AvgUs,
				TunedUs:          cell.AvgUs,
			})
		}
		b := s.bandits[ci]
		for i, oi := range b.opIndex {
			rep := OperatorReport{
				Name:     operators[oi].name,
				Pulls:    b.pulls[i],
				Accepted: b.accepted[i],
				Improved: b.improved[i],
			}
			if b.pulls[i] > 0 {
				rep.MeanReward = b.reward[i] / float64(b.pulls[i])
			}
			cr.Operators = append(cr.Operators, rep)
		}
		prov.Contexts = append(prov.Contexts, cr)
		prov.DefaultTotalUs += defObj
		prov.TunedTotalUs += tunedObj
	}
	prov.ImprovementPct = improvementPct(prov.DefaultTotalUs, prov.TunedTotalUs)
	return &Result{Table: table, Provenance: prov}
}

func improvementPct(def, tuned float64) float64 {
	if def <= 0 {
		return 0
	}
	return 100 * (def - tuned) / def
}

// totalBest sums the per-context best objectives: the trajectory metric.
func (s *search) totalBest() float64 {
	var sum float64
	for _, o := range s.bestObj {
		sum += o
	}
	return sum
}
