package tune

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/serve"
)

// Evaluator answers objective probes. The simulator's determinism is the
// load-bearing property: a probe's result is a pure function of its
// canonicalized options, so both backends may answer from a
// content-addressed cache and the search cannot tell the difference — the
// same seed walks the same trajectory whether probes are computed fresh,
// from the in-process memo, or by an ombserve instance shared with other
// tuners.
type Evaluator interface {
	// Evaluate runs one probe and reports whether the answer came from a
	// cache (the in-process memo, or the service's result cache /
	// coalesced in-flight computation).
	Evaluate(ctx context.Context, opts core.Options) (EvalResult, error)
}

// Cell is one (message size, modeled latency) point of a probe.
type Cell struct {
	Size  int     `json:"size"`
	AvgUs float64 `json:"avg_us"`
}

// EvalResult is one probe's answer.
type EvalResult struct {
	Cells  []Cell
	Cached bool
}

// objective collapses a probe to the scalar the annealer compares: total
// modeled latency across the size axis.
func objective(cells []Cell) float64 {
	var sum float64
	for _, c := range cells {
		sum += c.AvgUs
	}
	return sum
}

// evalBatch evaluates independent probes on a bounded worker pool and
// collects results (and the eval/hit counters) in index order, so the
// outcome is identical at any worker count. Probes in one batch always
// have distinct content addresses (the callers guarantee it), so
// concurrent evaluation cannot race a memoizing backend into a different
// hit sequence than serial evaluation.
func (s *search) evalBatch(ctx context.Context, probes []core.Options) ([]EvalResult, error) {
	results := make([]EvalResult, len(probes))
	errs := make([]error, len(probes))
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for i := range probes {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = s.eval.Evaluate(ctx, probes[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("probe %d (%s %dx%d): %w",
				i, probes[i].Benchmark, probes[i].Ranks, probes[i].PPN, err)
		}
	}
	for _, r := range results {
		s.evals++
		if r.Cached {
			s.hits++
		}
	}
	return results, nil
}

// CoreEvaluator runs probes in process on the event engine, memoizing by
// content address with the same key the tuning service uses.
type CoreEvaluator struct {
	mu   sync.Mutex
	memo map[string][]Cell
}

// NewCoreEvaluator returns an in-process evaluator with an empty memo.
func NewCoreEvaluator() *CoreEvaluator {
	return &CoreEvaluator{memo: make(map[string][]Cell)}
}

// Evaluate implements Evaluator.
func (e *CoreEvaluator) Evaluate(ctx context.Context, opts core.Options) (EvalResult, error) {
	key := opts.CacheKey()
	e.mu.Lock()
	cells, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return EvalResult{Cells: cells, Cached: true}, nil
	}
	rep, err := core.RunContext(ctx, opts)
	if err != nil {
		return EvalResult{}, err
	}
	if rep.Failure != nil {
		return EvalResult{}, fmt.Errorf("tune: probe failed (%s): %s", rep.Failure.Code, rep.Failure.Message)
	}
	cells = make([]Cell, len(rep.Series.Rows))
	for i, row := range rep.Series.Rows {
		cells[i] = Cell{Size: row.Size, AvgUs: row.AvgUs}
	}
	e.mu.Lock()
	e.memo[key] = cells
	e.mu.Unlock()
	return EvalResult{Cells: cells}, nil
}

// ServeEvaluator answers probes over HTTP through a tuning service, so
// repeated configurations hit ombserve's content-addressed cache (and
// concurrent identical probes coalesce). It keeps no local memo on
// purpose: every probe exercises the service, which is both the point
// (shared cache across tuner processes) and what lets the provenance
// report cite real service cache behavior.
type ServeEvaluator struct {
	Client *serve.Client
}

// Evaluate implements Evaluator.
func (e *ServeEvaluator) Evaluate(ctx context.Context, opts core.Options) (EvalResult, error) {
	rep, status, err := e.Client.Sweep(ctx, opts)
	if err != nil {
		return EvalResult{}, err
	}
	if rep.Failure != nil {
		return EvalResult{}, fmt.Errorf("tune: probe failed (%s): %s", rep.Failure.Code, rep.Failure.Message)
	}
	cells := make([]Cell, len(rep.Rows))
	for i, row := range rep.Rows {
		cells[i] = Cell{Size: row.Size, AvgUs: row.AvgUs}
	}
	return EvalResult{Cells: cells, Cached: status.Cached()}, nil
}
