package tune

import "repro/internal/faults"

// rng is the search's only randomness source: a sequential stream over
// the counter-based PRNG from internal/faults (SplitMix64 finalizer,
// pure function of (seed, stream, counter)). No math/rand, no global
// state: a seed fixes the entire search trajectory bit for bit, which is
// what makes "same seed -> byte-identical table" a testable contract.
type rng struct {
	seed    uint64
	stream  uint64
	counter uint64
}

// tuneStream namespaces the tuner's draws away from the fault layer's
// per-rank streams (which use small rank numbers).
const tuneStream = 0x74756e65 // "tune"

func newRNG(seed uint64) *rng {
	return &rng{seed: seed, stream: tuneStream}
}

// float returns the next draw in [0, 1).
func (r *rng) float() float64 {
	v := faults.Uniform(r.seed, r.stream, r.counter)
	r.counter++
	return v
}

// intn returns the next draw in [0, n); n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("tune: intn needs a positive bound")
	}
	return int(r.float() * float64(n))
}
