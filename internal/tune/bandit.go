package tune

import "math"

// contextBandit is a UCB1 multi-armed bandit over the operators
// applicable in one (placement, collective) context. The ALNS reward
// tiers (new best > improving > merely accepted > rejected) feed the
// empirical means; the exploration bonus keeps rarely-tried operators
// alive. Everything here is exact integer/float arithmetic on a fixed
// pull history, so operator choice is a pure function of the trajectory
// so far — no randomness, no time.
type contextBandit struct {
	// arms[i] tracks the operator at opIndex[i].
	opIndex []int
	pulls   []int
	reward  []float64
	// accepted / improved are provenance counters, not inputs to UCB.
	accepted []int
	improved []int
	total    int
}

// ucbC weights the exploration bonus; sqrt(1/2) is the classic choice.
const ucbC = 0.7071067811865476

func newContextBandit(ops []int) *contextBandit {
	n := len(ops)
	return &contextBandit{
		opIndex:  append([]int(nil), ops...),
		pulls:    make([]int, n),
		reward:   make([]float64, n),
		accepted: make([]int, n),
		improved: make([]int, n),
	}
}

// pick returns the arm to pull: each untried arm once, in index order,
// then the highest upper confidence bound (ties to the lowest index).
func (b *contextBandit) pick() int {
	for i, p := range b.pulls {
		if p == 0 {
			return i
		}
	}
	best, bestScore := 0, math.Inf(-1)
	logTotal := math.Log(float64(b.total))
	for i := range b.pulls {
		mean := b.reward[i] / float64(b.pulls[i])
		score := mean + ucbC*math.Sqrt(logTotal/float64(b.pulls[i]))
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// update records one pull's reward.
func (b *contextBandit) update(arm int, reward float64, accepted, improved bool) {
	b.pulls[arm]++
	b.total++
	b.reward[arm] += reward
	if accepted {
		b.accepted[arm]++
	}
	if improved {
		b.improved[arm]++
	}
}

// The ALNS reward tiers (Ropke & Pisinger shape): a move that sets a new
// context best, one that improves on the current solution, one accepted
// only by annealing, and a rejected or inapplicable one.
const (
	rewardBest     = 1.0
	rewardImprove  = 0.6
	rewardAccepted = 0.25
	rewardRejected = 0.0
)
