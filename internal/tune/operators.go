package tune

// The ALNS move set: destroy/repair operators over genes. Each operator
// is a small, cheap mutation; the contextual bandit (bandit.go) learns
// which ones pay off in which (placement, collective) context. apply
// returns ok=false when the move cannot act (threshold already at its
// clamp, nothing to clear, no sibling to reseed from) — the search counts
// that as a rejected pull so the bandit learns to stop picking it.

type operator struct {
	name  string
	apply func(r *rng, s *search, ci int, g gene) (gene, bool)
	// wants reports whether the operator can ever act in a context; used
	// to build per-context arm lists.
	wants func(s *search, ci int) bool
}

// operators is the global move set; per-context arm lists index into it.
var operators = []operator{
	{
		// octave_up doubles one threshold: the bounded algorithm of that
		// knob stays preferred one octave further.
		name:  "octave_up",
		wants: hasKnobs,
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			c := s.contexts[ci]
			ki := r.intn(len(c.knobs))
			v := g.thresholds[ki] * 2
			if v > c.knobs[ki].max || g.thresholds[ki] < 0 {
				return g, false
			}
			g.thresholds[ki] = v
			return g, true
		},
	},
	{
		// octave_down halves one threshold.
		name:  "octave_down",
		wants: hasKnobs,
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			c := s.contexts[ci]
			ki := r.intn(len(c.knobs))
			v := g.thresholds[ki] / 2
			if v < c.knobs[ki].min || g.thresholds[ki] < 0 {
				return g, false
			}
			g.thresholds[ki] = v
			return g, true
		},
	},
	{
		// jolt is the large-neighborhood destroy: shift one threshold two
		// to four octaves in a random direction, clamped to the lattice.
		name:  "jolt",
		wants: hasKnobs,
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			c := s.contexts[ci]
			ki := r.intn(len(c.knobs))
			shift := 2 + r.intn(3)
			up := r.float() < 0.5
			if g.thresholds[ki] < 0 {
				return g, false
			}
			v := g.thresholds[ki]
			for i := 0; i < shift; i++ {
				if up {
					v *= 2
				} else {
					v /= 2
				}
			}
			k := c.knobs[ki]
			if v > k.max {
				v = k.max
			}
			if v < k.min {
				v = k.min
			}
			if v == g.thresholds[ki] {
				return g, false
			}
			g.thresholds[ki] = v
			return g, true
		},
	},
	{
		// force_swap pins a different feasible algorithm, bypassing the
		// thresholds entirely in this context.
		name:  "force_swap",
		wants: func(s *search, ci int) bool { return len(s.contexts[ci].algos) > 1 },
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			c := s.contexts[ci]
			pick := c.algos[r.intn(len(c.algos))]
			if pick == g.forced {
				return g, false
			}
			g.forced = pick
			return g, true
		},
	},
	{
		// force_clear repairs back to threshold-driven selection.
		name:  "force_clear",
		wants: func(s *search, ci int) bool { return len(s.contexts[ci].algos) > 1 },
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			if g.forced == "" {
				return g, false
			}
			g.forced = ""
			return g, true
		},
	},
	{
		// reseed_neighbor copies the current gene of the same collective at
		// another placement — crossover between placements, on the theory
		// that good thresholds transfer. A forced algorithm infeasible at
		// this communicator size is dropped in the copy.
		name:  "reseed_neighbor",
		wants: func(s *search, ci int) bool { return len(s.siblings(ci)) > 0 },
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			sibs := s.siblings(ci)
			src := sibs[r.intn(len(sibs))]
			seed := s.cur[src].clone()
			if seed.forced != "" && !s.contexts[ci].feasible(seed.forced) {
				seed.forced = ""
			}
			return seed, true
		},
	},
	{
		// reset_default repairs to the shipped policy — the restart move
		// when a context has wandered somewhere unprofitable.
		name:  "reset_default",
		wants: func(s *search, ci int) bool { return true },
		apply: func(r *rng, s *search, ci int, g gene) (gene, bool) {
			return s.contexts[ci].defaultGene(), true
		},
	},
}

func hasKnobs(s *search, ci int) bool { return len(s.contexts[ci].knobs) > 0 }

// feasible reports whether name is feasible at this context's
// communicator size.
func (c *searchContext) feasible(name string) bool {
	for _, a := range c.algos {
		if a == name {
			return true
		}
	}
	return false
}

// siblings returns the context indices sharing ci's collective at other
// placements, in context order.
func (s *search) siblings(ci int) []int {
	var out []int
	for j, c := range s.contexts {
		if j != ci && c.coll == s.contexts[ci].coll {
			out = append(out, j)
		}
	}
	return out
}
