// Package device simulates the GPU substrate the paper's Bridges-2
// experiments need: device memory allocation, host<->device and
// device<->device copies with their own cost model, and the CUDA Array
// Interface (CAI) pointer protocol that mpi4py uses to extract device
// buffers from CuPy, PyCUDA and Numba arrays. Memory is real (host-backed
// byte slices tagged with a device id), copies really move bytes, and the
// virtual-time costs are charged by the callers that own a rank clock.
package device

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

// Kind distinguishes host memory from device memory.
type Kind int

// Memory kinds.
const (
	Host Kind = iota
	CUDA
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case CUDA:
		return "cuda"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CopyCosts prices data movement between host and device; values model a
// V100 SXM2 over PCIe/NVLink as the paper's Bridges-2 nodes have.
type CopyCosts struct {
	H2DAlpha vtime.Micros
	H2DBeta  float64 // us per byte
	D2HAlpha vtime.Micros
	D2HBeta  float64
	D2DAlpha vtime.Micros
	D2DBeta  float64
}

// DefaultCopyCosts is the V100-class calibration: ~10 us launch overhead,
// ~11 GB/s PCIe H2D/D2H, ~700 GB/s on-device copies.
func DefaultCopyCosts() CopyCosts {
	return CopyCosts{
		H2DAlpha: 9.0, H2DBeta: 9.1e-5,
		D2HAlpha: 9.5, D2HBeta: 9.1e-5,
		D2DAlpha: 4.0, D2DBeta: 1.4e-6,
	}
}

// GPU is one simulated device. Allocations are tracked so leaks and
// double-frees surface in tests.
type GPU struct {
	id    int
	costs CopyCosts

	mu     sync.Mutex
	allocs map[uintptr]*Allocation
	used   int64
	limit  int64
	nextID uintptr
}

// NewGPU creates device id with memLimit bytes of simulated memory
// (0 means the 32 GiB of a V100-32GB).
func NewGPU(id int, memLimit int64) *GPU {
	if memLimit == 0 {
		memLimit = 32 << 30
	}
	return &GPU{
		id:     id,
		costs:  DefaultCopyCosts(),
		allocs: make(map[uintptr]*Allocation),
		limit:  memLimit,
		// Device pointers look nothing like host ones, and each device gets
		// its own region so pointers never collide across GPUs.
		nextID: 0x7f0000000000 + uintptr(id)<<36,
	}
}

// ID returns the device index.
func (g *GPU) ID() int { return g.id }

// Costs returns the device's copy cost table.
func (g *GPU) Costs() CopyCosts { return g.costs }

// MemUsed returns the currently allocated bytes.
func (g *GPU) MemUsed() int64 { return atomic.LoadInt64(&g.used) }

// Allocation is a block of simulated device memory.
type Allocation struct {
	gpu   *GPU
	ptr   uintptr
	data  []byte
	freed atomic.Bool
}

// ErrOutOfMemory reports device memory exhaustion.
type ErrOutOfMemory struct {
	Device          int
	Requested, Free int64
}

// Error implements the error interface.
func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("device %d: out of memory: requested %d bytes, %d free",
		e.Device, e.Requested, e.Free)
}

// Malloc allocates n bytes of device memory.
func (g *GPU) Malloc(n int) (*Allocation, error) {
	if n < 0 {
		return nil, fmt.Errorf("device %d: negative allocation %d", g.id, n)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.used+int64(n) > g.limit {
		return nil, &ErrOutOfMemory{Device: g.id, Requested: int64(n), Free: g.limit - g.used}
	}
	g.nextID += 256 // keep pointers aligned and distinct
	a := &Allocation{gpu: g, ptr: g.nextID, data: make([]byte, n)}
	g.allocs[a.ptr] = a
	g.used += int64(n)
	atomic.StoreInt64(&g.used, g.used)
	return a, nil
}

// Free releases the allocation; freeing twice is an error.
func (a *Allocation) Free() error {
	if a.freed.Swap(true) {
		return fmt.Errorf("device %d: double free of %#x", a.gpu.id, a.ptr)
	}
	g := a.gpu
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.allocs, a.ptr)
	g.used -= int64(len(a.data))
	return nil
}

// Ptr returns the simulated device pointer.
func (a *Allocation) Ptr() uintptr { return a.ptr }

// Size returns the allocation size in bytes.
func (a *Allocation) Size() int { return len(a.data) }

// Device returns the owning GPU.
func (a *Allocation) Device() *GPU { return a.gpu }

// Bytes exposes the backing storage. Only the simulated runtime (copies,
// CUDA-aware MPI path) may touch it; "host" code must go through CopyToHost.
func (a *Allocation) Bytes() []byte { return a.data }

func (a *Allocation) check(off, n int, what string) error {
	if a.freed.Load() {
		return fmt.Errorf("device %d: %s on freed allocation %#x", a.gpu.id, what, a.ptr)
	}
	if off < 0 || n < 0 || off+n > len(a.data) {
		return fmt.Errorf("device %d: %s range [%d,%d) outside allocation of %d bytes",
			a.gpu.id, what, off, off+n, len(a.data))
	}
	return nil
}

// CopyFromHost copies host bytes into device memory and returns the virtual
// cost of the transfer.
func (a *Allocation) CopyFromHost(off int, src []byte) (vtime.Micros, error) {
	if err := a.check(off, len(src), "H2D copy"); err != nil {
		return 0, err
	}
	copy(a.data[off:], src)
	c := a.gpu.costs
	return c.H2DAlpha + vtime.Micros(float64(len(src))*c.H2DBeta), nil
}

// CopyToHost copies device memory out to host bytes and returns the cost.
func (a *Allocation) CopyToHost(off int, dst []byte) (vtime.Micros, error) {
	if err := a.check(off, len(dst), "D2H copy"); err != nil {
		return 0, err
	}
	copy(dst, a.data[off:off+len(dst)])
	c := a.gpu.costs
	return c.D2HAlpha + vtime.Micros(float64(len(dst))*c.D2HBeta), nil
}

// CopyDeviceToDevice copies within or across devices and returns the cost.
func CopyDeviceToDevice(dst *Allocation, dstOff int, src *Allocation, srcOff, n int) (vtime.Micros, error) {
	if err := src.check(srcOff, n, "D2D source"); err != nil {
		return 0, err
	}
	if err := dst.check(dstOff, n, "D2D destination"); err != nil {
		return 0, err
	}
	copy(dst.data[dstOff:dstOff+n], src.data[srcOff:srcOff+n])
	c := dst.gpu.costs
	return c.D2DAlpha + vtime.Micros(float64(n)*c.D2DBeta), nil
}

// ArrayInterface is the simulated CUDA Array Interface (CAI) version 2
// descriptor: the attribute GPU-aware Python libraries attach to their
// arrays so mpi4py can extract a device pointer without copying. The paper
// (Section III-E) relies on exactly this protocol.
type ArrayInterface struct {
	Shape    []int
	Typestr  string // e.g. "<f8" for little-endian float64
	Data     uintptr
	Version  int
	ReadOnly bool
}

// NewArrayInterface builds the CAI descriptor for an allocation viewed as a
// 1-D array of elemSize-byte elements.
func NewArrayInterface(a *Allocation, elems int, typestr string) ArrayInterface {
	return ArrayInterface{
		Shape:   []int{elems},
		Typestr: typestr,
		Data:    a.Ptr(),
		Version: 2,
	}
}

// Registry resolves CAI device pointers back to allocations, playing the
// role of the CUDA driver's address lookup in the real stack.
type Registry struct {
	mu   sync.Mutex
	gpus []*GPU
}

// NewRegistry builds a registry over the node's GPUs.
func NewRegistry(gpus []*GPU) *Registry { return &Registry{gpus: gpus} }

// Resolve finds the allocation backing a device pointer.
func (r *Registry) Resolve(ptr uintptr) (*Allocation, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.gpus {
		g.mu.Lock()
		a, ok := g.allocs[ptr]
		g.mu.Unlock()
		if ok {
			return a, nil
		}
	}
	return nil, fmt.Errorf("device: pointer %#x resolves to no live allocation", ptr)
}
