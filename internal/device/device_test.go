package device

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMallocFree(t *testing.T) {
	g := NewGPU(0, 1<<20)
	a, err := g.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 1024 || g.MemUsed() != 1024 {
		t.Errorf("size %d used %d", a.Size(), g.MemUsed())
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if g.MemUsed() != 0 {
		t.Errorf("used %d after free", g.MemUsed())
	}
	if err := a.Free(); err == nil {
		t.Error("double free should fail")
	}
}

func TestOutOfMemory(t *testing.T) {
	g := NewGPU(1, 2048)
	if _, err := g.Malloc(1024); err != nil {
		t.Fatal(err)
	}
	_, err := g.Malloc(2000)
	var oom *ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
	if oom.Free != 1024 || oom.Requested != 2000 || oom.Device != 1 {
		t.Errorf("oom fields %+v", oom)
	}
}

func TestNegativeMalloc(t *testing.T) {
	g := NewGPU(0, 0)
	if _, err := g.Malloc(-1); err == nil {
		t.Error("negative malloc should fail")
	}
}

func TestCopiesRoundTrip(t *testing.T) {
	g := NewGPU(0, 0)
	a, err := g.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	costUp, err := a.CopyFromHost(0, src)
	if err != nil {
		t.Fatal(err)
	}
	if costUp <= 0 {
		t.Error("H2D copy should cost time")
	}
	dst := make([]byte, 256)
	costDown, err := a.CopyToHost(0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if costDown <= 0 {
		t.Error("D2H copy should cost time")
	}
	if !bytes.Equal(src, dst) {
		t.Error("round trip corrupted data")
	}
}

func TestPartialCopyWithOffset(t *testing.T) {
	g := NewGPU(0, 0)
	a, _ := g.Malloc(16)
	if _, err := a.CopyFromHost(8, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4)
	if _, err := a.CopyToHost(8, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{1, 2, 3, 4}) {
		t.Errorf("offset copy wrong: %v", out)
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	g := NewGPU(0, 0)
	a, _ := g.Malloc(8)
	if _, err := a.CopyFromHost(4, make([]byte, 8)); err == nil {
		t.Error("overflowing H2D should fail")
	}
	if _, err := a.CopyToHost(-1, make([]byte, 2)); err == nil {
		t.Error("negative offset should fail")
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CopyToHost(0, make([]byte, 2)); err == nil {
		t.Error("use after free should fail")
	}
}

func TestDeviceToDevice(t *testing.T) {
	g0, g1 := NewGPU(0, 0), NewGPU(1, 0)
	a, _ := g0.Malloc(64)
	b, _ := g1.Malloc(64)
	if _, err := a.CopyFromHost(0, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	cost, err := CopyDeviceToDevice(b, 0, a, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Error("D2D copy should cost time")
	}
	out := make([]byte, 64)
	if _, err := b.CopyToHost(0, out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 || out[63] != 7 {
		t.Error("D2D copy lost data")
	}
}

func TestRegistryResolve(t *testing.T) {
	g0, g1 := NewGPU(0, 0), NewGPU(1, 0)
	reg := NewRegistry([]*GPU{g0, g1})
	a, _ := g0.Malloc(32)
	b, _ := g1.Malloc(32)
	for _, alloc := range []*Allocation{a, b} {
		got, err := reg.Resolve(alloc.Ptr())
		if err != nil {
			t.Fatal(err)
		}
		if got != alloc {
			t.Error("resolved to wrong allocation")
		}
	}
	if err := a.Free(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve(a.Ptr()); err == nil {
		t.Error("freed pointer should not resolve")
	}
	if _, err := reg.Resolve(0xdead); err == nil {
		t.Error("bogus pointer should not resolve")
	}
}

func TestPointersDistinctProperty(t *testing.T) {
	g := NewGPU(0, 0)
	seen := map[uintptr]bool{}
	prop := func(nRaw uint16) bool {
		a, err := g.Malloc(int(nRaw)%4096 + 1)
		if err != nil {
			return false
		}
		if seen[a.Ptr()] {
			return false
		}
		seen[a.Ptr()] = true
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayInterface(t *testing.T) {
	g := NewGPU(0, 0)
	a, _ := g.Malloc(80)
	ai := NewArrayInterface(a, 10, "<f8")
	if ai.Version != 2 || ai.Data != a.Ptr() || ai.Typestr != "<f8" {
		t.Errorf("CAI %+v", ai)
	}
	if len(ai.Shape) != 1 || ai.Shape[0] != 10 {
		t.Errorf("CAI shape %v", ai.Shape)
	}
}

func TestKindString(t *testing.T) {
	if Host.String() != "host" || CUDA.String() != "cuda" {
		t.Error("kind strings wrong")
	}
}
