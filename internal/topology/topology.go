// Package topology describes the simulated HPC clusters the benchmarks run
// on: their node/socket/core/GPU inventory and the placement of MPI ranks
// onto that hardware. The four clusters from the paper's evaluation
// (Frontera, Stampede2, RI2, Bridges-2) are provided, and the link class
// between any two ranks (same socket, same node, inter node, and the GPU
// variants) is derived from placement so the network model can price each
// message correctly.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Interconnect identifies the fabric joining nodes of a cluster.
type Interconnect string

// Fabrics present on the paper's evaluation systems.
const (
	InfiniBandHDR Interconnect = "InfiniBand-HDR" // Frontera, Bridges-2
	OmniPath      Interconnect = "Omni-Path"      // Stampede2
	InfiniBandEDR Interconnect = "InfiniBand-EDR" // RI2 (SB7790/SB7800 switches)
)

// Cluster is a static description of a machine.
type Cluster struct {
	Name           string
	Nodes          int
	SocketsPerNode int
	CoresPerSocket int
	GPUsPerNode    int
	ClockGHz       float64
	RAMPerNodeGB   int
	Fabric         Interconnect
}

// CoresPerNode returns the total number of physical cores on one node.
func (c *Cluster) CoresPerNode() int { return c.SocketsPerNode * c.CoresPerSocket }

// TotalCores returns the number of cores in the whole cluster.
func (c *Cluster) TotalCores() int { return c.Nodes * c.CoresPerNode() }

// TotalGPUs returns the number of GPUs in the whole cluster.
func (c *Cluster) TotalGPUs() int { return c.Nodes * c.GPUsPerNode }

// String implements fmt.Stringer.
func (c *Cluster) String() string {
	return fmt.Sprintf("%s (%d nodes x %d cores, %d GPUs/node, %s)",
		c.Name, c.Nodes, c.CoresPerNode(), c.GPUsPerNode, c.Fabric)
}

// The evaluation systems, sized as in Section IV-A of the paper.
var (
	// Frontera: up to 16 Intel Xeon Platinum 8280 (Cascade Lake) nodes,
	// 2 x 28 cores @ 2.70 GHz, 192 GB RAM, Mellanox InfiniBand HDR/HDR-100.
	Frontera = Cluster{
		Name: "frontera", Nodes: 16, SocketsPerNode: 2, CoresPerSocket: 28,
		GPUsPerNode: 0, ClockGHz: 2.70, RAMPerNodeGB: 192, Fabric: InfiniBandHDR,
	}
	// Stampede2: up to 16 Skylake nodes, Xeon Platinum 8160, 2 x 24 cores
	// @ 2.70 GHz, 192 GB RAM, Intel Omni-Path.
	Stampede2 = Cluster{
		Name: "stampede2", Nodes: 16, SocketsPerNode: 2, CoresPerSocket: 24,
		GPUsPerNode: 0, ClockGHz: 2.70, RAMPerNodeGB: 192, Fabric: OmniPath,
	}
	// RI2: up to 8 nodes, Xeon Gold 6132, 2 x 14 cores @ 2.40 GHz,
	// Mellanox InfiniBand (SB7790/SB7800).
	RI2 = Cluster{
		Name: "ri2", Nodes: 8, SocketsPerNode: 2, CoresPerSocket: 14,
		GPUsPerNode: 0, ClockGHz: 2.40, RAMPerNodeGB: 128, Fabric: InfiniBandEDR,
	}
	// Bridges2: 2 GPU nodes, Xeon Gold 6248 2 x 20 cores @ 2.50 GHz, 512 GB,
	// 8 x NVIDIA V100-32GB SXM2 per node, dual ConnectX-6 HDR 200 Gb/s.
	Bridges2 = Cluster{
		Name: "bridges2", Nodes: 2, SocketsPerNode: 2, CoresPerSocket: 20,
		GPUsPerNode: 8, ClockGHz: 2.50, RAMPerNodeGB: 512, Fabric: InfiniBandHDR,
	}
)

var registry = map[string]*Cluster{
	Frontera.Name:  &Frontera,
	Stampede2.Name: &Stampede2,
	RI2.Name:       &RI2,
	Bridges2.Name:  &Bridges2,
}

// ByName looks a cluster up by its lower-case name.
func ByName(name string) (*Cluster, error) {
	c, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("topology: unknown cluster %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return c, nil
}

// Names lists the registered cluster names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LinkClass categorises the path between two ranks; the network model prices
// each class differently.
type LinkClass int

// Link classes from cheapest to most expensive paths.
const (
	LinkSelf         LinkClass = iota // same rank (copy)
	LinkSameSocket                    // shared L3 / same NUMA domain
	LinkSameNode                      // cross-socket shared memory
	LinkInterNode                     // network fabric
	LinkGPUSameNode                   // GPU peer (NVLink / PCIe IPC)
	LinkGPUInterNode                  // GPU over fabric (GPUDirect RDMA)
)

// String implements fmt.Stringer.
func (l LinkClass) String() string {
	switch l {
	case LinkSelf:
		return "self"
	case LinkSameSocket:
		return "same-socket"
	case LinkSameNode:
		return "same-node"
	case LinkInterNode:
		return "inter-node"
	case LinkGPUSameNode:
		return "gpu-same-node"
	case LinkGPUInterNode:
		return "gpu-inter-node"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(l))
	}
}

// PlacementPolicy selects how consecutive ranks map to hardware.
type PlacementPolicy int

// Placement policies.
const (
	// Block placement fills a node with PPN ranks before moving to the next
	// node (the mpirun default and what the paper's experiments use).
	Block PlacementPolicy = iota
	// Cyclic placement deals ranks round-robin across nodes.
	Cyclic
)

// Placement maps ranks to hardware locations.
type Placement struct {
	cluster *Cluster
	ppn     int
	policy  PlacementPolicy
	nranks  int
	useGPU  bool
}

// NewPlacement lays out nranks ranks on cluster with ppn ranks per node.
// If useGPU is true each rank is also bound to a distinct GPU on its node.
func NewPlacement(cluster *Cluster, nranks, ppn int, policy PlacementPolicy, useGPU bool) (*Placement, error) {
	if nranks <= 0 {
		return nil, fmt.Errorf("topology: nranks must be positive, got %d", nranks)
	}
	if ppn <= 0 {
		return nil, fmt.Errorf("topology: ppn must be positive, got %d", ppn)
	}
	nodesNeeded := (nranks + ppn - 1) / ppn
	if nodesNeeded > cluster.Nodes {
		return nil, fmt.Errorf("topology: %d ranks at %d ppn need %d nodes but %s has %d",
			nranks, ppn, nodesNeeded, cluster.Name, cluster.Nodes)
	}
	if useGPU {
		if cluster.GPUsPerNode == 0 {
			return nil, fmt.Errorf("topology: cluster %s has no GPUs", cluster.Name)
		}
		if ppn > cluster.GPUsPerNode {
			return nil, fmt.Errorf("topology: ppn %d exceeds %d GPUs per node on %s",
				ppn, cluster.GPUsPerNode, cluster.Name)
		}
	}
	return &Placement{cluster: cluster, ppn: ppn, policy: policy, nranks: nranks, useGPU: useGPU}, nil
}

// Cluster returns the machine this placement lives on.
func (p *Placement) Cluster() *Cluster { return p.cluster }

// Size returns the number of ranks placed.
func (p *Placement) Size() int { return p.nranks }

// PPN returns the ranks-per-node of this placement.
func (p *Placement) PPN() int { return p.ppn }

// UsesGPU reports whether ranks are bound to GPUs.
func (p *Placement) UsesGPU() bool { return p.useGPU }

// Node returns the node index hosting rank r.
func (p *Placement) Node(r int) int {
	p.check(r)
	switch p.policy {
	case Cyclic:
		nodes := (p.nranks + p.ppn - 1) / p.ppn
		return r % nodes
	default:
		return r / p.ppn
	}
}

// LocalRank returns the index of rank r among the ranks of its node.
func (p *Placement) LocalRank(r int) int {
	p.check(r)
	switch p.policy {
	case Cyclic:
		nodes := (p.nranks + p.ppn - 1) / p.ppn
		return r / nodes
	default:
		return r % p.ppn
	}
}

// Socket returns the socket index hosting rank r on its node. Ranks fill
// socket 0 first, matching compact CPU binding.
func (p *Placement) Socket(r int) int {
	local := p.LocalRank(r)
	perSocket := p.cluster.CoresPerSocket
	if perSocket == 0 {
		return 0
	}
	s := local / perSocket
	if s >= p.cluster.SocketsPerNode {
		s = p.cluster.SocketsPerNode - 1 // oversubscribed: pile onto last socket
	}
	return s
}

// GPU returns the GPU index bound to rank r on its node, or -1 when the
// placement is CPU-only.
func (p *Placement) GPU(r int) int {
	if !p.useGPU {
		return -1
	}
	return p.LocalRank(r) % p.cluster.GPUsPerNode
}

// Oversubscribed reports whether more ranks share a node than it has cores.
func (p *Placement) Oversubscribed() bool { return p.ppn > p.cluster.CoresPerNode() }

// FullySubscribed reports whether every core of a node hosts a rank, the
// "full subscription" configuration of the paper's Figures 14-15 and 18-19.
func (p *Placement) FullySubscribed() bool { return p.ppn >= p.cluster.CoresPerNode() }

// Link classifies the path between ranks a and b.
func (p *Placement) Link(a, b int) LinkClass {
	p.check(a)
	p.check(b)
	if a == b {
		return LinkSelf
	}
	sameNode := p.Node(a) == p.Node(b)
	if p.useGPU {
		if sameNode {
			return LinkGPUSameNode
		}
		return LinkGPUInterNode
	}
	if !sameNode {
		return LinkInterNode
	}
	if p.Socket(a) == p.Socket(b) {
		return LinkSameSocket
	}
	return LinkSameNode
}

func (p *Placement) check(r int) {
	if r < 0 || r >= p.nranks {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", r, p.nranks))
	}
}
