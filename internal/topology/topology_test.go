package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"frontera", "stampede2", "ri2", "bridges2"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, c.Name)
		}
	}
	if _, err := ByName("FRONTERA"); err != nil {
		t.Error("lookup should be case-insensitive")
	}
	if _, err := ByName("summit"); err == nil {
		t.Error("unknown cluster should fail")
	}
}

func TestClusterInventoryMatchesPaper(t *testing.T) {
	if got := Frontera.CoresPerNode(); got != 56 {
		t.Errorf("Frontera cores/node = %d, want 56", got)
	}
	if got := Stampede2.CoresPerNode(); got != 48 {
		t.Errorf("Stampede2 cores/node = %d, want 48", got)
	}
	if got := RI2.CoresPerNode(); got != 28 {
		t.Errorf("RI2 cores/node = %d, want 28", got)
	}
	if got := Bridges2.GPUsPerNode; got != 8 {
		t.Errorf("Bridges-2 GPUs/node = %d, want 8", got)
	}
	if got := Bridges2.TotalGPUs(); got != 16 {
		t.Errorf("Bridges-2 total GPUs = %d, want 16", got)
	}
	if Frontera.Fabric != InfiniBandHDR || Stampede2.Fabric != OmniPath {
		t.Error("fabric assignments wrong")
	}
}

func TestPlacementBlock(t *testing.T) {
	p, err := NewPlacement(&Frontera, 8, 4, Block, false)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for r, want := range wantNode {
		if got := p.Node(r); got != want {
			t.Errorf("rank %d node = %d, want %d", r, got, want)
		}
		if got := p.LocalRank(r); got != r%4 {
			t.Errorf("rank %d local = %d, want %d", r, got, r%4)
		}
	}
}

func TestPlacementCyclic(t *testing.T) {
	p, err := NewPlacement(&Frontera, 8, 4, Cyclic, false)
	if err != nil {
		t.Fatal(err)
	}
	// 8 ranks at 4 ppn need 2 nodes; cyclic deals round-robin.
	for r := 0; r < 8; r++ {
		if got := p.Node(r); got != r%2 {
			t.Errorf("rank %d node = %d, want %d", r, got, r%2)
		}
	}
}

func TestPlacementSockets(t *testing.T) {
	// Frontera: 28 cores per socket. Compact binding fills socket 0 first.
	p, err := NewPlacement(&Frontera, 56, 56, Block, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Socket(0) != 0 || p.Socket(27) != 0 {
		t.Error("first 28 local ranks should be socket 0")
	}
	if p.Socket(28) != 1 || p.Socket(55) != 1 {
		t.Error("next 28 local ranks should be socket 1")
	}
}

func TestLinkClassification(t *testing.T) {
	p, err := NewPlacement(&Frontera, 112, 56, Block, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b int
		want LinkClass
	}{
		{0, 0, LinkSelf},
		{0, 1, LinkSameSocket},
		{0, 30, LinkSameNode}, // sockets 0 and 1 on node 0
		{0, 56, LinkInterNode},
		{55, 56, LinkInterNode},
	}
	for _, c := range cases {
		if got := p.Link(c.a, c.b); got != c.want {
			t.Errorf("Link(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestGPULinkClassification(t *testing.T) {
	p, err := NewPlacement(&Bridges2, 16, 8, Block, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Link(0, 1); got != LinkGPUSameNode {
		t.Errorf("GPU same node link = %v", got)
	}
	if got := p.Link(0, 8); got != LinkGPUInterNode {
		t.Errorf("GPU inter node link = %v", got)
	}
	if got := p.GPU(3); got != 3 {
		t.Errorf("rank 3 GPU = %d, want 3", got)
	}
	if got := p.GPU(11); got != 3 {
		t.Errorf("rank 11 GPU = %d, want 3", got)
	}
}

func TestPlacementValidation(t *testing.T) {
	if _, err := NewPlacement(&Frontera, 0, 1, Block, false); err == nil {
		t.Error("zero ranks should fail")
	}
	if _, err := NewPlacement(&Frontera, 2, 0, Block, false); err == nil {
		t.Error("zero ppn should fail")
	}
	// 16 nodes max on Frontera: 17 nodes worth of ranks must fail.
	if _, err := NewPlacement(&Frontera, 17, 1, Block, false); err == nil {
		t.Error("overflowing the cluster should fail")
	}
	// GPU placement on a GPU-less cluster must fail.
	if _, err := NewPlacement(&Frontera, 2, 1, Block, true); err == nil {
		t.Error("GPU placement on Frontera should fail")
	}
	// More GPU ranks per node than GPUs must fail.
	if _, err := NewPlacement(&Bridges2, 18, 9, Block, true); err == nil {
		t.Error("9 GPU ranks per node on 8-GPU nodes should fail")
	}
}

func TestSubscriptionPredicates(t *testing.T) {
	full, _ := NewPlacement(&Frontera, 112, 56, Block, false)
	if !full.FullySubscribed() || full.Oversubscribed() {
		t.Error("56 ppn on Frontera is exactly full subscription")
	}
	sparse, _ := NewPlacement(&Frontera, 16, 1, Block, false)
	if sparse.FullySubscribed() {
		t.Error("1 ppn is not full subscription")
	}
}

func TestLinkSymmetryProperty(t *testing.T) {
	p, err := NewPlacement(&Frontera, 112, 56, Block, false)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint8) bool {
		ra, rb := int(a)%112, int(b)%112
		return p.Link(ra, rb) == p.Link(rb, ra)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if !strings.Contains(Frontera.String(), "frontera") {
		t.Error("cluster String misses name")
	}
	if LinkInterNode.String() != "inter-node" || LinkGPUSameNode.String() != "gpu-same-node" {
		t.Error("link class strings wrong")
	}
}
