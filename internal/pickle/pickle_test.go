package pickle

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/pybuf"
)

func TestHostRoundTrip(t *testing.T) {
	costs := DefaultCosts()
	for _, tc := range []struct {
		lib   pybuf.Library
		dt    mpi.DType
		count int
	}{
		{pybuf.Bytearray, mpi.Uint8, 100},
		{pybuf.NumPy, mpi.Float64, 33},
		{pybuf.NumPy, mpi.Int32, 0},
	} {
		in, err := pybuf.New(tc.lib, nil, tc.dt, tc.count)
		if err != nil {
			t.Fatal(err)
		}
		pybuf.FillPattern(in, 7)
		frame, dCost, err := Dumps(in, costs)
		if err != nil {
			t.Fatal(err)
		}
		if dCost <= 0 {
			t.Error("dumps must cost time")
		}
		if len(frame) != FrameSize(in.NBytes()) {
			t.Errorf("frame %d bytes, want %d", len(frame), FrameSize(in.NBytes()))
		}
		out, lCost, err := Loads(frame, nil, costs)
		if err != nil {
			t.Fatal(err)
		}
		if lCost <= 0 {
			t.Error("loads must cost time")
		}
		if out.Library() != tc.lib || out.DType() != tc.dt || out.Count() != tc.count {
			t.Errorf("metadata lost: %v %v %d", out.Library(), out.DType(), out.Count())
		}
		if !pybuf.Equal(in, out) {
			t.Error("payload corrupted")
		}
	}
}

func TestGPURoundTripIncludesCopies(t *testing.T) {
	gpu := device.NewGPU(0, 0)
	costs := DefaultCosts()
	in, err := pybuf.NewGPUArray(pybuf.CuPy, gpu, mpi.Float64, 128)
	if err != nil {
		t.Fatal(err)
	}
	pybuf.FillPattern(in, 9)
	frame, dCost, err := Dumps(in, costs)
	if err != nil {
		t.Fatal(err)
	}
	// The D2H copy alpha alone exceeds the serializer's base cost.
	if float64(dCost) < 9.0 {
		t.Errorf("dumps of a GPU buffer should include the D2H copy, cost %v", dCost)
	}
	out, lCost, err := Loads(frame, gpu, costs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(lCost) < 9.0 {
		t.Errorf("loads of a GPU buffer should include the H2D copy, cost %v", lCost)
	}
	if !pybuf.Equal(in, out) {
		t.Error("GPU payload corrupted")
	}
	if _, _, err := Loads(frame, nil, costs); err == nil {
		t.Error("loading a GPU frame without a GPU must fail")
	}
}

func TestCostCliff(t *testing.T) {
	costs := DefaultCosts()
	below := DumpsCost(costs.CliffBytes, costs)
	above := DumpsCost(2*costs.CliffBytes, costs)
	linear := DumpsCost(costs.CliffBytes, costs) + // what pure linearity would give
		(DumpsCost(costs.CliffBytes, costs) - DumpsCost(0, costs))
	if above <= linear {
		t.Errorf("cost past the cliff (%v) should exceed the linear projection (%v, below=%v)",
			above, linear, below)
	}
}

func TestCostMonotoneProperty(t *testing.T) {
	costs := DefaultCosts()
	prop := func(a, b uint32) bool {
		na, nb := int(a%(8<<20)), int(b%(8<<20))
		if na > nb {
			na, nb = nb, na
		}
		return DumpsCost(na, costs) <= DumpsCost(nb, costs) &&
			LoadsCost(na, costs) <= LoadsCost(nb, costs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedFrames(t *testing.T) {
	costs := DefaultCosts()
	good, _, err := Dumps(pybuf.NewNumPy(mpi.Float64, 4), costs)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":       good[:8],
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": mutate(good, 4, 99),
		"bad library": mutate(good, 5, 200),
		"bad dtype":   mutate(good, 6, 200),
		"truncated":   good[:len(good)-8],
	}
	for name, frame := range cases {
		if _, _, err := Loads(frame, nil, costs); err == nil {
			t.Errorf("%s frame should fail to load", name)
		}
	}
	// Header accessor agrees with Dumps.
	lib, dt, count, err := Header(good)
	if err != nil {
		t.Fatal(err)
	}
	if lib != pybuf.NumPy || dt != mpi.Float64 || count != 4 {
		t.Errorf("header %v %v %d", lib, dt, count)
	}
}

func mutate(in []byte, at int, v byte) []byte {
	out := bytes.Clone(in)
	out[at] = v
	return out
}

func TestFrameSizeInverse(t *testing.T) {
	for _, n := range []int{0, 1, 4096, 1 << 20} {
		if PayloadSize(FrameSize(n)) != n {
			t.Errorf("FrameSize/PayloadSize not inverse at %d", n)
		}
	}
}
