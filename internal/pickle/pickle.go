// Package pickle implements the object-serialization path of mpi4py's
// lower-case communication methods (send, recv, allreduce, ...): a framed
// binary serializer over pybuf buffers plus a calibrated cost model. The
// paper's Figures 30-33 compare this path against direct buffers; the
// observed behaviour -- about a microsecond of extra latency for small
// messages, divergence past 64 KiB up to ~1.5 ms -- comes from the extra
// serialize/copy/deserialize work, which this package really performs.
package pickle

import (
	"encoding/binary"
	"fmt"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/pybuf"
	"repro/internal/vtime"
)

// Frame layout: magic(4) version(1) library(1) dtype(1) reserved(1)
// count(8) payload(count*dtypeSize).
const (
	headerLen = 16
	version   = 2
)

var magic = [4]byte{'O', 'P', 'K', 'L'}

// Costs is the calibrated serializer cost model.
type Costs struct {
	// PerCall is the fixed dispatch + object-graph walk cost of one dumps
	// or loads call.
	PerCall vtime.Micros
	// PerByte is the streaming cost of encoding or decoding one byte.
	PerByte float64
	// CliffBytes is the payload size past which the serialized copy stops
	// fitting the reuse pools and pays CliffPerByte extra (the >64 KiB
	// divergence of Figure 31).
	CliffBytes   int
	CliffPerByte float64
}

// DefaultCosts matches the paper's pickle measurements on Frontera.
func DefaultCosts() Costs {
	return Costs{
		PerCall:      0.45,
		PerByte:      1.05e-4,
		CliffBytes:   64 * 1024,
		CliffPerByte: 7.0e-5,
	}
}

func (c Costs) call(n int) vtime.Micros {
	t := c.PerCall + vtime.Micros(float64(n)*c.PerByte)
	if n > c.CliffBytes {
		t += vtime.Micros(float64(n-c.CliffBytes) * c.CliffPerByte)
	}
	return t
}

// Dumps serializes a buffer into a framed byte slice and returns the
// virtual cost. GPU buffers are copied device-to-host first (that is what
// pickling a CuPy/Numba array does), and that copy's cost is included.
func Dumps(b pybuf.Buffer, costs Costs) ([]byte, vtime.Micros, error) {
	n := b.NBytes()
	out := make([]byte, headerLen+n)
	copy(out[0:4], magic[:])
	out[4] = version
	out[5] = byte(b.Library())
	out[6] = byte(b.DType())
	binary.LittleEndian.PutUint64(out[8:], uint64(b.Count()))

	cost := costs.call(n)
	if db, ok := b.(pybuf.DeviceBuffer); ok {
		d2h, err := db.Alloc().CopyToHost(0, out[headerLen:])
		if err != nil {
			return nil, 0, fmt.Errorf("pickle: D2H for dumps: %w", err)
		}
		cost += d2h
	} else {
		copy(out[headerLen:], b.Raw())
	}
	return out, cost, nil
}

// Loads deserializes a frame into a fresh buffer and returns the virtual
// cost. GPU-library frames are materialised back onto gpu (host-to-device
// copy included); gpu may be nil for host libraries.
func Loads(frame []byte, gpu *device.GPU, costs Costs) (pybuf.Buffer, vtime.Micros, error) {
	lib, dt, count, err := parseHeader(frame)
	if err != nil {
		return nil, 0, err
	}
	n := count * dt.Size()
	if len(frame) < headerLen+n {
		return nil, 0, fmt.Errorf("pickle: frame %d bytes, need %d", len(frame), headerLen+n)
	}
	cost := costs.call(n)
	buf, err := pybuf.New(lib, gpu, dt, count)
	if err != nil {
		return nil, 0, fmt.Errorf("pickle: loads allocation: %w", err)
	}
	if db, ok := buf.(pybuf.DeviceBuffer); ok {
		h2d, err := db.Alloc().CopyFromHost(0, frame[headerLen:headerLen+n])
		if err != nil {
			return nil, 0, fmt.Errorf("pickle: H2D for loads: %w", err)
		}
		cost += h2d
	} else {
		copy(buf.Raw(), frame[headerLen:headerLen+n])
	}
	return buf, cost, nil
}

// FrameSize returns the wire size of a pickled buffer of n payload bytes.
func FrameSize(n int) int { return headerLen + n }

// PayloadSize inverts FrameSize for a received frame length.
func PayloadSize(frameLen int) int { return frameLen - headerLen }

// DumpsCost prices Dumps without materialising a frame; used on the
// timing-only paths of the huge-scale experiments.
func DumpsCost(n int, costs Costs) vtime.Micros { return costs.call(n) }

// LoadsCost prices Loads without materialising a buffer.
func LoadsCost(n int, costs Costs) vtime.Micros { return costs.call(n) }

func parseHeader(frame []byte) (pybuf.Library, mpi.DType, int, error) {
	if len(frame) < headerLen {
		return 0, 0, 0, fmt.Errorf("pickle: frame too short (%d bytes)", len(frame))
	}
	if [4]byte(frame[0:4]) != magic {
		return 0, 0, 0, fmt.Errorf("pickle: bad magic %q", frame[0:4])
	}
	if frame[4] != version {
		return 0, 0, 0, fmt.Errorf("pickle: unsupported version %d", frame[4])
	}
	lib := pybuf.Library(frame[5])
	if lib < pybuf.Bytearray || lib > pybuf.Numba {
		return 0, 0, 0, fmt.Errorf("pickle: bad library byte %d", frame[5])
	}
	dt := mpi.DType(frame[6])
	if dt < mpi.Uint8 || dt > mpi.Float64 {
		return 0, 0, 0, fmt.Errorf("pickle: bad dtype byte %d", frame[6])
	}
	count := int(binary.LittleEndian.Uint64(frame[8:]))
	if count < 0 {
		return 0, 0, 0, fmt.Errorf("pickle: negative count")
	}
	return lib, dt, count, nil
}

// Header exposes the parsed frame header, for tests and tools.
func Header(frame []byte) (lib pybuf.Library, dt mpi.DType, count int, err error) {
	return parseHeader(frame)
}
