package netmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func allModels(t *testing.T) []*Model {
	t.Helper()
	var out []*Model
	for _, name := range topology.Names() {
		cl, err := topology.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, impl := range []Impl{MVAPICH2, IntelMPI} {
			m, err := New(cl, impl)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, impl, err)
			}
			out = append(out, m)
		}
	}
	return out
}

func TestParseImpl(t *testing.T) {
	for _, s := range []string{"mvapich2", "mv2", "mvapich2-gdr"} {
		if impl, err := ParseImpl(s); err != nil || impl != MVAPICH2 {
			t.Errorf("ParseImpl(%q) = %v, %v", s, impl, err)
		}
	}
	for _, s := range []string{"intelmpi", "impi", "intel"} {
		if impl, err := ParseImpl(s); err != nil || impl != IntelMPI {
			t.Errorf("ParseImpl(%q) = %v, %v", s, impl, err)
		}
	}
	if _, err := ParseImpl("openmpi"); err == nil {
		t.Error("unknown impl should fail")
	}
}

func TestAllClustersCalibrated(t *testing.T) {
	for _, m := range allModels(t) {
		for _, link := range []topology.LinkClass{
			topology.LinkSelf, topology.LinkSameSocket,
			topology.LinkSameNode, topology.LinkInterNode,
		} {
			p := m.Params(link)
			if p.Alpha <= 0 || p.BetaUsPerByte <= 0 || p.EagerLimit <= 0 {
				t.Errorf("%s %v: uncalibrated params %+v", m, link, p)
			}
		}
		if m.ComputeGammaUsPerByte <= 0 {
			t.Errorf("%s: no compute gamma", m)
		}
	}
}

func TestBridges2HasGPULinks(t *testing.T) {
	m := MustNew(&topology.Bridges2, MVAPICH2)
	same := m.Params(topology.LinkGPUSameNode)
	inter := m.Params(topology.LinkGPUInterNode)
	if same.Alpha >= inter.Alpha {
		t.Error("NVLink latency should beat GPUDirect RDMA")
	}
	if same.BetaUsPerByte >= inter.BetaUsPerByte {
		t.Error("NVLink bandwidth should beat the fabric")
	}
}

func TestCostMonotoneInSize(t *testing.T) {
	m := MustNew(&topology.Frontera, MVAPICH2)
	for _, link := range []topology.LinkClass{topology.LinkSameSocket, topology.LinkInterNode} {
		prev := m.PtPt(link, 0, false, false).Total()
		for n := 1; n <= 1<<22; n *= 4 {
			cur := m.PtPt(link, n, false, false).Total()
			if cur < prev {
				t.Errorf("%v: cost not monotone at %d bytes (%v < %v)", link, n, cur, prev)
			}
			prev = cur
		}
	}
}

func TestPyModeAlwaysCostsMore(t *testing.T) {
	prop := func(nRaw uint32, linkRaw uint8) bool {
		m := MustNew(&topology.Frontera, MVAPICH2)
		n := int(nRaw % (4 << 20))
		links := []topology.LinkClass{
			topology.LinkSameSocket, topology.LinkSameNode, topology.LinkInterNode,
		}
		link := links[int(linkRaw)%len(links)]
		c := m.PtPt(link, n, false, false).Total()
		py := m.PtPt(link, n, true, false).Total() + m.PyOpLock(link, n, false, false)
		return py > c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntelMPICalibration(t *testing.T) {
	mv := MustNew(&topology.Frontera, MVAPICH2)
	impi := MustNew(&topology.Frontera, IntelMPI)
	l := topology.LinkInterNode
	if impi.Params(l).Alpha <= mv.Params(l).Alpha {
		t.Error("Intel MPI should have higher inter-node latency")
	}
	if impi.Params(l).BetaUsPerByte <= mv.Params(l).BetaUsPerByte {
		t.Error("Intel MPI should have lower inter-node bandwidth")
	}
	// Intra-node shared memory is implementation-agnostic here.
	if impi.Params(topology.LinkSameSocket) != mv.Params(topology.LinkSameSocket) {
		t.Error("intra-node params should match across implementations")
	}
}

func TestEagerRendezvousSwitch(t *testing.T) {
	m := MustNew(&topology.Frontera, MVAPICH2)
	l := topology.LinkInterNode
	limit := m.Params(l).EagerLimit
	if !m.Eager(l, limit-1) || m.Eager(l, limit) {
		t.Error("eager predicate wrong at the limit")
	}
	below := m.PtPt(l, limit-1, false, false)
	above := m.PtPt(l, limit, false, false)
	if above.Wire-below.Wire < m.Params(l).Alpha {
		t.Error("rendezvous handshake should add at least one alpha")
	}
}

func TestSegments(t *testing.T) {
	m := MustNew(&topology.Frontera, MVAPICH2)
	l := topology.LinkInterNode
	if m.Segments(l, 1) != 1 {
		t.Error("1 byte is 1 segment")
	}
	if m.Segments(l, 64*1024) != 1 {
		t.Error("exactly one segment at the segment size")
	}
	if got := m.Segments(l, 64*1024+1); got != 2 {
		t.Errorf("segments = %d, want 2", got)
	}
	if got := m.Segments(l, 1<<20); got != 16 {
		t.Errorf("segments = %d, want 16", got)
	}
}

func TestPyOpLockInternalRendezvous(t *testing.T) {
	m := MustNew(&topology.Frontera, MVAPICH2)
	l := topology.LinkInterNode
	small := m.PyOpLock(l, 8, true, false)
	if small != m.Py.LockBase {
		t.Errorf("small internal lock = %v, want base %v", small, m.Py.LockBase)
	}
	big := m.PyOpLock(l, 1<<20, true, false)
	if big != m.Py.LockBase+m.Py.LockRdv {
		t.Errorf("large internal lock = %v", big)
	}
	user := m.PyOpLock(l, 1<<20, false, false)
	if user != m.Py.LockBase {
		t.Errorf("user sends must not pay the contended lock, got %v", user)
	}
}

func TestFullSubscriptionMultipliers(t *testing.T) {
	m := MustNew(&topology.Frontera, MVAPICH2)
	l := topology.LinkSameSocket
	n := 64 * 1024 // rendezvous intra-node
	normal := m.PtPt(l, n, true, false).Wire
	contended := m.PtPt(l, n, true, true).Wire
	if contended <= normal {
		t.Error("full subscription should degrade rendezvous shm wire time")
	}
	// Eager messages do not pay the beta multiplier.
	ne, ce := m.PtPt(l, 1024, true, false).Wire, m.PtPt(l, 1024, true, true).Wire
	if ne != ce {
		t.Errorf("eager wire changed under full subscription: %v vs %v", ne, ce)
	}
	if m.Compute(1024, true, true) <= m.Compute(1024, true, false) {
		t.Error("full subscription should slow py-mode reductions")
	}
	if m.Compute(1024, false, true) != m.Compute(1024, false, false) {
		t.Error("C-mode compute must be unaffected by the py contention model")
	}
}

func TestPyCallExtraOnlyOnBridges2(t *testing.T) {
	frontera := MustNew(&topology.Frontera, MVAPICH2)
	if frontera.PyCallExtra(1<<20) != 0 {
		t.Error("CPU clusters must not charge the GDR pipeline cost")
	}
	b2 := MustNew(&topology.Bridges2, MVAPICH2)
	if b2.PyCallExtra(4) != 0 {
		t.Error("small buffers must not pay the pipeline cost")
	}
	if b2.PyCallExtra(64*1024) != b2.Py.RdvCallUs {
		t.Error("rendezvous-sized buffers pay the pipeline cost on Bridges-2")
	}
}

func TestUnknownClusterOrImpl(t *testing.T) {
	other := topology.Cluster{Name: "unknown"}
	if _, err := New(&other, MVAPICH2); err == nil {
		t.Error("uncalibrated cluster should fail")
	}
	if _, err := New(&topology.Frontera, Impl("openmpi")); err == nil {
		t.Error("unknown impl should fail")
	}
}

func TestMemcpyCost(t *testing.T) {
	m := MustNew(&topology.Frontera, MVAPICH2)
	if m.MemcpyCost(0) <= 0 {
		t.Error("memcpy has a fixed cost")
	}
	if m.MemcpyCost(1<<20) <= m.MemcpyCost(1<<10) {
		t.Error("memcpy cost grows with size")
	}
}
