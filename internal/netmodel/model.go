// Package netmodel prices every communication and compute event of the
// simulated MPI runtime. It implements a Hockney-style alpha-beta cost model
// per link class with an eager/rendezvous protocol switch, per-cluster and
// per-MPI-implementation calibration, a gamma model for reduction compute,
// and the Python-binding penalty model (THREAD_MULTIPLE per-operation
// locking, shared-memory path degradation, and full-subscription contention)
// that the paper identifies as the sources of mpi4py overhead.
//
// All constants live in calibration.go and are derived from the numbers the
// paper reports; see DESIGN.md section 1 for the substitution argument.
package netmodel

import (
	"fmt"
	"strings"

	"repro/internal/topology"
	"repro/internal/vtime"
)

// Impl identifies the MPI implementation being modelled. The GPU-aware
// MVAPICH2-GDR used on Bridges-2 is selected implicitly by pricing GPU link
// classes under MVAPICH2.
type Impl string

// Supported implementations.
const (
	MVAPICH2 Impl = "mvapich2"
	IntelMPI Impl = "intelmpi"
)

// ParseImpl validates an implementation name.
func ParseImpl(s string) (Impl, error) {
	switch strings.ToLower(s) {
	case string(MVAPICH2), "mvapich2-gdr", "mv2":
		return MVAPICH2, nil
	case string(IntelMPI), "impi", "intel":
		return IntelMPI, nil
	default:
		return "", fmt.Errorf("netmodel: unknown MPI implementation %q", s)
	}
}

// LinkParams is the alpha-beta description of one link class.
type LinkParams struct {
	// Alpha is the zero-byte one-way latency contribution of the wire.
	Alpha vtime.Micros
	// BetaUsPerByte is the inverse asymptotic bandwidth in us per byte.
	BetaUsPerByte float64
	// EagerLimit is the largest message sent eagerly; messages at or above
	// it use the rendezvous protocol with an RTS/CTS handshake.
	EagerLimit int
	// SendOverhead / RecvOverhead are the CPU-side costs of initiating and
	// completing a transfer (the o of LogP).
	SendOverhead vtime.Micros
	RecvOverhead vtime.Micros
	// SegmentBytes is the pipeline segment size of the rendezvous path.
	SegmentBytes int
}

// PyParams models the cost of the Python binding layer beyond buffer
// staging: the paper attributes them to mpi4py initializing MPI with
// THREAD_MULTIPLE (OMB uses THREAD_SINGLE), which makes the native library
// take a lock per operation and per pipeline segment, degrades the
// shared-memory path, and under full subscription contends with the
// benchmark processes for cores.
type PyParams struct {
	// LockBase is charged once per operation issued in py mode.
	LockBase vtime.Micros
	// LockRdv is charged additionally per *collective-internal* rendezvous
	// operation: collectives keep several channels active per step, so the
	// THREAD_MULTIPLE progress lock is contended there, while a single
	// blocking user send owns the progress engine (which is why the paper's
	// large-message collective overheads dwarf its point-to-point ones).
	LockRdv vtime.Micros
	// RdvCallUs is charged once per binding-layer call whose message is at
	// least RdvCallMinBytes: the GDR pipeline (re)registration cost behind
	// the flat +4 us the paper's GPU large-message curves show.
	RdvCallUs       vtime.Micros
	RdvCallMinBytes int
	// ShmPerByte is the extra per-byte cost on intra-node links.
	ShmPerByte float64
	// InterPerByte is the extra per-byte cost on the fabric.
	InterPerByte float64
	// FullSubLockMult multiplies lock costs when every core hosts a rank.
	FullSubLockMult float64
	// FullSubBetaMult multiplies intra-node per-byte wire cost of
	// *rendezvous* transfers under full subscription (progress threads
	// oversubscribe the cores and every segment bounces through them).
	FullSubBetaMult float64
	// FullSubComputeMult multiplies reduction compute cost likewise.
	FullSubComputeMult float64
}

// Model prices events for one (cluster, MPI implementation) pair.
type Model struct {
	Cluster *topology.Cluster
	Impl    Impl
	Links   map[topology.LinkClass]LinkParams
	// ComputeGammaUsPerByte is the local reduction cost (read+op+write).
	ComputeGammaUsPerByte float64
	Py                    PyParams
}

// New builds the calibrated model for a cluster and MPI implementation.
func New(cluster *topology.Cluster, impl Impl) (*Model, error) {
	m, err := calibrated(cluster, impl)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// MustNew is New that panics; for tests and examples with known-good inputs.
func MustNew(cluster *topology.Cluster, impl Impl) *Model {
	m, err := New(cluster, impl)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the link parameters for a class, falling back to the
// inter-node class for unknown ones (which would be a calibration bug).
func (m *Model) Params(link topology.LinkClass) LinkParams {
	if p, ok := m.Links[link]; ok {
		return p
	}
	return m.Links[topology.LinkInterNode]
}

// Eager reports whether an n-byte message on link uses the eager protocol.
func (m *Model) Eager(link topology.LinkClass, n int) bool {
	return n < m.Params(link).EagerLimit
}

// Segments returns the number of pipeline segments of an n-byte rendezvous
// transfer (at least 1).
func (m *Model) Segments(link topology.LinkClass, n int) int {
	p := m.Params(link)
	if p.SegmentBytes <= 0 || n <= p.SegmentBytes {
		return 1
	}
	return (n + p.SegmentBytes - 1) / p.SegmentBytes
}

// PtPtCost is the priced breakdown of a single message.
type PtPtCost struct {
	// SendOverhead is charged on the sender before the wire.
	SendOverhead vtime.Micros
	// Wire is the time from injection to availability at the receiver.
	Wire vtime.Micros
	// Transmit is the wire-occupancy (serialization) time: back-to-back
	// messages to the same peer cannot inject faster than this, which is
	// what bounds the windowed bandwidth tests to the link rate.
	Transmit vtime.Micros
	// RecvOverhead is charged on the receiver after arrival.
	RecvOverhead vtime.Micros
	// Eager reports the protocol chosen.
	Eager bool
}

// Total is the end-to-end cost when sender and receiver are both ready.
func (c PtPtCost) Total() vtime.Micros { return c.SendOverhead + c.Wire + c.RecvOverhead }

// PtPt prices an n-byte message on link. py selects the Python-binding
// penalty model (THREAD_MULTIPLE), fullSub additionally applies the
// full-subscription contention model.
func (m *Model) PtPt(link topology.LinkClass, n int, py, fullSub bool) PtPtCost {
	p := m.Params(link)
	eager := n < p.EagerLimit
	beta := p.BetaUsPerByte
	if py {
		switch link {
		case topology.LinkSameSocket, topology.LinkSameNode, topology.LinkSelf:
			beta += m.Py.ShmPerByte
			if fullSub && !eager && m.Py.FullSubBetaMult > 1 {
				beta *= m.Py.FullSubBetaMult
			}
		default:
			beta += m.Py.InterPerByte
		}
	}
	// Wire occupancy includes the serialization term plus the
	// non-pipelinable half of the per-message wire setup: back-to-back
	// windowed sends hide part of the latency term but not all of it,
	// which keeps the bandwidth curve's mid-size slope realistic.
	transmit := vtime.Micros(0.5*float64(p.Alpha) + float64(n)*beta)
	wire := p.Alpha + vtime.Micros(float64(n)*beta)
	if !eager {
		// RTS/CTS handshake: one extra round of control traffic.
		wire += 2 * p.Alpha
	}
	return PtPtCost{
		SendOverhead: p.SendOverhead,
		Wire:         wire,
		Transmit:     transmit,
		RecvOverhead: p.RecvOverhead,
		Eager:        eager,
	}
}

// PyOpLock is the per-operation THREAD_MULTIPLE lock cost charged at the
// sender of every message issued while the binding layer is active.
// internal marks collective-internal traffic, which additionally pays the
// contended rendezvous lock (see PyParams.LockRdv).
func (m *Model) PyOpLock(link topology.LinkClass, n int, internal, fullSub bool) vtime.Micros {
	lock := m.Py.LockBase
	if internal && n >= m.Params(link).EagerLimit {
		lock += m.Py.LockRdv
	}
	if fullSub && m.Py.FullSubLockMult > 1 {
		lock *= vtime.Micros(m.Py.FullSubLockMult)
	}
	return lock
}

// PyCallExtra is the once-per-binding-call cost for n-byte buffers (the GDR
// pipeline setup on GPU systems); zero on clusters that do not model it.
func (m *Model) PyCallExtra(n int) vtime.Micros {
	if m.Py.RdvCallMinBytes > 0 && n >= m.Py.RdvCallMinBytes {
		return m.Py.RdvCallUs
	}
	return 0
}

// Compute prices an n-byte local reduction (one operand pair per element,
// read+op+write). Under full subscription in py mode the progress threads
// contend with compute, per the paper's Figure 15 discussion.
func (m *Model) Compute(n int, py, fullSub bool) vtime.Micros {
	g := m.ComputeGammaUsPerByte
	if py && fullSub && m.Py.FullSubComputeMult > 1 {
		g *= m.Py.FullSubComputeMult
	}
	return vtime.Micros(float64(n) * g)
}

// MemcpyCost prices a local host memory copy of n bytes (used by pickle and
// by buffer staging when payloads are materialised).
func (m *Model) MemcpyCost(n int) vtime.Micros {
	// ~12 GB/s effective single-core copy bandwidth plus a small fixed cost.
	return 0.05 + vtime.Micros(float64(n)*8.3e-5)
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("netmodel(%s, %s)", m.Cluster.Name, m.Impl)
}
