package netmodel

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/vtime"
)

// This file holds every calibrated constant of the cost model. Calibration
// sources, per DESIGN.md:
//
//   - C-baseline alphas/betas are set to typical OMB v5.8 numbers for the
//     fabrics the paper lists (IB HDR-100 on Frontera, Omni-Path on
//     Stampede2, IB EDR on RI2, HDR-200 + V100 on Bridges-2).
//   - Python-penalty constants are fitted to the paper's reported average
//     overheads (Figures 2-33, Table III). EXPERIMENTS.md records the
//     paper-vs-measured deltas obtained with these values.
//
// Bandwidth conversion: beta [us/B] = 1e-3 / bandwidth [GB/s].

const (
	kib = 1024
	mib = 1024 * kib
)

func betaFromGBs(gbs float64) float64 { return 1e-3 / gbs }

// cpuLinks builds the link classes of a CPU cluster.
//   - sameSocketAlpha / sameNodeAlpha: zero-byte shared-memory latencies.
//   - shmGBs: intra-node copy bandwidth.
//   - interAlpha / interGBs: fabric latency and bandwidth.
func cpuLinks(sameSocketAlpha, sameNodeAlpha, shmGBs, interAlpha, interGBs float64) map[topology.LinkClass]LinkParams {
	return map[topology.LinkClass]LinkParams{
		topology.LinkSelf: {
			Alpha: 0.05, BetaUsPerByte: betaFromGBs(20), EagerLimit: 1 << 30,
			SendOverhead: 0.01, RecvOverhead: 0.01, SegmentBytes: 64 * kib,
		},
		topology.LinkSameSocket: {
			Alpha: vtime.Micros(sameSocketAlpha), BetaUsPerByte: betaFromGBs(shmGBs),
			EagerLimit: 16 * kib, SendOverhead: 0.03, RecvOverhead: 0.03, SegmentBytes: 64 * kib,
		},
		topology.LinkSameNode: {
			Alpha: vtime.Micros(sameNodeAlpha), BetaUsPerByte: betaFromGBs(shmGBs * 0.85),
			EagerLimit: 16 * kib, SendOverhead: 0.03, RecvOverhead: 0.03, SegmentBytes: 64 * kib,
		},
		topology.LinkInterNode: {
			// The fabric's per-message CPU cost (0.30 us) bounds the
			// windowed bandwidth of small messages, as on real NICs; the
			// one-way latency is SendOverhead + Alpha + RecvOverhead.
			Alpha: vtime.Micros(interAlpha - 0.60), BetaUsPerByte: betaFromGBs(interGBs),
			EagerLimit: 16 * kib, SendOverhead: 0.30, RecvOverhead: 0.30, SegmentBytes: 64 * kib,
		},
	}
}

// defaultPy is the Python-binding penalty fit shared by the CPU clusters;
// the per-cluster shared-memory degradation differs (Figures 3, 5, 7).
func defaultPy(shmPerByte float64) PyParams {
	return PyParams{
		LockBase:           0.16,
		LockRdv:            1.8,
		ShmPerByte:         shmPerByte,
		InterPerByte:       6.5e-7,
		FullSubLockMult:    3.5,
		FullSubBetaMult:    14.0,
		FullSubComputeMult: 2.2,
	}
}

func fronteraModel(cluster *topology.Cluster, impl Impl) *Model {
	// MVAPICH2 2.3.6 on IB HDR-100: ~1.05 us inter-node small-message
	// latency, ~12.4 GB/s peak; shared memory ~0.25 us, ~12 GB/s.
	interAlpha, interGBs := 0.95, 12.4
	if impl == IntelMPI {
		// Figures 26-29: Intel MPI trails MVAPICH2 by 0.36 us latency and
		// ~856 MB/s bandwidth on average (over all message sizes).
		interAlpha += 0.30
		interGBs -= 0.55
	}
	m := &Model{
		Cluster:               cluster,
		Impl:                  impl,
		Links:                 cpuLinks(0.22, 0.30, 12.0, interAlpha, interGBs),
		ComputeGammaUsPerByte: 1.5e-4,
		Py:                    defaultPy(6.4e-6),
	}
	if impl == IntelMPI {
		// A slightly heavier per-message send path widens the windowed
		// bandwidth gap at small sizes (Figure 28).
		lp := m.Links[topology.LinkInterNode]
		lp.SendOverhead += 0.06
		m.Links[topology.LinkInterNode] = lp
	}
	return m
}

func stampede2Model(cluster *topology.Cluster, impl Impl) *Model {
	// Omni-Path PSM2: similar small-message latency, slightly lower peak
	// bandwidth; its shared-memory path degrades more under THREAD_MULTIPLE
	// (Figure 5's 4.13 us average large-message overhead).
	interAlpha, interGBs := 1.05, 11.2
	if impl == IntelMPI {
		interAlpha += 0.36
		interGBs -= 0.86
	}
	return &Model{
		Cluster:               cluster,
		Impl:                  impl,
		Links:                 cpuLinks(0.24, 0.33, 11.0, interAlpha, interGBs),
		ComputeGammaUsPerByte: 1.5e-4,
		Py:                    defaultPy(1.28e-5),
	}
}

func ri2Model(cluster *topology.Cluster, impl Impl) *Model {
	// IB EDR via SB7790/SB7800: ~1.1 us, ~11.5 GB/s; mildest shared-memory
	// degradation of the three CPU systems (Figure 7's 1.76 us average).
	interAlpha, interGBs := 1.10, 11.5
	if impl == IntelMPI {
		interAlpha += 0.36
		interGBs -= 0.86
	}
	return &Model{
		Cluster:               cluster,
		Impl:                  impl,
		Links:                 cpuLinks(0.26, 0.36, 10.5, interAlpha, interGBs),
		ComputeGammaUsPerByte: 1.7e-4,
		Py:                    defaultPy(4.65e-6),
	}
}

func bridges2Model(cluster *topology.Cluster, impl Impl) *Model {
	// MVAPICH2-GDR 2.3.6 + CUDA 11.2 on 8 x V100 SXM2 per node, dual
	// ConnectX-6 HDR: GPU-GPU same node over NVLink, inter node over
	// GPUDirect RDMA.
	links := cpuLinks(0.25, 0.33, 11.5, 1.00, 12.0)
	links[topology.LinkGPUSameNode] = LinkParams{
		Alpha: 2.30, BetaUsPerByte: betaFromGBs(22.0), EagerLimit: 8 * kib,
		SendOverhead: 0.25, RecvOverhead: 0.25, SegmentBytes: 128 * kib,
	}
	links[topology.LinkGPUInterNode] = LinkParams{
		Alpha: 3.80, BetaUsPerByte: betaFromGBs(10.2), EagerLimit: 8 * kib,
		SendOverhead: 0.30, RecvOverhead: 0.30, SegmentBytes: 128 * kib,
	}
	py := defaultPy(5.0e-6)
	// The GDR path pays little contended locking per step but a flat
	// pipeline (re)setup cost once per binding call on rendezvous-sized
	// buffers -- the paper's GPU large-message curves sit a near-constant
	// few microseconds above the small-message ones.
	py.LockRdv = 0.1
	py.RdvCallUs = 4.0
	py.RdvCallMinBytes = 8 * kib
	return &Model{
		Cluster:               cluster,
		Impl:                  impl,
		Links:                 links,
		ComputeGammaUsPerByte: 4.0e-5, // reductions run on the GPU
		Py:                    py,
	}
}

func calibrated(cluster *topology.Cluster, impl Impl) (*Model, error) {
	switch impl {
	case MVAPICH2, IntelMPI:
	default:
		return nil, fmt.Errorf("netmodel: unknown implementation %q", impl)
	}
	switch cluster.Name {
	case "frontera":
		return fronteraModel(cluster, impl), nil
	case "stampede2":
		return stampede2Model(cluster, impl), nil
	case "ri2":
		return ri2Model(cluster, impl), nil
	case "bridges2":
		return bridges2Model(cluster, impl), nil
	default:
		return nil, fmt.Errorf("netmodel: no calibration for cluster %q", cluster.Name)
	}
}
