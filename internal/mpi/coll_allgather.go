package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// Allgather algorithm-selection thresholds, mirroring MVAPICH2: recursive
// doubling for power-of-two groups with small totals, Bruck for small totals
// on non-power-of-two groups, ring for large totals.
const (
	allgatherRDMaxTotal    = 256 * 1024
	allgatherBruckMaxTotal = 128 * 1024
)

func init() {
	registerAlgorithm(Algorithm{
		Name:       "recursive_doubling",
		Collective: CollAllgather,
		Summary:    "recursive doubling (power-of-two groups, small totals)",
		Applicable: func(s Selection) bool {
			return collective.IsPof2(s.CommSize) && s.Total() <= s.Tuning.AllgatherRDMaxTotal
		},
		Feasible: func(s Selection) bool { return collective.IsPof2(s.CommSize) },
		build:    buildAllgatherRecDoubling,
	})
	registerAlgorithm(Algorithm{
		Name:       "bruck",
		Collective: CollAllgather,
		Summary:    "Bruck log-round accumulation (small totals, any group)",
		Applicable: func(s Selection) bool { return s.Total() <= s.Tuning.AllgatherBruckMaxTotal },
		build:      buildAllgatherBruck,
	})
	registerAlgorithm(Algorithm{
		Name:       "ring",
		Collective: CollAllgather,
		Summary:    "neighbour ring (large totals)",
		Applicable: func(Selection) bool { return true },
		build:      buildAllgatherRing,
	})
}

// Allgather collects len(sbuf) bytes from every rank into rbuf on every
// rank, ordered by rank; len(rbuf) must be p*len(sbuf).
func (c *Comm) Allgather(sbuf, rbuf []byte) error {
	return c.AllgatherN(sbuf, len(sbuf), rbuf)
}

// AllgatherN is Allgather with an explicit per-rank byte count; buffers may
// be nil in timing-only worlds.
func (c *Comm) AllgatherN(sbuf []byte, n int, rbuf []byte) error {
	s, err := c.allgatherStart(sbuf, n, rbuf)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Allgather: %w", err)
	}
	return nil
}

// Iallgather starts a nonblocking Allgather.
func (c *Comm) Iallgather(sbuf, rbuf []byte) (*Request, error) {
	return c.IallgatherN(sbuf, len(sbuf), rbuf)
}

// IallgatherN is Iallgather with an explicit per-rank byte count.
func (c *Comm) IallgatherN(sbuf []byte, n int, rbuf []byte) (*Request, error) {
	s, err := c.allgatherStart(sbuf, n, rbuf)
	if err != nil {
		return nil, err
	}
	return c.collRequest(s)
}

func (c *Comm) allgatherStart(sbuf []byte, n int, rbuf []byte) (*collSched, error) {
	p := len(c.group)
	if rbuf != nil && len(rbuf) < p*n {
		return nil, fmt.Errorf("mpi: Allgather recv buffer %d < %d", len(rbuf), p*n)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[c.rank*n:(c.rank+1)*n], sbuf[:n])
	}
	if p == 1 {
		return nil, nil
	}
	s, err := c.startColl(CollAllgather, Selection{CommSize: p, Bytes: n},
		collCall{rbuf: rbuf, n: n})
	if err != nil {
		return nil, fmt.Errorf("mpi: Allgather: %w", err)
	}
	return s, nil
}

// buildAllgatherRecDoubling: at round k (mask 2^k) each rank exchanges its
// accumulated 2^k blocks with rank^mask; blocks stay naturally placed
// because partner windows are aligned.
func buildAllgatherRecDoubling(c *Comm, call collCall, s *collSched) error {
	rbuf, n := call.rbuf, call.n
	p := len(c.group)
	for mask := 1; mask < p; mask *= 2 {
		peer := c.rank ^ mask
		myLo := (c.rank / mask) * mask // first block of my current window
		peerLo := (peer / mask) * mask
		sLo, sHi := myLo*n, (myLo+mask)*n
		rLo, rHi := peerLo*n, (peerLo+mask)*n
		s.exchange(peer, sliceOrNil(rbuf, sLo, sHi), sHi-sLo,
			peer, sliceOrNil(rbuf, rLo, rHi), rHi-rLo)
	}
	return nil
}

// buildAllgatherBruck: blocks are accumulated in a rotated staging buffer
// starting from the local block, then rotated into place at the end.
func buildAllgatherBruck(c *Comm, call collCall, s *collSched) error {
	rbuf, n := call.rbuf, call.n
	p := len(c.group)
	var stage []byte
	if rbuf != nil {
		stage = s.scratch(p * n)
		copy(stage[:n], rbuf[c.rank*n:(c.rank+1)*n])
	}
	have := 1
	for _, st := range c.bruckSchedule(p) {
		cnt := st.BlockCount
		if cnt > have {
			cnt = have // final partial round sends what exists
		}
		// Bruck sends the first cnt accumulated blocks to rank-k and
		// receives cnt blocks appended after the current ones from rank+k.
		s.exchange(st.SendTo, sliceOrNil(stage, 0, cnt*n), cnt*n,
			st.RecvFrom, sliceOrNil(stage, have*n, (have+cnt)*n), cnt*n)
		have += cnt
	}
	if rbuf != nil {
		// stage[i] holds the block of rank (c.rank + i) % p.
		for i := 0; i < p; i++ {
			dst := ((c.rank + i) % p) * n
			s.copyStep(rbuf[dst:dst+n], stage[i*n:(i+1)*n], n)
		}
	}
	return nil
}

// buildAllgatherRing: p-1 rounds, each forwarding the block received in the
// previous round to the next neighbour.
func buildAllgatherRing(c *Comm, call collCall, s *collSched) error {
	rbuf, n := call.rbuf, call.n
	p := len(c.group)
	sendTo, recvFrom := collective.RingNeighbors(c.rank, p)
	have := c.rank
	for step := 0; step < p-1; step++ {
		want := (have - 1 + p) % p
		sLo, sHi := have*n, (have+1)*n
		rLo, rHi := want*n, (want+1)*n
		s.exchange(sendTo, sliceOrNil(rbuf, sLo, sHi), sHi-sLo,
			recvFrom, sliceOrNil(rbuf, rLo, rHi), rHi-rLo)
		have = want
	}
	return nil
}
