package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// Allgather algorithm-selection thresholds, mirroring MVAPICH2: recursive
// doubling for power-of-two groups with small totals, Bruck for small totals
// on non-power-of-two groups, ring for large totals.
const (
	allgatherRDMaxTotal    = 256 * 1024
	allgatherBruckMaxTotal = 128 * 1024
)

func init() {
	registerAlgorithm(Algorithm{
		Name:       "recursive_doubling",
		Collective: CollAllgather,
		Summary:    "recursive doubling (power-of-two groups, small totals)",
		Applicable: func(s Selection) bool {
			return collective.IsPof2(s.CommSize) && s.Total() <= s.Tuning.AllgatherRDMaxTotal
		},
		Feasible: func(s Selection) bool { return collective.IsPof2(s.CommSize) },
		run: func(c *Comm, call collCall) error {
			return c.allgatherRecDoubling(call.rbuf, call.n)
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "bruck",
		Collective: CollAllgather,
		Summary:    "Bruck log-round accumulation (small totals, any group)",
		Applicable: func(s Selection) bool { return s.Total() <= s.Tuning.AllgatherBruckMaxTotal },
		run: func(c *Comm, call collCall) error {
			return c.allgatherBruck(call.rbuf, call.n)
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "ring",
		Collective: CollAllgather,
		Summary:    "neighbour ring (large totals)",
		Applicable: func(Selection) bool { return true },
		run: func(c *Comm, call collCall) error {
			return c.allgatherRing(call.rbuf, call.n)
		},
	})
}

// Allgather collects len(sbuf) bytes from every rank into rbuf on every
// rank, ordered by rank; len(rbuf) must be p*len(sbuf).
func (c *Comm) Allgather(sbuf, rbuf []byte) error {
	return c.AllgatherN(sbuf, len(sbuf), rbuf)
}

// AllgatherN is Allgather with an explicit per-rank byte count; buffers may
// be nil in timing-only worlds.
func (c *Comm) AllgatherN(sbuf []byte, n int, rbuf []byte) error {
	p := len(c.group)
	if rbuf != nil && len(rbuf) < p*n {
		return fmt.Errorf("mpi: Allgather recv buffer %d < %d", len(rbuf), p*n)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[c.rank*n:(c.rank+1)*n], sbuf[:n])
	}
	if p == 1 {
		return nil
	}
	alg, err := c.algorithm(CollAllgather, Selection{CommSize: p, Bytes: n})
	if err != nil {
		return fmt.Errorf("mpi: Allgather: %w", err)
	}
	if err := alg.run(c, collCall{rbuf: rbuf, n: n}); err != nil {
		return fmt.Errorf("mpi: Allgather: %w", err)
	}
	return nil
}

// allgatherRecDoubling: at round k (mask 2^k) each rank exchanges its
// accumulated 2^k blocks with rank^mask; blocks stay naturally placed
// because partner windows are aligned.
func (c *Comm) allgatherRecDoubling(rbuf []byte, n int) error {
	p := len(c.group)
	for mask := 1; mask < p; mask *= 2 {
		peer := c.rank ^ mask
		myLo := (c.rank / mask) * mask // first block of my current window
		peerLo := (peer / mask) * mask
		sLo, sHi := myLo*n, (myLo+mask)*n
		rLo, rHi := peerLo*n, (peerLo+mask)*n
		if _, err := c.sendrecvRaw(
			sliceOrNil(rbuf, sLo, sHi), sHi-sLo, peer, tagAllgather,
			sliceOrNil(rbuf, rLo, rHi), rHi-rLo, peer, tagAllgather,
		); err != nil {
			return err
		}
	}
	return nil
}

// allgatherBruck: blocks are accumulated in a rotated staging buffer
// starting from the local block, then rotated into place at the end.
func (c *Comm) allgatherBruck(rbuf []byte, n int) error {
	p := len(c.group)
	var stage []byte
	if rbuf != nil {
		stage = c.scratch(p * n)
		copy(stage[:n], rbuf[c.rank*n:(c.rank+1)*n])
		defer c.release(stage)
	}
	have := 1
	for _, s := range c.bruckSchedule(p) {
		cnt := s.BlockCount
		if cnt > have {
			cnt = have // final partial round sends what exists
		}
		// Bruck sends the first cnt accumulated blocks to rank-k and
		// receives cnt blocks appended after the current ones from rank+k.
		if _, err := c.sendrecvRaw(
			sliceOrNil(stage, 0, cnt*n), cnt*n, s.SendTo, tagAllgather,
			sliceOrNil(stage, have*n, (have+cnt)*n), cnt*n, s.RecvFrom, tagAllgather,
		); err != nil {
			return err
		}
		have += cnt
	}
	if rbuf != nil {
		// stage[i] holds the block of rank (c.rank + i) % p.
		for i := 0; i < p; i++ {
			src := stage[i*n : (i+1)*n]
			dst := ((c.rank + i) % p) * n
			copy(rbuf[dst:dst+n], src)
		}
	}
	return nil
}

// allgatherRing: p-1 rounds, each forwarding the block received in the
// previous round to the next neighbour.
func (c *Comm) allgatherRing(rbuf []byte, n int) error {
	p := len(c.group)
	sendTo, recvFrom := collective.RingNeighbors(c.rank, p)
	have := c.rank
	for step := 0; step < p-1; step++ {
		want := (have - 1 + p) % p
		sLo, sHi := have*n, (have+1)*n
		rLo, rHi := want*n, (want+1)*n
		if _, err := c.sendrecvRaw(
			sliceOrNil(rbuf, sLo, sHi), sHi-sLo, sendTo, tagAllgather,
			sliceOrNil(rbuf, rLo, rHi), rHi-rLo, recvFrom, tagAllgather,
		); err != nil {
			return err
		}
		have = want
	}
	return nil
}
