package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/vtime"
)

// tunedWorld builds a world with threshold overrides and a trace.
func tunedWorld(t *testing.T, n, ppn int, tune Tuning) (*World, *Trace) {
	t.Helper()
	place, err := topologyPlacement(n, ppn)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	w, err := NewWorld(Config{
		Placement: place, Model: fronteraModelForTest(),
		CarryData: true, Trace: tr, Tuning: tune,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, tr
}

func TestTuningDefaults(t *testing.T) {
	d := DefaultTuning()
	if d != (Tuning{}).withDefaults() {
		t.Error("zero tuning must resolve to the defaults")
	}
	// Partial overrides keep the rest.
	tu := Tuning{AllreduceRabenseifnerMin: 1}.withDefaults()
	if tu.AllreduceRabenseifnerMin != 1 || tu.AllgatherRDMaxTotal != d.AllgatherRDMaxTotal {
		t.Errorf("partial override broken: %+v", tu)
	}
	// Negatives survive (they disable algorithms).
	if (Tuning{AllgatherRDMaxTotal: -1}).withDefaults().AllgatherRDMaxTotal != -1 {
		t.Error("negative override must survive withDefaults")
	}
}

// TestTuningNegativeDisablesEveryField exercises the documented negative
// semantics of each threshold field through the selection policy: a
// negative *Max* bound makes the bounded algorithm unselectable, a
// negative *Min* switch point disables the small-message algorithm
// wherever the large one is applicable.
func TestTuningNegativeDisablesEveryField(t *testing.T) {
	sel := func(coll Collective, s Selection, tu Tuning) string {
		t.Helper()
		a, err := Policy{Tuning: tu}.Select(coll, s)
		if err != nil {
			t.Fatal(err)
		}
		return a.Name
	}
	cases := []struct {
		field  string
		tuning Tuning
		coll   Collective
		sel    Selection
		want   string
	}{
		// BcastScatterRingMin: -1 disables the binomial tree on >2 ranks,
		// even for a 1-byte broadcast...
		{"BcastScatterRingMin", Tuning{BcastScatterRingMin: -1},
			CollBcast, Selection{CommSize: 8, Bytes: 1}, "scatter_ring"},
		// ...but 2-rank broadcasts have no scatter+ring and stay binomial.
		{"BcastScatterRingMin(p=2)", Tuning{BcastScatterRingMin: -1},
			CollBcast, Selection{CommSize: 2, Bytes: 1 << 20}, "binomial"},
		// AllreduceRabenseifnerMin: -1 disables recursive doubling wherever
		// Rabenseifner is applicable (>=4 ranks, enough elements)...
		{"AllreduceRabenseifnerMin", Tuning{AllreduceRabenseifnerMin: -1},
			CollAllreduce, Selection{CommSize: 8, Bytes: 64, Elems: 16}, "rabenseifner"},
		// ...while small groups still fall back to recursive doubling.
		{"AllreduceRabenseifnerMin(p=2)", Tuning{AllreduceRabenseifnerMin: -1},
			CollAllreduce, Selection{CommSize: 2, Bytes: 64, Elems: 16}, "recursive_doubling"},
		// AllgatherRDMaxTotal: -1 disables recursive doubling even on a
		// power-of-two group with a tiny total.
		{"AllgatherRDMaxTotal", Tuning{AllgatherRDMaxTotal: -1},
			CollAllgather, Selection{CommSize: 8, Bytes: 1}, "bruck"},
		// AllgatherBruckMaxTotal: -1 disables Bruck (non-power-of-two group
		// so recursive doubling is out anyway): ring takes over.
		{"AllgatherBruckMaxTotal", Tuning{AllgatherBruckMaxTotal: -1},
			CollAllgather, Selection{CommSize: 6, Bytes: 1}, "ring"},
		// Both allgather bounds negative: ring everywhere.
		{"Allgather(both)", Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: -1},
			CollAllgather, Selection{CommSize: 8, Bytes: 1}, "ring"},
		// AlltoallBruckMaxBlock: -1 disables Bruck even for 1-byte blocks.
		{"AlltoallBruckMaxBlock", Tuning{AlltoallBruckMaxBlock: -1},
			CollAlltoall, Selection{CommSize: 8, Bytes: 1}, "pairwise"},
	}
	for _, c := range cases {
		if got := sel(c.coll, c.sel, c.tuning); got != c.want {
			t.Errorf("%s: %s selected %s, want %s", c.field, c.coll, got, c.want)
		}
	}
}

// TestTuningForcesAlgorithms verifies through the trace that each override
// actually selects the intended algorithm (distinct message complexities),
// and that results stay correct under every forced algorithm.
func TestTuningForcesAlgorithms(t *testing.T) {
	const p, n = 8, 8192
	countMsgs := func(tune Tuning) (int, [][]byte) {
		w, tr := tunedWorld(t, p, 4, tune)
		outs := make([][]byte, p)
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			rbuf := make([]byte, p*n)
			if err := c.Allgather(pattern(pr.Rank(), n), rbuf); err != nil {
				return err
			}
			outs[pr.Rank()] = rbuf
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Summarize().Messages, outs
	}
	big := 1 << 30
	rdMsgs, rdOut := countMsgs(Tuning{AllgatherRDMaxTotal: big})
	bruckMsgs, bruckOut := countMsgs(Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: big})
	ringMsgs, ringOut := countMsgs(Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: -1})

	if rdMsgs != p*3 { // log2(8) rounds, 1 msg per rank per round
		t.Errorf("recursive doubling sent %d msgs, want %d", rdMsgs, p*3)
	}
	if bruckMsgs != p*3 {
		t.Errorf("bruck sent %d msgs, want %d", bruckMsgs, p*3)
	}
	if ringMsgs != p*(p-1) {
		t.Errorf("ring sent %d msgs, want %d", ringMsgs, p*(p-1))
	}
	for r := 0; r < p; r++ {
		if !bytes.Equal(rdOut[r], bruckOut[r]) || !bytes.Equal(rdOut[r], ringOut[r]) {
			t.Fatalf("rank %d: algorithms disagree on the result", r)
		}
	}
}

// TestTuningAblationLatencyOrdering: for a large allgather, ring should
// beat whole-window recursive doubling on total data moved... but recursive
// doubling moves the same total in fewer, larger rounds; with the alpha-beta
// model the log-round algorithms win the latency term and ring wins nothing
// at equal volume -- assert both complete and differ, documenting the
// trade-off the tuning tables encode.
func TestTuningChangesLatency(t *testing.T) {
	const p, n = 8, 64 * 1024
	measure := func(tune Tuning) vtime.Micros {
		w, _ := tunedWorld(t, p, 1, tune)
		var elapsed vtime.Micros
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			if err := c.Barrier(); err != nil {
				return err
			}
			start := pr.Wtime()
			if err := c.AllgatherN(nil, n, nil); err != nil {
				return err
			}
			if pr.Rank() == 0 {
				elapsed = pr.Wtime() - start
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	big := 1 << 30
	rd := measure(Tuning{AllgatherRDMaxTotal: big})
	ring := measure(Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: -1})
	if rd == ring {
		t.Error("algorithm choice should change the virtual latency")
	}
	// At 64 KiB x 8 ranks inter-node, recursive doubling's fewer rounds
	// should win under the alpha-beta model.
	if rd > ring {
		t.Logf("note: ring (%v) beat recursive doubling (%v) at this size", ring, rd)
	}
}

func TestTuningAllreduceForcedPaths(t *testing.T) {
	// Both forced Allreduce algorithms must agree with each other.
	const p, elems = 8, 4096
	run := func(tune Tuning) [][]byte {
		w, _ := tunedWorld(t, p, 4, tune)
		outs := make([][]byte, p)
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			vals := make([]float64, elems)
			for i := range vals {
				vals[i] = float64(pr.Rank()) + float64(i%13)
			}
			rbuf := make([]byte, elems*8)
			if err := c.Allreduce(EncodeFloat64s(vals), rbuf, Float64, OpSum); err != nil {
				return err
			}
			outs[pr.Rank()] = rbuf
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	raben := run(Tuning{AllreduceRabenseifnerMin: 1})
	rd := run(Tuning{AllreduceRabenseifnerMin: 1 << 30})
	for r := 0; r < p; r++ {
		a, b := DecodeFloat64s(raben[r]), DecodeFloat64s(rd[r])
		for i := range a {
			diff := a[i] - b[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-9*(1+b[i]) {
				t.Fatalf("rank %d elem %d: %v vs %v", r, i, a[i], b[i])
			}
		}
	}
}

func TestTuningBcastForcedPaths(t *testing.T) {
	const p, n = 8, 4096
	for _, tune := range []Tuning{
		{BcastScatterRingMin: 1},       // force scatter+ring
		{BcastScatterRingMin: 1 << 30}, // force binomial
	} {
		w, _ := tunedWorld(t, p, 4, tune)
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			buf := make([]byte, n)
			if pr.Rank() == 3 {
				copy(buf, pattern(3, n))
			}
			if err := c.Bcast(buf, 3); err != nil {
				return err
			}
			if !bytes.Equal(buf, pattern(3, n)) {
				return fmt.Errorf("rank %d: forced bcast corrupted", pr.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tune, err)
		}
	}
}
