package mpi

import "fmt"

// Scan and Exscan: inclusive and exclusive prefix reductions. OMB-Py's
// first release does not benchmark them (paper Table II), but mpi4py
// exposes both, so the runtime provides them for library completeness.
// Both use the classic log-round distance-doubling algorithm.

// Scan leaves op(sbuf_0, ..., sbuf_rank) in rbuf on each rank.
func (c *Comm) Scan(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.ScanN(sbuf, rbuf, len(sbuf), dt, op)
}

// ScanN is Scan with an explicit byte count; buffers may be nil in
// timing-only worlds.
func (c *Comm) ScanN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: Scan size %d not a multiple of %s", n, dt)
	}
	return c.scan(sbuf, rbuf, n, dt, op, false)
}

// Exscan leaves op(sbuf_0, ..., sbuf_{rank-1}) in rbuf on each rank;
// rbuf on rank 0 is left untouched, as in MPI.
func (c *Comm) Exscan(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.ExscanN(sbuf, rbuf, len(sbuf), dt, op)
}

// ExscanN is Exscan with an explicit byte count.
func (c *Comm) ExscanN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: Exscan size %d not a multiple of %s", n, dt)
	}
	return c.scan(sbuf, rbuf, n, dt, op, true)
}

// scan implements the distance-doubling prefix reduction: in round k, rank
// r sends its accumulated value to r+2^k and receives from r-2^k, folding
// the received partial into both its running total and (for ranks that
// will still send) its outgoing value.
func (c *Comm) scan(sbuf, rbuf []byte, n int, dt DType, op Op, exclusive bool) error {
	p := len(c.group)
	carry := sbuf != nil && rbuf != nil

	// acc: the value this rank forwards (op of a contiguous rank window
	// ending at this rank). partial: the prefix result under construction.
	var acc, partial, tmp []byte
	var havePartial bool
	if carry {
		acc = c.scratch(n)
		copy(acc, sbuf[:n])
		partial = c.scratch(n)
		tmp = c.scratch(n)
		defer c.release(acc, partial, tmp)
	}
	if !exclusive {
		if carry {
			copy(partial, sbuf[:n])
		}
		havePartial = true
	}

	for k := 1; k < p; k *= 2 {
		dst := c.rank + k
		src := c.rank - k
		var ps *rendezvous
		if dst < p {
			ps = c.postSendScan(acc, n, dst)
		}
		if src >= 0 {
			if _, err := c.recvBytes(src, tagScan, tmp, n); err != nil {
				return err
			}
			c.chargeCompute(n)
			if carry {
				// Fold into the forwarded accumulator.
				if err := reduceInto(acc, tmp, dt, op); err != nil {
					return err
				}
				// Fold into (or seed) the prefix result. tmp holds
				// op(sbuf_{src-k+1..src}) = the block immediately left of
				// everything already in partial.
				if havePartial {
					if err := reduceInto(partial, tmp, dt, op); err != nil {
						return err
					}
				} else {
					copy(partial, tmp)
				}
			}
			havePartial = true
		}
		if ps != nil {
			c.completeSend(ps)
		}
	}
	if carry && havePartial && !(exclusive && c.rank == 0) {
		copy(rbuf[:n], partial)
	}
	return nil
}

// postSend helper with the scan tag (acc may be nil in timing-only mode).
func (c *Comm) postSendScan(acc []byte, n, dst int) *rendezvous {
	return c.postSend(dst, tagScan, acc, n)
}
