package mpi

import "fmt"

// Scan and Exscan: inclusive and exclusive prefix reductions. OMB-Py's
// first release does not benchmark them (paper Table II), but mpi4py
// exposes both, so the runtime provides them for library completeness.
// Both use the classic log-round distance-doubling algorithm.

// Scan leaves op(sbuf_0, ..., sbuf_rank) in rbuf on each rank.
func (c *Comm) Scan(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.ScanN(sbuf, rbuf, len(sbuf), dt, op)
}

// ScanN is Scan with an explicit byte count; buffers may be nil in
// timing-only worlds.
func (c *Comm) ScanN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: Scan size %d not a multiple of %s", n, dt)
	}
	return c.driveScan(sbuf, rbuf, n, dt, op, false)
}

// Iscan starts a nonblocking inclusive prefix reduction.
func (c *Comm) Iscan(sbuf, rbuf []byte, dt DType, op Op) (*Request, error) {
	return c.IscanN(sbuf, rbuf, len(sbuf), dt, op)
}

// IscanN is Iscan with an explicit byte count.
func (c *Comm) IscanN(sbuf, rbuf []byte, n int, dt DType, op Op) (*Request, error) {
	if n%dt.Size() != 0 {
		return nil, fmt.Errorf("mpi: Scan size %d not a multiple of %s", n, dt)
	}
	return c.collRequest(c.scanStart(sbuf, rbuf, n, dt, op, false))
}

// Exscan leaves op(sbuf_0, ..., sbuf_{rank-1}) in rbuf on each rank;
// rbuf on rank 0 is left untouched, as in MPI.
func (c *Comm) Exscan(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.ExscanN(sbuf, rbuf, len(sbuf), dt, op)
}

// ExscanN is Exscan with an explicit byte count.
func (c *Comm) ExscanN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: Exscan size %d not a multiple of %s", n, dt)
	}
	return c.driveScan(sbuf, rbuf, n, dt, op, true)
}

func (c *Comm) driveScan(sbuf, rbuf []byte, n int, dt DType, op Op, exclusive bool) error {
	if err := c.driveSched(c.scanStart(sbuf, rbuf, n, dt, op, exclusive)); err != nil {
		return fmt.Errorf("mpi: Scan: %w", err)
	}
	return nil
}

// scanStart compiles the distance-doubling prefix reduction: in round k,
// rank r sends its accumulated value to r+2^k and receives from r-2^k,
// folding the received partial into both its running total and (for ranks
// that will still send) its outgoing value. Each round posts the send
// first, then receives, then drains the send — the deadlock-free ordering
// of the monolithic implementation.
func (c *Comm) scanStart(sbuf, rbuf []byte, n int, dt DType, op Op, exclusive bool) *collSched {
	p := len(c.group)
	carry := sbuf != nil && rbuf != nil
	s := c.getSched()
	s.coll = collScan
	s.dt, s.op = dt, op

	// acc: the value this rank forwards (op of a contiguous rank window
	// ending at this rank). partial: the prefix result under construction.
	var acc, partial, tmp []byte
	var havePartial bool
	if carry {
		acc = s.scratch(n)
		copy(acc, sbuf[:n])
		partial = s.scratch(n)
		tmp = s.scratch(n)
	}
	if !exclusive {
		if carry {
			copy(partial, sbuf[:n])
		}
		havePartial = true
	}

	for k := 1; k < p; k *= 2 {
		dst := c.rank + k
		src := c.rank - k
		posted := false
		if dst < p {
			s.post(dst, acc, n)
			posted = true
		}
		if src >= 0 {
			s.recv(src, tmp, n)
			// Fold into the forwarded accumulator (one compute charge per
			// received block, as in the blocking path).
			s.reduce(acc, tmp, n)
			// Fold into (or seed) the prefix result. tmp holds
			// op(sbuf_{src-k+1..src}) = the block immediately left of
			// everything already in partial.
			if carry {
				if havePartial {
					s.reduceNC(partial, tmp, n)
				} else {
					s.copyStep(partial, tmp, n)
				}
			}
			havePartial = true
		}
		if posted {
			s.waitSend()
		}
	}
	if carry && havePartial && !(exclusive && c.rank == 0) {
		s.copyStep(rbuf[:n], partial, n)
	}
	return s
}
