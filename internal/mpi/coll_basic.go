package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// This file implements Barrier, Bcast and the rooted tree collectives
// (Reduce, Gather, Scatter). Algorithm selection mirrors MVAPICH2: binomial
// trees for rooted small/medium operations, scatter + ring-allgather for
// large broadcasts. Every collective has an N-suffixed form taking explicit
// byte sizes with nil-tolerant buffers (used by the timing-only huge-scale
// experiments); the plain forms derive sizes from the slices.

// Barrier blocks until every rank of the communicator has entered it,
// using the dissemination algorithm (ceil(log2 p) zero-byte rounds).
func (c *Comm) Barrier() error {
	p := len(c.group)
	if p == 1 {
		return nil
	}
	sendTo, recvFrom := c.dissPeers(p)
	for k := range sendTo {
		if _, err := c.sendrecvRaw(nil, 0, sendTo[k], tagBarrier, nil, 0, recvFrom[k], tagBarrier); err != nil {
			return fmt.Errorf("mpi: Barrier round %d: %w", k, err)
		}
	}
	return nil
}

// bcastLargeMin is the message size at which Bcast switches from the
// binomial tree to scatter + ring allgather.
const bcastLargeMin = 512 * 1024

func init() {
	registerAlgorithm(Algorithm{
		Name:       "scatter_ring",
		Collective: CollBcast,
		Summary:    "binomial scatter + ring allgather (large messages)",
		Applicable: func(s Selection) bool {
			return s.Bytes >= s.Tuning.BcastScatterRingMin && s.CommSize > 2
		},
		run: func(c *Comm, call collCall) error {
			return c.bcastScatterRing(call.sbuf, call.n, call.root)
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "binomial",
		Collective: CollBcast,
		Summary:    "binomial tree (small and medium messages)",
		Applicable: func(Selection) bool { return true },
		run: func(c *Comm, call collCall) error {
			return c.bcastBinomial(call.sbuf, call.n, call.root)
		},
	})
}

// Bcast broadcasts buf from root to all ranks.
func (c *Comm) Bcast(buf []byte, root int) error { return c.BcastN(buf, len(buf), root) }

// BcastN broadcasts n bytes from root; buf may be nil in timing-only worlds.
func (c *Comm) BcastN(buf []byte, n, root int) error {
	if err := c.checkRank(root, "Bcast root"); err != nil {
		return err
	}
	p := len(c.group)
	if p == 1 {
		return nil
	}
	alg, err := c.algorithm(CollBcast, Selection{CommSize: p, Bytes: n})
	if err != nil {
		return fmt.Errorf("mpi: Bcast: %w", err)
	}
	return alg.run(c, collCall{sbuf: buf, n: n, root: root})
}

func (c *Comm) bcastBinomial(buf []byte, n, root int) error {
	p := len(c.group)
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		if _, err := c.recvBytes(parent, tagBcast, buf, n); err != nil {
			return fmt.Errorf("mpi: Bcast recv: %w", err)
		}
	}
	for _, child := range c.binomialChildren(root, p) {
		c.completeSend(c.postSend(child, tagBcast, buf, n))
	}
	return nil
}

// bcastScatterRing implements the large-message broadcast: binomial scatter
// of blocks followed by a ring allgather.
func (c *Comm) bcastScatterRing(buf []byte, n, root int) error {
	p := len(c.group)
	bounds := c.blockBoundsFor(n, p, 1)
	// Relative rank r owns block r after the scatter.
	rel := (c.rank - root + p) % p

	// Scatter phase down the binomial tree: each node forwards the blocks
	// of its subtree. A node's subtree in relative ranks is [rel, rel+sub).
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		sub := subtreeSize(rel, p)
		lo, hi := bounds[rel], bounds[min(rel+sub, p)]
		dst := sliceOrNil(buf, lo, hi)
		if _, err := c.recvBytes(parent, tagBcast, dst, hi-lo); err != nil {
			return fmt.Errorf("mpi: Bcast scatter recv: %w", err)
		}
	}
	for _, child := range c.binomialChildren(root, p) {
		crel := (child - root + p) % p
		sub := subtreeSize(crel, p)
		lo, hi := bounds[crel], bounds[min(crel+sub, p)]
		c.completeSend(c.postSend(child, tagBcast, sliceOrNil(buf, lo, hi), hi-lo))
	}

	// Ring allgather of the p blocks (in relative-rank order).
	sendTo := (c.rank + 1) % p
	recvFrom := (c.rank - 1 + p) % p
	have := rel
	for step := 0; step < p-1; step++ {
		want := (have - 1 + p) % p // block arriving this step (relative index)
		sLo, sHi := bounds[have], bounds[have+1]
		rLo, rHi := bounds[want], bounds[want+1]
		if _, err := c.sendrecvRaw(
			sliceOrNil(buf, sLo, sHi), sHi-sLo, sendTo, tagBcast,
			sliceOrNil(buf, rLo, rHi), rHi-rLo, recvFrom, tagBcast,
		); err != nil {
			return fmt.Errorf("mpi: Bcast ring step %d: %w", step, err)
		}
		have = want
	}
	return nil
}

// subtreeSize returns the size of the binomial subtree rooted at relative
// rank rel in a tree over p ranks.
func subtreeSize(rel, p int) int {
	if rel == 0 {
		return p
	}
	// The subtree of rel spans [rel, min(rel + lowbit(rel), p)).
	low := rel & (-rel)
	if rel+low > p {
		return p - rel
	}
	return low
}

// Reduce combines sbuf from every rank into rbuf at root using op over dt.
func (c *Comm) Reduce(sbuf, rbuf []byte, dt DType, op Op, root int) error {
	return c.ReduceN(sbuf, rbuf, len(sbuf), dt, op, root)
}

// ReduceN is Reduce with an explicit byte count; buffers may be nil in
// timing-only worlds.
func (c *Comm) ReduceN(sbuf, rbuf []byte, n int, dt DType, op Op, root int) error {
	if err := c.checkRank(root, "Reduce root"); err != nil {
		return err
	}
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: Reduce size %d not a multiple of %s", n, dt)
	}
	p := len(c.group)
	// Accumulator starts as a copy of the local contribution.
	var acc, tmp []byte
	if sbuf != nil {
		acc = c.scratch(n)
		copy(acc, sbuf[:n])
		tmp = c.scratch(n)
		defer c.release(acc, tmp)
	}
	// Children are received in reverse binomial order (deepest subtrees
	// last) so that reductions happen as data arrives.
	children := c.binomialChildren(root, p)
	for i := len(children) - 1; i >= 0; i-- {
		if _, err := c.recvBytes(children[i], tagReduce, tmp, n); err != nil {
			return fmt.Errorf("mpi: Reduce recv: %w", err)
		}
		c.proc.clock.Advance(c.proc.world.cfg.Model.Compute(n, c.proc.pyMode(), c.proc.fullSub()))
		if acc != nil {
			if err := reduceInto(acc, tmp, dt, op); err != nil {
				return err
			}
		}
	}
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		c.completeSend(c.postSend(parent, tagReduce, acc, n))
		return nil
	}
	if rbuf != nil && acc != nil {
		copy(rbuf[:n], acc)
	}
	return nil
}

// Gather collects sbuf from every rank into rbuf at root, ordered by rank.
// len(rbuf) at root must be p*len(sbuf).
func (c *Comm) Gather(sbuf, rbuf []byte, root int) error {
	return c.GatherN(sbuf, len(sbuf), rbuf, root)
}

// GatherN is Gather with an explicit per-rank byte count.
func (c *Comm) GatherN(sbuf []byte, n int, rbuf []byte, root int) error {
	if err := c.checkRank(root, "Gather root"); err != nil {
		return err
	}
	p := len(c.group)
	if c.rank == root && rbuf != nil && len(rbuf) < p*n {
		return fmt.Errorf("mpi: Gather recv buffer %d < %d", len(rbuf), p*n)
	}
	// Binomial gather in relative-rank space: each node accumulates the
	// blocks of its subtree contiguously (relative order), then root
	// rotates to absolute order.
	rel := (c.rank - root + p) % p
	sub := subtreeSize(rel, p)
	var stage []byte
	if sbuf != nil {
		stage = c.scratch(sub * n)
		copy(stage[:n], sbuf[:n])
		defer c.release(stage)
	}
	children := c.binomialChildren(root, p)
	for _, child := range children {
		crel := (child - root + p) % p
		csub := subtreeSize(crel, p)
		off := (crel - rel) * n
		dst := sliceOrNil(stage, off, off+csub*n)
		if _, err := c.recvBytes(child, tagGather, dst, csub*n); err != nil {
			return fmt.Errorf("mpi: Gather recv: %w", err)
		}
	}
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		c.completeSend(c.postSend(parent, tagGather, stage, sub*n))
		return nil
	}
	if rbuf != nil && stage != nil {
		for r := 0; r < p; r++ {
			abs := (r + root) % p
			copy(rbuf[abs*n:(abs+1)*n], stage[r*n:(r+1)*n])
		}
	}
	return nil
}

// Scatter distributes p consecutive blocks of sbuf at root to the ranks.
// len(sbuf) at root must be p*len(rbuf).
func (c *Comm) Scatter(sbuf, rbuf []byte, root int) error {
	return c.ScatterN(sbuf, rbuf, len(rbuf), root)
}

// ScatterN is Scatter with an explicit per-rank byte count.
func (c *Comm) ScatterN(sbuf, rbuf []byte, n, root int) error {
	if err := c.checkRank(root, "Scatter root"); err != nil {
		return err
	}
	p := len(c.group)
	if c.rank == root && sbuf != nil && len(sbuf) < p*n {
		return fmt.Errorf("mpi: Scatter send buffer %d < %d", len(sbuf), p*n)
	}
	rel := (c.rank - root + p) % p
	sub := subtreeSize(rel, p)
	var stage []byte
	defer func() { c.release(stage) }()
	if c.rank == root {
		if sbuf != nil {
			// Stage in relative order so subtree blocks are contiguous.
			stage = c.scratch(p * n)
			for r := 0; r < p; r++ {
				abs := (r + root) % p
				copy(stage[r*n:(r+1)*n], sbuf[abs*n:(abs+1)*n])
			}
		}
	} else if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		if c.wantsData(rbuf) {
			stage = c.scratch(sub * n)
		}
		if _, err := c.recvBytes(parent, tagScatter, stage, sub*n); err != nil {
			return fmt.Errorf("mpi: Scatter recv: %w", err)
		}
	}
	for _, child := range c.binomialChildren(root, p) {
		crel := (child - root + p) % p
		csub := subtreeSize(crel, p)
		off := (crel - rel) * n
		c.completeSend(c.postSend(child, tagScatter, sliceOrNil(stage, off, off+csub*n), csub*n))
	}
	if rbuf != nil && stage != nil {
		copy(rbuf[:n], stage[:n])
	}
	return nil
}

// wantsData reports whether local staging buffers should be materialised.
func (c *Comm) wantsData(userBuf []byte) bool { return userBuf != nil }

// sliceOrNil returns buf[lo:hi] or nil when buf is nil (timing-only paths).
func sliceOrNil(buf []byte, lo, hi int) []byte {
	if buf == nil {
		return nil
	}
	return buf[lo:hi]
}

// blockBounds partitions n bytes into parts contiguous blocks whose
// boundaries are aligned to align bytes; it returns parts+1 offsets.
func blockBounds(n, parts, align int) []int {
	if align <= 0 {
		align = 1
	}
	elems := n / align
	bounds := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = (elems * i / parts) * align
	}
	bounds[parts] = n
	return bounds
}
