package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// This file implements Barrier, Bcast and the rooted tree collectives
// (Reduce, Gather, Scatter) as schedule builders over the engine in
// collsched.go. Algorithm selection mirrors MVAPICH2: binomial trees for
// rooted small/medium operations, scatter + ring-allgather for large
// broadcasts. Every collective has an N-suffixed form taking explicit byte
// sizes with nil-tolerant buffers (used by the timing-only huge-scale
// experiments); the plain forms derive sizes from the slices.

// Barrier blocks until every rank of the communicator has entered it,
// using the dissemination algorithm (ceil(log2 p) zero-byte rounds).
func (c *Comm) Barrier() error {
	s := c.barrierStart()
	if s == nil {
		return nil
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Barrier: %w", err)
	}
	return nil
}

// Ibarrier starts a nonblocking barrier.
func (c *Comm) Ibarrier() (*Request, error) {
	return c.collRequest(c.barrierStart())
}

// collBarrier is the barrier's identity in the event engine's replay
// cache; it is not a registry Collective (no selectable algorithms), so
// barrierAlg stands in for the algorithm pointer in the step cache.
const collBarrier Collective = "barrier"

// Labels for the directly built (non-registry) collectives, used by the
// fault layer to name the collective in kill rules and failure errors.
const (
	collReduce  Collective = "reduce"
	collGather  Collective = "gather"
	collScatter Collective = "scatter"
	collScan    Collective = "scan"
)

var barrierAlg = &Algorithm{Name: "dissemination", Collective: collBarrier,
	build: buildBarrierDiss}

// buildBarrierDiss compiles the dissemination barrier; the call is unused
// (a barrier has no buffers, sizes or root).
func buildBarrierDiss(c *Comm, _ collCall, s *collSched) error {
	sendTo, recvFrom := c.dissPeers(len(c.group))
	for k := range sendTo {
		s.exchange(sendTo[k], nil, 0, recvFrom[k], nil, 0)
	}
	return nil
}

func (c *Comm) barrierStart() *collSched {
	p := len(c.group)
	if p == 1 {
		return nil
	}
	if c.proc.ev != nil {
		key := foldKey{shape: shapeKey{coll: collBarrier}, seq: c.collSeq}
		if c.proc.ev.loop.schedFoldEligible(c, key.shape) {
			c.proc.foldPend = foldPending{key: key}
			return schedFoldPending
		}
	}
	return c.compileBarrierSched()
}

// compileBarrierSched is the barrier's per-rank compile/replay — the
// schedule-fold fallback and the whole path when folding is off or the
// engine is goroutine-based.
func (c *Comm) compileBarrierSched() *collSched {
	p := len(c.group)
	build := func(s *collSched) error { return buildBarrierDiss(c, collCall{}, s) }
	if c.proc.ev != nil {
		key := replayKey{ctx: c.ctx, coll: collBarrier}
		s, known := c.replaySched(key)
		if s != nil {
			s.coll = collBarrier
			return s
		}
		if !known {
			s, _ = c.compileCachedSched(key,
				stepKey{alg: barrierAlg, rank: c.rank, commSize: p}, 0, 0, build)
			if s != nil {
				s.coll = collBarrier
			}
			return s
		}
	}
	s, _ := c.buildSched(0, 0, build)
	if s != nil {
		s.coll = collBarrier
	}
	return s
}

// bcastLargeMin is the message size at which Bcast switches from the
// binomial tree to scatter + ring allgather.
const bcastLargeMin = 512 * 1024

func init() {
	registerAlgorithm(Algorithm{
		Name:       "scatter_ring",
		Collective: CollBcast,
		Summary:    "binomial scatter + ring allgather (large messages)",
		Applicable: func(s Selection) bool {
			return s.Bytes >= s.Tuning.BcastScatterRingMin && s.CommSize > 2
		},
		build: buildBcastScatterRing,
	})
	registerAlgorithm(Algorithm{
		Name:       "binomial",
		Collective: CollBcast,
		Summary:    "binomial tree (small and medium messages)",
		Applicable: func(Selection) bool { return true },
		build:      buildBcastBinomial,
	})
}

// Bcast broadcasts buf from root to all ranks.
func (c *Comm) Bcast(buf []byte, root int) error { return c.BcastN(buf, len(buf), root) }

// BcastN broadcasts n bytes from root; buf may be nil in timing-only worlds.
func (c *Comm) BcastN(buf []byte, n, root int) error {
	s, err := c.bcastStart(buf, n, root)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Bcast: %w", err)
	}
	return nil
}

// Ibcast starts a nonblocking broadcast of buf from root.
func (c *Comm) Ibcast(buf []byte, root int) (*Request, error) {
	return c.IbcastN(buf, len(buf), root)
}

// IbcastN is Ibcast with an explicit byte count.
func (c *Comm) IbcastN(buf []byte, n, root int) (*Request, error) {
	s, err := c.bcastStart(buf, n, root)
	if err != nil {
		return nil, err
	}
	return c.collRequest(s)
}

func (c *Comm) bcastStart(buf []byte, n, root int) (*collSched, error) {
	if err := c.checkRank(root, "Bcast root"); err != nil {
		return nil, err
	}
	p := len(c.group)
	if p == 1 {
		return nil, nil
	}
	s, err := c.startColl(CollBcast, Selection{CommSize: p, Bytes: n},
		collCall{sbuf: buf, n: n, root: root})
	if err != nil {
		return nil, fmt.Errorf("mpi: Bcast: %w", err)
	}
	return s, nil
}

func buildBcastBinomial(c *Comm, call collCall, s *collSched) error {
	buf, n, root := call.sbuf, call.n, call.root
	p := len(c.group)
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		s.recv(parent, buf, n)
	}
	for _, child := range c.binomialChildren(root, p) {
		s.send(child, buf, n)
	}
	return nil
}

// buildBcastScatterRing compiles the large-message broadcast: binomial
// scatter of blocks followed by a ring allgather.
func buildBcastScatterRing(c *Comm, call collCall, s *collSched) error {
	buf, n, root := call.sbuf, call.n, call.root
	p := len(c.group)
	bounds := c.blockBoundsFor(n, p, 1)
	// Relative rank r owns block r after the scatter.
	rel := (c.rank - root + p) % p

	// Scatter phase down the binomial tree: each node forwards the blocks
	// of its subtree. A node's subtree in relative ranks is [rel, rel+sub).
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		sub := subtreeSize(rel, p)
		lo, hi := bounds[rel], bounds[min(rel+sub, p)]
		s.recv(parent, sliceOrNil(buf, lo, hi), hi-lo)
	}
	for _, child := range c.binomialChildren(root, p) {
		crel := (child - root + p) % p
		sub := subtreeSize(crel, p)
		lo, hi := bounds[crel], bounds[min(crel+sub, p)]
		s.send(child, sliceOrNil(buf, lo, hi), hi-lo)
	}

	// Ring allgather of the p blocks (in relative-rank order).
	sendTo := (c.rank + 1) % p
	recvFrom := (c.rank - 1 + p) % p
	have := rel
	for step := 0; step < p-1; step++ {
		want := (have - 1 + p) % p // block arriving this step (relative index)
		sLo, sHi := bounds[have], bounds[have+1]
		rLo, rHi := bounds[want], bounds[want+1]
		s.exchange(sendTo, sliceOrNil(buf, sLo, sHi), sHi-sLo,
			recvFrom, sliceOrNil(buf, rLo, rHi), rHi-rLo)
		have = want
	}
	return nil
}

// subtreeSize returns the size of the binomial subtree rooted at relative
// rank rel in a tree over p ranks.
func subtreeSize(rel, p int) int {
	if rel == 0 {
		return p
	}
	// The subtree of rel spans [rel, min(rel + lowbit(rel), p)).
	low := rel & (-rel)
	if rel+low > p {
		return p - rel
	}
	return low
}

// Reduce combines sbuf from every rank into rbuf at root using op over dt.
func (c *Comm) Reduce(sbuf, rbuf []byte, dt DType, op Op, root int) error {
	return c.ReduceN(sbuf, rbuf, len(sbuf), dt, op, root)
}

// ReduceN is Reduce with an explicit byte count; buffers may be nil in
// timing-only worlds.
func (c *Comm) ReduceN(sbuf, rbuf []byte, n int, dt DType, op Op, root int) error {
	s, err := c.reduceStart(sbuf, rbuf, n, dt, op, root)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Reduce: %w", err)
	}
	return nil
}

func (c *Comm) reduceStart(sbuf, rbuf []byte, n int, dt DType, op Op, root int) (*collSched, error) {
	if err := c.checkRank(root, "Reduce root"); err != nil {
		return nil, err
	}
	if n%dt.Size() != 0 {
		return nil, fmt.Errorf("mpi: Reduce size %d not a multiple of %s", n, dt)
	}
	p := len(c.group)
	s := c.getSched()
	s.coll = collReduce
	s.dt, s.op = dt, op
	// Accumulator starts as a copy of the local contribution.
	var acc, tmp []byte
	if sbuf != nil {
		acc = s.scratch(n)
		copy(acc, sbuf[:n])
		tmp = s.scratch(n)
	}
	// Children are received in reverse binomial order (deepest subtrees
	// last) so that reductions happen as data arrives.
	children := c.binomialChildren(root, p)
	for i := len(children) - 1; i >= 0; i-- {
		s.recv(children[i], tmp, n)
		s.reduce(acc, tmp, n)
	}
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		s.send(parent, acc, n)
		return s, nil
	}
	if rbuf != nil && acc != nil {
		s.copyStep(rbuf[:n], acc, n)
	}
	return s, nil
}

// Gather collects sbuf from every rank into rbuf at root, ordered by rank.
// len(rbuf) at root must be p*len(sbuf).
func (c *Comm) Gather(sbuf, rbuf []byte, root int) error {
	return c.GatherN(sbuf, len(sbuf), rbuf, root)
}

// GatherN is Gather with an explicit per-rank byte count.
func (c *Comm) GatherN(sbuf []byte, n int, rbuf []byte, root int) error {
	s, err := c.gatherStart(sbuf, n, rbuf, root)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Gather: %w", err)
	}
	return nil
}

// Igather starts a nonblocking Gather.
func (c *Comm) Igather(sbuf, rbuf []byte, root int) (*Request, error) {
	return c.IgatherN(sbuf, len(sbuf), rbuf, root)
}

// IgatherN is Igather with an explicit per-rank byte count.
func (c *Comm) IgatherN(sbuf []byte, n int, rbuf []byte, root int) (*Request, error) {
	s, err := c.gatherStart(sbuf, n, rbuf, root)
	if err != nil {
		return nil, err
	}
	return c.collRequest(s)
}

func (c *Comm) gatherStart(sbuf []byte, n int, rbuf []byte, root int) (*collSched, error) {
	if err := c.checkRank(root, "Gather root"); err != nil {
		return nil, err
	}
	p := len(c.group)
	if c.rank == root && rbuf != nil && len(rbuf) < p*n {
		return nil, fmt.Errorf("mpi: Gather recv buffer %d < %d", len(rbuf), p*n)
	}
	s := c.getSched()
	s.coll = collGather
	// Binomial gather in relative-rank space: each node accumulates the
	// blocks of its subtree contiguously (relative order), then root
	// rotates to absolute order.
	rel := (c.rank - root + p) % p
	sub := subtreeSize(rel, p)
	var stage []byte
	if sbuf != nil {
		stage = s.scratch(sub * n)
		copy(stage[:n], sbuf[:n])
	}
	for _, child := range c.binomialChildren(root, p) {
		crel := (child - root + p) % p
		csub := subtreeSize(crel, p)
		off := (crel - rel) * n
		s.recv(child, sliceOrNil(stage, off, off+csub*n), csub*n)
	}
	if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		s.send(parent, stage, sub*n)
		return s, nil
	}
	if rbuf != nil && stage != nil {
		for r := 0; r < p; r++ {
			abs := (r + root) % p
			s.copyStep(rbuf[abs*n:(abs+1)*n], stage[r*n:(r+1)*n], n)
		}
	}
	return s, nil
}

// Scatter distributes p consecutive blocks of sbuf at root to the ranks.
// len(sbuf) at root must be p*len(rbuf).
func (c *Comm) Scatter(sbuf, rbuf []byte, root int) error {
	return c.ScatterN(sbuf, rbuf, len(rbuf), root)
}

// ScatterN is Scatter with an explicit per-rank byte count.
func (c *Comm) ScatterN(sbuf, rbuf []byte, n, root int) error {
	s, err := c.scatterStart(sbuf, rbuf, n, root)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Scatter: %w", err)
	}
	return nil
}

func (c *Comm) scatterStart(sbuf, rbuf []byte, n, root int) (*collSched, error) {
	if err := c.checkRank(root, "Scatter root"); err != nil {
		return nil, err
	}
	p := len(c.group)
	if c.rank == root && sbuf != nil && len(sbuf) < p*n {
		return nil, fmt.Errorf("mpi: Scatter send buffer %d < %d", len(sbuf), p*n)
	}
	s := c.getSched()
	s.coll = collScatter
	rel := (c.rank - root + p) % p
	sub := subtreeSize(rel, p)
	var stage []byte
	if c.rank == root {
		if sbuf != nil {
			// Stage in relative order so subtree blocks are contiguous.
			stage = s.scratch(p * n)
			for r := 0; r < p; r++ {
				abs := (r + root) % p
				copy(stage[r*n:(r+1)*n], sbuf[abs*n:(abs+1)*n])
			}
		}
	} else if parent := collective.BinomialParent(c.rank, root, p); parent >= 0 {
		if c.wantsData(rbuf) {
			stage = s.scratch(sub * n)
		}
		s.recv(parent, stage, sub*n)
	}
	for _, child := range c.binomialChildren(root, p) {
		crel := (child - root + p) % p
		csub := subtreeSize(crel, p)
		off := (crel - rel) * n
		s.send(child, sliceOrNil(stage, off, off+csub*n), csub*n)
	}
	if rbuf != nil && stage != nil {
		s.copyStep(rbuf[:n], stage[:n], n)
	}
	return s, nil
}

// wantsData reports whether local staging buffers should be materialised.
func (c *Comm) wantsData(userBuf []byte) bool { return userBuf != nil }

// sliceOrNil returns buf[lo:hi] or nil when buf is nil (timing-only paths).
func sliceOrNil(buf []byte, lo, hi int) []byte {
	if buf == nil {
		return nil
	}
	return buf[lo:hi]
}

// blockBounds partitions n bytes into parts contiguous blocks whose
// boundaries are aligned to align bytes; it returns parts+1 offsets.
func blockBounds(n, parts, align int) []int {
	return blockBoundsInto(make([]int, parts+1), n, parts, align)
}

// blockBoundsInto is blockBounds writing into a caller-supplied slice of
// length parts+1 (typically drawn from the rank arena). The offsets are
// (elems*i/parts)*align, computed with a carry accumulator instead of a
// division per entry — bounds are rebuilt once per (rank, size) and the
// division loop was visible in the large-world profile.
func blockBoundsInto(bounds []int, n, parts, align int) []int {
	if align <= 0 {
		align = 1
	}
	elems := n / align
	q, r := elems/parts, elems%parts
	off, t := 0, 0
	for i := 0; i <= parts; i++ {
		bounds[i] = off * align
		off += q
		if t += r; t >= parts {
			t -= parts
			off++
		}
	}
	bounds[parts] = n
	return bounds
}
