package mpi

import (
	"fmt"

	"repro/internal/collective"
)

func init() {
	registerAlgorithm(Algorithm{
		Name:       "recursive_halving",
		Collective: CollReduceScatter,
		Summary:    "recursive halving over aligned windows (power-of-two groups)",
		Applicable: func(s Selection) bool { return collective.IsPof2(s.CommSize) },
		Feasible:   func(s Selection) bool { return collective.IsPof2(s.CommSize) },
		build:      buildReduceScatterHalving,
	})
	registerAlgorithm(Algorithm{
		Name:       "pairwise",
		Collective: CollReduceScatter,
		Summary:    "pairwise exchange-and-reduce rounds (any group)",
		Applicable: func(Selection) bool { return true },
		build:      buildReduceScatterPairwise,
	})
}

// ReduceScatterBlock reduces p equal blocks of sbuf across the ranks and
// leaves block r on rank r in rbuf; len(sbuf) == p*len(rbuf).
func (c *Comm) ReduceScatterBlock(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.ReduceScatterBlockN(sbuf, rbuf, len(rbuf), dt, op)
}

// ReduceScatterBlockN is ReduceScatterBlock with an explicit per-rank byte
// count; buffers may be nil in timing-only worlds.
func (c *Comm) ReduceScatterBlockN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	counts, err := c.blockCounts(n, dt)
	if err != nil {
		return err
	}
	defer c.releaseInts(counts)
	return c.ReduceScatterN(sbuf, rbuf, counts, dt, op)
}

// IreduceScatterBlock starts a nonblocking ReduceScatterBlock.
func (c *Comm) IreduceScatterBlock(sbuf, rbuf []byte, dt DType, op Op) (*Request, error) {
	return c.IreduceScatterBlockN(sbuf, rbuf, len(rbuf), dt, op)
}

// IreduceScatterBlockN is IreduceScatterBlock with an explicit per-rank
// byte count.
func (c *Comm) IreduceScatterBlockN(sbuf, rbuf []byte, n int, dt DType, op Op) (*Request, error) {
	counts, err := c.blockCounts(n, dt)
	if err != nil {
		return nil, err
	}
	defer c.releaseInts(counts)
	return c.IreduceScatter(sbuf, rbuf, counts, dt, op)
}

// blockCounts builds the uniform per-rank count vector of the Block forms.
func (c *Comm) blockCounts(n int, dt DType) ([]int, error) {
	if n%dt.Size() != 0 {
		return nil, fmt.Errorf("mpi: ReduceScatter block %d not a multiple of %s", n, dt)
	}
	counts := c.scratchInts(len(c.group))
	for i := range counts {
		counts[i] = n
	}
	return counts, nil
}

// ReduceScatter reduces sbuf across ranks and scatters it by counts (bytes
// per rank, summing to len(sbuf)); rank r receives counts[r] bytes in rbuf.
func (c *Comm) ReduceScatter(sbuf, rbuf []byte, counts []int, dt DType, op Op) error {
	return c.ReduceScatterN(sbuf, rbuf, counts, dt, op)
}

// ReduceScatterN implements reduce-scatter with per-rank byte counts using
// recursive halving on power-of-two groups with block-aligned windows, and
// a pairwise exchange otherwise.
func (c *Comm) ReduceScatterN(sbuf, rbuf []byte, counts []int, dt DType, op Op) error {
	s, err := c.reduceScatterStart(sbuf, rbuf, counts, dt, op)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: ReduceScatter: %w", err)
	}
	return nil
}

// IreduceScatter starts a nonblocking ReduceScatter. The counts slice is
// captured at post time and may be reused immediately.
func (c *Comm) IreduceScatter(sbuf, rbuf []byte, counts []int, dt DType, op Op) (*Request, error) {
	s, err := c.reduceScatterStart(sbuf, rbuf, counts, dt, op)
	if err != nil {
		return nil, err
	}
	return c.collRequest(s)
}

func (c *Comm) reduceScatterStart(sbuf, rbuf []byte, counts []int, dt DType, op Op) (*collSched, error) {
	p := len(c.group)
	if len(counts) != p {
		return nil, fmt.Errorf("mpi: ReduceScatter counts length %d != %d ranks", len(counts), p)
	}
	total := 0
	for r, cnt := range counts {
		if cnt < 0 || cnt%dt.Size() != 0 {
			return nil, fmt.Errorf("mpi: ReduceScatter count[%d]=%d invalid for %s", r, cnt, dt)
		}
		total += cnt
	}
	if sbuf != nil && len(sbuf) < total {
		return nil, fmt.Errorf("mpi: ReduceScatter send buffer %d < %d", len(sbuf), total)
	}
	if rbuf != nil && len(rbuf) < counts[c.rank] {
		return nil, fmt.Errorf("mpi: ReduceScatter recv buffer %d < %d", len(rbuf), counts[c.rank])
	}
	if p == 1 {
		if sbuf != nil && rbuf != nil {
			copy(rbuf[:total], sbuf[:total])
		}
		return nil, nil
	}
	s, err := c.startColl(CollReduceScatter,
		Selection{CommSize: p, Bytes: total, Elems: total / dt.Size()},
		collCall{sbuf: sbuf, rbuf: rbuf, counts: counts, total: total, dt: dt, op: op})
	if err != nil {
		return nil, fmt.Errorf("mpi: ReduceScatter: %w", err)
	}
	return s, nil
}

// buildReduceScatterHalving: recursive halving over rank-count-aligned
// windows.
func buildReduceScatterHalving(c *Comm, call collCall, s *collSched) error {
	sbuf, rbuf, counts, total := call.sbuf, call.rbuf, call.counts, call.total
	p := len(c.group)
	offs := c.scratchInts(p + 1)
	defer c.releaseInts(offs)
	offs[0] = 0
	for r := 0; r < p; r++ {
		offs[r+1] = offs[r] + counts[r]
	}
	var acc, tmp []byte
	if sbuf != nil {
		acc = s.scratch(total)
		copy(acc, sbuf[:total])
		tmp = s.scratch(total)
	}
	for _, st := range c.halvingSchedule(c.rank, p) {
		sLo, sHi := offs[st.SendLo], offs[st.SendHi]
		kLo, kHi := offs[st.KeepLo], offs[st.KeepHi]
		s.exchange(st.Peer, sliceOrNil(acc, sLo, sHi), sHi-sLo,
			st.Peer, sliceOrNil(tmp, kLo, kHi), kHi-kLo)
		s.reduce(sliceOrNil(acc, kLo, kHi), sliceOrNil(tmp, kLo, kHi), kHi-kLo)
	}
	if rbuf != nil && acc != nil {
		s.copyStep(rbuf[:counts[c.rank]], acc[offs[c.rank]:offs[c.rank+1]], counts[c.rank])
	}
	return nil
}

// buildReduceScatterPairwise: p-1 rounds; in round k each rank sends the
// block destined for rank+k and receives (and reduces) its own block from
// rank-k.
func buildReduceScatterPairwise(c *Comm, call collCall, s *collSched) error {
	sbuf, rbuf, counts := call.sbuf, call.rbuf, call.counts
	p := len(c.group)
	offs := c.scratchInts(p + 1)
	defer c.releaseInts(offs)
	offs[0] = 0
	for r := 0; r < p; r++ {
		offs[r+1] = offs[r] + counts[r]
	}
	mine := counts[c.rank]
	var tmp []byte
	if sbuf != nil && rbuf != nil {
		copy(rbuf[:mine], sbuf[offs[c.rank]:offs[c.rank]+mine])
		tmp = s.scratch(mine)
	}
	for k := 1; k < p; k++ {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		sLo, sHi := offs[dst], offs[dst+1]
		s.exchange(dst, sliceOrNil(sbuf, sLo, sHi), sHi-sLo, src, tmp, mine)
		s.reduce(sliceOrNil(rbuf, 0, mine), tmp, mine)
	}
	return nil
}
