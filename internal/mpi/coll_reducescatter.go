package mpi

import (
	"fmt"

	"repro/internal/collective"
)

func init() {
	registerAlgorithm(Algorithm{
		Name:       "recursive_halving",
		Collective: CollReduceScatter,
		Summary:    "recursive halving over aligned windows (power-of-two groups)",
		Applicable: func(s Selection) bool { return collective.IsPof2(s.CommSize) },
		Feasible:   func(s Selection) bool { return collective.IsPof2(s.CommSize) },
		run: func(c *Comm, call collCall) error {
			return c.reduceScatterHalving(call.sbuf, call.rbuf, call.counts, call.total, call.dt, call.op)
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "pairwise",
		Collective: CollReduceScatter,
		Summary:    "pairwise exchange-and-reduce rounds (any group)",
		Applicable: func(Selection) bool { return true },
		run: func(c *Comm, call collCall) error {
			return c.reduceScatterPairwise(call.sbuf, call.rbuf, call.counts, call.total, call.dt, call.op)
		},
	})
}

// ReduceScatterBlock reduces p equal blocks of sbuf across the ranks and
// leaves block r on rank r in rbuf; len(sbuf) == p*len(rbuf).
func (c *Comm) ReduceScatterBlock(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.ReduceScatterBlockN(sbuf, rbuf, len(rbuf), dt, op)
}

// ReduceScatterBlockN is ReduceScatterBlock with an explicit per-rank byte
// count; buffers may be nil in timing-only worlds.
func (c *Comm) ReduceScatterBlockN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: ReduceScatter block %d not a multiple of %s", n, dt)
	}
	p := len(c.group)
	counts := c.scratchInts(p)
	defer c.releaseInts(counts)
	for i := range counts {
		counts[i] = n
	}
	return c.ReduceScatterN(sbuf, rbuf, counts, dt, op)
}

// ReduceScatter reduces sbuf across ranks and scatters it by counts (bytes
// per rank, summing to len(sbuf)); rank r receives counts[r] bytes in rbuf.
func (c *Comm) ReduceScatter(sbuf, rbuf []byte, counts []int, dt DType, op Op) error {
	return c.ReduceScatterN(sbuf, rbuf, counts, dt, op)
}

// ReduceScatterN implements reduce-scatter with per-rank byte counts using
// recursive halving on power-of-two groups with block-aligned windows, and
// a pairwise exchange otherwise.
func (c *Comm) ReduceScatterN(sbuf, rbuf []byte, counts []int, dt DType, op Op) error {
	p := len(c.group)
	if len(counts) != p {
		return fmt.Errorf("mpi: ReduceScatter counts length %d != %d ranks", len(counts), p)
	}
	total := 0
	for r, cnt := range counts {
		if cnt < 0 || cnt%dt.Size() != 0 {
			return fmt.Errorf("mpi: ReduceScatter count[%d]=%d invalid for %s", r, cnt, dt)
		}
		total += cnt
	}
	if sbuf != nil && len(sbuf) < total {
		return fmt.Errorf("mpi: ReduceScatter send buffer %d < %d", len(sbuf), total)
	}
	if rbuf != nil && len(rbuf) < counts[c.rank] {
		return fmt.Errorf("mpi: ReduceScatter recv buffer %d < %d", len(rbuf), counts[c.rank])
	}
	if p == 1 {
		if sbuf != nil && rbuf != nil {
			copy(rbuf[:total], sbuf[:total])
		}
		return nil
	}
	alg, err := c.algorithm(CollReduceScatter, Selection{CommSize: p, Bytes: total, Elems: total / dt.Size()})
	if err != nil {
		return fmt.Errorf("mpi: ReduceScatter: %w", err)
	}
	if err := alg.run(c, collCall{sbuf: sbuf, rbuf: rbuf, counts: counts, total: total, dt: dt, op: op}); err != nil {
		return fmt.Errorf("mpi: ReduceScatter: %w", err)
	}
	return nil
}

// reduceScatterHalving: recursive halving over rank-count-aligned windows.
func (c *Comm) reduceScatterHalving(sbuf, rbuf []byte, counts []int, total int, dt DType, op Op) error {
	p := len(c.group)
	offs := c.scratchInts(p + 1)
	defer c.releaseInts(offs)
	offs[0] = 0
	for r := 0; r < p; r++ {
		offs[r+1] = offs[r] + counts[r]
	}
	var acc, tmp []byte
	if sbuf != nil {
		acc = c.scratch(total)
		copy(acc, sbuf[:total])
		tmp = c.scratch(total)
		defer c.release(acc, tmp)
	}
	for _, s := range c.halvingSchedule(c.rank, p) {
		sLo, sHi := offs[s.SendLo], offs[s.SendHi]
		kLo, kHi := offs[s.KeepLo], offs[s.KeepHi]
		if _, err := c.sendrecvRaw(
			sliceOrNil(acc, sLo, sHi), sHi-sLo, s.Peer, tagReduceScatter,
			sliceOrNil(tmp, kLo, kHi), kHi-kLo, s.Peer, tagReduceScatter,
		); err != nil {
			return err
		}
		c.chargeCompute(kHi - kLo)
		if acc != nil {
			if err := reduceInto(acc[kLo:kHi], tmp[kLo:kHi], dt, op); err != nil {
				return err
			}
		}
	}
	if rbuf != nil && acc != nil {
		copy(rbuf[:counts[c.rank]], acc[offs[c.rank]:offs[c.rank+1]])
	}
	return nil
}

// reduceScatterPairwise: p-1 rounds; in round k each rank sends the block
// destined for rank+k and receives (and reduces) its own block from rank-k.
func (c *Comm) reduceScatterPairwise(sbuf, rbuf []byte, counts []int, total int, dt DType, op Op) error {
	p := len(c.group)
	offs := c.scratchInts(p + 1)
	defer c.releaseInts(offs)
	offs[0] = 0
	for r := 0; r < p; r++ {
		offs[r+1] = offs[r] + counts[r]
	}
	mine := counts[c.rank]
	var tmp []byte
	if sbuf != nil && rbuf != nil {
		copy(rbuf[:mine], sbuf[offs[c.rank]:offs[c.rank]+mine])
		tmp = c.scratch(mine)
		defer c.release(tmp)
	}
	for k := 1; k < p; k++ {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		sLo, sHi := offs[dst], offs[dst+1]
		if _, err := c.sendrecvRaw(
			sliceOrNil(sbuf, sLo, sHi), sHi-sLo, dst, tagReduceScatter,
			tmp, mine, src, tagReduceScatter,
		); err != nil {
			return err
		}
		c.chargeCompute(mine)
		if rbuf != nil && tmp != nil {
			if err := reduceInto(rbuf[:mine], tmp, dt, op); err != nil {
				return err
			}
		}
	}
	return nil
}
