package mpi

// The event engine: a discrete-event executor that runs an entire
// timing-only world on one goroutine. The goroutine engine spends most of
// its large-world wall clock in scheduler handoffs — every message parks a
// rank and signals another across a mailbox — while the virtual-time
// numbers it computes depend only on message timestamps, never on real
// scheduling. The event engine exploits that: ranks become coroutines
// (iter.Pull), a binary-heap run queue orders resumptions by
// (virtual time, rank), and a rank blocked inside a compiled collective
// schedule is advanced *stacklessly* — the loop replays its remaining
// (rank, step) entries in place as messages arrive, so a whole collective
// costs two coroutine switches instead of two per message. All clock
// arithmetic, link-busy vectors, price memos and trace hooks are the same
// code the goroutine engine runs, which is what makes every virtual-time
// number bit-identical between the engines (pinned by TestEngineParity and
// the golden fixture).
//
// Two classic DES refinements keep the loop itself off the profile:
//
//   - Direct handoff: the common pattern is "deliver one message, then
//     block", which makes the just-woken peer the next rank to run. A
//     small LIFO slot ring absorbs wake bursts without touching the heap;
//     the heap remains the run queue beyond that. Run order cannot change
//     any virtual time (that is the determinism invariant above), it only
//     changes how much bookkeeping the loop pays.
//   - Precise wakeups: a blocked rank records what would unblock it (a
//     (ctx, src, tag) match or its rendezvous completion), and deliver
//     skips ranks that cannot use the new message, avoiding futile replay
//     attempts.
//   - Cut-through: a message (or a rendezvous completion report) whose
//     destination rank is parked exactly at the matching step is applied
//     to that rank's clock and cursor in place — no envelope, no queue
//     round trip. A sender about to miss can also pull a runnable
//     receiver's schedule forward to its block point first (pullForward),
//     which is what keeps whole collective rounds switch-free.
//
// The engine requires CarryData=false (enforced by NewWorld): payload
// movement is legal under it, but the data-carrying correctness suite runs
// on the goroutine engine until the event engine is extended (see
// ROADMAP.md).

import (
	"fmt"

	"repro/internal/vtime"
)

// DebugCounters, when non-nil, accumulates event-engine statistics for
// performance investigations ([0]=cut-through deliveries, [1]=mailbox
// deliveries, [3]=heap pushes, [4]=slot handoffs, [5]=heap pops,
// [6]=coroutine resumes, [7]=loop-side schedule replays). Not for
// production use.
var DebugCounters *[8]int64

// Engine selects the execution substrate of a world.
type Engine int

const (
	// EngineGoroutine runs one goroutine per rank with park/signal mailbox
	// synchronization. It is the default and the only engine validated for
	// data-carrying worlds.
	EngineGoroutine Engine = iota
	// EngineEvent runs the whole world as a sequential discrete-event
	// simulation on the calling goroutine. Timing-only worlds only;
	// virtual-time results are bit-identical to EngineGoroutine.
	EngineEvent
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineEvent:
		return "event"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine resolves an engine by name.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "goroutine":
		return EngineGoroutine, nil
	case "event":
		return EngineEvent, nil
	default:
		return 0, fmt.Errorf("mpi: unknown engine %q (have goroutine, event)", s)
	}
}

// rankState tracks where a rank is in the event loop's lifecycle.
type rankState uint8

const (
	// rankRunnable: queued in the run heap (or the handoff slot).
	rankRunnable rankState = iota
	// rankRunning: currently executing (coroutine or schedule steps).
	rankRunning
	// rankBlocked: waiting for a message or rendezvous completion; not
	// queued. A wake moves it back to rankRunnable.
	rankBlocked
	// rankDone: body returned.
	rankDone
)

// waitKind narrows which events may wake a blocked rank.
type waitKind uint8

const (
	// waitAny: any delivery into the rank's mailbox wakes it (used by
	// body-level polls like Waitany, whose pending set the loop cannot see).
	waitAny waitKind = iota
	// waitMsg: only a delivery matching (waitCtx, waitSrc, waitTag) wakes
	// it. Rendezvous completions still wake it (they are always directed).
	waitMsg
	// waitRdv: only its posted rendezvous completing wakes it.
	waitRdv
	// waitFold: parked in a symmetry-fold gather (fold.go). Only the fold
	// resolver wakes it; deliveries and rendezvous reports leave it parked
	// (a delivery lands in its mailbox and makes the gather ineligible at
	// resolve time instead).
	waitFold
)

// eventStop is the sentinel panic that unwinds a rank coroutine when the
// loop shuts down early (another rank erred and this one is still blocked).
type eventStop struct{}

// eventRank is one rank's executor state.
type eventRank struct {
	loop  *eventLoop
	proc  *Proc
	state rankState
	// wait is the rank's wake filter while rankBlocked.
	wait             waitKind
	waitCtx, waitSrc int
	waitTag          int
	// key is the rank's clock at queue time: the heap's sort key, cached so
	// sift comparisons stay one load instead of a pointer chase.
	key vtime.Micros
	// yield suspends the rank's coroutine back to the loop; next resumes
	// it; stop unwinds it. All three come from the rank's pooled worker
	// coroutine (coropool.go). finished is set by the worker when a resume
	// ran the body to its end rather than parking it — the worker then
	// idles at a yield instead of exiting, so next still reports alive.
	yield    func(struct{}) bool
	next     func() (struct{}, bool)
	stop     func()
	cw       *coroWorker
	finished bool
	// sched, when non-nil, is a blocking collective schedule the loop
	// advances stacklessly instead of resuming the coroutine; schedErr
	// carries its outcome back to the blocked driveSched call. driving
	// marks a rank whose coroutine is not suspended at a yield but buried
	// in a driveUntil frame (see below): its schedule still advances
	// through the loop, but its coroutine must not be resumed — the buried
	// frame notices completion when control unwinds back into it.
	sched    *collSched
	schedErr error
	driving  bool
	// foldDone is set by the fold resolver before waking a gathered rank:
	// true means its collective was simulated symbolically and is already
	// finished; false means the gather fell back and the rank must drive
	// its schedule normally (fold.go).
	foldDone bool
	// err is the body's result (or a recovered panic).
	err error
	set bool
}

// park suspends the rank until the loop wakes it. It must run on the
// rank's own coroutine; the loop's stackless schedule replay never parks.
// Callers that know their wake condition set the wait filter first; park
// leaves a filter set by the caller in place and resets it on resume.
func (p *Proc) park() {
	er := p.ev
	er.state = rankBlocked
	if !er.yield(struct{}{}) {
		panic(eventStop{})
	}
	er.wait = waitAny
}

// parkFor is park with a (ctx, src, tag) wake filter: only a matching
// delivery (or a rendezvous completion report) wakes the rank.
func (p *Proc) parkFor(ctx, src, tag int) {
	er := p.ev
	er.wait, er.waitCtx, er.waitSrc, er.waitTag = waitMsg, ctx, src, tag
	p.park()
}

// wants reports whether a delivery of (ctx, src, tag) can unblock the rank.
func (er *eventRank) wants(ctx, src, tag int) bool {
	switch er.wait {
	case waitMsg:
		return er.waitCtx == ctx &&
			(er.waitSrc == AnySource || er.waitSrc == src) &&
			tagMatches(er.waitTag, tag)
	case waitRdv, waitFold:
		return false
	default:
		return true
	}
}

// blockOnStep records why a handed-off schedule cannot advance and marks
// the rank blocked with the matching wake filter.
func (er *eventRank) blockOnStep(s *collSched) {
	st := &s.steps[s.pc]
	if st.op == opRecv || (st.op == opExchange && s.phase == 1) {
		er.wait, er.waitCtx, er.waitSrc, er.waitTag = waitMsg, s.c.ctx, st.peer, s.tag
	} else {
		// opWaitSend, opSend, or a draining opExchange: only the
		// handshake report helps.
		er.wait = waitRdv
	}
	er.state = rankBlocked
}

// eventLoop is the per-Run discrete-event scheduler state.
type eventLoop struct {
	w     *World
	ranks []*eventRank
	// heap is the run queue: a binary min-heap of runnable ranks keyed by
	// (virtual time, rank). A queued rank's clock cannot advance, so the
	// key is snapshotted at push time. The "step" coordinate of each event
	// lives on the rank itself: its schedule cursor (sched.pc) when a
	// collective is being replayed, its coroutine otherwise.
	heap []*eventRank
	// slots is the direct-handoff fast path: the last few woken ranks, run
	// LIFO without touching the heap. Wake bursts (an exchange completing
	// both a receive and a handshake) stay out of the heap entirely; run
	// order cannot change any virtual time.
	slots  [8]*eventRank
	nslots int
	done   int
	// ticks counts dequeue iterations; an armed world re-checks the cancel
	// flag every cancelPollMask+1 of them (cancel.go).
	ticks uint
	// fold is the in-progress symmetry-fold gather: ranks that entered an
	// eligible collective park here until every live rank has joined, then
	// one resolve simulates the whole collective per equivalence class
	// (fold.go). foldWake is the resolver's batch wake list, drained FIFO by
	// take() after the handoff slots.
	fold         foldGather
	foldWake     []*eventRank
	foldWakeHead int
}

// evBefore orders run-queue entries by (key, rank).
func evBefore(a, b *eventRank) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.proc.rank < b.proc.rank
}

// push queues a runnable rank on the heap.
func (l *eventLoop) push(er *eventRank) {
	if DebugCounters != nil {
		DebugCounters[3]++
	}
	er.key = er.proc.clock.Now()
	l.heap = append(l.heap, er)
	i := len(l.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evBefore(l.heap[i], l.heap[parent]) {
			break
		}
		l.heap[i], l.heap[parent] = l.heap[parent], l.heap[i]
		i = parent
	}
}

// pop removes the earliest runnable rank from the heap.
func (l *eventLoop) pop() *eventRank {
	h := l.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	l.heap = h[:last]
	i, n := 0, last
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && evBefore(h[right], h[left]) {
			least = right
		}
		if !evBefore(h[least], h[i]) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// wake marks a blocked rank runnable: into the handoff slot when it is
// free, onto the heap otherwise. Waking a rank that is running, already
// queued or done is a no-op.
func (l *eventLoop) wake(p *Proc) {
	er := p.ev
	if er == nil || er.state != rankBlocked || er.wait == waitFold {
		return
	}
	er.state = rankRunnable
	er.wait = waitAny
	if l.nslots < len(l.slots) {
		l.slots[l.nslots] = er
		l.nslots++
		return
	}
	l.push(er)
}

// wakeFor is wake for a delivery of (ctx, src, tag): blocked ranks whose
// wait filter rejects the message stay parked.
func (l *eventLoop) wakeFor(p *Proc, ctx, src, tag int) {
	if er := p.ev; er != nil && er.state == rankBlocked && er.wants(ctx, src, tag) {
		er.state = rankRunnable
		er.wait = waitAny
		if l.nslots < len(l.slots) {
			l.slots[l.nslots] = er
			l.nslots++
			return
		}
		l.push(er)
	}
}

// runEvent is World.Run on the event engine.
func (w *World) runEvent(body func(p *Proc) error) error {
	growEventCaches(w.size)
	if w.faults != nil {
		w.resetFaultRun()
	}
	l := &eventLoop{w: w, ranks: make([]*eventRank, w.size)}
	l.heap = make([]*eventRank, 0, w.size)
	// Procs and rank states come as two recycled slabs (slabpool.go): at
	// tens of thousands of ranks, re-clearing the previous Run's slabs is
	// far cheaper than faulting in ~200MB of fresh pages per iteration and
	// garbage-collecting them afterwards.
	overflowsAtStart := cacheOverflows.Load()
	procs, ers := takeRankSlabs(w.size)
	workers := takeCoroWorkers(w.size)
	for r := 0; r < w.size; r++ {
		p := &procs[r]
		p.world, p.rank = w, r
		er := &ers[r]
		er.loop, er.proc, er.state = l, p, rankRunnable
		p.ev = er
		l.ranks[r] = er
		w.mailboxes[r].owner = p
		w.mailboxes[r].noLock = true
		// Seed the Proc-side pending mirror: a prior errored Run of this
		// world may have left undelivered envelopes behind.
		p.mbPend = int32(w.mailboxes[r].npend)
		workers[r].bind(er, body)
		l.push(er)
	}
	defer func() {
		for _, er := range l.ranks {
			if er.state != rankDone {
				er.stop()
			}
			er.proc.ev = nil
			er.proc.harvestScheds()
		}
		releaseCoroWorkers(l.ranks)
		for _, mb := range w.mailboxes {
			mb.owner = nil
			mb.noLock = false
		}
		// Shape verdicts are keyed by invocation value (shapeKey), not by
		// schedule pointers, so foldShapes/foldNo survive the teardown:
		// harvested schedules returning to the pool cannot alias them.
		w.schedFoldStats.CacheOverflows += cacheOverflows.Load() - overflowsAtStart
		// Every pointer into the rank slabs is now severed (mailbox owners
		// above, schedule comms via harvest, per-Proc freelists die with
		// their Proc), so the slabs can serve the next Run of this size.
		putRankSlabs(procs, ers)
	}()

	// Drive until done. A drained run queue with ranks still parked is a
	// stall: a latched cancel fails every parked rank (failCanceled), a
	// fault plan with killed ranks errors-out the survivors (failStalled) —
	// both re-queue the woken ranks, which may park again in cleanup code,
	// so the resolution loops; otherwise the stall is a genuine deadlock
	// reported below.
	for {
		l.driveUntil(nil)
		if l.done >= w.size {
			break
		}
		if w.cancelRequested() && l.failCanceled() {
			continue
		}
		if !l.failStalled() {
			break
		}
	}

	for r, er := range l.ranks {
		if er.set && er.err != nil {
			return &RankError{Rank: r, Err: er.err}
		}
	}
	if l.done < w.size {
		return l.deadlockErr()
	}
	return nil
}

// take removes the next runnable rank: the handoff slot first, then the
// heap; nil when nothing is runnable.
func (l *eventLoop) take() *eventRank {
	if l.nslots > 0 {
		l.nslots--
		er := l.slots[l.nslots]
		l.slots[l.nslots] = nil
		if DebugCounters != nil {
			DebugCounters[4]++
		}
		return er
	}
	if l.foldWakeHead < len(l.foldWake) {
		er := l.foldWake[l.foldWakeHead]
		l.foldWake[l.foldWakeHead] = nil
		l.foldWakeHead++
		if l.foldWakeHead == len(l.foldWake) {
			l.foldWake = l.foldWake[:0]
			l.foldWakeHead = 0
		}
		return er
	}
	if len(l.heap) == 0 {
		return nil
	}
	if DebugCounters != nil {
		DebugCounters[5]++
	}
	return l.pop()
}

// driveUntil is the event loop itself, runnable on any stack: it pops
// runnable ranks, replays their compiled schedules in place, and resumes
// coroutines that are suspended at a yield. With a target it returns as
// soon as the target's schedule has completed (or failed, or deadlocked);
// with target nil it runs until nothing is runnable (the top level).
//
// Re-entrancy is the point: a rank whose blocking collective cannot finish
// yet calls driveUntil on its own coroutine stack instead of yielding, so
// steady-state collective traffic costs no coroutine switches at all. The
// chain of such frames unwinds in call order; a buried rank whose schedule
// completed (driving, sched nil) is never resumed from here — control
// reaches its frame when its caller's next() returns.
func (l *eventLoop) driveUntil(target *eventRank) {
	for target == nil || target.sched != nil {
		if l.w.cancelOn {
			// Cancellation poll: one counter bump per dequeue, one atomic
			// load every cancelPollMask+1 events. failCanceled unwinds the
			// parked ranks through the normal error path (cancel.go).
			if l.ticks++; l.ticks&cancelPollMask == 0 && l.w.cancelRequested() {
				l.failCanceled()
			}
		}
		er := l.take()
		if er == nil {
			// Before declaring nothing runnable, release a stalled partial
			// fold gather: its parked joiners fall back to normal execution,
			// so folding can never introduce a deadlock that the unfolded
			// engine would not have.
			if l.releaseFoldStalled() {
				continue
			}
			if target == nil {
				return
			}
			// Nothing is runnable but our collective is incomplete. Either
			// a frame buried below us holds the rank whose body must run
			// next, or the next message for us arrives only after an outer
			// caller makes progress — both need control to unwind, so
			// yield. While suspended here the rank behaves like any parked
			// rank: its schedule advances stacklessly in whichever frame
			// pops it, and the frame that completes it resumes us. A true
			// deadlock unwinds every frame the same way until the top-level
			// loop reports it.
			target.blockOnStep(target.sched)
			target.driving = false
			if !target.yield(struct{}{}) {
				panic(eventStop{})
			}
			target.driving = true
			target.wait = waitAny
			continue
		}
		er.state = rankRunning
		if s := er.sched; s != nil {
			// Replay the rank's compiled schedule in place: no coroutine
			// switch until it completes or fails.
			if DebugCounters != nil {
				DebugCounters[7]++
			}
			done, err := s.tryDrive()
			if !done && err == nil {
				er.blockOnStep(s)
				continue
			}
			er.schedErr = err
			er.sched = nil
			if er == target {
				return
			}
		}
		if er.driving {
			// Its coroutine is not suspended at a yield but buried in a
			// driveUntil frame below us (its schedule completed just now,
			// or earlier via a pull-forward or cut-through): the buried
			// frame notices when control unwinds back into it.
			continue
		}
		if DebugCounters != nil {
			DebugCounters[6]++
		}
		if _, alive := er.next(); !alive || er.finished {
			er.state = rankDone
			l.done++
		}
		// alive and not finished means the rank parked again; park already
		// marked it blocked. (A finished rank's worker idles at a yield for
		// the pool, so next reports alive even though the body is over.)
	}
}

// driveSchedEvent is driveSched under the event engine: try to run the
// schedule to completion on the rank's own stack, and if it blocks, hand
// it to the loop and drive the loop from here — the loop replays the
// remaining steps as messages arrive and this frame returns when the
// collective is over. The steps executed (and therefore every clock
// advance) are identical to the blocking drive's.
func (c *Comm) driveSchedEvent(s *collSched) error {
	if er := c.proc.ev; er.loop.foldEligible(c, s) && er.loop.foldJoin(er, s) {
		// The whole collective was simulated per equivalence class; this
		// rank's clock and link state already hold the exit values and
		// s.finish() has run.
		return nil
	}
	done, err := s.tryDrive()
	if !done && err == nil {
		er := c.proc.ev
		er.sched = s
		er.blockOnStep(s)
		wasDriving := er.driving
		er.driving = true
		er.loop.driveUntil(er)
		er.driving = wasDriving
		err = er.schedErr
		er.schedErr = nil
	}
	if err != nil {
		s.drainPending()
		s.finish()
		return err
	}
	s.finish()
	return nil
}

// completeSendEvent is completeSend's wait loop under the event engine.
// The error is a fault-plan failure: the receiver died and failStalled
// broke the park.
func (c *Comm) completeSendEvent(rdv *rendezvous) (vtime.Micros, error) {
	er := c.proc.ev
	for !rdv.ready {
		if c.proc.failure != nil {
			return 0, c.proc.failure
		}
		er.wait = waitRdv
		c.proc.park()
	}
	rdv.ready = false
	return rdv.val, nil
}

// drainDirect is cut-through completion of a rendezvous report: when the
// sender's schedule sits exactly at the drain point of the handshake being
// reported, the receiver completes that drain in place (the same clock
// advance and recycling drainStep would perform) and the sender skips a
// whole wake/replay round trip. Reports that do not line up fall back to
// the (val, ready) flags.
func (l *eventLoop) drainDirect(p *Proc, rdv *rendezvous, done vtime.Micros) bool {
	er := p.ev
	s := er.sched
	if s == nil || (er.state != rankBlocked && er.state != rankRunnable) ||
		s.pc >= len(s.steps) || s.pending != rdv {
		return false
	}
	st := &s.steps[s.pc]
	switch {
	case st.op == opWaitSend:
	case st.op == opSend && s.phase == 1:
	case st.op == opExchange && s.phase == 2:
	default:
		return false
	}
	p.clock.AdvanceTo(done)
	p.putRendezvous(rdv)
	s.pending, s.pendingSet = nil, false
	s.phase = 0
	s.pc++
	if er.state == rankBlocked {
		er.state = rankRunnable
		er.wait = waitAny
		if l.nslots < len(l.slots) {
			l.slots[l.nslots] = er
			l.nslots++
		} else {
			l.push(er)
		}
	}
	return true
}

// pullForward advances a runnable rank's handed-off schedule to its next
// blocking point, right now, on the caller's stack. A sender about to fall
// back to the mailbox calls it so that a receiver which merely has not
// been dispatched yet gets to its matching recv first — then cut-through
// applies after all. The rank stays queued (rankRunnable ⇔ queued is the
// loop invariant): its eventual pop re-runs tryDrive, which is a no-op
// retry if nothing changed, or resumes the coroutine if the schedule
// completed here. Reports whether the schedule is still active (so a
// second cut-through attempt is worthwhile).
func (l *eventLoop) pullForward(gdst int) bool {
	er := l.ranks[gdst]
	if er.state != rankRunnable || er.sched == nil {
		return false
	}
	er.state = rankRunning
	done, err := er.sched.tryDrive()
	if done || err != nil {
		er.schedErr = err
		er.sched = nil // its pop will resume the coroutine
	}
	er.state = rankRunnable
	return er.sched != nil
}

// wakeRdv wakes a rank for a rendezvous completion report. A rank whose
// wait filter says it needs a message first stays parked: the report is
// already latched in (val, ready) and will be consumed when its own
// progress reaches the drain.
func (l *eventLoop) wakeRdv(p *Proc) {
	if er := p.ev; er != nil && er.state == rankBlocked && er.wait != waitMsg && er.wait != waitFold {
		er.state = rankRunnable
		er.wait = waitAny
		if l.nslots < len(l.slots) {
			l.slots[l.nslots] = er
			l.nslots++
			return
		}
		l.push(er)
	}
}

// deliverDirect is cut-through delivery: when the destination rank is
// blocked at exactly the matching recv step of a loop-driven schedule, the
// sender completes that receive in place — same clock arithmetic, same
// trace record, same order as the mailbox path would produce — and skips
// the envelope/ring round trip entirely. This is the event engine's
// per-message fast path; anything that does not match falls back to the
// mailbox. src and gsrc are the sender's communicator and world ranks.
func (l *eventLoop) deliverDirect(gdst, src, gsrc, tag, ctx, size int, data []byte,
	arrival, wire, recvOver vtime.Micros, rdv *rendezvous) bool {
	er := l.ranks[gdst]
	s := er.sched
	if s == nil || (er.state != rankBlocked && er.state != rankRunnable) || s.pc >= len(s.steps) {
		return false
	}
	if er.state == rankRunnable && !l.srcBucketEmpty(gdst, ctx, src) {
		// A runnable rank has not polled its mailbox for this step yet: if
		// anything from this source is queued there, an earlier message
		// with the same (source, tag) could be ahead, and cutting through
		// would overtake it. (A parked rank polled and missed immediately
		// before blocking, so nothing can be ahead of this message.)
		return false
	}
	// The schedule's current step must be exactly this message's receive.
	st := &s.steps[s.pc]
	if !(st.op == opRecv || (st.op == opExchange && s.phase == 1)) ||
		s.c.ctx != ctx || st.peer != src || s.tag != tag {
		return false
	}
	if size > st.n {
		return false // would truncate: the mailbox path raises the error
	}
	if DebugCounters != nil {
		DebugCounters[0]++
	}
	// The receiver is parked at this recv: run finishRecv's arithmetic on
	// its clock, here and now.
	rp := er.proc
	if rdv == nil {
		rp.clock.AdvanceTo(arrival)
	} else {
		done := vtime.Max(rdv.senderReady, rp.clock.Now()) + wire
		rp.clock.AdvanceTo(done)
		// The sender is the current runner: hand it the completion report
		// directly, no wake needed.
		rdv.val, rdv.ready = done, true
	}
	rp.clock.Advance(recvOver)
	if data != nil && st.dst != nil {
		copy(st.dst[:size], data[:size])
	}
	if t := l.w.cfg.Trace; t != nil {
		t.record(Event{
			Kind: EventRecv, Rank: rp.rank, Peer: gsrc, Tag: tag, Bytes: size,
			Link: l.w.link(rp.rank, gsrc), Time: rp.clock.Now(), Eager: rdv == nil,
		})
	}
	if st.op == opExchange {
		s.phase = 2 // received; the drain half still runs on the rank
	} else {
		s.pc++
	}
	if er.state == rankBlocked {
		er.state = rankRunnable
		er.wait = waitAny
		if l.nslots < len(l.slots) {
			l.slots[l.nslots] = er
			l.nslots++
		} else {
			l.push(er)
		}
	}
	// A rank that was already queued runnable stays queued; its next
	// replay continues past the completed step.
	return true
}
