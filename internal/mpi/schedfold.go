package mpi

// Schedule folding: the class-level compile-and-replay layer in front of
// symmetry folding (fold.go). PR 6's fold removed per-rank *simulation* of
// symmetric collectives but kept per-rank *bookkeeping*: every rank still
// drew, compiled-or-replayed and scrubbed its own collSched per invocation
// before the fold gate even looked at it, and at 64Ki ranks that per-rank
// schedule lifecycle dominated the profile. This file moves the fold
// boundary to the schedule lifecycle itself:
//
//   - At collective entry (startColl / barrierStart), an eligible rank does
//     not compile anything. It records the invocation key — (collective,
//     bytes, root, dtype, op, collective sequence number) — and returns the
//     schedFoldPending sentinel; the blocking drive joins the event loop's
//     gather with that key instead of a schedule object.
//   - The resolver compares keys (p integer compares), looks the shape up in
//     a value-keyed per-world cache, and simulates the whole invocation per
//     equivalence class exactly as fold.go always did. One schedule *shape*
//     and one set of per-class replay cursors exist per invocation key;
//     no per-rank collSched is ever materialized on this path.
//   - The first time a shape key is seen in the process, the resolver
//     compiles one probe schedule per rank (streaming, into one reused
//     buffer), verifies uniformity exactly the way the schedule-level fold
//     did, and publishes the analyzed structure to a process-wide cache
//     keyed by (algorithm, comm size, invocation shape, link signature) —
//     so subsequent worlds of the same sweep pay only a per-class re-pricing
//     pass, never a compile.
//   - Anything irregular — mismatched keys across ranks, unfoldable shapes,
//     sub-communicators, pending traffic, outstanding nonblocking
//     collectives, fault plans — falls back: the gathered ranks materialize
//     per-rank schedules through the unchanged replay path
//     (compileReplayColl) and drive them per rank. Fallback is the exact
//     PR 6 per-rank execution, so schedule folding can only change speed,
//     never a number (the fold parity suite pins this with the knob both
//     ways).
//
// Config.DisableSchedFold (CLI -schedfold=false) restores the PR 6
// behavior: per-rank compile/replay first, schedule-level gather after.

import (
	"sync"
	"sync/atomic"

	"repro/internal/topology"
)

// shapeKey identifies one collective invocation shape on the world
// communicator (context 0 is implied by eligibility).
type shapeKey struct {
	coll Collective
	n    int
	root int
	dt   DType
	op   Op
}

// foldKey is the per-invocation gather key: the shape plus the
// communicator's collective sequence number, which every member agrees on
// (collective calls are collectively ordered). Key equality across all
// ranks proves they are entering the same invocation of the same
// collective.
type foldKey struct {
	shape shapeKey
	seq   int
}

// foldPending carries a deferred collective invocation from startColl to
// the blocking drive (or to collRequest, which materializes immediately:
// a nonblocking post must never park in a gather — overlap semantics
// depend on returning to the caller).
type foldPending struct {
	key  foldKey
	sel  Selection
	call collCall
}

// schedFoldPending is the sentinel startColl returns instead of a compiled
// schedule when the invocation is eligible for schedule folding. driveSched
// routes it to schedFoldDrive; collRequest materializes it.
var schedFoldPending = new(collSched)

// SchedFoldStats counts schedule-folding outcomes on a world's event
// engine, alongside the simulation-level FoldStats.
type SchedFoldStats struct {
	// GatherHits counts collective invocations resolved entirely at class
	// level: no rank compiled, replayed or scrubbed a schedule object.
	GatherHits int64
	// Fallbacks counts key gathers that fell back to per-rank schedules
	// (mismatched keys, unfoldable shape, raced-in traffic, or a stalled
	// partial gather released by the safety valve).
	Fallbacks int64
	// ClassesCompiled counts equivalence classes compiled by probe shape
	// analysis (process-wide structure-cache misses attributed to this
	// world).
	ClassesCompiled int64
	// StructHits counts shape lookups served by the process-wide structure
	// cache: the world re-priced a cached structure instead of compiling
	// any schedule.
	StructHits int64
	// CacheOverflows counts process-wide schedule/step/structure cache
	// budget overflows observed while this world ran (advisory: parallel
	// worlds share the process-wide counter).
	CacheOverflows int64
}

// SchedFoldStats returns the world's schedule-folding counters. Advisory:
// schedule folding is bit-identical to per-rank execution.
func (w *World) SchedFoldStats() SchedFoldStats { return w.schedFoldStats }

// cacheOverflows counts, process-wide, every time a bounded cross-world
// cache (the schedStore freelist, the shared stepCache, or the fold
// structure cache) refused an insert because its byte budget was full.
// A nonzero count over a huge-world sweep means reuse silently reverted to
// per-run rebuilds; scripts/bench.sh fails loudly on it.
var cacheOverflows atomic.Int64

// CacheOverflowCount returns the process-wide count of cross-world cache
// budget overflows (schedule store, step cache, fold structure cache).
func CacheOverflowCount() int64 { return cacheOverflows.Load() }

// schedFoldEligible is the cheap per-rank pre-check run at collective entry,
// mirroring the schedule-level foldEligible: only full-world, context-0,
// buffer-free invocations on untraced, fault-free worlds with an empty
// mailbox and no outstanding nonblocking collectives may defer compilation.
func (l *eventLoop) schedFoldEligible(c *Comm, sk shapeKey) bool {
	w := l.w
	if !w.schedFoldOK || c.ctx != 0 || len(c.group) != w.size ||
		len(c.proc.activeScheds) != 0 {
		return false
	}
	if c.proc.mbPend != 0 {
		return false
	}
	if len(w.foldNo) != 0 {
		if _, no := w.foldNo[sk]; no {
			return false
		}
	}
	return true
}

// schedFoldDrive is the blocking drive of a deferred collective: join the
// key gather; on a fold the clock and link state already hold the exit
// values (and the collective sequence advanced), so there is nothing left
// to do. On fallback, materialize the per-rank schedule through the normal
// replay path and drive it — the exact PR 6 execution.
func (c *Comm) schedFoldDrive() error {
	pend := &c.proc.foldPend
	er := c.proc.ev
	if er.loop.foldJoinKey(er, pend) {
		return nil
	}
	s, err := c.materializePending(pend)
	if err != nil {
		return err
	}
	if s == nil {
		return nil
	}
	return c.driveSchedEvent(s)
}

// materializePending compiles the per-rank schedule of a deferred
// invocation (fallback path, and every nonblocking post).
func (c *Comm) materializePending(pend *foldPending) (*collSched, error) {
	if pend.key.shape.coll == collBarrier {
		return c.compileBarrierSched(), nil
	}
	return c.compileReplayColl(pend.key.shape.coll, pend.sel, pend.call)
}

// foldStructKey identifies an analyzed schedule structure independently of
// any world: the selected algorithm (a stable registry pointer capturing
// the collective and the tuning decision), the world size, the invocation
// shape, and the placement's link signature. Identical keys compile to
// identical step structures and identical equivalence classes; message
// prices are per-world (model, PyMode) and recomputed on every hit.
type foldStructKey struct {
	alg     *Algorithm
	p       int
	n       int
	root    int
	dt      DType
	op      Op
	linkSig uint64
}

// foldStructCache shares analyzed shapes across worlds (sync.Map: sweeps
// run worlds in parallel). Entries are immutable *foldShape templates with
// nil costs/parts; negative results (ok=false) are cached too, so a sweep
// probes an unfoldable shape once per process, not once per world.
var foldStructCache sync.Map

// foldStructBytes bounds the structure cache the way stepCacheBytes bounds
// the step cache; overflowing inserts are skipped (and counted), the
// per-world shape cache still works.
var foldStructBytes atomic.Int64

const foldStructMaxBytes = 256 << 20

// foldStructFootprint estimates the retained bytes of a cached structure.
func foldStructFootprint(sh *foldShape) int64 {
	b := int64(256) + int64(len(sh.class))*4 + int64(len(sh.steps))*16 +
		int64(len(sh.reps)+len(sh.identIdx)+len(sh.slotDeltas))*4
	per := int64(len(sh.steps)) * 4
	b += int64(len(sh.sendCls)+len(sh.recvCls)+len(sh.repN)+len(sh.repSendN)) * (per + 24)
	b += int64(len(sh.dom))*4 + int64(len(sh.domLink))*8
	return b
}

// resolveFoldAlg resolves the algorithm a deferred invocation would have
// selected; only needed on a shape-cache miss (the steady state never
// walks the policy).
func resolveFoldAlg(c *Comm, sk shapeKey, sel Selection) (*Algorithm, error) {
	if sk.coll == collBarrier {
		return barrierAlg, nil
	}
	return c.algorithm(sk.coll, sel)
}

// buildFoldShapeProbe resolves a shape-cache miss for a key gather: fetch
// the analyzed structure from the process-wide cache (verifying the link
// tables exactly — the signature is a hash) or compile one probe schedule
// per rank and analyze them, then attach this world's price tables.
func (l *eventLoop) buildFoldShapeProbe(sk shapeKey, pend *foldPending) *foldShape {
	w := l.w
	c0 := l.ranks[0].proc.CommWorld()
	alg, err := resolveFoldAlg(c0, sk, pend.sel)
	if err != nil || alg == nil || alg.build == nil {
		return &foldShape{}
	}
	key := foldStructKey{alg: alg, p: w.size, n: sk.n, root: sk.root,
		dt: sk.dt, op: sk.op, linkSig: w.linkSig}
	if v, ok := foldStructCache.Load(key); ok {
		tmpl := v.(*foldShape)
		if foldI32Equal(tmpl.dom, w.dom) && foldLinksEqual(tmpl.domLink, w.domLink) {
			w.schedFoldStats.StructHits++
			if !tmpl.ok {
				return tmpl
			}
			shw := *tmpl
			shw.costs = w.foldCostsFor(&shw)
			shw.parts = nil
			return &shw
		}
		// A signature collision between distinct placements: build for this
		// world without fighting over the cache slot.
	}
	sh := l.probeAndAnalyze(alg, pend.call)
	w.schedFoldStats.ClassesCompiled += int64(sh.nclass)
	tmpl := *sh
	tmpl.costs, tmpl.parts = nil, nil
	tmpl.dom, tmpl.domLink = w.dom, w.domLink
	if fp := foldStructFootprint(&tmpl); foldStructBytes.Add(fp) <= foldStructMaxBytes {
		foldStructCache.LoadOrStore(key, &tmpl)
	} else {
		foldStructBytes.Add(-fp)
		cacheOverflows.Add(1)
	}
	return sh
}

// probeAndAnalyze compiles every rank's schedule for the deferred call into
// a reused probe buffer (streaming — rank r's steps are consumed before
// rank r+1 compiles) and runs the uniformity analysis on them. No pool, no
// tag, no replay cache is touched: the probes exist only to prove the
// shape, exactly as the gathered schedules did for the schedule-level fold.
func (l *eventLoop) probeAndAnalyze(alg *Algorithm, call collCall) *foldShape {
	w := l.w
	var probe collSched
	bad := false
	compile := func(r int) []collStep {
		cr := l.ranks[r].proc.CommWorld()
		probe.c = cr
		probe.steps = probe.steps[:0]
		probe.dt, probe.op = call.dt, call.op
		if err := alg.build(cr, call, &probe); err != nil {
			bad = true
			return nil
		}
		if len(probe.bufs) != 0 || len(probe.ints) != 0 {
			// The builder drew staging storage: its steps reference world
			// memory and can never fold. Release and refuse.
			for i, b := range probe.bufs {
				cr.proc.arena.put(b)
				probe.bufs[i] = nil
			}
			probe.bufs = probe.bufs[:0]
			for i, b := range probe.ints {
				cr.proc.arena.putInts(b)
				probe.ints[i] = nil
			}
			probe.ints = probe.ints[:0]
			bad = true
			return nil
		}
		return probe.steps
	}
	steps0 := compile(0)
	if bad {
		return &foldShape{}
	}
	steps0 = append([]collStep(nil), steps0...)
	fx := foldExtractSteps(w.size, steps0, func(r int) []collStep {
		if r == 0 {
			return steps0
		}
		s := compile(r)
		if bad {
			return nil
		}
		return s
	})
	if fx == nil {
		return &foldShape{}
	}
	return buildFoldShapeFx(w, fx)
}

func foldLinksEqual(a, b []topology.LinkClass) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
