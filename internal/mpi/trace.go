package mpi

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/topology"
	"repro/internal/vtime"
)

// Tracing: an optional event recorder that captures every message the
// runtime moves, with virtual timestamps and link classification. Traces
// support the analysis workflows a benchmark-suite user needs -- how many
// messages a collective generated, how many bytes crossed each link class,
// where the virtual time went -- and are exercised by the test suite to
// validate the collective algorithms' message complexity.

// EventKind classifies a trace event.
type EventKind int

// Trace event kinds.
const (
	EventSend EventKind = iota
	EventRecv
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventRecv:
		return "recv"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one traced message endpoint.
type Event struct {
	Kind EventKind
	// Rank is the world rank recording the event.
	Rank int
	// Peer is the world rank on the other end.
	Peer int
	// Tag is the message tag (internal collective tags are above
	// MaxUserTag).
	Tag int
	// Bytes is the message payload size.
	Bytes int
	// Link is the classified path between the endpoints.
	Link topology.LinkClass
	// Time is the rank's virtual clock after the operation.
	Time vtime.Micros
	// Eager reports the protocol used.
	Eager bool
}

// Internal reports whether the event belongs to collective-internal
// traffic rather than an application point-to-point call.
func (e Event) Internal() bool { return e.Tag > MaxUserTag }

// Trace accumulates events from all ranks of a world. Safe for concurrent
// use; attach with Config.Trace.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace creates an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events, ordered by virtual time
// (ties broken by rank then kind for determinism).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Reset discards all events.
func (t *Trace) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = t.events[:0]
}

// Summary aggregates a trace.
type Summary struct {
	Messages      int
	Bytes         int64
	ByLink        map[topology.LinkClass]int
	BytesByLink   map[topology.LinkClass]int64
	InternalMsgs  int // collective-internal messages
	EagerMsgs     int
	RendezvousMsg int
	// Makespan is the latest event timestamp.
	Makespan vtime.Micros
}

// Summarize computes the aggregate view over send events (each message is
// counted once, at its sender).
func (t *Trace) Summarize() Summary {
	s := Summary{
		ByLink:      map[topology.LinkClass]int{},
		BytesByLink: map[topology.LinkClass]int64{},
	}
	for _, e := range t.Events() {
		if e.Time > s.Makespan {
			s.Makespan = e.Time
		}
		if e.Kind != EventSend {
			continue
		}
		s.Messages++
		s.Bytes += int64(e.Bytes)
		s.ByLink[e.Link]++
		s.BytesByLink[e.Link] += int64(e.Bytes)
		if e.Internal() {
			s.InternalMsgs++
		}
		if e.Eager {
			s.EagerMsgs++
		} else {
			s.RendezvousMsg++
		}
	}
	return s
}

// String renders the summary.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "messages: %d (%d internal, %d eager, %d rendezvous), bytes: %d, makespan: %v\n",
		s.Messages, s.InternalMsgs, s.EagerMsgs, s.RendezvousMsg, s.Bytes, s.Makespan)
	links := make([]topology.LinkClass, 0, len(s.ByLink))
	for l := range s.ByLink {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, l := range links {
		fmt.Fprintf(&sb, "  %-16s %8d msgs %12d bytes\n", l, s.ByLink[l], s.BytesByLink[l])
	}
	return sb.String()
}
