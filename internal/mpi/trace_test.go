package mpi

import (
	"strings"
	"testing"

	"repro/internal/collective"
	"repro/internal/netmodel"
	"repro/internal/topology"
)

// tracedWorld builds a world with a trace attached.
func tracedWorld(t *testing.T, n, ppn int) (*World, *Trace) {
	t.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, n, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	w, err := NewWorld(Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData: true,
		Trace:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, tr
}

func TestTraceRecordsBothEndpoints(t *testing.T) {
	w, tr := tracedWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(make([]byte, 64), 1, 5)
		}
		_, err := c.Recv(make([]byte, 64), 0, 5)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("events: %d, want 2", len(events))
	}
	send, recv := events[0], events[1]
	if send.Kind != EventSend || recv.Kind != EventRecv {
		t.Errorf("kinds %v %v", send.Kind, recv.Kind)
	}
	if send.Rank != 0 || send.Peer != 1 || recv.Rank != 1 || recv.Peer != 0 {
		t.Errorf("endpoints wrong: %+v %+v", send, recv)
	}
	if send.Bytes != 64 || send.Tag != 5 || !send.Eager || send.Internal() {
		t.Errorf("send attrs wrong: %+v", send)
	}
	if send.Link != topology.LinkSameSocket {
		t.Errorf("link %v", send.Link)
	}
	if recv.Time < send.Time {
		t.Error("recv must not precede send in virtual time")
	}
}

// TestTraceCollectiveMessageComplexity validates the algorithms' message
// counts against theory using the trace.
func TestTraceCollectiveMessageComplexity(t *testing.T) {
	cases := []struct {
		name string
		p    int
		n    int
		run  func(c *Comm, n int) error
		want func(p int) int // expected number of messages
	}{
		{
			name: "barrier dissemination",
			p:    8, n: 0,
			run:  func(c *Comm, n int) error { return c.Barrier() },
			want: func(p int) int { return p * collective.Log2Ceil(p) },
		},
		{
			name: "bcast binomial",
			p:    8, n: 1024,
			run:  func(c *Comm, n int) error { return c.BcastN(nil, n, 0) },
			want: func(p int) int { return p - 1 },
		},
		{
			name: "allreduce recursive doubling pof2",
			p:    8, n: 1024,
			run: func(c *Comm, n int) error {
				return c.AllreduceN(nil, nil, n, Float64, OpSum)
			},
			want: func(p int) int { return p * collective.Log2Ceil(p) },
		},
		{
			name: "allgather ring large",
			p:    8, n: 64 * 1024,
			run: func(c *Comm, n int) error {
				return c.AllgatherN(nil, n, nil)
			},
			want: func(p int) int { return p * (p - 1) },
		},
		{
			name: "alltoall pairwise large",
			p:    8, n: 4 * 1024,
			run: func(c *Comm, n int) error {
				return c.AlltoallN(nil, n, nil)
			},
			want: func(p int) int { return p * (p - 1) },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			w, tr := tracedWorld(t, tc.p, 4)
			err := w.Run(func(p *Proc) error {
				return tc.run(p.CommWorld(), tc.n)
			})
			if err != nil {
				t.Fatal(err)
			}
			got := tr.Summarize().Messages
			if want := tc.want(tc.p); got != want {
				t.Errorf("messages = %d, want %d", got, want)
			}
		})
	}
}

func TestTraceSummary(t *testing.T) {
	w, tr := tracedWorld(t, 4, 2) // 2 nodes x 2 ranks
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		// One intra-node and one inter-node message.
		switch p.Rank() {
		case 0:
			if err := c.Send(make([]byte, 100), 1, 1); err != nil { // same node
				return err
			}
			return c.Send(make([]byte, 200*1024), 2, 1) // inter node, rendezvous
		case 1:
			_, err := c.Recv(make([]byte, 100), 0, 1)
			return err
		case 2:
			_, err := c.Recv(make([]byte, 200*1024), 0, 1)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Messages != 2 || s.Bytes != 100+200*1024 {
		t.Errorf("summary %+v", s)
	}
	if s.EagerMsgs != 1 || s.RendezvousMsg != 1 {
		t.Errorf("protocol split %d/%d", s.EagerMsgs, s.RendezvousMsg)
	}
	if s.ByLink[topology.LinkSameSocket] != 1 || s.ByLink[topology.LinkInterNode] != 1 {
		t.Errorf("link split %v", s.ByLink)
	}
	if s.Makespan <= 0 {
		t.Error("makespan missing")
	}
	out := s.String()
	for _, want := range []string{"messages: 2", "inter-node", "same-socket"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary render misses %q:\n%s", want, out)
		}
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Error("Reset should clear events")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.record(Event{}) // must not panic
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send([]byte{1}, 1, 1)
		}
		_, err := c.Recv(make([]byte, 1), 0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
