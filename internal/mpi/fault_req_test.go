package mpi

import (
	"errors"
	"strings"
	"testing"
)

// Request-completion semantics under failure: Waitall/Waitany/Testany must
// handle empty slices, propagate errors in request order, and recycle every
// completed Request into the rank's pool.

// TestRequestOpsEmptySlices pins the inactive/empty-slice behaviour of the
// request-set operations (MPI_UNDEFINED analogue).
func TestRequestOpsEmptySlices(t *testing.T) {
	if err := Waitall(nil); err != nil {
		t.Fatalf("Waitall(nil) = %v", err)
	}
	if i, _, err := Waitany(nil); i != -1 || err != nil {
		t.Fatalf("Waitany(nil) = %d, %v", i, err)
	}
	if i, _, err := Testany(nil); i != -1 || err != nil {
		t.Fatalf("Testany(nil) = %d, %v", i, err)
	}
	if done, err := Testall(nil); !done || err != nil {
		t.Fatalf("Testall(nil) = %v, %v", done, err)
	}
	// Slices of nil/harvested requests are equally inactive.
	reqs := []*Request{nil, {pooled: true, comm: nil}}
	if i, _, err := Waitany(reqs); i != -1 || err != nil {
		t.Fatalf("Waitany(inactive) = %d, %v", i, err)
	}
	if i, _, err := Testany(reqs); i != -1 || err != nil {
		t.Fatalf("Testany(inactive) = %d, %v", i, err)
	}
}

// TestRequestErrorPropagation kills rank 1 at its first barrier and drives
// rank 0's receives from it through Waitall/Waitany/Testany: the requests
// complete with RankFailedError (in request order, no hang) and every
// Request object returns to the rank's freelist.
func TestRequestErrorPropagation(t *testing.T) {
	for _, cfg := range faultConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			w := faultWorld(t, cfg.engine, cfg.disableFold, 2, 1, "kill:rank=1,after=0:barrier")
			var waitallErr, waitanyErr error
			var anyIdx, testIdx int
			var pooledOK, freelistOK bool
			err := w.Run(func(p *Proc) error {
				c := p.CommWorld()
				if p.Rank() == 1 {
					if err := c.Barrier(); err == nil {
						t.Error("rank 1 barrier survived its kill rule")
					}
					return nil
				}
				free0 := len(p.reqFree)
				r0, err := c.IrecvN(nil, 16, 1, 3)
				if err != nil {
					return err
				}
				r1, err := c.IrecvN(nil, 16, 1, 4)
				if err != nil {
					return err
				}
				reqs := []*Request{r0, r1}
				waitallErr = Waitall(reqs)
				// Both requests are now harvested; the set is inactive.
				anyIdx, _, waitanyErr = Waitany(reqs)
				testIdx, _, _ = Testany(reqs)
				pooledOK = r0.pooled && r1.pooled
				freelistOK = len(p.reqFree) >= free0+2
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var failed *RankFailedError
			if !errors.As(waitallErr, &failed) {
				t.Fatalf("Waitall error = %v, want RankFailedError", waitallErr)
			}
			if len(failed.Failed) != 1 || failed.Failed[0] != 1 {
				t.Fatalf("Waitall blames %v, want [1]", failed.Failed)
			}
			if !strings.Contains(waitallErr.Error(), "Waitall request 0") {
				t.Fatalf("Waitall error %q does not name request 0", waitallErr)
			}
			if anyIdx != -1 || waitanyErr != nil {
				t.Fatalf("Waitany after harvest = %d, %v", anyIdx, waitanyErr)
			}
			if testIdx != -1 {
				t.Fatalf("Testany after harvest = %d", testIdx)
			}
			if !pooledOK {
				t.Fatal("a completed Request was not harvested")
			}
			if !freelistOK {
				t.Fatal("completed Requests leaked out of the freelist")
			}
		})
	}
}

// TestWaitanyFailurePropagation parks a rank inside Waitany over receives
// that can never complete and checks the stall detector errors the poll out
// instead of spinning forever.
func TestWaitanyFailurePropagation(t *testing.T) {
	for _, cfg := range faultConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			w := faultWorld(t, cfg.engine, cfg.disableFold, 2, 1, "kill:rank=1,after=0:barrier")
			var idx int
			var waitErr error
			err := w.Run(func(p *Proc) error {
				c := p.CommWorld()
				if p.Rank() == 1 {
					_ = c.Barrier()
					return nil
				}
				r0, err := c.IrecvN(nil, 16, 1, 3)
				if err != nil {
					return err
				}
				r1, err := c.IrecvN(nil, 16, 1, 4)
				if err != nil {
					return err
				}
				idx, _, waitErr = Waitany([]*Request{r0, r1})
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if idx != -1 {
				t.Fatalf("Waitany = %d, want -1", idx)
			}
			var failed *RankFailedError
			if !errors.As(waitErr, &failed) {
				t.Fatalf("Waitany error = %v, want RankFailedError", waitErr)
			}
		})
	}
}

// TestIsendWaitToDeadRank checks the rendezvous-send Wait path: a large
// Isend to a dead rank must complete with RankFailedError.
func TestIsendWaitToDeadRank(t *testing.T) {
	for _, cfg := range faultConfigs {
		t.Run(cfg.name, func(t *testing.T) {
			w := faultWorld(t, cfg.engine, cfg.disableFold, 2, 1, "kill:rank=1,after=0:barrier")
			var waitErr error
			err := w.Run(func(p *Proc) error {
				c := p.CommWorld()
				if p.Rank() == 1 {
					_ = c.Barrier()
					return nil
				}
				r, err := c.IsendN(nil, 256*1024, 1, 3)
				if err != nil {
					return err
				}
				_, waitErr = r.Wait()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var failed *RankFailedError
			if !errors.As(waitErr, &failed) {
				t.Fatalf("Wait error = %v, want RankFailedError", waitErr)
			}
			if failed.Collective != "" || failed.Step != -1 {
				t.Fatalf("point-to-point failure mislabeled: %+v", failed)
			}
		})
	}
}
