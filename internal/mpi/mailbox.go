package mpi

import (
	"runtime"
	"sync"

	"repro/internal/vtime"
)

// This file implements the indexed, allocation-free mailbox at the heart of
// the message engine. Senders are identified at post time, so pending
// messages are bucketed by (context, source): the common exact-match receive
// scans only the messages pending from that one source, while wildcard
// receives (AnySource) pick the earliest-delivered match across buckets by
// delivery sequence number — reproducing the old single-queue FIFO scan
// exactly, envelope for envelope. Buckets are growable ring buffers (O(1)
// head removal, shorter-side shift on mid-queue extraction), and envelopes
// and payload staging buffers are recycled through per-mailbox freelists, so
// steady-state traffic allocates nothing.

// envelope is a message in flight. Eager messages carry their payload copy
// and arrival timestamp; rendezvous messages carry a handshake. Envelopes
// are owned by the receiving mailbox's freelist: deliver draws one under the
// mailbox lock and the receiver hands it back (with its payload) on its next
// mailbox operation.
type envelope struct {
	src, tag, ctx int
	size          int
	seq           uint64       // mailbox-local delivery order
	data          []byte       // payload copy (eager, CarryData worlds)
	arrival       vtime.Micros // eager arrival instant
	rdv           *rendezvous  // non-nil for rendezvous messages
	// wire and recvOver are the receive-side costs, priced once by the
	// sender (the cost model is symmetric in the endpoints) so the receiver
	// does not re-run link classification and pricing per message.
	wire, recvOver vtime.Micros
}

// envRing is a FIFO of envelopes on a growable circular buffer whose
// capacity is always a power of two (indexing masks instead of dividing).
// Removal keeps delivery order; extracting from the middle (tag mismatch
// ahead of the match) shifts whichever side is shorter.
type envRing struct {
	buf        []*envelope
	head, size int
}

func (r *envRing) at(i int) *envelope { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *envRing) push(e *envelope) {
	if r.size == len(r.buf) {
		grown := make([]*envelope, max(8, 2*len(r.buf)))
		for i := 0; i < r.size; i++ {
			grown[i] = r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = e
	r.size++
}

// removeAt extracts the i-th queued envelope.
func (r *envRing) removeAt(i int) {
	mask := len(r.buf) - 1
	if i < r.size-1-i {
		for k := i; k > 0; k-- {
			r.buf[(r.head+k)&mask] = r.buf[(r.head+k-1)&mask]
		}
		r.buf[r.head] = nil
		r.head = (r.head + 1) & mask
	} else {
		for k := i; k < r.size-1; k++ {
			r.buf[(r.head+k)&mask] = r.buf[(r.head+k+1)&mask]
		}
		r.buf[(r.head+r.size-1)&mask] = nil
	}
	r.size--
}

// srcQueues holds one context's pending messages indexed by sender rank.
// Small worlds use a dense per-source array (one load per lookup); huge
// worlds index through a tiny inline store backed by a map, because a dense
// array per mailbox costs O(size^2) aggregate memory while a rank's working
// set of senders is only O(log size) for collective traffic — and the first
// few inline slots cover nearly all of it without a map allocation. A
// source lives in the inline store or the map, never both: inserts go
// inline until it fills, then overflow to the map.
type srcQueues struct {
	bySrc    []envRing
	nsmall   int8
	smallSrc [srcSmallMax]int32
	small    [srcSmallMax]envRing
	byMap    map[int32]*envRing
}

// srcSmallMax covers a binomial-tree rank's full sender set (its parent
// plus the children that beat cut-through delivery) in the inline store.
const srcSmallMax = 4

// denseSrcMax bounds the worlds whose mailboxes use the dense per-source
// index.
const denseSrcMax = 2048

// mailbox is the per-rank message store with tag matching. Mailboxes are
// laid out as one slab per world (NewWorld) with the condvar inline, so a
// huge world costs one allocation, not two per rank.
type mailbox struct {
	mu   sync.Mutex
	cond sync.Cond // cond.L points at mu; set once at world construction
	seq  uint64
	// owner is the receiving rank's Proc, bound for the duration of an
	// event-engine run (nil otherwise). It routes deliver's wakeup through
	// the event loop instead of the condvar; noLock mirrors it so the
	// mutex elision check is one load on the hot path (everything in an
	// event-engine world happens on the one goroutine running the loop).
	owner  *Proc
	noLock bool
	// waiting marks the owner rank as parked in match/peek; deliver only
	// pays for Signal when somebody is actually listening.
	waiting bool
	// npend counts queued envelopes across every bucket. The event engine's
	// symmetry folding needs "is this mailbox completely empty" in O(1) at
	// gather time (fold.go); it is maintained at deliver and at every
	// removal point in take.
	npend int
	// size is the world size: every bucket index allocates its by-source
	// queues at full size immediately, so the hot ring() path never grows.
	size int
	// ctxs indexes pending messages by communicator context id. It grows
	// with the highest context ever used and is not reclaimed: contexts in
	// this runtime are few and long-lived (CommWorld plus the occasional
	// Dup/Split), and an empty srcQueues is just the index itself. Context
	// 0 (CommWorld, effectively all benchmark traffic) lives inline, with
	// an init flag standing in for the index's nil check.
	ctxs     []*srcQueues
	ctx0     srcQueues
	ctx0init bool

	// freelists, guarded by mu: consumed envelopes and the payload staging
	// buffers they carried (the byte half of a scratchArena, sharing its
	// power-of-two capacity classes). The first few envelopes come from
	// inline seed storage and recycle through inline slots — mailboxes are
	// slab-allocated per world, and steady-state collective traffic rarely
	// has more than a couple of envelopes in flight per mailbox, so the
	// heap freelist is overflow only.
	envSeedN int8
	envFreeN int8
	envSeed  [2]envelope
	envFreeA [4]*envelope
	envFree  []*envelope
	pay      scratchArena
}

// lock/unlock guard the mailbox under the goroutine engine and compile to
// a branch under the single-threaded event engine.
func (mb *mailbox) lock() {
	if !mb.noLock {
		mb.mu.Lock()
	}
}

func (mb *mailbox) unlock() {
	if !mb.noLock {
		mb.mu.Unlock()
	}
}

// queues returns the context's queue index, creating it on first use; the
// world-communicator context lives inline in the mailbox.
func (mb *mailbox) queues(ctx int) *srcQueues {
	if ctx == 0 {
		q := &mb.ctx0
		if !mb.ctx0init {
			if mb.size <= denseSrcMax {
				q.bySrc = make([]envRing, mb.size)
			}
			mb.ctx0init = true
		}
		return q
	}
	for len(mb.ctxs) <= ctx {
		mb.ctxs = append(mb.ctxs, nil)
	}
	q := mb.ctxs[ctx]
	if q == nil {
		q = &srcQueues{}
		if mb.size <= denseSrcMax {
			q.bySrc = make([]envRing, mb.size)
		}
		mb.ctxs[ctx] = q
	}
	return q
}

// lookup returns the context's queue index, nil when the context has never
// queued a message.
func (mb *mailbox) lookup(ctx int) *srcQueues {
	if ctx == 0 {
		if !mb.ctx0init {
			return nil
		}
		return &mb.ctx0
	}
	if ctx >= len(mb.ctxs) {
		return nil
	}
	return mb.ctxs[ctx]
}

// ring returns the (ctx, src) bucket, growing the indexes as needed.
func (mb *mailbox) ring(ctx, src int) *envRing {
	q := mb.queues(ctx)
	if q.bySrc != nil {
		return &q.bySrc[src]
	}
	for i := 0; i < int(q.nsmall); i++ {
		if q.smallSrc[i] == int32(src) {
			return &q.small[i]
		}
	}
	if int(q.nsmall) < srcSmallMax {
		i := q.nsmall
		q.smallSrc[i] = int32(src)
		q.nsmall++
		return &q.small[i]
	}
	if q.byMap == nil {
		q.byMap = make(map[int32]*envRing, 16)
	}
	r := q.byMap[int32(src)]
	if r == nil {
		r = &envRing{}
		q.byMap[int32(src)] = r
	}
	return r
}

// srcBucketEmpty reports whether nothing from src is pending in gdst's
// mailbox for ctx — the FIFO-safety condition of the event engine's
// cut-through delivery to a runnable rank.
func (l *eventLoop) srcBucketEmpty(gdst, ctx, src int) bool {
	mb := l.w.mailboxes[gdst]
	q := mb.lookup(ctx)
	if q == nil {
		return true
	}
	if q.bySrc != nil {
		return q.bySrc[src].size == 0
	}
	for i := 0; i < int(q.nsmall); i++ {
		if q.smallSrc[i] == int32(src) {
			return q.small[i].size == 0
		}
	}
	r := q.byMap[int32(src)]
	return r == nil || r.size == 0
}

// deliver queues a message. When data is non-nil the payload is staged into
// a pooled buffer (the copy is the receive side's only view of the bytes,
// so the sender may reuse data immediately); the staged buffer lands on the
// envelope for eager messages and on the handshake for rendezvous ones.
// The copy itself runs outside the mailbox lock so concurrent senders to
// one rank overlap their copies instead of serializing on the mutex. wire
// and recvOver are the receive-side costs priced by the sender.
func (mb *mailbox) deliver(src, tag, ctx, size int, data []byte, arrival, wire, recvOver vtime.Micros, rdv *rendezvous) {
	var payload []byte
	if data != nil {
		mb.lock()
		payload = mb.pay.getRaw(size) // fully overwritten by the copy below
		mb.unlock()
		copy(payload, data[:size])
	}
	if DebugCounters != nil {
		DebugCounters[1]++
	}
	mb.lock()
	e := mb.getEnvelope()
	e.src, e.tag, e.ctx, e.size = src, tag, ctx, size
	e.seq = mb.seq
	e.arrival, e.wire, e.recvOver = arrival, wire, recvOver
	e.rdv = rdv
	if rdv != nil {
		rdv.payload = payload
	} else {
		e.data = payload
	}
	mb.seq++
	mb.ring(ctx, src).push(e)
	mb.npend++
	if o := mb.owner; o != nil {
		o.mbPend = int32(mb.npend)
	}
	wake := mb.waiting
	mb.unlock()
	if o := mb.owner; o != nil && o.ev != nil {
		// Event engine: a delivery is the wake event for a rank blocked on
		// this mailbox (receive, probe, or a replayed schedule's recv step)
		// — unless its wait filter says the message cannot unblock it.
		o.ev.loop.wakeFor(o, ctx, src, tag)
		return
	}
	// Each rank is single-threaded, so a mailbox never has more than one
	// waiter (its owner rank): Signal suffices, and only when it is parked.
	if wake {
		mb.cond.Signal()
	}
}

// tryMatch removes and returns a queued message matching (src, tag, ctx),
// or nil when none is pending — the non-blocking probe the incremental
// collective engine and Request.Test poll with. A previously consumed
// envelope is recycled under the lock even when nothing matches.
func (mb *mailbox) tryMatch(src, tag, ctx int, recycle *envelope) *envelope {
	mb.lock()
	defer mb.unlock()
	if recycle != nil {
		mb.pay.put(recycle.data)
		recycle.data = nil
		mb.putEnvelope(recycle)
	}
	return mb.take(src, tag, ctx)
}

// match blocks until a message matching (src, tag, ctx) is queued and
// removes it. Matching is FIFO per (source, tag) pair, which together with
// single-threaded ranks gives MPI's non-overtaking guarantee. A previously
// consumed envelope may be passed in for recycling under the same lock.
// Under a fault plan match can return nil: the rank this receive depends
// on is dead and the stall detector broke the wait (queued messages are
// always consumed before the failure check, so a satisfiable match never
// reports failure).
func (mb *mailbox) match(p *Proc, src, tag, ctx int, recycle *envelope) *envelope {
	mb.lock()
	defer mb.unlock()
	if recycle != nil {
		mb.pay.put(recycle.data)
		recycle.data = nil
		mb.putEnvelope(recycle)
	}
	if o := mb.owner; o != nil && o.ev != nil {
		// Event engine: park the rank's coroutine; the next delivery that
		// can satisfy the match wakes it.
		for {
			if e := mb.take(src, tag, ctx); e != nil {
				return e
			}
			if o.failure != nil {
				return nil
			}
			o.parkFor(ctx, src, tag)
		}
	}
	wd := p.world.wd
	yielded := false
	for {
		if e := mb.take(src, tag, ctx); e != nil {
			return e
		}
		if p.failure != nil {
			return nil
		}
		if wd != nil && wd.failedNow() {
			return nil
		}
		if p.world.cancelRequested() {
			// The run was canceled: report no match, the caller's
			// parkFailure turns it into a CanceledError. The flag is
			// re-checked under mb.mu before every park, and cancelNow's
			// signal pass takes the same lock, so the wakeup cannot be
			// missed.
			return nil
		}
		// Yield once before parking: the sender this rank is waiting on is
		// usually runnable, so handing it the CPU gets the message queued
		// without paying for a full park/wakeup cycle. Park only when the
		// yield did not help.
		if !yielded {
			yielded = true
			mb.mu.Unlock()
			runtime.Gosched()
			mb.mu.Lock()
			continue
		}
		if wd != nil {
			// Registration happens under mb.mu, and so does the stall
			// declaration's wake pass, so a Signal can never slip between
			// the registration and the Wait.
			wd.enterMsg(p.rank, src, tag, ctx)
			mb.waiting = true
			mb.cond.Wait()
			mb.waiting = false
			wd.exit(p.rank)
		} else {
			mb.waiting = true
			mb.cond.Wait()
			mb.waiting = false
		}
	}
}

// peek blocks until a message matching (src, tag, ctx) is queued and
// returns it without removing it. Like match, peek returns nil when the
// stall detector declares failure while the rank is parked.
func (mb *mailbox) peek(p *Proc, src, tag, ctx int) *envelope {
	mb.lock()
	defer mb.unlock()
	wd := p.world.wd
	for {
		if _, ring, i := mb.find(src, tag, ctx); ring != nil {
			return ring.at(i)
		}
		if p.failure != nil {
			return nil
		}
		if o := mb.owner; o != nil && o.ev != nil {
			o.parkFor(ctx, src, tag)
			continue
		}
		if wd != nil && wd.failedNow() {
			return nil
		}
		if p.world.cancelRequested() {
			return nil
		}
		if wd != nil {
			wd.enterMsg(p.rank, src, tag, ctx)
			mb.waiting = true
			mb.cond.Wait()
			mb.waiting = false
			wd.exit(p.rank)
		} else {
			mb.waiting = true
			mb.cond.Wait()
			mb.waiting = false
		}
	}
}

// take removes and returns the earliest-delivered match, or nil.
func (mb *mailbox) take(src, tag, ctx int) *envelope {
	// Fast path: an exact-source receive whose bucket head matches, the
	// shape of essentially all collective traffic (per-(source, tag) FIFO
	// means the expected message is at the head once it has arrived).
	if src != AnySource {
		if q := mb.lookup(ctx); q != nil && q.bySrc != nil && src < len(q.bySrc) {
			ring := &q.bySrc[src]
			if ring.size > 0 {
				if e := ring.buf[ring.head]; tagMatches(tag, e.tag) {
					ring.buf[ring.head] = nil
					ring.head = (ring.head + 1) & (len(ring.buf) - 1)
					ring.size--
					mb.dropPend()
					return e
				}
			}
			// Head mismatch: scan this bucket the slow way.
			for i := 0; i < ring.size; i++ {
				if e := ring.at(i); tagMatches(tag, e.tag) {
					ring.removeAt(i)
					mb.dropPend()
					return e
				}
			}
			return nil
		}
	}
	e, ring, i := mb.find(src, tag, ctx)
	if ring != nil {
		ring.removeAt(i)
		mb.dropPend()
	}
	return e
}

// dropPend decrements the pending count, keeping the owning rank's Proc
// mirror (Proc.mbPend, read by the fold eligibility checks) in sync.
func (mb *mailbox) dropPend() {
	mb.npend--
	if o := mb.owner; o != nil {
		o.mbPend = int32(mb.npend)
	}
}

// tagMatches reports whether a posted receive tag accepts an envelope tag.
// AnyTag is a user-level wildcard: it never matches collective-internal
// traffic (tags above MaxUserTag), so wildcard receives cannot steal a
// concurrent collective's messages.
func tagMatches(want, have int) bool {
	if want == AnyTag {
		return have <= MaxUserTag
	}
	return want == have
}

// find locates the earliest-delivered matching envelope. For an exact
// source that is the first tag match in one bucket; for AnySource it is the
// lowest delivery seq among every bucket's first tag match, which is
// exactly the envelope the old single-queue scan would have returned.
func (mb *mailbox) find(src, tag, ctx int) (*envelope, *envRing, int) {
	q := mb.lookup(ctx)
	if q == nil {
		return nil, nil, 0
	}
	if src != AnySource {
		var ring *envRing
		if q.bySrc != nil {
			if src >= len(q.bySrc) {
				return nil, nil, 0
			}
			ring = &q.bySrc[src]
		} else {
			for i := 0; i < int(q.nsmall); i++ {
				if q.smallSrc[i] == int32(src) {
					ring = &q.small[i]
					break
				}
			}
			if ring == nil {
				if ring = q.byMap[int32(src)]; ring == nil {
					return nil, nil, 0
				}
			}
		}
		for i := 0; i < ring.size; i++ {
			if e := ring.at(i); tagMatches(tag, e.tag) {
				return e, ring, i
			}
		}
		return nil, nil, 0
	}
	var (
		best     *envelope
		bestRing *envRing
		bestIdx  int
	)
	// The earliest-delivered match has the lowest seq regardless of the
	// order buckets are visited in, so map iteration order is harmless.
	scan := func(ring *envRing) {
		for i := 0; i < ring.size; i++ {
			e := ring.at(i)
			if !tagMatches(tag, e.tag) {
				continue
			}
			if best == nil || e.seq < best.seq {
				best, bestRing, bestIdx = e, ring, i
			}
			break // a bucket's first match is its earliest
		}
	}
	if q.bySrc != nil {
		for s := range q.bySrc {
			scan(&q.bySrc[s])
		}
	} else {
		for i := 0; i < int(q.nsmall); i++ {
			scan(&q.small[i])
		}
		for _, ring := range q.byMap {
			scan(ring)
		}
	}
	return best, bestRing, bestIdx
}

func (mb *mailbox) getEnvelope() *envelope {
	if n := mb.envFreeN; n > 0 {
		mb.envFreeN--
		e := mb.envFreeA[n-1]
		mb.envFreeA[n-1] = nil
		return e
	}
	if n := len(mb.envFree); n > 0 {
		e := mb.envFree[n-1]
		mb.envFree = mb.envFree[:n-1]
		return e
	}
	if mb.envSeedN < int8(len(mb.envSeed)) {
		e := &mb.envSeed[mb.envSeedN]
		mb.envSeedN++
		return e
	}
	return &envelope{}
}

// putEnvelope recycles a consumed envelope, preferring the inline slots.
// The caller holds the mailbox lock.
func (mb *mailbox) putEnvelope(e *envelope) {
	if n := mb.envFreeN; n < int8(len(mb.envFreeA)) {
		mb.envFreeA[n] = e
		mb.envFreeN++
		return
	}
	mb.envFree = append(mb.envFree, e)
}
