package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestIsendIrecvBasic(t *testing.T) {
	w := testWorld(t, 2, 2)
	const n = 128
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			req, err := c.Isend(pattern(0, n), 1, 7)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if !req.Done() {
				return errors.New("request not done after Wait")
			}
			return nil
		}
		buf := make([]byte, n)
		req, err := c.Irecv(buf, 0, 7)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Count != n {
			return fmt.Errorf("status %+v", st)
		}
		if !bytes.Equal(buf, pattern(0, n)) {
			return errors.New("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowOfIsendsLikeOsuBw(t *testing.T) {
	// The osu_bw pattern: a window of nonblocking sends, acknowledged.
	w := testWorld(t, 2, 1)
	const window, n = 16, 4096
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			reqs := make([]*Request, window)
			for i := range reqs {
				r, err := c.Isend(pattern(i, n), 1, 2)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			if err := Waitall(reqs); err != nil {
				return err
			}
			_, err := c.Recv(make([]byte, 4), 1, 3)
			return err
		}
		reqs := make([]*Request, window)
		bufs := make([][]byte, window)
		for i := range reqs {
			bufs[i] = make([]byte, n)
			r, err := c.Irecv(bufs[i], 0, 2)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		if err := Waitall(reqs); err != nil {
			return err
		}
		for i, buf := range bufs {
			if !bytes.Equal(buf, pattern(i, n)) {
				return fmt.Errorf("window message %d corrupted", i)
			}
		}
		return c.Send(make([]byte, 4), 0, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendRendezvousOverlap(t *testing.T) {
	// Two overlapping rendezvous isends both complete under Waitall even
	// when the peer posts its receives in reverse tag order.
	w := testWorld(t, 2, 1)
	const n = 128 * 1024
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			r1, err := c.Isend(pattern(1, n), 1, 1)
			if err != nil {
				return err
			}
			r2, err := c.Isend(pattern(2, n), 1, 2)
			if err != nil {
				return err
			}
			return Waitall([]*Request{r1, r2})
		}
		b2 := make([]byte, n)
		if _, err := c.Recv(b2, 0, 2); err != nil {
			return err
		}
		b1 := make([]byte, n)
		if _, err := c.Recv(b1, 0, 1); err != nil {
			return err
		}
		if !bytes.Equal(b1, pattern(1, n)) || !bytes.Equal(b2, pattern(2, n)) {
			return errors.New("rendezvous payloads corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestValidation(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if _, err := c.Isend(nil, 5, 0); err == nil {
			return errors.New("Isend to invalid rank should fail")
		}
		if _, err := c.Irecv(nil, 0, -2); err == nil {
			return errors.New("Irecv with negative tag should fail")
		}
		var nilReq *Request
		if _, err := nilReq.Wait(); err == nil {
			return errors.New("Wait on nil request should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitIsIdempotent(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			req, err := c.Isend([]byte{1}, 1, 1)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			_, err = req.Wait() // second Wait is a no-op
			return err
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(buf, 0, 1)
		if err != nil {
			return err
		}
		st1, err := req.Wait()
		if err != nil {
			return err
		}
		st2, err := req.Wait()
		if err != nil {
			return err
		}
		if st1 != st2 {
			return fmt.Errorf("idempotent Wait changed status: %+v vs %+v", st1, st2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
