package mpi

// Tuning is the threshold half of the algorithm-selection Policy: the
// Applicable predicates of the registered algorithms (see registry.go)
// compare these fields against the Selection, like MVAPICH2's MV2_*
// environment knobs parameterise its tuning tables. The defaults mirror
// the library's shipped tables; the ablation benchmarks override
// individual knobs to quantify each design choice (DESIGN.md section 4).
// Zero fields keep the defaults. Negative values disable an algorithm:
// for the *Max* fields the bounded algorithm can never be selected
// (e.g. AllgatherRDMaxTotal: -1 forces Bruck or ring); for the *Min*
// fields every size is at or above the switch point, so the small-message
// algorithm is disabled wherever the large one is applicable
// (e.g. BcastScatterRingMin: -1 disables the binomial tree on >2 ranks).
type Tuning struct {
	// BcastScatterRingMin is the message size at which Bcast switches from
	// the binomial tree to scatter + ring allgather.
	BcastScatterRingMin int
	// AllreduceRabenseifnerMin is the size at which Allreduce switches
	// from recursive doubling to Rabenseifner.
	AllreduceRabenseifnerMin int
	// AllgatherRDMaxTotal bounds recursive-doubling allgather (power-of-two
	// groups) by total payload.
	AllgatherRDMaxTotal int
	// AllgatherBruckMaxTotal bounds Bruck allgather by total payload.
	AllgatherBruckMaxTotal int
	// AlltoallBruckMaxBlock bounds Bruck alltoall by per-block size.
	AlltoallBruckMaxBlock int
}

// DefaultTuning returns the shipped thresholds.
func DefaultTuning() Tuning {
	return Tuning{
		BcastScatterRingMin:      bcastLargeMin,
		AllreduceRabenseifnerMin: allreduceRabenseifnerMin,
		AllgatherRDMaxTotal:      allgatherRDMaxTotal,
		AllgatherBruckMaxTotal:   allgatherBruckMaxTotal,
		AlltoallBruckMaxBlock:    alltoallBruckMaxBlock,
	}
}

// withDefaults fills zero fields with the shipped values.
func (t Tuning) withDefaults() Tuning {
	d := DefaultTuning()
	if t.BcastScatterRingMin == 0 {
		t.BcastScatterRingMin = d.BcastScatterRingMin
	}
	if t.AllreduceRabenseifnerMin == 0 {
		t.AllreduceRabenseifnerMin = d.AllreduceRabenseifnerMin
	}
	if t.AllgatherRDMaxTotal == 0 {
		t.AllgatherRDMaxTotal = d.AllgatherRDMaxTotal
	}
	if t.AllgatherBruckMaxTotal == 0 {
		t.AllgatherBruckMaxTotal = d.AllgatherBruckMaxTotal
	}
	if t.AlltoallBruckMaxBlock == 0 {
		t.AlltoallBruckMaxBlock = d.AlltoallBruckMaxBlock
	}
	return t
}

// tuning returns the world's effective thresholds.
func (p *Proc) tuning() Tuning { return p.world.policy.Tuning }
