package mpi

import "fmt"

// Vector-variant collectives (Gatherv, Scatterv, Allgatherv, Alltoallv),
// compiled as schedules like every other collective. Like MPICH and
// MVAPICH2, these use linear algorithms: with per-rank counts the tree
// optimisations give little and the reference implementations keep them
// linear, so the benchmark shapes match. Counts and displacements are in
// bytes. Buffers may be nil in timing-only worlds.

func checkVector(counts, displs []int, p int, what string) error {
	if len(counts) != p {
		return fmt.Errorf("mpi: %s counts length %d != %d ranks", what, len(counts), p)
	}
	if displs != nil && len(displs) != p {
		return fmt.Errorf("mpi: %s displs length %d != %d ranks", what, len(displs), p)
	}
	for r, cnt := range counts {
		if cnt < 0 {
			return fmt.Errorf("mpi: %s count[%d]=%d negative", what, r, cnt)
		}
	}
	return nil
}

// contiguousDispls derives displacements for nil displs (packed layout).
func contiguousDispls(counts []int) []int {
	displs := make([]int, len(counts))
	off := 0
	for r, cnt := range counts {
		displs[r] = off
		off += cnt
	}
	return displs
}

// Gatherv gathers counts[r] bytes from rank r into rbuf at displs[r] on
// root. Non-root ranks may pass nil rbuf/counts only if they also pass their
// send size via sbuf. displs == nil means packed layout.
func (c *Comm) Gatherv(sbuf []byte, rbuf []byte, counts, displs []int, root int) error {
	if err := c.checkRank(root, "Gatherv root"); err != nil {
		return err
	}
	p := len(c.group)
	s := c.getSched()
	if c.rank != root {
		s.send(root, sbuf, len(sbuf))
		return c.driveSched(s)
	}
	if err := checkVector(counts, displs, p, "Gatherv"); err != nil {
		s.finish()
		return err
	}
	if displs == nil {
		displs = contiguousDispls(counts)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[displs[root]:displs[root]+counts[root]], sbuf[:counts[root]])
	}
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		s.recv(r, sliceOrNil(rbuf, displs[r], displs[r]+counts[r]), counts[r])
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Gatherv: %w", err)
	}
	return nil
}

// GathervN is Gatherv for timing-only worlds: the non-root send size is
// explicit so sbuf may be nil.
func (c *Comm) GathervN(n int, rbuf []byte, counts, displs []int, root int) error {
	if err := c.checkRank(root, "Gatherv root"); err != nil {
		return err
	}
	p := len(c.group)
	s := c.getSched()
	if c.rank != root {
		s.send(root, nil, n)
		return c.driveSched(s)
	}
	if err := checkVector(counts, displs, p, "Gatherv"); err != nil {
		s.finish()
		return err
	}
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		s.recv(r, nil, counts[r])
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Gatherv: %w", err)
	}
	return nil
}

// Scatterv scatters counts[r] bytes at displs[r] of sbuf on root to rank r's
// rbuf. displs == nil means packed layout.
func (c *Comm) Scatterv(sbuf []byte, counts, displs []int, rbuf []byte, root int) error {
	if err := c.checkRank(root, "Scatterv root"); err != nil {
		return err
	}
	p := len(c.group)
	s := c.getSched()
	if c.rank != root {
		s.recv(root, rbuf, len(rbuf))
		if err := c.driveSched(s); err != nil {
			return fmt.Errorf("mpi: Scatterv: %w", err)
		}
		return nil
	}
	if err := checkVector(counts, displs, p, "Scatterv"); err != nil {
		s.finish()
		return err
	}
	if displs == nil {
		displs = contiguousDispls(counts)
	}
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		s.send(r, sliceOrNil(sbuf, displs[r], displs[r]+counts[r]), counts[r])
	}
	if sbuf != nil && rbuf != nil {
		s.copyStep(rbuf[:counts[root]], sbuf[displs[root]:displs[root]+counts[root]], counts[root])
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Scatterv: %w", err)
	}
	return nil
}

// ScattervN is Scatterv for timing-only worlds: the root sends counts[r]
// bytes to each rank and non-roots receive n bytes, all without payloads.
func (c *Comm) ScattervN(counts []int, n, root int) error {
	if err := c.checkRank(root, "Scatterv root"); err != nil {
		return err
	}
	p := len(c.group)
	s := c.getSched()
	if c.rank != root {
		s.recv(root, nil, n)
		if err := c.driveSched(s); err != nil {
			return fmt.Errorf("mpi: Scatterv: %w", err)
		}
		return nil
	}
	if err := checkVector(counts, nil, p, "Scatterv"); err != nil {
		s.finish()
		return err
	}
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		s.send(r, nil, counts[r])
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Scatterv: %w", err)
	}
	return nil
}

// Allgatherv gathers counts[r] bytes from rank r to every rank at displs[r].
// Implemented, as in the reference MPI libraries, as a ring of p-1 rounds so
// each round forwards one rank's (variable-sized) block.
func (c *Comm) Allgatherv(sbuf []byte, rbuf []byte, counts, displs []int) error {
	p := len(c.group)
	if err := checkVector(counts, displs, p, "Allgatherv"); err != nil {
		return err
	}
	if displs == nil {
		displs = contiguousDispls(counts)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[displs[c.rank]:displs[c.rank]+counts[c.rank]], sbuf[:counts[c.rank]])
	}
	if p == 1 {
		return nil
	}
	s := c.getSched()
	sendTo := (c.rank + 1) % p
	recvFrom := (c.rank - 1 + p) % p
	have := c.rank
	for step := 0; step < p-1; step++ {
		want := (have - 1 + p) % p
		s.exchange(sendTo, sliceOrNil(rbuf, displs[have], displs[have]+counts[have]), counts[have],
			recvFrom, sliceOrNil(rbuf, displs[want], displs[want]+counts[want]), counts[want])
		have = want
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Allgatherv: %w", err)
	}
	return nil
}

// Alltoallv exchanges scounts[r] bytes at sdispls[r] of sbuf with every rank
// r, receiving rcounts[r] bytes at rdispls[r] of rbuf, via pairwise rounds.
func (c *Comm) Alltoallv(sbuf []byte, scounts, sdispls []int, rbuf []byte, rcounts, rdispls []int) error {
	p := len(c.group)
	if err := checkVector(scounts, sdispls, p, "Alltoallv send"); err != nil {
		return err
	}
	if err := checkVector(rcounts, rdispls, p, "Alltoallv recv"); err != nil {
		return err
	}
	if sdispls == nil {
		sdispls = contiguousDispls(scounts)
	}
	if rdispls == nil {
		rdispls = contiguousDispls(rcounts)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[rdispls[c.rank]:rdispls[c.rank]+rcounts[c.rank]],
			sbuf[sdispls[c.rank]:sdispls[c.rank]+scounts[c.rank]])
	}
	if p == 1 {
		return nil
	}
	s := c.getSched()
	for k := 1; k < p; k++ {
		dst := (c.rank + k) % p
		src := (c.rank - k + p) % p
		s.exchange(dst, sliceOrNil(sbuf, sdispls[dst], sdispls[dst]+scounts[dst]), scounts[dst],
			src, sliceOrNil(rbuf, rdispls[src], rdispls[src]+rcounts[src]), rcounts[src])
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Alltoallv: %w", err)
	}
	return nil
}
