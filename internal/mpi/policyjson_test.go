package mpi

import (
	"encoding/json"
	"strings"
	"testing"
)

// selectionGrid spans the decision space the predicates consult: comm
// sizes around the feasibility edges (power of two and not), sizes
// around every shipped threshold.
func selectionGrid() []Selection {
	var grid []Selection
	for _, p := range []int{2, 3, 4, 16, 63, 224, 256} {
		for _, bytes := range []int{4, 512, 1024, 4096, 32768, 131072, 262144, 524288, 1 << 20, 4 << 20} {
			grid = append(grid, Selection{CommSize: p, Bytes: bytes, Elems: bytes / 4})
		}
	}
	return grid
}

// decisions renders every selection decision the policy makes on the
// grid, or the error it returns, as a comparable string.
func decisions(t *testing.T, p Policy) string {
	t.Helper()
	var sb strings.Builder
	for _, coll := range Collectives() {
		for _, sel := range selectionGrid() {
			a, err := p.Select(coll, sel)
			if err != nil {
				sb.WriteString("error: " + err.Error() + "\n")
				continue
			}
			sb.WriteString(string(coll) + "/" + a.Name + "\n")
		}
	}
	return sb.String()
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	policies := map[string]Policy{
		"defaults": {},
		"shifted": {Tuning: Tuning{
			AllreduceRabenseifnerMin: 4096,
			BcastScatterRingMin:      65536,
			AlltoallBruckMaxBlock:    8192,
		}},
		"disabled": {Tuning: Tuning{AllgatherRDMaxTotal: -1, AllgatherBruckMaxTotal: -1}},
		"forced": {
			Tuning: Tuning{AllreduceRabenseifnerMin: 2048},
			Forced: map[Collective]string{CollAllgather: "ring", CollAlltoall: "pairwise"},
		},
		"aliased": {Forced: map[Collective]string{CollAllreduce: "raben"}},
	}
	for name, p := range policies {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(p)
			if err != nil {
				t.Fatal(err)
			}
			var got Policy
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatalf("decoding %s: %v", data, err)
			}
			if want, have := decisions(t, p), decisions(t, got); want != have {
				t.Errorf("round-tripped policy selects differently\nwant:\n%s\ngot:\n%s", want, have)
			}
			// Encoding is canonical: a second trip is byte-identical.
			again, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(again) != string(data) {
				t.Errorf("re-encoded policy differs:\n%s\n%s", data, again)
			}
		})
	}
}

// TestPolicyJSONGolden pins the wire form: explicit effective thresholds,
// canonical forced names, stable key names.
func TestPolicyJSONGolden(t *testing.T) {
	p := Policy{
		Tuning: Tuning{AllreduceRabenseifnerMin: 2048},
		Forced: map[Collective]string{CollAllgather: "ring"},
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "tuning": {
    "bcast_scatter_ring_min": 524288,
    "allreduce_rabenseifner_min": 2048,
    "allgather_rd_max_total": 262144,
    "allgather_bruck_max_total": 131072,
    "alltoall_bruck_max_block": 1024
  },
  "forced": {
    "allgather": "ring"
  }
}`
	if string(data) != want {
		t.Errorf("golden policy JSON changed:\n%s\nwant:\n%s", data, want)
	}
}

func TestPolicyJSONRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":      `{"tuning":{"bcast_scatter_ring_min":1},"extra":1}`,
		"unknown collective": `{"tuning":{},"forced":{"gather":"ring"}}`,
		"unknown algorithm":  `{"tuning":{},"forced":{"allgather":"hypercube"}}`,
		"wrong type":         `{"tuning":{"bcast_scatter_ring_min":"big"}}`,
	}
	for name, in := range cases {
		var p Policy
		if err := json.Unmarshal([]byte(in), &p); err == nil {
			t.Errorf("%s: decode of %s should fail", name, in)
		}
	}
}

func TestTuningTable(t *testing.T) {
	table := &TuningTable{
		Comment: "test",
		Entries: []TuningTableEntry{
			{Ranks: 224, PPN: 56, Policy: Policy{Forced: map[Collective]string{CollAlltoall: "pairwise"}}},
			{Ranks: 16, PPN: 1, Policy: Policy{Tuning: Tuning{AllreduceRabenseifnerMin: 4096}}},
		},
	}
	if err := table.Validate(); err != nil {
		t.Fatal(err)
	}
	table.Sort()
	if table.Entries[0].Ranks != 16 {
		t.Errorf("Sort should order by ranks, got %d first", table.Entries[0].Ranks)
	}
	data, err := json.MarshalIndent(table, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTuningTable(data)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := got.Lookup(16, 1)
	if !ok || p.Tuning.AllreduceRabenseifnerMin != 4096 {
		t.Errorf("Lookup(16,1) = %+v, %v", p, ok)
	}
	if _, ok := got.Lookup(16, 2); ok {
		t.Error("Lookup should miss on unlisted placement")
	}
	if _, ok := got.Lookup(224, 56); !ok {
		t.Error("Lookup(224,56) should hit")
	}

	dup := &TuningTable{Entries: []TuningTableEntry{{Ranks: 16, PPN: 1}, {Ranks: 16, PPN: 1}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate placement should fail validation")
	}
	if _, err := ParseTuningTable([]byte(`{"entries":[{"ranks":1,"ppn":1,"policy":{"tuning":{}}}]}`)); err == nil {
		t.Error("1-rank entry should fail validation")
	}
	if _, err := ParseTuningTable([]byte(`{"entries":[],"surprise":true}`)); err == nil {
		t.Error("unknown table field should be rejected")
	}
}
