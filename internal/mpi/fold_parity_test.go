package mpi

import (
	"fmt"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Fold-parity suite: symmetry folding is a pure execution optimisation, so
// a folded run must report bit-identical virtual clocks to the same world
// with folding disabled — including workloads built to break the symmetry
// the fold depends on (sub-communicator halves, forced algorithm mixes,
// a straggler rank with private compute skew). Each case also pins which
// side of the fold/fallback split actually executed, so a silent "always
// fall back" regression cannot pass as parity.

// runFoldParity runs body on an event-engine world and returns every
// rank's final clock plus the world's fold counters (both levels).
func runFoldParity(t *testing.T, ranks, ppn int, disableFold, disableSchedFold bool, algorithms map[Collective]string, body func(p *Proc) error) ([]vtime.Micros, FoldStats, SchedFoldStats) {
	t.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement:        place,
		Model:            netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData:        false,
		Engine:           EngineEvent,
		DisableFold:      disableFold,
		DisableSchedFold: disableSchedFold,
		Algorithms:       algorithms,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := make([]vtime.Micros, ranks)
	err = w.Run(func(p *Proc) error {
		if err := body(p); err != nil {
			return err
		}
		end[p.Rank()] = p.Wtime()
		return nil
	})
	if err != nil {
		t.Fatalf("fold=%v schedfold=%v: %v", !disableFold, !disableSchedFold, err)
	}
	return end, w.FoldStats(), w.SchedFoldStats()
}

// assertFoldParity runs body three ways — per-rank execution, the
// schedule-level gather (schedule folding disabled), and full schedule
// folding — and fails on any clock divergence; it returns the fully folded
// run's counters at both levels for the caller to pin.
func assertFoldParity(t *testing.T, ranks, ppn int, algorithms map[Collective]string, body func(p *Proc) error) (FoldStats, SchedFoldStats) {
	t.Helper()
	want, offStats, _ := runFoldParity(t, ranks, ppn, true, true, algorithms, body)
	mid, _, midSF := runFoldParity(t, ranks, ppn, false, true, algorithms, body)
	got, stats, sf := runFoldParity(t, ranks, ppn, false, false, algorithms, body)
	if offStats.Folded != 0 {
		t.Errorf("DisableFold world still folded %d invocations", offStats.Folded)
	}
	if midSF != (SchedFoldStats{}) {
		t.Errorf("DisableSchedFold world still touched schedule folding: %+v", midSF)
	}
	for r := 0; r < ranks; r++ {
		if mid[r] != want[r] {
			t.Errorf("rank %d: virtual end time diverged: fold-off %v, sched-gather %v",
				r, want[r], mid[r])
		}
		if got[r] != want[r] {
			t.Errorf("rank %d: virtual end time diverged: fold-off %v, schedule-folded %v",
				r, want[r], got[r])
		}
	}
	return stats, sf
}

// TestFoldParitySymmetric pins the happy path: a fully symmetric world-comm
// workload must actually fold (not silently fall back) and agree with
// per-rank execution bit for bit.
func TestFoldParitySymmetric(t *testing.T) {
	for _, shape := range [][2]int{{16, 1}, {8, 4}, {64, 8}} {
		ranks, ppn := shape[0], shape[1]
		t.Run(fmt.Sprintf("%dx%d", ranks, ppn), func(t *testing.T) {
			stats, sf := assertFoldParity(t, ranks, ppn, nil, func(p *Proc) error {
				c := p.CommWorld()
				for i := 0; i < 3; i++ {
					if err := c.AllreduceN(nil, nil, 16*1024, Float32, OpSum); err != nil {
						return err
					}
				}
				return c.Barrier()
			})
			if stats.Folded == 0 {
				t.Errorf("symmetric workload never folded: %+v", stats)
			}
			// A fully symmetric world-comm workload must resolve every
			// invocation at class level — no per-rank schedule may have been
			// compiled, replayed or fallen back to.
			if sf.GatherHits == 0 || sf.Fallbacks != 0 {
				t.Errorf("symmetric workload not fully schedule-folded: %+v", sf)
			}
			// Shapes come from a probe compile on first sight or from the
			// process-wide structure cache afterwards; both count.
			if sf.ClassesCompiled+sf.StructHits == 0 {
				t.Errorf("schedule-folded run resolved no shape: %+v", sf)
			}
		})
	}
}

// TestFoldParitySplitHalves drives collectives over interleaved Split
// halves of a 63x7 world: odd size, non-power-of-two halves, and two
// communicators taking turns. The engine may fold whatever symmetry
// survives, but the clocks must match per-rank execution exactly.
func TestFoldParitySplitHalves(t *testing.T) {
	stats, _ := assertFoldParity(t, 63, 7, nil, func(p *Proc) error {
		c := p.CommWorld()
		half, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		for _, n := range []int{1024, 16 * 1024} {
			if err := half.AllreduceN(nil, nil, n, Float32, OpSum); err != nil {
				return err
			}
			if err := half.BcastN(nil, n, 0); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if stats.Folded+stats.Fallback+stats.Released == 0 {
		t.Errorf("split workload never reached the fold gather: %+v", stats)
	}
}

// TestFoldParityForcedMix forces a deliberately mismatched algorithm set —
// ring allgather (mod-family peer deltas) against recursive-doubling
// allreduce (xor-family) — so consecutive collectives flip the fold shape
// cache between kinds. Clocks must still match per-rank execution.
func TestFoldParityForcedMix(t *testing.T) {
	algorithms := map[Collective]string{
		CollAllreduce: "recursive_doubling",
		CollAllgather: "ring",
	}
	stats, sf := assertFoldParity(t, 48, 8, algorithms, func(p *Proc) error {
		c := p.CommWorld()
		for i := 0; i < 2; i++ {
			if err := c.AllreduceN(nil, nil, 16*1024, Float32, OpSum); err != nil {
				return err
			}
			if err := c.AllgatherN(nil, 4*1024, nil); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if stats.Folded == 0 {
		t.Errorf("forced algorithm mix never folded: %+v", stats)
	}
	if sf.GatherHits == 0 {
		t.Errorf("forced algorithm mix never resolved a key gather: %+v", sf)
	}
}

// TestFoldParityStraggler charges one rank private compute before each
// collective, so its clock (and only its clock) diverges from its class.
// The fold must either split that rank into its own class or fall back —
// and either way reproduce per-rank clocks exactly.
func TestFoldParityStraggler(t *testing.T) {
	stats, sf := assertFoldParity(t, 32, 8, nil, func(p *Proc) error {
		c := p.CommWorld()
		for i := 0; i < 2; i++ {
			if c.Rank() == 13 {
				c.ChargeCompute(vtime.Micros(37 * (i + 1)))
			}
			if err := c.AllreduceN(nil, nil, 16*1024, Float32, OpSum); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if stats.Folded+stats.Fallback == 0 {
		t.Errorf("straggler workload never reached the fold gather: %+v", stats)
	}
	if sf.GatherHits+sf.Fallbacks == 0 {
		t.Errorf("straggler workload never reached the key gather: %+v", sf)
	}
}
