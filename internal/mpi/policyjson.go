package mpi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// This file makes Policy (and placement-indexed tables of policies)
// serializable, so a tuning table produced by the auto-tuner
// (internal/tune) is an artifact someone can ship, diff and load back:
// JSON encode -> decode -> identical selection decisions. The wire form
// is explicit -- thresholds are written at their effective values (zero
// means "default" only in the in-memory struct, never on the wire) and
// forced algorithm names are canonicalized and validated on both ends.

// tuningWire is the explicit JSON form of Tuning. Field names mirror the
// Go names; values are the effective thresholds (defaults filled in).
type tuningWire struct {
	BcastScatterRingMin      int `json:"bcast_scatter_ring_min"`
	AllreduceRabenseifnerMin int `json:"allreduce_rabenseifner_min"`
	AllgatherRDMaxTotal      int `json:"allgather_rd_max_total"`
	AllgatherBruckMaxTotal   int `json:"allgather_bruck_max_total"`
	AlltoallBruckMaxBlock    int `json:"alltoall_bruck_max_block"`
}

// policyWire is the JSON form of Policy.
type policyWire struct {
	Tuning tuningWire        `json:"tuning"`
	Forced map[string]string `json:"forced,omitempty"`
}

// MarshalJSON encodes the policy with every threshold at its effective
// value, so the decoded policy makes identical selection decisions even
// if the shipped defaults change between versions.
func (p Policy) MarshalJSON() ([]byte, error) {
	t := p.Tuning.withDefaults()
	w := policyWire{
		Tuning: tuningWire{
			BcastScatterRingMin:      t.BcastScatterRingMin,
			AllreduceRabenseifnerMin: t.AllreduceRabenseifnerMin,
			AllgatherRDMaxTotal:      t.AllgatherRDMaxTotal,
			AllgatherBruckMaxTotal:   t.AllgatherBruckMaxTotal,
			AlltoallBruckMaxBlock:    t.AlltoallBruckMaxBlock,
		},
	}
	if len(p.Forced) > 0 {
		w.Forced = make(map[string]string, len(p.Forced))
		for coll, name := range p.Forced {
			canon, err := CanonicalAlgorithm(coll, name)
			if err != nil {
				return nil, err
			}
			w.Forced[string(coll)] = canon
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a policy, rejecting unknown fields, unknown
// collectives and unregistered algorithm names.
func (p *Policy) UnmarshalJSON(data []byte) error {
	var w policyWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("mpi: decoding policy: %w", err)
	}
	out := Policy{Tuning: Tuning{
		BcastScatterRingMin:      w.Tuning.BcastScatterRingMin,
		AllreduceRabenseifnerMin: w.Tuning.AllreduceRabenseifnerMin,
		AllgatherRDMaxTotal:      w.Tuning.AllgatherRDMaxTotal,
		AllgatherBruckMaxTotal:   w.Tuning.AllgatherBruckMaxTotal,
		AlltoallBruckMaxBlock:    w.Tuning.AlltoallBruckMaxBlock,
	}}
	if len(w.Forced) > 0 {
		out.Forced = make(map[Collective]string, len(w.Forced))
		for collName, algoName := range w.Forced {
			coll, err := ParseCollective(collName)
			if err != nil {
				return err
			}
			canon, err := CanonicalAlgorithm(coll, algoName)
			if err != nil {
				return err
			}
			if _, dup := out.Forced[coll]; dup {
				return fmt.Errorf("mpi: policy forces collective %s twice", coll)
			}
			out.Forced[coll] = canon
		}
	}
	*p = out
	return nil
}

// TuningTableEntry binds one placement (ranks x ppn) to a policy.
type TuningTableEntry struct {
	Ranks  int    `json:"ranks"`
	PPN    int    `json:"ppn"`
	Policy Policy `json:"policy"`
}

// TuningTable is a placement-indexed set of selection policies -- the
// artifact the auto-tuner emits and core.SetDefaultTuningTable consumes.
// Entries match on exact (Ranks, PPN); placements not listed keep the
// shipped defaults.
type TuningTable struct {
	// Comment is free-form provenance (generator, seed, date), ignored by
	// Lookup.
	Comment string             `json:"comment,omitempty"`
	Entries []TuningTableEntry `json:"entries"`
}

// Lookup returns the policy for an exact (ranks, ppn) placement.
func (t *TuningTable) Lookup(ranks, ppn int) (Policy, bool) {
	if t == nil {
		return Policy{}, false
	}
	for _, e := range t.Entries {
		if e.Ranks == ranks && e.PPN == ppn {
			return e.Policy, true
		}
	}
	return Policy{}, false
}

// Validate checks the table for ill-formed or duplicate placements.
func (t *TuningTable) Validate() error {
	seen := make(map[[2]int]bool, len(t.Entries))
	for _, e := range t.Entries {
		if e.Ranks < 2 {
			return fmt.Errorf("mpi: tuning table entry has %d ranks (need >= 2)", e.Ranks)
		}
		if e.PPN < 1 {
			return fmt.Errorf("mpi: tuning table entry %dx%d has invalid ppn", e.Ranks, e.PPN)
		}
		key := [2]int{e.Ranks, e.PPN}
		if seen[key] {
			return fmt.Errorf("mpi: tuning table lists placement %dx%d twice", e.Ranks, e.PPN)
		}
		seen[key] = true
	}
	return nil
}

// Sort orders entries by (ranks, ppn) so emitted tables are canonical.
func (t *TuningTable) Sort() {
	sort.Slice(t.Entries, func(i, j int) bool {
		if t.Entries[i].Ranks != t.Entries[j].Ranks {
			return t.Entries[i].Ranks < t.Entries[j].Ranks
		}
		return t.Entries[i].PPN < t.Entries[j].PPN
	})
}

// ParseTuningTable decodes and validates a JSON tuning table.
func ParseTuningTable(data []byte) (*TuningTable, error) {
	var t TuningTable
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("mpi: decoding tuning table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
