package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// collSizes exercises every algorithm branch: tiny (eager, recursive
// doubling / Bruck), medium, and large (rendezvous, ring / Rabenseifner /
// pairwise).
var collSizes = []int{8, 1024, 64 * 1024, 512 * 1024}

// collCases exercises power-of-two and non-power-of-two groups, single- and
// multi-node placements.
type collCase struct{ n, ppn int }

var collCases = []collCase{{2, 2}, {4, 4}, {5, 5}, {8, 4}, {13, 7}, {16, 4}}

func forAllWorlds(t *testing.T, fn func(t *testing.T, cc collCase)) {
	t.Helper()
	for _, cc := range collCases {
		cc := cc
		t.Run(fmt.Sprintf("p%d_ppn%d", cc.n, cc.ppn), func(t *testing.T) { fn(t, cc) })
	}
}

func TestBarrierSynchronises(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		w := testWorld(t, cc.n, cc.ppn)
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			// Skew the ranks; the barrier must pull everyone past the
			// latest entry time.
			pr.AdvanceClock(vtime.Micros(pr.Rank()) * 10)
			if err := c.Barrier(); err != nil {
				return err
			}
			latest := vtime.Micros(cc.n-1) * 10
			if pr.Wtime() < latest {
				return fmt.Errorf("rank %d exited barrier at %v, before slowest entry %v",
					pr.Rank(), pr.Wtime(), latest)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBcastAllSizes(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, n := range collSizes {
			w := testWorld(t, cc.n, cc.ppn)
			root := (cc.n - 1) / 2
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				buf := make([]byte, n)
				if pr.Rank() == root {
					copy(buf, pattern(root, n))
				}
				if err := c.Bcast(buf, root); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(root, n)) {
					return fmt.Errorf("rank %d: bcast payload wrong for n=%d", pr.Rank(), n)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	})
}

func TestReduceSumFloat64(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, elems := range []int{1, 128, 8192, 65536} {
			w := testWorld(t, cc.n, cc.ppn)
			root := cc.n - 1
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				vals := make([]float64, elems)
				for i := range vals {
					vals[i] = float64(pr.Rank()+1) * float64(i+1)
				}
				sbuf := EncodeFloat64s(vals)
				rbuf := make([]byte, len(sbuf))
				if err := c.Reduce(sbuf, rbuf, Float64, OpSum, root); err != nil {
					return err
				}
				if pr.Rank() != root {
					return nil
				}
				got := DecodeFloat64s(rbuf)
				sumRanks := float64(cc.n*(cc.n+1)) / 2
				for i, g := range got {
					want := sumRanks * float64(i+1)
					if g != want {
						return fmt.Errorf("elem %d: got %v want %v", i, g, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("elems=%d: %v", elems, err)
			}
		}
	})
}

func TestAllreduceMatchesReduceBcast(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, n := range collSizes {
			w := testWorld(t, cc.n, cc.ppn)
			elems := n / 8
			if elems == 0 {
				elems = 1
			}
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				vals := make([]float64, elems)
				for i := range vals {
					vals[i] = float64(pr.Rank()) + float64(i%17)
				}
				sbuf := EncodeFloat64s(vals)
				got := make([]byte, len(sbuf))
				if err := c.Allreduce(sbuf, got, Float64, OpSum); err != nil {
					return err
				}
				// Reference: Reduce to 0 then Bcast.
				ref := make([]byte, len(sbuf))
				if err := c.Reduce(sbuf, ref, Float64, OpSum, 0); err != nil {
					return err
				}
				if err := c.Bcast(ref, 0); err != nil {
					return err
				}
				if !bytes.Equal(got, ref) {
					return fmt.Errorf("rank %d n=%d: allreduce != reduce+bcast", pr.Rank(), n)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	})
}

func TestAllreduceOps(t *testing.T) {
	w := testWorld(t, 5, 5)
	for _, op := range []Op{OpSum, OpProd, OpMin, OpMax} {
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			vals := []int32{int32(pr.Rank() + 1), int32(10 - pr.Rank()), -int32(pr.Rank())}
			rbuf := make([]byte, 12)
			if err := c.Allreduce(EncodeInt32s(vals), rbuf, Int32, op); err != nil {
				return err
			}
			got := DecodeInt32s(rbuf)
			var want [3]int32
			for i := 0; i < 3; i++ {
				acc := []int32{1, int32(10 - 0), 0}[i]
				acc = [3]int32{1, 10, 0}[i]
				for r := 1; r < 5; r++ {
					v := []int32{int32(r + 1), int32(10 - r), -int32(r)}[i]
					switch op {
					case OpSum:
						acc += v
					case OpProd:
						acc *= v
					case OpMin:
						if v < acc {
							acc = v
						}
					case OpMax:
						if v > acc {
							acc = v
						}
					}
				}
				want[i] = acc
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("op %v elem %d: got %d want %d", op, i, got[i], want[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, n := range []int{16, 4096, 128 * 1024} {
			w := testWorld(t, cc.n, cc.ppn)
			root := cc.n / 2
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				mine := pattern(pr.Rank(), n)
				var gathered []byte
				if pr.Rank() == root {
					gathered = make([]byte, cc.n*n)
				}
				if err := c.Gather(mine, gathered, root); err != nil {
					return err
				}
				if pr.Rank() == root {
					for r := 0; r < cc.n; r++ {
						if !bytes.Equal(gathered[r*n:(r+1)*n], pattern(r, n)) {
							return fmt.Errorf("gather block %d wrong", r)
						}
					}
				}
				// Scatter it back; every rank must get its own block.
				back := make([]byte, n)
				if err := c.Scatter(gathered, back, root); err != nil {
					return err
				}
				if !bytes.Equal(back, mine) {
					return fmt.Errorf("rank %d: scatter returned wrong block", pr.Rank())
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	})
}

func TestAllgatherAllAlgorithms(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, n := range []int{4, 512, 8192, 64 * 1024} { // RD, Bruck, ring
			w := testWorld(t, cc.n, cc.ppn)
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				rbuf := make([]byte, cc.n*n)
				if err := c.Allgather(pattern(pr.Rank(), n), rbuf); err != nil {
					return err
				}
				for r := 0; r < cc.n; r++ {
					if !bytes.Equal(rbuf[r*n:(r+1)*n], pattern(r, n)) {
						return fmt.Errorf("rank %d: block %d wrong (n=%d)", pr.Rank(), r, n)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	})
}

func TestAlltoallBothAlgorithms(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, n := range []int{8, 900, 4096} { // Bruck and pairwise
			w := testWorld(t, cc.n, cc.ppn)
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				// Block for destination d from rank r encodes (r, d).
				sbuf := make([]byte, cc.n*n)
				for d := 0; d < cc.n; d++ {
					blk := sbuf[d*n : (d+1)*n]
					for i := range blk {
						blk[i] = byte((pr.Rank()*31 + d*7 + i) % 249)
					}
				}
				rbuf := make([]byte, cc.n*n)
				if err := c.Alltoall(sbuf, rbuf); err != nil {
					return err
				}
				for r := 0; r < cc.n; r++ {
					blk := rbuf[r*n : (r+1)*n]
					for i := range blk {
						want := byte((r*31 + pr.Rank()*7 + i) % 249)
						if blk[i] != want {
							return fmt.Errorf("rank %d n=%d: block from %d byte %d: got %d want %d",
								pr.Rank(), n, r, i, blk[i], want)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
		}
	})
}

func TestReduceScatterBlock(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, elems := range []int{1, 64, 4096} {
			w := testWorld(t, cc.n, cc.ppn)
			n := elems * 8
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				vals := make([]float64, cc.n*elems)
				for i := range vals {
					vals[i] = float64(pr.Rank()+1) + float64(i)
				}
				rbuf := make([]byte, n)
				if err := c.ReduceScatterBlock(EncodeFloat64s(vals), rbuf, Float64, OpSum); err != nil {
					return err
				}
				got := DecodeFloat64s(rbuf)
				sumRanks := float64(cc.n*(cc.n+1)) / 2
				for i, g := range got {
					idx := pr.Rank()*elems + i
					want := sumRanks + float64(cc.n)*float64(idx)
					if g != want {
						return fmt.Errorf("rank %d elem %d: got %v want %v", pr.Rank(), i, g, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("elems=%d: %v", elems, err)
			}
		}
	})
}

func TestVectorCollectives(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		w := testWorld(t, cc.n, cc.ppn)
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			p := cc.n
			counts := make([]int, p)
			for r := range counts {
				counts[r] = 8 * (r + 1) // variable block sizes
			}
			total := 0
			for _, cnt := range counts {
				total += cnt
			}

			// Gatherv to root 0.
			mine := pattern(pr.Rank(), counts[pr.Rank()])
			var gathered []byte
			if pr.Rank() == 0 {
				gathered = make([]byte, total)
			}
			if pr.Rank() == 0 {
				if err := c.Gatherv(mine, gathered, counts, nil, 0); err != nil {
					return err
				}
				off := 0
				for r := 0; r < p; r++ {
					if !bytes.Equal(gathered[off:off+counts[r]], pattern(r, counts[r])) {
						return fmt.Errorf("gatherv block %d wrong", r)
					}
					off += counts[r]
				}
			} else {
				if err := c.Gatherv(mine, nil, nil, nil, 0); err != nil {
					return err
				}
			}

			// Scatterv back.
			back := make([]byte, counts[pr.Rank()])
			if pr.Rank() == 0 {
				if err := c.Scatterv(gathered, counts, nil, back, 0); err != nil {
					return err
				}
			} else {
				if err := c.Scatterv(nil, counts, nil, back, 0); err != nil {
					return err
				}
			}
			if !bytes.Equal(back, mine) {
				return fmt.Errorf("rank %d: scatterv returned wrong block", pr.Rank())
			}

			// Allgatherv.
			all := make([]byte, total)
			if err := c.Allgatherv(mine, all, counts, nil); err != nil {
				return err
			}
			off := 0
			for r := 0; r < p; r++ {
				if !bytes.Equal(all[off:off+counts[r]], pattern(r, counts[r])) {
					return fmt.Errorf("rank %d: allgatherv block %d wrong", pr.Rank(), r)
				}
				off += counts[r]
			}

			// Alltoallv with symmetric counts: rank r sends 4*(r+d+1) bytes
			// to rank d (same value both directions, so rcounts derivable).
			scounts := make([]int, p)
			rcounts := make([]int, p)
			for d := 0; d < p; d++ {
				scounts[d] = 4 * (pr.Rank() + d + 1)
				rcounts[d] = 4 * (d + pr.Rank() + 1)
			}
			stotal, rtotal := 0, 0
			for d := 0; d < p; d++ {
				stotal += scounts[d]
				rtotal += rcounts[d]
			}
			sbuf := make([]byte, stotal)
			off = 0
			for d := 0; d < p; d++ {
				blk := sbuf[off : off+scounts[d]]
				for i := range blk {
					blk[i] = byte((pr.Rank()*13 + d*5 + i) % 247)
				}
				off += scounts[d]
			}
			rbuf := make([]byte, rtotal)
			if err := c.Alltoallv(sbuf, scounts, nil, rbuf, rcounts, nil); err != nil {
				return err
			}
			off = 0
			for r := 0; r < p; r++ {
				blk := rbuf[off : off+rcounts[r]]
				for i := range blk {
					want := byte((r*13 + pr.Rank()*5 + i) % 247)
					if blk[i] != want {
						return fmt.Errorf("rank %d: alltoallv from %d byte %d: got %d want %d",
							pr.Rank(), r, i, blk[i], want)
					}
				}
				off += rcounts[r]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestCommSplitAndDup(t *testing.T) {
	w := testWorld(t, 8, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		// Split into even/odd groups, keyed by reverse rank.
		color := pr.Rank() % 2
		sub, err := c.Split(color, -pr.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Reverse key ordering: world rank 6 (color 0) is sub rank 0.
		wantRank := (6-pr.Rank())/2 + 0
		if color == 1 {
			wantRank = (7 - pr.Rank()) / 2
		}
		if sub.Rank() != wantRank {
			return fmt.Errorf("world %d: sub rank %d, want %d", pr.Rank(), sub.Rank(), wantRank)
		}
		// A collective on the subgroup must only see subgroup data.
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(pr.Rank()))
		all := make([]byte, 8*sub.Size())
		if err := sub.Allgather(buf[:], all); err != nil {
			return err
		}
		for i := 0; i < sub.Size(); i++ {
			got := int(binary.LittleEndian.Uint64(all[8*i:]))
			if got%2 != color {
				return fmt.Errorf("subgroup %d contains world rank %d", color, got)
			}
		}
		// Dup must give a working communicator with identical shape.
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Rank() != c.Rank() || dup.Size() != c.Size() {
			return fmt.Errorf("dup shape %d/%d", dup.Rank(), dup.Size())
		}
		return dup.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimingOnlyWorldMatchesDataWorld(t *testing.T) {
	// Virtual time must be identical whether payloads move or not.
	measure := func(carry bool) vtime.Micros {
		place, err := topologyPlacement(16, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(Config{
			Placement: place,
			Model:     fronteraModelForTest(),
			CarryData: carry,
		})
		if err != nil {
			t.Fatal(err)
		}
		var elapsed vtime.Micros
		err = w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			n := 128 * 1024
			var sb, rb []byte
			if carry {
				sb = pattern(pr.Rank(), n)
				rb = make([]byte, n)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			start := pr.Wtime()
			if err := c.AllreduceN(sb, rb, n, Float64, OpSum); err != nil {
				return err
			}
			if pr.Rank() == 0 {
				elapsed = pr.Wtime() - start
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	withData := measure(true)
	timingOnly := measure(false)
	if withData != timingOnly {
		t.Fatalf("timing-only world diverges: %v vs %v", timingOnly, withData)
	}
	if withData <= 0 {
		t.Fatal("allreduce took no virtual time")
	}
}

func topologyPlacement(n, ppn int) (*topology.Placement, error) {
	return topology.NewPlacement(&topology.Frontera, n, ppn, topology.Block, false)
}

func fronteraModelForTest() *netmodel.Model {
	return netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2)
}

func TestAllreduceSizeValidation(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if err := c.AllreduceN(nil, nil, 7, Float64, OpSum); err == nil {
			return fmt.Errorf("7 bytes of float64 should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
