package mpi

// Property-based equivalence tests: every optimised collective must produce
// exactly the bytes a trivially-correct linear reference produces, for
// randomized communicator sizes, message sizes, roots and payloads.

import (
	"bytes"
	"math/rand"
	"testing"
)

// refEnv runs body on a fresh world and collects each rank's output buffer.
func refEnv(t *testing.T, p, ppn int, body func(c *Comm, out *[][]byte) error) [][]byte {
	t.Helper()
	outs := make([][]byte, p)
	w := testWorld(t, p, ppn)
	err := w.Run(func(pr *Proc) error {
		return body(pr.CommWorld(), &outs)
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// linear reference implementations built on Send/Recv only.

func refBcast(c *Comm, buf []byte, root int) error {
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(buf, r, 42); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := c.Recv(buf, root, 42)
	return err
}

func refAllreduce(c *Comm, sbuf, rbuf []byte, dt DType, op Op) error {
	// Gather everything to rank 0, reduce locally in rank order, bcast.
	p := c.Size()
	if c.Rank() == 0 {
		acc := make([]byte, len(sbuf))
		copy(acc, sbuf)
		tmp := make([]byte, len(sbuf))
		for r := 1; r < p; r++ {
			if _, err := c.Recv(tmp, r, 43); err != nil {
				return err
			}
			if err := reduceInto(acc, tmp, dt, op); err != nil {
				return err
			}
		}
		copy(rbuf, acc)
	} else {
		if err := c.Send(sbuf, 0, 43); err != nil {
			return err
		}
	}
	return refBcast(c, rbuf, 0)
}

func refAllgather(c *Comm, sbuf, rbuf []byte) error {
	p := c.Size()
	n := len(sbuf)
	copy(rbuf[c.Rank()*n:(c.Rank()+1)*n], sbuf)
	// Everyone sends to everyone (linear, tag-disambiguated by sender).
	for r := 0; r < p; r++ {
		if r == c.Rank() {
			continue
		}
		if err := c.Send(sbuf, r, 44); err != nil {
			return err
		}
	}
	for r := 0; r < p; r++ {
		if r == c.Rank() {
			continue
		}
		if _, err := c.Recv(rbuf[r*n:(r+1)*n], r, 44); err != nil {
			return err
		}
	}
	return nil
}

func refAlltoall(c *Comm, sbuf []byte, n int, rbuf []byte) error {
	p := c.Size()
	copy(rbuf[c.Rank()*n:(c.Rank()+1)*n], sbuf[c.Rank()*n:(c.Rank()+1)*n])
	for r := 0; r < p; r++ {
		if r == c.Rank() {
			continue
		}
		if err := c.Send(sbuf[r*n:(r+1)*n], r, 45); err != nil {
			return err
		}
	}
	for r := 0; r < p; r++ {
		if r == c.Rank() {
			continue
		}
		if _, err := c.Recv(rbuf[r*n:(r+1)*n], r, 45); err != nil {
			return err
		}
	}
	return nil
}

// randomized cases: sizes chosen to straddle every algorithm threshold.

type refCase struct {
	p, ppn, elems int
	root          int
	seed          int64
}

func refCases(rng *rand.Rand, count int) []refCase {
	sizes := []int{1, 3, 17, 256, 1024, 4096, 8192, 65536}
	var out []refCase
	for i := 0; i < count; i++ {
		p := 2 + rng.Intn(12) // 2..13 ranks: pof2 and non-pof2
		out = append(out, refCase{
			p:     p,
			ppn:   1 + rng.Intn(p),
			elems: sizes[rng.Intn(len(sizes))],
			root:  rng.Intn(p),
			seed:  rng.Int63(),
		})
	}
	return out
}

func randFloats(seed int64, rank, elems int) []float64 {
	rng := rand.New(rand.NewSource(seed + int64(rank)*7919))
	vals := make([]float64, elems)
	for i := range vals {
		vals[i] = float64(rng.Intn(1000)) / 4 // dyadic: exact fp addition order-independence not needed (ref uses rank order too)
	}
	return vals
}

func TestBcastMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i, tc := range refCases(rng, 12) {
		n := tc.elems
		fast := refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
			buf := make([]byte, n)
			if c.Rank() == tc.root {
				copy(buf, pattern(int(tc.seed%251), n))
			}
			if err := c.Bcast(buf, tc.root); err != nil {
				return err
			}
			(*out)[c.Rank()] = buf
			return nil
		})
		slow := refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
			buf := make([]byte, n)
			if c.Rank() == tc.root {
				copy(buf, pattern(int(tc.seed%251), n))
			}
			if err := refBcast(c, buf, tc.root); err != nil {
				return err
			}
			(*out)[c.Rank()] = buf
			return nil
		})
		for r := range fast {
			if !bytes.Equal(fast[r], slow[r]) {
				t.Fatalf("case %d (%+v): rank %d bcast mismatch", i, tc, r)
			}
		}
	}
}

func TestAllreduceMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i, tc := range refCases(rng, 10) {
		run := func(impl func(c *Comm, s, r []byte) error) [][]byte {
			return refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
				sbuf := EncodeFloat64s(randFloats(tc.seed, c.Rank(), tc.elems))
				rbuf := make([]byte, len(sbuf))
				if err := impl(c, sbuf, rbuf); err != nil {
					return err
				}
				(*out)[c.Rank()] = rbuf
				return nil
			})
		}
		fast := run(func(c *Comm, s, r []byte) error { return c.Allreduce(s, r, Float64, OpSum) })
		slow := run(func(c *Comm, s, r []byte) error { return refAllreduce(c, s, r, Float64, OpSum) })
		// Compare as floats with tolerance: the optimised algorithms reduce
		// in a different association order than the linear reference.
		for r := range fast {
			fv, sv := DecodeFloat64s(fast[r]), DecodeFloat64s(slow[r])
			for j := range fv {
				diff := fv[j] - sv[j]
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-9*(1+sv[j]) {
					t.Fatalf("case %d (%+v): rank %d elem %d: %v vs %v", i, tc, r, j, fv[j], sv[j])
				}
			}
		}
	}
}

func TestAllgatherMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i, tc := range refCases(rng, 10) {
		n := tc.elems
		run := func(impl func(c *Comm, s, r []byte) error) [][]byte {
			return refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
				sbuf := pattern(c.Rank()+int(tc.seed%97), n)
				rbuf := make([]byte, tc.p*n)
				if err := impl(c, sbuf, rbuf); err != nil {
					return err
				}
				(*out)[c.Rank()] = rbuf
				return nil
			})
		}
		fast := run(func(c *Comm, s, r []byte) error { return c.Allgather(s, r) })
		slow := run(refAllgather)
		for r := range fast {
			if !bytes.Equal(fast[r], slow[r]) {
				t.Fatalf("case %d (%+v): rank %d allgather mismatch", i, tc, r)
			}
		}
	}
}

func TestAlltoallMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i, tc := range refCases(rng, 8) {
		n := tc.elems
		run := func(impl func(c *Comm, s []byte, n int, r []byte) error) [][]byte {
			return refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
				sbuf := make([]byte, tc.p*n)
				for d := 0; d < tc.p; d++ {
					copy(sbuf[d*n:(d+1)*n], pattern(c.Rank()*31+d+int(tc.seed%89), n))
				}
				rbuf := make([]byte, tc.p*n)
				if err := impl(c, sbuf, n, rbuf); err != nil {
					return err
				}
				(*out)[c.Rank()] = rbuf
				return nil
			})
		}
		fast := run(func(c *Comm, s []byte, n int, r []byte) error { return c.AlltoallN(s, n, r) })
		slow := run(refAlltoall)
		for r := range fast {
			if !bytes.Equal(fast[r], slow[r]) {
				t.Fatalf("case %d (%+v): rank %d alltoall mismatch", i, tc, r)
			}
		}
	}
}

// TestReduceScatterMatchesReduceThenScatter checks the fused collective
// against its two-step definition, randomized.
func TestReduceScatterMatchesReduceThenScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i, tc := range refCases(rng, 8) {
		elems := tc.elems
		n := elems * 8
		fused := refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
			sbuf := EncodeFloat64s(randFloats(tc.seed, c.Rank(), tc.p*elems))
			rbuf := make([]byte, n)
			if err := c.ReduceScatterBlock(sbuf, rbuf, Float64, OpSum); err != nil {
				return err
			}
			(*out)[c.Rank()] = rbuf
			return nil
		})
		twoStep := refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
			sbuf := EncodeFloat64s(randFloats(tc.seed, c.Rank(), tc.p*elems))
			full := make([]byte, tc.p*n)
			if err := c.Reduce(sbuf, full, Float64, OpSum, 0); err != nil {
				return err
			}
			rbuf := make([]byte, n)
			if err := c.Scatter(full, rbuf, 0); err != nil {
				return err
			}
			(*out)[c.Rank()] = rbuf
			return nil
		})
		for r := range fused {
			fv, sv := DecodeFloat64s(fused[r]), DecodeFloat64s(twoStep[r])
			for j := range fv {
				diff := fv[j] - sv[j]
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-9*(1+sv[j]) {
					t.Fatalf("case %d (%+v): rank %d elem %d: %v vs %v", i, tc, r, j, fv[j], sv[j])
				}
			}
		}
	}
}

// TestGatherBcastComposition sanity-checks composed collectives with a
// printf-style oracle: gather at a random root then broadcast must give
// every rank the full rank-ordered concatenation.
func TestGatherBcastComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i, tc := range refCases(rng, 8) {
		n := tc.elems
		outs := refEnv(t, tc.p, tc.ppn, func(c *Comm, out *[][]byte) error {
			all := make([]byte, tc.p*n)
			if err := c.Gather(pattern(c.Rank(), n), all, tc.root); err != nil {
				return err
			}
			if err := c.Bcast(all, tc.root); err != nil {
				return err
			}
			(*out)[c.Rank()] = all
			return nil
		})
		for r, all := range outs {
			for src := 0; src < tc.p; src++ {
				if !bytes.Equal(all[src*n:(src+1)*n], pattern(src, n)) {
					t.Fatalf("case %d (%+v): rank %d block %d wrong", i, tc, r, src)
				}
			}
		}
	}
}
