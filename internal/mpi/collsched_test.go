package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/vtime"
)

// Tests for the schedule-driven collective engine: nonblocking collectives
// must produce byte-identical results AND bit-identical virtual time to
// their blocking counterparts, and collective traffic must stay invisible
// to user-tag receives.

// collRun runs body in a fresh world and returns each rank's result buffer
// and final virtual time.
func collRun(t *testing.T, ranks, ppn int, forced map[Collective]string,
	body func(c *Comm, rank int) ([]byte, error)) ([][]byte, []vtime.Micros) {
	t.Helper()
	w := testWorldForced(t, ranks, ppn, forced)
	bufs := make([][]byte, ranks)
	times := make([]vtime.Micros, ranks)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		out, err := body(c, p.Rank())
		if err != nil {
			return err
		}
		bufs[p.Rank()] = out
		times[p.Rank()] = p.Wtime()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return bufs, times
}

// testWorldForced is testWorld with forced per-collective algorithms.
func testWorldForced(t *testing.T, n, ppn int, forced map[Collective]string) *World {
	t.Helper()
	w := testWorld(t, n, ppn)
	if forced != nil {
		var err error
		w, err = NewWorld(Config{
			Placement:  w.cfg.Placement,
			Model:      w.cfg.Model,
			CarryData:  true,
			Algorithms: forced,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestIallreduceParityWithBlocking pins, for every registered allreduce
// algorithm, that Iallreduce+Wait yields byte-identical result buffers and
// bit-identical final virtual time to blocking Allreduce.
func TestIallreduceParityWithBlocking(t *testing.T) {
	for _, algo := range AlgorithmNames(CollAllreduce) {
		for _, ranks := range []int{8, 12} { // power-of-two and folded groups
			for _, n := range []int{64, 4096, 192 * 1024} {
				name := fmt.Sprintf("%s/%dranks/%dB", algo, ranks, n)
				forced := map[Collective]string{CollAllreduce: algo}
				blocking := func(c *Comm, rank int) ([]byte, error) {
					rbuf := make([]byte, n)
					if err := c.Allreduce(pattern(rank, n), rbuf, Float32, OpSum); err != nil {
						return nil, err
					}
					return rbuf, nil
				}
				nonblocking := func(c *Comm, rank int) ([]byte, error) {
					rbuf := make([]byte, n)
					req, err := c.Iallreduce(pattern(rank, n), rbuf, Float32, OpSum)
					if err != nil {
						return nil, err
					}
					if _, err := req.Wait(); err != nil {
						return nil, err
					}
					return rbuf, nil
				}
				bBufs, bTimes := collRun(t, ranks, 4, forced, blocking)
				iBufs, iTimes := collRun(t, ranks, 4, forced, nonblocking)
				for r := 0; r < ranks; r++ {
					if !bytes.Equal(bBufs[r], iBufs[r]) {
						t.Fatalf("%s: rank %d result bytes diverge", name, r)
					}
					if bTimes[r] != iTimes[r] {
						t.Fatalf("%s: rank %d virtual time %v (blocking) vs %v (Iallreduce+Wait)",
							name, r, bTimes[r], iTimes[r])
					}
				}
			}
		}
	}
}

// TestNonblockingCollectivesMatchBlocking checks result-byte parity of the
// remaining I* collectives against their blocking counterparts.
func TestNonblockingCollectivesMatchBlocking(t *testing.T) {
	const ranks, n = 8, 1024
	type pair struct {
		name     string
		blocking func(c *Comm, rank int) ([]byte, error)
		nonblock func(c *Comm, rank int) ([]byte, error)
	}
	wait := func(req *Request, err error) error {
		if err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	}
	cases := []pair{
		{"bcast",
			func(c *Comm, rank int) ([]byte, error) {
				buf := pattern(0, n)
				if rank != 0 {
					buf = make([]byte, n)
				}
				return buf, c.Bcast(buf, 0)
			},
			func(c *Comm, rank int) ([]byte, error) {
				buf := pattern(0, n)
				if rank != 0 {
					buf = make([]byte, n)
				}
				return buf, wait(c.Ibcast(buf, 0))
			}},
		{"gather",
			func(c *Comm, rank int) ([]byte, error) {
				var rbuf []byte
				if rank == 0 {
					rbuf = make([]byte, ranks*n)
				}
				return rbuf, c.Gather(pattern(rank, n), rbuf, 0)
			},
			func(c *Comm, rank int) ([]byte, error) {
				var rbuf []byte
				if rank == 0 {
					rbuf = make([]byte, ranks*n)
				}
				return rbuf, wait(c.Igather(pattern(rank, n), rbuf, 0))
			}},
		{"allgather",
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, ranks*n)
				return rbuf, c.Allgather(pattern(rank, n), rbuf)
			},
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, ranks*n)
				return rbuf, wait(c.Iallgather(pattern(rank, n), rbuf))
			}},
		{"alltoall",
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, ranks*n)
				return rbuf, c.Alltoall(pattern(rank, ranks*n), rbuf)
			},
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, ranks*n)
				return rbuf, wait(c.Ialltoall(pattern(rank, ranks*n), rbuf))
			}},
		{"reduce_scatter",
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, n)
				return rbuf, c.ReduceScatterBlock(pattern(rank, ranks*n), rbuf, Float32, OpSum)
			},
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, n)
				return rbuf, wait(c.IreduceScatterBlock(pattern(rank, ranks*n), rbuf, Float32, OpSum))
			}},
		{"scan",
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, n)
				return rbuf, c.Scan(pattern(rank, n), rbuf, Float32, OpSum)
			},
			func(c *Comm, rank int) ([]byte, error) {
				rbuf := make([]byte, n)
				return rbuf, wait(c.Iscan(pattern(rank, n), rbuf, Float32, OpSum))
			}},
	}
	for _, tc := range cases {
		bBufs, bTimes := collRun(t, ranks, 4, nil, tc.blocking)
		iBufs, iTimes := collRun(t, ranks, 4, nil, tc.nonblock)
		for r := 0; r < ranks; r++ {
			if !bytes.Equal(bBufs[r], iBufs[r]) {
				t.Errorf("%s: rank %d result bytes diverge", tc.name, r)
			}
			if bTimes[r] != iTimes[r] {
				t.Errorf("%s: rank %d virtual time %v vs %v", tc.name, r, bTimes[r], iTimes[r])
			}
		}
	}
}

// TestIallreduceTestDriven drives the collective with Test polling instead
// of Wait; the result must match and Test must eventually complete.
func TestIallreduceTestDriven(t *testing.T) {
	const ranks, n = 8, 2048
	w := testWorld(t, ranks, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		rbuf := make([]byte, n)
		req, err := c.Iallreduce(pattern(p.Rank(), n), rbuf, Float32, OpSum)
		if err != nil {
			return err
		}
		for {
			done, _, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		if !req.Done() {
			return errors.New("request not done after successful Test")
		}
		// Verify against a blocking Allreduce over the same inputs.
		want := make([]byte, n)
		if err := c.Allreduce(pattern(p.Rank(), n), want, Float32, OpSum); err != nil {
			return err
		}
		if !bytes.Equal(rbuf, want) {
			return errors.New("Test-driven Iallreduce result diverges from blocking Allreduce")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProgressAdvancesCollectives pins the Progress hook: polling it must
// eventually complete an outstanding collective without Wait blocking.
func TestProgressAdvancesCollectives(t *testing.T) {
	const ranks, n = 4, 512
	w := testWorld(t, ranks, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		rbuf := make([]byte, n)
		req, err := c.Iallreduce(pattern(p.Rank(), n), rbuf, Float32, OpSum)
		if err != nil {
			return err
		}
		for !req.Done() {
			p.Progress()
		}
		if _, err := req.Wait(); err != nil { // idempotent on the completed request
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProgressDoesNotRecycleHeldRequests pins the pool discipline: a
// request completed by Progress must stay out of the freelist until its
// owner observes completion, so later nonblocking calls can never alias a
// pointer the caller still holds as pending — and Waitany must harvest
// such a request rather than treat it as inactive.
func TestProgressDoesNotRecycleHeldRequests(t *testing.T) {
	const ranks, n = 4, 512
	w := testWorld(t, ranks, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		rbuf := make([]byte, n)
		ireq, err := c.Iallreduce(pattern(p.Rank(), n), rbuf, Float32, OpSum)
		if err != nil {
			return err
		}
		for !ireq.Done() {
			p.Progress()
		}
		// The collective is done but unobserved; a new nonblocking call
		// must NOT reuse its Request object.
		var other *Request
		if p.Rank() == 0 {
			other, err = c.Irecv(make([]byte, n), 1, 5)
		} else if p.Rank() == 1 {
			other, err = c.Isend(pattern(7, n), 0, 5)
		}
		if err != nil {
			return err
		}
		if other == ireq {
			return errors.New("Progress recycled a held request into a later nonblocking call")
		}
		// Waitany still harvests the Progress-completed collective.
		idx, _, err := Waitany([]*Request{ireq})
		if err != nil {
			return err
		}
		if idx != 0 {
			return fmt.Errorf("Waitany over a Progress-completed request returned %d, want 0", idx)
		}
		if idx, _, _ := Waitany([]*Request{ireq}); idx != -1 {
			return fmt.Errorf("second Waitany returned %d, want -1", idx)
		}
		if other != nil {
			if _, err := other.Wait(); err != nil {
				return err
			}
		}
		want := make([]byte, n)
		if err := c.Allreduce(pattern(p.Rank(), n), want, Float32, OpSum); err != nil {
			return err
		}
		if !bytes.Equal(rbuf, want) {
			return errors.New("collective result diverges")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWildcardIrecvIgnoresCollectiveTraffic pins the satellite guarantee:
// multiple outstanding AnySource (and AnyTag) receives interleaved with
// collective requests on the same rank never match the collectives'
// reserved-tag traffic — they complete with exactly the user messages, in
// delivery order.
func TestWildcardIrecvIgnoresCollectiveTraffic(t *testing.T) {
	const ranks, n = 4, 256
	w := testWorld(t, ranks, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		const userTag = 11
		if p.Rank() == 0 {
			// Post two wildcard receives (one exact-tag, one AnyTag), then
			// start a nonblocking collective whose traffic floods this
			// rank's mailbox before the user messages arrive.
			b1 := make([]byte, n)
			b2 := make([]byte, n)
			r1, err := c.Irecv(b1, AnySource, userTag)
			if err != nil {
				return err
			}
			r2, err := c.Irecv(b2, AnySource, AnyTag)
			if err != nil {
				return err
			}
			rbuf := make([]byte, n)
			ireq, err := c.Iallreduce(pattern(0, n), rbuf, Float32, OpSum)
			if err != nil {
				return err
			}
			st1, err := r1.Wait()
			if err != nil {
				return err
			}
			st2, err := r2.Wait()
			if err != nil {
				return err
			}
			if _, err := ireq.Wait(); err != nil {
				return err
			}
			// The wildcard receives must have matched rank 1's two user
			// sends in their delivery order (same source, so FIFO), never
			// the collective's internal envelopes.
			if st1.Tag != userTag || st2.Tag != userTag {
				return fmt.Errorf("wildcard receives matched tags %d and %d, want user tag %d",
					st1.Tag, st2.Tag, userTag)
			}
			if st1.Source != 1 || st2.Source != 1 {
				return fmt.Errorf("wildcard receives matched sources %d and %d, want 1",
					st1.Source, st2.Source)
			}
			if !bytes.Equal(b1, pattern(1, n)) || !bytes.Equal(b2, pattern(2, n)) {
				return errors.New("wildcard receives got wrong payloads")
			}
			// And the collective still produced the right reduction.
			want := make([]byte, n)
			if err := c.Allreduce(pattern(0, n), want, Float32, OpSum); err != nil {
				return err
			}
			if !bytes.Equal(rbuf, want) {
				return errors.New("collective result corrupted by wildcard receives")
			}
			return nil
		}
		// Rank 1 sends user messages around its collective call so internal
		// envelopes are interleaved with user ones at rank 0; coming from
		// one source, their delivery order at rank 0 is FIFO-guaranteed.
		if p.Rank() == 1 {
			if err := c.Send(pattern(1, n), 0, userTag); err != nil {
				return err
			}
		}
		rbuf := make([]byte, n)
		ireq, err := c.Iallreduce(pattern(p.Rank(), n), rbuf, Float32, OpSum)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			if err := c.Send(pattern(2, n), 0, userTag); err != nil {
				return err
			}
		}
		if _, err := ireq.Wait(); err != nil {
			return err
		}
		want := make([]byte, n)
		if err := c.Allreduce(pattern(p.Rank(), n), want, Float32, OpSum); err != nil {
			return err
		}
		if !bytes.Equal(rbuf, want) {
			return errors.New("collective result corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
