package mpi

import (
	"fmt"
	"runtime"
)

// Nonblocking operations. The real OSU bandwidth tests post windows of
// MPI_Isend/MPI_Irecv, and the nonblocking-collective tests
// (osu_iallreduce, ...) post a collective, inject compute and Wait; the
// runtime provides both families. Collective requests wrap a compiled step
// schedule (collsched.go) advanced incrementally by Test/Wait and the
// rank's Progress hook.
//
// Semantics notes (documented deviations from full MPI):
//   - Isend injects immediately (eager) or posts the RTS (rendezvous);
//     Wait blocks until the transfer drains, exactly like Send's tail.
//   - Irecv records the (source, tag) to match; the match happens at
//     Test/Wait time. Matching order among multiple pending Irecvs is the
//     order their Tests/Waits run, which for single-threaded ranks equals
//     post order when Waitall is used.
//   - A nonblocking collective executes its deterministic prefix (local
//     work and message injection) at post time; the remaining steps run
//     under Test/Wait/Progress. There is no background progress thread, so
//     rounds that depend on peer traffic advance only inside those calls —
//     like an MPI library without an async progress engine.
//   - A completed Request may be recycled by the rank's next nonblocking
//     call: Wait/Test stay idempotent on the held pointer until then, but
//     a Request must not be stored across subsequent nonblocking calls.

// Request tracks an outstanding nonblocking operation. Requests are pooled
// per rank: steady-state Isend/Irecv/Wait windows allocate nothing.
type Request struct {
	comm *Comm
	// send side: the rendezvous handshake (nil for eager sends, which
	// complete at post time).
	ps   *rendezvous
	sent bool
	// recv side
	buf      []byte
	max      int
	src, tag int
	isRecv   bool
	// collective side: the schedule still to be driven.
	sched *collSched

	done   bool
	status Status
	err    error
	// pooled marks the request as harvested: its completion has been
	// observed by Wait/Test/Waitany and the object has returned to the
	// rank's freelist. Progress-completed requests stay un-pooled (and
	// visible to Waitany) until the owner observes them.
	pooled bool
}

// getRequest draws a zeroed Request from the rank's freelist.
func (p *Proc) getRequest() *Request {
	if n := len(p.reqFree); n > 0 {
		r := p.reqFree[n-1]
		p.reqFree[n-1] = nil
		p.reqFree = p.reqFree[:n-1]
		*r = Request{}
		return r
	}
	return &Request{}
}

// complete marks the request finished. It does not recycle the object:
// that happens in release, once the completion has been observed by the
// caller — Proc.Progress may complete a request the owner still holds as
// pending, and recycling it early would let the next nonblocking call
// alias the held pointer.
func (r *Request) complete(st Status, err error) {
	r.done = true
	r.status = st
	r.err = err
	r.buf = nil
	r.ps = nil
}

// release recycles an observed, completed request into the owning rank's
// freelist (idempotent). The terminal status and error stay readable on
// the held pointer until the slot is reused by a later nonblocking call.
func (r *Request) release() {
	if r.pooled {
		return
	}
	r.pooled = true
	r.comm.proc.reqFree = append(r.comm.proc.reqFree, r)
}

// Isend starts a nonblocking standard-mode send and returns its request.
func (c *Comm) Isend(buf []byte, dst, tag int) (*Request, error) {
	return c.IsendN(buf, len(buf), dst, tag)
}

// IsendN is Isend with an explicit byte count (timing-only worlds).
func (c *Comm) IsendN(buf []byte, n, dst, tag int) (*Request, error) {
	if err := c.checkRank(dst, "Isend dst"); err != nil {
		return nil, err
	}
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	r := c.proc.getRequest()
	r.comm = c
	r.ps = c.postSend(dst, tag, buf, n)
	r.sent = true
	return r, nil
}

// Irecv posts a nonblocking receive; the match completes at Test or Wait.
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	r, err := c.IrecvN(buf, len(buf), src, tag)
	return r, err
}

// IrecvN is Irecv with an explicit maximum byte count.
func (c *Comm) IrecvN(buf []byte, n, src, tag int) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src, "Irecv src"); err != nil {
			return nil, err
		}
	}
	if tag != AnyTag {
		if err := checkTag(tag); err != nil {
			return nil, err
		}
	}
	r := c.proc.getRequest()
	r.comm = c
	r.buf, r.max, r.src, r.tag, r.isRecv = buf, n, src, tag, true
	return r, nil
}

// Wait blocks until the request completes and returns its status (receives
// only; sends and collectives return a zero Status).
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, fmt.Errorf("mpi: Wait on nil request")
	}
	if r.done {
		r.release()
		return r.status, r.err
	}
	if r.sched != nil {
		s := r.sched
		r.sched = nil
		r.complete(Status{}, r.comm.driveSched(s))
	} else if r.isRecv {
		st, err := r.comm.recvBytes(r.src, r.tag, r.buf, r.max)
		r.complete(st, err)
	} else {
		var err error
		if r.sent {
			err = r.comm.completeSend(r.ps)
		}
		r.complete(Status{}, err)
	}
	r.release()
	return r.status, r.err
}

// Test advances the request as far as possible without blocking and reports
// whether it completed, with the completion status and error when it did.
func (r *Request) Test() (bool, Status, error) {
	if r == nil {
		return false, Status{}, fmt.Errorf("mpi: Test on nil request")
	}
	if r.done {
		r.release()
		return true, r.status, r.err
	}
	switch {
	case r.sched != nil:
		s := r.sched
		done, err := s.tryDrive()
		if !done && err == nil {
			return false, Status{}, nil
		}
		if err != nil {
			s.drainPending()
		}
		s.finish()
		r.sched = nil
		r.complete(Status{}, err)
	case r.isRecv:
		st, ok, err := r.comm.tryRecvBytes(r.src, r.tag, r.buf, r.max)
		if !ok && err == nil {
			return false, Status{}, nil
		}
		r.complete(st, err)
	default:
		if r.sent && r.ps != nil {
			done, ok := r.ps.tryDone()
			if !ok {
				return false, Status{}, nil
			}
			r.comm.proc.clock.AdvanceTo(done)
			r.comm.proc.putRendezvous(r.ps)
		}
		r.complete(Status{}, nil)
	}
	r.release()
	return true, r.status, r.err
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r != nil && r.done }

// Waitall completes every request in order and returns the first error.
func Waitall(reqs []*Request) error {
	var firstErr error
	for i, r := range reqs {
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: Waitall request %d: %w", i, err)
		}
	}
	return firstErr
}

// Waitany blocks until one of the active requests completes and returns
// its index and status. A request completed by Proc.Progress but not yet
// observed is still active and is harvested here, like MPI_Waitany over a
// completed-but-unwaited request. Requests that are nil or already
// harvested are inactive; when every request is inactive, Waitany returns
// index -1 immediately, like MPI_Waitany's MPI_UNDEFINED.
func Waitany(reqs []*Request) (int, Status, error) {
	for {
		active := false
		var proc *Proc
		for i, r := range reqs {
			if r == nil || r.pooled {
				continue
			}
			active = true
			proc = r.comm.proc
			if done, st, err := r.Test(); done {
				return i, st, err
			}
		}
		if !active {
			return -1, Status{}, nil
		}
		// A declared stall means none of the pending requests can ever
		// complete (the verification pass saw them unprogressable): error
		// out instead of polling forever.
		if proc.failure != nil || proc.world.failedFlag.Load() {
			return -1, Status{}, proc.parkFailure()
		}
		// Nothing completed this pass: hand the CPU to peer ranks before
		// polling again. Under the event engine the rank parks instead;
		// any delivery into its mailbox or rendezvous completion wakes it
		// for the next poll.
		if proc.ev != nil {
			proc.park()
		} else if wd := proc.world.wd; wd != nil {
			// Register the outstanding rendezvous handshakes so the stall
			// verification can prove none of them is already reported (a
			// reported handshake would complete on the next poll pass).
			var rdvs []*rendezvous
			for _, r := range reqs {
				if r == nil || r.pooled || r.done {
					continue
				}
				if r.ps != nil {
					rdvs = append(rdvs, r.ps)
				}
				if r.sched != nil && r.sched.pending != nil {
					rdvs = append(rdvs, r.sched.pending)
				}
			}
			wd.pollWait(proc.rank, rdvs)
		} else {
			runtime.Gosched()
		}
	}
}

// Testall advances every request without blocking and reports whether all
// of them have completed; the first recorded error is returned once every
// request is done.
func Testall(reqs []*Request) (bool, error) {
	all := true
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if done, _, _ := r.Test(); !done {
			all = false
		}
	}
	if !all {
		return false, nil
	}
	var firstErr error
	for i, r := range reqs {
		if r == nil {
			continue
		}
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: Testall request %d: %w", i, r.err)
		}
	}
	return true, firstErr
}

// Testany makes one non-blocking pass over the active requests and returns
// the index and status of the first one found complete during the pass
// (including requests finished earlier by Proc.Progress), or -1 when none
// is (or when every request is inactive).
func Testany(reqs []*Request) (int, Status, error) {
	for i, r := range reqs {
		if r == nil || r.pooled {
			continue
		}
		if done, st, err := r.Test(); done {
			return i, st, err
		}
	}
	return -1, Status{}, nil
}
