package mpi

import "fmt"

// Nonblocking point-to-point operations. The real OSU bandwidth tests post
// windows of MPI_Isend/MPI_Irecv; OMB-Py's first release benchmarks only
// blocking operations (paper Table II), so the benchmark engine does not
// depend on these, but the runtime provides them for applications built on
// the library.
//
// Semantics notes (documented deviations from full MPI):
//   - Isend injects immediately (eager) or posts the RTS (rendezvous);
//     Wait blocks until the transfer drains, exactly like Send's tail.
//   - Irecv records the (source, tag) to match; the match happens at
//     Wait time. Matching order among multiple pending Irecvs is the order
//     their Waits run, which for single-threaded ranks equals post order
//     when Waitall is used.

// Request tracks an outstanding nonblocking operation.
type Request struct {
	comm *Comm
	// send side: the rendezvous handshake (nil for eager sends, which
	// complete at post time).
	ps   *rendezvous
	sent bool
	// recv side
	buf      []byte
	max      int
	src, tag int
	isRecv   bool

	done   bool
	status Status
}

// Isend starts a nonblocking standard-mode send and returns its request.
func (c *Comm) Isend(buf []byte, dst, tag int) (*Request, error) {
	if err := c.checkRank(dst, "Isend dst"); err != nil {
		return nil, err
	}
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	ps := c.postSend(dst, tag, buf, len(buf))
	return &Request{comm: c, ps: ps, sent: true}, nil
}

// IsendN is Isend with an explicit byte count (timing-only worlds).
func (c *Comm) IsendN(buf []byte, n, dst, tag int) (*Request, error) {
	if err := c.checkRank(dst, "Isend dst"); err != nil {
		return nil, err
	}
	if err := checkTag(tag); err != nil {
		return nil, err
	}
	ps := c.postSend(dst, tag, buf, n)
	return &Request{comm: c, ps: ps, sent: true}, nil
}

// Irecv posts a nonblocking receive; the match completes at Wait.
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src, "Irecv src"); err != nil {
			return nil, err
		}
	}
	if tag != AnyTag {
		if err := checkTag(tag); err != nil {
			return nil, err
		}
	}
	return &Request{comm: c, buf: buf, max: len(buf), src: src, tag: tag, isRecv: true}, nil
}

// IrecvN is Irecv with an explicit maximum byte count.
func (c *Comm) IrecvN(buf []byte, n, src, tag int) (*Request, error) {
	r, err := c.Irecv(buf, src, tag)
	if err != nil {
		return nil, err
	}
	r.max = n
	return r, nil
}

// Wait blocks until the request completes and returns its status (receives
// only; sends return a zero Status).
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, fmt.Errorf("mpi: Wait on nil request")
	}
	if r.done {
		return r.status, nil
	}
	r.done = true
	if r.isRecv {
		st, err := r.comm.recvBytes(r.src, r.tag, r.buf, r.max)
		r.status = st
		return st, err
	}
	if r.sent {
		r.comm.completeSend(r.ps)
	}
	return Status{}, nil
}

// Done reports whether Wait has completed the request.
func (r *Request) Done() bool { return r != nil && r.done }

// Waitall completes every request in order and returns the first error.
func Waitall(reqs []*Request) error {
	var firstErr error
	for i, r := range reqs {
		if _, err := r.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("mpi: Waitall request %d: %w", i, err)
		}
	}
	return firstErr
}
