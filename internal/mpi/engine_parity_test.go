package mpi

import (
	"fmt"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Engine-parity suite: the event engine must reproduce the goroutine
// engine's virtual-time behaviour exactly. For every registered algorithm
// of every collective, at three message sizes (eager, mid, rendezvous) and
// three placements (one rank per node, multi-rank nodes, a folded non-power-
// of-two world), both engines run the same timing-only workload and must
// agree on every rank's final virtual clock and on every rank's full
// message log (send and recv events, in program order, with timestamps).

// parityPlacements are the (ranks, ppn) shapes of the suite.
var parityPlacements = [][2]int{{16, 1}, {8, 4}, {63, 7}}

// engineParitySizes cover the eager and rendezvous protocols and the large-vector
// algorithm switch points.
var engineParitySizes = []int{1024, 16 * 1024, 128 * 1024}

// parityOutcome is one engine's observable result.
type parityOutcome struct {
	end    []vtime.Micros
	events [][]Event // per rank, in that rank's program order
}

// runCollParity runs one collective twice (cold and steady-state pools) on
// the given engine and captures the outcome.
func runCollParity(t *testing.T, engine Engine, ranks, ppn int, coll Collective, algo string, n int) parityOutcome {
	t.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	trace := NewTrace()
	w, err := NewWorld(Config{
		Placement:  place,
		Model:      netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData:  false,
		Engine:     engine,
		Trace:      trace,
		Algorithms: map[Collective]string{coll: algo},
	})
	if err != nil {
		t.Fatal(err)
	}
	end := make([]vtime.Micros, ranks)
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		for i := 0; i < 2; i++ {
			if err := invokeCollective(c, coll, n); err != nil {
				return err
			}
		}
		end[p.Rank()] = p.Wtime()
		return nil
	})
	if err != nil {
		t.Fatalf("%v engine: %v", engine, err)
	}
	perRank := make([][]Event, ranks)
	trace.mu.Lock()
	for _, e := range trace.events {
		perRank[e.Rank] = append(perRank[e.Rank], e)
	}
	trace.mu.Unlock()
	return parityOutcome{end: end, events: perRank}
}

// invokeCollective calls one registry collective in its timing-only form.
func invokeCollective(c *Comm, coll Collective, n int) error {
	switch coll {
	case CollBcast:
		return c.BcastN(nil, n, 0)
	case CollAllreduce:
		return c.AllreduceN(nil, nil, n, Float32, OpSum)
	case CollAllgather:
		return c.AllgatherN(nil, n, nil)
	case CollAlltoall:
		return c.AlltoallN(nil, n, nil)
	case CollReduceScatter:
		return c.ReduceScatterBlockN(nil, nil, n, Float32, OpSum)
	default:
		return fmt.Errorf("parity test: unhandled collective %s", coll)
	}
}

// runSubCommParity runs a workload over Dup'd and Split sub-communicators
// on the given engine and captures every rank's final virtual clock: a
// world-comm barrier, collectives on a full duplicate, collectives on
// interleaved color groups (odd world sizes give non-power-of-two halves),
// and a closing barrier on the duplicate so cross-group skew feeds back
// into every clock.
func runSubCommParity(t *testing.T, engine Engine, ranks, ppn int) []vtime.Micros {
	t.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData: false,
		Engine:    engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := make([]vtime.Micros, ranks)
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if err := c.Barrier(); err != nil {
			return err
		}
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		half, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		for _, n := range []int{1024, 16 * 1024} {
			if err := dup.AllreduceN(nil, nil, n, Float32, OpSum); err != nil {
				return err
			}
			if err := half.BcastN(nil, n, 0); err != nil {
				return err
			}
			if err := half.AllreduceN(nil, nil, n, Float32, OpSum); err != nil {
				return err
			}
			if err := half.AllgatherN(nil, n, nil); err != nil {
				return err
			}
		}
		if err := dup.Barrier(); err != nil {
			return err
		}
		end[p.Rank()] = p.Wtime()
		return nil
	})
	if err != nil {
		t.Fatalf("%v engine: %v", engine, err)
	}
	return end
}

// TestEngineParitySubComms pins the event engine to the goroutine engine
// on Dup/Split sub-communicator collectives: TestEngineParity only covers
// world-comm schedules, but the split bookkeeping (fresh contexts, group
// rank translation, interleaved color groups) runs through separate code
// in both engines and must agree on every rank's final virtual clock.
func TestEngineParitySubComms(t *testing.T) {
	for _, shape := range parityPlacements {
		ranks, ppn := shape[0], shape[1]
		t.Run(fmt.Sprintf("%dx%d", ranks, ppn), func(t *testing.T) {
			want := runSubCommParity(t, EngineGoroutine, ranks, ppn)
			got := runSubCommParity(t, EngineEvent, ranks, ppn)
			for r := 0; r < ranks; r++ {
				if got[r] != want[r] {
					t.Errorf("rank %d: virtual end time diverged: goroutine %v, event %v",
						r, want[r], got[r])
				}
			}
		})
	}
}

// TestEngineParity pins the event engine to the goroutine engine, bit for
// bit, across the full algorithm registry.
func TestEngineParity(t *testing.T) {
	for _, shape := range parityPlacements {
		ranks, ppn := shape[0], shape[1]
		for _, coll := range Collectives() {
			for _, alg := range Algorithms(coll) {
				if !alg.FeasibleFor(Selection{CommSize: ranks}) {
					continue
				}
				for _, n := range engineParitySizes {
					name := fmt.Sprintf("%dx%d/%s/%s/%d", ranks, ppn, coll, alg.Name, n)
					t.Run(name, func(t *testing.T) {
						want := runCollParity(t, EngineGoroutine, ranks, ppn, coll, alg.Name, n)
						got := runCollParity(t, EngineEvent, ranks, ppn, coll, alg.Name, n)
						for r := 0; r < ranks; r++ {
							if got.end[r] != want.end[r] {
								t.Errorf("rank %d: virtual end time diverged: goroutine %v, event %v",
									r, want.end[r], got.end[r])
							}
							if len(got.events[r]) != len(want.events[r]) {
								t.Fatalf("rank %d: message log length diverged: goroutine %d events, event %d",
									r, len(want.events[r]), len(got.events[r]))
							}
							for i := range want.events[r] {
								if got.events[r][i] != want.events[r][i] {
									t.Fatalf("rank %d event %d diverged:\ngoroutine: %+v\nevent:     %+v",
										r, i, want.events[r][i], got.events[r][i])
								}
							}
						}
					})
				}
			}
		}
	}
}
