package mpi

// Cross-world slab recycling. A benchmark sweep builds a fresh World per
// measured iteration, and at huge-world scale the dominant steady-state
// allocations are three O(ranks) slabs: the per-Run Proc and eventRank
// arrays (event.go) and the per-world mailbox array (NewWorld). At 64Ki
// ranks they total ~340MB per iteration — none of it survives the
// iteration, so a steady sweep spent a visible slice of its wall clock
// faulting in fresh zeroed pages and then garbage-collecting them.
//
// Each pool retains the single most recently released slab. Reuse is
// keyed on exact length: a match is cleared in place (one memclr over
// warm pages) and handed back; a mismatch allocates fresh, and the
// retained slab stays put until a release of the new size displaces it.
// One slot is deliberate — a sweep runs one world size at a time, and a
// second resident size would double retained memory without improving
// the steady-state hit rate.
//
// Safety: a recycled slab may serve any future World, so a release must
// happen only after every pointer into the slab from longer-lived
// structures is severed. runEvent's teardown clears mailbox owners and
// harvests schedules (scrubSched drops s.c) before releasing the rank
// slabs; World.Release drops the world's own mailbox references before
// releasing that slab. The clear() on take makes stale *contents*
// harmless — only a dangling pointer INTO a slab could corrupt, and the
// per-Proc freelists (requests, rendezvous, schedules after harvest) all
// live inside the slab they die with.

import "sync"

var rankSlabPool struct {
	mu    sync.Mutex
	procs []Proc
	ers   []eventRank
}

// takeRankSlabs returns zeroed Proc and eventRank slabs of length n,
// recycling the retained pair when the size matches.
func takeRankSlabs(n int) ([]Proc, []eventRank) {
	rankSlabPool.mu.Lock()
	procs, ers := rankSlabPool.procs, rankSlabPool.ers
	if len(procs) == n {
		rankSlabPool.procs, rankSlabPool.ers = nil, nil
	} else {
		procs, ers = nil, nil
	}
	rankSlabPool.mu.Unlock()
	if procs == nil {
		return make([]Proc, n), make([]eventRank, n)
	}
	clear(procs)
	clear(ers)
	return procs, ers
}

// putRankSlabs retains a Run's rank slabs for the next same-sized Run.
func putRankSlabs(procs []Proc, ers []eventRank) {
	rankSlabPool.mu.Lock()
	rankSlabPool.procs, rankSlabPool.ers = procs, ers
	rankSlabPool.mu.Unlock()
}

var mailboxSlabPool struct {
	mu  sync.Mutex
	mbs []mailbox
}

// takeMailboxSlab returns a zeroed mailbox slab of length n; the caller
// re-runs its construction loop (condvar binding, size) over it.
func takeMailboxSlab(n int) []mailbox {
	mailboxSlabPool.mu.Lock()
	mbs := mailboxSlabPool.mbs
	if len(mbs) == n {
		mailboxSlabPool.mbs = nil
	} else {
		mbs = nil
	}
	mailboxSlabPool.mu.Unlock()
	if mbs == nil {
		return make([]mailbox, n)
	}
	clear(mbs)
	return mbs
}

func putMailboxSlab(mbs []mailbox) {
	mailboxSlabPool.mu.Lock()
	mailboxSlabPool.mbs = mbs
	mailboxSlabPool.mu.Unlock()
}
