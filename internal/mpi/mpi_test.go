package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/topology"
)

// testWorld builds a world of n ranks on Frontera with the given ppn.
func testWorld(t *testing.T, n, ppn int) *World {
	t.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, n, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pattern fills a deterministic, rank-and-index-dependent byte pattern.
func pattern(rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte((rank*131 + i*7 + 13) % 251)
	}
	return b
}

func TestSendRecvSmall(t *testing.T) {
	w := testWorld(t, 2, 2)
	const n = 64
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(pattern(0, n), 1, 7)
		}
		buf := make([]byte, n)
		st, err := c.Recv(buf, 0, 7)
		if err != nil {
			return err
		}
		if st.Source != 0 || st.Tag != 7 || st.Count != n {
			return fmt.Errorf("status %+v", st)
		}
		if !bytes.Equal(buf, pattern(0, n)) {
			return errors.New("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvRendezvous(t *testing.T) {
	w := testWorld(t, 2, 1) // inter-node: eager limit 16 KiB
	const n = 256 * 1024
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(pattern(0, n), 1, 3)
		}
		buf := make([]byte, n)
		if _, err := c.Recv(buf, 0, 3); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(0, n)) {
			return errors.New("rendezvous payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	w := testWorld(t, 3, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			got := map[int]bool{}
			buf := make([]byte, 8)
			for i := 0; i < 2; i++ {
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					return err
				}
				if st.Tag != 10+st.Source {
					return fmt.Errorf("tag %d from %d", st.Tag, st.Source)
				}
				got[st.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources seen: %v", got)
			}
			return nil
		default:
			return c.Send(pattern(p.Rank(), 8), 0, 10+p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	w := testWorld(t, 2, 2)
	const count = 50
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < count; i++ {
				if err := c.Send([]byte{byte(i)}, 1, 5); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < count; i++ {
			if _, err := c.Recv(buf, 0, 5); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, 100); err != nil {
				return err
			}
			return c.Send([]byte{2}, 1, 200)
		}
		buf := make([]byte, 1)
		// Receive the second tag first.
		if _, err := c.Recv(buf, 0, 200); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("tag 200 delivered %d", buf[0])
		}
		if _, err := c.Recv(buf, 0, 100); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("tag 100 delivered %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(pattern(0, 32), 1, 1)
		}
		buf := make([]byte, 8)
		_, err := c.Recv(buf, 0, 1)
		var trunc *ErrTruncate
		if !errors.As(err, &trunc) {
			return fmt.Errorf("want ErrTruncate, got %v", err)
		}
		if trunc.Posted != 8 || trunc.Actual != 32 {
			return fmt.Errorf("trunc %+v", trunc)
		}
		if !bytes.Equal(buf, pattern(0, 32)[:8]) {
			return errors.New("truncated prefix wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchangeLarge(t *testing.T) {
	// Both ranks exchange rendezvous-sized messages simultaneously; this
	// deadlocks unless Sendrecv posts before completing.
	w := testWorld(t, 2, 1)
	const n = 128 * 1024
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		peer := 1 - p.Rank()
		rbuf := make([]byte, n)
		if _, err := c.Sendrecv(pattern(p.Rank(), n), peer, 9, rbuf, peer, 9); err != nil {
			return err
		}
		if !bytes.Equal(rbuf, pattern(peer, n)) {
			return errors.New("exchange payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArgs(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if err := c.Send(nil, 5, 0); err == nil {
			return errors.New("Send to rank 5 should fail")
		}
		if err := c.Send(nil, 1, -3); err == nil {
			return errors.New("negative tag should fail")
		}
		if err := c.Send(nil, 1, MaxUserTag+1); err == nil {
			return errors.New("reserved tag should fail")
		}
		if _, err := c.Recv(nil, 7, 0); err == nil {
			return errors.New("Recv from rank 7 should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPingPongLatencyDeterministic(t *testing.T) {
	measure := func() float64 {
		w := testWorld(t, 2, 1)
		var lat float64
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			buf := make([]byte, 8)
			if err := c.Barrier(); err != nil {
				return err
			}
			start := p.Wtime()
			const iters = 100
			for i := 0; i < iters; i++ {
				if p.Rank() == 0 {
					if err := c.Send(buf, 1, 1); err != nil {
						return err
					}
					if _, err := c.Recv(buf, 1, 1); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(buf, 0, 1); err != nil {
						return err
					}
					if err := c.Send(buf, 0, 1); err != nil {
						return err
					}
				}
			}
			if p.Rank() == 0 {
				lat = float64(p.Wtime()-start) / (2 * iters)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return lat
	}
	a, b := measure(), measure()
	if a != b {
		t.Fatalf("virtual latency not deterministic: %v vs %v", a, b)
	}
	// Inter-node small-message latency should be around 1 us (C baseline).
	if a < 0.5 || a > 3.0 {
		t.Errorf("8B inter-node latency %v us outside sane range", a)
	}
}

func TestClockMonotoneAcrossMessages(t *testing.T) {
	w := testWorld(t, 2, 1)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		prev := p.Wtime()
		for i := 0; i < 10; i++ {
			if p.Rank() == 0 {
				if err := c.Send(make([]byte, 1024), 1, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(make([]byte, 1024), 0, 2); err != nil {
					return err
				}
			}
			if now := p.Wtime(); now < prev {
				return fmt.Errorf("clock went backwards: %v -> %v", prev, now)
			} else {
				prev = now
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := testWorld(t, 2, 2)
	boom := errors.New("boom")
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			return boom
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 || !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	// A panicking rank must not bring the process down; but any rank
	// blocked on it would hang, so use a communication-free body.
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 0 {
		t.Fatalf("got %v", err)
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	place, _ := topology.NewPlacement(&topology.Frontera, 2, 1, topology.Block, false)
	if _, err := NewWorld(Config{Placement: place}); err == nil {
		t.Error("missing model should fail")
	}
	// Mismatched cluster between model and placement.
	model := netmodel.MustNew(&topology.RI2, netmodel.MVAPICH2)
	if _, err := NewWorld(Config{Placement: place, Model: model}); err == nil {
		t.Error("cluster mismatch should fail")
	}
}

func TestEagerFasterThanRendezvousKnee(t *testing.T) {
	// The one-way cost must jump at the eager limit (handshake appears).
	model := netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2)
	link := topology.LinkInterNode
	limit := model.Params(link).EagerLimit
	below := model.PtPt(link, limit-1, false, false)
	above := model.PtPt(link, limit, false, false)
	if !below.Eager || above.Eager {
		t.Fatalf("protocol switch wrong: below=%v above=%v", below.Eager, above.Eager)
	}
	if above.Wire <= below.Wire {
		t.Errorf("rendezvous knee missing: %v <= %v", above.Wire, below.Wire)
	}
}
