package mpi

import (
	"testing"
)

// Allocation-regression tests pinning the zero-allocation fast path. Each
// measured run builds a fresh world, so runs carry a fixed construction
// cost (mailboxes, goroutines, pool warm-up); the tests therefore compare
// runs of k and 2k operations and bound the *marginal* allocations per
// operation, which is exactly the steady-state cost the pools are supposed
// to hold at zero. The pre-pooling engine spent ~4 allocs per eager
// message and tens per collective invocation, so these budgets fail loudly
// if pooling rots.

// marginalAllocsPerOp returns (allocs(2k ops) - allocs(k ops)) / k.
func marginalAllocsPerOp(t *testing.T, k int, run func(iters int)) float64 {
	t.Helper()
	base := testing.AllocsPerRun(3, func() { run(k) })
	double := testing.AllocsPerRun(3, func() { run(2 * k) })
	return (double - base) / float64(k)
}

func TestEagerSendRecvAllocs(t *testing.T) {
	pingPong := func(iters int) {
		w := testWorld(t, 2, 2)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			buf := make([]byte, 1024)
			for i := 0; i < iters; i++ {
				if c.Rank() == 0 {
					if err := c.Send(buf, 1, 1); err != nil {
						return err
					}
					if _, err := c.Recv(buf, 1, 1); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(buf, 0, 1); err != nil {
						return err
					}
					if err := c.Send(buf, 0, 1); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
	// Steady state is zero allocations per round trip (two eager 1 KiB
	// messages with payload copies); the pre-pooling engine measured ~4.
	if per := marginalAllocsPerOp(t, 200, pingPong); per > 0.5 {
		t.Errorf("eager ping-pong allocates %.2f allocs/op, want <= 0.5", per)
	}
}

func TestIsendIrecvWindowAllocs(t *testing.T) {
	const window, n = 16, 1024
	windowed := func(iters int) {
		w := testWorld(t, 2, 2)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			buf := make([]byte, n)
			reqs := make([]*Request, window)
			// The osu_bw shape, ack included: without the per-window ack an
			// all-eager sender runs unboundedly ahead of the receiver and
			// the in-flight envelope population never reaches steady state.
			for i := 0; i < iters; i++ {
				for k := range reqs {
					var err error
					if c.Rank() == 0 {
						reqs[k], err = c.Isend(buf, 1, 2)
					} else {
						reqs[k], err = c.Irecv(buf, 0, 2)
					}
					if err != nil {
						return err
					}
				}
				if err := Waitall(reqs); err != nil {
					return err
				}
				if c.Rank() == 0 {
					if _, err := c.RecvN(nil, 4, 1, 3); err != nil {
						return err
					}
				} else if err := c.SendN(nil, 4, 0, 3); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
	// One op is a full window of Isend/Irecv + Waitall; pooled Requests
	// make the steady state allocation-free.
	if per := marginalAllocsPerOp(t, 100, windowed); per > 0.5 {
		t.Errorf("Isend/Irecv window allocates %.2f allocs/op, want <= 0.5", per)
	}
}

func TestIallreduceAllocs(t *testing.T) {
	iallreduce := func(iters int) {
		w := testWorld(t, 8, 4)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			sbuf := make([]byte, 4096)
			rbuf := make([]byte, 4096)
			for i := 0; i < iters; i++ {
				req, err := c.Iallreduce(sbuf, rbuf, Float32, OpSum)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
	// Collective Requests and their compiled schedules ride the per-rank
	// freelists and the scratch arena: zero marginal allocations per op.
	if per := marginalAllocsPerOp(t, 100, iallreduce); per > 1.0 {
		t.Errorf("8-rank Iallreduce allocates %.2f allocs/op, want <= 1.0", per)
	}
}

func TestAllreduceAllocs(t *testing.T) {
	allreduce := func(iters int) {
		w := testWorld(t, 8, 4)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			sbuf := make([]byte, 4096)
			rbuf := make([]byte, 4096)
			for i := 0; i < iters; i++ {
				if err := c.Allreduce(sbuf, rbuf, Float32, OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
	// 8 ranks used to cost tens of allocations per invocation (staging
	// buffers, schedules, envelopes); pooled steady state is zero.
	if per := marginalAllocsPerOp(t, 100, allreduce); per > 1.0 {
		t.Errorf("8-rank allreduce allocates %.2f allocs/op, want <= 1.0", per)
	}
}
