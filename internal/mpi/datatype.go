package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType identifies an element datatype for typed collectives and reductions.
type DType int

// Supported datatypes.
const (
	Uint8 DType = iota
	Int32
	Int64
	Float32
	Float64
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Uint8:
		return 1
	case Int32, Float32:
		return 4
	case Int64, Float64:
		return 8
	default:
		panic(fmt.Sprintf("mpi: unknown DType(%d)", int(d)))
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Uint8:
		return "uint8"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// ParseDType resolves a datatype by name.
func ParseDType(s string) (DType, error) {
	switch s {
	case "uint8", "u8", "byte", "char":
		return Uint8, nil
	case "int32", "i32":
		return Int32, nil
	case "int64", "i64":
		return Int64, nil
	case "float32", "f32":
		return Float32, nil
	case "float64", "f64", "double":
		return Float64, nil
	default:
		return 0, fmt.Errorf("mpi: unknown datatype %q", s)
	}
}

// Op identifies a reduction operation.
type Op int

// Supported reduction operations.
const (
	OpSum Op = iota
	OpProd
	OpMin
	OpMax
	OpBAnd
	OpBOr
	OpBXor
	OpLAnd
	OpLOr
	// OpMinSumMax reduces a float vector of consecutive (min, sum, max)
	// triples: element 3k takes the minimum, 3k+1 the sum, 3k+2 the
	// maximum. It fuses the three aggregation reductions of a benchmark row
	// into one message round; buffers must hold whole triples and be
	// reduced as whole vectors (no windowed algorithms).
	OpMinSumMax
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpBAnd:
		return "band"
	case OpBOr:
		return "bor"
	case OpBXor:
		return "bxor"
	case OpLAnd:
		return "land"
	case OpLOr:
		return "lor"
	case OpMinSumMax:
		return "min_sum_max"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ReduceBuffers computes dst[i] = op(dst[i], src[i]) element-wise over byte
// buffers interpreted as dt; it exposes the runtime's local reduction
// kernels for callers (like the binding layer's object reductions) that
// combine buffers outside a collective.
func ReduceBuffers(dst, src []byte, dt DType, op Op) error {
	return reduceInto(dst, src, dt, op)
}

// reduceInto computes dst[i] = op(dst[i], src[i]) elementwise over byte
// buffers interpreted as dt. Both buffers must hold a whole number of
// elements of dt and have equal length.
func reduceInto(dst, src []byte, dt DType, op Op) error {
	if len(dst) != len(src) {
		return fmt.Errorf("mpi: reduce buffer length mismatch %d vs %d", len(dst), len(src))
	}
	es := dt.Size()
	if len(dst)%es != 0 {
		return fmt.Errorf("mpi: reduce buffer length %d not a multiple of %s size %d", len(dst), dt, es)
	}
	switch dt {
	case Uint8:
		return reduceUint8(dst, src, op)
	case Int32:
		return reduceInt(dst, src, op, 4)
	case Int64:
		return reduceInt(dst, src, op, 8)
	case Float32:
		return reduceFloat(dst, src, op, 4)
	case Float64:
		return reduceFloat(dst, src, op, 8)
	default:
		return fmt.Errorf("mpi: reduce on unknown datatype %v", dt)
	}
}

func reduceUint8(dst, src []byte, op Op) error {
	for i := range dst {
		a, b := dst[i], src[i]
		switch op {
		case OpSum:
			dst[i] = a + b
		case OpProd:
			dst[i] = a * b
		case OpMin:
			if b < a {
				dst[i] = b
			}
		case OpMax:
			if b > a {
				dst[i] = b
			}
		case OpBAnd:
			dst[i] = a & b
		case OpBOr:
			dst[i] = a | b
		case OpBXor:
			dst[i] = a ^ b
		case OpLAnd:
			dst[i] = boolByte(a != 0 && b != 0)
		case OpLOr:
			dst[i] = boolByte(a != 0 || b != 0)
		default:
			return fmt.Errorf("mpi: op %v unsupported for uint8", op)
		}
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func reduceInt(dst, src []byte, op Op, width int) error {
	for off := 0; off < len(dst); off += width {
		var a, b int64
		if width == 4 {
			a = int64(int32(binary.LittleEndian.Uint32(dst[off:])))
			b = int64(int32(binary.LittleEndian.Uint32(src[off:])))
		} else {
			a = int64(binary.LittleEndian.Uint64(dst[off:]))
			b = int64(binary.LittleEndian.Uint64(src[off:]))
		}
		var r int64
		switch op {
		case OpSum:
			r = a + b
		case OpProd:
			r = a * b
		case OpMin:
			r = a
			if b < a {
				r = b
			}
		case OpMax:
			r = a
			if b > a {
				r = b
			}
		case OpBAnd:
			r = a & b
		case OpBOr:
			r = a | b
		case OpBXor:
			r = a ^ b
		case OpLAnd:
			r = int64(boolByte(a != 0 && b != 0))
		case OpLOr:
			r = int64(boolByte(a != 0 || b != 0))
		default:
			return fmt.Errorf("mpi: op %v unsupported for integers", op)
		}
		if width == 4 {
			binary.LittleEndian.PutUint32(dst[off:], uint32(int32(r)))
		} else {
			binary.LittleEndian.PutUint64(dst[off:], uint64(r))
		}
	}
	return nil
}

func reduceFloat(dst, src []byte, op Op, width int) error {
	if op == OpMinSumMax && (len(dst)/width)%3 != 0 {
		return fmt.Errorf("mpi: op %v needs whole (min, sum, max) triples, got %d elements", op, len(dst)/width)
	}
	for off := 0; off < len(dst); off += width {
		var a, b float64
		if width == 4 {
			a = float64(math.Float32frombits(binary.LittleEndian.Uint32(dst[off:])))
			b = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[off:])))
		} else {
			a = math.Float64frombits(binary.LittleEndian.Uint64(dst[off:]))
			b = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
		}
		var r float64
		switch op {
		case OpSum:
			r = a + b
		case OpProd:
			r = a * b
		case OpMin:
			r = math.Min(a, b)
		case OpMax:
			r = math.Max(a, b)
		case OpMinSumMax:
			switch (off / width) % 3 {
			case 0:
				r = math.Min(a, b)
			case 1:
				r = a + b
			default:
				r = math.Max(a, b)
			}
		case OpLAnd:
			r = float64(boolByte(a != 0 && b != 0))
		case OpLOr:
			r = float64(boolByte(a != 0 || b != 0))
		default:
			return fmt.Errorf("mpi: op %v unsupported for floats", op)
		}
		if width == 4 {
			binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(float32(r)))
		} else {
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(r))
		}
	}
	return nil
}

// EncodeFloat64s packs a float64 slice into a little-endian byte buffer;
// helper for tests and examples.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s unpacks a little-endian byte buffer into float64s.
func DecodeFloat64s(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// EncodeInt32s packs an int32 slice into a little-endian byte buffer.
func EncodeInt32s(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// DecodeInt32s unpacks a little-endian byte buffer into int32s.
func DecodeInt32s(buf []byte) []int32 {
	out := make([]int32, len(buf)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out
}
