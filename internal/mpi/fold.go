package mpi

// Symmetry folding: the event engine's huge-world fast path. In a regular
// placement, most ranks of a collective round execute the identical compiled
// step at the identical virtual time; simulating each rank separately is
// redundant. When every live rank of the world enters the same cached
// collective schedule, the loop gathers them (each parks with waitFold), and
// the last joiner resolves the whole invocation symbolically:
//
//   1. The schedule's *shape* is analyzed once (per cached-schedule
//      identity): every rank must run the same step-op sequence, built from
//      exchange/reduce/copy primitives only, with one global per-step peer
//      delta (xor "r^d" or modular "(r+d) mod p") that is its own inverse
//      across the step. Ranks collapse into structural classes by their
//      per-step (bytes, outbound link class) signature, refined until every
//      class agrees on the class of each step peer; per-class per-step
//      message prices come from the same netmodel calls the per-rank path
//      makes.
//   2. Each invocation classifies ranks by entry state (clock bits plus
//      live link-busy state), intersects that with the structural classes,
//      and re-refines to a fixpoint (cached per observed entry pattern). In
//      the steady benchmark loop every rank enters identically and this
//      collapses to the precomputed structural partition.
//   3. A coupled recurrence advances one clock per class through the steps,
//      performing literally the same float64 operations, in the same order,
//      as postSendPriced/finishRecv/completeSend would per rank — virtual
//      times stay bit-identical (TestEngineParity pins this).
//   4. Exit clocks fan out with Clock.Set; exit link-busy state fans out as
//      one shared symbolic foldLB per class, materialized lazily by the
//      next non-fold touch of the rank's link state.
//
// Anything irregular — sub-communicators, non-power-of-two fold ranks
// (opSend/opRecv steps), mixed forced algorithms, pending mailbox traffic,
// ranks with outstanding nonblocking collectives — fails eligibility or
// shape analysis and falls back to per-rank simulation, so folding can only
// change speed, never a number. A partial gather that stalls is released by
// the loop's safety valve (releaseFoldStalled), so folding cannot introduce
// a deadlock the unfolded engine would not have had.

import (
	"math"

	"repro/internal/topology"
	"repro/internal/vtime"
)

// FoldStats counts symmetry-folding outcomes on a world's event engine.
type FoldStats struct {
	// Folded counts collective invocations simulated per equivalence class.
	Folded int64
	// Fallback counts full gathers that resolved to per-rank execution
	// (unfoldable shape, tag mismatch, or pending mailbox traffic).
	Fallback int64
	// Released counts partial gathers released by the deadlock safety
	// valve because some rank never joined.
	Released int64
}

// FoldStats returns the world's symmetry-folding counters. They are advisory
// (folding is bit-identical to per-rank execution) and reset only with the
// world.
func (w *World) FoldStats() FoldStats { return w.foldStats }

// foldKind is the global peer-delta family of a foldable schedule.
type foldKind uint8

const (
	foldKindNone foldKind = iota
	foldKindXor           // peer = rank ^ delta
	foldKindMod           // peer = (rank + delta) mod p
)

const (
	// foldMaxRanks bounds worlds eligible for folding: class ids are packed
	// three to a word during refinement.
	foldMaxRanks = 1 << 21
	// foldDenseRefine bounds the class count refined through a dense
	// (class x class) table; beyond it a map takes over.
	foldDenseRefine = 1024
	// foldMaxClasses aborts a fold whose refined partition approaches
	// per-rank size: the recurrence would not beat per-rank replay.
	foldMaxClasses = 16384
	// foldMaxPartitions bounds cached entry partitions per shape.
	foldMaxPartitions = 8
)

// foldApply maps a rank to its peer under a delta.
func foldApply(kind foldKind, r, d, p int) int {
	if kind == foldKindXor {
		return r ^ d
	}
	q := r + d
	if q >= p {
		q -= p
	}
	return q
}

// foldInvDelta recovers the delta that maps r to gdst, or -1 when the kind
// has no delta family.
func foldInvDelta(kind foldKind, r, gdst, p int) int {
	switch kind {
	case foldKindXor:
		return r ^ gdst
	case foldKindMod:
		d := gdst - r
		if d < 0 {
			d += p
		}
		return d
	default:
		return -1
	}
}

// foldLB is the symbolic link-busy state a folded collective leaves behind:
// (peer delta, busy-until) pairs shared by every rank of an equivalence
// class. materializeFoldLB (Proc) expands it into the rank's real
// per-destination store the moment any non-fold path touches link state.
type foldLB struct {
	kind   foldKind
	deltas []int32
	vals   []vtime.Micros
}

// materializeFoldLB expands the rank's symbolic link-busy state into its
// real store: entries already in the past are dropped (every read maxes
// against the clock, so a dead entry is indistinguishable from none).
func (p *Proc) materializeFoldLB() {
	f := p.foldLB
	p.foldLB = nil
	now := p.clock.Now()
	for i, d := range f.deltas {
		if f.vals[i] > now {
			p.lbDirty = true
			p.lbStore(foldApply(f.kind, p.rank, int(d), p.world.size), f.vals[i])
		}
	}
}

// foldEntriesLive reports whether any symbolic entry is still in the future.
func foldEntriesLive(f *foldLB, now vtime.Micros) bool {
	for _, v := range f.vals {
		if v > now {
			return true
		}
	}
	return false
}

// foldStep is one analyzed schedule step, uniform across ranks.
type foldStep struct {
	op        collOp
	sendDelta int32
	recvDelta int32
	slot      int32 // wire-slot index of sendDelta; -1 for local steps
}

// foldCost is the per-(structural class, step) price table entry.
type foldCost struct {
	pyLock   vtime.Micros
	sendOver vtime.Micros
	wire     vtime.Micros
	transmit vtime.Micros
	recvOver vtime.Micros
	compute  vtime.Micros
	eager    bool
}

// foldPartition is a refined entry partition cached per observed per-rank
// token pattern (see simulate).
type foldPartition struct {
	tok              []int32
	cls              []int32
	ncls             int
	reps             []int32
	costIdx          []int32
	sendCls, recvCls [][]int32
}

// foldShape is the once-per-shape analysis of a collective invocation. The
// structural half (kind, steps, classes, peer tables, per-class byte
// snapshots) is deterministic in (algorithm, comm size, invocation shape,
// link tables) and shareable across worlds through schedfold.go's
// process-wide structure cache; costs and parts are per-world (prices
// depend on the model and PyMode; the partition cache mutates).
type foldShape struct {
	ok     bool
	kind   foldKind
	steps  []foldStep
	nslots int
	// slotDeltas maps wire-slot index back to its send delta.
	slotDeltas []int32

	// Structural classes, refined to the peer fixpoint at build time.
	class            []int32
	nclass           int
	reps             []int32
	identIdx         []int32
	costs            [][]foldCost
	sendCls, recvCls [][]int32
	// repN/repSendN snapshot each refined class representative's per-step
	// (recv bytes, send bytes), so a cached structure re-prices under
	// another world's model without recompiling any schedule.
	repN, repSendN [][]int32
	// dom/domLink pin the exact link tables the analysis used; the
	// process-wide structure cache verifies them on every hit (its key
	// carries only their hash). nil for shapes that never leave a world.
	dom     []int32
	domLink []topology.LinkClass

	parts []*foldPartition
}

// slotOfDelta resolves a send delta to its wire slot, -1 when the shape has
// no slot for it. Slot counts are O(log p), so linear scan wins.
func (sh *foldShape) slotOfDelta(d int) int {
	if d >= 0 {
		for i, sd := range sh.slotDeltas {
			if int(sd) == d {
				return i
			}
		}
	}
	return -1
}

// foldGather is the event loop's in-progress gather of ranks parked at an
// eligible collective. Two kinds of join feed it, never mixed within a
// world: key joins (schedule folding on — the rank brings only its
// invocation key, no schedule exists) and schedule joins (schedule folding
// off — the rank brings its compiled schedule, whose key is derived from
// the replay stamps).
type foldGather struct {
	scheds []*collSched
	keys   []foldKey
	ranks  []*eventRank
	order  []int32
	joined int
	// keyed marks a gather of key joins; pend points at any joiner's
	// deferred invocation (key equality proves they are interchangeable),
	// used by the resolver to probe-compile a shape on the first miss. The
	// pointee lives in the joiner's Proc and stays valid while that rank is
	// parked in this gather.
	keyed bool
	pend  *foldPending
}

// schedShapeKey recovers the invocation shape of a cached compiled schedule
// from the replay stamps retainSched recorded on it.
func schedShapeKey(s *collSched) shapeKey {
	return shapeKey{coll: s.coll, n: s.keyN, root: s.keyRoot, dt: s.dt, op: s.op}
}

// foldEligible is the cheap per-rank pre-check run at the top of
// driveSchedEvent: only full-world, context-0, cached (buffer-free)
// schedules on untraced worlds with an empty mailbox and no outstanding
// nonblocking collectives may join a gather. With schedule folding on, the
// gather happens at collective entry instead (schedFoldEligible), so this
// schedule-level gate stays closed.
func (l *eventLoop) foldEligible(c *Comm, s *collSched) bool {
	w := l.w
	// A fault plan disables folding outright: noise/jitter draws and kill
	// checks happen per rank per invocation, which is exactly the symmetry
	// the fold exploits — bailing here keeps fold-on and fold-off runs
	// bit-identical under faults.
	if w.foldOff || !w.schedFoldOff || w.faults != nil || !s.cached || c.ctx != 0 ||
		w.size < 2 || w.size > foldMaxRanks ||
		len(c.group) != w.size || w.cfg.Trace != nil || len(c.proc.activeScheds) != 0 {
		return false
	}
	if c.proc.mbPend != 0 {
		return false
	}
	if _, no := w.foldNo[schedShapeKey(s)]; no {
		return false
	}
	return true
}

// foldJoinCommon adds the rank to the gather and parks it unless it is the
// last joiner, which resolves the whole invocation on its own stack. It
// reports true when the collective was folded (clock and link state already
// hold the exit values) and false when the rank must fall back to per-rank
// execution.
func (l *eventLoop) foldJoinCommon(er *eventRank, r int) bool {
	g := &l.fold
	w := l.w
	g.ranks[r] = er
	g.order = append(g.order, int32(r))
	g.joined++
	if g.joined == w.size-l.done {
		return l.resolveFold()
	}
	er.wait = waitFold
	er.proc.park()
	if er.foldDone {
		er.foldDone = false
		return true
	}
	return false
}

func (l *eventLoop) foldGatherInit() {
	g := &l.fold
	w := l.w
	g.scheds = make([]*collSched, w.size)
	g.keys = make([]foldKey, w.size)
	g.ranks = make([]*eventRank, w.size)
	g.order = make([]int32, 0, w.size)
}

// foldJoin is the schedule join (schedule folding off): the rank brings its
// compiled, cached schedule; on a fold the resolver runs its finish.
func (l *eventLoop) foldJoin(er *eventRank, s *collSched) bool {
	g := &l.fold
	if g.ranks == nil {
		l.foldGatherInit()
	}
	r := er.proc.rank
	g.scheds[r] = s
	g.keys[r] = foldKey{shape: schedShapeKey(s), seq: s.tag - tagCollBase}
	g.keyed = false
	return l.foldJoinCommon(er, r)
}

// foldJoinKey is the key join (schedule folding on): the rank brings only
// its deferred invocation; no schedule object exists, and on a fold none
// ever will — the resolver advances the communicator's collective sequence
// in the fan-out instead of finish.
func (l *eventLoop) foldJoinKey(er *eventRank, pend *foldPending) bool {
	g := &l.fold
	if g.ranks == nil {
		l.foldGatherInit()
	}
	r := er.proc.rank
	g.scheds[r] = nil
	g.keys[r] = pend.key
	g.keyed = true
	g.pend = pend
	return l.foldJoinCommon(er, r)
}

// resolveFold runs on the last joiner's stack once every live rank has
// gathered: verify the invocation is uniform, fold it, and wake everyone.
func (l *eventLoop) resolveFold() bool {
	w := l.w
	if l.fold.joined == w.size && l.tryFold() {
		w.foldStats.Folded++
		if l.fold.keyed {
			w.schedFoldStats.GatherHits++
		}
		l.foldRelease(true)
		return true
	}
	w.foldStats.Fallback++
	if l.fold.keyed {
		w.schedFoldStats.Fallbacks++
	}
	l.foldRelease(false)
	return false
}

// foldRelease empties the gather and wakes every parked joiner with the
// resolve verdict. The resolver itself (rankRunning) just returns. Woken
// ranks drain FIFO through the loop's foldWake list — run order cannot
// change a virtual time (Trace is nil on folded worlds), only bookkeeping.
func (l *eventLoop) foldRelease(folded bool) {
	g := &l.fold
	for _, r := range g.order {
		er := g.ranks[r]
		g.ranks[r] = nil
		g.scheds[r] = nil
		if er.state == rankBlocked {
			er.foldDone = folded
			er.state = rankRunnable
			er.wait = waitAny
			l.foldWake = append(l.foldWake, er)
		}
	}
	g.order = g.order[:0]
	g.joined = 0
}

// releaseFoldStalled is the deadlock safety valve: when the loop finds
// nothing runnable while a partial gather is pending, the gathered ranks
// fall back to per-rank execution, preserving the unfolded engine's
// semantics (including real deadlocks).
func (l *eventLoop) releaseFoldStalled() bool {
	if l.fold.joined == 0 {
		return false
	}
	l.w.foldStats.Released++
	if l.fold.keyed {
		l.w.schedFoldStats.Fallbacks++
	}
	l.foldRelease(false)
	return true
}

// tryFold validates the gathered invocation and simulates it per class:
// every rank must have joined with the identical key (same collective,
// shape and sequence number — the proof they are in the same invocation),
// and no delivery may have raced into a mailbox after its rank joined.
func (l *eventLoop) tryFold() bool {
	w := l.w
	g := &l.fold
	p := w.size
	key0 := g.keys[0]
	for r := 1; r < p; r++ {
		if g.keys[r] != key0 {
			return false
		}
	}
	for r := 0; r < p; r++ {
		// Proc-side mirror of mailbox npend: one line the resolver's token
		// scan is about to touch anyway, not a cold mailbox line per rank.
		if l.ranks[r].proc.mbPend != 0 {
			return false
		}
	}
	sk := key0.shape
	sh := w.foldShapes[sk]
	if sh == nil {
		if g.keyed {
			sh = l.buildFoldShapeProbe(sk, g.pend)
		} else {
			sh = buildFoldShapeScheds(w, g.scheds)
		}
		if w.foldShapes == nil {
			w.foldShapes = make(map[shapeKey]*foldShape, 8)
		}
		w.foldShapes[sk] = sh
	}
	if !sh.ok {
		if w.foldNo == nil {
			w.foldNo = make(map[shapeKey]struct{}, 8)
		}
		w.foldNo[sk] = struct{}{}
		return false
	}
	return sh.simulate(l)
}

const foldFNV = 14695981039346656037

func foldMix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// foldExtract is the kind- and byte-level digest of one rank-complete step
// walk: per-step ops and deltas from rank 0, the surviving global delta
// kind, and the (recv bytes, send bytes) of every (rank, step) — all a
// shape analysis needs, with no reference to any schedule object. Streaming
// extraction keeps at most one rank's step list alive at a time, so a probe
// pass over 64Ki ranks holds two int32 arrays instead of 64Ki compiled
// schedules.
type foldExtract struct {
	p, ns        int
	steps        []foldStep
	kind         foldKind
	nslots       int
	slotDeltas   []int32
	nArr, sendNA []int32 // p*ns each; meaningful on exchange/reduce steps
}

// foldExtractSteps walks every rank's step list (rank 0's is passed
// directly; stepsOf produces the rest, and may reuse one buffer between
// calls) and digests them, returning nil as soon as any uniformity
// requirement fails: same length and op sequence everywhere, only
// exchange/reduce/copy primitives, one global self-inverse peer delta
// family across all steps, and no truncating message.
func foldExtractSteps(p int, steps0 []collStep, stepsOf func(r int) []collStep) *foldExtract {
	ns := len(steps0)
	fx := &foldExtract{p: p, ns: ns, steps: make([]foldStep, ns)}
	hasExch := false
	for k, st := range steps0 {
		fs := &fx.steps[k]
		fs.op = st.op
		fs.slot = -1
		switch st.op {
		case opReduce, opReduceNC, opCopy:
			// Local; no peers.
		case opExchange:
			// Rank 0 exposes the deltas directly: 0^d == (0+d) mod p == d.
			if st.sendPeer < 0 || st.sendPeer >= p || st.peer < 0 || st.peer >= p {
				return nil
			}
			fs.sendDelta, fs.recvDelta = int32(st.sendPeer), int32(st.peer)
			hasExch = true
		default:
			return nil
		}
	}
	fx.nArr = make([]int32, p*ns)
	fx.sendNA = make([]int32, p*ns)
	// Both delta kinds start as candidates and are eliminated per (rank,
	// step); a shape may not mix kinds (modular and xor wires alias
	// differently across ranks), so one survivor must explain every step.
	xorOK, modOK := hasExch, hasExch
	for r := 0; r < p; r++ {
		st := stepsOf(r)
		if len(st) != ns {
			return nil
		}
		base := r * ns
		for k := 0; k < ns; k++ {
			fs := &fx.steps[k]
			if st[k].op != fs.op {
				return nil
			}
			switch fs.op {
			case opExchange:
				if xorOK && (st[k].sendPeer != r^int(fs.sendDelta) || st[k].peer != r^int(fs.recvDelta)) {
					xorOK = false
				}
				if modOK && (st[k].sendPeer != foldApply(foldKindMod, r, int(fs.sendDelta), p) ||
					st[k].peer != foldApply(foldKindMod, r, int(fs.recvDelta), p)) {
					modOK = false
				}
				if !xorOK && !modOK {
					return nil
				}
				fx.nArr[base+k] = int32(st[k].n)
				fx.sendNA[base+k] = int32(st[k].sendN)
			case opReduce:
				fx.nArr[base+k] = int32(st[k].n)
			}
		}
	}
	switch {
	case !hasExch:
		fx.kind = foldKindNone
	case xorOK && fx.checkKind(foldKindXor):
		fx.kind = foldKindXor
	case modOK && fx.checkKind(foldKindMod):
		fx.kind = foldKindMod
	default:
		return nil
	}
	// Wire slots, one per distinct send delta.
	for k := range fx.steps {
		fs := &fx.steps[k]
		if fs.op != opExchange {
			continue
		}
		slot := int32(-1)
		for i, sd := range fx.slotDeltas {
			if sd == fs.sendDelta {
				slot = int32(i)
				break
			}
		}
		if slot < 0 {
			slot = int32(len(fx.slotDeltas))
			fx.slotDeltas = append(fx.slotDeltas, fs.sendDelta)
		}
		fs.slot = slot
	}
	fx.nslots = len(fx.slotDeltas)
	return fx
}

// checkKind verifies a surviving candidate end to end: every exchange
// step's delta pair must be self-inverse under the kind (the rank sending
// to r is the rank r receives from), and no message may truncate (the
// per-rank path errors on truncation; a fold must surface that too, so
// such shapes do not fold).
func (fx *foldExtract) checkKind(kind foldKind) bool {
	p, ns := fx.p, fx.ns
	for k := range fx.steps {
		fs := &fx.steps[k]
		if fs.op != opExchange {
			continue
		}
		if kind == foldKindXor {
			if fs.sendDelta != fs.recvDelta {
				return false
			}
		} else if (int(fs.sendDelta)+int(fs.recvDelta))%p != 0 {
			return false
		}
		for r := 0; r < p; r++ {
			sender := foldApply(kind, r, int(fs.recvDelta), p)
			if fx.sendNA[sender*ns+k] > fx.nArr[r*ns+k] {
				return false
			}
		}
	}
	return true
}

// structEqual is the exact comparison behind the structural-signature hash.
func (fx *foldExtract) structEqual(w *World, a, b int) bool {
	if a == b {
		return true
	}
	ns := fx.ns
	ba, bb := a*ns, b*ns
	for k := range fx.steps {
		fs := &fx.steps[k]
		switch fs.op {
		case opExchange:
			if fx.nArr[ba+k] != fx.nArr[bb+k] || fx.sendNA[ba+k] != fx.sendNA[bb+k] {
				return false
			}
			da := foldApply(fx.kind, a, int(fs.sendDelta), fx.p)
			db := foldApply(fx.kind, b, int(fs.sendDelta), fx.p)
			if w.link(a, da) != w.link(b, db) {
				return false
			}
		case opReduce:
			if fx.nArr[ba+k] != fx.nArr[bb+k] {
				return false
			}
		}
	}
	return true
}

// buildFoldShapeScheds analyzes a schedule-join gather (schedule folding
// off). A shape that fails any uniformity requirement comes back with
// ok=false and is remembered in World.foldNo so later invocations skip the
// gather.
func buildFoldShapeScheds(w *World, scheds []*collSched) *foldShape {
	fx := foldExtractSteps(w.size, scheds[0].steps, func(r int) []collStep {
		return scheds[r].steps
	})
	if fx == nil {
		return &foldShape{}
	}
	return buildFoldShapeFx(w, fx)
}

// buildFoldShapeFx turns an extracted digest into a full shape: structural
// classes (signature over per-step bytes and outbound link, interned by
// hash with exact verification, then refined so every class agrees on the
// class of each step peer), per-class byte snapshots, and this world's
// price tables.
func buildFoldShapeFx(w *World, fx *foldExtract) *foldShape {
	p, ns := fx.p, fx.ns
	sh := &foldShape{kind: fx.kind, steps: fx.steps,
		nslots: fx.nslots, slotDeltas: fx.slotDeltas}
	class := make([]int32, p)
	var reps []int32
	buckets := make(map[uint64][]int32)
	for r := 0; r < p; r++ {
		h := uint64(foldFNV)
		base := r * ns
		for k := range sh.steps {
			fs := &sh.steps[k]
			switch fs.op {
			case opExchange:
				gdst := foldApply(fx.kind, r, int(fs.sendDelta), p)
				h = foldMix(h, uint64(fx.nArr[base+k]))
				h = foldMix(h, uint64(fx.sendNA[base+k]))
				h = foldMix(h, uint64(w.link(r, gdst)))
			case opReduce:
				h = foldMix(h, uint64(fx.nArr[base+k]))
			}
		}
		id := int32(-1)
		for _, cand := range buckets[h] {
			if fx.structEqual(w, r, int(reps[cand])) {
				id = cand
				break
			}
		}
		if id < 0 {
			id = int32(len(reps))
			reps = append(reps, int32(r))
			buckets[h] = append(buckets[h], id)
		}
		class[r] = id
	}
	sh.class = class
	sh.nclass = sh.refinePartition(class, len(reps))
	sh.reps = foldReps(class, sh.nclass)
	sh.identIdx = make([]int32, sh.nclass)
	for i := range sh.identIdx {
		sh.identIdx[i] = int32(i)
	}
	sh.sendCls, sh.recvCls = sh.peerTables(class, sh.nclass, sh.reps)
	sh.repN = make([][]int32, sh.nclass)
	sh.repSendN = make([][]int32, sh.nclass)
	for i := 0; i < sh.nclass; i++ {
		rep := int(sh.reps[i])
		sh.repN[i] = append([]int32(nil), fx.nArr[rep*ns:(rep+1)*ns]...)
		sh.repSendN[i] = append([]int32(nil), fx.sendNA[rep*ns:(rep+1)*ns]...)
	}
	sh.costs = w.foldCostsFor(sh)
	sh.ok = true
	return sh
}

// foldCostsFor prices a shape's per-(class, step) table under this world's
// model — the same pure netmodel calls priceTo makes per rank.
func (w *World) foldCostsFor(sh *foldShape) [][]foldCost {
	model := w.cfg.Model
	py := w.cfg.PyMode
	fullSub := w.fullSub
	p := w.size
	costs := make([][]foldCost, sh.nclass)
	for i := 0; i < sh.nclass; i++ {
		rep := int(sh.reps[i])
		cc := make([]foldCost, len(sh.steps))
		for k := range sh.steps {
			fs := &sh.steps[k]
			switch fs.op {
			case opExchange:
				gdst := foldApply(sh.kind, rep, int(fs.sendDelta), p)
				link := w.link(rep, gdst)
				sendN := int(sh.repSendN[i][k])
				pc := model.PtPt(link, sendN, py, fullSub)
				c := &cc[k]
				c.sendOver, c.wire, c.transmit = pc.SendOverhead, pc.Wire, pc.Transmit
				c.recvOver, c.eager = pc.RecvOverhead, pc.Eager
				if py {
					// Collective tags are always internal (> MaxUserTag).
					c.pyLock = model.PyOpLock(link, sendN, true, fullSub)
				}
			case opReduce:
				cc[k].compute = model.Compute(int(sh.repN[i][k]), py, fullSub)
			}
		}
		costs[i] = cc
	}
	return costs
}

// refinePartition refines cls by every exchange step's send and recv peer
// classes until stable: members of a class agree on the class of each
// peer. The key includes the current class, so refinement only splits and
// terminates; labels stay in first-seen rank order.
func (sh *foldShape) refinePartition(cls []int32, ncls int) int {
	p := len(cls)
	next := make([]int32, p)
	var dense []int32
	refineBy := func(delta int32) {
		n := 0
		if ncls <= foldDenseRefine {
			need := ncls * ncls
			if cap(dense) < need {
				dense = make([]int32, need)
			}
			tab := dense[:need]
			for i := range tab {
				tab[i] = -1
			}
			for r := 0; r < p; r++ {
				peer := foldApply(sh.kind, r, int(delta), p)
				key := int(cls[r])*ncls + int(cls[peer])
				id := tab[key]
				if id < 0 {
					id = int32(n)
					n++
					tab[key] = id
				}
				next[r] = id
			}
		} else {
			m := make(map[int64]int32, ncls+16)
			for r := 0; r < p; r++ {
				peer := foldApply(sh.kind, r, int(delta), p)
				key := int64(cls[r])<<32 | int64(cls[peer])
				id, ok := m[key]
				if !ok {
					id = int32(n)
					n++
					m[key] = id
				}
				next[r] = id
			}
		}
		if n != ncls {
			ncls = n
			copy(cls, next)
		}
	}
	for {
		if ncls <= 1 || ncls >= p {
			return ncls
		}
		before := ncls
		for k := range sh.steps {
			fs := &sh.steps[k]
			if fs.op != opExchange {
				continue
			}
			refineBy(fs.sendDelta)
			refineBy(fs.recvDelta)
		}
		if ncls == before {
			return ncls
		}
	}
}

// foldReps picks the first member of each class as its representative.
func foldReps(cls []int32, ncls int) []int32 {
	reps := make([]int32, ncls)
	seen := make([]bool, ncls)
	found := 0
	for r := 0; r < len(cls) && found < ncls; r++ {
		if c := cls[r]; !seen[c] {
			seen[c] = true
			reps[c] = int32(r)
			found++
		}
	}
	return reps
}

// peerTables tabulates, per class and exchange step, the class of the
// representative's send and recv peers — valid for every member because the
// partition is refined to the peer fixpoint.
func (sh *foldShape) peerTables(cls []int32, ncls int, reps []int32) (sendCls, recvCls [][]int32) {
	p := len(cls)
	ns := len(sh.steps)
	sendCls = make([][]int32, ncls)
	recvCls = make([][]int32, ncls)
	for i := 0; i < ncls; i++ {
		rep := int(reps[i])
		sc := make([]int32, ns)
		rc := make([]int32, ns)
		for k := 0; k < ns; k++ {
			fs := &sh.steps[k]
			if fs.op != opExchange {
				continue
			}
			sc[k] = cls[foldApply(sh.kind, rep, int(fs.sendDelta), p)]
			rc[k] = cls[foldApply(sh.kind, rep, int(fs.recvDelta), p)]
		}
		sendCls[i] = sc
		recvCls[i] = rc
	}
	return sendCls, recvCls
}

// foldTok is the interning key of a rank's entry state: structural class,
// exact clock bits, and link-busy descriptor (symbolic pointer identity
// and/or a digest of live materialized per-slot values; salt disambiguates
// digest collisions, which are verified exactly against the stored seeds).
type foldTok struct {
	sc    int32
	salt  uint32
	clock uint64
	ptr   *foldLB
	dirty bool
	hash  uint64
}

type foldTokInfo struct {
	rep   int32
	seeds []vtime.Micros
}

// foldScratch holds simulate's reusable buffers (single-threaded, on the
// World so repeated invocations allocate nothing).
type foldScratch struct {
	tokOf                  []int32
	seeds                  []vtime.Micros
	clock, cp, sr, arr, cr []vtime.Micros
	lb                     []vtime.Micros
	entryLB                []*foldLB
	// Token interning state: the map's buckets and the info slice survive
	// across invocations (cleared, not reallocated), and dirty-token seed
	// snapshots are carved from one arena chunk instead of allocated each.
	tokMap   map[foldTok]int32
	toks     []foldTokInfo
	seedPool []vtime.Micros
	seedUsed int
	// clsTok memoizes, per structural class, the first token interned for
	// that class this invocation (-1 when unseen), with tokKeys holding
	// each token's key in parallel to toks. Ranks of one structural class
	// share an identical history in the steady folded state, so the memo
	// compare replaces a map hash of the 56-byte key on all but the first
	// rank of each class.
	clsTok  []int32
	tokKeys []foldTok
}

// snapSeeds copies a dirty rank's seed vector into the arena and returns the
// stable snapshot.
func (scr *foldScratch) snapSeeds(seeds []vtime.Micros) []vtime.Micros {
	n := len(seeds)
	if cap(scr.seedPool)-scr.seedUsed < n {
		c := 2 * cap(scr.seedPool)
		if c < 64*n {
			c = 64 * n
		}
		// Earlier snapshots keep referencing the old chunk; only the arena
		// cursor moves to the fresh one.
		scr.seedPool = make([]vtime.Micros, c)
		scr.seedUsed = 0
	}
	snap := scr.seedPool[scr.seedUsed : scr.seedUsed+n : scr.seedUsed+n]
	scr.seedUsed += n
	copy(snap, seeds)
	return snap
}

func foldGrowM(s []vtime.Micros, n int) []vtime.Micros {
	if cap(s) < n {
		return make([]vtime.Micros, n)
	}
	return s[:n]
}

func foldGrowI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func foldI32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

func foldSeedsEqual(a, b []vtime.Micros) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

func foldHashSeeds(seeds []vtime.Micros) uint64 {
	h := uint64(foldFNV)
	for _, v := range seeds {
		h = foldMix(h, math.Float64bits(float64(v)))
	}
	return h
}

// effSeeds fills seeds (len nslots) with the rank's effective link-busy
// value per wire slot: live materialized entries first, overlaid by live
// same-kind symbolic entries (which a materialization would overwrite; the
// symbolic value is never older than the stored one for the same wire).
func (sh *foldShape) effSeeds(pr *Proc, seeds []vtime.Micros) {
	for i := range seeds {
		seeds[i] = 0
	}
	now := pr.clock.Now()
	p := pr.world.size
	if pr.lbDirty {
		if pr.linkBusy != nil {
			for gdst, v := range pr.linkBusy {
				if v > now {
					if s := sh.slotOfDelta(foldInvDelta(sh.kind, pr.rank, gdst, p)); s >= 0 {
						seeds[s] = v
					}
				}
			}
		} else {
			for i := 0; i < int(pr.lbSmallN); i++ {
				if v := pr.lbSmallVal[i]; v > now {
					if s := sh.slotOfDelta(foldInvDelta(sh.kind, pr.rank, int(pr.lbSmallDst[i]), p)); s >= 0 {
						seeds[s] = v
					}
				}
			}
			for gdst, v := range pr.linkBusySparse {
				if v > now {
					if s := sh.slotOfDelta(foldInvDelta(sh.kind, pr.rank, int(gdst), p)); s >= 0 {
						seeds[s] = v
					}
				}
			}
		}
	}
	if f := pr.foldLB; f != nil && f.kind == sh.kind {
		for j, d := range f.deltas {
			if f.vals[j] > now {
				if s := sh.slotOfDelta(int(d)); s >= 0 {
					seeds[s] = f.vals[j]
				}
			}
		}
	}
}

// buildPartition refines an observed entry-token pattern against the shape.
func (sh *foldShape) buildPartition(tokOf []int32, ntok int) *foldPartition {
	cls := append([]int32(nil), tokOf...)
	ncls := sh.refinePartition(cls, ntok)
	if ncls > foldMaxClasses {
		return nil
	}
	part := &foldPartition{
		tok:  append([]int32(nil), tokOf...),
		cls:  cls,
		ncls: ncls,
		reps: foldReps(cls, ncls),
	}
	part.costIdx = make([]int32, ncls)
	for i, rep := range part.reps {
		part.costIdx[i] = sh.class[rep]
	}
	part.sendCls, part.recvCls = sh.peerTables(cls, ncls, part.reps)
	return part
}

// simulate folds one gathered invocation: classify entry states, pick (or
// build) the refined partition, run the coupled per-class recurrence, and
// fan exit state out to every rank.
func (sh *foldShape) simulate(l *eventLoop) bool {
	w := l.w
	p := w.size
	g := &l.fold
	scr := &w.foldScratch
	nslots := sh.nslots

	// 1. Per-rank entry tokens. Cross-kind symbolic state normalizes first:
	// live state materializes into the rank's real store; a dead cross-kind
	// pointer stays as-is — its entries are unobservable (every read maxes
	// against the clock), but its identity still encodes the previous
	// invocation's partition, keeping entry-token patterns stable across
	// invocations so the partition cache can hit.
	ndirty := 0
	for r := 0; r < p; r++ {
		pr := l.ranks[r].proc
		if f := pr.foldLB; f != nil && f.kind != sh.kind && foldEntriesLive(f, pr.clock.Now()) {
			pr.materializeFoldLB()
		}
		if pr.lbDirty {
			ndirty++
		}
	}
	// When at least half the world enters with materialized per-rank link
	// state (the aggregation reduce leaves every rank dirty), interning and
	// refinement would only rediscover near-singleton classes at O(p) map
	// churn. Run the recurrence on the identity partition instead — always
	// valid, since singleton classes are trivially peer-closed — which still
	// replaces the collective's message traffic with straight-line float math.
	ident := 2*ndirty >= p
	scr.tokOf = foldGrowI32(scr.tokOf, p)
	tokOf := scr.tokOf
	scr.seeds = foldGrowM(scr.seeds, nslots)
	seeds := scr.seeds
	var toks []foldTokInfo
	if !ident {
		if scr.tokMap == nil {
			scr.tokMap = make(map[foldTok]int32, 16)
		} else {
			clear(scr.tokMap)
		}
		tokMap := scr.tokMap
		toks = scr.toks[:0]
		tokKeys := scr.tokKeys[:0]
		scr.seedUsed = 0
		scr.clsTok = foldGrowI32(scr.clsTok, sh.nclass)
		clsTok := scr.clsTok
		for i := range clsTok {
			clsTok[i] = -1
		}
		var lastKey foldTok
		lastTok := int32(-1)
		for r := 0; r < p; r++ {
			pr := l.ranks[r].proc
			key := foldTok{sc: sh.class[r], clock: math.Float64bits(float64(pr.clock.Now())),
				ptr: pr.foldLB, dirty: pr.lbDirty}
			if key.dirty {
				sh.effSeeds(pr, seeds)
				key.hash = foldHashSeeds(seeds)
			}
			if lastTok >= 0 && key == lastKey &&
				(!key.dirty || foldSeedsEqual(seeds, toks[lastTok].seeds)) {
				tokOf[r] = lastTok
				continue
			}
			// Class memo: in the steady folded state every rank of a
			// structural class carries the same token, so only the class's
			// first rank pays the map.
			if t := clsTok[key.sc]; t >= 0 && key == tokKeys[t] &&
				(!key.dirty || foldSeedsEqual(seeds, toks[t].seeds)) {
				tokOf[r] = t
				lastKey, lastTok = key, t
				continue
			}
			var id int32
			probe := key
			for {
				got, ok := tokMap[probe]
				if !ok {
					id = int32(len(toks))
					info := foldTokInfo{rep: int32(r)}
					if key.dirty {
						info.seeds = scr.snapSeeds(seeds)
					}
					toks = append(toks, info)
					tokKeys = append(tokKeys, key)
					tokMap[probe] = id
					break
				}
				if !key.dirty || foldSeedsEqual(seeds, toks[got].seeds) {
					id = got
					break
				}
				probe.salt++
			}
			tokOf[r] = id
			if clsTok[key.sc] < 0 {
				clsTok[key.sc] = id
			}
			lastKey, lastTok = key, id
		}
		scr.toks = toks // keep the grown capacity for the next invocation
		scr.tokKeys = tokKeys
		ident = 2*len(toks) >= p
	}

	// 2. Partition. When the token pattern equals the structural pattern
	// (the steady benchmark case: every rank enters with identical clock and
	// link state), the precomputed structural partition is already the
	// fixpoint. Otherwise look up (or build) the refined partition for this
	// entry pattern; patterns repeat across iterations and sizes, so the
	// refinement runs once per pattern, not per invocation.
	var (
		cls              []int32
		ncls             int
		reps             []int32
		costIdx          []int32
		sendCls, recvCls [][]int32
	)
	switch {
	case ident:
		// Identity partition: class i is rank i; peers are computed from the
		// step deltas directly, costs index through the structural classes.
		ncls = p
		costIdx = sh.class
	case foldI32Equal(tokOf, sh.class):
		cls, ncls, reps = sh.class, sh.nclass, sh.reps
		costIdx = sh.identIdx
		sendCls, recvCls = sh.sendCls, sh.recvCls
	default:
		var part *foldPartition
		for _, cand := range sh.parts {
			if foldI32Equal(cand.tok, tokOf) {
				part = cand
				break
			}
		}
		if part == nil {
			part = sh.buildPartition(tokOf, len(toks))
			if part == nil {
				return false
			}
			if len(sh.parts) >= foldMaxPartitions {
				sh.parts = sh.parts[:0]
			}
			sh.parts = append(sh.parts, part)
		}
		cls, ncls, reps = part.cls, part.ncls, part.reps
		costIdx = part.costIdx
		sendCls, recvCls = part.sendCls, part.recvCls
	}

	// 3. Entry state per class, read from each representative.
	ns := len(sh.steps)
	scr.clock = foldGrowM(scr.clock, ncls)
	scr.cp = foldGrowM(scr.cp, ncls)
	scr.sr = foldGrowM(scr.sr, ncls)
	scr.arr = foldGrowM(scr.arr, ncls)
	scr.cr = foldGrowM(scr.cr, ncls)
	scr.lb = foldGrowM(scr.lb, ncls*nslots)
	clock, cp, sr, arr, cr, lb := scr.clock, scr.cp, scr.sr, scr.arr, scr.cr, scr.lb
	if cap(scr.entryLB) < ncls {
		scr.entryLB = make([]*foldLB, ncls)
	}
	entryLB := scr.entryLB[:ncls]
	for i := 0; i < ncls; i++ {
		rep := i
		if !ident {
			rep = int(reps[i])
		}
		pr := l.ranks[rep].proc
		clock[i] = pr.clock.Now()
		if nslots > 0 {
			sh.effSeeds(pr, lb[i*nslots:(i+1)*nslots])
		}
		entryLB[i] = pr.foldLB
	}

	// 4. The coupled recurrence: per exchange step, three phases over all
	// classes (post, receive, drain), each line mirroring the exact float64
	// operation order of postSendPriced / finishRecv / completeSend.
	py := w.cfg.PyMode
	for k := 0; k < ns; k++ {
		fs := &sh.steps[k]
		switch fs.op {
		case opReduce:
			for i := 0; i < ncls; i++ {
				clock[i] += sh.costs[costIdx[i]][k].compute
			}
		case opExchange:
			slot := int(fs.slot)
			for i := 0; i < ncls; i++ {
				c := &sh.costs[costIdx[i]][k]
				t := clock[i]
				if py {
					t += c.pyLock
				}
				t += c.sendOver
				cp[i] = t
				if c.eager {
					start := t
					if b := lb[i*nslots+slot]; b > start {
						start = b
					}
					lb[i*nslots+slot] = start + c.transmit
					arr[i] = start + c.wire
				} else {
					sr[i] = t
				}
			}
			for i := 0; i < ncls; i++ {
				var src int32
				if ident {
					src = int32(foldApply(sh.kind, i, int(fs.recvDelta), p))
				} else {
					src = recvCls[i][k]
				}
				c := &sh.costs[costIdx[src]][k]
				t := cp[i]
				if c.eager {
					if a := arr[src]; a > t {
						t = a
					}
				} else {
					d := sr[src]
					if t > d {
						d = t
					}
					d += c.wire
					if d > t {
						t = d
					}
				}
				t += c.recvOver
				cr[i] = t
			}
			for i := 0; i < ncls; i++ {
				c := &sh.costs[costIdx[i]][k]
				t := cr[i]
				if !c.eager {
					var dst int32
					if ident {
						dst = int32(foldApply(sh.kind, i, int(fs.sendDelta), p))
					} else {
						dst = sendCls[i][k]
					}
					d := sr[i]
					if v := cp[dst]; v > d {
						d = v
					}
					d += c.wire
					if d > t {
						t = d
					}
				}
				clock[i] = t
			}
		}
	}

	// 5. Exit link state per class (live slots plus live carried symbolic
	// entries the shape's slots do not cover), then fan out. The exit object
	// exists even when no entry is live: its pointer identity marks the
	// rank's exit class, so the next invocation's entry tokens reproduce this
	// partition exactly instead of merging classes whose exit clocks happen
	// to coincide — that keeps token patterns stable and cacheable. The
	// objects come from one slab: they escape into the ranks, so the slab is
	// the invocation's only mandatory allocation.
	slab := make([]foldLB, ncls)
	for i := 0; i < ncls; i++ {
		f := &slab[i]
		f.kind = sh.kind
		ec := clock[i]
		for s := 0; s < nslots; s++ {
			if v := lb[i*nslots+s]; v > ec {
				f.deltas = append(f.deltas, sh.slotDeltas[s])
				f.vals = append(f.vals, v)
			}
		}
		if ef := entryLB[i]; ef != nil {
			for j, d := range ef.deltas {
				if ef.vals[j] > ec && sh.slotOfDelta(int(d)) < 0 {
					f.deltas = append(f.deltas, d)
					f.vals = append(f.vals, ef.vals[j])
				}
			}
		}
	}
	for r := 0; r < p; r++ {
		pr := l.ranks[r].proc
		i := r
		if !ident {
			i = int(cls[r])
		}
		pr.clock.Set(clock[i])
		pr.foldLB = &slab[i]
		if s := g.scheds[r]; s != nil {
			s.finish()
		} else {
			// Key join: no schedule was ever compiled. The invocation still
			// consumed the communicator's collective sequence number (every
			// fallback or per-rank path bumps it through nextCollTag), so
			// advance it here to keep tag sequences identical across
			// folded, fallback and fold-off executions.
			pr.comm0.collSeq++
		}
	}
	return true
}
