package mpi

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/topology"
)

// Engine micro-benchmarks: the per-message fast path of the simulated-MPI
// data plane. These are the numbers scripts/bench.sh records into
// BENCH_PR*.json so perf regressions on the hot path are visible in review.
// One op is one full protocol round (a ping-pong, an exchange, a collective
// invocation), so allocs/op directly counts engine allocations per round.

// benchWorld builds a Frontera world for the engine benchmarks.
func benchWorld(b *testing.B, ranks, ppn int, carry bool) *World {
	b.Helper()
	place, err := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData: carry,
	})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkEagerSendRecv is the eager fast path: a 1 KiB intra-node
// ping-pong (two eager messages with payload copies per op).
func BenchmarkEagerSendRecv(b *testing.B) {
	w := benchWorld(b, 2, 2, true)
	const n = 1024
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, n)
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				if err := c.Send(buf, 1, 1); err != nil {
					return err
				}
				if _, err := c.Recv(buf, 1, 1); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(buf, 0, 1); err != nil {
					return err
				}
				if err := c.Send(buf, 0, 1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRendezvousExchange is the rendezvous path: both ranks exchange
// 64 KiB inter-node messages (above the eager limit) per op.
func BenchmarkRendezvousExchange(b *testing.B) {
	w := benchWorld(b, 2, 1, true)
	const n = 64 * 1024
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		peer := 1 - c.Rank()
		sbuf := make([]byte, n)
		rbuf := make([]byte, n)
		for i := 0; i < b.N; i++ {
			if _, err := c.Sendrecv(sbuf, peer, 2, rbuf, peer, 2); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce64 runs a 4 KiB float32 allreduce across 64 ranks with
// payloads carried, exercising mailbox matching, the collective staging
// buffers and the reduction kernels together.
func BenchmarkAllreduce64(b *testing.B) {
	w := benchWorld(b, 64, 8, true)
	const n = 4096
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		sbuf := make([]byte, n)
		rbuf := make([]byte, n)
		for i := 0; i < b.N; i++ {
			if err := c.Allreduce(sbuf, rbuf, Float32, OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIallreduceOverlap is the overlap fast path: post a 4 KiB
// nonblocking allreduce across 16 ranks, inject virtual compute, Wait. One
// op is a full post+compute+Wait cycle through the schedule engine, so
// allocs/op counts the pooled Request/schedule machinery (steady state 0).
func BenchmarkIallreduceOverlap(b *testing.B) {
	w := benchWorld(b, 16, 8, true)
	const n = 4096
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		sbuf := make([]byte, n)
		rbuf := make([]byte, n)
		for i := 0; i < b.N; i++ {
			req, err := c.Iallreduce(sbuf, rbuf, Float32, OpSum)
			if err != nil {
				return err
			}
			c.ChargeCompute(10) // 10 us of virtual compute between post and Wait
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
