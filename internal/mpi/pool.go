package mpi

import (
	"math/bits"

	"repro/internal/vtime"
)

// Size-class arithmetic shared by the mailbox payload pools and the
// per-Proc scratch arena, plus the per-Proc rendezvous freelist.

const (
	// payloadMinClass is the smallest pooled capacity (64 B): tiny control
	// messages all share one class instead of fragmenting the freelists.
	payloadMinClass = 6
	// payloadMaxClass caps pooled payloads at 16 MiB; larger buffers are
	// allocated exactly and dropped after use.
	payloadMaxClass = 24
)

// payloadClass returns the power-of-two capacity class of n: the smallest c
// with payloadMinClass <= c and n <= 1<<c (classes above payloadMaxClass
// mean "do not pool").
func payloadClass(n int) int {
	if n <= 1<<payloadMinClass {
		return payloadMinClass
	}
	return bits.Len(uint(n - 1))
}

// getRendezvous draws a handshake from the rank's freelist. The completion
// channel is reused across transfers: each cycle sends and receives exactly
// one value, so a recycled channel is always empty. Event-engine ranks skip
// the channel entirely: completion is reported through (val, ready) plus a
// loop wake, so no channel is ever allocated for them.
func (p *Proc) getRendezvous() *rendezvous {
	if n := len(p.rdvFree); n > 0 {
		r := p.rdvFree[n-1]
		p.rdvFree[n-1] = nil
		p.rdvFree = p.rdvFree[:n-1]
		return r
	}
	r := &rendezvous{owner: p}
	if p.ev == nil {
		r.done = make(chan vtime.Micros, 1)
	}
	return r
}

// putRendezvous recycles a drained handshake. Only the sender calls this
// (after reading done), at which point the receiver has long since read the
// payload pointer and senderReady.
func (p *Proc) putRendezvous(r *rendezvous) {
	r.payload = nil
	r.ready = false
	p.rdvFree = append(p.rdvFree, r)
}
