package mpi

import (
	"fmt"
	"testing"
)

func TestScanInclusive(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		for _, elems := range []int{1, 64, 4096} {
			w := testWorld(t, cc.n, cc.ppn)
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				vals := make([]float64, elems)
				for i := range vals {
					vals[i] = float64(pr.Rank()+1) + float64(i)
				}
				rbuf := make([]byte, elems*8)
				if err := c.Scan(EncodeFloat64s(vals), rbuf, Float64, OpSum); err != nil {
					return err
				}
				got := DecodeFloat64s(rbuf)
				r := pr.Rank()
				prefixRanks := float64((r + 1) * (r + 2) / 2) // sum of 1..r+1
				for i, g := range got {
					want := prefixRanks + float64((r+1)*i)
					if g != want {
						return fmt.Errorf("rank %d elem %d: got %v want %v", r, i, g, want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("elems=%d: %v", elems, err)
			}
		}
	})
}

func TestExscanExclusive(t *testing.T) {
	forAllWorlds(t, func(t *testing.T, cc collCase) {
		w := testWorld(t, cc.n, cc.ppn)
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			vals := []int32{int32(pr.Rank() + 1), int32(2 * (pr.Rank() + 1))}
			rbuf := EncodeInt32s([]int32{-77, -77}) // sentinel for rank 0
			if err := c.Exscan(EncodeInt32s(vals), rbuf, Int32, OpSum); err != nil {
				return err
			}
			got := DecodeInt32s(rbuf)
			r := pr.Rank()
			if r == 0 {
				if got[0] != -77 || got[1] != -77 {
					return fmt.Errorf("rank 0 buffer must be untouched, got %v", got)
				}
				return nil
			}
			wantA := int32(r * (r + 1) / 2) // sum of 1..r
			if got[0] != wantA || got[1] != 2*wantA {
				return fmt.Errorf("rank %d: got %v want [%d %d]", r, got, wantA, 2*wantA)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestScanSizeValidation(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if err := c.ScanN(nil, nil, 7, Float64, OpSum); err == nil {
			return fmt.Errorf("7 bytes of float64 should fail")
		}
		if err := c.ExscanN(nil, nil, 3, Int32, OpSum); err == nil {
			return fmt.Errorf("3 bytes of int32 should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanTimingOnlyMatchesData(t *testing.T) {
	measure := func(carry bool) float64 {
		place, err := topologyPlacement(8, 2)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorld(Config{
			Placement: place,
			Model:     fronteraModelForTest(),
			CarryData: carry,
		})
		if err != nil {
			t.Fatal(err)
		}
		var elapsed float64
		err = w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			n := 64 * 1024
			var s, r []byte
			if carry {
				s = pattern(pr.Rank(), n)
				r = make([]byte, n)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			start := pr.Wtime()
			if err := c.ScanN(s, r, n, Float64, OpSum); err != nil {
				return err
			}
			if pr.Rank() == 0 {
				elapsed = float64(pr.Wtime() - start)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := measure(true), measure(false); a != b {
		t.Fatalf("scan timing-only diverges: %v vs %v", b, a)
	}
}
