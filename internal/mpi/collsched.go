package mpi

// This file implements the schedule-driven collective execution engine.
// Every collective algorithm compiles, at call time, into a flat sequence of
// primitive steps (post a send, drain a handshake, receive, reduce locally,
// copy locally) over buffers fixed at build time. Blocking collectives build
// the schedule and drive it to completion in place; the nonblocking I*
// collectives return the schedule wrapped in a Request and advance it
// incrementally through Test/Wait and the rank's Progress hook. Because the
// executor performs exactly the primitive calls the old monolithic
// collectives made, in exactly the same order, a blocking drive reproduces
// the legacy virtual-time numbers bit for bit.
//
// Schedules, their step slices and their staging buffers are pooled on the
// owning Proc (steps and schedules in freelists, buffers in the scratch
// arena), so steady-state collective traffic allocates nothing.

// collOp enumerates the primitive step kinds of a compiled schedule.
type collOp uint8

const (
	// opPost injects a send toward a peer (postSend): eager sends complete
	// at post time, rendezvous sends leave a handshake for opWaitSend.
	opPost collOp = iota
	// opWaitSend drains the handshake left by the last opPost; it is a
	// no-op after an eager post.
	opWaitSend
	// opRecv consumes the peer's message of this collective into dst.
	opRecv
	// opReduce charges the local-reduction compute cost for n bytes and
	// folds src into dst (the fold is skipped in timing-only worlds, the
	// charge never is — exactly like the monolithic implementations).
	opReduce
	// opReduceNC folds src into dst without charging compute: the second
	// fold of a Scan round rides on the first fold's charge.
	opReduceNC
	// opCopy moves n bytes from src to dst locally (block placement,
	// rotations); skipped when either side is nil.
	opCopy
)

// collStep is one primitive step. Buffer views are resolved at build time.
type collStep struct {
	op       collOp
	peer     int
	n        int
	dst, src []byte
}

// collSched is a compiled collective invocation: the step list, the
// execution cursor, and the staging buffers to release on completion.
type collSched struct {
	c     *Comm
	tag   int
	dt    DType
	op    Op
	steps []collStep
	pc    int

	// pending is the handshake of the last opPost (nil after an eager
	// post); pendingSet distinguishes "eager post outstanding" from "no
	// post outstanding" so builder bugs trip the panic below.
	pending    *rendezvous
	pendingSet bool

	// owner is the Request driving this schedule, nil for blocking drives.
	owner *Request

	// bufs and ints are arena staging allocations released by finish.
	bufs [][]byte
	ints [][]int
}

// getSched draws a pooled schedule, stamps it with the communicator's next
// per-invocation collective tag, and resets its cursor and freelists.
func (c *Comm) getSched() *collSched {
	p := c.proc
	var s *collSched
	if n := len(p.schedFree); n > 0 {
		s = p.schedFree[n-1]
		p.schedFree[n-1] = nil
		p.schedFree = p.schedFree[:n-1]
	} else {
		s = &collSched{}
	}
	s.c = c
	s.tag = c.nextCollTag()
	s.dt, s.op = 0, 0
	s.steps = s.steps[:0]
	s.pc = 0
	s.pending, s.pendingSet = nil, false
	s.owner = nil
	return s
}

// finish releases the schedule's staging buffers to the rank's arena, drops
// buffer references held by the steps, unregisters it from the rank's
// progress list and returns it to the pool.
func (s *collSched) finish() {
	p := s.c.proc
	for i, b := range s.bufs {
		p.arena.put(b)
		s.bufs[i] = nil
	}
	s.bufs = s.bufs[:0]
	for i, b := range s.ints {
		p.arena.putInts(b)
		s.ints[i] = nil
	}
	s.ints = s.ints[:0]
	for i := range s.steps {
		s.steps[i].dst, s.steps[i].src = nil, nil
	}
	for i, act := range p.activeScheds {
		if act == s {
			p.activeScheds = append(p.activeScheds[:i], p.activeScheds[i+1:]...)
			break
		}
	}
	s.owner = nil
	p.schedFree = append(p.schedFree, s)
}

// scratch draws an arena staging buffer owned by the schedule (released by
// finish, i.e. when the collective completes).
func (s *collSched) scratch(n int) []byte {
	b := s.c.proc.arena.get(n)
	s.bufs = append(s.bufs, b)
	return b
}

// Step emitters. send and exchange mirror the blocking primitives the
// monolithic collectives were written in: send = post+waitSend, exchange =
// post+recv+waitSend (the deadlock-free Sendrecv ordering).

func (s *collSched) emit(st collStep) { s.steps = append(s.steps, st) }

func (s *collSched) post(peer int, buf []byte, n int) {
	s.emit(collStep{op: opPost, peer: peer, src: buf, n: n})
}

func (s *collSched) waitSend() { s.emit(collStep{op: opWaitSend}) }

func (s *collSched) send(peer int, buf []byte, n int) {
	s.post(peer, buf, n)
	s.waitSend()
}

func (s *collSched) recv(peer int, buf []byte, n int) {
	s.emit(collStep{op: opRecv, peer: peer, dst: buf, n: n})
}

func (s *collSched) exchange(dst int, sbuf []byte, sn int, src int, rbuf []byte, rn int) {
	s.post(dst, sbuf, sn)
	s.recv(src, rbuf, rn)
	s.waitSend()
}

func (s *collSched) reduce(dst, src []byte, n int) {
	s.emit(collStep{op: opReduce, dst: dst, src: src, n: n})
}

func (s *collSched) reduceNC(dst, src []byte, n int) {
	s.emit(collStep{op: opReduceNC, dst: dst, src: src, n: n})
}

func (s *collSched) copyStep(dst, src []byte, n int) {
	s.emit(collStep{op: opCopy, dst: dst, src: src, n: n})
}

// execStep runs steps[pc]. With block set it waits for receives and
// handshakes like the blocking primitives; without it, it reports false
// when the step cannot complete right now (nothing is consumed or charged
// in that case, so the step can be retried).
func (s *collSched) execStep(block bool) (bool, error) {
	c := s.c
	st := &s.steps[s.pc]
	switch st.op {
	case opPost:
		if s.pendingSet {
			panic("mpi: collective schedule posted twice without waitSend")
		}
		s.pending = c.postSend(st.peer, s.tag, st.src, st.n)
		s.pendingSet = true
	case opWaitSend:
		if !s.pendingSet {
			panic("mpi: collective schedule waitSend without post")
		}
		if s.pending != nil {
			if block {
				c.completeSend(s.pending)
			} else {
				select {
				case done := <-s.pending.done:
					c.proc.clock.AdvanceTo(done)
					c.proc.putRendezvous(s.pending)
				default:
					return false, nil
				}
			}
		}
		s.pending, s.pendingSet = nil, false
	case opRecv:
		if block {
			if _, err := c.recvBytes(st.peer, s.tag, st.dst, st.n); err != nil {
				s.drainPending()
				return false, err
			}
		} else {
			_, ok, err := c.tryRecvBytes(st.peer, s.tag, st.dst, st.n)
			if err != nil {
				s.drainPending()
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
	case opReduce:
		c.chargeCompute(st.n)
		if st.dst != nil && st.src != nil {
			if err := reduceInto(st.dst[:st.n], st.src[:st.n], s.dt, s.op); err != nil {
				return false, err
			}
		}
	case opReduceNC:
		if st.dst != nil && st.src != nil {
			if err := reduceInto(st.dst[:st.n], st.src[:st.n], s.dt, s.op); err != nil {
				return false, err
			}
		}
	case opCopy:
		if st.dst != nil && st.src != nil {
			copy(st.dst[:st.n], st.src[:st.n])
		}
	}
	s.pc++
	return true, nil
}

// drainPending completes an outstanding posted send after a failed receive
// step, mirroring sendrecvRaw's error path: the message was already
// injected, so its handshake must be drained (and recycled) even though
// the schedule is being abandoned.
func (s *collSched) drainPending() {
	if s.pendingSet && s.pending != nil {
		s.c.completeSend(s.pending)
	}
	s.pending, s.pendingSet = nil, false
}

// driveSched executes the remaining steps with blocking semantics and
// releases the schedule. This is the whole execution of a blocking
// collective and the tail of a collective Request's Wait.
func (c *Comm) driveSched(s *collSched) error {
	for s.pc < len(s.steps) {
		if _, err := s.execStep(true); err != nil {
			s.finish()
			return err
		}
	}
	s.finish()
	return nil
}

// advancePrefix executes the deterministic prefix of a schedule: local
// steps and message injections, stopping before the first step whose
// completion depends on another rank (a receive, or draining a rendezvous
// handshake). Running it at I*-post time is what lets eager rounds overlap
// with compute injected before Wait, while keeping the virtual-time outcome
// independent of real-time goroutine interleaving.
func (s *collSched) advancePrefix() error {
	for s.pc < len(s.steps) {
		st := &s.steps[s.pc]
		if st.op == opRecv || (st.op == opWaitSend && s.pending != nil) {
			return nil
		}
		if _, err := s.execStep(true); err != nil {
			return err
		}
	}
	return nil
}

// tryDrive advances the schedule as far as possible without blocking and
// reports whether it ran to completion. It does not release the schedule.
func (s *collSched) tryDrive() (bool, error) {
	for s.pc < len(s.steps) {
		ok, err := s.execStep(false)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Collective messages are stamped with a per-invocation tag above
// MaxUserTag: the communicator's k-th collective uses tagCollBase+k on
// every member (collective calls are collectively ordered, so the counters
// agree across ranks). Distinct invocations therefore never share a tag,
// which keeps the posted prefix of a later nonblocking collective from
// overtaking an earlier one's traffic, and keeps collective traffic from
// ever matching a user-tag receive.
const tagCollBase = MaxUserTag + 1

// nextCollTag returns the tag of the communicator's next collective.
func (c *Comm) nextCollTag() int {
	t := tagCollBase + c.collSeq
	c.collSeq++
	return t
}

// startColl selects the algorithm for one collective invocation, compiles
// its schedule and returns it ready to drive.
func (c *Comm) startColl(coll Collective, sel Selection, call collCall) (*collSched, error) {
	alg, err := c.algorithm(coll, sel)
	if err != nil {
		return nil, err
	}
	s := c.getSched()
	s.dt, s.op = call.dt, call.op
	if err := alg.build(c, call, s); err != nil {
		s.finish()
		return nil, err
	}
	return s, nil
}

// collRequest wraps a compiled schedule (nil for a trivially complete
// collective) into a Request, executes the deterministic prefix, and
// registers the schedule with the rank's progress list.
func (c *Comm) collRequest(s *collSched) (*Request, error) {
	r := c.proc.getRequest()
	r.comm = c
	if s == nil {
		r.complete(Status{}, nil)
		return r, nil
	}
	r.sched = s
	s.owner = r
	if err := s.advancePrefix(); err != nil {
		s.finish()
		r.sched = nil
		r.complete(Status{}, err)
		r.release() // the caller never sees this request
		return nil, err
	}
	if s.pc == len(s.steps) {
		s.finish()
		r.sched = nil
		r.complete(Status{}, nil)
		return r, nil
	}
	c.proc.activeScheds = append(c.proc.activeScheds, s)
	return r, nil
}

// Progress gives every outstanding nonblocking collective on this rank a
// chance to advance without blocking, the analogue of an MPI progress-engine
// poll. Completion (or an execution error) is recorded on the owning
// Request and surfaced by its Test/Wait.
func (p *Proc) Progress() {
	for i := len(p.activeScheds) - 1; i >= 0; i-- {
		s := p.activeScheds[i]
		done, err := s.tryDrive()
		if done || err != nil {
			r := s.owner
			s.finish()
			r.sched = nil
			r.complete(Status{}, err)
		}
	}
}
