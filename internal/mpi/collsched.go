package mpi

// This file implements the schedule-driven collective execution engine.
// Every collective algorithm compiles, at call time, into a flat sequence of
// primitive steps (post a send, drain a handshake, receive, reduce locally,
// copy locally) over buffers fixed at build time. Blocking collectives build
// the schedule and drive it to completion in place; the nonblocking I*
// collectives return the schedule wrapped in a Request and advance it
// incrementally through Test/Wait and the rank's Progress hook. Because the
// executor performs exactly the primitive calls the old monolithic
// collectives made, in exactly the same order, a blocking drive reproduces
// the legacy virtual-time numbers bit for bit.
//
// Schedules, their step slices and their staging buffers are pooled on the
// owning Proc (steps and schedules in freelists, buffers in the scratch
// arena), so steady-state collective traffic allocates nothing.

import (
	"repro/internal/netmodel"
	"repro/internal/topology"
)

// collOp enumerates the primitive step kinds of a compiled schedule.
type collOp uint8

const (
	// opPost injects a send toward a peer (postSend): eager sends complete
	// at post time, rendezvous sends leave a handshake for opWaitSend.
	opPost collOp = iota
	// opWaitSend drains the handshake left by the last opPost; it is a
	// no-op after an eager post.
	opWaitSend
	// opRecv consumes the peer's message of this collective into dst.
	opRecv
	// opReduce charges the local-reduction compute cost for n bytes and
	// folds src into dst (the fold is skipped in timing-only worlds, the
	// charge never is — exactly like the monolithic implementations).
	opReduce
	// opReduceNC folds src into dst without charging compute: the second
	// fold of a Scan round rides on the first fold's charge.
	opReduceNC
	// opCopy moves n bytes from src to dst locally (block placement,
	// rotations); skipped when either side is nil.
	opCopy
	// opSend fuses post+waitSend: inject toward peer, then drain the
	// handshake. Fused steps execute the same primitives in the same order
	// as their unfused spelling — they exist to halve the dispatch count
	// of the hot schedules; the schedule's phase cursor makes them
	// resumable mid-step for the incremental executors.
	opSend
	// opExchange fuses post+recv+waitSend (the deadlock-free Sendrecv
	// ordering): send src to sendPeer, receive from peer into dst, drain.
	opExchange
)

// collStep is one primitive step. Buffer views are resolved at build time.
// peer/n/dst describe the receive side (or the send side for pure sends);
// sendPeer/sendN/src describe the send side of an opExchange.
type collStep struct {
	op       collOp
	peer     int
	n        int
	sendPeer int
	sendN    int
	dst, src []byte
}

// stepPrice caches a post step's resolved destination and message price.
// Replay-cached schedules (event engine) carry one per step, filled on
// first execution: both are constants of the (schedule, world) pair, and
// skipping the per-post link classification and price lookup is measurable
// at large rank counts. It lives beside the steps (not inside collStep) so
// the goroutine engine's step arrays stay small.
type stepPrice struct {
	gdst   int
	link   topology.LinkClass
	cost   netmodel.PtPtCost
	priced bool
}

// collSched is a compiled collective invocation: the step list, the
// execution cursor, and the staging buffers to release on completion.
type collSched struct {
	c     *Comm
	tag   int
	dt    DType
	op    Op
	steps []collStep
	pc    int

	// coll labels the invocation for fault injection and diagnostics
	// (which collective a kill rule matched, where a survivor was blocked);
	// empty for unlabeled builders. faultEntered marks that the
	// collective-entry fault hook has run for this invocation, so a
	// nonblocking collective's Wait-side driveSched does not double-count.
	coll         Collective
	faultEntered bool

	// pending is the handshake of the last opPost (nil after an eager
	// post); pendingSet distinguishes "eager post outstanding" from "no
	// post outstanding" so builder bugs trip the panic below.
	pending    *rendezvous
	pendingSet bool

	// owner is the Request driving this schedule, nil for blocking drives.
	owner *Request

	// phase is the sub-step cursor of the fused ops: 0 = nothing done yet,
	// 1 = posted (opSend: draining; opExchange: receiving), 2 = opExchange
	// received, draining. At most one fused step is in flight, so one
	// cursor per schedule suffices; pc only advances when a step fully
	// completes.
	phase uint8

	// cached marks a schedule retained by the event engine's replay cache
	// (eventsched.go): finish releases it for the next replay instead of
	// tearing it down; inUse guards against replaying it while a previous
	// invocation is still in flight; prices caches the post steps' message
	// prices across replays (one entry per posting step, in post order,
	// cursor postIdx). keyN/keyRoot are the replay key's shape stamps,
	// valid while cached (schedShapeKey reads them for the fold gather).
	cached, inUse bool
	keyN, keyRoot int
	prices        []stepPrice
	postIdx       int
	// shared marks steps as borrowed from the process-wide stepCache:
	// immutable, never appended to, dropped (not recycled) on scrub. own
	// parks the schedule's owned step storage while steps is borrowed, so
	// the capacity survives the borrow and a later build on the recycled
	// schedule does not regrow the array from nil.
	shared bool
	own    []collStep

	// bufs and ints are arena staging allocations released by finish.
	bufs [][]byte
	ints [][]int
}

// getSched draws a pooled schedule, stamps it with the communicator's next
// per-invocation collective tag, and resets its cursor and freelists.
// Builders use getSched; replay shells that will borrow stepCache arrays
// use getSchedLight, which prefers the store's step-less class so owned
// step capacity is not parked where it cannot be used.
func (c *Comm) getSched() *collSched { return c.getSchedClass(false) }

// getSchedLight is getSched preferring a schedule without owned steps.
func (c *Comm) getSchedLight() *collSched { return c.getSchedClass(true) }

func (c *Comm) getSchedClass(light bool) *collSched {
	p := c.proc
	var s *collSched
	if n := len(p.schedFree); n > 0 {
		s = p.schedFree[n-1]
		p.schedFree[n-1] = nil
		p.schedFree = p.schedFree[:n-1]
	} else if s = getPooledSched(light); s == nil {
		if light {
			s = &collSched{}
		} else {
			// Start fresh builder schedules with room for a typical
			// large-world collective, so builders do not churn the garbage
			// collector with doubling reallocations on their way to ~64
			// steps.
			s = &collSched{steps: make([]collStep, 0, 64)}
		}
	}
	s.c = c
	s.tag = c.nextCollTag()
	s.dt, s.op = 0, 0
	s.steps = s.steps[:0]
	s.pc = 0
	s.phase = 0
	s.pending, s.pendingSet = nil, false
	s.owner = nil
	s.cached, s.inUse = false, false
	s.prices, s.postIdx = s.prices[:0], 0
	s.shared = false
	s.coll, s.faultEntered = "", false
	return s
}

// finish releases the schedule's staging buffers to the rank's arena, drops
// buffer references held by the steps, unregisters it from the rank's
// progress list and returns it to the pool. A replay-cached schedule keeps
// its steps (they hold no buffers) and is merely released for the next
// replay.
func (s *collSched) finish() {
	p := s.c.proc
	if s.cached {
		for i, act := range p.activeScheds {
			if act == s {
				p.activeScheds = append(p.activeScheds[:i], p.activeScheds[i+1:]...)
				break
			}
		}
		s.pending, s.pendingSet = nil, false
		s.phase = 0
		s.owner = nil
		s.inUse = false
		s.faultEntered = false
		return
	}
	for i, b := range s.bufs {
		p.arena.put(b)
		s.bufs[i] = nil
	}
	s.bufs = s.bufs[:0]
	for i, b := range s.ints {
		p.arena.putInts(b)
		s.ints[i] = nil
	}
	s.ints = s.ints[:0]
	for i := range s.steps {
		s.steps[i].dst, s.steps[i].src = nil, nil
	}
	for i, act := range p.activeScheds {
		if act == s {
			p.activeScheds = append(p.activeScheds[:i], p.activeScheds[i+1:]...)
			break
		}
	}
	s.owner = nil
	if cap(p.schedFree) == 0 {
		// First release after a Run reset: size the freelist once for the
		// handful of schedules a rank cycles through, instead of paying the
		// 1→2→4 append-doubling chain on every rank of every Run.
		p.schedFree = make([]*collSched, 0, 8)
	}
	p.schedFree = append(p.schedFree, s)
}

// scratch draws an arena staging buffer owned by the schedule (released by
// finish, i.e. when the collective completes).
func (s *collSched) scratch(n int) []byte {
	b := s.c.proc.arena.get(n)
	s.bufs = append(s.bufs, b)
	return b
}

// Step emitters. send and exchange mirror the blocking primitives the
// monolithic collectives were written in: send = post+waitSend, exchange =
// post+recv+waitSend (the deadlock-free Sendrecv ordering).

func (s *collSched) emit(st collStep) { s.steps = append(s.steps, st) }

func (s *collSched) post(peer int, buf []byte, n int) {
	s.emit(collStep{op: opPost, peer: peer, src: buf, n: n})
}

func (s *collSched) waitSend() { s.emit(collStep{op: opWaitSend}) }

func (s *collSched) send(peer int, buf []byte, n int) {
	s.emit(collStep{op: opSend, peer: peer, src: buf, n: n})
}

func (s *collSched) recv(peer int, buf []byte, n int) {
	s.emit(collStep{op: opRecv, peer: peer, dst: buf, n: n})
}

func (s *collSched) exchange(dst int, sbuf []byte, sn int, src int, rbuf []byte, rn int) {
	s.emit(collStep{op: opExchange, sendPeer: dst, src: sbuf, sendN: sn, peer: src, dst: rbuf, n: rn})
}

func (s *collSched) reduce(dst, src []byte, n int) {
	s.emit(collStep{op: opReduce, dst: dst, src: src, n: n})
}

func (s *collSched) reduceNC(dst, src []byte, n int) {
	s.emit(collStep{op: opReduceNC, dst: dst, src: src, n: n})
}

func (s *collSched) copyStep(dst, src []byte, n int) {
	s.emit(collStep{op: opCopy, dst: dst, src: src, n: n})
}

// postStep injects the sending half of a posting step, through the
// schedule's per-step price cache when it has one.
func (s *collSched) postStep(peer int, buf []byte, n int) {
	if s.pendingSet {
		panic("mpi: collective schedule posted twice without waitSend")
	}
	c := s.c
	if len(s.prices) != 0 {
		pr := &s.prices[s.postIdx]
		s.postIdx++
		if !pr.priced {
			pr.gdst = c.group[peer]
			var cost *netmodel.PtPtCost
			pr.link, cost = c.proc.priceTo(pr.gdst, n)
			pr.cost, pr.priced = *cost, true
		}
		s.pending = c.postSendPriced(pr.gdst, s.tag, buf, n, pr.link, &pr.cost)
	} else {
		s.pending = c.postSend(peer, s.tag, buf, n)
	}
	s.pendingSet = true
}

// drainStep completes the outstanding posted send; without block it
// reports false when the handshake has not been reported yet. The error is
// a fault-plan failure: the handshake's peer died and the stall detector
// broke the wait.
func (s *collSched) drainStep(block bool) (bool, error) {
	if s.pending != nil {
		if block {
			if err := s.c.completeSend(s.pending); err != nil {
				s.pending, s.pendingSet = nil, false
				return false, err
			}
		} else {
			done, ok := s.pending.tryDone()
			if !ok {
				return false, nil
			}
			s.c.proc.clock.AdvanceTo(done)
			s.c.proc.putRendezvous(s.pending)
		}
	}
	s.pending, s.pendingSet = nil, false
	return true, nil
}

// recvStep consumes the peer's message of this collective into dst; with
// block false it reports false when nothing matches yet.
func (s *collSched) recvStep(block bool, peer int, dst []byte, n int) (bool, error) {
	if block {
		if _, err := s.c.recvBytes(peer, s.tag, dst, n); err != nil {
			return false, err
		}
		return true, nil
	}
	_, ok, err := s.c.tryRecvBytes(peer, s.tag, dst, n)
	return ok, err
}

// execStep runs steps[pc]. With block set it waits for receives and
// handshakes like the blocking primitives; without it, it reports false
// when the step cannot complete right now (nothing is consumed or charged
// in that case, so the step — resumable mid-way through a fused op via
// the phase cursor — can be retried).
func (s *collSched) execStep(block bool) (bool, error) {
	c := s.c
	st := &s.steps[s.pc]
	switch st.op {
	case opSend:
		if s.phase == 0 {
			s.postStep(st.peer, st.src, st.n)
			s.phase = 1
		}
		ok, err := s.drainStep(block)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		s.phase = 0
	case opExchange:
		if s.phase == 0 {
			s.postStep(st.sendPeer, st.src, st.sendN)
			s.phase = 1
		}
		if s.phase == 1 {
			ok, err := s.recvStep(block, st.peer, st.dst, st.n)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			s.phase = 2
		}
		ok, err := s.drainStep(block)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		s.phase = 0
	case opPost:
		s.postStep(st.peer, st.src, st.n)
	case opWaitSend:
		if !s.pendingSet {
			panic("mpi: collective schedule waitSend without post")
		}
		ok, err := s.drainStep(block)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	case opRecv:
		// Error paths leave any posted send pending; the caller drains it
		// (drainPending) before abandoning the schedule — execStep itself
		// must stay non-blocking when block is false, and the event loop
		// replays schedules on a stack that must never park.
		ok, err := s.recvStep(block, st.peer, st.dst, st.n)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	case opReduce:
		c.chargeCompute(st.n)
		if st.dst != nil && st.src != nil {
			if err := reduceInto(st.dst[:st.n], st.src[:st.n], s.dt, s.op); err != nil {
				return false, err
			}
		}
	case opReduceNC:
		if st.dst != nil && st.src != nil {
			if err := reduceInto(st.dst[:st.n], st.src[:st.n], s.dt, s.op); err != nil {
				return false, err
			}
		}
	case opCopy:
		if st.dst != nil && st.src != nil {
			copy(st.dst[:st.n], st.src[:st.n])
		}
	}
	s.pc++
	return true, nil
}

// drainPending completes an outstanding posted send after a failed receive
// step, mirroring sendrecvRaw's error path: the message was already
// injected, so its handshake must be drained (and recycled) even though
// the schedule is being abandoned. Once the world is in failure mode the
// handshake's peer may be dead, so the drain is dropped instead of
// blocking (the handshake object is abandoned to the GC).
func (s *collSched) drainPending() {
	if s.pendingSet && s.pending != nil {
		p := s.c.proc
		if p.failure == nil && !p.world.failedFlag.Load() {
			_ = s.c.completeSend(s.pending)
		}
	}
	s.pending, s.pendingSet = nil, false
}

// driveSched executes the remaining steps with blocking semantics and
// releases the schedule. This is the whole execution of a blocking
// collective and the tail of a collective Request's Wait. Under the event
// engine the drive is handed to the event loop instead (same steps, same
// clock arithmetic, two coroutine switches total).
func (c *Comm) driveSched(s *collSched) error {
	if c.proc.world.cancelOn {
		// Cancellation checkpoint before any step runs: the canonical
		// deterministic cancel site (cancel.go). The sentinel carries no
		// schedule to release; a real one is finished like any errored
		// drive.
		coll := Collective("")
		if s != schedFoldPending {
			coll = s.coll
		} else {
			coll = c.proc.foldPend.key.shape.coll
		}
		if err := c.proc.cancelEnter(coll); err != nil {
			if s != schedFoldPending {
				s.drainPending()
				s.finish()
			}
			return err
		}
	}
	if s == schedFoldPending {
		// Schedule folding deferred the compile (schedfold.go): gather on
		// the invocation key; only a fallback materializes a schedule. The
		// fault hook below cannot be skipped by this: fault plans disable
		// the deferral outright.
		return c.schedFoldDrive()
	}
	if c.proc.world.faults != nil && !s.faultEntered {
		s.faultEntered = true
		if err := c.proc.faultCollEnter(s); err != nil {
			s.drainPending()
			s.finish()
			return err
		}
	}
	if c.proc.ev != nil {
		return c.driveSchedEvent(s)
	}
	for s.pc < len(s.steps) {
		if _, err := s.execStep(true); err != nil {
			// A stall-detector (or cancel) failure surfaces from the blocked
			// primitive without schedule context; attach it here.
			if fe, ok := err.(*RankFailedError); ok && fe.Collective == "" {
				fe.Collective, fe.Step = s.coll, s.pc
			}
			if ce, ok := err.(*CanceledError); ok && ce.Collective == "" {
				ce.Collective, ce.Step = s.coll, s.pc
			}
			s.drainPending()
			s.finish()
			return err
		}
	}
	s.finish()
	return nil
}

// advancePrefix executes the deterministic prefix of a schedule: local
// steps and message injections, stopping before the first step whose
// completion depends on another rank (a receive, or draining a rendezvous
// handshake). Running it at I*-post time is what lets eager rounds overlap
// with compute injected before Wait, while keeping the virtual-time outcome
// independent of real-time goroutine interleaving.
func (s *collSched) advancePrefix() error {
	for s.pc < len(s.steps) {
		st := &s.steps[s.pc]
		switch st.op {
		case opRecv:
			return nil
		case opWaitSend:
			if s.pending != nil {
				return nil
			}
		case opSend:
			// Inject, then stop only if draining depends on the receiver.
			if s.phase == 0 {
				s.postStep(st.peer, st.src, st.n)
				s.phase = 1
			}
			if s.pending != nil {
				return nil
			}
			s.pending, s.pendingSet = nil, false
			s.phase = 0
			s.pc++
			continue
		case opExchange:
			// Inject the send half; the receive half depends on the peer.
			if s.phase == 0 {
				s.postStep(st.sendPeer, st.src, st.sendN)
				s.phase = 1
			}
			return nil
		}
		if _, err := s.execStep(true); err != nil {
			return err
		}
	}
	return nil
}

// tryDrive advances the schedule as far as possible without blocking and
// reports whether it ran to completion. It does not release the schedule.
func (s *collSched) tryDrive() (bool, error) {
	for s.pc < len(s.steps) {
		ok, err := s.execStep(false)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Collective messages are stamped with a per-invocation tag above
// MaxUserTag: the communicator's k-th collective uses tagCollBase+k on
// every member (collective calls are collectively ordered, so the counters
// agree across ranks). Distinct invocations therefore never share a tag,
// which keeps the posted prefix of a later nonblocking collective from
// overtaking an earlier one's traffic, and keeps collective traffic from
// ever matching a user-tag receive.
const tagCollBase = MaxUserTag + 1

// nextCollTag returns the tag of the communicator's next collective.
func (c *Comm) nextCollTag() int {
	t := tagCollBase + c.collSeq
	c.collSeq++
	return t
}

// startColl selects the algorithm for one collective invocation, compiles
// its schedule and returns it ready to drive. Under the event engine,
// buffer-free invocations eligible for schedule folding defer the compile
// entirely (the schedFoldPending sentinel; see schedfold.go) — in the
// steady folded state no schedule object ever exists for them. Ineligible
// buffer-free invocations hit the replay cache: the schedule compiled for
// this (algorithm, size, root, dtype, op) shape is re-armed instead of
// rebuilt (see eventsched.go).
func (c *Comm) startColl(coll Collective, sel Selection, call collCall) (*collSched, error) {
	if c.proc.ev != nil && call.replayable() {
		key := foldKey{shape: shapeKey{coll: coll, n: call.n, root: call.root,
			dt: call.dt, op: call.op}, seq: c.collSeq}
		if c.proc.ev.loop.schedFoldEligible(c, key.shape) {
			c.proc.foldPend = foldPending{key: key, sel: sel, call: call}
			return schedFoldPending, nil
		}
		return c.compileReplayColl(coll, sel, call)
	}
	alg, err := c.algorithm(coll, sel)
	if err != nil {
		return nil, err
	}
	s := c.getSched()
	s.dt, s.op = call.dt, call.op
	s.coll = coll
	if err := alg.build(c, call, s); err != nil {
		s.finish()
		return nil, err
	}
	return s, nil
}

// compileReplayColl is the event engine's per-rank compile/replay of a
// buffer-free collective invocation — the schedule-fold fallback path and
// the whole path when schedule folding is off.
func (c *Comm) compileReplayColl(coll Collective, sel Selection, call collCall) (*collSched, error) {
	key := replayKey{ctx: c.ctx, coll: coll, n: call.n, root: call.root, dt: call.dt, op: call.op}
	s, known := c.replaySched(key)
	if s != nil {
		s.coll = coll
		return s, nil
	}
	alg, err := c.algorithm(coll, sel)
	if err != nil {
		return nil, err
	}
	build := func(s *collSched) error { return alg.build(c, call, s) }
	if known {
		// An overlapping invocation of the same shape is still in
		// flight; run this one as an uncached one-off.
		s, err := c.buildSched(call.dt, call.op, build)
		if s != nil {
			s.coll = coll
		}
		return s, err
	}
	s, err = c.compileCachedSched(key,
		stepKey{alg: alg, rank: c.rank, commSize: len(c.group),
			n: call.n, root: call.root, dt: call.dt, op: call.op},
		call.dt, call.op, build)
	if s != nil {
		s.coll = coll
	}
	return s, err
}

// collRequest wraps a compiled schedule (nil for a trivially complete
// collective) into a Request, executes the deterministic prefix, and
// registers the schedule with the rank's progress list.
func (c *Comm) collRequest(s *collSched) (*Request, error) {
	if c.proc.world.cancelOn {
		coll := Collective("")
		switch {
		case s == schedFoldPending:
			coll = c.proc.foldPend.key.shape.coll
		case s != nil:
			coll = s.coll
		}
		if err := c.proc.cancelEnter(coll); err != nil {
			if s != nil && s != schedFoldPending {
				s.finish()
			}
			return nil, err
		}
	}
	if s == schedFoldPending {
		// A nonblocking post must never park in a key gather (overlap
		// semantics depend on returning to the caller), so the deferred
		// compile materializes here unconditionally.
		var err error
		if s, err = c.materializePending(&c.proc.foldPend); err != nil {
			return nil, err
		}
	}
	r := c.proc.getRequest()
	r.comm = c
	if s == nil {
		r.complete(Status{}, nil)
		return r, nil
	}
	if c.proc.world.faults != nil && !s.faultEntered {
		s.faultEntered = true
		if err := c.proc.faultCollEnter(s); err != nil {
			s.finish()
			r.complete(Status{}, err)
			r.release() // the caller never sees this request
			return nil, err
		}
	}
	r.sched = s
	s.owner = r
	if err := s.advancePrefix(); err != nil {
		s.drainPending()
		s.finish()
		r.sched = nil
		r.complete(Status{}, err)
		r.release() // the caller never sees this request
		return nil, err
	}
	if s.pc == len(s.steps) {
		s.finish()
		r.sched = nil
		r.complete(Status{}, nil)
		return r, nil
	}
	c.proc.activeScheds = append(c.proc.activeScheds, s)
	return r, nil
}

// Progress gives every outstanding nonblocking collective on this rank a
// chance to advance without blocking, the analogue of an MPI progress-engine
// poll. Completion (or an execution error) is recorded on the owning
// Request and surfaced by its Test/Wait.
func (p *Proc) Progress() {
	for i := len(p.activeScheds) - 1; i >= 0; i-- {
		s := p.activeScheds[i]
		done, err := s.tryDrive()
		if done || err != nil {
			if err != nil {
				s.drainPending()
			}
			r := s.owner
			s.finish()
			r.sched = nil
			r.complete(Status{}, err)
		}
	}
}
