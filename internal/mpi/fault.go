package mpi

// Fault injection and failure semantics. A world built with a
// faults.Plan interprets it at three deterministic points:
//
//   - Collective entry (faultCollEnter, called from driveSched and
//     collRequest): kill rules fire here — a killed rank stops progressing
//     and every later MPI call on it returns its RankKilledError — and the
//     OS-noise straggler delay is charged here, drawn from the counter-based
//     PRNG keyed on (seed, rank, invocation).
//   - Message post (postSendPriced): link jitter stretches the wire time by
//     a seeded per-message factor.
//   - Stall detection: when a rank dies mid-collective its peers would
//     block forever. The event engine detects the stall exactly — its run
//     queue drains with ranks still parked (failStalled) — and the
//     goroutine engine runs the watchdog below, which declares failure only
//     after verifying every rank is parked with no wake source in flight.
//     Either way the survivors' blocking calls complete with a structured
//     RankFailedError instead of deadlocking.
//
// Every sample comes from faults.Uniform with per-rank operation counters
// that advance identically on both engines, so a plan's virtual-time
// outcome is bit-identical across engines, across -parallel sweeps, and
// across fold-on/fold-off (faults break rank symmetry, so foldEligible
// refuses to fold a faulted world — both settings take the unfolded path).

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/vtime"
)

// Disjoint counter streams for the PRNG: noise draws are keyed by the
// rank's collective-invocation counter, jitter draws by its message
// counter. The high bits keep the streams from ever colliding.
const (
	noiseStream  uint64 = 1 << 62
	jitterStream uint64 = 2 << 62
)

// ErrProcFailed is the code carried by every RankFailedError, mirroring
// MPI_ERR_PROC_FAILED from the MPI fault-tolerance proposals.
const ErrProcFailed = "MPI_ERR_PROC_FAILED"

// RankKilledError is the terminal error of a rank killed by the fault
// plan: it is returned from the collective entry that tripped the kill
// rule and from every MPI call the rank makes afterwards.
type RankKilledError struct {
	// Rank is the killed rank.
	Rank int
	// Collective names the collective whose entry tripped the rule
	// ("barrier" for Barrier; empty for unlabeled vector collectives).
	Collective Collective
	// Invocation is the rank's collective-entry count at death (1-based).
	Invocation int
	// Time is the rank's virtual clock at death.
	Time vtime.Micros
}

// Error implements the error interface.
func (e *RankKilledError) Error() string {
	return fmt.Sprintf("mpi: rank %d killed by fault plan at %s (collective %q, invocation %d)",
		e.Rank, e.Time, e.Collective, e.Invocation)
}

// RankFailedError reports that a blocking operation on a surviving rank
// depended on a rank the fault plan killed. It is the simulator's
// MPI_ERR_PROC_FAILED: the collective (or point-to-point wait) completes
// with this error instead of deadlocking, and the survivor may keep using
// its Proc (every later call involving a dead peer fails the same way).
type RankFailedError struct {
	// Code is ErrProcFailed.
	Code string
	// Rank is the surviving rank observing the failure.
	Rank int
	// Failed lists the dead ranks, sorted ascending.
	Failed []int
	// Collective names the collective the survivor was blocked in, empty
	// when it was blocked in a point-to-point operation.
	Collective Collective
	// Step is the schedule step the survivor was blocked at, -1 outside a
	// collective schedule.
	Step int
	// Time is the survivor's virtual clock at the blocking point.
	Time vtime.Micros
}

// Error implements the error interface.
func (e *RankFailedError) Error() string {
	site := "point-to-point operation"
	if e.Collective != "" {
		site = fmt.Sprintf("collective %q step %d", e.Collective, e.Step)
	}
	return fmt.Sprintf("mpi: %s: rank %d blocked in %s at %s on failed rank(s) %v",
		e.Code, e.Rank, site, e.Time, e.Failed)
}

// BlockedRank describes one parked rank of a DeadlockError.
type BlockedRank struct {
	Rank int
	// Collective and Step locate a rank parked inside a collective
	// schedule; Step is -1 otherwise.
	Collective Collective
	Step       int
	// Op describes what the rank is waiting on ("recv from 3 tag 1048576",
	// "rendezvous send drain", ...).
	Op string
	// Time is the rank's virtual clock at the parking point.
	Time vtime.Micros
}

// DeadlockError is the event engine's structured no-progress diagnostic:
// the run queue drained with ranks still parked and no fault plan to blame,
// so the program itself deadlocked (unmatched receive, missing peer). It
// names every parked rank and its pending operation.
type DeadlockError struct {
	// Size is the world size.
	Size int
	// Blocked lists the parked ranks in rank order.
	Blocked []BlockedRank
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpi: event engine deadlock: %d of %d ranks blocked with no pending events",
		len(e.Blocked), e.Size)
	for _, r := range e.Blocked {
		b.WriteString("\n  ")
		if r.Collective != "" || r.Step >= 0 {
			fmt.Fprintf(&b, "rank %d: collective %q step %d, %s, parked at %s",
				r.Rank, r.Collective, r.Step, r.Op, r.Time)
		} else {
			fmt.Fprintf(&b, "rank %d: %s, parked at %s", r.Rank, r.Op, r.Time)
		}
	}
	return b.String()
}

// recordDead registers a rank killed by the fault plan.
func (w *World) recordDead(rank int) {
	w.deadMu.Lock()
	w.dead = append(w.dead, rank)
	w.deadMu.Unlock()
}

// deadSorted snapshots the dead ranks, sorted ascending.
func (w *World) deadSorted() []int {
	w.deadMu.Lock()
	d := append([]int(nil), w.dead...)
	w.deadMu.Unlock()
	sort.Ints(d)
	return d
}

// resetFaultRun clears the per-Run failure state (worlds may Run more than
// once; kill counters live on the per-Run Procs and reset with them).
func (w *World) resetFaultRun() {
	w.deadMu.Lock()
	w.dead = w.dead[:0]
	w.deadMu.Unlock()
	w.failedFlag.Store(false)
}

// faultCollEnter is the collective-entry fault hook, called exactly once
// per collective invocation (driveSched for blocking calls, collRequest for
// nonblocking ones; the schedule's faultEntered flag dedupes the Wait-side
// driveSched). It trips kill rules and charges the seeded straggler delay.
func (p *Proc) faultCollEnter(s *collSched) error {
	if p.failure != nil {
		return p.failure
	}
	w := p.world
	f := w.faults
	p.collInvoke++
	if len(f.Kills) > 0 {
		if p.killSeen == nil {
			p.killSeen = make([]int32, len(f.Kills))
		}
		for i := range f.Kills {
			k := &f.Kills[i]
			if k.Rank != p.rank {
				continue
			}
			if k.At >= 0 {
				if float64(p.clock.Now()) >= k.At {
					return p.kill(s)
				}
				continue
			}
			if k.Coll != "" && k.Coll != string(s.coll) {
				continue
			}
			p.killSeen[i]++
			if int(p.killSeen[i]) > k.After {
				return p.kill(s)
			}
		}
	}
	if f.NoiseSigma > 0 {
		u := faults.Uniform(f.Seed, uint64(p.rank), noiseStream+uint64(p.collInvoke))
		p.clock.Advance(vtime.Micros(f.NoiseSigma * 2 * u))
	}
	return nil
}

// kill marks this rank dead at the current collective entry.
func (p *Proc) kill(s *collSched) error {
	err := &RankKilledError{
		Rank: p.rank, Collective: s.coll, Invocation: p.collInvoke, Time: p.clock.Now(),
	}
	p.failure = err
	p.world.recordDead(p.rank)
	return err
}

// parkFailure records (and returns) the rank's point-to-point failure
// after a blocking wait was broken by the stall detector or by a cancel
// signal. driveSched enriches the error with the collective and step when
// the wait was a schedule's.
func (p *Proc) parkFailure() error {
	if p.failure == nil {
		if p.world.cancelRequested() {
			p.failure = p.cancelErr("", -1)
		} else {
			p.failure = &RankFailedError{
				Code: ErrProcFailed, Rank: p.rank, Failed: p.world.deadSorted(),
				Collective: "", Step: -1, Time: p.clock.Now(),
			}
		}
	}
	return p.failure
}

// failStalled is the event engine's stall resolution: the run queue
// drained with ranks still parked. When the fault plan has killed ranks,
// every parked survivor is failed — schedule-parked ranks get their
// RankFailedError through the schedule handoff (schedErr), coroutine-parked
// ranks through Proc.failure and their park-site failure checks — and
// re-queued so the loop can unwind them. Reports whether anything was
// woken; false means the stall is a genuine deadlock (or no fault plan is
// installed) and the caller reports it instead.
func (l *eventLoop) failStalled() bool {
	w := l.w
	if w.faults == nil {
		return false
	}
	failed := w.deadSorted()
	if len(failed) == 0 {
		return false
	}
	w.failedFlag.Store(true)
	woke := false
	for _, er := range l.ranks {
		if er.state != rankBlocked {
			continue
		}
		p := er.proc
		if s := er.sched; s != nil {
			er.schedErr = &RankFailedError{
				Code: ErrProcFailed, Rank: p.rank, Failed: failed,
				Collective: s.coll, Step: s.pc, Time: p.clock.Now(),
			}
			er.sched = nil
		} else if p.failure == nil {
			p.failure = &RankFailedError{
				Code: ErrProcFailed, Rank: p.rank, Failed: failed,
				Collective: "", Step: -1, Time: p.clock.Now(),
			}
		}
		// All parked ranks have driving == false at a top-level stall
		// (driveUntil clears it before its nested yield), so waking them
		// resumes each coroutine exactly once: nested driveUntil frames exit
		// their loop on sched == nil and surface schedErr; park sites return
		// into their callers' failure checks.
		er.state = rankRunnable
		er.wait = waitAny
		l.push(er)
		woke = true
	}
	return woke
}

// deadlockErr builds the structured no-progress diagnostic from the loop's
// final state.
func (l *eventLoop) deadlockErr() error {
	de := &DeadlockError{Size: l.w.size}
	for _, er := range l.ranks {
		if er.state == rankDone {
			continue
		}
		b := BlockedRank{Rank: er.proc.rank, Step: -1, Time: er.proc.clock.Now()}
		if s := er.sched; s != nil {
			b.Collective, b.Step = s.coll, s.pc
			b.Op = describeStep(s)
		} else {
			switch er.wait {
			case waitMsg:
				b.Op = fmt.Sprintf("recv from rank %d tag %d (ctx %d)",
					er.waitSrc, er.waitTag, er.waitCtx)
			case waitRdv:
				b.Op = "rendezvous send drain"
			case waitFold:
				b.Op = "fold gather"
			default:
				b.Op = "poll (Waitany)"
			}
		}
		de.Blocked = append(de.Blocked, b)
	}
	return de
}

// describeStep names the pending schedule step a parked rank cannot
// complete.
func describeStep(s *collSched) string {
	if s.pc >= len(s.steps) {
		return "completed schedule"
	}
	st := &s.steps[s.pc]
	switch st.op {
	case opRecv:
		return fmt.Sprintf("recv from rank %d", st.peer)
	case opExchange:
		if s.phase == 1 {
			return fmt.Sprintf("exchange recv from rank %d", st.peer)
		}
		return fmt.Sprintf("exchange drain to rank %d", st.sendPeer)
	case opPost:
		return fmt.Sprintf("post to rank %d", st.peer)
	case opSend:
		return fmt.Sprintf("send drain to rank %d", st.peer)
	case opWaitSend:
		return "send drain"
	default:
		return fmt.Sprintf("step op %d", st.op)
	}
}

// parkKind classifies what a goroutine-engine rank is parked on, for the
// watchdog's wake-source verification.
type parkKind uint8

const (
	parkNone parkKind = iota
	// parkMsg: parked in mailbox.match/peek on a (ctx, src, tag) match.
	parkMsg
	// parkRdv: parked in completeSend on a rendezvous completion report.
	parkRdv
	// parkPoll: sleeping between Waitany poll passes; wakes on its own.
	parkPoll
)

// parkRecord is one rank's registered parking site.
type parkRecord struct {
	kind          parkKind
	src, tag, ctx int
	rdv           *rendezvous
	// rdvs are the outstanding rendezvous handshakes of a polling rank's
	// requests: a completion report latched in any of them means the poller
	// can make progress, so failure must not be declared.
	rdvs []*rendezvous
}

// watchdog is the goroutine engine's stall detector, active only when the
// fault plan can kill ranks. Ranks register every blocking park with it;
// a monitor goroutine declares failure when (a) a rank has died, (b) every
// live rank is parked, (c) no parked rank has a wake source in flight
// (a matching envelope or a latched rendezvous report), and (d) nothing
// changed while it was checking (a generation counter bumped by every
// park/unpark). Declaration closes failedCh (unparking rendezvous waiters
// and pollers) and signals every waiting mailbox condvar; woken ranks
// construct their own RankFailedError via parkFailure.
//
// The verification protocol cannot miss a wakeup: parking ranks hold their
// mailbox lock from registration through cond.Wait (the monitor's signal
// pass takes the same lock), and the count+generation recheck after
// verification guarantees no rank ran — and therefore no new wake source
// appeared — between the checks.
type watchdog struct {
	w        *World
	mu       sync.Mutex
	parked   int
	done     int
	gen      uint64
	recs     []parkRecord
	failed   atomic.Bool
	failedCh chan struct{}
	stop     chan struct{}
	exited   chan struct{}
}

// newWatchdog builds and starts the stall monitor.
func newWatchdog(w *World) *watchdog {
	wd := &watchdog{
		w:        w,
		recs:     make([]parkRecord, w.size),
		failedCh: make(chan struct{}),
		stop:     make(chan struct{}),
		exited:   make(chan struct{}),
	}
	go wd.monitor()
	return wd
}

// enterMsg registers a rank about to park on a mailbox match. The caller
// holds the mailbox lock (lock order: mailbox.mu, then watchdog.mu).
func (wd *watchdog) enterMsg(rank, src, tag, ctx int) {
	wd.mu.Lock()
	wd.recs[rank] = parkRecord{kind: parkMsg, src: src, tag: tag, ctx: ctx}
	wd.parked++
	wd.gen++
	wd.mu.Unlock()
}

// enterRdv registers a rank about to park on a rendezvous completion.
func (wd *watchdog) enterRdv(rank int, rdv *rendezvous) {
	wd.mu.Lock()
	wd.recs[rank] = parkRecord{kind: parkRdv, rdv: rdv}
	wd.parked++
	wd.gen++
	wd.mu.Unlock()
}

// enterPoll registers a rank sleeping between Waitany poll passes; rdvs
// are the handshakes whose completion would let the poller progress.
func (wd *watchdog) enterPoll(rank int, rdvs []*rendezvous) {
	wd.mu.Lock()
	wd.recs[rank] = parkRecord{kind: parkPoll, rdvs: rdvs}
	wd.parked++
	wd.gen++
	wd.mu.Unlock()
}

// exit unregisters a parked rank.
func (wd *watchdog) exit(rank int) {
	wd.mu.Lock()
	wd.recs[rank] = parkRecord{}
	wd.parked--
	wd.gen++
	wd.mu.Unlock()
}

// rankDone counts a finished rank (its body returned).
func (wd *watchdog) rankDone(rank int) {
	wd.mu.Lock()
	wd.recs[rank] = parkRecord{}
	wd.done++
	wd.gen++
	wd.mu.Unlock()
}

// failedNow reports whether failure has been declared.
func (wd *watchdog) failedNow() bool { return wd.failed.Load() }

// shutdown stops the monitor (the Run is over).
func (wd *watchdog) shutdown() {
	close(wd.stop)
	<-wd.exited
}

// watchdogTick is the monitor's polling period. Real time, not virtual:
// it bounds only how quickly a stall is *declared*, never any virtual-time
// number.
const watchdogTick = 200 * time.Microsecond

// monitor polls for a verified stall.
func (wd *watchdog) monitor() {
	defer close(wd.exited)
	ticker := time.NewTicker(watchdogTick)
	defer ticker.Stop()
	for {
		select {
		case <-wd.stop:
			return
		case <-ticker.C:
			if wd.tryDeclare() {
				return
			}
		}
	}
}

// tryDeclare runs one verification pass; it reports true once failure has
// been declared.
func (wd *watchdog) tryDeclare() bool {
	w := wd.w
	if len(w.deadSorted()) == 0 {
		return false
	}
	wd.mu.Lock()
	if wd.parked+wd.done < w.size {
		wd.mu.Unlock()
		return false
	}
	gen := wd.gen
	recs := append([]parkRecord(nil), wd.recs...)
	wd.mu.Unlock()

	// Verify no parked rank has a wake source in flight. Everything checked
	// here predates the generation snapshot; anything newer implies a rank
	// ran, which the recheck below catches.
	for rank := range recs {
		rec := &recs[rank]
		switch rec.kind {
		case parkMsg:
			mb := w.mailboxes[rank]
			mb.mu.Lock()
			e, _, _ := mb.find(rec.src, rec.tag, rec.ctx)
			mb.mu.Unlock()
			if e != nil {
				return false
			}
		case parkRdv:
			if len(rec.rdv.done) > 0 {
				return false
			}
		case parkPoll:
			mb := w.mailboxes[rank]
			mb.mu.Lock()
			pending := mb.npend
			mb.mu.Unlock()
			if pending > 0 {
				return false
			}
			for _, rdv := range rec.rdvs {
				if rdv != nil && len(rdv.done) > 0 {
					return false
				}
			}
		}
	}

	wd.mu.Lock()
	ok := wd.gen == gen && wd.parked+wd.done >= w.size
	if ok {
		wd.failed.Store(true)
		w.failedFlag.Store(true)
		close(wd.failedCh)
	}
	wd.mu.Unlock()
	if !ok {
		return false
	}
	// Unpark mailbox waiters; rendezvous waiters and pollers wake on
	// failedCh. Parked ranks hold their mailbox lock until cond.Wait, so
	// this Signal cannot race ahead of a registration.
	for _, mb := range w.mailboxes {
		mb.mu.Lock()
		if mb.waiting {
			mb.cond.Signal()
		}
		mb.mu.Unlock()
	}
	return true
}

// pollWait sleeps a Waitany poller until the next pass, registered with
// the watchdog so a stalled world can still be declared failed around it.
func (wd *watchdog) pollWait(rank int, rdvs []*rendezvous) {
	wd.enterPoll(rank, rdvs)
	t := time.NewTimer(watchdogTick)
	select {
	case <-wd.failedCh:
	case <-t.C:
	}
	t.Stop()
	wd.exit(rank)
}
