package mpi

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the collective-algorithm registry: every collective
// algorithm the runtime ships (binomial tree, scatter+ring broadcast,
// recursive doubling, Rabenseifner, Bruck, pairwise, ring, recursive
// halving) is a named, first-class Algorithm entry, and selection is a
// Policy over the registry -- threshold-driven defaults (Tuning, the
// MV2_* knob analogue) plus per-collective forced overrides (the
// MV2_*_ALGORITHM knob analogue). The coll_*.go files register their
// implementations at init time; dispatch sites build a Selection and ask
// the world's policy which entry runs.

// Collective identifies a collective operation with selectable algorithms.
type Collective string

// Collectives with more than one registered algorithm.
const (
	CollBcast         Collective = "bcast"
	CollAllreduce     Collective = "allreduce"
	CollAllgather     Collective = "allgather"
	CollAlltoall      Collective = "alltoall"
	CollReduceScatter Collective = "reduce_scatter"
)

// collectiveOrder fixes the listing order (paper Table II order).
var collectiveOrder = []Collective{
	CollBcast, CollAllreduce, CollAllgather, CollAlltoall, CollReduceScatter,
}

// ParseCollective resolves a collective by name ("reduce-scatter" and
// "reducescatter" are accepted for reduce_scatter).
func ParseCollective(s string) (Collective, error) {
	switch normalizeName(s) {
	case "bcast", "broadcast":
		return CollBcast, nil
	case "allreduce":
		return CollAllreduce, nil
	case "allgather":
		return CollAllgather, nil
	case "alltoall":
		return CollAlltoall, nil
	case "reduce_scatter", "reducescatter":
		return CollReduceScatter, nil
	}
	return "", fmt.Errorf("mpi: unknown collective %q (have %s)", s, collectiveNames())
}

// Collectives returns the collectives with registered algorithms.
func Collectives() []Collective {
	out := make([]Collective, len(collectiveOrder))
	copy(out, collectiveOrder)
	return out
}

func collectiveNames() string {
	names := make([]string, 0, len(collectiveOrder))
	for _, c := range collectiveOrder {
		names = append(names, string(c))
	}
	return strings.Join(names, ", ")
}

// Selection is the context of one algorithm-selection decision: the shape
// of the communicator and of the message, plus the effective thresholds.
type Selection struct {
	// CommSize is the number of ranks in the communicator.
	CommSize int
	// Bytes is the selection size in bytes: the full vector for Bcast and
	// Allreduce, the per-rank block for Allgather, the per-destination
	// block for Alltoall, the total payload for ReduceScatter.
	Bytes int
	// Elems is the element count of the reduction vector (reductions only).
	Elems int
	// Tuning holds the effective thresholds consulted by the predicates.
	Tuning Tuning
}

// Total is the aggregate payload CommSize*Bytes, the quantity the
// allgather thresholds bound.
func (s Selection) Total() int { return s.CommSize * s.Bytes }

// collCall carries the operands of one collective invocation to an
// algorithm implementation; unused fields stay zero.
type collCall struct {
	sbuf, rbuf []byte
	n          int
	counts     []int
	total      int
	dt         DType
	op         Op
	root       int
}

// Algorithm describes one registered collective algorithm.
type Algorithm struct {
	// Name is the canonical algorithm name, e.g. "recursive_doubling".
	Name string
	// Collective is the operation the algorithm implements.
	Collective Collective
	// Summary is a one-line description for CLI listings.
	Summary string
	// Applicable is the default-policy predicate: it reports whether the
	// shipped tuning tables would pick this algorithm for sel. Entries are
	// tried in registration order; the last entry of each collective is a
	// catch-all.
	Applicable func(sel Selection) bool
	// Feasible is the hard correctness constraint, enforced even when the
	// algorithm is forced (e.g. recursive doubling needs a power-of-two
	// communicator); nil means always runnable.
	Feasible func(sel Selection) bool
	// build compiles the implementation into a step schedule (see
	// collsched.go); blocking callers drive it to completion in place,
	// nonblocking callers return it wrapped in a Request.
	build func(c *Comm, call collCall, s *collSched) error
}

// FeasibleFor reports whether the algorithm can run correctly for sel.
func (a *Algorithm) FeasibleFor(sel Selection) bool {
	return a.Feasible == nil || a.Feasible(sel)
}

// registry holds the algorithms of each collective in selection-priority
// order. It is populated by the coll_*.go init functions and immutable
// afterwards, so lookups need no locking.
var algorithmRegistry = map[Collective][]*Algorithm{}

// registerAlgorithm adds an entry; called from init functions only.
func registerAlgorithm(a Algorithm) {
	if a.Name != normalizeName(a.Name) {
		panic("mpi: algorithm name " + a.Name + " is not canonical")
	}
	for _, have := range algorithmRegistry[a.Collective] {
		if have.Name == a.Name {
			panic("mpi: duplicate algorithm " + a.Name + " for " + string(a.Collective))
		}
	}
	algorithmRegistry[a.Collective] = append(algorithmRegistry[a.Collective], &a)
}

// Algorithms returns the registered algorithms of a collective in
// selection-priority order.
func Algorithms(coll Collective) []*Algorithm {
	entries := algorithmRegistry[coll]
	out := make([]*Algorithm, len(entries))
	copy(out, entries)
	return out
}

// AlgorithmNames returns the canonical algorithm names of a collective.
func AlgorithmNames(coll Collective) []string {
	entries := algorithmRegistry[coll]
	out := make([]string, len(entries))
	for i, a := range entries {
		out[i] = a.Name
	}
	return out
}

// normalizeName lower-cases and unifies separators so "Recursive-Doubling"
// and "recursive_doubling" compare equal.
func normalizeName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "-", "_")
	s = strings.ReplaceAll(s, " ", "_")
	return s
}

// algorithmAliases maps accepted shorthands to canonical algorithm names.
var algorithmAliases = map[string]string{
	"rd":                "recursive_doubling",
	"recdoubling":       "recursive_doubling",
	"doubling":          "recursive_doubling",
	"rh":                "recursive_halving",
	"halving":           "recursive_halving",
	"raben":             "rabenseifner",
	"scatter_allgather": "scatter_ring",
	"tree":              "binomial",
	"pair":              "pairwise",
}

// CanonicalAlgorithm resolves name (or an accepted alias) to the canonical
// name of a registered algorithm of coll.
func CanonicalAlgorithm(coll Collective, name string) (string, error) {
	n := normalizeName(name)
	if canon, ok := algorithmAliases[n]; ok {
		n = canon
	}
	for _, a := range algorithmRegistry[coll] {
		if a.Name == n {
			return n, nil
		}
	}
	return "", fmt.Errorf("mpi: collective %s has no algorithm %q (have %s)",
		coll, name, strings.Join(AlgorithmNames(coll), ", "))
}

// LookupAlgorithm returns the registered algorithm of coll with the given
// (possibly aliased) name.
func LookupAlgorithm(coll Collective, name string) (*Algorithm, error) {
	canon, err := CanonicalAlgorithm(coll, name)
	if err != nil {
		return nil, err
	}
	for _, a := range algorithmRegistry[coll] {
		if a.Name == canon {
			return a, nil
		}
	}
	panic("unreachable: canonical name not registered")
}

// Policy is an algorithm-selection policy over the registry: Tuning
// supplies the thresholds the Applicable predicates consult, and Forced
// pins a named algorithm per collective, bypassing the predicates the way
// MVAPICH2's MV2_*_ALGORITHM environment knobs bypass its tuning tables.
type Policy struct {
	Tuning Tuning
	Forced map[Collective]string
	// defaulted marks Tuning as already filled by withDefaults, letting
	// Select skip re-defaulting on the per-collective-call hot path;
	// NewWorld sets it, bare Policy literals (tests, introspection) leave
	// it false and pay the cheap fill on each Select.
	defaulted bool
}

// Select returns the algorithm the policy picks for one invocation.
// sel.Tuning is overwritten with the policy's effective thresholds.
func (p Policy) Select(coll Collective, sel Selection) (*Algorithm, error) {
	sel.Tuning = p.Tuning
	if !p.defaulted {
		sel.Tuning = p.Tuning.withDefaults()
	}
	if name := p.Forced[coll]; name != "" {
		a, err := LookupAlgorithm(coll, name)
		if err != nil {
			return nil, err
		}
		if !a.FeasibleFor(sel) {
			return nil, fmt.Errorf("mpi: forced %s algorithm %q is infeasible for %d ranks",
				coll, a.Name, sel.CommSize)
		}
		return a, nil
	}
	for _, a := range algorithmRegistry[coll] {
		if a.FeasibleFor(sel) && a.Applicable(sel) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("mpi: no algorithm registered for collective %s", coll)
}

// DescribeRegistry renders the registry as a human-readable listing, used
// by the CLIs' -algorithm list output.
func DescribeRegistry() string {
	var sb strings.Builder
	for _, coll := range collectiveOrder {
		fmt.Fprintf(&sb, "%s:\n", coll)
		for _, a := range Algorithms(coll) {
			fmt.Fprintf(&sb, "  %-20s %s\n", a.Name, a.Summary)
		}
	}
	aliases := make([]string, 0, len(algorithmAliases))
	for from, to := range algorithmAliases {
		aliases = append(aliases, from+"="+to)
	}
	sort.Strings(aliases)
	fmt.Fprintf(&sb, "aliases: %s\n", strings.Join(aliases, ", "))
	return sb.String()
}

// algorithm asks the communicator's world policy for the algorithm of one
// invocation.
func (c *Comm) algorithm(coll Collective, sel Selection) (*Algorithm, error) {
	return c.proc.world.policy.Select(coll, sel)
}
