package mpi

import (
	"sync"
	"testing"
)

// The stepCache budget protocol (reserve, publish, single refund) is easy
// to regress into double-refunds or leaked reservations; these tests pin
// the accounting byte for byte around every exit path. Keys use private
// Algorithm values, so they can never collide with real registry entries.

func stepCacheKey(rank int) stepKey {
	return stepKey{alg: &Algorithm{Name: "steptest"}, rank: rank, commSize: 2, n: 64}
}

func TestStoreSharedStepsAccounting(t *testing.T) {
	steps := make([]collStep, 7)
	cost := int64(len(steps)) * 96

	t.Run("success charges the budget once", func(t *testing.T) {
		key := stepCacheKey(1)
		before := stepCacheBytes.Load()
		if !storeSharedSteps(key, steps) {
			t.Fatal("first store rejected")
		}
		if got := stepCacheBytes.Load() - before; got != cost {
			t.Fatalf("budget delta %d, want %d", got, cost)
		}
		if cached, ok := loadSharedSteps(key); !ok || len(cached) != len(steps) {
			t.Fatalf("entry not readable back: ok=%v len=%d", ok, len(cached))
		}
	})

	t.Run("duplicate neither stores nor charges", func(t *testing.T) {
		key := stepCacheKey(2)
		if !storeSharedSteps(key, steps) {
			t.Fatal("first store rejected")
		}
		before := stepCacheBytes.Load()
		if storeSharedSteps(key, make([]collStep, 3)) {
			t.Fatal("duplicate store accepted")
		}
		if got := stepCacheBytes.Load(); got != before {
			t.Fatalf("duplicate changed the budget: %d -> %d", before, got)
		}
		if cached, _ := loadSharedSteps(key); len(cached) != len(steps) {
			t.Fatalf("duplicate replaced the entry: len %d", len(cached))
		}
	})

	t.Run("over budget refunds the reservation", func(t *testing.T) {
		key := stepCacheKey(3)
		// Saturate the budget without touching the map, then restore it.
		filler := stepCacheMaxBytes.Load() - stepCacheBytes.Load()
		stepCacheBytes.Add(filler)
		defer stepCacheBytes.Add(-filler)
		before := stepCacheBytes.Load()
		if storeSharedSteps(key, steps) {
			t.Fatal("store accepted over budget")
		}
		if got := stepCacheBytes.Load(); got != before {
			t.Fatalf("failed store leaked budget: %d -> %d", before, got)
		}
		if _, ok := loadSharedSteps(key); ok {
			t.Fatal("over-budget entry still published")
		}
	})

	t.Run("oversized list is rejected without charging", func(t *testing.T) {
		before := stepCacheBytes.Load()
		if storeSharedSteps(stepCacheKey(4), make([]collStep, stepCacheMaxSteps+1)) {
			t.Fatal("oversized store accepted")
		}
		if got := stepCacheBytes.Load(); got != before {
			t.Fatalf("oversized store changed the budget: %d -> %d", before, got)
		}
	})

	t.Run("concurrent same-key stores charge exactly once", func(t *testing.T) {
		key := stepCacheKey(5)
		const workers = 16
		before := stepCacheBytes.Load()
		var wg sync.WaitGroup
		wins := make(chan bool, workers)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				wins <- storeSharedSteps(key, make([]collStep, len(steps)))
			}()
		}
		wg.Wait()
		close(wins)
		won := 0
		for w := range wins {
			if w {
				won++
			}
		}
		if won != 1 {
			t.Fatalf("%d stores claimed the publish, want exactly 1", won)
		}
		if got := stepCacheBytes.Load() - before; got != cost {
			t.Fatalf("concurrent stores left budget delta %d, want %d", got, cost)
		}
	})
}
