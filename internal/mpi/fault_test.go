package mpi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Fault-injection suite: kill plans must terminate every collective with
// structured errors — never a hang — bit-identically across the goroutine
// and event engines and across fold-on/fold-off, and seeded noise/jitter
// plans must be deterministic.

// faultConfigs are the engine/fold combinations every kill scenario must
// agree across.
var faultConfigs = []struct {
	name        string
	engine      Engine
	disableFold bool
}{
	{"goroutine", EngineGoroutine, false},
	{"event", EngineEvent, false},
	{"event_nofold", EngineEvent, true},
}

// faultWorld builds a timing-only world with the given fault spec.
func faultWorld(t *testing.T, engine Engine, disableFold bool, ranks, ppn int, spec string) *World {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	place, err := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement:   place,
		Model:       netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData:   false,
		Engine:      engine,
		DisableFold: disableFold,
		Faults:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// invokeAnyCollective extends invokeCollective to the directly built
// collectives the fault layer labels.
func invokeAnyCollective(c *Comm, coll Collective, n int) error {
	switch coll {
	case collBarrier:
		return c.Barrier()
	case collReduce:
		return c.ReduceN(nil, nil, n, Float32, OpSum, 0)
	case collGather:
		return c.GatherN(nil, n, nil, 0)
	case collScatter:
		return c.ScatterN(nil, nil, n, 0)
	case collScan:
		return c.ScanN(nil, nil, n, Float32, OpSum)
	default:
		return invokeCollective(c, coll, n)
	}
}

// faultOutcome is one configuration's observable result: the terminal error
// of every rank.
type faultOutcome struct {
	errs []error
}

// runKillScenario loops a collective on every rank until the fault plan
// stops it and records each rank's terminal error. The body returns nil so
// World.Run itself succeeds and every rank's error stays inspectable. Each
// iteration ends in a barrier so ranks with no data dependency on the
// victim (e.g. a bcast subtree not containing it) still observe the
// failure instead of running ahead forever.
func runKillScenario(t *testing.T, engine Engine, disableFold bool, ranks int, spec string, coll Collective, n int) faultOutcome {
	t.Helper()
	w := faultWorld(t, engine, disableFold, ranks, 1, spec)
	out := faultOutcome{errs: make([]error, ranks)}
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		for i := 0; i < 8; i++ {
			err := invokeAnyCollective(c, coll, n)
			if err == nil && coll != collBarrier {
				err = c.Barrier()
			}
			if err != nil {
				out.errs[p.Rank()] = err
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%v engine (fold off=%v): %v", engine, disableFold, err)
	}
	return out
}

// faultCollectives is every collective a kill rule can name.
var faultCollectives = []Collective{
	CollBcast, CollAllreduce, CollAllgather, CollAlltoall, CollReduceScatter,
	collBarrier, collReduce, collGather, collScatter, collScan,
}

// TestFaultKillParity kills rank 3 on its second invocation of each
// collective and checks structured errors and bit-identical error sites
// across both engines and fold settings.
func TestFaultKillParity(t *testing.T) {
	const ranks, victim, n = 8, 3, 4096
	for _, coll := range faultCollectives {
		coll := coll
		t.Run(string(coll), func(t *testing.T) {
			spec := fmt.Sprintf("kill:rank=%d,after=1:%s", victim, coll)
			var ref faultOutcome
			for ci, cfg := range faultConfigs {
				out := runKillScenario(t, cfg.engine, cfg.disableFold, ranks, spec, coll, n)

				var killed *RankKilledError
				if !errors.As(out.errs[victim], &killed) {
					t.Fatalf("%s: rank %d error = %v, want RankKilledError",
						cfg.name, victim, out.errs[victim])
				}
				if killed.Rank != victim || killed.Collective != coll {
					t.Fatalf("%s: kill error %+v, want rank %d collective %s",
						cfg.name, killed, victim, coll)
				}
				for r := 0; r < ranks; r++ {
					if r == victim {
						continue
					}
					var failed *RankFailedError
					if !errors.As(out.errs[r], &failed) {
						t.Fatalf("%s: rank %d error = %v, want RankFailedError",
							cfg.name, r, out.errs[r])
					}
					if failed.Code != ErrProcFailed || failed.Rank != r {
						t.Fatalf("%s: rank %d failure %+v", cfg.name, r, failed)
					}
					if len(failed.Failed) != 1 || failed.Failed[0] != victim {
						t.Fatalf("%s: rank %d blames %v, want [%d]",
							cfg.name, r, failed.Failed, victim)
					}
				}

				if ci == 0 {
					ref = out
					continue
				}
				// Engine/fold parity: identical error sites, bit-identical
				// virtual times.
				for r := 0; r < ranks; r++ {
					if r == victim {
						var a, b *RankKilledError
						errors.As(ref.errs[r], &a)
						errors.As(out.errs[r], &b)
						if *a != *b {
							t.Fatalf("%s: kill mismatch vs %s:\n  %+v\n  %+v",
								cfg.name, faultConfigs[0].name, a, b)
						}
						continue
					}
					var a, b *RankFailedError
					errors.As(ref.errs[r], &a)
					errors.As(out.errs[r], &b)
					if a.Collective != b.Collective || a.Step != b.Step || a.Time != b.Time {
						t.Fatalf("%s: rank %d failure site mismatch vs %s:\n  %+v\n  %+v",
							cfg.name, r, faultConfigs[0].name, a, b)
					}
				}
			}
		})
	}
}

// TestFaultKillAtTime exercises the virtual-time kill trigger on both
// engines.
func TestFaultKillAtTime(t *testing.T) {
	const ranks, n = 8, 4096
	for _, cfg := range faultConfigs {
		out := runKillScenario(t, cfg.engine, cfg.disableFold, ranks,
			"kill:rank=0,at=30us", CollAllreduce, n)
		var killed *RankKilledError
		if !errors.As(out.errs[0], &killed) {
			t.Fatalf("%s: rank 0 error = %v, want RankKilledError", cfg.name, out.errs[0])
		}
		if killed.Time < 30 {
			t.Fatalf("%s: killed at %s, want >= 30us", cfg.name, killed.Time)
		}
		if killed.Invocation < 2 {
			t.Fatalf("%s: killed on invocation %d, want at least one clean pass",
				cfg.name, killed.Invocation)
		}
	}
}

// TestFaultNonblockingCollective checks that a kill plan surfaces through
// the Iallreduce post/Wait path on both engines with no hang.
func TestFaultNonblockingCollective(t *testing.T) {
	const ranks, n = 8, 4096
	for _, cfg := range faultConfigs {
		w := faultWorld(t, cfg.engine, cfg.disableFold, ranks, 1, "kill:rank=2,after=1:allreduce")
		errs := make([]error, ranks)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			for i := 0; i < 8; i++ {
				r, err := c.IallreduceN(nil, nil, n, Float32, OpSum)
				if err == nil {
					_, err = r.Wait()
				}
				if err != nil {
					errs[p.Rank()] = err
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		var killed *RankKilledError
		if !errors.As(errs[2], &killed) {
			t.Fatalf("%s: rank 2 error = %v, want RankKilledError", cfg.name, errs[2])
		}
		for r := 0; r < ranks; r++ {
			if r == 2 {
				continue
			}
			var failed *RankFailedError
			if !errors.As(errs[r], &failed) {
				t.Fatalf("%s: rank %d error = %v, want RankFailedError", cfg.name, r, errs[r])
			}
		}
	}
}

// runNoiseScenario runs a mixed collective workload under a plan and
// returns every rank's final clock.
func runNoiseScenario(t *testing.T, engine Engine, disableFold bool, ranks int, spec string) []vtime.Micros {
	t.Helper()
	w := faultWorld(t, engine, disableFold, ranks, 1, spec)
	end := make([]vtime.Micros, ranks)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		for i := 0; i < 3; i++ {
			if err := c.AllreduceN(nil, nil, 4096, Float32, OpSum); err != nil {
				return err
			}
			if err := c.AlltoallN(nil, 1024, nil); err != nil {
				return err
			}
			if _, err := c.SendrecvN(nil, 64*1024, (p.Rank()+1)%ranks, 7,
				nil, 64*1024, (p.Rank()+ranks-1)%ranks, 7); err != nil {
				return err
			}
		}
		end[p.Rank()] = p.Wtime()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return end
}

// TestFaultNoiseJitterDeterminism pins the seeded straggler/jitter draws:
// the same plan must produce bit-identical clocks run-to-run, across
// engines and across fold settings — and a different seed must not.
func TestFaultNoiseJitterDeterminism(t *testing.T) {
	const ranks = 8
	const spec = "noise:sigma=5us; jitter:link=0.2; seed:42"
	ref := runNoiseScenario(t, EngineGoroutine, false, ranks, spec)
	for _, cfg := range faultConfigs {
		for rep := 0; rep < 2; rep++ {
			got := runNoiseScenario(t, cfg.engine, cfg.disableFold, ranks, spec)
			for r := range got {
				if got[r] != ref[r] {
					t.Fatalf("%s rep %d: rank %d clock %s != %s", cfg.name, rep, r, got[r], ref[r])
				}
			}
		}
	}
	clean := runNoiseScenario(t, EngineEvent, false, ranks, "")
	reseeded := runNoiseScenario(t, EngineEvent, false, ranks, "noise:sigma=5us; jitter:link=0.2; seed:43")
	same := true
	for r := range ref {
		if reseeded[r] != ref[r] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's clocks exactly")
	}
	same = true
	for r := range ref {
		if clean[r] != ref[r] {
			same = false
		}
	}
	if same {
		t.Fatal("noise plan did not perturb the clean clocks")
	}
}

// TestFaultInertPlanZeroImpact: a parsed-but-empty plan must not move any
// virtual time relative to no plan at all.
func TestFaultInertPlanZeroImpact(t *testing.T) {
	const ranks = 8
	clean := runNoiseScenario(t, EngineEvent, false, ranks, "")
	inert := runNoiseScenario(t, EngineEvent, false, ranks, " ; ; ")
	for r := range clean {
		if clean[r] != inert[r] {
			t.Fatalf("rank %d: inert plan moved clock %s -> %s", r, clean[r], inert[r])
		}
	}
}

// TestEventDeadlockDiagnostic pins the event engine's structured
// no-progress error on an intentionally deadlocked 2-rank world.
func TestEventDeadlockDiagnostic(t *testing.T) {
	t.Run("p2p", func(t *testing.T) {
		w := faultWorld(t, EngineEvent, false, 2, 1, "")
		err := w.Run(func(p *Proc) error {
			// Both ranks receive first: no message is ever posted.
			_, err := p.CommWorld().RecvN(nil, 16, 1-p.Rank(), 5)
			return err
		})
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("error = %v, want DeadlockError", err)
		}
		if dl.Size != 2 || len(dl.Blocked) != 2 {
			t.Fatalf("deadlock %+v, want both ranks blocked", dl)
		}
		for i, b := range dl.Blocked {
			if b.Rank != i || b.Step != -1 {
				t.Fatalf("blocked[%d] = %+v", i, b)
			}
			want := fmt.Sprintf("recv from rank %d tag 5 (ctx 0)", 1-i)
			if b.Op != want {
				t.Fatalf("blocked[%d].Op = %q, want %q", i, b.Op, want)
			}
		}
	})
	t.Run("collective", func(t *testing.T) {
		w := faultWorld(t, EngineEvent, false, 2, 1, "")
		err := w.Run(func(p *Proc) error {
			if p.Rank() == 1 {
				return nil // never enters the barrier
			}
			return p.CommWorld().Barrier()
		})
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("error = %v, want DeadlockError", err)
		}
		if len(dl.Blocked) != 1 {
			t.Fatalf("deadlock %+v, want exactly rank 0 blocked", dl)
		}
		b := dl.Blocked[0]
		if b.Rank != 0 || b.Collective != collBarrier || b.Step != 0 {
			t.Fatalf("blocked = %+v, want rank 0 in barrier step 0", b)
		}
	})
}
