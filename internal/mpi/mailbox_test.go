package mpi

import (
	"fmt"
	"testing"
)

// Tests pinning the indexed mailbox's matching semantics: FIFO
// non-overtaking per (source, tag), earliest-delivery selection for
// AnySource across per-source buckets, AnyTag within a bucket, and context
// separation. Delivery order across sources is made deterministic by
// sequencing the senders with Probe and go-ahead messages.

// TestAnySourceCrossBucketFIFO queues one message from rank 1 and then one
// from rank 2 (in that delivery order, enforced with Probe) and asserts
// that wildcard receives drain them in delivery order, i.e. the AnySource
// scan picks the lowest delivery seq across buckets.
func TestAnySourceCrossBucketFIFO(t *testing.T) {
	w := testWorld(t, 3, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, 8)
		switch p.Rank() {
		case 0:
			// Wait until rank 1's message is queued, then release rank 2.
			if _, err := c.Probe(1, 7); err != nil {
				return err
			}
			if err := c.Send([]byte{1}, 2, 9); err != nil {
				return err
			}
			if _, err := c.Probe(2, 7); err != nil {
				return err
			}
			// Both queued: delivery order is rank 1 then rank 2.
			for _, want := range []int{1, 2} {
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					return err
				}
				if st.Source != want {
					return fmt.Errorf("wildcard recv got source %d, want %d", st.Source, want)
				}
			}
			return nil
		case 1:
			return c.Send(pattern(1, 8), 0, 7)
		default: // rank 2 sends only after rank 0's go-ahead
			if _, err := c.Recv(buf, 0, 9); err != nil {
				return err
			}
			return c.Send(pattern(2, 8), 0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAnySourceTagFiltering queues (rank 1, tag 5) then (rank 2, tag 6) and
// asserts Recv(AnySource, 6) skips the earlier-delivered tag-5 message.
func TestAnySourceTagFiltering(t *testing.T) {
	w := testWorld(t, 3, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, 8)
		switch p.Rank() {
		case 0:
			if _, err := c.Probe(1, 5); err != nil {
				return err
			}
			if err := c.Send([]byte{1}, 2, 9); err != nil {
				return err
			}
			if _, err := c.Probe(2, 6); err != nil {
				return err
			}
			st, err := c.Recv(buf, AnySource, 6)
			if err != nil {
				return err
			}
			if st.Source != 2 || st.Tag != 6 {
				return fmt.Errorf("Recv(AnySource, 6) matched source %d tag %d", st.Source, st.Tag)
			}
			st, err = c.Recv(buf, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Source != 1 || st.Tag != 5 {
				return fmt.Errorf("leftover message was source %d tag %d", st.Source, st.Tag)
			}
			return nil
		case 1:
			return c.Send(pattern(1, 8), 0, 5)
		default:
			if _, err := c.Recv(buf, 0, 9); err != nil {
				return err
			}
			return c.Send(pattern(2, 8), 0, 6)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNonOvertakingInterleavedTags sends tags 1,2,1,2 carrying their send
// index and receives them as 2,1,2,1: within each (source, tag) stream the
// payloads must come back in send order even when a later-posted receive
// matches an earlier-delivered message of the other tag.
func TestNonOvertakingInterleavedTags(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i, tag := range []int{1, 2, 1, 2} {
				if err := c.Send([]byte{byte(i)}, 1, tag); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for _, want := range []struct{ tag, idx int }{{2, 1}, {1, 0}, {2, 3}, {1, 2}} {
			if _, err := c.Recv(buf, 0, want.tag); err != nil {
				return err
			}
			if buf[0] != byte(want.idx) {
				return fmt.Errorf("tag %d delivered message %d, want %d", want.tag, buf[0], want.idx)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestProbeAnySourceEarliest queues messages from two sources in a known
// order and asserts Probe(AnySource, AnyTag) reports the earliest-delivered
// one without consuming it.
func TestProbeAnySourceEarliest(t *testing.T) {
	w := testWorld(t, 3, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, 8)
		switch p.Rank() {
		case 0:
			if _, err := c.Probe(1, 3); err != nil {
				return err
			}
			if err := c.Send([]byte{1}, 2, 9); err != nil {
				return err
			}
			if _, err := c.Probe(2, 3); err != nil {
				return err
			}
			st, err := c.Probe(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Source != 1 {
				return fmt.Errorf("Probe reported source %d, want 1", st.Source)
			}
			// Drain both; the probed message must still be there.
			if st, err = c.Recv(buf, AnySource, AnyTag); err != nil || st.Source != 1 {
				return fmt.Errorf("first drain: %v source %d", err, st.Source)
			}
			if st, err = c.Recv(buf, AnySource, AnyTag); err != nil || st.Source != 2 {
				return fmt.Errorf("second drain: %v source %d", err, st.Source)
			}
			return nil
		case 1:
			return c.Send(pattern(1, 8), 0, 3)
		default:
			if _, err := c.Recv(buf, 0, 9); err != nil {
				return err
			}
			return c.Send(pattern(2, 8), 0, 3)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestContextSeparation delivers a message on a duplicated communicator
// first and one on the world second, with the same source and tag, and
// asserts the world receive matches the world message: buckets are indexed
// by (context, source), so traffic can never cross communicators.
func TestContextSeparation(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := dup.Send([]byte{42}, 1, 5); err != nil {
				return err
			}
			return c.Send([]byte{7}, 1, 5)
		}
		// Ensure the dup message is delivered first, then receive on world.
		if _, err := dup.Probe(0, 5); err != nil {
			return err
		}
		buf := make([]byte, 1)
		if _, err := c.Recv(buf, 0, 5); err != nil {
			return err
		}
		if buf[0] != 7 {
			return fmt.Errorf("world recv got dup payload %d", buf[0])
		}
		if _, err := dup.Recv(buf, 0, 5); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("dup recv got %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRingRemoveAt exercises the ring buffer's shorter-side shifting
// directly across head positions and removal indices.
func TestRingRemoveAt(t *testing.T) {
	for pre := 0; pre < 12; pre++ { // rotate head via pre pushes+pops
		for n := 1; n <= 9; n++ {
			for del := 0; del < n; del++ {
				var r envRing
				for i := 0; i < pre; i++ {
					r.push(&envelope{})
					r.removeAt(0)
				}
				envs := make([]*envelope, n)
				for i := range envs {
					envs[i] = &envelope{seq: uint64(i)}
					r.push(envs[i])
				}
				r.removeAt(del)
				if r.size != n-1 {
					t.Fatalf("pre=%d n=%d del=%d: size %d", pre, n, del, r.size)
				}
				want := 0
				for i := 0; i < r.size; i++ {
					if want == del {
						want++
					}
					if r.at(i) != envs[want] {
						t.Fatalf("pre=%d n=%d del=%d: slot %d holds seq %d, want %d",
							pre, n, del, i, r.at(i).seq, want)
					}
					want++
				}
			}
		}
	}
}
