package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// allreduceRabenseifnerMin is the message size at which Allreduce switches
// from recursive doubling to Rabenseifner's reduce-scatter + allgather,
// mirroring MVAPICH2's tuning.
const allreduceRabenseifnerMin = 32 * 1024

func init() {
	registerAlgorithm(Algorithm{
		Name:       "rabenseifner",
		Collective: CollAllreduce,
		Summary:    "reduce-scatter + allgather (large vectors, >=4 ranks)",
		Applicable: func(s Selection) bool {
			return s.Bytes >= s.Tuning.AllreduceRabenseifnerMin &&
				s.CommSize >= 4 && s.Elems >= collective.Pof2Floor(s.CommSize)
		},
		run: func(c *Comm, call collCall) error {
			return c.allreduceRabenseifner(call.rbuf, call.n, call.dt, call.op)
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "recursive_doubling",
		Collective: CollAllreduce,
		Summary:    "whole-vector recursive doubling (small messages)",
		Applicable: func(Selection) bool { return true },
		run: func(c *Comm, call collCall) error {
			return c.allreduceRecDoubling(call.rbuf, call.n, call.dt, call.op)
		},
	})
}

// Allreduce combines sbuf across all ranks with op over dt and leaves the
// result in rbuf on every rank.
func (c *Comm) Allreduce(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.AllreduceN(sbuf, rbuf, len(sbuf), dt, op)
}

// AllreduceN is Allreduce with an explicit byte count; buffers may be nil in
// timing-only worlds.
func (c *Comm) AllreduceN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	if n%dt.Size() != 0 {
		return fmt.Errorf("mpi: Allreduce size %d not a multiple of %s", n, dt)
	}
	p := len(c.group)
	if p == 1 {
		if rbuf != nil && sbuf != nil {
			copy(rbuf[:n], sbuf[:n])
		}
		return nil
	}
	// Accumulator initialised with the local contribution.
	var acc []byte
	if sbuf != nil && rbuf != nil {
		acc = rbuf[:n]
		copy(acc, sbuf[:n])
	}
	alg, err := c.algorithm(CollAllreduce, Selection{CommSize: p, Bytes: n, Elems: n / dt.Size()})
	if err != nil {
		return fmt.Errorf("mpi: Allreduce: %w", err)
	}
	if err := alg.run(c, collCall{rbuf: acc, n: n, dt: dt, op: op}); err != nil {
		return fmt.Errorf("mpi: Allreduce: %w", err)
	}
	return nil
}

// chargeCompute prices a local reduction of n bytes.
func (c *Comm) chargeCompute(n int) {
	c.proc.clock.Advance(c.proc.world.cfg.Model.Compute(n, c.proc.pyMode(), c.proc.fullSub()))
}

// allreduceRecDoubling implements recursive doubling with the classic fold
// for non-power-of-two communicators.
func (c *Comm) allreduceRecDoubling(acc []byte, n int, dt DType, op Op) error {
	p := len(c.group)
	fold := collective.NewPof2Fold(c.rank, p)
	var tmp []byte
	if acc != nil {
		tmp = c.scratch(n)
		defer c.release(tmp)
	}

	switch fold.Role {
	case collective.FoldSender:
		c.completeSend(c.postSend(fold.Partner, tagAllreduce, acc, n))
	case collective.FoldReceiver:
		if _, err := c.recvBytes(fold.Partner, tagAllreduce, tmp, n); err != nil {
			return err
		}
		c.chargeCompute(n)
		if acc != nil {
			if err := reduceInto(acc, tmp, dt, op); err != nil {
				return err
			}
		}
	}

	if fold.Role != collective.FoldSender {
		for _, peerNew := range c.rdPeersFor(fold.NewRank, fold.Pof2) {
			peer := fold.OldRank(peerNew, p)
			if _, err := c.sendrecvRaw(acc, n, peer, tagAllreduce, tmp, n, peer, tagAllreduce); err != nil {
				return err
			}
			c.chargeCompute(n)
			if acc != nil {
				if err := reduceInto(acc, tmp, dt, op); err != nil {
					return err
				}
			}
		}
	}

	// Unfold: receivers hand the finished vector back to their senders.
	switch fold.Role {
	case collective.FoldReceiver:
		c.completeSend(c.postSend(fold.Partner, tagAllreduce, acc, n))
	case collective.FoldSender:
		if _, err := c.recvBytes(fold.Partner, tagAllreduce, acc, n); err != nil {
			return err
		}
	}
	return nil
}

// allreduceRabenseifner implements the reduce-scatter (recursive halving) +
// allgather (recursive doubling) algorithm for large messages. Non-power-of
// -two communicators fold whole vectors first, as in allreduceRecDoubling.
func (c *Comm) allreduceRabenseifner(acc []byte, n int, dt DType, op Op) error {
	p := len(c.group)
	fold := collective.NewPof2Fold(c.rank, p)
	var tmp []byte
	if acc != nil {
		tmp = c.scratch(n)
		defer c.release(tmp)
	}

	switch fold.Role {
	case collective.FoldSender:
		c.completeSend(c.postSend(fold.Partner, tagAllreduce, acc, n))
	case collective.FoldReceiver:
		if _, err := c.recvBytes(fold.Partner, tagAllreduce, tmp, n); err != nil {
			return err
		}
		c.chargeCompute(n)
		if acc != nil {
			if err := reduceInto(acc, tmp, dt, op); err != nil {
				return err
			}
		}
	}

	if fold.Role != collective.FoldSender {
		pof2 := fold.Pof2
		bounds := c.blockBoundsFor(n, pof2, dt.Size())
		// Reduce-scatter phase: recursive halving.
		for _, s := range c.halvingSchedule(fold.NewRank, pof2) {
			peer := fold.OldRank(s.Peer, p)
			sLo, sHi := bounds[s.SendLo], bounds[s.SendHi]
			kLo, kHi := bounds[s.KeepLo], bounds[s.KeepHi]
			if _, err := c.sendrecvRaw(
				sliceOrNil(acc, sLo, sHi), sHi-sLo, peer, tagAllreduce,
				sliceOrNil(tmp, kLo, kHi), kHi-kLo, peer, tagAllreduce,
			); err != nil {
				return err
			}
			c.chargeCompute(kHi - kLo)
			if acc != nil {
				if err := reduceInto(acc[kLo:kHi], tmp[kLo:kHi], dt, op); err != nil {
					return err
				}
			}
		}
		// Allgather phase: recursive doubling over the same windows.
		for _, s := range c.allgatherSchedule(fold.NewRank, pof2) {
			peer := fold.OldRank(s.Peer, p)
			hLo, hHi := bounds[s.HaveLo], bounds[s.HaveHi]
			gLo, gHi := bounds[s.GetLo], bounds[s.GetHi]
			if _, err := c.sendrecvRaw(
				sliceOrNil(acc, hLo, hHi), hHi-hLo, peer, tagAllreduce,
				sliceOrNil(acc, gLo, gHi), gHi-gLo, peer, tagAllreduce,
			); err != nil {
				return err
			}
		}
	}

	switch fold.Role {
	case collective.FoldReceiver:
		c.completeSend(c.postSend(fold.Partner, tagAllreduce, acc, n))
	case collective.FoldSender:
		if _, err := c.recvBytes(fold.Partner, tagAllreduce, acc, n); err != nil {
			return err
		}
	}
	return nil
}
