package mpi

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/vtime"
)

// allreduceRabenseifnerMin is the message size at which Allreduce switches
// from recursive doubling to Rabenseifner's reduce-scatter + allgather,
// mirroring MVAPICH2's tuning.
const allreduceRabenseifnerMin = 32 * 1024

func init() {
	registerAlgorithm(Algorithm{
		Name:       "rabenseifner",
		Collective: CollAllreduce,
		Summary:    "reduce-scatter + allgather (large vectors, >=4 ranks)",
		Applicable: func(s Selection) bool {
			return s.Bytes >= s.Tuning.AllreduceRabenseifnerMin &&
				s.CommSize >= 4 && s.Elems >= collective.Pof2Floor(s.CommSize)
		},
		build: buildAllreduceRabenseifner,
	})
	registerAlgorithm(Algorithm{
		Name:       "recursive_doubling",
		Collective: CollAllreduce,
		Summary:    "whole-vector recursive doubling (small messages)",
		Applicable: func(Selection) bool { return true },
		build:      buildAllreduceRecDoubling,
	})
}

// Allreduce combines sbuf across all ranks with op over dt and leaves the
// result in rbuf on every rank.
func (c *Comm) Allreduce(sbuf, rbuf []byte, dt DType, op Op) error {
	return c.AllreduceN(sbuf, rbuf, len(sbuf), dt, op)
}

// AllreduceN is Allreduce with an explicit byte count; buffers may be nil in
// timing-only worlds.
func (c *Comm) AllreduceN(sbuf, rbuf []byte, n int, dt DType, op Op) error {
	s, err := c.allreduceStart(sbuf, rbuf, n, dt, op)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Allreduce: %w", err)
	}
	return nil
}

// Iallreduce starts a nonblocking Allreduce; the result is in rbuf after
// the returned request completes.
func (c *Comm) Iallreduce(sbuf, rbuf []byte, dt DType, op Op) (*Request, error) {
	return c.IallreduceN(sbuf, rbuf, len(sbuf), dt, op)
}

// IallreduceN is Iallreduce with an explicit byte count.
func (c *Comm) IallreduceN(sbuf, rbuf []byte, n int, dt DType, op Op) (*Request, error) {
	s, err := c.allreduceStart(sbuf, rbuf, n, dt, op)
	if err != nil {
		return nil, err
	}
	return c.collRequest(s)
}

// allreduceStart validates the call, seeds the accumulator and compiles the
// selected algorithm's schedule (nil for the trivial single-rank case).
func (c *Comm) allreduceStart(sbuf, rbuf []byte, n int, dt DType, op Op) (*collSched, error) {
	if n%dt.Size() != 0 {
		return nil, fmt.Errorf("mpi: Allreduce size %d not a multiple of %s", n, dt)
	}
	p := len(c.group)
	if p == 1 {
		if rbuf != nil && sbuf != nil {
			copy(rbuf[:n], sbuf[:n])
		}
		return nil, nil
	}
	// Accumulator initialised with the local contribution.
	var acc []byte
	if sbuf != nil && rbuf != nil {
		acc = rbuf[:n]
		copy(acc, sbuf[:n])
	}
	s, err := c.startColl(CollAllreduce,
		Selection{CommSize: p, Bytes: n, Elems: n / dt.Size()},
		collCall{rbuf: acc, n: n, dt: dt, op: op})
	if err != nil {
		return nil, fmt.Errorf("mpi: Allreduce: %w", err)
	}
	return s, nil
}

// buildAllreduceRecDoubling compiles recursive doubling with the classic
// fold for non-power-of-two communicators.
func buildAllreduceRecDoubling(c *Comm, call collCall, s *collSched) error {
	acc, n := call.rbuf, call.n
	p := len(c.group)
	fold := collective.NewPof2Fold(c.rank, p)
	var tmp []byte
	if acc != nil {
		tmp = s.scratch(n)
	}

	switch fold.Role {
	case collective.FoldSender:
		s.send(fold.Partner, acc, n)
	case collective.FoldReceiver:
		s.recv(fold.Partner, tmp, n)
		s.reduce(acc, tmp, n)
	}

	if fold.Role != collective.FoldSender {
		for _, peerNew := range c.rdPeersFor(fold.NewRank, fold.Pof2) {
			peer := fold.OldRank(peerNew, p)
			s.exchange(peer, acc, n, peer, tmp, n)
			s.reduce(acc, tmp, n)
		}
	}

	// Unfold: receivers hand the finished vector back to their senders.
	switch fold.Role {
	case collective.FoldReceiver:
		s.send(fold.Partner, acc, n)
	case collective.FoldSender:
		s.recv(fold.Partner, acc, n)
	}
	return nil
}

// buildAllreduceRabenseifner compiles the reduce-scatter (recursive
// halving) + allgather (recursive doubling) algorithm for large messages.
// Non-power-of-two communicators fold whole vectors first.
func buildAllreduceRabenseifner(c *Comm, call collCall, s *collSched) error {
	acc, n := call.rbuf, call.n
	p := len(c.group)
	fold := collective.NewPof2Fold(c.rank, p)
	var tmp []byte
	if acc != nil {
		tmp = s.scratch(n)
	}

	switch fold.Role {
	case collective.FoldSender:
		s.send(fold.Partner, acc, n)
	case collective.FoldReceiver:
		s.recv(fold.Partner, tmp, n)
		s.reduce(acc, tmp, n)
	}

	if fold.Role != collective.FoldSender {
		pof2 := fold.Pof2
		bounds := c.blockBoundsFor(n, pof2, call.dt.Size())
		// Reduce-scatter phase: recursive halving.
		for _, st := range c.halvingSchedule(fold.NewRank, pof2) {
			peer := fold.OldRank(st.Peer, p)
			sLo, sHi := bounds[st.SendLo], bounds[st.SendHi]
			kLo, kHi := bounds[st.KeepLo], bounds[st.KeepHi]
			s.exchange(peer, sliceOrNil(acc, sLo, sHi), sHi-sLo,
				peer, sliceOrNil(tmp, kLo, kHi), kHi-kLo)
			s.reduce(sliceOrNil(acc, kLo, kHi), sliceOrNil(tmp, kLo, kHi), kHi-kLo)
		}
		// Allgather phase: recursive doubling over the same windows.
		for _, st := range c.allgatherSchedule(fold.NewRank, pof2) {
			peer := fold.OldRank(st.Peer, p)
			hLo, hHi := bounds[st.HaveLo], bounds[st.HaveHi]
			gLo, gHi := bounds[st.GetLo], bounds[st.GetHi]
			s.exchange(peer, sliceOrNil(acc, hLo, hHi), hHi-hLo,
				peer, sliceOrNil(acc, gLo, gHi), gHi-gLo)
		}
	}

	switch fold.Role {
	case collective.FoldReceiver:
		s.send(fold.Partner, acc, n)
	case collective.FoldSender:
		s.recv(fold.Partner, acc, n)
	}
	return nil
}

// chargeCompute prices a local reduction of n bytes.
func (c *Comm) chargeCompute(n int) {
	c.proc.clock.Advance(c.proc.world.cfg.Model.Compute(n, c.proc.pyMode(), c.proc.fullSub()))
}

// ChargeCompute advances the rank clock by d microseconds of virtual local
// computation — the analogue of the dummy compute loop the OSU nonblocking
// overlap tests inject between posting a collective and waiting on it.
func (c *Comm) ChargeCompute(d vtime.Micros) { c.proc.clock.Advance(d) }
