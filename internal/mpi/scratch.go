package mpi

// scratchArena is a freelist allocator bucketed by power-of-two capacity
// class. It backs two pools: the per-rank staging arena the collectives
// draw their accumulator, temporary and packing buffers from (a Proc is
// single-threaded, so no locking), and the byte half doubles as each
// mailbox's payload pool (there the mailbox mutex guards it).
//
// get and getInts return zeroed memory, exactly like the make calls they
// replace: receive windows are normally filled by exact-size receives, but
// a timing-only world dropping a payload (size above the carry limit)
// leaves the window untouched, and recycled garbage there would be
// nondeterministic where make gave stable zeros. getRaw skips the clear
// for the one caller that provably overwrites the whole buffer.
type scratchArena struct {
	// seed is inline backing for the smallest class (64 B). Nearly every
	// buffer a timing-only world stages — 24-byte reduction rows above
	// all — lands there, and arenas are embedded in per-world slabs, so
	// serving the first few tiny buffers from the struct itself keeps the
	// steady-state sweep free of per-run make calls. small holds their
	// freelist slots inline for the same reason: the spill slice in bytes
	// would otherwise regrow once per arena per run.
	seedN  int8
	smallN int8
	seed   [scratchSeeds][1 << payloadMinClass]byte
	small  [scratchSeeds][]byte
	bytes  [payloadMaxClass + 1][][]byte
	ints   [payloadMaxClass + 1][][]int
}

// scratchSeeds bounds the inline buffers per arena; a binomial reduce
// parent rarely holds more than a few staged rows at once, and overflow
// just falls back to the heap classes.
const scratchSeeds = 4

func (a *scratchArena) get(n int) []byte {
	b := a.getRaw(n)
	clear(b)
	return b
}

// getRaw is get without the clear; contents are unspecified. Only for
// buffers that are fully overwritten before any byte is exposed (the
// mailbox payload staging copy).
func (a *scratchArena) getRaw(n int) []byte {
	c := payloadClass(n)
	if c > payloadMaxClass {
		return make([]byte, n)
	}
	if c == payloadMinClass {
		if l := a.smallN; l > 0 {
			a.smallN--
			b := a.small[l-1]
			a.small[l-1] = nil
			return b[:n]
		}
		if a.seedN < scratchSeeds {
			b := a.seed[a.seedN][:]
			a.seedN++
			return b[:n]
		}
	}
	if l := len(a.bytes[c]); l > 0 {
		b := a.bytes[c][l-1]
		a.bytes[c][l-1] = nil
		a.bytes[c] = a.bytes[c][:l-1]
		return b[:n]
	}
	return make([]byte, 1<<c)[:n]
}

func (a *scratchArena) put(b []byte) {
	if b == nil {
		return
	}
	c := payloadClass(cap(b))
	if c > payloadMaxClass || cap(b) != 1<<c {
		return
	}
	if c == payloadMinClass && a.smallN < scratchSeeds {
		a.small[a.smallN] = b[:cap(b)]
		a.smallN++
		return
	}
	a.bytes[c] = append(a.bytes[c], b[:cap(b)])
}

func (a *scratchArena) getInts(n int) []int {
	c := payloadClass(n)
	if c > payloadMaxClass {
		return make([]int, n)
	}
	if l := len(a.ints[c]); l > 0 {
		b := a.ints[c][l-1]
		a.ints[c][l-1] = nil
		a.ints[c] = a.ints[c][:l-1]
		b = b[:n]
		clear(b)
		return b
	}
	return make([]int, 1<<c)[:n]
}

func (a *scratchArena) putInts(b []int) {
	if b == nil {
		return
	}
	c := payloadClass(cap(b))
	if c > payloadMaxClass || cap(b) != 1<<c {
		return
	}
	a.ints[c] = append(a.ints[c], b[:cap(b)])
}

// scratch returns a zeroed n-byte staging buffer from the rank's arena;
// pair with release.
func (c *Comm) scratch(n int) []byte { return c.proc.arena.get(n) }

// release returns staging buffers to the rank's arena; nil entries are
// ignored, so timing-only paths can release unconditionally.
func (c *Comm) release(bufs ...[]byte) {
	for _, b := range bufs {
		c.proc.arena.put(b)
	}
}

// scratchInts returns a zeroed n-element offset/bounds slice from the
// rank's arena; pair with releaseInts.
func (c *Comm) scratchInts(n int) []int { return c.proc.arena.getInts(n) }

// releaseInts returns an offset slice to the rank's arena.
func (c *Comm) releaseInts(b []int) { c.proc.arena.putInts(b) }
