package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// Tests for the []*Request completion family (Waitany, Testall, Testany)
// over p2p and collective requests uniformly.

func TestWaitanyCompletesEachRequestOnce(t *testing.T) {
	w := testWorld(t, 2, 2)
	const n = 512
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := c.Send(pattern(i, n), 1, i+1); err != nil {
					return err
				}
			}
			return nil
		}
		bufs := make([][]byte, 3)
		reqs := make([]*Request, 3)
		for i := range reqs {
			bufs[i] = make([]byte, n)
			r, err := c.Irecv(bufs[i], 0, i+1)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		seen := map[int]bool{}
		for range reqs {
			idx, st, err := Waitany(reqs)
			if err != nil {
				return err
			}
			if idx < 0 || seen[idx] {
				return fmt.Errorf("Waitany returned index %d (seen=%v)", idx, seen)
			}
			seen[idx] = true
			if st.Count != n || st.Source != 0 {
				return fmt.Errorf("Waitany status %+v", st)
			}
			if !bytes.Equal(bufs[idx], pattern(idx, n)) {
				return fmt.Errorf("request %d payload corrupted", idx)
			}
		}
		// All inactive now: Waitany reports -1 (MPI_UNDEFINED analogue).
		if idx, _, _ := Waitany(reqs); idx != -1 {
			return fmt.Errorf("Waitany over completed requests returned %d, want -1", idx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestallAndTestany(t *testing.T) {
	w := testWorld(t, 2, 2)
	const n = 256
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			// Hold rank 1's receives back until it has verified that
			// Testall/Testany report no progress, then send.
			if _, err := c.Recv(nil, 1, 9); err != nil {
				return err
			}
			if err := c.Send(pattern(0, n), 1, 1); err != nil {
				return err
			}
			return c.Send(pattern(1, n), 1, 2)
		}
		b1, b2 := make([]byte, n), make([]byte, n)
		r1, err := c.Irecv(b1, 0, 1)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(b2, 0, 2)
		if err != nil {
			return err
		}
		reqs := []*Request{r1, r2}
		// Nothing sent yet: single passes must report no completion.
		if all, _ := Testall(reqs); all {
			return errors.New("Testall true before any send")
		}
		if idx, _, _ := Testany(reqs); idx != -1 {
			return fmt.Errorf("Testany returned %d before any send", idx)
		}
		if err := c.Send(nil, 0, 9); err != nil { // release the sender
			return err
		}
		// Spin Testany until the first receive lands, then Testall for the
		// rest.
		for {
			idx, st, err := Testany(reqs)
			if err != nil {
				return err
			}
			if idx >= 0 {
				if st.Count != n {
					return fmt.Errorf("Testany status %+v", st)
				}
				break
			}
		}
		for {
			all, err := Testall(reqs)
			if err != nil {
				return err
			}
			if all {
				break
			}
		}
		if !bytes.Equal(b1, pattern(0, n)) || !bytes.Equal(b2, pattern(1, n)) {
			return errors.New("payloads corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitanyMixesP2PAndCollective drives a collective request and a p2p
// receive through one Waitany loop.
func TestWaitanyMixesP2PAndCollective(t *testing.T) {
	const ranks, n = 4, 512
	w := testWorld(t, ranks, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		rbuf := make([]byte, n)
		ireq, err := c.Iallreduce(pattern(p.Rank(), n), rbuf, Float32, OpSum)
		if err != nil {
			return err
		}
		reqs := []*Request{ireq}
		var userBuf []byte
		if p.Rank() == 0 {
			userBuf = make([]byte, n)
			ur, err := c.Irecv(userBuf, 1, 5)
			if err != nil {
				return err
			}
			reqs = append(reqs, ur)
		}
		if p.Rank() == 1 {
			if err := c.Send(pattern(9, n), 0, 5); err != nil {
				return err
			}
		}
		for {
			idx, _, err := Waitany(reqs)
			if err != nil {
				return err
			}
			if idx == -1 {
				break
			}
		}
		if p.Rank() == 0 && !bytes.Equal(userBuf, pattern(9, n)) {
			return errors.New("user payload corrupted")
		}
		want := make([]byte, n)
		if err := c.Allreduce(pattern(p.Rank(), n), want, Float32, OpSum); err != nil {
			return err
		}
		if !bytes.Equal(rbuf, want) {
			return errors.New("collective result diverges")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
