package mpi

import (
	"sync"
	"sync/atomic"
)

// Schedule replay for the event engine. In a timing-only world the
// benchmark collectives pass nil buffers, so the schedule an algorithm
// compiles for a given (communicator, size, root, dtype, op) is the same
// flat step list on every invocation — only the internal tag differs.
// Rebuilding it per call is pure overhead (about a fifth of the goroutine
// engine's large-world profile), so the event executor compiles each
// distinct invocation shape once and replays the cached steps afterwards:
// re-stamp the tag, rewind the cursor, drive. Replay changes no clock
// arithmetic, so virtual times stay bit-identical; schedules that own
// staging buffers or reference user memory are never cached.

// replayKey identifies one reusable compiled-schedule shape. Keying by
// collective (not by selected algorithm) is sound because selection is a
// pure function of (collective, communicator size, bytes, tuning), all
// fixed per key within one world — and it lets a replay hit skip the
// selection walk entirely.
type replayKey struct {
	ctx  int
	coll Collective
	n    int
	root int
	dt   DType
	op   Op
}

// replayable reports whether a call's schedule can be cached: nothing in
// the step list may reference caller-owned memory, which is guaranteed
// exactly when the call carries no buffers and no per-call counts.
func (call *collCall) replayable() bool {
	return call.sbuf == nil && call.rbuf == nil && call.counts == nil
}

// replayEntry is one slot of a rank's replay cache.
type replayEntry struct {
	key replayKey
	s   *collSched
}

// replaySched returns the cached schedule for key, re-armed for a new
// invocation. known reports whether an entry for the key exists at all:
// when it does but is still in flight (an overlapping nonblocking
// invocation), the caller builds a fresh one-off schedule and must NOT
// retain it — the cache holds exactly one entry per key.
func (c *Comm) replaySched(key replayKey) (s *collSched, known bool) {
	for i := range c.proc.replay {
		if c.proc.replay[i].key == key {
			s = c.proc.replay[i].s
			break
		}
	}
	if s == nil {
		return nil, false
	}
	if s.inUse {
		return nil, true
	}
	s.inUse = true
	s.tag = c.nextCollTag()
	s.pc, s.postIdx = 0, 0
	s.phase = 0
	s.pending, s.pendingSet = nil, false
	s.owner = nil
	s.faultEntered = false
	return s, true
}

// stepKey identifies a compiled step list independently of any world: the
// selected algorithm (a stable registry pointer — it also captures the
// collective and, transitively, the tuning decision), the rank's position,
// and the invocation shape. Step lists built from nil buffers contain no
// world state at all, so identical keys compile to identical steps.
type stepKey struct {
	alg      *Algorithm
	rank     int
	commSize int
	n        int
	root     int
	dt       DType
	op       Op
}

// stepCache shares compiled step lists across worlds (sync.Map: sweeps run
// worlds in parallel). Benchmarks and sweeps rebuild the same world shape
// over and over; compiling each rank's schedule once per process instead
// of once per world takes schedule building off the steady-state profile
// entirely. Entries are immutable once stored.
var stepCache sync.Map

// stepCacheBytes bounds the cache: pathological sweeps (thousands of
// distinct shapes, or pairwise alltoall at thousands of ranks) stop
// inserting rather than grow without limit; per-world replay still works.
var stepCacheBytes atomic.Int64

const stepCacheMaxSteps = 512

// stepCacheMaxBytes is the shared step-list budget. It starts sized for
// few-thousand-rank worlds and is widened by growEventCaches when a larger
// event world is constructed: the cache only helps when it can hold every
// rank's compiled steps, and a 64Ki-rank sweep that overflows it pays a
// full per-rank rebuild each run — measurably slower than the retained
// memory is expensive. The ceiling still exists (growEventCaches clamps),
// so pathological shape sweeps cannot grow the cache without bound.
var stepCacheMaxBytes atomic.Int64

func init() {
	stepCacheMaxBytes.Store(128 << 20)
	schedStore.max = 128 << 20
}

// loadSharedSteps returns the process-wide compiled step list for key.
func loadSharedSteps(key stepKey) ([]collStep, bool) {
	v, ok := stepCache.Load(key)
	if !ok {
		return nil, false
	}
	return v.([]collStep), true
}

// storeSharedSteps publishes a freshly compiled step list, within budget.
// It reports whether the caller's slice became the shared entry.
//
// The order matters: reserve budget, then LoadOrStore, and refund through
// exactly one exit path. An earlier version charged the budget and had two
// independent refund sites; a race between them could refund the same
// reservation twice, leaking negative bytes into the accounting until the
// budget check stopped meaning anything.
func storeSharedSteps(key stepKey, steps []collStep) bool {
	n := len(steps)
	if n > stepCacheMaxSteps {
		return false
	}
	if _, exists := stepCache.Load(key); exists {
		// Lost the publish race (or a replay raced a rebuild): nothing was
		// reserved, nothing to refund.
		return false
	}
	bytes := int64(n) * int64(96) // ~unsafe.Sizeof(collStep{})
	if stepCacheBytes.Add(bytes) <= stepCacheMaxBytes.Load() {
		if _, raced := stepCache.LoadOrStore(key, steps[:n:n]); !raced {
			return true
		}
		// A parallel world published this key between the Load and here:
		// refund the one reservation.
		stepCacheBytes.Add(-bytes)
		return false
	}
	stepCacheBytes.Add(-bytes)
	// Budget overflow: this shape will be recompiled per world from now on.
	// Count it — silent reuse degradation looks exactly like a perf
	// regression (see CacheOverflowCount; bench.sh fails loudly on it).
	cacheOverflows.Add(1)
	return false
}

// buildSched compiles a one-off schedule through the normal pool
// lifecycle.
func (c *Comm) buildSched(dt DType, op Op, build func(*collSched) error) (*collSched, error) {
	s := c.getSched()
	s.dt, s.op = dt, op
	if err := build(s); err != nil {
		s.finish()
		return nil, err
	}
	return s, nil
}

// compileCachedSched is the miss path of the replay-cache protocol shared
// by every cacheable collective start (the caller has already tried
// replaySched and owns the key's single cache slot): borrow the
// process-wide compiled steps if another world published them, else build
// and publish, retaining the schedule for this world's replays either way.
func (c *Comm) compileCachedSched(key replayKey, skey stepKey, dt DType, op Op, build func(*collSched) error) (*collSched, error) {
	if steps, ok := loadSharedSteps(skey); ok {
		s := c.getSchedLight()
		s.dt, s.op = dt, op
		s.own = s.steps[:0] // park owned capacity for the borrow's duration
		s.steps = steps
		s.shared = true
		c.retainSched(key, s)
		return s, nil
	}
	s, err := c.buildSched(dt, op, build)
	if err != nil {
		return nil, err
	}
	c.retainSched(key, s)
	if s.cached && storeSharedSteps(skey, s.steps) {
		s.shared = true
	}
	return s, nil
}

// schedStore recycles schedule objects (with their step- and price-array
// capacity) across worlds. Sweeps and benchmarks build thousands of
// short-lived worlds; without recycling, every world pays the full
// step-array allocation bill again, and the replay cache makes that bill
// per-rank. The store is an explicitly bounded freelist rather than a
// sync.Pool: a huge world triggers several GC cycles per run, and a
// sync.Pool drained that often recycles nothing between runs. The byte cap
// bounds retained memory instead; schedules beyond it are dropped to the
// GC. Only the event engine feeds the store (its teardown point sees every
// rank's pools at once).
// The store keeps two classes: light schedules own no step storage (replay
// shells whose steps are borrowed from the stepCache) and cost ~3KB of
// retained price capacity, while heavy schedules carry an owned step array
// for builders. Handing a heavy schedule to a borrow parks kilobytes of
// step capacity where they are never appended to, and handing a light one
// to a builder regrows the step array through every doubling — so each
// path asks for its own class and falls back to the other only when empty.
var schedStore schedStoreState

type schedStoreState struct {
	mu    sync.Mutex
	light []*collSched
	heavy []*collSched
	bytes int64
	// max is the retention budget; see growEventCaches.
	max int64
}

// keep scrubs s and retains it in its class, within budget. The caller
// holds st.mu.
func (st *schedStoreState) keep(s *collSched) {
	scrubSched(s)
	if fp := schedFootprint(s); st.bytes+fp <= st.max {
		st.bytes += fp
		if cap(s.steps) == 0 {
			st.light = append(st.light, s)
		} else {
			st.heavy = append(st.heavy, s)
		}
		return
	}
	// Budget overflow: the schedule is dropped to the GC and the next world
	// re-allocates it. Count it — see CacheOverflowCount.
	cacheOverflows.Add(1)
}

// schedStore.max starts sized to cover the full working set of a
// few-thousand-rank world (each rank retains a handful of schedules at
// ~1-6KB apiece) and is widened by growEventCaches for larger worlds.

// growEventCaches widens the cross-world schedule and step-list budgets to
// cover one world of the given rank count, clamped to a hard ceiling. The
// budgets are ceilings, not preallocations: memory is only retained when a
// world of that scale actually runs, and then it is exactly the working
// set the next run of the same sweep wants back. Budgets never shrink —
// a sweep mixing sizes keeps the largest world's set.
func growEventCaches(ranks int) {
	// Per rank and world: ~6 retained schedules (a replay entry per
	// collective shape plus builder spares) at ~4KB of scrubbed capacity,
	// and ~4 shared step lists at ~3KB.
	const (
		schedPerRank = 24 << 10
		stepsPerRank = 16 << 10
		hardMax      = int64(2) << 30
	)
	want := min(int64(ranks)*schedPerRank, hardMax)
	st := &schedStore
	st.mu.Lock()
	st.max = max(st.max, want)
	st.mu.Unlock()
	want = min(int64(ranks)*stepsPerRank, hardMax/2)
	for {
		cur := stepCacheMaxBytes.Load()
		if want <= cur || stepCacheMaxBytes.CompareAndSwap(cur, want) {
			break
		}
	}
}

// schedFootprint estimates the retained bytes of a scrubbed schedule.
func schedFootprint(s *collSched) int64 {
	return 192 + int64(cap(s.steps))*96 + int64(cap(s.prices))*112 +
		int64(cap(s.bufs))*24 + int64(cap(s.ints))*24
}

// getPooledSched draws a scrubbed schedule from the cross-world store,
// preferring the requested class.
func getPooledSched(light bool) *collSched {
	st := &schedStore
	st.mu.Lock()
	pref, alt := &st.light, &st.heavy
	if !light {
		pref, alt = alt, pref
	}
	list := pref
	if len(*list) == 0 {
		list = alt
	}
	n := len(*list)
	if n == 0 {
		st.mu.Unlock()
		return nil
	}
	s := (*list)[n-1]
	(*list)[n-1] = nil
	*list = (*list)[:n-1]
	st.bytes -= schedFootprint(s)
	st.mu.Unlock()
	return s
}

// harvestScheds scrubs and returns a finished rank's schedules (its
// freelist and its replay cache) to the cross-world store, one lock
// round-trip per rank.
func (p *Proc) harvestScheds() {
	if len(p.schedFree) == 0 && len(p.replay) == 0 {
		return
	}
	st := &schedStore
	st.mu.Lock()
	for _, s := range p.schedFree {
		st.keep(s)
	}
	for _, ent := range p.replay {
		st.keep(ent.s)
	}
	st.mu.Unlock()
	p.schedFree = nil
	p.replay = nil
}

// scrubSched strips a schedule of everything world-specific so it can be
// reused by any future world: buffer references, pricing, its communicator.
func scrubSched(s *collSched) {
	if s.shared {
		// Borrowed from (or published to) the stepCache: drop the reference
		// — the array must never be appended to or scrubbed — and restore
		// the owned storage parked during the borrow.
		s.steps = s.own[:0]
		s.own = nil
		s.shared = false
	} else {
		for i := range s.steps {
			s.steps[i].dst, s.steps[i].src = nil, nil
		}
		s.steps = s.steps[:0]
	}
	clear(s.bufs[:cap(s.bufs)])
	s.bufs = s.bufs[:0]
	s.ints = s.ints[:0]
	s.c = nil
	s.prices = s.prices[:0]
	s.cached, s.inUse = false, false
	s.pending, s.pendingSet = nil, false
	s.phase = 0
	s.owner = nil
	s.coll, s.faultEntered = "", false
}

// retainSched enters a freshly built schedule into the replay cache when
// its step list is self-contained (no staging buffers, no offset slices).
func (c *Comm) retainSched(key replayKey, s *collSched) {
	if len(s.bufs) != 0 || len(s.ints) != 0 {
		return
	}
	s.cached = true
	s.inUse = true
	// Stamp the invocation shape so the schedule-level fold can recover the
	// value key of a cached schedule (schedShapeKey).
	s.keyN, s.keyRoot = key.n, key.root
	posts := 0
	for i := range s.steps {
		switch s.steps[i].op {
		case opPost, opSend, opExchange:
			posts++
		}
	}
	if cap(s.prices) >= posts {
		s.prices = s.prices[:posts]
		for i := range s.prices {
			s.prices[i] = stepPrice{}
		}
	} else {
		// Round the capacity up: recycled schedules cycle between shapes
		// (barrier, allreduce, reduce) whose post counts stay under two
		// dozen even at 64Ki ranks, and a single rounded array stops the
		// churn of regrowing per shape.
		s.prices = make([]stepPrice, posts, max(posts, 24))
	}
	// The schedule was just built and is about to be driven for the first
	// time; its price cursor starts at the first post.
	s.postIdx = 0
	c.proc.replay = append(c.proc.replay, replayEntry{key: key, s: s})
}
