package mpi

import (
	"sync"
	"sync/atomic"
)

// Schedule replay for the event engine. In a timing-only world the
// benchmark collectives pass nil buffers, so the schedule an algorithm
// compiles for a given (communicator, size, root, dtype, op) is the same
// flat step list on every invocation — only the internal tag differs.
// Rebuilding it per call is pure overhead (about a fifth of the goroutine
// engine's large-world profile), so the event executor compiles each
// distinct invocation shape once and replays the cached steps afterwards:
// re-stamp the tag, rewind the cursor, drive. Replay changes no clock
// arithmetic, so virtual times stay bit-identical; schedules that own
// staging buffers or reference user memory are never cached.

// replayKey identifies one reusable compiled-schedule shape. Keying by
// collective (not by selected algorithm) is sound because selection is a
// pure function of (collective, communicator size, bytes, tuning), all
// fixed per key within one world — and it lets a replay hit skip the
// selection walk entirely.
type replayKey struct {
	ctx  int
	coll Collective
	n    int
	root int
	dt   DType
	op   Op
}

// replayable reports whether a call's schedule can be cached: nothing in
// the step list may reference caller-owned memory, which is guaranteed
// exactly when the call carries no buffers and no per-call counts.
func (call *collCall) replayable() bool {
	return call.sbuf == nil && call.rbuf == nil && call.counts == nil
}

// replayEntry is one slot of a rank's replay cache.
type replayEntry struct {
	key replayKey
	s   *collSched
}

// replaySched returns the cached schedule for key, re-armed for a new
// invocation. known reports whether an entry for the key exists at all:
// when it does but is still in flight (an overlapping nonblocking
// invocation), the caller builds a fresh one-off schedule and must NOT
// retain it — the cache holds exactly one entry per key.
func (c *Comm) replaySched(key replayKey) (s *collSched, known bool) {
	for i := range c.proc.replay {
		if c.proc.replay[i].key == key {
			s = c.proc.replay[i].s
			break
		}
	}
	if s == nil {
		return nil, false
	}
	if s.inUse {
		return nil, true
	}
	s.inUse = true
	s.tag = c.nextCollTag()
	s.pc, s.postIdx = 0, 0
	s.phase = 0
	s.pending, s.pendingSet = nil, false
	s.owner = nil
	return s, true
}

// stepKey identifies a compiled step list independently of any world: the
// selected algorithm (a stable registry pointer — it also captures the
// collective and, transitively, the tuning decision), the rank's position,
// and the invocation shape. Step lists built from nil buffers contain no
// world state at all, so identical keys compile to identical steps.
type stepKey struct {
	alg      *Algorithm
	rank     int
	commSize int
	n        int
	root     int
	dt       DType
	op       Op
}

// stepCache shares compiled step lists across worlds (sync.Map: sweeps run
// worlds in parallel). Benchmarks and sweeps rebuild the same world shape
// over and over; compiling each rank's schedule once per process instead
// of once per world takes schedule building off the steady-state profile
// entirely. Entries are immutable once stored.
var stepCache sync.Map

// stepCacheBytes bounds the cache: pathological sweeps (thousands of
// distinct shapes, or pairwise alltoall at thousands of ranks) stop
// inserting rather than grow without limit; per-world replay still works.
var stepCacheBytes atomic.Int64

const (
	stepCacheMaxSteps = 512
	stepCacheMaxBytes = 128 << 20
)

// loadSharedSteps returns the process-wide compiled step list for key.
func loadSharedSteps(key stepKey) ([]collStep, bool) {
	v, ok := stepCache.Load(key)
	if !ok {
		return nil, false
	}
	return v.([]collStep), true
}

// storeSharedSteps publishes a freshly compiled step list, within budget.
// It reports whether the caller's slice became the shared entry.
func storeSharedSteps(key stepKey, steps []collStep) bool {
	n := len(steps)
	if n > stepCacheMaxSteps {
		return false
	}
	bytes := int64(n) * int64(96) // ~unsafe.Sizeof(collStep{})
	if stepCacheBytes.Add(bytes) > stepCacheMaxBytes {
		stepCacheBytes.Add(-bytes)
		return false
	}
	if _, raced := stepCache.LoadOrStore(key, steps[:n:n]); raced {
		// A parallel world published this key first: refund the budget and
		// keep our copy private, or the accounting fills with phantom
		// bytes and sharing eventually shuts off process-wide.
		stepCacheBytes.Add(-bytes)
		return false
	}
	return true
}

// buildSched compiles a one-off schedule through the normal pool
// lifecycle.
func (c *Comm) buildSched(dt DType, op Op, build func(*collSched) error) (*collSched, error) {
	s := c.getSched()
	s.dt, s.op = dt, op
	if err := build(s); err != nil {
		s.finish()
		return nil, err
	}
	return s, nil
}

// compileCachedSched is the miss path of the replay-cache protocol shared
// by every cacheable collective start (the caller has already tried
// replaySched and owns the key's single cache slot): borrow the
// process-wide compiled steps if another world published them, else build
// and publish, retaining the schedule for this world's replays either way.
func (c *Comm) compileCachedSched(key replayKey, skey stepKey, dt DType, op Op, build func(*collSched) error) (*collSched, error) {
	if steps, ok := loadSharedSteps(skey); ok {
		s := c.getSched()
		s.dt, s.op = dt, op
		s.steps = steps
		s.shared = true
		c.retainSched(key, s)
		return s, nil
	}
	s, err := c.buildSched(dt, op, build)
	if err != nil {
		return nil, err
	}
	c.retainSched(key, s)
	if s.cached && storeSharedSteps(skey, s.steps) {
		s.shared = true
	}
	return s, nil
}

// schedPool recycles schedule objects (with their step-array capacity)
// across worlds. Sweeps and benchmarks build thousands of short-lived
// worlds; without it, every world pays the full step-array allocation bill
// again, and the replay cache makes that bill per-rank. Only the event
// engine feeds it (its teardown point sees every rank's pools at once).
var schedPool sync.Pool

// getPooledSched draws a scrubbed schedule from the cross-world pool.
func getPooledSched() *collSched {
	if v := schedPool.Get(); v != nil {
		return v.(*collSched)
	}
	return nil
}

// harvestScheds scrubs and returns a finished rank's schedules (its
// freelist and its replay cache) to the cross-world pool.
func (p *Proc) harvestScheds() {
	for _, s := range p.schedFree {
		scrubSched(s)
		schedPool.Put(s)
	}
	p.schedFree = nil
	for _, ent := range p.replay {
		scrubSched(ent.s)
		schedPool.Put(ent.s)
	}
	p.replay = nil
}

// scrubSched strips a schedule of everything world-specific so it can be
// reused by any future world: buffer references, pricing, its communicator.
func scrubSched(s *collSched) {
	if s.shared {
		// Borrowed from the stepCache: drop the reference; the array must
		// never be appended to or scrubbed.
		s.steps = nil
		s.shared = false
	} else {
		for i := range s.steps {
			s.steps[i].dst, s.steps[i].src = nil, nil
		}
		s.steps = s.steps[:0]
	}
	s.bufs = s.bufs[:0]
	s.ints = s.ints[:0]
	s.c = nil
	s.prices = s.prices[:0]
	s.cached, s.inUse = false, false
	s.pending, s.pendingSet = nil, false
	s.phase = 0
	s.owner = nil
}

// retainSched enters a freshly built schedule into the replay cache when
// its step list is self-contained (no staging buffers, no offset slices).
func (c *Comm) retainSched(key replayKey, s *collSched) {
	if len(s.bufs) != 0 || len(s.ints) != 0 {
		return
	}
	s.cached = true
	s.inUse = true
	posts := 0
	for i := range s.steps {
		switch s.steps[i].op {
		case opPost, opSend, opExchange:
			posts++
		}
	}
	if cap(s.prices) >= posts {
		s.prices = s.prices[:posts]
		for i := range s.prices {
			s.prices[i] = stepPrice{}
		}
	} else {
		s.prices = make([]stepPrice, posts)
	}
	// The schedule was just built and is about to be driven for the first
	// time; its price cursor starts at the first post.
	s.postIdx = 0
	c.proc.replay = append(c.proc.replay, replayEntry{key: key, s: s})
}
