package mpi

import (
	"fmt"
	"runtime"

	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// ErrTruncate is returned when a received message is larger than the posted
// receive buffer, mirroring MPI_ERR_TRUNCATE.
type ErrTruncate struct {
	Posted, Actual int
	Source, Tag    int
}

// Error implements the error interface.
func (e *ErrTruncate) Error() string {
	return fmt.Sprintf("mpi: message truncated: posted %d bytes, received %d (source %d, tag %d)",
		e.Posted, e.Actual, e.Source, e.Tag)
}

// ctlCarryMax is the largest payload still carried in timing-only worlds.
const ctlCarryMax = 64 * 1024

// Status describes a completed receive, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	Count  int // bytes received
}

// rendezvous carries the RTS state of a large message. The payload is
// staged at post time; the receiver computes the transfer completion instant
// (it knows both ready times and the wire cost) and reports it back on done,
// so neither side ever waits on the other's *next* operation -- which is
// what keeps symmetric exchanges (Sendrecv, recursive doubling) live.
// Handshakes (and their channels) are recycled through the sending rank's
// freelist; a nil *rendezvous is the completed-at-post eager send handle.
//
// Under the event engine the completion report skips the channel: the
// receiver writes (val, ready) directly and wakes the owning rank through
// the event loop — everything is single-threaded there, and the channel
// round trip is measurable on the rendezvous fast path.
type rendezvous struct {
	senderReady vtime.Micros      // sender clock when the RTS was posted
	payload     []byte            // staged payload (nil in timing-only worlds)
	done        chan vtime.Micros // receiver -> sender: transfer completion
	owner       *Proc             // the sending rank
	val         vtime.Micros      // event engine: completion instant
	ready       bool              // event engine: val is set
}

// tryDone non-blockingly polls the transfer's completion report.
func (r *rendezvous) tryDone() (vtime.Micros, bool) {
	if r.owner.ev != nil {
		if !r.ready {
			return 0, false
		}
		r.ready = false
		return r.val, true
	}
	select {
	case d := <-r.done:
		return d, true
	default:
		return 0, false
	}
}

// postSend injects a message toward communicator rank dst and returns a
// handle that must be passed to completeSend (nil for eager sends, which
// complete at post time). The payload is staged into the destination
// mailbox's buffer pool at post time (or only sized, in timing-only
// worlds), so the caller may reuse data immediately.
func (c *Comm) postSend(dst, tag int, data []byte, size int) *rendezvous {
	gdst := c.group[dst]
	link, cost := c.proc.priceTo(gdst, size)
	return c.postSendPriced(gdst, tag, data, size, link, cost)
}

// postSendPriced is postSend with the destination already resolved to a
// world rank and the message already priced — the replayed-schedule fast
// path, whose steps cache both (the price of a fixed (link, size) pair is
// a constant of the world).
func (c *Comm) postSendPriced(gdst, tag int, data []byte, size int, link topology.LinkClass, cost *netmodel.PtPtCost) *rendezvous {
	p := c.proc
	w := p.world
	if p.pyMode() {
		internal := tag > MaxUserTag
		p.clock.Advance(w.cfg.Model.PyOpLock(link, size, internal, p.fullSub()))
	}
	p.clock.Advance(cost.SendOverhead)

	// Link jitter stretches this message's wire time by a seeded factor on
	// [1, 1+Jitter). The draw is keyed on the rank's message counter, which
	// advances identically on both engines, and the cached cost struct is
	// never mutated (it is shared across invocations).
	wire := cost.Wire
	if f := w.faults; f != nil && f.Jitter > 0 {
		p.msgSeq++
		u := faults.Uniform(f.Seed, uint64(p.rank), jitterStream+p.msgSeq)
		wire += vtime.Micros(float64(cost.Wire) * f.Jitter * u)
	}

	// Payloads move whenever the caller supplied a buffer, except that
	// timing-only worlds (CarryData false) drop payloads above ctlCarryMax
	// so huge-scale experiments never materialise terabytes. Control-plane
	// traffic (Split, Dup) stays below the limit and therefore always works.
	carried := data
	if data != nil && !(w.cfg.CarryData || size <= ctlCarryMax) {
		carried = nil
	}
	if w.cfg.Trace != nil {
		w.cfg.Trace.record(Event{
			Kind: EventSend, Rank: p.rank, Peer: gdst, Tag: tag, Bytes: size,
			Link: link, Time: p.clock.Now(), Eager: cost.Eager,
		})
	}
	if cost.Eager {
		// Injection waits for the wire to this peer to free; the message
		// then occupies it for its transmit time.
		start := vtime.Max(p.clock.Now(), p.linkBusyUntil(gdst))
		p.holdLink(gdst, start+cost.Transmit)
		if l := p.evLoop(); l != nil {
			if l.deliverDirect(gdst, c.rank, p.rank, tag, c.ctx, size,
				carried, start+wire, 0, cost.RecvOverhead, nil) {
				return nil
			}
			if l.pullForward(gdst) && l.deliverDirect(gdst, c.rank, p.rank, tag, c.ctx, size,
				carried, start+wire, 0, cost.RecvOverhead, nil) {
				return nil
			}
		}
		w.mailboxes[gdst].deliver(c.rank, tag, c.ctx, size, carried,
			start+wire, 0, cost.RecvOverhead, nil)
		return nil
	}
	rdv := p.getRendezvous()
	rdv.senderReady = p.clock.Now()
	if l := p.evLoop(); l != nil {
		if l.deliverDirect(gdst, c.rank, p.rank, tag, c.ctx, size,
			carried, 0, wire, cost.RecvOverhead, rdv) {
			return rdv
		}
		if l.pullForward(gdst) && l.deliverDirect(gdst, c.rank, p.rank, tag, c.ctx, size,
			carried, 0, wire, cost.RecvOverhead, rdv) {
			return rdv
		}
	}
	w.mailboxes[gdst].deliver(c.rank, tag, c.ctx, size, carried,
		0, wire, cost.RecvOverhead, rdv)
	return rdv
}

// evLoop returns the event loop driving this rank, nil under the
// goroutine engine.
func (p *Proc) evLoop() *eventLoop {
	if p.ev == nil {
		return nil
	}
	return p.ev.loop
}

// completeSend blocks until the rendezvous transfer finishes and advances
// the sender clock to its completion instant. It is a no-op for eager
// sends. The error is a fault-plan failure: the receiver died and the
// stall detector broke the wait (the handshake is abandoned, not
// recycled).
func (c *Comm) completeSend(rdv *rendezvous) error {
	if rdv == nil {
		return nil
	}
	var done vtime.Micros
	if c.proc.ev != nil {
		var err error
		if done, err = c.completeSendEvent(rdv); err != nil {
			return err
		}
	} else if wd := c.proc.world.wd; wd != nil {
		select {
		case done = <-rdv.done:
		default:
			runtime.Gosched()
			wd.enterRdv(c.proc.rank, rdv)
			select {
			case done = <-rdv.done:
				wd.exit(c.proc.rank)
			case <-wd.failedCh:
				// The stall verification saw this handshake unreported while
				// every rank was parked, so the report can never arrive: the
				// two channels are never both ready.
				wd.exit(c.proc.rank)
				return c.proc.parkFailure()
			case <-c.proc.world.cancelChan:
				// The run was canceled; the handshake is abandoned like a
				// failed one (rdv.done is buffered, so a late report never
				// blocks the receiver).
				wd.exit(c.proc.rank)
				return c.proc.parkFailure()
			}
		}
	} else {
		select {
		case done = <-rdv.done:
		default:
			// The receiver has not reported yet; hand it the CPU once before
			// parking on the channel (see mailbox.match). A nil cancelChan
			// (unarmed world) never fires, leaving this the plain blocking
			// receive it always was.
			runtime.Gosched()
			select {
			case done = <-rdv.done:
			case <-c.proc.world.cancelChan:
				return c.proc.parkFailure()
			}
		}
	}
	c.proc.clock.AdvanceTo(done)
	// The receiver has read payload and senderReady before reporting done,
	// so the handshake can be reused for the next large message.
	c.proc.putRendezvous(rdv)
	return nil
}

// recvBytes implements blocking receive on a communicator. src is a
// communicator rank or AnySource. It returns the message's communicator-rank
// source, tag and byte count.
func (c *Comm) recvBytes(src, tag int, buf []byte, max int) (Status, error) {
	p := c.proc
	mb := p.world.mailboxes[p.rank]
	// The previously consumed envelope rides along and is recycled (with
	// its payload buffer) under the lock match takes anyway.
	spent := p.spent
	p.spent = nil
	e := mb.match(p, src, tag, c.ctx, spent)
	if e == nil {
		// The stall detector broke the wait: a rank this receive depended
		// on is dead.
		return Status{}, p.parkFailure()
	}
	return c.finishRecv(e, buf, max)
}

// tryRecvBytes is the non-blocking form of recvBytes: when no matching
// message is pending it reports false without consuming anything or
// touching the clock, so the caller can retry later.
func (c *Comm) tryRecvBytes(src, tag int, buf []byte, max int) (Status, bool, error) {
	p := c.proc
	mb := p.world.mailboxes[p.rank]
	spent := p.spent
	p.spent = nil
	e := mb.tryMatch(src, tag, c.ctx, spent)
	if e == nil {
		return Status{}, false, nil
	}
	st, err := c.finishRecv(e, buf, max)
	return st, true, err
}

// finishRecv consumes a matched envelope: it advances the receiver clock to
// the transfer's completion, reports rendezvous completion back to the
// sender, copies the payload out and recycles the envelope.
func (c *Comm) finishRecv(e *envelope, buf []byte, max int) (Status, error) {
	p := c.proc
	w := p.world
	// The receive-side costs were priced by the sender (the model is
	// symmetric in the endpoints) and ride on the envelope.
	var payload []byte
	if e.rdv == nil {
		p.clock.AdvanceTo(e.arrival)
		payload = e.data
	} else {
		// The transfer starts when both sides are ready and occupies the
		// wire for the modelled duration; the receiver reports completion
		// back so the blocking sender can advance its clock too.
		done := vtime.Max(e.rdv.senderReady, p.clock.Now()) + e.wire
		p.clock.AdvanceTo(done)
		payload = e.rdv.payload
		if o := e.rdv.owner; o.ev != nil {
			if !o.ev.loop.drainDirect(o, e.rdv, done) {
				e.rdv.val, e.rdv.ready = done, true
				o.ev.loop.wakeRdv(o)
			}
		} else {
			e.rdv.done <- done
		}
	}
	p.clock.Advance(e.recvOver)
	if w.cfg.Trace != nil {
		gsrc := c.group[e.src]
		w.cfg.Trace.record(Event{
			Kind: EventRecv, Rank: p.rank, Peer: gsrc, Tag: e.tag, Bytes: e.size,
			Link: p.linkTo(gsrc), Time: p.clock.Now(), Eager: e.rdv == nil,
		})
	}

	st := Status{Source: e.src, Tag: e.tag, Count: e.size}
	var err error
	n := e.size
	if e.size > max {
		n, st.Count = max, max
		err = &ErrTruncate{Posted: max, Actual: e.size, Source: e.src, Tag: e.tag}
	}
	if payload != nil && buf != nil {
		copy(buf[:n], payload[:n])
	}
	// Stash the consumed envelope (carrying the payload regardless of
	// protocol) for recycling on this rank's next receive.
	e.data, e.rdv = payload, nil
	p.spent = e
	return st, err
}

// Send performs a blocking standard-mode send of buf to communicator rank
// dst with the given tag.
func (c *Comm) Send(buf []byte, dst, tag int) error {
	if err := c.checkRank(dst, "Send dst"); err != nil {
		return err
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	return c.completeSend(c.postSend(dst, tag, buf, len(buf)))
}

// Recv performs a blocking receive into buf from communicator rank src
// (or AnySource) with the given tag (or AnyTag).
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	if src != AnySource {
		if err := c.checkRank(src, "Recv src"); err != nil {
			return Status{}, err
		}
	}
	if tag != AnyTag {
		if err := checkTag(tag); err != nil {
			return Status{}, err
		}
	}
	return c.recvBytes(src, tag, buf, len(buf))
}

// SendN is Send with an explicit byte count; buf may be nil in timing-only
// worlds (the message then carries only its size).
func (c *Comm) SendN(buf []byte, n, dst, tag int) error {
	if err := c.checkRank(dst, "Send dst"); err != nil {
		return err
	}
	if err := checkTag(tag); err != nil {
		return err
	}
	return c.completeSend(c.postSend(dst, tag, buf, n))
}

// RecvN is Recv with an explicit maximum byte count; buf may be nil in
// timing-only worlds.
func (c *Comm) RecvN(buf []byte, n, src, tag int) (Status, error) {
	if src != AnySource {
		if err := c.checkRank(src, "Recv src"); err != nil {
			return Status{}, err
		}
	}
	if tag != AnyTag {
		if err := checkTag(tag); err != nil {
			return Status{}, err
		}
	}
	return c.recvBytes(src, tag, buf, n)
}

// Probe blocks until a message matching (src, tag) is available and returns
// its status without consuming it, like MPI_Probe. The rank clock advances
// to the message's availability instant.
func (c *Comm) Probe(src, tag int) (Status, error) {
	if src != AnySource {
		if err := c.checkRank(src, "Probe src"); err != nil {
			return Status{}, err
		}
	}
	if tag != AnyTag {
		if err := checkTag(tag); err != nil {
			return Status{}, err
		}
	}
	p := c.proc
	e := p.world.mailboxes[p.rank].peek(p, src, tag, c.ctx)
	if e == nil {
		return Status{}, p.parkFailure()
	}
	if e.rdv == nil {
		p.clock.AdvanceTo(e.arrival)
	} else {
		p.clock.AdvanceTo(e.rdv.senderReady)
	}
	return Status{Source: e.src, Tag: e.tag, Count: e.size}, nil
}

// Sendrecv sends sbuf to dst and receives into rbuf from src without
// deadlock: the send is posted first (RTS for rendezvous), the receive is
// satisfied, and only then does the call wait for the send to drain -- so
// two ranks exchanging large messages both make progress.
func (c *Comm) Sendrecv(sbuf []byte, dst, stag int, rbuf []byte, src, rtag int) (Status, error) {
	if err := c.checkRank(dst, "Sendrecv dst"); err != nil {
		return Status{}, err
	}
	if src != AnySource {
		if err := c.checkRank(src, "Sendrecv src"); err != nil {
			return Status{}, err
		}
	}
	if err := checkTag(stag); err != nil {
		return Status{}, err
	}
	if rtag != AnyTag {
		if err := checkTag(rtag); err != nil {
			return Status{}, err
		}
	}
	rdv := c.postSend(dst, stag, sbuf, len(sbuf))
	st, err := c.recvBytes(src, rtag, rbuf, len(rbuf))
	if serr := c.completeSend(rdv); err == nil {
		err = serr
	}
	return st, err
}

// SendrecvN is Sendrecv with explicit byte counts; buffers may be nil in
// timing-only worlds.
func (c *Comm) SendrecvN(sbuf []byte, sn, dst, stag int, rbuf []byte, rn, src, rtag int) (Status, error) {
	if err := c.checkRank(dst, "Sendrecv dst"); err != nil {
		return Status{}, err
	}
	if src != AnySource {
		if err := c.checkRank(src, "Sendrecv src"); err != nil {
			return Status{}, err
		}
	}
	if err := checkTag(stag); err != nil {
		return Status{}, err
	}
	if rtag != AnyTag {
		if err := checkTag(rtag); err != nil {
			return Status{}, err
		}
	}
	return c.sendrecvRaw(sbuf, sn, dst, stag, rbuf, rn, src, rtag)
}

// sendrecvRaw is the internal exchange used by collectives: explicit sizes,
// reserved tags, no validation.
func (c *Comm) sendrecvRaw(sbuf []byte, ssize, dst, stag int, rbuf []byte, rsize, src, rtag int) (Status, error) {
	rdv := c.postSend(dst, stag, sbuf, ssize)
	st, err := c.recvBytes(src, rtag, rbuf, rsize)
	if serr := c.completeSend(rdv); err == nil {
		err = serr
	}
	return st, err
}

func checkTag(tag int) error {
	if tag < 0 || tag > MaxUserTag {
		return fmt.Errorf("mpi: tag %d outside [0, %d]", tag, MaxUserTag)
	}
	return nil
}
