package mpi

import (
	"strings"
	"testing"

	"repro/internal/collective"
)

// The golden* functions replicate, verbatim, the inline threshold logic
// the collectives used before dispatch moved to the registry. The parity
// test below proves the registry's default policy picks exactly the same
// algorithm over a grid of communicator sizes, message sizes and tuning
// overrides, so refactoring dispatch changed no selection.

func goldenBcast(p, n int, t Tuning) string {
	if n >= t.BcastScatterRingMin && p > 2 {
		return "scatter_ring"
	}
	return "binomial"
}

func goldenAllreduce(p, n, elemSize int, t Tuning) string {
	if n >= t.AllreduceRabenseifnerMin && p >= 4 && n/elemSize >= collective.Pof2Floor(p) {
		return "rabenseifner"
	}
	return "recursive_doubling"
}

func goldenAllgather(p, n int, t Tuning) string {
	total := p * n
	switch {
	case collective.IsPof2(p) && total <= t.AllgatherRDMaxTotal:
		return "recursive_doubling"
	case total <= t.AllgatherBruckMaxTotal:
		return "bruck"
	default:
		return "ring"
	}
}

func goldenAlltoall(p, n int, t Tuning) string {
	if n <= t.AlltoallBruckMaxBlock && p > 2 {
		return "bruck"
	}
	return "pairwise"
}

func goldenReduceScatter(p int) string {
	if collective.IsPof2(p) {
		return "recursive_halving"
	}
	return "pairwise"
}

// parityTunings is the tuning grid: defaults plus every field forced low,
// negative (algorithm disabled) and huge, one at a time.
func parityTunings() []Tuning {
	big := 1 << 30
	out := []Tuning{{}}
	for _, v := range []int{-1, 1, big} {
		out = append(out,
			Tuning{BcastScatterRingMin: v},
			Tuning{AllreduceRabenseifnerMin: v},
			Tuning{AllgatherRDMaxTotal: v},
			Tuning{AllgatherBruckMaxTotal: v},
			Tuning{AlltoallBruckMaxBlock: v},
		)
	}
	return out
}

func paritySizes() []int {
	var out []int
	for k := 0; k <= 21; k++ {
		n := 1 << k
		out = append(out, n)
		if n > 1 {
			out = append(out, n-1, n+1)
		}
	}
	return out
}

func TestRegistryMatchesGoldenSelectionTable(t *testing.T) {
	commSizes := []int{2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 64, 128, 896}
	sizes := paritySizes()
	checked := 0
	for _, tu := range parityTunings() {
		pol := Policy{Tuning: tu}
		eff := tu.withDefaults()
		for _, p := range commSizes {
			for _, n := range sizes {
				pick := func(coll Collective, sel Selection) string {
					t.Helper()
					a, err := pol.Select(coll, sel)
					if err != nil {
						t.Fatalf("%s p=%d n=%d tuning=%+v: %v", coll, p, n, tu, err)
					}
					return a.Name
				}
				if got, want := pick(CollBcast, Selection{CommSize: p, Bytes: n}),
					goldenBcast(p, n, eff); got != want {
					t.Fatalf("bcast p=%d n=%d tuning=%+v: registry %s, golden %s", p, n, tu, got, want)
				}
				for _, es := range []int{1, 4, 8} {
					if n%es != 0 {
						continue
					}
					if got, want := pick(CollAllreduce, Selection{CommSize: p, Bytes: n, Elems: n / es}),
						goldenAllreduce(p, n, es, eff); got != want {
						t.Fatalf("allreduce p=%d n=%d es=%d tuning=%+v: registry %s, golden %s",
							p, n, es, tu, got, want)
					}
				}
				if got, want := pick(CollAllgather, Selection{CommSize: p, Bytes: n}),
					goldenAllgather(p, n, eff); got != want {
					t.Fatalf("allgather p=%d n=%d tuning=%+v: registry %s, golden %s", p, n, tu, got, want)
				}
				if got, want := pick(CollAlltoall, Selection{CommSize: p, Bytes: n}),
					goldenAlltoall(p, n, eff); got != want {
					t.Fatalf("alltoall p=%d n=%d tuning=%+v: registry %s, golden %s", p, n, tu, got, want)
				}
				if got, want := pick(CollReduceScatter, Selection{CommSize: p, Bytes: p * n, Elems: p * n}),
					goldenReduceScatter(p); got != want {
					t.Fatalf("reduce_scatter p=%d tuning=%+v: registry %s, golden %s", p, tu, got, want)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("parity grid is empty")
	}
}

func TestRegistryListing(t *testing.T) {
	want := map[Collective][]string{
		CollBcast:         {"scatter_ring", "binomial"},
		CollAllreduce:     {"rabenseifner", "recursive_doubling"},
		CollAllgather:     {"recursive_doubling", "bruck", "ring"},
		CollAlltoall:      {"bruck", "pairwise"},
		CollReduceScatter: {"recursive_halving", "pairwise"},
	}
	if len(Collectives()) != len(want) {
		t.Fatalf("collectives: %v", Collectives())
	}
	for coll, names := range want {
		got := AlgorithmNames(coll)
		if len(got) != len(names) {
			t.Fatalf("%s algorithms: %v, want %v", coll, got, names)
		}
		for i := range names {
			if got[i] != names[i] {
				t.Errorf("%s algorithm %d: %s, want %s", coll, i, got[i], names[i])
			}
		}
	}
	desc := DescribeRegistry()
	for _, needle := range []string{"rabenseifner", "scatter_ring", "aliases:"} {
		if !strings.Contains(desc, needle) {
			t.Errorf("DescribeRegistry misses %q", needle)
		}
	}
}

func TestCanonicalAlgorithmAliases(t *testing.T) {
	cases := []struct {
		coll Collective
		in   string
		want string
	}{
		{CollAllgather, "Ring", "ring"},
		{CollAllgather, "rd", "recursive_doubling"},
		{CollAllgather, "Recursive-Doubling", "recursive_doubling"},
		{CollAllreduce, "raben", "rabenseifner"},
		{CollBcast, "scatter-ring", "scatter_ring"},
		{CollBcast, "tree", "binomial"},
		{CollAlltoall, "pair", "pairwise"},
		{CollReduceScatter, "halving", "recursive_halving"},
	}
	for _, c := range cases {
		got, err := CanonicalAlgorithm(c.coll, c.in)
		if err != nil {
			t.Errorf("%s %q: %v", c.coll, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s %q resolved to %q, want %q", c.coll, c.in, got, c.want)
		}
	}
	if _, err := CanonicalAlgorithm(CollBcast, "ring"); err == nil {
		t.Error("bcast has no ring algorithm; lookup should fail")
	}
	if _, err := ParseCollective("reduce-scatter"); err != nil {
		t.Errorf("reduce-scatter alias: %v", err)
	}
	if _, err := ParseCollective("gather"); err == nil {
		t.Error("gather has no selectable algorithms; parse should fail")
	}
}

func TestPolicyForcedOverride(t *testing.T) {
	// Forced names bypass the thresholds entirely (MV2_*_ALGORITHM).
	pol := Policy{Forced: map[Collective]string{CollAllgather: "ring"}}
	a, err := pol.Select(CollAllgather, Selection{CommSize: 4, Bytes: 1})
	if err != nil || a.Name != "ring" {
		t.Fatalf("forced ring: got %v, %v", a, err)
	}
	// Aliases resolve in forced entries too.
	pol = Policy{Forced: map[Collective]string{CollAllgather: "rd"}}
	if a, err = pol.Select(CollAllgather, Selection{CommSize: 8, Bytes: 1 << 20}); err != nil || a.Name != "recursive_doubling" {
		t.Fatalf("forced rd: got %v, %v", a, err)
	}
	// Forcing an infeasible algorithm is an error, not a silent fallback.
	if _, err = pol.Select(CollAllgather, Selection{CommSize: 6, Bytes: 8}); err == nil {
		t.Fatal("recursive doubling on 6 ranks must be rejected")
	}
	if _, err = (Policy{Forced: map[Collective]string{CollBcast: "nope"}}).Select(
		CollBcast, Selection{CommSize: 4, Bytes: 8}); err == nil {
		t.Fatal("unknown forced algorithm must be rejected")
	}
}

// TestWorldForcedAlgorithm proves a Config.Algorithms override reaches the
// wire: ring allgather sends p*(p-1) messages where the default recursive
// doubling sends p*log2(p).
func TestWorldForcedAlgorithm(t *testing.T) {
	const p, n = 8, 64
	run := func(forced map[Collective]string) (int, [][]byte) {
		place, err := topologyPlacement(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrace()
		w, err := NewWorld(Config{
			Placement: place, Model: fronteraModelForTest(),
			CarryData: true, Trace: tr, Algorithms: forced,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs := make([][]byte, p)
		err = w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			rbuf := make([]byte, p*n)
			if err := c.Allgather(pattern(pr.Rank(), n), rbuf); err != nil {
				return err
			}
			outs[pr.Rank()] = rbuf
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Summarize().Messages, outs
	}
	defMsgs, defOut := run(nil)
	ringMsgs, ringOut := run(map[Collective]string{CollAllgather: "ring"})
	if defMsgs != p*3 {
		t.Errorf("default allgather sent %d msgs, want %d", defMsgs, p*3)
	}
	if ringMsgs != p*(p-1) {
		t.Errorf("forced ring sent %d msgs, want %d", ringMsgs, p*(p-1))
	}
	for r := 0; r < p; r++ {
		if string(defOut[r]) != string(ringOut[r]) {
			t.Fatalf("rank %d: forced ring changed the result", r)
		}
	}
}

func TestNewWorldRejectsUnknownAlgorithm(t *testing.T) {
	place, err := topologyPlacement(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewWorld(Config{
		Placement: place, Model: fronteraModelForTest(), CarryData: true,
		Algorithms: map[Collective]string{CollAllgather: "warp_drive"},
	})
	if err == nil || !strings.Contains(err.Error(), "warp_drive") {
		t.Fatalf("unknown algorithm must fail NewWorld, got %v", err)
	}
}

// TestForcedInfeasibleSurfacesAtCall: an infeasible forced algorithm fails
// the collective call with a clear error rather than hanging or corrupting.
func TestForcedInfeasibleSurfacesAtCall(t *testing.T) {
	const p = 6 // not a power of two
	place, err := topologyPlacement(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement: place, Model: fronteraModelForTest(), CarryData: true,
		Algorithms: map[Collective]string{CollAllgather: "recursive_doubling"},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		return c.AllgatherN(nil, 8, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("infeasible forced algorithm: got %v", err)
	}
}
