// Package mpi implements a complete MPI-like message-passing runtime in Go
// with deterministic virtual timing. Ranks are goroutines; payload bytes
// really move through per-rank mailboxes with tag matching; blocking
// semantics (eager vs rendezvous) follow the protocol selected by the
// network model; and every operation advances the rank's virtual clock so
// the micro-benchmarks built on top report reproducible latencies.
//
// The package provides communicators, blocking point-to-point operations,
// and the blocking collectives of the paper's Table II (plus their vector
// variants), with algorithm selection that mirrors MVAPICH2's tuning:
// binomial trees, recursive doubling/halving, Rabenseifner's allreduce,
// Bruck and pairwise alltoall, and ring allgather.
package mpi

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/netmodel"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Wildcards and limits.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
	// MaxUserTag is the largest tag available to applications; higher tags
	// are reserved for internal collective traffic.
	MaxUserTag = 1<<20 - 1
)

// Config describes a world to be created.
type Config struct {
	// Placement maps ranks onto a cluster (required).
	Placement *topology.Placement
	// Model prices every event (required).
	Model *netmodel.Model
	// Engine selects the execution substrate (see Engine). The zero value
	// is EngineGoroutine; EngineEvent requires a timing-only world
	// (CarryData false).
	Engine Engine
	// PyMode applies the Python-binding penalty model (THREAD_MULTIPLE
	// locking and shared-memory degradation) to every operation; it is set
	// by the mpi4py layer and off for the C (OMB) baseline.
	PyMode bool
	// CarryData disables payload movement when false: messages carry only
	// sizes and timing, which lets the huge-scale experiments (896 ranks x
	// megabyte buffers) run without allocating terabytes. Correctness tests
	// always run with CarryData true.
	CarryData bool
	// Trace, when non-nil, records every message endpoint with virtual
	// timestamps for message-complexity analysis.
	Trace *Trace
	// Tuning overrides collective algorithm-selection thresholds; zero
	// fields keep the shipped defaults.
	Tuning Tuning
	// Algorithms forces a named algorithm per collective, bypassing the
	// threshold policy the way MVAPICH2's MV2_*_ALGORITHM environment
	// knobs do. Values may use registered aliases ("rd", "raben", ...);
	// unknown names fail NewWorld. Missing or empty entries keep the
	// Tuning-driven selection.
	Algorithms map[Collective]string
	// DisableFold turns off the event engine's symmetry folding (fold.go),
	// forcing per-rank simulation of every collective. A debugging escape
	// hatch: folding is bit-identical to per-rank execution, so the only
	// observable difference is speed.
	DisableFold bool
	// DisableSchedFold turns off schedule folding (schedfold.go): eligible
	// collectives then compile/replay per-rank schedules first and the
	// symmetry fold gathers on the schedule objects afterwards (the PR 6
	// pipeline). Like DisableFold, a debugging escape hatch — schedule
	// folding is bit-identical to per-rank execution. Implied by
	// DisableFold.
	DisableSchedFold bool
	// Faults installs a deterministic fault-injection plan (rank kills,
	// OS-noise stragglers, link jitter; see internal/faults). nil simulates
	// a perfect machine at zero cost on the hot path. A plan with kills
	// arms the failure semantics of fault.go: killed ranks stop with
	// RankKilledError, surviving ranks' blocked operations complete with
	// RankFailedError instead of deadlocking.
	Faults *faults.Plan
}

// World is a set of ranks sharing mailboxes and a cost model.
type World struct {
	cfg       Config
	size      int
	fullSub   bool
	policy    Policy
	mailboxes []*mailbox
	// mbSlab is the backing array of mailboxes, kept so Release can return
	// it to the cross-world slab pool (slabpool.go).
	mbSlab []mailbox
	// worldGroup is the identity rank mapping shared by every rank's
	// CommWorld communicator; it is never mutated after NewWorld.
	worldGroup []int

	// Link classification is a pure function of the placement, so it is
	// tabulated once here and shared by every rank (the per-rank caches of
	// earlier engines cost O(size^2) aggregate memory). Small worlds get the
	// direct size*size table; large worlds index through placement domains
	// (node x socket), of which there are only nodes*sockets.
	linkTab  []topology.LinkClass // size*size, nil for large worlds
	dom      []int32              // rank -> placement domain
	domLink  []topology.LinkClass // domCount*domCount
	domCount int

	ctxMu   sync.Mutex
	nextCtx int

	// Symmetry-folding state (event engine only, single-threaded; fold.go
	// and schedfold.go). foldShapes caches the analyzed shape of a
	// collective invocation keyed by its value shape (collective, bytes,
	// root, dtype, op); foldNo records shapes proven unfoldable so later
	// invocations skip the gather entirely. Value keys survive Run
	// teardowns: shapes outlive any schedule object.
	foldShapes     map[shapeKey]*foldShape
	foldNo         map[shapeKey]struct{}
	foldStats      FoldStats
	schedFoldStats SchedFoldStats
	foldOff        bool
	schedFoldOff   bool
	// schedFoldOK pre-ands every per-world schedule-fold precondition
	// (fold knobs, fault plan, trace, size bounds) so the per-invocation
	// eligibility check on the collective hot path is one load.
	schedFoldOK bool
	foldScratch foldScratch
	// linkSig fingerprints the placement's link tables so analyzed shapes
	// can be shared across worlds with identical placements (schedfold.go's
	// process-wide structure cache; hits verify the tables exactly).
	linkSig uint64

	// Fault-injection state (fault.go). faults aliases cfg.Faults for the
	// hot-path nil check; dead lists ranks killed by the plan this Run;
	// failedFlag latches once a stall has been declared so abandoned
	// handshakes stop blocking; wd is the goroutine engine's stall
	// detector, non-nil only while a killing plan Runs.
	faults     *faults.Plan
	deadMu     sync.Mutex
	dead       []int
	failedFlag atomic.Bool
	wd         *watchdog

	// Cancellation state (cancel.go). cancelOn is set only for the duration
	// of a RunContext with a cancellable context, so an unarmed world pays a
	// single boolean load per checkpoint; cancelFlag latches when the
	// context fires, cancelCause carries context.Cause (written before the
	// flag's release store), and cancelChan is closed on cancel to unpark
	// the goroutine engine's rendezvous waiters.
	cancelOn    bool
	cancelFlag  atomic.Bool
	cancelCause error
	cancelChan  chan struct{}
}

// linkTabMaxRanks bounds the worlds that get the direct size*size link
// table; larger worlds use the domain-indexed table instead.
const linkTabMaxRanks = 256

// buildLinkTables tabulates the placement's link classification.
func (w *World) buildLinkTables() {
	place := w.cfg.Placement
	sockets := place.Cluster().SocketsPerNode
	w.dom = make([]int32, w.size)
	nodes := 0
	for r := 0; r < w.size; r++ {
		node := place.Node(r)
		if node+1 > nodes {
			nodes = node + 1
		}
		w.dom[r] = int32(node*sockets + place.Socket(r))
	}
	w.domCount = nodes * sockets
	w.domLink = make([]topology.LinkClass, w.domCount*w.domCount)
	for a := 0; a < w.domCount; a++ {
		for b := 0; b < w.domCount; b++ {
			sameNode := a/sockets == b/sockets
			var l topology.LinkClass
			switch {
			case place.UsesGPU() && sameNode:
				l = topology.LinkGPUSameNode
			case place.UsesGPU():
				l = topology.LinkGPUInterNode
			case !sameNode:
				l = topology.LinkInterNode
			case a == b:
				l = topology.LinkSameSocket
			default:
				l = topology.LinkSameNode
			}
			w.domLink[a*w.domCount+b] = l
		}
	}
	h := uint64(foldFNV)
	h = foldMix(h, uint64(w.size))
	h = foldMix(h, uint64(w.domCount))
	for _, d := range w.dom {
		h = foldMix(h, uint64(d))
	}
	for _, lc := range w.domLink {
		h = foldMix(h, uint64(lc))
	}
	w.linkSig = h
	if w.size <= linkTabMaxRanks {
		w.linkTab = make([]topology.LinkClass, w.size*w.size)
		for a := 0; a < w.size; a++ {
			for b := 0; b < w.size; b++ {
				if a == b {
					w.linkTab[a*w.size+b] = topology.LinkSelf
					continue
				}
				w.linkTab[a*w.size+b] = w.domLink[int(w.dom[a])*w.domCount+int(w.dom[b])]
			}
		}
	}
}

// link classifies the path between two world ranks through the shared
// tables; it agrees with Placement.Link everywhere.
func (w *World) link(a, b int) topology.LinkClass {
	if w.linkTab != nil {
		return w.linkTab[a*w.size+b]
	}
	if a == b {
		return topology.LinkSelf
	}
	return w.domLink[int(w.dom[a])*w.domCount+int(w.dom[b])]
}

// NewWorld validates cfg and builds a world.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Placement == nil {
		return nil, fmt.Errorf("mpi: Config.Placement is required")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("mpi: Config.Model is required")
	}
	if cfg.Model.Cluster != cfg.Placement.Cluster() {
		return nil, fmt.Errorf("mpi: model calibrated for %s but placement is on %s",
			cfg.Model.Cluster.Name, cfg.Placement.Cluster().Name)
	}
	var forced map[Collective]string
	for coll, name := range cfg.Algorithms {
		if name == "" {
			continue
		}
		canon, err := CanonicalAlgorithm(coll, name)
		if err != nil {
			return nil, err
		}
		if forced == nil {
			forced = make(map[Collective]string)
		}
		forced[coll] = canon
	}
	if cfg.Engine == EngineEvent && cfg.CarryData {
		return nil, fmt.Errorf("mpi: Config.Engine %q requires a timing-only world: payload "+
			"movement through the event executor is not yet pinned by the data-carrying "+
			"correctness suite (an open ROADMAP.md item); set CarryData false, or use "+
			"Engine %q for data-carrying runs", cfg.Engine, EngineGoroutine)
	}
	size := cfg.Placement.Size()
	if cfg.Faults != nil {
		for _, k := range cfg.Faults.Kills {
			if k.Rank < 0 || k.Rank >= size {
				return nil, fmt.Errorf("mpi: fault plan kills rank %d but the world has ranks 0..%d",
					k.Rank, size-1)
			}
		}
	}
	w := &World{
		cfg: cfg, size: size, fullSub: cfg.Placement.FullySubscribed(),
		policy:       Policy{Tuning: cfg.Tuning.withDefaults(), Forced: forced, defaulted: true},
		nextCtx:      1,
		foldOff:      cfg.DisableFold,
		schedFoldOff: cfg.DisableFold || cfg.DisableSchedFold,
		faults:       cfg.Faults,
	}
	w.schedFoldOK = !w.foldOff && !w.schedFoldOff && w.faults == nil &&
		size >= 2 && size <= foldMaxRanks && cfg.Trace == nil
	w.buildLinkTables()
	w.mailboxes = make([]*mailbox, size)
	// One slab, not 2*size allocations — drawn from the cross-world pool
	// (slabpool.go) so a benchmark sweep's per-iteration worlds reuse one
	// allocation; Release returns it.
	mbs := takeMailboxSlab(size)
	w.mbSlab = mbs
	for i := range w.mailboxes {
		mb := &mbs[i]
		mb.size = size
		mb.cond.L = &mb.mu
		w.mailboxes[i] = mb
	}
	w.worldGroup = make([]int, size)
	for i := range w.worldGroup {
		w.worldGroup[i] = i
	}
	return w, nil
}

// Release returns the world's slab memory to the cross-world pools so the
// next same-sized world reuses it instead of re-allocating ~O(ranks)
// memory. The world must not be used again afterwards — call it when the
// world is done for good (core.Run does, once per sweep). Safe on an
// errored or faulted world: recycled slabs are cleared before reuse, and
// no Run-scoped pointer into the mailbox slab survives runEvent's
// teardown. Idempotent.
func (w *World) Release() {
	mbs := w.mbSlab
	w.mbSlab, w.mailboxes = nil, nil
	if mbs != nil {
		putMailboxSlab(mbs)
	}
}

// Size returns the number of ranks in the world.
func (w *World) Size() int { return w.size }

// Placement returns the hardware placement of the world's ranks.
func (w *World) Placement() *topology.Placement { return w.cfg.Placement }

// Model returns the world's cost model.
func (w *World) Model() *netmodel.Model { return w.cfg.Model }

// PyMode reports whether the Python-binding penalty model is active.
func (w *World) PyMode() bool { return w.cfg.PyMode }

// Policy returns the world's effective algorithm-selection policy.
func (w *World) Policy() Policy { return w.policy }

// allocCtx reserves a contiguous block of n communicator context ids.
func (w *World) allocCtx(n int) int {
	w.ctxMu.Lock()
	defer w.ctxMu.Unlock()
	base := w.nextCtx
	w.nextCtx += n
	return base
}

// RankError wraps an error raised by a specific rank.
type RankError struct {
	Rank int
	Err  error
}

// Error implements the error interface.
func (e *RankError) Error() string { return fmt.Sprintf("mpi: rank %d: %v", e.Rank, e.Err) }

// Unwrap exposes the underlying error.
func (e *RankError) Unwrap() error { return e.Err }

// Run executes body once per rank on the world's configured engine and
// waits for all ranks. The first error (by rank order) is returned; a
// panicking rank is converted into an error carrying its stack.
//
// Under EngineGoroutine every rank is a goroutine; under EngineEvent the
// whole world runs as a discrete-event simulation on the calling goroutine
// (see event.go), with bit-identical virtual-time results.
func (w *World) Run(body func(p *Proc) error) error {
	if w.cfg.Engine == EngineEvent {
		return w.runEvent(body)
	}
	if w.faults != nil {
		w.resetFaultRun()
		if w.faults.HasKills() {
			w.wd = newWatchdog(w)
		}
	}
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			if wd := w.wd; wd != nil {
				defer wd.rankDone(rank)
			}
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("panic: %v\n%s", rec, debug.Stack())
				}
			}()
			p := &Proc{world: w, rank: rank}
			errs[rank] = body(p)
		}(r)
	}
	wg.Wait()
	if w.wd != nil {
		w.wd.shutdown()
		w.wd = nil
	}
	for r, err := range errs {
		if err != nil {
			return &RankError{Rank: r, Err: err}
		}
	}
	return nil
}

// Proc is the per-rank handle: it owns the rank's virtual clock and is only
// ever used from that rank's goroutine (or, under the event engine, from
// the one goroutine running the whole world).
type Proc struct {
	// Field order is deliberate up to comm0v: a fold resolution walks every
	// rank of a huge world twice (token scan, then clock fanout; fold.go),
	// and each walk's working set — clock, foldLB, lbDirty, mbPend, and
	// comm0v.collSeq (first field of Comm) — lands in the Proc's first
	// cache line instead of three lines scattered over a ~3KB struct.
	world *World
	rank  int
	clock vtime.Clock
	// foldLB is the rank's symbolic link-busy state left behind by a folded
	// collective: one shared-per-class object holding (peer delta, busy
	// until) pairs instead of materialized per-destination entries. Any
	// non-fold touch of the link-busy state materializes it first (fold.go).
	// lbDirty marks that the rank holds materialized link-busy entries a
	// fold resolver cannot describe symbolically; both reset with ResetClock.
	foldLB  *foldLB
	lbDirty bool
	// mbPend mirrors this rank's mailbox npend counter while an event-engine
	// run owns the mailbox (mailbox.go maintains it alongside npend whenever
	// owner is set). The fold eligibility checks read it from the Proc line
	// they already touch instead of paying a cold mailbox line per rank.
	mbPend int32
	// comm0 is the rank's cached world communicator; comm0v is its inline
	// storage, so CommWorld never allocates.
	comm0  *Comm
	comm0v Comm
	// ev is the rank's event-engine state; nil under the goroutine engine.
	// Every blocking primitive branches on it: instead of parking the OS
	// thread it suspends the rank's coroutine (or hands its compiled
	// schedule to the event loop) until a message wakes it.
	ev *eventRank
	// linkBusy tracks, per destination world rank, when this rank's wire
	// to that peer frees up; back-to-back eager sends serialize on it.
	// Lazily sized to the world on the first eager send in small worlds;
	// huge worlds (where a dense vector per rank would cost O(size^2)
	// aggregate memory) use the sparse map instead — collective traffic
	// touches only O(log size) peers per rank.
	linkBusy       []vtime.Micros
	linkBusySparse map[int32]vtime.Micros
	// spent is the last consumed envelope, recycled into this rank's
	// mailbox freelist on the next receive.
	spent *envelope
	// rdvFree recycles rendezvous handshakes posted by this rank.
	rdvFree []*rendezvous
	// reqFree and schedFree recycle nonblocking Requests and compiled
	// collective schedules; activeScheds lists the rank's outstanding
	// nonblocking collectives for the Progress hook.
	reqFree      []*Request
	schedFree    []*collSched
	activeScheds []*collSched
	// replay caches compiled collective schedules for the event engine's
	// buffer-free replays (see eventsched.go). A rank holds only a handful
	// of shapes at a time, so a linearly scanned slice beats a map.
	replay []replayEntry
	// arena recycles the collectives' staging buffers.
	arena scratchArena
	// sched memoises the collectives' communication schedules.
	sched schedCache
	// costMemo caches the priced message per link class for the last size,
	// exploiting that benchmark loops price the same (link, size) pair on
	// every iteration. A pure-function cache: it cannot change a single
	// virtual-time number.
	costMemo [8]ptptMemo
	// foldPend is the invocation startColl deferred behind the
	// schedFoldPending sentinel (schedfold.go): the key the blocking drive
	// gathers on, plus everything needed to materialize a per-rank schedule
	// if the gather falls back. Valid only between startColl and the
	// immediately following driveSched/collRequest.
	foldPend foldPending
	// lbSmall* is a tiny inline store in front of the sparse map in huge
	// worlds: collective traffic touches O(log size) distinct peers per
	// rank, so the map (an allocation per insert growth) almost never
	// engages. A destination lives in the inline store or the map, never
	// both: inserts go inline until it fills, then overflow to the map, and
	// an inline-resident destination is always updated in place.
	lbSmallN   int8
	lbSmallDst [lbSmallMax]int32
	lbSmallVal [lbSmallMax]vtime.Micros
	// Fault-injection state (fault.go), untouched when no plan is
	// installed. collInvoke counts the rank's collective entries and keys
	// its noise draws; msgSeq counts posted messages and keys its jitter
	// draws; killSeen counts matching invocations per kill rule (lazily
	// sized to the plan); failure is the rank's terminal fault error —
	// once set, every blocking operation returns it.
	collInvoke int
	msgSeq     uint64
	killSeen   []int32
	failure    error
}

// lbSmallMax covers a recursive-doubling schedule at 64Ki ranks (log2 = 16
// distinct peers) without touching the overflow map.
const lbSmallMax = 16

// linkBusyDenseMax bounds the worlds whose ranks track wire business in a
// dense per-destination vector.
const linkBusyDenseMax = 2048

// linkBusyUntil returns when this rank's wire to dst frees up.
func (p *Proc) linkBusyUntil(dst int) vtime.Micros {
	if p.foldLB != nil {
		p.materializeFoldLB()
	}
	if p.linkBusy != nil {
		return p.linkBusy[dst]
	}
	for i := 0; i < int(p.lbSmallN); i++ {
		if p.lbSmallDst[i] == int32(dst) {
			return p.lbSmallVal[i]
		}
	}
	return p.linkBusySparse[int32(dst)]
}

// holdLink marks this rank's wire to dst busy until t.
func (p *Proc) holdLink(dst int, t vtime.Micros) {
	if p.foldLB != nil {
		p.materializeFoldLB()
	}
	p.lbDirty = true
	p.lbStore(dst, t)
}

// lbStore is the raw link-busy write shared by holdLink and the symbolic
// state materialization.
func (p *Proc) lbStore(dst int, t vtime.Micros) {
	if p.world.size <= linkBusyDenseMax {
		if p.linkBusy == nil {
			p.linkBusy = make([]vtime.Micros, p.world.size)
		}
		p.linkBusy[dst] = t
		return
	}
	for i := 0; i < int(p.lbSmallN); i++ {
		if p.lbSmallDst[i] == int32(dst) {
			p.lbSmallVal[i] = t
			return
		}
	}
	if _, inMap := p.linkBusySparse[int32(dst)]; !inMap && int(p.lbSmallN) < lbSmallMax {
		p.lbSmallDst[p.lbSmallN] = int32(dst)
		p.lbSmallVal[p.lbSmallN] = t
		p.lbSmallN++
		return
	}
	if p.linkBusySparse == nil {
		p.linkBusySparse = make(map[int32]vtime.Micros, 16)
	}
	p.linkBusySparse[int32(dst)] = t
}

// ptptMemo is one (size -> cost) slot of the per-link-class price cache.
type ptptMemo struct {
	size  int
	valid bool
	cost  netmodel.PtPtCost
}

// linkTo classifies the path from this rank to a peer through the world's
// shared link table.
func (p *Proc) linkTo(peer int) topology.LinkClass {
	return p.world.link(p.rank, peer)
}

// priceTo classifies the link to peer and prices an n-byte message on it,
// both through the per-rank caches. The returned cost is a read-only view
// into the cache slot, valid until the next priceTo call.
func (p *Proc) priceTo(peer, n int) (topology.LinkClass, *netmodel.PtPtCost) {
	link := p.linkTo(peer)
	if int(link) >= len(p.costMemo) {
		cost := p.world.cfg.Model.PtPt(link, n, p.pyMode(), p.fullSub())
		return link, &cost
	}
	m := &p.costMemo[link]
	if !m.valid || m.size != n {
		*m = ptptMemo{size: n, valid: true,
			cost: p.world.cfg.Model.PtPt(link, n, p.pyMode(), p.fullSub())}
	}
	return link, &m.cost
}

// Rank returns the world rank of this process.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.world.size }

// World returns the world this process belongs to.
func (p *Proc) World() *World { return p.world }

// Wtime returns the rank's current virtual time, the analogue of MPI_Wtime.
func (p *Proc) Wtime() vtime.Micros { return p.clock.Now() }

// AdvanceClock charges local work of duration d to the rank, modelling
// computation between communication calls.
func (p *Proc) AdvanceClock(d vtime.Micros) { p.clock.Advance(d) }

// CommWorld returns the communicator spanning all ranks (context 0). The
// communicator is cached on the rank and shares the world's immutable
// group slice, so repeated calls allocate nothing.
func (p *Proc) CommWorld() *Comm {
	if p.comm0 == nil {
		p.comm0v = Comm{proc: p, ctx: 0, group: p.world.worldGroup, rank: p.rank}
		p.comm0 = &p.comm0v
	}
	return p.comm0
}

func (p *Proc) pyMode() bool  { return p.world.cfg.PyMode }
func (p *Proc) fullSub() bool { return p.world.fullSub }

// ResetClock rewinds the rank clock to zero and frees this rank's wires
// (the per-destination link-busy state). Benchmark harnesses call this
// between message sizes (collectively, after a barrier) so every size is
// measured from an identical timing state; it must never be called while
// messages are in flight.
func (p *Proc) ResetClock() {
	p.clock.Set(0)
	clear(p.linkBusy)
	clear(p.linkBusySparse)
	p.lbSmallN = 0
	p.foldLB = nil
	p.lbDirty = false
}
