package mpi

import (
	"sync"
	"sync/atomic"

	"repro/internal/collective"
)

// schedCache memoises the communication schedules a rank replays on every
// collective invocation. Benchmark loops call the same collective with the
// same communicator shape thousands of times; the schedules (and block
// partitions) depend only on (communicator rank, size, root), so one slot
// per schedule kind turns the per-invocation allocations of
// internal/collective into cache hits. The cache lives on the Proc and is
// keyed by the communicator rank too, so sub-communicators (Split, Dup)
// stay correct. Cached slices are read-only by convention: the collectives
// only iterate them.
type schedCache struct {
	dissRank, dissP    int
	dissSend, dissRecv []int

	childRank, childRoot, childP int
	children                     []int
	childrenSet                  bool

	rdRank, rdP int
	rdPeers     []int

	halvRank, halvP int
	halving         []collective.RecursiveHalvingStep

	agRank, agP int
	allgather   []collective.RecursiveDoublingAllgatherStep

	bruckRank, bruckP int
	bruck             []collective.BruckStep

	boundsN, boundsParts, boundsAlign int
	bounds                            []int
	boundsShared                      bool
}

// dissPeers returns the cached dissemination-barrier peer lists.
func (c *Comm) dissPeers(p int) (sendTo, recvFrom []int) {
	sc := &c.proc.sched
	if sc.dissSend == nil || sc.dissRank != c.rank || sc.dissP != p {
		sc.dissSend, sc.dissRecv = collective.DisseminationPeers(c.rank, p)
		sc.dissRank, sc.dissP = c.rank, p
	}
	return sc.dissSend, sc.dissRecv
}

// binomialChildren returns the cached binomial-tree children of this rank.
func (c *Comm) binomialChildren(root, p int) []int {
	sc := &c.proc.sched
	if !sc.childrenSet || sc.childRank != c.rank || sc.childRoot != root || sc.childP != p {
		sc.children = collective.BinomialChildren(c.rank, root, p)
		sc.childRank, sc.childRoot, sc.childP, sc.childrenSet = c.rank, root, p, true
	}
	return sc.children
}

// rdPeersFor returns the cached recursive-doubling partner list.
func (c *Comm) rdPeersFor(newRank, pof2 int) []int {
	sc := &c.proc.sched
	if sc.rdPeers == nil || sc.rdRank != newRank || sc.rdP != pof2 {
		sc.rdPeers = collective.RecursiveDoublingPeers(newRank, pof2)
		sc.rdRank, sc.rdP = newRank, pof2
	}
	return sc.rdPeers
}

// halvingSchedule returns the cached recursive-halving schedule.
func (c *Comm) halvingSchedule(newRank, pof2 int) []collective.RecursiveHalvingStep {
	sc := &c.proc.sched
	if sc.halving == nil || sc.halvRank != newRank || sc.halvP != pof2 {
		sc.halving = collective.RecursiveHalvingSchedule(newRank, pof2)
		sc.halvRank, sc.halvP = newRank, pof2
	}
	return sc.halving
}

// allgatherSchedule returns the cached recursive-doubling allgather schedule.
func (c *Comm) allgatherSchedule(newRank, pof2 int) []collective.RecursiveDoublingAllgatherStep {
	sc := &c.proc.sched
	if sc.allgather == nil || sc.agRank != newRank || sc.agP != pof2 {
		sc.allgather = collective.RecursiveDoublingAllgatherSchedule(newRank, pof2)
		sc.agRank, sc.agP = newRank, pof2
	}
	return sc.allgather
}

// bruckSchedule returns the cached Bruck exchange rounds.
func (c *Comm) bruckSchedule(p int) []collective.BruckStep {
	sc := &c.proc.sched
	if sc.bruck == nil || sc.bruckRank != c.rank || sc.bruckP != p {
		sc.bruck = collective.BruckSchedule(c.rank, p)
		sc.bruckRank, sc.bruckP = c.rank, p
	}
	return sc.bruck
}

// blockBoundsKey identifies one aligned block partition: the bounds depend
// on nothing else, so one computed slice serves every rank of every world.
type blockBoundsKey struct{ n, parts, align int }

// blockBoundsCache shares computed partitions process-wide. A huge world
// computing the same 4096-block partition once per rank allocates O(size^2)
// aggregate ints per run; sharing collapses that to one slice per shape.
// Entries are immutable once stored. The byte budget uses the same
// reserve-then-publish protocol as storeSharedSteps.
var blockBoundsCache sync.Map
var blockBoundsBytes atomic.Int64

const blockBoundsMaxBytes = 16 << 20

// blockBoundsFor returns the cached aligned block partition of n bytes:
// first the rank's own slot (repeat invocations at one size), then the
// process-wide cache, falling back to the rank's arena only when the shared
// budget is exhausted. The bounds are consumed at schedule-build time only
// (their values are baked into the compiled steps). Cached slices are
// read-only by convention.
func (c *Comm) blockBoundsFor(n, parts, align int) []int {
	sc := &c.proc.sched
	if sc.bounds != nil && sc.boundsN == n && sc.boundsParts == parts && sc.boundsAlign == align {
		return sc.bounds
	}
	if !sc.boundsShared {
		c.proc.arena.putInts(sc.bounds)
	}
	sc.bounds, sc.boundsShared = c.sharedBlockBounds(n, parts, align)
	sc.boundsN, sc.boundsParts, sc.boundsAlign = n, parts, align
	return sc.bounds
}

// sharedBlockBounds resolves one partition through the process-wide cache,
// reporting whether the returned slice is shared (and must not go back to
// any arena).
func (c *Comm) sharedBlockBounds(n, parts, align int) ([]int, bool) {
	key := blockBoundsKey{n, parts, align}
	if v, ok := blockBoundsCache.Load(key); ok {
		return v.([]int), true
	}
	bytes := int64(parts+1) * 8
	if blockBoundsBytes.Add(bytes) <= blockBoundsMaxBytes {
		b := blockBoundsInto(make([]int, parts+1), n, parts, align)
		if v, raced := blockBoundsCache.LoadOrStore(key, b); raced {
			blockBoundsBytes.Add(-bytes)
			return v.([]int), true
		}
		return b, true
	}
	blockBoundsBytes.Add(-bytes)
	return blockBoundsInto(c.proc.arena.getInts(parts+1), n, parts, align), false
}
