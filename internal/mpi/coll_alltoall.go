package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// alltoallBruckMaxBlock is the per-block size below which Alltoall uses
// Bruck's log-round algorithm; larger exchanges use pairwise rounds.
const alltoallBruckMaxBlock = 1024

func init() {
	registerAlgorithm(Algorithm{
		Name:       "bruck",
		Collective: CollAlltoall,
		Summary:    "Bruck packed log-round exchange (small blocks)",
		Applicable: func(s Selection) bool {
			return s.Bytes <= s.Tuning.AlltoallBruckMaxBlock && s.CommSize > 2
		},
		run: func(c *Comm, call collCall) error {
			return c.alltoallBruck(call.sbuf, call.n, call.rbuf)
		},
	})
	registerAlgorithm(Algorithm{
		Name:       "pairwise",
		Collective: CollAlltoall,
		Summary:    "balanced pairwise exchange rounds (large blocks)",
		Applicable: func(Selection) bool { return true },
		run: func(c *Comm, call collCall) error {
			return c.alltoallPairwise(call.sbuf, call.n, call.rbuf)
		},
	})
}

// Alltoall sends the r-th block of sbuf to rank r and receives rank r's
// block into the r-th block of rbuf; len(sbuf) == len(rbuf) == p*blockLen.
func (c *Comm) Alltoall(sbuf, rbuf []byte) error {
	p := len(c.group)
	if len(sbuf)%p != 0 {
		return fmt.Errorf("mpi: Alltoall send buffer %d not divisible by %d ranks", len(sbuf), p)
	}
	return c.AlltoallN(sbuf, len(sbuf)/p, rbuf)
}

// AlltoallN is Alltoall with an explicit per-destination block size n;
// buffers may be nil in timing-only worlds.
func (c *Comm) AlltoallN(sbuf []byte, n int, rbuf []byte) error {
	p := len(c.group)
	if rbuf != nil && len(rbuf) < p*n {
		return fmt.Errorf("mpi: Alltoall recv buffer %d < %d", len(rbuf), p*n)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[c.rank*n:(c.rank+1)*n], sbuf[c.rank*n:(c.rank+1)*n])
	}
	if p == 1 {
		return nil
	}
	alg, err := c.algorithm(CollAlltoall, Selection{CommSize: p, Bytes: n})
	if err != nil {
		return fmt.Errorf("mpi: Alltoall: %w", err)
	}
	if err := alg.run(c, collCall{sbuf: sbuf, rbuf: rbuf, n: n}); err != nil {
		return fmt.Errorf("mpi: Alltoall: %w", err)
	}
	return nil
}

// alltoallPairwise runs p-1 balanced exchange rounds (XOR schedule for even
// p, shifted schedule otherwise).
func (c *Comm) alltoallPairwise(sbuf []byte, n int, rbuf []byte) error {
	p := len(c.group)
	// Even p: XOR schedule, rounds 1..p-1. Odd p: shifted schedule needs
	// rounds 0..p-1 (each rank self-pairs, i.e. idles, in exactly one).
	start, rounds := 1, p-1
	if p%2 != 0 {
		start, rounds = 0, p
	}
	for i := 0; i < rounds; i++ {
		peer := collective.PairwisePeer(c.rank, p, start+i)
		if peer == c.rank {
			continue // odd-p schedule gives each rank one idle round
		}
		sLo, sHi := peer*n, (peer+1)*n
		rLo, rHi := peer*n, (peer+1)*n
		if _, err := c.sendrecvRaw(
			sliceOrNil(sbuf, sLo, sHi), sHi-sLo, peer, tagAlltoall,
			sliceOrNil(rbuf, rLo, rHi), rHi-rLo, peer, tagAlltoall,
		); err != nil {
			return err
		}
	}
	return nil
}

// alltoallBruck implements Bruck's alltoall: a local rotation, ceil(log2 p)
// packed exchanges selected by the bits of the block index, and a final
// inverse rotation with block reversal.
func (c *Comm) alltoallBruck(sbuf []byte, n int, rbuf []byte) error {
	p := len(c.group)
	carry := sbuf != nil && rbuf != nil

	// Phase 1: local rotation. stage[i] = block for rank (rank+i)%p.
	var stage, packS, packR []byte
	if carry {
		stage = c.scratch(p * n)
		for i := 0; i < p; i++ {
			src := (c.rank + i) % p
			copy(stage[i*n:(i+1)*n], sbuf[src*n:(src+1)*n])
		}
		packS = c.scratch(p * n)
		packR = c.scratch(p * n)
		defer c.release(stage, packS, packR)
	}

	// Phase 2: for each bit, send the blocks whose index has that bit set
	// to rank+2^k, receive the same set from rank-2^k.
	idxBuf := c.scratchInts(p)
	defer c.releaseInts(idxBuf)
	for k := 1; k < p; k *= 2 {
		sendTo := (c.rank + k) % p
		recvFrom := (c.rank - k + p) % p
		idx := idxBuf[:0]
		for i := 1; i < p; i++ {
			if i&k != 0 {
				idx = append(idx, i)
			}
		}
		bytes := len(idx) * n
		if carry {
			for j, i := range idx {
				copy(packS[j*n:(j+1)*n], stage[i*n:(i+1)*n])
			}
		}
		if _, err := c.sendrecvRaw(
			sliceOrNil(packS, 0, bytes), bytes, sendTo, tagAlltoall,
			sliceOrNil(packR, 0, bytes), bytes, recvFrom, tagAlltoall,
		); err != nil {
			return err
		}
		if carry {
			for j, i := range idx {
				copy(stage[i*n:(i+1)*n], packR[j*n:(j+1)*n])
			}
		}
	}

	// Phase 3: inverse rotation with reversal: the block now at stage[i]
	// originated at rank (rank-i+p)%p and is destined for rbuf[(rank-i)%p].
	if carry {
		for i := 0; i < p; i++ {
			dst := (c.rank - i + p) % p
			copy(rbuf[dst*n:(dst+1)*n], stage[i*n:(i+1)*n])
		}
	}
	return nil
}
