package mpi

import (
	"fmt"

	"repro/internal/collective"
)

// alltoallBruckMaxBlock is the per-block size below which Alltoall uses
// Bruck's log-round algorithm; larger exchanges use pairwise rounds.
const alltoallBruckMaxBlock = 1024

func init() {
	registerAlgorithm(Algorithm{
		Name:       "bruck",
		Collective: CollAlltoall,
		Summary:    "Bruck packed log-round exchange (small blocks)",
		Applicable: func(s Selection) bool {
			return s.Bytes <= s.Tuning.AlltoallBruckMaxBlock && s.CommSize > 2
		},
		build: buildAlltoallBruck,
	})
	registerAlgorithm(Algorithm{
		Name:       "pairwise",
		Collective: CollAlltoall,
		Summary:    "balanced pairwise exchange rounds (large blocks)",
		Applicable: func(Selection) bool { return true },
		build:      buildAlltoallPairwise,
	})
}

// Alltoall sends the r-th block of sbuf to rank r and receives rank r's
// block into the r-th block of rbuf; len(sbuf) == len(rbuf) == p*blockLen.
func (c *Comm) Alltoall(sbuf, rbuf []byte) error {
	p := len(c.group)
	if len(sbuf)%p != 0 {
		return fmt.Errorf("mpi: Alltoall send buffer %d not divisible by %d ranks", len(sbuf), p)
	}
	return c.AlltoallN(sbuf, len(sbuf)/p, rbuf)
}

// AlltoallN is Alltoall with an explicit per-destination block size n;
// buffers may be nil in timing-only worlds.
func (c *Comm) AlltoallN(sbuf []byte, n int, rbuf []byte) error {
	s, err := c.alltoallStart(sbuf, n, rbuf)
	if err != nil || s == nil {
		return err
	}
	if err := c.driveSched(s); err != nil {
		return fmt.Errorf("mpi: Alltoall: %w", err)
	}
	return nil
}

// Ialltoall starts a nonblocking Alltoall.
func (c *Comm) Ialltoall(sbuf, rbuf []byte) (*Request, error) {
	p := len(c.group)
	if len(sbuf)%p != 0 {
		return nil, fmt.Errorf("mpi: Alltoall send buffer %d not divisible by %d ranks", len(sbuf), p)
	}
	return c.IalltoallN(sbuf, len(sbuf)/p, rbuf)
}

// IalltoallN is Ialltoall with an explicit per-destination block size.
func (c *Comm) IalltoallN(sbuf []byte, n int, rbuf []byte) (*Request, error) {
	s, err := c.alltoallStart(sbuf, n, rbuf)
	if err != nil {
		return nil, err
	}
	return c.collRequest(s)
}

func (c *Comm) alltoallStart(sbuf []byte, n int, rbuf []byte) (*collSched, error) {
	p := len(c.group)
	if rbuf != nil && len(rbuf) < p*n {
		return nil, fmt.Errorf("mpi: Alltoall recv buffer %d < %d", len(rbuf), p*n)
	}
	if sbuf != nil && rbuf != nil {
		copy(rbuf[c.rank*n:(c.rank+1)*n], sbuf[c.rank*n:(c.rank+1)*n])
	}
	if p == 1 {
		return nil, nil
	}
	s, err := c.startColl(CollAlltoall, Selection{CommSize: p, Bytes: n},
		collCall{sbuf: sbuf, rbuf: rbuf, n: n})
	if err != nil {
		return nil, fmt.Errorf("mpi: Alltoall: %w", err)
	}
	return s, nil
}

// buildAlltoallPairwise compiles p-1 balanced exchange rounds (XOR schedule
// for even p, shifted schedule otherwise).
func buildAlltoallPairwise(c *Comm, call collCall, s *collSched) error {
	sbuf, rbuf, n := call.sbuf, call.rbuf, call.n
	p := len(c.group)
	// Power-of-two p: XOR schedule, rounds 1..p-1, nobody idles. Any other
	// p: shifted-sum schedule over rounds 0..p-1, in which each rank
	// self-pairs (idles) in exactly one round.
	start, rounds := 1, p-1
	if !collective.IsPof2(p) {
		start, rounds = 0, p
	}
	for i := 0; i < rounds; i++ {
		peer := collective.PairwisePeer(c.rank, p, start+i)
		if peer == c.rank {
			continue // odd-p schedule gives each rank one idle round
		}
		sLo, sHi := peer*n, (peer+1)*n
		rLo, rHi := peer*n, (peer+1)*n
		s.exchange(peer, sliceOrNil(sbuf, sLo, sHi), sHi-sLo,
			peer, sliceOrNil(rbuf, rLo, rHi), rHi-rLo)
	}
	return nil
}

// buildAlltoallBruck compiles Bruck's alltoall: a local rotation,
// ceil(log2 p) packed exchanges selected by the bits of the block index,
// and a final inverse rotation with block reversal. The pack/unpack block
// moves between rounds are emitted as copy steps so they interleave with
// the exchanges exactly as the monolithic implementation did.
func buildAlltoallBruck(c *Comm, call collCall, s *collSched) error {
	sbuf, rbuf, n := call.sbuf, call.rbuf, call.n
	p := len(c.group)
	carry := sbuf != nil && rbuf != nil

	// Phase 1: local rotation. stage[i] = block for rank (rank+i)%p. The
	// rotation reads the user send buffer, so it runs at build (post) time.
	var stage, packS, packR []byte
	if carry {
		stage = s.scratch(p * n)
		for i := 0; i < p; i++ {
			src := (c.rank + i) % p
			copy(stage[i*n:(i+1)*n], sbuf[src*n:(src+1)*n])
		}
		packS = s.scratch(p * n)
		packR = s.scratch(p * n)
	}

	// Phase 2: for each bit, send the blocks whose index has that bit set
	// to rank+2^k, receive the same set from rank-2^k.
	idxBuf := c.scratchInts(p)
	defer c.releaseInts(idxBuf)
	for k := 1; k < p; k *= 2 {
		sendTo := (c.rank + k) % p
		recvFrom := (c.rank - k + p) % p
		idx := idxBuf[:0]
		for i := 1; i < p; i++ {
			if i&k != 0 {
				idx = append(idx, i)
			}
		}
		bytes := len(idx) * n
		if carry {
			for j, i := range idx {
				s.copyStep(packS[j*n:(j+1)*n], stage[i*n:(i+1)*n], n)
			}
		}
		s.exchange(sendTo, sliceOrNil(packS, 0, bytes), bytes,
			recvFrom, sliceOrNil(packR, 0, bytes), bytes)
		if carry {
			for j, i := range idx {
				s.copyStep(stage[i*n:(i+1)*n], packR[j*n:(j+1)*n], n)
			}
		}
	}

	// Phase 3: inverse rotation with reversal: the block finishing at
	// stage[i] is destined for rbuf[(rank-i)%p].
	if carry {
		for i := 0; i < p; i++ {
			dst := (c.rank - i + p) % p
			s.copyStep(rbuf[dst*n:(dst+1)*n], stage[i*n:(i+1)*n], n)
		}
	}
	return nil
}
