package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestProbeThenRecv(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(pattern(0, 48), 1, 6)
		}
		st, err := c.Probe(0, 6)
		if err != nil {
			return err
		}
		if st.Count != 48 || st.Source != 0 || st.Tag != 6 {
			return fmt.Errorf("probe status %+v", st)
		}
		// Allocate exactly and receive: the mpi4py object path's pattern.
		buf := make([]byte, st.Count)
		if _, err := c.Recv(buf, st.Source, st.Tag); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(0, 48)) {
			return errors.New("payload after probe corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeDoesNotConsume(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send([]byte{9}, 1, 1)
		}
		for i := 0; i < 3; i++ { // repeated probes see the same message
			st, err := c.Probe(0, 1)
			if err != nil {
				return err
			}
			if st.Count != 1 {
				return fmt.Errorf("probe %d count %d", i, st.Count)
			}
		}
		_, err := c.Recv(make([]byte, 1), 0, 1)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeValidation(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if _, err := c.Probe(9, 0); err == nil {
			return errors.New("probe of invalid rank should fail")
		}
		if _, err := c.Probe(0, MaxUserTag+5); err == nil {
			return errors.New("probe of reserved tag should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvNTimingOnlySizes(t *testing.T) {
	place, err := topologyPlacement(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement: place, Model: fronteraModelForTest(), CarryData: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		peer := 1 - p.Rank()
		st, err := c.SendrecvN(nil, 4096, peer, 1, nil, 4096, peer, 1)
		if err != nil {
			return err
		}
		if st.Count != 4096 {
			return fmt.Errorf("count %d", st.Count)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitThreeColorsUnevenGroups(t *testing.T) {
	w := testWorld(t, 9, 5)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		color := p.Rank() % 3
		sub, err := c.Split(color, p.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// With key = world rank, comm rank preserves world order.
		if want := p.Rank() / 3; sub.Rank() != want {
			return fmt.Errorf("world %d: sub rank %d want %d", p.Rank(), sub.Rank(), want)
		}
		// Nested collectives on every subgroup concurrently.
		buf := make([]byte, 8)
		if sub.Rank() == 0 {
			copy(buf, pattern(color, 8))
		}
		if err := sub.Bcast(buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(color, 8)) {
			return fmt.Errorf("world %d: subgroup bcast corrupted", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSingletons(t *testing.T) {
	w := testWorld(t, 4, 4)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		sub, err := c.Split(p.Rank(), 0) // every rank its own color
		if err != nil {
			return err
		}
		if sub.Size() != 1 || sub.Rank() != 0 {
			return fmt.Errorf("singleton %d/%d", sub.Rank(), sub.Size())
		}
		// Size-1 collectives must be no-ops that still work.
		buf := pattern(p.Rank(), 16)
		out := make([]byte, 16)
		if err := sub.Allreduce(buf, out, Uint8, OpMax); err != nil {
			return err
		}
		if !bytes.Equal(out, buf) {
			return errors.New("singleton allreduce is identity")
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDupIsolatesTraffic(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			// Same tag on both communicators; receivers must get the right
			// payload per context.
			if err := c.Send([]byte{1}, 1, 7); err != nil {
				return err
			}
			return dup.Send([]byte{2}, 1, 7)
		}
		buf := make([]byte, 1)
		// Receive on the dup FIRST: context matching must skip the world
		// message even though it was sent earlier with the same tag.
		if _, err := dup.Recv(buf, 0, 7); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("dup delivered %d", buf[0])
		}
		if _, err := c.Recv(buf, 0, 7); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("world delivered %d", buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankMapping(t *testing.T) {
	w := testWorld(t, 6, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		sub, err := c.Split(p.Rank()%2, 0)
		if err != nil {
			return err
		}
		// Comm rank r of the even group is world rank 2r.
		for r := 0; r < sub.Size(); r++ {
			want := 2*r + p.Rank()%2
			if got := sub.WorldRank(r); got != want {
				return fmt.Errorf("WorldRank(%d) = %d, want %d", r, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBigWorldSmoke(t *testing.T) {
	// 896 goroutine-ranks, the scale of the paper's full-subscription runs.
	if testing.Short() {
		t.Skip("big world")
	}
	place, err := topologyPlacement(896, 56)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(Config{
		Placement: place, Model: fronteraModelForTest(), CarryData: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if err := c.Barrier(); err != nil {
			return err
		}
		return c.AllreduceN(nil, nil, 1024, Float32, OpSum)
	})
	if err != nil {
		t.Fatal(err)
	}
}
