package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered group of world ranks with a private
// message context, analogous to MPI_Comm. A Comm value is bound to one rank
// (its proc) and must only be used from that rank's goroutine; the
// "collective" methods must be called by every member.
type Comm struct {
	// collSeq counts the communicator's collective invocations; each one
	// is stamped with its own internal tag (see nextCollTag). Collective
	// calls are collectively ordered, so every member's counter agrees.
	// First field on purpose: a fold resolution bumps every world rank's
	// comm0v.collSeq, and here it shares the Proc's first cache line with
	// the clock that fanout writes anyway (see the Proc layout comment).
	collSeq int
	proc    *Proc
	ctx     int
	group   []int // communicator rank -> world rank
	rank    int   // this process's communicator rank
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Proc returns the owning process handle.
func (c *Comm) Proc() *Proc { return c.proc }

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(r int) int { return c.group[r] }

// checkRank validates a communicator rank argument.
func (c *Comm) checkRank(r int, what string) error {
	if r < 0 || r >= len(c.group) {
		return fmt.Errorf("mpi: %s %d out of range [0,%d)", what, r, len(c.group))
	}
	return nil
}

// Internal tag space: collectives stamp messages above MaxUserTag so they
// can never match application receives. Each invocation draws its own tag
// from the communicator's collective sequence (see nextCollTag in
// collsched.go), which also keeps concurrent nonblocking collectives on one
// communicator from cross-matching.

// Dup returns a communicator with the same group but a fresh context, so
// traffic on the duplicate can never match traffic on the original. Must be
// called collectively.
func (c *Comm) Dup() (*Comm, error) {
	// Rank 0 allocates a context id and broadcasts it.
	var buf [8]byte
	if c.rank == 0 {
		ctx := c.proc.world.allocCtx(1)
		binary.LittleEndian.PutUint64(buf[:], uint64(ctx))
	}
	if err := c.Bcast(buf[:], 0); err != nil {
		return nil, fmt.Errorf("mpi: Dup: %w", err)
	}
	ctx := int(binary.LittleEndian.Uint64(buf[:]))
	group := make([]int, len(c.group))
	copy(group, c.group)
	return &Comm{proc: c.proc, ctx: ctx, group: group, rank: c.rank}, nil
}

// Split partitions the communicator by color, ordering each new group by
// (key, old rank), like MPI_Comm_split. Every member must call it; members
// passing the same color end up in the same new communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	p := len(c.group)
	// Gather (color, key) from everybody.
	mine := make([]byte, 16)
	binary.LittleEndian.PutUint64(mine[0:], uint64(int64(color)))
	binary.LittleEndian.PutUint64(mine[8:], uint64(int64(key)))
	all := make([]byte, 16*p)
	if err := c.Allgather(mine, all); err != nil {
		return nil, fmt.Errorf("mpi: Split allgather: %w", err)
	}
	type member struct{ color, key, oldRank int }
	members := make([]member, p)
	colorSet := map[int]bool{}
	for r := 0; r < p; r++ {
		members[r] = member{
			color:   int(int64(binary.LittleEndian.Uint64(all[16*r:]))),
			key:     int(int64(binary.LittleEndian.Uint64(all[16*r+8:]))),
			oldRank: r,
		}
		colorSet[members[r].color] = true
	}
	colors := make([]int, 0, len(colorSet))
	for col := range colorSet {
		colors = append(colors, col)
	}
	sort.Ints(colors)

	// Rank 0 reserves one context per distinct color and broadcasts the
	// base; each color then deterministically picks base + its index.
	var buf [8]byte
	if c.rank == 0 {
		base := c.proc.world.allocCtx(len(colors))
		binary.LittleEndian.PutUint64(buf[:], uint64(base))
	}
	if err := c.Bcast(buf[:], 0); err != nil {
		return nil, fmt.Errorf("mpi: Split bcast: %w", err)
	}
	base := int(binary.LittleEndian.Uint64(buf[:]))

	colorIdx := sort.SearchInts(colors, color)
	var mates []member
	for _, m := range members {
		if m.color == color {
			mates = append(mates, m)
		}
	}
	sort.Slice(mates, func(i, j int) bool {
		if mates[i].key != mates[j].key {
			return mates[i].key < mates[j].key
		}
		return mates[i].oldRank < mates[j].oldRank
	})
	group := make([]int, len(mates))
	myNew := -1
	for i, m := range mates {
		group[i] = c.group[m.oldRank]
		if m.oldRank == c.rank {
			myNew = i
		}
	}
	return &Comm{proc: c.proc, ctx: base + colorIdx, group: group, rank: myNew}, nil
}
