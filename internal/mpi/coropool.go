package mpi

// Worker-pooled rank coroutines. The event engine runs every rank body on
// an iter.Pull coroutine; creating one costs a fresh goroutine plus ~8
// small allocations of iterator state, and a Run needs one per rank. At
// 64Ki ranks that setup was the single largest allocation source of a
// steady-state huge-world sweep — more than the simulation itself — because
// every benchmark iteration builds a new world and re-created all of them.
//
// A coroWorker decouples the coroutine from the Run: its sequence function
// is a loop that runs one bound (rank, body) pair, then parks in an idle
// yield instead of returning, so the next Run can rebind and resume it.
// Workers are pooled process-wide; a warm Run performs zero coroutine
// setup. Only cleanly finished workers return to the pool — a worker
// stopped mid-body (loop shutdown after an error, a fault kill) unwinds
// and dies exactly as the unpooled coroutine did.

import (
	"fmt"
	"iter"
	"runtime/debug"
	"sync"
)

// coroWorker is one pooled rank coroutine.
type coroWorker struct {
	next  func() (struct{}, bool)
	stop  func()
	yield func(struct{}) bool
	// er/body are the current binding; a nil er parks the worker idle (its
	// state between Runs). Only the binding Run's driver touches a bound
	// worker; the pool lock orders rebinds across Runs.
	er   *eventRank
	body func(p *Proc) error
}

// newCoroWorker creates a worker and advances it to its idle yield, so
// yield is captured and bind can hand it to the rank.
func newCoroWorker() *coroWorker {
	cw := &coroWorker{}
	cw.next, cw.stop = iter.Pull(func(yield func(struct{}) bool) {
		cw.yield = yield
		for {
			if cw.er == nil {
				// Idle: park until the next Run rebinds (or stop kills us).
				if !yield(struct{}{}) {
					return
				}
				continue
			}
			cw.runBody()
			cw.er, cw.body = nil, nil
		}
	})
	cw.next()
	return cw
}

// runBody executes the bound rank body with the engine's termination
// contract: the body's result (or a recovered panic) lands in er.err, and
// er.finished tells the resuming driveUntil that this resume ended the
// body rather than parking it. An eventStop unwind (loop shutdown) is
// swallowed here and then kills the worker: its next idle yield reports
// the stop and the sequence function returns.
func (cw *coroWorker) runBody() {
	er := cw.er
	defer func() {
		if rec := recover(); rec != nil {
			if _, stopped := rec.(eventStop); !stopped {
				er.err = fmt.Errorf("panic: %v\n%s", rec, debug.Stack())
				er.set = true
			}
		}
		er.finished = true
	}()
	err := cw.body(er.proc)
	if !er.set {
		er.err, er.set = err, true
	}
}

// bind attaches the worker to one rank of one Run.
func (cw *coroWorker) bind(er *eventRank, body func(p *Proc) error) {
	cw.er, cw.body = er, body
	er.cw = cw
	er.next, er.stop, er.yield = cw.next, cw.stop, cw.yield
	er.finished = false
}

// coroPool is the process-wide free list of idle workers. Each idle worker
// retains one parked goroutine (a few KiB of stack after shrinking);
// coroPoolMax bounds the retained set the way growEventCaches bounds the
// schedule slabs. Overflowing workers are stopped, not leaked — and this
// is capacity pooling, not result caching, so the overflow is deliberately
// not counted in cacheOverflows: dropping a worker re-runs no simulation
// work, it only re-pays coroutine setup.
var coroPool struct {
	mu   sync.Mutex
	free []*coroWorker
}

const coroPoolMax = 1 << 17

// takeCoroWorkers returns n workers: pooled ones first, fresh for the
// shortfall.
func takeCoroWorkers(n int) []*coroWorker {
	ws := make([]*coroWorker, n)
	coroPool.mu.Lock()
	free := coroPool.free
	k := len(free)
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		ws[i] = free[len(free)-1-i]
		free[len(free)-1-i] = nil
	}
	coroPool.free = free[:len(free)-k]
	coroPool.mu.Unlock()
	for i := k; i < n; i++ {
		ws[i] = newCoroWorker()
	}
	return ws
}

// releaseCoroWorkers returns the Run's cleanly finished workers to the
// pool; anything else (stopped mid-body, errored out) is already dead or
// dies with the Run.
func releaseCoroWorkers(ranks []*eventRank) {
	var kill []*coroWorker
	coroPool.mu.Lock()
	for _, er := range ranks {
		cw := er.cw
		er.cw = nil
		if cw == nil || er.state != rankDone {
			continue
		}
		if len(coroPool.free) < coroPoolMax {
			coroPool.free = append(coroPool.free, cw)
		} else {
			kill = append(kill, cw)
		}
	}
	coroPool.mu.Unlock()
	for _, cw := range kill {
		cw.stop()
	}
}
