package mpi

// Cancellation: RunContext arms a world so an external context can stop a
// run mid-flight — deadline expiry, a client disconnect, an operator's
// SIGTERM — through the same structured-error path the fault layer built.
// The discipline mirrors fault.go's: nothing ever os.Exits or leaks, every
// rank unwinds by returning a CanceledError from its current blocking
// operation, and the world (with all its cross-run slab pools, coroutine
// workers and compiled-schedule caches) remains fully reusable afterwards.
//
// Signal propagation differs per engine:
//
//   - Event engine: the whole world runs on one goroutine, so the loop
//     polls the latched flag itself — every cancelPollMask dequeued events
//     (driveUntil) — and fails the parked ranks exactly the way
//     failStalled does, schedule handoffs through schedErr and coroutine
//     parks through Proc.failure. The watcher goroutine never touches the
//     loop's lock-elided mailboxes.
//   - Goroutine engine: the watcher reuses the PR 7 watchdog plumbing — a
//     Signal pass over the waiting mailbox condvars unparks receivers, the
//     closed cancelChan unparks rendezvous waiters (completeSend selects on
//     it), and Waitany pollers observe the latched failedFlag on their next
//     pass. Runnable ranks hit the flag at their next blocking primitive or
//     collective entry.
//
// Error sites are made deterministic where determinism is possible: a
// context canceled *before* the run starts fails every rank at its first
// collective entry (cancelEnter, called from driveSched and collRequest on
// both engines), so serial, parallel and cross-engine runs of a
// pre-canceled sweep report bit-identical failures. A mid-run cancel is
// inherently a real-time event; only promptness is guaranteed then.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/vtime"
)

// CanceledError reports that a run was stopped by its context: the blocking
// operation (or collective entry) the rank was at completes with this error
// instead of running to the end. It unwraps to the context's cause, so
// errors.Is(err, context.DeadlineExceeded) distinguishes a timeout from an
// explicit cancel.
type CanceledError struct {
	// Rank is the rank observing the cancellation.
	Rank int
	// Cause is the canceling context's cause (context.Canceled,
	// context.DeadlineExceeded, or a custom cause).
	Cause error
	// Collective names the collective the rank was in, empty outside one.
	Collective Collective
	// Step is the schedule step the rank was at, -1 outside a collective
	// schedule.
	Step int
	// Time is the rank's virtual clock at the cancellation point.
	Time vtime.Micros
}

// Error implements the error interface.
func (e *CanceledError) Error() string {
	reason := "canceled"
	if e.Timeout() {
		reason = "timeout"
	}
	site := "point-to-point operation"
	if e.Collective != "" {
		site = fmt.Sprintf("collective %q step %d", e.Collective, e.Step)
	}
	return fmt.Sprintf("mpi: %s: rank %d stopped in %s at %s: %v",
		reason, e.Rank, site, e.Time, e.Cause)
}

// Unwrap exposes the context cause.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Timeout reports whether the cancellation was a deadline expiry.
func (e *CanceledError) Timeout() bool { return errors.Is(e.Cause, context.DeadlineExceeded) }

// cancelPollMask sets how often the event loop re-checks the cancel flag:
// every 256 dequeued events, cheap enough to vanish from the profile and
// frequent enough to stop a huge-world sweep within single-digit
// milliseconds.
const cancelPollMask = 255

// RunContext is Run with cancellation: when ctx is canceled (or its
// deadline expires) every rank's current blocking operation returns a
// CanceledError and the run unwinds through the normal error path, leaving
// the world reusable. A context that can never be canceled delegates to
// Run at zero cost.
func (w *World) RunContext(ctx context.Context, body func(p *Proc) error) error {
	if ctx.Done() == nil {
		return w.Run(body)
	}
	w.armCancel()
	if ctx.Err() != nil {
		// Already canceled: latch synchronously before any rank exists, so
		// every rank deterministically fails at its first collective entry
		// (cancelEnter) instead of racing the watcher goroutine's wakeup.
		w.cancelNow(context.Cause(ctx))
		err := w.Run(body)
		w.disarmCancel()
		return err
	}
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			w.cancelNow(context.Cause(ctx))
		case <-stop:
		}
	}()
	err := w.Run(body)
	close(stop)
	<-watcherDone
	w.disarmCancel()
	return err
}

// armCancel resets the per-run cancel state. Called from the Run goroutine
// before any rank exists, so plain writes are safe.
func (w *World) armCancel() {
	w.cancelOn = true
	w.cancelCause = nil
	w.cancelFlag.Store(false)
	w.cancelChan = make(chan struct{})
}

// disarmCancel returns the world to the uncancellable steady state after
// the run (and the watcher) have fully stopped.
func (w *World) disarmCancel() {
	w.cancelOn = false
	w.cancelChan = nil
	if w.faults == nil {
		// cancelNow latches failedFlag to reuse the fault layer's
		// drain-skipping paths; a fault plan resets it per Run itself.
		w.failedFlag.Store(false)
	}
}

// cancelRequested reports whether a cancel signal has latched. One atomic
// load when the world is armed; a plain false otherwise.
func (w *World) cancelRequested() bool {
	return w.cancelOn && w.cancelFlag.Load()
}

// cancelNow latches the cancel signal and unparks the goroutine engine's
// blocked ranks. It runs on the watcher goroutine: cancelCause is written
// before the flag's release store, so any rank that observes the flag also
// observes the cause.
func (w *World) cancelNow(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	w.cancelCause = cause
	w.failedFlag.Store(true)
	w.cancelFlag.Store(true)
	close(w.cancelChan)
	if w.cfg.Engine == EngineEvent {
		// The event loop polls the flag itself, and its mailboxes are
		// lock-elided single-goroutine structures the watcher must not touch.
		return
	}
	// Unpark mailbox waiters exactly the way the watchdog's declaration pass
	// does: a parking rank holds its mailbox lock from the cancel check
	// through cond.Wait, so this Signal cannot slip between them. Rendezvous
	// waiters and Waitany pollers wake on cancelChan / failedFlag.
	for _, mb := range w.mailboxes {
		mb.mu.Lock()
		if mb.waiting {
			mb.cond.Signal()
		}
		mb.mu.Unlock()
	}
}

// cancelErr builds this rank's CanceledError at its current virtual time.
func (p *Proc) cancelErr(coll Collective, step int) *CanceledError {
	return &CanceledError{
		Rank: p.rank, Cause: p.world.cancelCause,
		Collective: coll, Step: step, Time: p.clock.Now(),
	}
}

// cancelEnter is the collective-entry cancellation checkpoint, shared by
// both engines (driveSched and collRequest call it before doing anything).
// It is the canonical deterministic cancel site: a context canceled before
// the run starts stops every rank here, at its first collective, with
// engine-independent state. Returns nil when no cancellation is pending.
func (p *Proc) cancelEnter(coll Collective) error {
	if !p.world.cancelOn {
		return nil
	}
	if p.failure != nil {
		return p.failure
	}
	if p.world.cancelFlag.Load() {
		p.failure = p.cancelErr(coll, 0)
		return p.failure
	}
	return nil
}

// failCanceled is the event engine's cancel resolution, the cancellation
// twin of failStalled: every parked rank is failed — schedule handoffs
// through schedErr, coroutine parks through Proc.failure — and re-queued so
// the loop unwinds them through the normal error path (which is what keeps
// the slab pools, coroutine workers and stepCache reusable). Runnable ranks
// are left alone: they reach cancelEnter or a park-site failure check on
// their own. Reports whether anything was woken.
func (l *eventLoop) failCanceled() bool {
	w := l.w
	if !w.cancelRequested() {
		return false
	}
	// Release a partial fold gather first: its joiners fall back to per-rank
	// execution and park at a site the loop below (or a later pass) can
	// fail. Without this, waitFold ranks would be unreachable — only the
	// fold resolver may wake them. A release counts as progress: the woken
	// joiners are runnable and the caller must keep driving.
	woke := l.releaseFoldStalled()
	for _, er := range l.ranks {
		if er.state != rankBlocked || er.wait == waitFold {
			continue
		}
		p := er.proc
		if s := er.sched; s != nil {
			er.schedErr = p.cancelErr(s.coll, s.pc)
			er.sched = nil
		} else if p.failure == nil {
			p.failure = p.cancelErr("", -1)
		}
		er.state = rankRunnable
		er.wait = waitAny
		l.push(er)
		woke = true
	}
	return woke
}
