package collective

import (
	"testing"
	"testing/quick"
)

func TestPof2Floor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 9: 8, 896: 512, 1024: 1024}
	for in, want := range cases {
		if got := Pof2Floor(in); got != want {
			t.Errorf("Pof2Floor(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPof2(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 1024} {
		if !IsPof2(p) {
			t.Errorf("IsPof2(%d) = false, want true", p)
		}
	}
	for _, p := range []int{0, 3, 5, 6, 7, 896} {
		if IsPof2(p) {
			t.Errorf("IsPof2(%d) = true, want false", p)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 896: 10, 1024: 10}
	for in, want := range cases {
		if got := Log2Ceil(in); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestBinomialTreeStructure checks that parent/children are mutually
// consistent and every non-root rank has exactly one parent path to root.
func TestBinomialTreeStructure(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64} {
		for root := 0; root < size; root += max(1, size/3) {
			// Every rank reaches the root by following parents.
			for r := 0; r < size; r++ {
				cur, hops := r, 0
				for cur != root {
					cur = BinomialParent(cur, root, size)
					if cur < 0 {
						t.Fatalf("size=%d root=%d rank=%d: lost parent chain", size, root, r)
					}
					if hops++; hops > size {
						t.Fatalf("size=%d root=%d rank=%d: parent cycle", size, root, r)
					}
				}
			}
			// Children lists partition the non-root ranks.
			seen := map[int]int{}
			for r := 0; r < size; r++ {
				for _, ch := range BinomialChildren(r, root, size) {
					seen[ch]++
					if got := BinomialParent(ch, root, size); got != r {
						t.Errorf("size=%d root=%d: child %d of %d has parent %d", size, root, ch, r, got)
					}
				}
			}
			if len(seen) != size-1 {
				t.Errorf("size=%d root=%d: children cover %d ranks, want %d", size, root, len(seen), size-1)
			}
			for ch, n := range seen {
				if n != 1 {
					t.Errorf("size=%d root=%d: rank %d appears as child %d times", size, root, ch, n)
				}
			}
		}
	}
}

func TestDisseminationPeers(t *testing.T) {
	sendTo, recvFrom := DisseminationPeers(2, 8)
	wantSend := []int{3, 4, 6}
	wantRecv := []int{1, 0, 6}
	for i := range wantSend {
		if sendTo[i] != wantSend[i] || recvFrom[i] != wantRecv[i] {
			t.Errorf("round %d: got (%d,%d), want (%d,%d)", i, sendTo[i], recvFrom[i], wantSend[i], wantRecv[i])
		}
	}
	// Rounds must number ceil(log2(p)).
	for _, p := range []int{2, 3, 7, 8, 896} {
		s, _ := DisseminationPeers(0, p)
		if len(s) != Log2Ceil(p) {
			t.Errorf("p=%d: %d rounds, want %d", p, len(s), Log2Ceil(p))
		}
	}
}

func TestRecursiveDoublingPeersSymmetric(t *testing.T) {
	const size = 16
	for r := 0; r < size; r++ {
		for k, peer := range RecursiveDoublingPeers(r, size) {
			back := RecursiveDoublingPeers(peer, size)
			if back[k] != r {
				t.Errorf("rank %d round %d: peer %d does not point back (%d)", r, k, peer, back[k])
			}
		}
	}
}

func TestRecursiveDoublingPeersPanicsOnNonPof2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	RecursiveDoublingPeers(0, 6)
}

func TestPof2Fold(t *testing.T) {
	// size 6: pof2 4, r = 2, ranks 0..3 pair (0->1, 2->3), ranks 4,5 inside.
	wantRoles := []FoldRole{FoldSender, FoldReceiver, FoldSender, FoldReceiver, FoldInside, FoldInside}
	wantNew := []int{-1, 0, -1, 1, 2, 3}
	for r := 0; r < 6; r++ {
		f := NewPof2Fold(r, 6)
		if f.Pof2 != 4 {
			t.Errorf("rank %d: pof2 %d, want 4", r, f.Pof2)
		}
		if f.Role != wantRoles[r] {
			t.Errorf("rank %d: role %v, want %v", r, f.Role, wantRoles[r])
		}
		if f.NewRank != wantNew[r] {
			t.Errorf("rank %d: new rank %d, want %d", r, f.NewRank, wantNew[r])
		}
	}
	// OldRank must invert NewRank for all participants.
	for r := 0; r < 6; r++ {
		f := NewPof2Fold(r, 6)
		if f.Role == FoldSender {
			continue
		}
		if got := f.OldRank(f.NewRank, 6); got != r {
			t.Errorf("rank %d: OldRank(NewRank)=%d", r, got)
		}
	}
}

func TestPof2FoldProperty(t *testing.T) {
	prop := func(sizeRaw uint8) bool {
		size := int(sizeRaw%200) + 1
		newRanks := map[int]bool{}
		for r := 0; r < size; r++ {
			f := NewPof2Fold(r, size)
			if f.Role == FoldSender {
				if f.Partner < 0 || f.Partner >= size {
					return false
				}
				continue
			}
			if f.NewRank < 0 || f.NewRank >= f.Pof2 || newRanks[f.NewRank] {
				return false
			}
			newRanks[f.NewRank] = true
			if f.OldRank(f.NewRank, size) != r {
				return false
			}
		}
		return len(newRanks) == Pof2Floor(size)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBruckScheduleCoversAllBlocks(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8, 13, 896} {
		steps := BruckSchedule(0, p)
		if len(steps) != Log2Ceil(p) {
			t.Errorf("p=%d: %d rounds, want %d", p, len(steps), Log2Ceil(p))
		}
		got := 1 // own block
		for _, s := range steps {
			got += s.BlockCount
		}
		if got != p {
			t.Errorf("p=%d: schedule moves %d blocks, want %d", p, got, p)
		}
	}
}

func TestPairwisePeerIsPermutationEachRound(t *testing.T) {
	for _, p := range []int{2, 4, 5, 7, 8} {
		for k := 1; k < p; k++ {
			seen := map[int]bool{}
			for r := 0; r < p; r++ {
				peer := PairwisePeer(r, p, k)
				if peer < 0 || peer >= p {
					t.Fatalf("p=%d k=%d r=%d: peer %d out of range", p, k, r, peer)
				}
				// Pairing must be symmetric: peer's peer is me.
				if PairwisePeer(peer, p, k) != r {
					t.Fatalf("p=%d k=%d: asymmetric pair (%d,%d)", p, k, r, peer)
				}
				seen[peer] = true
			}
			if len(seen) != p {
				t.Errorf("p=%d k=%d: round is not a permutation", p, k)
			}
		}
	}
}

// TestRecursiveHalvingWindows verifies the halving windows shrink correctly
// and the final window is exactly the rank's own block.
func TestRecursiveHalvingWindows(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 64} {
		for r := 0; r < p; r++ {
			steps := RecursiveHalvingSchedule(r, p)
			if len(steps) != Log2Ceil(p) {
				t.Fatalf("p=%d r=%d: %d steps, want %d", p, r, len(steps), Log2Ceil(p))
			}
			last := steps[len(steps)-1]
			if last.KeepLo != r || last.KeepHi != r+1 {
				t.Errorf("p=%d r=%d: final window [%d,%d), want [%d,%d)",
					p, r, last.KeepLo, last.KeepHi, r, r+1)
			}
			// Keep and send windows must be disjoint halves of the previous
			// window, and each is half its size.
			lo, hi := 0, p
			for i, s := range steps {
				if s.KeepHi-s.KeepLo != (hi-lo)/2 || s.SendHi-s.SendLo != (hi-lo)/2 {
					t.Errorf("p=%d r=%d step %d: window sizes wrong: %+v", p, r, i, s)
				}
				lo, hi = s.KeepLo, s.KeepHi
			}
		}
	}
}

// TestAllgatherScheduleMirrorsHalving verifies the allgather phase regrows
// windows back to the full range.
func TestAllgatherScheduleMirrorsHalving(t *testing.T) {
	for _, p := range []int{2, 4, 8, 32} {
		for r := 0; r < p; r++ {
			steps := RecursiveDoublingAllgatherSchedule(r, p)
			have := map[int]bool{r: true}
			for _, s := range steps {
				// Must currently own exactly [HaveLo, HaveHi).
				for b := s.HaveLo; b < s.HaveHi; b++ {
					if !have[b] {
						t.Fatalf("p=%d r=%d: step claims to own block %d it does not", p, r, b)
					}
				}
				for b := s.GetLo; b < s.GetHi; b++ {
					have[b] = true
				}
			}
			if len(have) != p {
				t.Errorf("p=%d r=%d: ends owning %d blocks, want %d", p, r, len(have), p)
			}
		}
	}
}

func TestRingNeighbors(t *testing.T) {
	s, r := RingNeighbors(0, 5)
	if s != 1 || r != 4 {
		t.Errorf("RingNeighbors(0,5) = (%d,%d), want (1,4)", s, r)
	}
	s, r = RingNeighbors(4, 5)
	if s != 0 || r != 3 {
		t.Errorf("RingNeighbors(4,5) = (%d,%d), want (0,3)", s, r)
	}
}

// TestPairwisePeerIsValidPairing checks, for power-of-two, odd, and — the
// regression case — even non-power-of-two sizes, that every round's
// pairing is a self-inverse permutation inside the group and that across
// a full schedule every rank meets every other rank exactly once.
func TestPairwisePeerIsValidPairing(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16, 3, 5, 7, 9, 6, 10, 12, 24, 224} {
		start, rounds := 1, p-1
		if !IsPof2(p) {
			start, rounds = 0, p
		}
		met := make([]map[int]bool, p)
		for r := range met {
			met[r] = map[int]bool{}
		}
		for i := 0; i < rounds; i++ {
			k := start + i
			for r := 0; r < p; r++ {
				peer := PairwisePeer(r, p, k)
				if peer < 0 || peer >= p {
					t.Fatalf("p=%d k=%d: rank %d pairs outside the group (%d)", p, k, r, peer)
				}
				if back := PairwisePeer(peer, p, k); back != r {
					t.Fatalf("p=%d k=%d: pairing not self-inverse (%d -> %d -> %d)", p, k, r, peer, back)
				}
				if peer == r {
					continue // the idle round of the shifted-sum schedule
				}
				if met[r][peer] {
					t.Fatalf("p=%d: rank %d meets %d twice", p, r, peer)
				}
				met[r][peer] = true
			}
		}
		for r := 0; r < p; r++ {
			if len(met[r]) != p-1 {
				t.Errorf("p=%d: rank %d met %d peers, want %d", p, r, len(met[r]), p-1)
			}
		}
	}
}
