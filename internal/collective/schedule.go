// Package collective computes the communication schedules used by the MPI
// runtime's collective operations: binomial trees, recursive doubling and
// halving, ring passes and Bruck's algorithm. The functions here are pure --
// they map (rank, size, root) to peer lists -- so every schedule is unit
// tested independently of the message-passing machinery, and the runtime's
// collectives are thin loops over these schedules.
package collective

import "fmt"

// Pof2Floor returns the largest power of two not exceeding p (p >= 1).
func Pof2Floor(p int) int {
	if p < 1 {
		panic(fmt.Sprintf("collective: Pof2Floor(%d)", p))
	}
	v := 1
	for v*2 <= p {
		v *= 2
	}
	return v
}

// IsPof2 reports whether p is a power of two.
func IsPof2(p int) bool { return p >= 1 && p&(p-1) == 0 }

// Log2Ceil returns ceil(log2(p)) for p >= 1.
func Log2Ceil(p int) int {
	n, v := 0, 1
	for v < p {
		v *= 2
		n++
	}
	return n
}

// relRank translates an absolute rank into the tree rooted at root.
func relRank(rank, root, size int) int { return (rank - root + size) % size }

// absRank translates a tree-relative rank back to an absolute rank.
func absRank(rel, root, size int) int { return (rel + root) % size }

// BinomialParent returns the parent of rank in the binomial tree rooted at
// root, or -1 for the root itself.
func BinomialParent(rank, root, size int) int {
	rel := relRank(rank, root, size)
	if rel == 0 {
		return -1
	}
	// Clear the lowest set bit to find the parent.
	return absRank(rel&(rel-1), root, size)
}

// BinomialChildren returns the children of rank in the binomial tree rooted
// at root, in the order a binomial broadcast sends to them (largest subtree
// first).
func BinomialChildren(rank, root, size int) []int {
	rel := relRank(rank, root, size)
	// Walk the mask up to rel's lowest set bit (or past size for the root);
	// the children of rel are rel+m for every mask m below that point, in
	// descending order (largest subtree first), while rel+m stays in range.
	mask := 1
	for mask < size && rel&mask == 0 {
		mask <<= 1
	}
	var children []int
	for m := mask >> 1; m > 0; m >>= 1 {
		if child := rel + m; child < size {
			children = append(children, absRank(child, root, size))
		}
	}
	return children
}

// DisseminationPeers returns the (sendTo, recvFrom) peer pairs of the
// dissemination barrier for rank in a communicator of the given size:
// round k sends to rank+2^k and receives from rank-2^k (mod size).
func DisseminationPeers(rank, size int) (sendTo, recvFrom []int) {
	for k := 1; k < size; k *= 2 {
		sendTo = append(sendTo, (rank+k)%size)
		recvFrom = append(recvFrom, (rank-k+size)%size)
	}
	return sendTo, recvFrom
}

// RecursiveDoublingPeers returns the exchange partner per round for a
// power-of-two communicator: round k's partner is rank XOR 2^k.
// It panics if size is not a power of two; callers fold remainders first.
func RecursiveDoublingPeers(rank, size int) []int {
	if !IsPof2(size) {
		panic(fmt.Sprintf("collective: RecursiveDoublingPeers size %d not a power of two", size))
	}
	var peers []int
	for mask := 1; mask < size; mask *= 2 {
		peers = append(peers, rank^mask)
	}
	return peers
}

// Pof2Fold describes how a non-power-of-two communicator folds onto its
// largest power-of-two subset before a recursive-doubling phase, following
// the classic MPICH scheme: with r = size - pof2, the first 2r ranks pair
// up (even sends to odd) and odd ranks of those pairs plus ranks >= 2r form
// the power-of-two group.
type Pof2Fold struct {
	Pof2 int
	// Role of this rank: one of FoldSender, FoldReceiver, FoldInside.
	Role FoldRole
	// Partner is the pair partner for senders/receivers, -1 otherwise.
	Partner int
	// NewRank is the rank within the power-of-two group, -1 for senders.
	NewRank int
}

// FoldRole classifies a rank's part in the fold.
type FoldRole int

// Fold roles.
const (
	// FoldSender hands its data to Partner and sits out the main phase.
	FoldSender FoldRole = iota
	// FoldReceiver absorbs Partner's data and participates.
	FoldReceiver
	// FoldInside participates directly (no pairing needed).
	FoldInside
)

// NewPof2Fold computes the fold for rank in a communicator of size ranks.
func NewPof2Fold(rank, size int) Pof2Fold {
	pof2 := Pof2Floor(size)
	r := size - pof2
	switch {
	case rank < 2*r && rank%2 == 0:
		return Pof2Fold{Pof2: pof2, Role: FoldSender, Partner: rank + 1, NewRank: -1}
	case rank < 2*r:
		return Pof2Fold{Pof2: pof2, Role: FoldReceiver, Partner: rank - 1, NewRank: rank / 2}
	default:
		return Pof2Fold{Pof2: pof2, Role: FoldInside, Partner: -1, NewRank: rank - r}
	}
}

// OldRank inverts the fold: the absolute rank holding power-of-two rank nr.
func (f Pof2Fold) OldRank(nr, size int) int {
	r := size - f.Pof2
	if nr < r {
		return nr*2 + 1
	}
	return nr + r
}

// RingNeighbors returns the (sendTo, recvFrom) neighbours of the increasing
// ring: rank sends to rank+1 and receives from rank-1 (mod size).
func RingNeighbors(rank, size int) (sendTo, recvFrom int) {
	return (rank + 1) % size, (rank - 1 + size) % size
}

// BruckStep describes one round of Bruck's allgather/alltoall: the rank
// sends to sendTo, receives from recvFrom, moving blockCount blocks.
type BruckStep struct {
	SendTo, RecvFrom int
	BlockCount       int
}

// BruckSchedule returns the rounds of Bruck's algorithm for a communicator
// of the given size: ceil(log2(size)) rounds, round k exchanging
// min(2^k, size-2^k) blocks with peers at distance 2^k.
func BruckSchedule(rank, size int) []BruckStep {
	var steps []BruckStep
	for k := 1; k < size; k *= 2 {
		cnt := k
		if size-k < cnt {
			cnt = size - k
		}
		steps = append(steps, BruckStep{
			SendTo:     (rank - k + size) % size,
			RecvFrom:   (rank + k) % size,
			BlockCount: cnt,
		})
	}
	return steps
}

// PairwisePeer returns the peer of rank in round k of the pairwise
// alltoall exchange. For power-of-two communicator sizes this is the
// XOR-based perfectly balanced schedule (rounds 1 <= k < size, no idle
// ranks). Every other size uses the shifted-sum schedule (k - rank) mod
// size over rounds 0 <= k < size: a self-inverse pairing for any size, in
// which each rank sits out exactly the round k = 2*rank mod size and
// meets every other rank exactly once. XOR must not be used merely for
// even sizes: it is only closed over the group when size is a power of
// two (224 ranks, round 95: rank 157 would address 250).
func PairwisePeer(rank, size, k int) int {
	if IsPof2(size) {
		return rank ^ k
	}
	return (k - rank + size) % size
}

// RecursiveHalvingStep describes one round of recursive-halving
// reduce-scatter on a power-of-two group: exchange with Peer, keep the
// half [KeepLo, KeepHi) of the current window.
type RecursiveHalvingStep struct {
	Peer           int
	KeepLo, KeepHi int // block indices of the window kept after the round
	SendLo, SendHi int // block indices sent to the peer
}

// RecursiveHalvingSchedule computes reduce-scatter rounds for newRank in a
// power-of-two group of size pof2 over pof2 equal blocks.
func RecursiveHalvingSchedule(newRank, pof2 int) []RecursiveHalvingStep {
	if !IsPof2(pof2) {
		panic(fmt.Sprintf("collective: RecursiveHalvingSchedule size %d not a power of two", pof2))
	}
	var steps []RecursiveHalvingStep
	lo, hi := 0, pof2
	for mask := pof2 / 2; mask > 0; mask /= 2 {
		peer := newRank ^ mask
		mid := (lo + hi) / 2
		var s RecursiveHalvingStep
		if newRank&mask == 0 { // keep the lower half
			s = RecursiveHalvingStep{Peer: peer, KeepLo: lo, KeepHi: mid, SendLo: mid, SendHi: hi}
			hi = mid
		} else {
			s = RecursiveHalvingStep{Peer: peer, KeepLo: mid, KeepHi: hi, SendLo: lo, SendHi: mid}
			lo = mid
		}
		steps = append(steps, s)
	}
	return steps
}

// RecursiveDoublingAllgatherStep describes one round of the allgather phase
// that mirrors recursive halving: exchange the accumulated window with Peer.
type RecursiveDoublingAllgatherStep struct {
	Peer           int
	HaveLo, HaveHi int // window owned before the round
	GetLo, GetHi   int // window received from the peer
}

// RecursiveDoublingAllgatherSchedule computes the allgather rounds that undo
// RecursiveHalvingSchedule, growing the owned window back to all blocks.
func RecursiveDoublingAllgatherSchedule(newRank, pof2 int) []RecursiveDoublingAllgatherStep {
	halving := RecursiveHalvingSchedule(newRank, pof2)
	steps := make([]RecursiveDoublingAllgatherStep, 0, len(halving))
	// Replay the halving in reverse: at the end of halving the rank owns
	// exactly one block window; each reversed round doubles it.
	for i := len(halving) - 1; i >= 0; i-- {
		h := halving[i]
		steps = append(steps, RecursiveDoublingAllgatherStep{
			Peer:   h.Peer,
			HaveLo: h.KeepLo, HaveHi: h.KeepHi,
			GetLo: h.SendLo, GetHi: h.SendHi,
		})
	}
	return steps
}
