// Package pybuf implements the Python buffer libraries the paper benchmarks
// as mpi4py communication buffers: built-in bytearrays, NumPy arrays on the
// host, and the three GPU-aware array libraries (CuPy, PyCUDA, Numba) that
// expose device memory through the CUDA Array Interface. Buffers are real:
// host buffers are byte slices, GPU buffers own simulated device
// allocations, and the binding layer extracts raw storage exactly the way
// mpi4py's Cython staging phase does.
package pybuf

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/mpi"
)

// Library identifies the Python library providing a buffer.
type Library int

// The buffer libraries of the paper's Table I.
const (
	Bytearray Library = iota
	NumPy
	CuPy
	PyCUDA
	Numba
)

// String implements fmt.Stringer.
func (l Library) String() string {
	switch l {
	case Bytearray:
		return "bytearray"
	case NumPy:
		return "numpy"
	case CuPy:
		return "cupy"
	case PyCUDA:
		return "pycuda"
	case Numba:
		return "numba"
	default:
		return fmt.Sprintf("Library(%d)", int(l))
	}
}

// ParseLibrary resolves a library by name.
func ParseLibrary(s string) (Library, error) {
	switch s {
	case "bytearray":
		return Bytearray, nil
	case "numpy":
		return NumPy, nil
	case "cupy":
		return CuPy, nil
	case "pycuda":
		return PyCUDA, nil
	case "numba":
		return Numba, nil
	default:
		return 0, fmt.Errorf("pybuf: unknown buffer library %q", s)
	}
}

// OnGPU reports whether the library holds device memory.
func (l Library) OnGPU() bool { return l == CuPy || l == PyCUDA || l == Numba }

// Libraries lists all supported libraries in declaration order.
func Libraries() []Library { return []Library{Bytearray, NumPy, CuPy, PyCUDA, Numba} }

// GPULibraries lists the GPU-aware libraries.
func GPULibraries() []Library { return []Library{CuPy, PyCUDA, Numba} }

// Buffer is the common interface of all communication buffers.
type Buffer interface {
	// Library identifies the providing library.
	Library() Library
	// DType is the element type.
	DType() mpi.DType
	// Count is the number of elements.
	Count() int
	// NBytes is the total size in bytes.
	NBytes() int
	// Raw exposes the backing storage the binding layer hands to MPI:
	// host memory for CPU buffers, device memory (CUDA-aware path) for GPU
	// buffers. Mutating it mutates the buffer.
	Raw() []byte
}

// DeviceBuffer is implemented by GPU-resident buffers.
type DeviceBuffer interface {
	Buffer
	// CAI returns the CUDA Array Interface descriptor (the attribute
	// mpi4py reads to obtain the device pointer).
	CAI() device.ArrayInterface
	// Alloc returns the underlying device allocation.
	Alloc() *device.Allocation
	// Free releases the device memory.
	Free() error
}

// typestr renders a dtype as a CAI/NumPy type string.
func typestr(dt mpi.DType) string {
	switch dt {
	case mpi.Uint8:
		return "|u1"
	case mpi.Int32:
		return "<i4"
	case mpi.Int64:
		return "<i8"
	case mpi.Float32:
		return "<f4"
	case mpi.Float64:
		return "<f8"
	default:
		return "|V1"
	}
}

// DTypeFromTypestr inverts typestr.
func DTypeFromTypestr(ts string) (mpi.DType, error) {
	switch ts {
	case "|u1":
		return mpi.Uint8, nil
	case "<i4":
		return mpi.Int32, nil
	case "<i8":
		return mpi.Int64, nil
	case "<f4":
		return mpi.Float32, nil
	case "<f8":
		return mpi.Float64, nil
	default:
		return 0, fmt.Errorf("pybuf: unknown typestr %q", ts)
	}
}

// hostBuffer backs Bytearray and NumPy.
type hostBuffer struct {
	lib   Library
	dt    mpi.DType
	count int
	data  []byte
}

// NewBytearrayBuf allocates a built-in bytearray of n bytes.
func NewBytearrayBuf(n int) Buffer {
	return &hostBuffer{lib: Bytearray, dt: mpi.Uint8, count: n, data: make([]byte, n)}
}

// NewNumPy allocates a NumPy array of count elements of dt.
func NewNumPy(dt mpi.DType, count int) Buffer {
	return &hostBuffer{lib: NumPy, dt: dt, count: count, data: make([]byte, count*dt.Size())}
}

func (h *hostBuffer) Library() Library { return h.lib }
func (h *hostBuffer) DType() mpi.DType { return h.dt }
func (h *hostBuffer) Count() int       { return h.count }
func (h *hostBuffer) NBytes() int      { return len(h.data) }
func (h *hostBuffer) Raw() []byte      { return h.data }

// gpuBuffer backs CuPy, PyCUDA and Numba arrays.
type gpuBuffer struct {
	lib   Library
	dt    mpi.DType
	count int
	alloc *device.Allocation
}

// NewGPUArray allocates a device array of count elements of dt through lib
// (one of CuPy, PyCUDA, Numba) on gpu.
func NewGPUArray(lib Library, gpu *device.GPU, dt mpi.DType, count int) (DeviceBuffer, error) {
	if !lib.OnGPU() {
		return nil, fmt.Errorf("pybuf: %v is not a GPU library", lib)
	}
	alloc, err := gpu.Malloc(count * dt.Size())
	if err != nil {
		return nil, fmt.Errorf("pybuf: %v allocation: %w", lib, err)
	}
	return &gpuBuffer{lib: lib, dt: dt, count: count, alloc: alloc}, nil
}

func (g *gpuBuffer) Library() Library { return g.lib }
func (g *gpuBuffer) DType() mpi.DType { return g.dt }
func (g *gpuBuffer) Count() int       { return g.count }
func (g *gpuBuffer) NBytes() int      { return g.alloc.Size() }
func (g *gpuBuffer) Raw() []byte      { return g.alloc.Bytes() }
func (g *gpuBuffer) Free() error      { return g.alloc.Free() }

func (g *gpuBuffer) Alloc() *device.Allocation { return g.alloc }

func (g *gpuBuffer) CAI() device.ArrayInterface {
	return device.NewArrayInterface(g.alloc, g.count, typestr(g.dt))
}

// New allocates a buffer of count elements of dt from lib; gpu is required
// for the GPU libraries and ignored otherwise.
func New(lib Library, gpu *device.GPU, dt mpi.DType, count int) (Buffer, error) {
	switch lib {
	case Bytearray:
		if dt != mpi.Uint8 {
			return nil, fmt.Errorf("pybuf: bytearray buffers are uint8, got %v", dt)
		}
		return NewBytearrayBuf(count), nil
	case NumPy:
		return NewNumPy(dt, count), nil
	case CuPy, PyCUDA, Numba:
		if gpu == nil {
			return nil, fmt.Errorf("pybuf: %v requires a GPU", lib)
		}
		return NewGPUArray(lib, gpu, dt, count)
	default:
		return nil, fmt.Errorf("pybuf: unknown library %v", lib)
	}
}

// FillPattern writes a deterministic seed-dependent pattern, for tests.
func FillPattern(b Buffer, seed int) {
	raw := b.Raw()
	for i := range raw {
		raw[i] = byte((seed*131 + i*7 + 13) % 251)
	}
}

// Equal reports whether two buffers hold identical bytes.
func Equal(a, b Buffer) bool {
	ra, rb := a.Raw(), b.Raw()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// SetFloat64 stores v at element i of a float64 buffer.
func SetFloat64(b Buffer, i int, v float64) {
	if b.DType() != mpi.Float64 {
		panic(fmt.Sprintf("pybuf: SetFloat64 on %v buffer", b.DType()))
	}
	binary.LittleEndian.PutUint64(b.Raw()[8*i:], math.Float64bits(v))
}

// GetFloat64 loads element i of a float64 buffer.
func GetFloat64(b Buffer, i int) float64 {
	if b.DType() != mpi.Float64 {
		panic(fmt.Sprintf("pybuf: GetFloat64 on %v buffer", b.DType()))
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b.Raw()[8*i:]))
}
