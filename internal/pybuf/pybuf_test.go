package pybuf

import (
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/mpi"
)

func TestParseLibrary(t *testing.T) {
	for _, name := range []string{"bytearray", "numpy", "cupy", "pycuda", "numba"} {
		lib, err := ParseLibrary(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if lib.String() != name {
			t.Errorf("round trip %q -> %q", name, lib.String())
		}
	}
	if _, err := ParseLibrary("torch"); err == nil {
		t.Error("unknown library should fail")
	}
}

func TestOnGPU(t *testing.T) {
	gpuSet := map[Library]bool{CuPy: true, PyCUDA: true, Numba: true}
	for _, lib := range Libraries() {
		if lib.OnGPU() != gpuSet[lib] {
			t.Errorf("%v.OnGPU() = %v", lib, lib.OnGPU())
		}
	}
	if len(GPULibraries()) != 3 {
		t.Error("three GPU libraries expected")
	}
}

func TestHostBuffers(t *testing.T) {
	ba := NewBytearrayBuf(32)
	if ba.Library() != Bytearray || ba.DType() != mpi.Uint8 || ba.NBytes() != 32 || ba.Count() != 32 {
		t.Errorf("bytearray %v %v %d %d", ba.Library(), ba.DType(), ba.NBytes(), ba.Count())
	}
	np := NewNumPy(mpi.Float64, 10)
	if np.Library() != NumPy || np.NBytes() != 80 || np.Count() != 10 {
		t.Errorf("numpy %v %d %d", np.Library(), np.NBytes(), np.Count())
	}
	// Raw aliases the storage.
	np.Raw()[0] = 0xff
	if np.Raw()[0] != 0xff {
		t.Error("Raw must alias the buffer")
	}
}

func TestGPUBuffersAndCAI(t *testing.T) {
	gpu := device.NewGPU(0, 0)
	for _, lib := range GPULibraries() {
		b, err := NewGPUArray(lib, gpu, mpi.Float32, 16)
		if err != nil {
			t.Fatalf("%v: %v", lib, err)
		}
		if b.Library() != lib || b.NBytes() != 64 {
			t.Errorf("%v: %d bytes", lib, b.NBytes())
		}
		ai := b.CAI()
		if ai.Typestr != "<f4" || ai.Shape[0] != 16 || ai.Data == 0 {
			t.Errorf("%v CAI %+v", lib, ai)
		}
		if b.Alloc().Ptr() != ai.Data {
			t.Error("CAI pointer must match the allocation")
		}
		if err := b.Free(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewGPUArray(NumPy, gpu, mpi.Float32, 1); err == nil {
		t.Error("NumPy is not a GPU library")
	}
}

func TestNewDispatch(t *testing.T) {
	gpu := device.NewGPU(0, 0)
	if _, err := New(Bytearray, nil, mpi.Float64, 4); err == nil {
		t.Error("bytearray must be uint8")
	}
	if _, err := New(CuPy, nil, mpi.Float64, 4); err == nil {
		t.Error("GPU library without GPU must fail")
	}
	b, err := New(CuPy, gpu, mpi.Float64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(DeviceBuffer); !ok {
		t.Error("CuPy buffer should implement DeviceBuffer")
	}
	h, err := New(NumPy, nil, mpi.Int32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.(DeviceBuffer); ok {
		t.Error("NumPy buffer is not a DeviceBuffer")
	}
}

func TestTypestrRoundTrip(t *testing.T) {
	for _, dt := range []mpi.DType{mpi.Uint8, mpi.Int32, mpi.Int64, mpi.Float32, mpi.Float64} {
		ts := typestr(dt)
		back, err := DTypeFromTypestr(ts)
		if err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		if back != dt {
			t.Errorf("%v -> %q -> %v", dt, ts, back)
		}
	}
	if _, err := DTypeFromTypestr("<c16"); err == nil {
		t.Error("unknown typestr should fail")
	}
}

func TestFillPatternAndEqual(t *testing.T) {
	a := NewNumPy(mpi.Uint8, 64)
	b := NewNumPy(mpi.Uint8, 64)
	FillPattern(a, 3)
	FillPattern(b, 3)
	if !Equal(a, b) {
		t.Error("same seed should be equal")
	}
	FillPattern(b, 4)
	if Equal(a, b) {
		t.Error("different seeds should differ")
	}
	if Equal(a, NewNumPy(mpi.Uint8, 32)) {
		t.Error("different lengths are not equal")
	}
}

func TestFloat64Accessors(t *testing.T) {
	b := NewNumPy(mpi.Float64, 8)
	prop := func(i uint8, v float64) bool {
		idx := int(i) % 8
		SetFloat64(b, idx, v)
		return GetFloat64(b, idx) == v || v != v // NaN compares false
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64AccessorsPanicOnWrongDType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SetFloat64(NewNumPy(mpi.Int32, 4), 0, 1)
}
