package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders series as an ASCII line chart with a log2 x-axis (message
// size) and linear or log10 y-axis, approximating the paper's figures well
// enough to eyeball trends and crossovers in a terminal.
type Chart struct {
	Title  string
	Metric string // "latency(us)" or "bandwidth(MB/s)"
	Series []*Series
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	// LogY selects a log10 y-axis, matching the paper's latency figures.
	LogY bool
}

// markers assigned to series in order.
var chartMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// value extracts the plotted metric from a row.
func (c *Chart) value(r Row) float64 {
	if strings.Contains(c.Metric, "bandwidth") {
		return r.MBps
	}
	return r.AvgUs
}

// Render draws the chart.
func (c *Chart) Render() string {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	// Collect the x domain (sizes) and y range.
	sizeSet := map[int]bool{}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, r := range s.Rows {
			sizeSet[r.Size] = true
			v := c.value(r)
			if v < minY {
				minY = v
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if len(sizeSet) == 0 || math.IsInf(minY, 1) {
		return "(empty chart)\n"
	}
	sizes := make([]int, 0, len(sizeSet))
	for sz := range sizeSet {
		sizes = append(sizes, sz)
	}
	sort.Ints(sizes)

	yOf := func(v float64) float64 { return v }
	if c.LogY {
		if minY <= 0 {
			minY = 1e-3
		}
		yOf = func(v float64) float64 {
			if v <= 0 {
				v = 1e-3
			}
			return math.Log10(v)
		}
	}
	lo, hi := yOf(minY), yOf(maxY)
	if hi == lo {
		hi = lo + 1
	}

	xOf := func(size int) int {
		if len(sizes) == 1 {
			return 0
		}
		// log2 spacing across the size domain.
		l := math.Log2(float64(sizes[0]) + 1)
		h := math.Log2(float64(sizes[len(sizes)-1]) + 1)
		f := (math.Log2(float64(size)+1) - l) / (h - l)
		col := int(math.Round(f * float64(width-1)))
		if col < 0 {
			col = 0
		}
		if col > width-1 {
			col = width - 1
		}
		return col
	}
	rowOf := func(v float64) int {
		f := (yOf(v) - lo) / (hi - lo)
		r := int(math.Round(f * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := chartMarkers[si%len(chartMarkers)]
		for _, r := range s.Rows {
			grid[rowOf(c.value(r))][xOf(r.Size)] = marker
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", chartMarkers[si%len(chartMarkers)], s.Name))
	}
	fmt.Fprintf(&sb, "[%s]  %s\n", c.Metric, strings.Join(legend, "  "))

	// y-axis labels on the first, middle and last rows.
	labelAt := func(row int) string {
		f := float64(height-1-row) / float64(height-1)
		v := lo + f*(hi-lo)
		if c.LogY {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%10.2f", v)
	}
	for row := 0; row < height; row++ {
		label := strings.Repeat(" ", 10)
		if row == 0 || row == height-1 || row == height/2 {
			label = labelAt(row)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, grid[row])
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s  %-*s%s\n", strings.Repeat(" ", 10), width-8,
		HumanBytes(sizes[0]), HumanBytes(sizes[len(sizes)-1]))
	return sb.String()
}
