// Package stats provides the small numeric and presentation helpers the
// benchmark suite reports with: per-size result rows, series alignment,
// overhead computation between an OMB-Py series and its OMB baseline, and
// ASCII table rendering in the style of the OSU benchmarks' output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Row is one message-size measurement of a benchmark.
type Row struct {
	Size  int     // message size in bytes
	AvgUs float64 // average latency in microseconds
	MinUs float64
	MaxUs float64
	MBps  float64 // bandwidth in MB/s (bandwidth benchmarks only)
	// MsgRate is the aggregate message rate in messages per second
	// (multi-pair message-rate benchmarks only; omitted from JSON
	// elsewhere so existing fixtures stay byte-stable).
	MsgRate float64 `json:"MsgRate,omitempty"`
	// Overlap-benchmark extras (zero for every other benchmark, and
	// omitted from JSON then so existing fixtures stay byte-stable):
	// pure-communication and injected-compute time per iteration, and the
	// communication/computation overlap percentage.
	CommUs     float64 `json:"CommUs,omitempty"`
	ComputeUs  float64 `json:"ComputeUs,omitempty"`
	OverlapPct float64 `json:"OverlapPct,omitempty"`
}

// Series is a named sequence of rows ordered by size.
type Series struct {
	Name string
	Rows []Row
}

// Get returns the row for a size, if present.
func (s *Series) Get(size int) (Row, bool) {
	for _, r := range s.Rows {
		if r.Size == size {
			return r, true
		}
	}
	return Row{}, false
}

// Sizes returns the sizes present in the series, sorted.
func (s *Series) Sizes() []int {
	out := make([]int, len(s.Rows))
	for i, r := range s.Rows {
		out[i] = r.Size
	}
	sort.Ints(out)
	return out
}

// AvgOverheadUs returns the mean latency overhead of s over base across the
// sizes both series share — the statistic the paper quotes for every figure
// ("OMB-Py latency numbers have an average overhead of 0.44 us ...").
func AvgOverheadUs(s, base *Series) float64 {
	var sum float64
	var n int
	for _, r := range s.Rows {
		if b, ok := base.Get(r.Size); ok {
			sum += r.AvgUs - b.AvgUs
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// AvgBandwidthGapMBps returns the mean bandwidth deficit of s under base.
func AvgBandwidthGapMBps(s, base *Series) float64 {
	var sum float64
	var n int
	for _, r := range s.Rows {
		if b, ok := base.Get(r.Size); ok {
			sum += b.MBps - r.MBps
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MaxOverheadUs returns the largest latency overhead of s over base and the
// size where it occurs.
func MaxOverheadUs(s, base *Series) (float64, int) {
	worst, at := math.Inf(-1), -1
	for _, r := range s.Rows {
		if b, ok := base.Get(r.Size); ok {
			if d := r.AvgUs - b.AvgUs; d > worst {
				worst, at = d, r.Size
			}
		}
	}
	return worst, at
}

// GeoMeanRatio returns the geometric mean of s/base latency ratios.
func GeoMeanRatio(s, base *Series) float64 {
	var logSum float64
	var n int
	for _, r := range s.Rows {
		if b, ok := base.Get(r.Size); ok && b.AvgUs > 0 && r.AvgUs > 0 {
			logSum += math.Log(r.AvgUs / b.AvgUs)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// Table renders one or more series side by side, keyed by size.
type Table struct {
	Title   string
	Metric  string // "latency(us)" or "bandwidth(MB/s)"
	Series  []*Series
	Comment string
}

// Render produces the ASCII table.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "# %s\n", t.Title)
	}
	sizes := map[int]bool{}
	for _, s := range t.Series {
		for _, r := range s.Rows {
			sizes[r.Size] = true
		}
	}
	ordered := make([]int, 0, len(sizes))
	for sz := range sizes {
		ordered = append(ordered, sz)
	}
	sort.Ints(ordered)

	fmt.Fprintf(&sb, "%-12s", "size(B)")
	for _, s := range t.Series {
		fmt.Fprintf(&sb, " %18s", s.Name)
	}
	sb.WriteByte('\n')
	for _, sz := range ordered {
		fmt.Fprintf(&sb, "%-12d", sz)
		for _, s := range t.Series {
			if r, ok := s.Get(sz); ok {
				v := r.AvgUs
				if strings.Contains(t.Metric, "bandwidth") {
					v = r.MBps
				}
				fmt.Fprintf(&sb, " %18.2f", v)
			} else {
				fmt.Fprintf(&sb, " %18s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	if t.Comment != "" {
		fmt.Fprintf(&sb, "## %s\n", t.Comment)
	}
	return sb.String()
}

// HumanBytes renders a byte count in OMB style (1K, 64K, 1M).
func HumanBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PowersOfTwo returns the powers of two in [lo, hi] inclusive.
func PowersOfTwo(lo, hi int) []int {
	var out []int
	for n := 1; n <= hi; n *= 2 {
		if n >= lo {
			out = append(out, n)
		}
		if n > (1<<62)/2 {
			break
		}
	}
	return out
}
