package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkSeries(name string, rows ...Row) *Series {
	return &Series{Name: name, Rows: rows}
}

func TestAvgOverheadUs(t *testing.T) {
	base := mkSeries("c", Row{Size: 1, AvgUs: 1}, Row{Size: 2, AvgUs: 2})
	py := mkSeries("py", Row{Size: 1, AvgUs: 1.5}, Row{Size: 2, AvgUs: 2.7})
	if got := AvgOverheadUs(py, base); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("AvgOverheadUs = %v, want 0.6", got)
	}
}

func TestAvgOverheadSkipsUnsharedSizes(t *testing.T) {
	base := mkSeries("c", Row{Size: 1, AvgUs: 1})
	py := mkSeries("py", Row{Size: 1, AvgUs: 2}, Row{Size: 4, AvgUs: 100})
	if got := AvgOverheadUs(py, base); got != 1 {
		t.Errorf("AvgOverheadUs = %v, want 1 (size 4 unshared)", got)
	}
}

func TestAvgOverheadEmptyIsNaN(t *testing.T) {
	if !math.IsNaN(AvgOverheadUs(mkSeries("a"), mkSeries("b"))) {
		t.Error("disjoint series should give NaN")
	}
}

func TestMaxOverheadUs(t *testing.T) {
	base := mkSeries("c", Row{Size: 1, AvgUs: 1}, Row{Size: 2, AvgUs: 1}, Row{Size: 4, AvgUs: 1})
	py := mkSeries("py", Row{Size: 1, AvgUs: 2}, Row{Size: 2, AvgUs: 5}, Row{Size: 4, AvgUs: 3})
	worst, at := MaxOverheadUs(py, base)
	if worst != 4 || at != 2 {
		t.Errorf("MaxOverheadUs = (%v, %v), want (4, 2)", worst, at)
	}
}

func TestBandwidthGap(t *testing.T) {
	base := mkSeries("c", Row{Size: 1, MBps: 100}, Row{Size: 2, MBps: 200})
	py := mkSeries("py", Row{Size: 1, MBps: 80}, Row{Size: 2, MBps: 150})
	if got := AvgBandwidthGapMBps(py, base); got != 35 {
		t.Errorf("gap = %v, want 35", got)
	}
}

func TestGeoMeanRatio(t *testing.T) {
	base := mkSeries("c", Row{Size: 1, AvgUs: 1}, Row{Size: 2, AvgUs: 4})
	py := mkSeries("py", Row{Size: 1, AvgUs: 2}, Row{Size: 2, AvgUs: 8})
	if got := GeoMeanRatio(py, base); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMeanRatio = %v, want 2", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Metric: "latency(us)",
		Series: []*Series{
			mkSeries("A", Row{Size: 1, AvgUs: 1.25}, Row{Size: 8, AvgUs: 2}),
			mkSeries("B", Row{Size: 8, AvgUs: 3}),
		},
	}
	out := tab.Render()
	for _, want := range []string{"# demo", "A", "B", "1.25", "3.00", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
	// Bandwidth metric switches the rendered column.
	bw := Table{Metric: "bandwidth(MB/s)", Series: []*Series{
		mkSeries("A", Row{Size: 1, AvgUs: 9, MBps: 123.45}),
	}}
	if !strings.Contains(bw.Render(), "123.45") {
		t.Error("bandwidth table should render MBps")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int]string{
		0: "0", 1: "1", 1023: "1023", 1024: "1K", 64 * 1024: "64K",
		1 << 20: "1M", 4 << 20: "4M", 1536: "1536",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(1, 8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("PowersOfTwo(1,8) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo(1,8) = %v", got)
		}
	}
	if got := PowersOfTwo(3, 8); len(got) != 2 || got[0] != 4 {
		t.Errorf("PowersOfTwo(3,8) = %v", got)
	}
	if got := PowersOfTwo(9, 8); got != nil {
		t.Errorf("empty range should be nil, got %v", got)
	}
}

func TestSeriesSizesSorted(t *testing.T) {
	prop := func(sizesRaw []uint16) bool {
		s := &Series{}
		for _, v := range sizesRaw {
			s.Rows = append(s.Rows, Row{Size: int(v)})
		}
		sizes := s.Sizes()
		for i := 1; i < len(sizes); i++ {
			if sizes[i-1] > sizes[i] {
				return false
			}
		}
		return len(sizes) == len(sizesRaw)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
