package stats

import (
	"strings"
	"testing"
)

func chartSeries() []*Series {
	a := &Series{Name: "OMB"}
	b := &Series{Name: "OMB-Py"}
	for n := 1; n <= 8192; n *= 2 {
		a.Rows = append(a.Rows, Row{Size: n, AvgUs: 1 + float64(n)/1000, MBps: float64(n)})
		b.Rows = append(b.Rows, Row{Size: n, AvgUs: 1.5 + float64(n)/1000, MBps: float64(n) * 0.8})
	}
	return []*Series{a, b}
}

func TestChartRenderBasics(t *testing.T) {
	ch := Chart{
		Title:  "demo chart",
		Metric: "latency(us)",
		Series: chartSeries(),
	}
	out := ch.Render()
	for _, want := range []string{"demo chart", "*=OMB", "o=OMB-Py", "|", "+", "8K"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart misses %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + legend + 16 rows + axis + x labels
	if len(lines) != 2+16+2 {
		t.Errorf("chart has %d lines", len(lines))
	}
	if !strings.ContainsAny(out, "*o") {
		t.Error("no markers plotted")
	}
}

func TestChartLogY(t *testing.T) {
	ch := Chart{Metric: "latency(us)", Series: chartSeries(), LogY: true}
	out := ch.Render()
	if !strings.Contains(out, "|") {
		t.Fatalf("log chart failed:\n%s", out)
	}
}

func TestChartBandwidthMetric(t *testing.T) {
	ch := Chart{Metric: "bandwidth(MB/s)", Series: chartSeries(), Height: 8, Width: 40}
	out := ch.Render()
	if !strings.Contains(out, "8192.00") {
		t.Errorf("bandwidth top label missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := Chart{Metric: "latency(us)"}
	if got := ch.Render(); !strings.Contains(got, "empty") {
		t.Errorf("empty chart rendered %q", got)
	}
}

func TestChartSingleSize(t *testing.T) {
	s := &Series{Name: "one", Rows: []Row{{Size: 64, AvgUs: 5}}}
	ch := Chart{Metric: "latency(us)", Series: []*Series{s}}
	out := ch.Render() // must not panic or divide by zero
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}
