package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/vtime"
)

// Report is the outcome of one benchmark run.
type Report struct {
	Options Options
	Series  stats.Series
}

// Run executes one benchmark configuration and returns its per-size series.
// The run is deterministic: identical options yield identical numbers.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	cluster, err := topology.ByName(opts.Cluster)
	if err != nil {
		return nil, err
	}
	place, err := topology.NewPlacement(cluster, opts.Ranks, opts.PPN, topology.Block, opts.UseGPU)
	if err != nil {
		return nil, err
	}
	model, err := netmodel.New(cluster, opts.Impl)
	if err != nil {
		return nil, err
	}
	algorithms, err := opts.mpiAlgorithms()
	if err != nil {
		return nil, err
	}
	engine, err := opts.engine()
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(mpi.Config{
		Placement:  place,
		Model:      model,
		Engine:     engine,
		PyMode:     opts.Mode != ModeC,
		CarryData:  !opts.TimingOnly,
		Tuning:     opts.Tuning,
		Algorithms: algorithms,
	})
	if err != nil {
		return nil, err
	}

	sizes := stats.PowersOfTwo(opts.MinSize, opts.MaxSize)
	if len(opts.Sizes) > 0 {
		sizes = append([]int(nil), opts.Sizes...)
	}
	if opts.Benchmark == Barrier {
		sizes = []int{0}
	}
	report := &Report{Options: opts}
	var mu sync.Mutex // guards report.Series (rank 0 appends per size)

	err = world.Run(func(p *mpi.Proc) error {
		c := p.CommWorld()
		o, err := newOps(opts, c)
		if err != nil {
			return err
		}
		defer o.teardown()
		for _, size := range sizes {
			sf, rf := buffersFor(opts.Benchmark, c.Size())
			if err := o.setup(size, sf, rf); err != nil {
				return err
			}
			// Isolate sizes from each other: after a collective barrier the
			// ranks rewind their clocks and wire-busy state to zero, so each
			// row depends only on the configuration and the size — clock
			// skew from the previous size's loop and aggregation traffic
			// cannot leak into this one.
			if err := o.barrier(); err != nil {
				return err
			}
			p.ResetClock()
			row, err := runSize(opts, o, size)
			if err != nil {
				return fmt.Errorf("size %d: %w", size, err)
			}
			if c.Rank() == 0 {
				mu.Lock()
				report.Series.Rows = append(report.Series.Rows, row)
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	report.Series.Name = seriesName(opts)
	return report, nil
}

func seriesName(o Options) string {
	name := o.Mode.String()
	if o.Mode != ModeC {
		name += "/" + o.Buffer.String()
	}
	return name
}

// iterCounts returns the loop counts for a size, following OMB's reduced
// iteration counts for large messages.
func iterCounts(o Options, size int) (iters, warmup int) {
	if size >= o.LargeThreshold {
		return o.LargeIters, o.LargeWarmup
	}
	return o.Iters, o.Warmup
}

// runSize runs the configured benchmark body for one message size and
// returns rank 0's aggregated row (other ranks return a zero row).
func runSize(opts Options, o *ops, size int) (stats.Row, error) {
	iters, warmup := iterCounts(opts, size)
	switch opts.Benchmark {
	case Latency:
		return runLatency(o, size, iters, warmup)
	case Bandwidth:
		return runBandwidth(o, size, iters, warmup, opts.Window)
	case BiBandwidth:
		return runBiBandwidth(o, size, iters, warmup, opts.Window)
	case MultiLatency:
		return runMultiLatency(o, size, iters, warmup)
	default:
		if opts.Benchmark.Kind() == KindOverlap {
			return runOverlap(o, opts.Benchmark, size, iters, warmup)
		}
		return runCollective(o, opts.Benchmark, size, iters, warmup)
	}
}

// runLatency is the ping-pong of the paper's Algorithm 1: rank 0 sends and
// waits for the echo; rank 1 echoes. One-way latency is the averaged
// round-trip halved.
func runLatency(o *ops, size, iters, warmup int) (stats.Row, error) {
	c := o.c
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = c.Proc().Wtime()
		}
		if c.Rank() == 0 {
			if err := o.send(1, 1); err != nil {
				return stats.Row{}, err
			}
			if err := o.recv(1, 1); err != nil {
				return stats.Row{}, err
			}
		} else {
			if err := o.recv(0, 1); err != nil {
				return stats.Row{}, err
			}
			if err := o.send(0, 1); err != nil {
				return stats.Row{}, err
			}
		}
	}
	lat := float64(c.Proc().Wtime()-start) / float64(2*iters)
	return reduceRow(c, size, lat, 0)
}

// runBandwidth: rank 0 streams a window of messages, rank 1 acknowledges
// the window with a 4-byte message, as osu_bw does.
func runBandwidth(o *ops, size, iters, warmup, window int) (stats.Row, error) {
	c := o.c
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = c.Proc().Wtime()
		}
		if c.Rank() == 0 {
			for w := 0; w < window; w++ {
				if err := o.send(1, 2); err != nil {
					return stats.Row{}, err
				}
			}
			if err := o.ackRecv(1); err != nil {
				return stats.Row{}, err
			}
		} else {
			for w := 0; w < window; w++ {
				if err := o.recv(0, 2); err != nil {
					return stats.Row{}, err
				}
			}
			if err := o.ackSend(0); err != nil {
				return stats.Row{}, err
			}
		}
	}
	elapsed := float64(c.Proc().Wtime() - start) // us
	mbps := float64(size*window*iters) / elapsed
	row, err := reduceRow(c, size, elapsed/float64(iters), mbps)
	return row, err
}

// runBiBandwidth exchanges windows in both directions simultaneously.
func runBiBandwidth(o *ops, size, iters, warmup, window int) (stats.Row, error) {
	c := o.c
	peer := 1 - c.Rank()
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = c.Proc().Wtime()
		}
		for w := 0; w < window; w++ {
			if err := o.exchange(peer); err != nil {
				return stats.Row{}, err
			}
		}
		if c.Rank() == 0 {
			if err := o.ackRecv(1); err != nil {
				return stats.Row{}, err
			}
		} else if err := o.ackSend(0); err != nil {
			return stats.Row{}, err
		}
	}
	elapsed := float64(c.Proc().Wtime() - start)
	mbps := float64(2*size*window*iters) / elapsed
	return reduceRow(c, size, elapsed/float64(iters), mbps)
}

// runMultiLatency: ranks pair up (r, r+p/2) and ping-pong concurrently; the
// reported latency is averaged over pairs, as osu_multi_lat does.
func runMultiLatency(o *ops, size, iters, warmup int) (stats.Row, error) {
	c := o.c
	p := c.Size()
	half := p / 2
	var peer int
	sender := c.Rank() < half
	if sender {
		peer = c.Rank() + half
	} else {
		peer = c.Rank() - half
	}
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = c.Proc().Wtime()
		}
		if sender {
			if err := o.send(peer, 3); err != nil {
				return stats.Row{}, err
			}
			if err := o.recv(peer, 3); err != nil {
				return stats.Row{}, err
			}
		} else {
			if err := o.recv(peer, 3); err != nil {
				return stats.Row{}, err
			}
			if err := o.send(peer, 3); err != nil {
				return stats.Row{}, err
			}
		}
	}
	lat := float64(c.Proc().Wtime()-start) / float64(2*iters)
	return reduceRow(c, size, lat, 0)
}

// runCollective times the operation per iteration and averages, then
// reduces avg/min/max across ranks, following the OMB collective pipeline
// the paper describes in Section III-C.
func runCollective(o *ops, b Benchmark, size, iters, warmup int) (stats.Row, error) {
	c := o.c
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	var elapsed vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		t0 := c.Proc().Wtime()
		if err := o.collective(b); err != nil {
			return stats.Row{}, err
		}
		if i >= warmup {
			elapsed += c.Proc().Wtime() - t0
		}
	}
	lat := float64(elapsed) / float64(iters)
	return reduceRow(c, size, lat, 0)
}

// runOverlap is the osu_iallreduce-style overlap benchmark. Phase one
// measures the pure post+Wait latency of the nonblocking collective. Phase
// two calibrates a per-rank virtual compute block to that latency (OSU's
// dummy_compute calibration) and times post → compute → Wait. The row
// reports the total time (avg/min/max across ranks), the pure-communication
// and compute times, and the overlap percentage
//
//	overlap% = 100 * (1 - (t_total - t_compute) / t_pure)
//
// clamped to [0, 100]: 100 means the compute fully hid the communication,
// 0 means they serialized. Everything is virtual time, so the numbers are
// deterministic across runs and under parallel sweeps.
func runOverlap(o *ops, b Benchmark, size, iters, warmup int) (stats.Row, error) {
	c := o.c
	p := c.Proc()
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	// Phase 1: pure communication.
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = p.Wtime()
		}
		req, err := o.icollective(b)
		if err != nil {
			return stats.Row{}, err
		}
		if _, err := req.Wait(); err != nil {
			return stats.Row{}, err
		}
	}
	pureUs := float64(p.Wtime()-start) / float64(iters)
	// Per-rank calibrated compute block: the rank's own mean pure latency.
	computeBlock := vtime.Micros(pureUs)
	// Phase 2: post, inject compute, Wait.
	if err := o.barrier(); err != nil {
		return stats.Row{}, err
	}
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = p.Wtime()
		}
		req, err := o.icollective(b)
		if err != nil {
			return stats.Row{}, err
		}
		o.compute(computeBlock)
		if _, err := req.Wait(); err != nil {
			return stats.Row{}, err
		}
	}
	totalUs := float64(p.Wtime()-start) / float64(iters)
	computeUs := float64(computeBlock)
	overlap := 0.0
	if pureUs > 0 {
		overlap = 100 * (1 - (totalUs-computeUs)/pureUs)
		overlap = math.Max(0, math.Min(100, overlap))
	}
	row, err := reduceRow(c, size, totalUs, 0)
	if err != nil {
		return stats.Row{}, err
	}
	// Second aggregation round: rank averages of the pure-communication
	// time, the injected compute and the overlap percentage.
	sums := make([]byte, 24)
	self := mpi.EncodeFloat64s([]float64{pureUs, computeUs, overlap})
	if err := c.Reduce(self, sums, mpi.Float64, mpi.OpSum, 0); err != nil {
		return stats.Row{}, err
	}
	if c.Rank() != 0 {
		return stats.Row{}, nil
	}
	v := mpi.DecodeFloat64s(sums)
	np := float64(c.Size())
	row.CommUs, row.ComputeUs, row.OverlapPct = v[0]/np, v[1]/np, v[2]/np
	return row, nil
}

// exchange is the bidirectional transfer of the bibw test.
func (o *ops) exchange(peer int) error {
	switch o.opts.Mode {
	case ModeC:
		if o.opts.TimingOnly {
			_, err := o.c.SendrecvN(nil, o.n, peer, 4, nil, o.n, peer, 4)
			return err
		}
		_, err := o.c.Sendrecv(o.sraw, peer, 4, o.rraw[:o.n], peer, 4)
		return err
	case ModePy:
		if o.opts.TimingOnly {
			if err := o.py.SendSpec(o.spec(), peer, 4); err != nil {
				return err
			}
			_, err := o.py.RecvSpec(o.spec(), peer, 4)
			return err
		}
		_, err := o.py.Sendrecv(o.sbuf, peer, 4, o.rbuf, peer, 4)
		return err
	default:
		if err := o.send(peer, 4); err != nil {
			return err
		}
		return o.recv(peer, 4)
	}
}

// fuseRowReduce selects the single-message row aggregation; the test that
// proves fusion leaves every reported number unchanged flips it to compare
// against the legacy three-reduce path.
var fuseRowReduce = true

// reduceRow aggregates the local latency across ranks: average of averages,
// global min and max. Aggregation runs on the raw runtime (outside the
// timed section, like OMB's MPI_Reduce of elapsed times) as one 3-element
// vector reduce with the fused min/sum/max operator — one message round
// where the legacy path took three. Sizes are clock-isolated (see Run), so
// the aggregation protocol cannot affect any reported latency; the legacy
// path is kept only for the test asserting exactly that.
func reduceRow(c *mpi.Comm, size int, localLat, mbps float64) (stats.Row, error) {
	if !fuseRowReduce {
		return reduceRowUnfused(c, size, localLat, mbps)
	}
	out := make([]byte, 24)
	self := mpi.EncodeFloat64s([]float64{localLat, localLat, localLat})
	if err := c.Reduce(self, out, mpi.Float64, mpi.OpMinSumMax, 0); err != nil {
		return stats.Row{}, err
	}
	if c.Rank() != 0 {
		return stats.Row{}, nil
	}
	vals := mpi.DecodeFloat64s(out)
	return stats.Row{
		Size:  size,
		AvgUs: vals[1] / float64(c.Size()),
		MinUs: vals[0],
		MaxUs: vals[2],
		MBps:  mbps,
	}, nil
}

// reduceRowUnfused is the legacy three-round aggregation.
func reduceRowUnfused(c *mpi.Comm, size int, localLat, mbps float64) (stats.Row, error) {
	avg := make([]byte, 8)
	minv := make([]byte, 8)
	maxv := make([]byte, 8)
	self := mpi.EncodeFloat64s([]float64{localLat})
	if err := c.Reduce(self, avg, mpi.Float64, mpi.OpSum, 0); err != nil {
		return stats.Row{}, err
	}
	if err := c.Reduce(self, minv, mpi.Float64, mpi.OpMin, 0); err != nil {
		return stats.Row{}, err
	}
	if err := c.Reduce(self, maxv, mpi.Float64, mpi.OpMax, 0); err != nil {
		return stats.Row{}, err
	}
	if c.Rank() != 0 {
		return stats.Row{}, nil
	}
	return stats.Row{
		Size:  size,
		AvgUs: mpi.DecodeFloat64s(avg)[0] / float64(c.Size()),
		MinUs: mpi.DecodeFloat64s(minv)[0],
		MaxUs: mpi.DecodeFloat64s(maxv)[0],
		MBps:  mbps,
	}, nil
}
