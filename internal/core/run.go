package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Report is the outcome of one benchmark run.
type Report struct {
	Options Options
	Series  stats.Series
	// Failure is the structured fault outcome of a run whose world failed
	// under the fault plan (Options.Faults); nil for a clean run. The rows
	// completed before the failure stay in Series.
	Failure *Failure
}

// Failure is the report-level view of a fault-plan failure: which rank the
// plan killed (or which survivor observed the failure), where, and when.
type Failure struct {
	// Code is "MPI_ERR_PROC_FAILED" for a survivor's observation and
	// "RANK_KILLED" when the run's first classified error is the killed
	// rank's own terminal error.
	Code string `json:"code"`
	// Rank is the rank the error was observed on.
	Rank int `json:"rank"`
	// Failed lists the dead ranks (the killed rank itself for RANK_KILLED).
	Failed []int `json:"failed"`
	// Collective and Step locate the blocked operation; Step is -1 for
	// point-to-point operations.
	Collective string `json:"collective,omitempty"`
	Step       int    `json:"step"`
	// TimeUs is the observing rank's virtual clock, microseconds.
	TimeUs float64 `json:"time_us"`
	// Message is the underlying error text.
	Message string `json:"message"`
}

// classifyFailure maps a world error to its structured report row; nil when
// the error is neither a fault-plan nor a cancellation outcome.
func classifyFailure(err error) *Failure {
	var killed *mpi.RankKilledError
	if errors.As(err, &killed) {
		return &Failure{
			Code: "RANK_KILLED", Rank: killed.Rank, Failed: []int{killed.Rank},
			Collective: string(killed.Collective), Step: -1,
			TimeUs: float64(killed.Time), Message: err.Error(),
		}
	}
	var failed *mpi.RankFailedError
	if errors.As(err, &failed) {
		return &Failure{
			Code: failed.Code, Rank: failed.Rank, Failed: failed.Failed,
			Collective: string(failed.Collective), Step: failed.Step,
			TimeUs: float64(failed.Time), Message: err.Error(),
		}
	}
	var canceled *mpi.CanceledError
	if errors.As(err, &canceled) {
		code := "canceled"
		if canceled.Timeout() {
			code = "timeout"
		}
		return &Failure{
			Code: code, Rank: canceled.Rank, Failed: []int{},
			Collective: string(canceled.Collective), Step: canceled.Step,
			TimeUs: float64(canceled.Time), Message: err.Error(),
		}
	}
	return nil
}

// defaultRunTimeout is the process-wide per-run deadline applied by
// RunContext on top of whatever context the caller passes (the earliest
// deadline wins); zero means no budget. The CLIs' -timeout flag sets it.
var defaultRunTimeout time.Duration

// SetDefaultTimeout installs the process-wide simulation time budget: every
// Run (including the ones experiments issue internally) is canceled after d
// and reports a `timeout` failure in Report.Failure instead of running on.
// It is meant to be called once at CLI startup, before any Run.
func SetDefaultTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	defaultRunTimeout = d
}

// Run executes one benchmark configuration and returns its per-size series.
// The run is deterministic: identical options yield identical numbers.
// The workload itself comes from the benchmark registry: the loop sizes the
// buffers from the spec's scaling, isolates each size, and calls the spec's
// body — there is no per-benchmark dispatch here.
func Run(opts Options) (*Report, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: when ctx is canceled or times out,
// the simulation stops promptly on both engines and the outcome is
// classified in Report.Failure (code "canceled" or "timeout") exactly like
// a fault-plan failure — the rows completed before the cancel stay in the
// report, and the world's cross-run pools remain reusable. The process-wide
// SetDefaultTimeout budget, when set, is layered on top of ctx (the
// earliest deadline wins).
func RunContext(ctx context.Context, opts Options) (*Report, error) {
	if defaultRunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, defaultRunTimeout)
		defer cancel()
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	spec := opts.Benchmark.spec() // non-nil: validate resolved the name
	cluster, err := topology.ByName(opts.Cluster)
	if err != nil {
		return nil, err
	}
	place, err := topology.NewPlacement(cluster, opts.Ranks, opts.PPN, topology.Block, opts.UseGPU)
	if err != nil {
		return nil, err
	}
	model, err := netmodel.New(cluster, opts.Impl)
	if err != nil {
		return nil, err
	}
	algorithms, err := opts.mpiAlgorithms()
	if err != nil {
		return nil, err
	}
	engine, err := opts.engine()
	if err != nil {
		return nil, err
	}
	plan, err := faults.Parse(opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("core: -faults: %w", err)
	}
	world, err := mpi.NewWorld(mpi.Config{
		Placement:        place,
		Model:            model,
		Engine:           engine,
		PyMode:           opts.Mode != ModeC,
		CarryData:        !opts.TimingOnly,
		Tuning:           opts.Tuning,
		Algorithms:       algorithms,
		DisableFold:      opts.NoFold,
		DisableSchedFold: opts.NoSchedFold,
		Faults:           plan,
	})
	if err != nil {
		return nil, err
	}
	// The world is sweep-local: hand its slabs back for the next sweep's
	// same-sized world once this one is done.
	defer world.Release()

	sizes := stats.PowersOfTwo(opts.MinSize, opts.MaxSize)
	if len(opts.Sizes) > 0 {
		sizes = append([]int(nil), opts.Sizes...)
	}
	if len(spec.FixedSizes) > 0 {
		sizes = append([]int(nil), spec.FixedSizes...)
	}
	report := &Report{Options: opts}
	var mu sync.Mutex // guards report.Series (rank 0 appends per size)

	// Per-rank state comes from one slab: a heap-allocated ops and a fresh
	// Bench per size add three allocations per rank per run, which at
	// thousands of ranks is a visible slice of the sweep's allocation bill.
	// The slab itself is recycled across sweeps (takeRankStates) for the
	// same reason the mpi slabs are: a huge-world benchmark iteration
	// otherwise pays tens of MB of page faults and garbage per run.
	states := takeRankStates(opts.Ranks)
	defer putRankStates(states)

	err = world.RunContext(ctx, func(p *mpi.Proc) error {
		c := p.CommWorld()
		st := &states[c.Rank()]
		o := &st.o
		if err := newOps(o, opts, c); err != nil {
			return err
		}
		defer o.teardown()
		for _, size := range sizes {
			sf, rf := spec.buffers(c.Size())
			if err := o.setup(size, sf, rf); err != nil {
				return err
			}
			// Isolate sizes from each other: after a collective barrier the
			// ranks rewind their clocks and wire-busy state to zero, so each
			// row depends only on the configuration and the size — clock
			// skew from the previous size's loop and aggregation traffic
			// cannot leak into this one.
			if err := o.barrier(); err != nil {
				return err
			}
			p.ResetClock()
			iters, warmup := iterCounts(opts, size)
			st.b = Bench{opts: opts, o: o, size: size, iters: iters, warmup: warmup, proc: p}
			row, err := spec.Body(&st.b)
			if err != nil {
				return fmt.Errorf("size %d: %w", size, err)
			}
			if c.Rank() == 0 {
				mu.Lock()
				report.Series.Rows = append(report.Series.Rows, row)
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		// A fault-plan failure or a cancellation is a classified outcome,
		// not an abort: the report keeps the rows completed before the
		// failure and carries the structured failure row.
		if f := classifyFailure(err); f != nil {
			report.Failure = f
			report.Series.Name = seriesName(opts)
			return report, nil
		}
		return nil, err
	}
	report.Series.Name = seriesName(opts)
	return report, nil
}

// rankState is one rank's benchmark-loop state; Run draws the per-sweep
// slab of them from a single-slot cross-sweep pool.
type rankState struct {
	o ops
	b Bench
}

var rankStatePool struct {
	mu   sync.Mutex
	slab []rankState
}

// takeRankStates returns a zeroed rank-state slab of length n, recycling
// the retained one when the size matches.
func takeRankStates(n int) []rankState {
	rankStatePool.mu.Lock()
	slab := rankStatePool.slab
	if len(slab) == n {
		rankStatePool.slab = nil
	} else {
		slab = nil
	}
	rankStatePool.mu.Unlock()
	if slab == nil {
		return make([]rankState, n)
	}
	clear(slab)
	return slab
}

func putRankStates(slab []rankState) {
	rankStatePool.mu.Lock()
	rankStatePool.slab = slab
	rankStatePool.mu.Unlock()
}

func seriesName(o Options) string {
	name := o.Mode.String()
	if o.Mode != ModeC {
		name += "/" + o.Buffer.String()
	}
	return name
}

// iterCounts returns the loop counts for a size, following OMB's reduced
// iteration counts for large messages.
func iterCounts(o Options, size int) (iters, warmup int) {
	if size >= o.LargeThreshold {
		return o.LargeIters, o.LargeWarmup
	}
	return o.Iters, o.Warmup
}

// fuseRowReduce selects the single-message row aggregation; the test that
// proves fusion leaves every reported number unchanged flips it to compare
// against the legacy three-reduce path.
var fuseRowReduce = true

// reduceRow aggregates the local latency across ranks: average of averages,
// global min and max. Aggregation runs on the raw runtime (outside the
// timed section, like OMB's MPI_Reduce of elapsed times) as one 3-element
// vector reduce with the fused min/sum/max operator — one message round
// where the legacy path took three. Sizes are clock-isolated (see Run), so
// the aggregation protocol cannot affect any reported latency; the legacy
// path is kept only for the test asserting exactly that.
func reduceRow(o *ops, size int, localLat, mbps float64) (stats.Row, error) {
	c := o.c
	if !fuseRowReduce {
		return reduceRowUnfused(c, size, localLat, mbps)
	}
	self, out := o.rowBuf[:24], o.rowBuf[24:48]
	bits := math.Float64bits(localLat)
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(self[8*i:], bits)
	}
	if err := c.Reduce(self, out, mpi.Float64, mpi.OpMinSumMax, 0); err != nil {
		return stats.Row{}, err
	}
	if c.Rank() != 0 {
		return stats.Row{}, nil
	}
	vals := mpi.DecodeFloat64s(out)
	return stats.Row{
		Size:  size,
		AvgUs: vals[1] / float64(c.Size()),
		MinUs: vals[0],
		MaxUs: vals[2],
		MBps:  mbps,
	}, nil
}

// reduceRowUnfused is the legacy three-round aggregation.
func reduceRowUnfused(c *mpi.Comm, size int, localLat, mbps float64) (stats.Row, error) {
	avg := make([]byte, 8)
	minv := make([]byte, 8)
	maxv := make([]byte, 8)
	self := mpi.EncodeFloat64s([]float64{localLat})
	if err := c.Reduce(self, avg, mpi.Float64, mpi.OpSum, 0); err != nil {
		return stats.Row{}, err
	}
	if err := c.Reduce(self, minv, mpi.Float64, mpi.OpMin, 0); err != nil {
		return stats.Row{}, err
	}
	if err := c.Reduce(self, maxv, mpi.Float64, mpi.OpMax, 0); err != nil {
		return stats.Row{}, err
	}
	if c.Rank() != 0 {
		return stats.Row{}, nil
	}
	return stats.Row{
		Size:  size,
		AvgUs: mpi.DecodeFloat64s(avg)[0] / float64(c.Size()),
		MinUs: mpi.DecodeFloat64s(minv)[0],
		MaxUs: mpi.DecodeFloat64s(maxv)[0],
		MBps:  mbps,
	}, nil
}
