package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/pybuf"
)

func TestReportJSONSchema(t *testing.T) {
	rep, err := Run(quickOpts(Latency, ModePy))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Benchmark string `json:"benchmark"`
		Cluster   string `json:"cluster"`
		Mode      string `json:"mode"`
		Buffer    string `json:"buffer"`
		Rows      []struct {
			Size  int     `json:"size"`
			AvgUs float64 `json:"avg_us"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Benchmark != "latency" || decoded.Mode != "omb-py" || decoded.Buffer != "numpy" {
		t.Errorf("decoded %+v", decoded)
	}
	if len(decoded.Rows) != len(rep.Series.Rows) {
		t.Errorf("rows %d vs %d", len(decoded.Rows), len(rep.Series.Rows))
	}
	if decoded.Rows[0].AvgUs <= 0 {
		t.Error("row latency missing")
	}
}

func TestReportJSONOmitsBufferInCMode(t *testing.T) {
	rep, err := Run(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"buffer"`) {
		t.Errorf("C-mode report should omit buffer: %s", raw)
	}
}

func TestReportText(t *testing.T) {
	rep, err := Run(quickOpts(Latency, ModePy))
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Text()
	for _, want := range []string{"latency", "omb-py", "Avg(us)", "8K"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report misses %q:\n%s", want, out)
		}
	}
	// Bandwidth reports render MB/s.
	bw, err := Run(quickOpts(Bandwidth, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bw.Text(), "Bandwidth(MB/s)") {
		t.Error("bandwidth text report misses the MB/s column")
	}
}

func TestBiBandwidthExceedsBandwidth(t *testing.T) {
	uni, err := Run(quickOpts(Bandwidth, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	bi, err := Run(quickOpts(BiBandwidth, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	// At the largest size, bidirectional throughput must beat
	// unidirectional (both directions share virtual wires independently).
	last := uni.Series.Rows[len(uni.Series.Rows)-1]
	biLast, ok := bi.Series.Get(last.Size)
	if !ok {
		t.Fatal("size missing")
	}
	if biLast.MBps <= last.MBps {
		t.Errorf("bibw %v MB/s not above bw %v MB/s", biLast.MBps, last.MBps)
	}
}

func TestMultiLatencyNearPairLatency(t *testing.T) {
	pair, err := Run(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts(MultiLatency, ModeC)
	opts.Ranks, opts.PPN = 8, 4 // 4 concurrent pairs, senders and receivers split across nodes
	multi, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range multi.Series.Rows {
		p, ok := pair.Series.Get(r.Size)
		if !ok {
			continue
		}
		// Pairs run independent virtual wires; latency should stay within
		// a small factor of the 2-rank case.
		if r.AvgUs > 3*p.AvgUs+1 {
			t.Errorf("size %d: multi-pair latency %v way above pair latency %v", r.Size, r.AvgUs, p.AvgUs)
		}
	}
}

func TestGPUCollectiveRuns(t *testing.T) {
	opts := Options{
		Benchmark: Allgather, Mode: ModePy, Buffer: pybuf.CuPy,
		Cluster: "bridges2", UseGPU: true, Ranks: 16, PPN: 8,
		MinSize: 8, MaxSize: 4096, Iters: 5, Warmup: 1,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series.Rows) == 0 {
		t.Fatal("empty series")
	}
}

func TestBarrierSingleRow(t *testing.T) {
	opts := quickOpts(Barrier, ModeC)
	opts.Ranks, opts.PPN = 8, 4
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series.Rows) != 1 || rep.Series.Rows[0].Size != 0 {
		t.Errorf("barrier rows %+v", rep.Series.Rows)
	}
	if rep.Series.Rows[0].AvgUs <= 0 {
		t.Error("barrier latency missing")
	}
}

func TestIterCounts(t *testing.T) {
	o := Options{Iters: 100, Warmup: 10, LargeThreshold: 8192, LargeIters: 20, LargeWarmup: 2}
	if it, wu := iterCounts(o, 1024); it != 100 || wu != 10 {
		t.Errorf("small counts %d/%d", it, wu)
	}
	if it, wu := iterCounts(o, 8192); it != 20 || wu != 2 {
		t.Errorf("large counts %d/%d", it, wu)
	}
}

func TestSeriesName(t *testing.T) {
	if got := seriesName(Options{Mode: ModeC}); got != "omb-c" {
		t.Errorf("seriesName C = %q", got)
	}
	if got := seriesName(Options{Mode: ModePy, Buffer: pybuf.CuPy}); got != "omb-py/cupy" {
		t.Errorf("seriesName py = %q", got)
	}
}
