package core

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// Fault-scenario benchmark family: the registry collectives re-run under a
// mandatory fault plan (Options.Faults / the CLIs' -faults flag). A
// scenario is the collective latency pipeline unchanged — under noise or
// jitter it reports perturbed-but-deterministic rows, and under a kill
// plan the run terminates with a structured Report.Failure instead of a
// hang, which is exactly what the family exists to demonstrate and pin.

// Fault-scenario benchmarks.
const (
	FaultAllreduce Benchmark = "fault_allreduce"
	FaultBcast     Benchmark = "fault_bcast"
	FaultAlltoall  Benchmark = "fault_alltoall"
	FaultBarrier   Benchmark = "fault_barrier"
)

const groupFault = "fault scenarios (-faults required)"

// requireFaults is the family's validation hook: a fault scenario without
// a plan is a configuration error, not a silent clean run.
func requireFaults(o Options) error {
	if o.Faults == "" {
		return fmt.Errorf("core: %s needs a fault plan (-faults \"kill:rank=1,after=2:allreduce\" or \"noise:sigma=5us\")", o.Benchmark)
	}
	return nil
}

// faultBody runs the underlying collective's latency pipeline; the fault
// plan does its work inside the runtime.
func faultBody(under Benchmark) func(*Bench) (stats.Row, error) {
	return func(b *Bench) (stats.Row, error) { return runCollective(b, under) }
}

func init() {
	fault := func(name Benchmark, under Benchmark, summary string, s BenchmarkSpec) {
		s.Name, s.Summary = name, summary
		s.Kind, s.Group, s.MinRanks = KindCollective, groupFault, 2
		s.Modes = []Mode{ModeC}
		s.Validate = requireFaults
		s.Body = faultBody(under)
		RegisterBenchmark(s)
	}
	fault(FaultAllreduce, Allreduce, "MPI_Allreduce under a fault plan", BenchmarkSpec{
		Algo: mpi.CollAllreduce, Reduces: true,
	})
	fault(FaultBcast, Bcast, "MPI_Bcast under a fault plan", BenchmarkSpec{
		Algo: mpi.CollBcast,
	})
	fault(FaultAlltoall, Alltoall, "MPI_Alltoall under a fault plan", BenchmarkSpec{
		Algo: mpi.CollAlltoall, Buffers: buffersAllpair,
	})
	fault(FaultBarrier, Barrier, "MPI_Barrier under a fault plan", BenchmarkSpec{
		FixedSizes: []int{0},
	})
}
