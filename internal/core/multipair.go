package core

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/vtime"
)

// The multi-pair point-to-point family (OMB's osu_mbw_mr): the first p
// ranks each stream windows of messages to a dedicated partner in the
// second p ranks, all pairs concurrently, and the suite reports the
// aggregate bandwidth across pairs — mbw_mr adds the message-rate column
// (messages per second), multi_bw reports bandwidth only.
//
// This file is the registry's existence proof: a whole workload family —
// two benchmarks, their -pairs option validation, their report columns —
// registers itself here without touching the run loop, the option
// validator, or either CLI. It runs under both execution engines and in
// -parallel sweeps like every other registered workload.

// The multi-pair benchmarks.
const (
	// MultiBWMR is OMB's osu_mbw_mr: aggregate multi-pair bandwidth plus
	// message rate.
	MultiBWMR Benchmark = "mbw_mr"
	// MultiBandwidth reports the aggregate multi-pair bandwidth only.
	MultiBandwidth Benchmark = "multi_bw"
)

// groupMultiPair labels the family in -list output.
const groupMultiPair = "multi-pair point-to-point"

// mbwTag is the message tag of the multi-pair streams (the single-pair
// tests use tags 1-4, the window ack uses ackTag).
const mbwTag = 5

func init() {
	RegisterBenchmark(BenchmarkSpec{
		Name: MultiBWMR, Aliases: []string{"osu_mbw_mr", "message_rate"},
		Kind: KindPtPt, Group: groupMultiPair,
		Summary:  "aggregate multi-pair bandwidth and message rate (osu_mbw_mr, -pairs)",
		MinRanks: 2, Modes: cAndPy, Columns: ColumnsMessageRate,
		Validate: validatePairs,
		Body:     func(b *Bench) (stats.Row, error) { return runMultiPair(b, true) },
	})
	RegisterBenchmark(BenchmarkSpec{
		Name: MultiBandwidth, Aliases: []string{"osu_multi_bw"},
		Kind: KindPtPt, Group: groupMultiPair,
		Summary:  "aggregate multi-pair bandwidth (-pairs)",
		MinRanks: 2, Modes: cAndPy, Columns: ColumnsBandwidth,
		Validate: validatePairs,
		Body:     func(b *Bench) (stats.Row, error) { return runMultiPair(b, false) },
	})
}

// pairCount resolves the effective pair count: -pairs if set, otherwise
// half the ranks (the OSU default; with an odd rank count the last rank
// sits the streams out but still joins the barrier and the aggregation).
func pairCount(o Options, ranks int) int {
	if o.Pairs > 0 {
		return o.Pairs
	}
	return ranks / 2
}

// validatePairs rejects pair counts the rank count cannot host.
func validatePairs(o Options) error {
	if o.Pairs > 0 && 2*o.Pairs > o.Ranks {
		return fmt.Errorf("core: %s with %d pairs needs at least %d ranks, got %d",
			o.Benchmark, o.Pairs, 2*o.Pairs, o.Ranks)
	}
	return nil
}

// runMultiPair is the osu_mbw_mr loop: sender rank i streams a window of
// messages to receiver rank i+pairs, the receiver acknowledges the window
// with a 4-byte message, and all pairs run concurrently. The aggregate
// bandwidth is pairs*size*window*iters over rank 0's elapsed time, exactly
// as OSU computes it from the lead rank's clock; the message rate divides
// that through by the message size.
func runMultiPair(b *Bench, msgRate bool) (stats.Row, error) {
	c := b.Comm()
	size, iters, warmup := b.Size(), b.Iters(), b.Warmup()
	window := b.Options().Window
	pairs := pairCount(b.Options(), c.Size())
	rank := c.Rank()
	sender := rank < pairs
	receiver := rank >= pairs && rank < 2*pairs
	var peer int
	if sender {
		peer = rank + pairs
	} else if receiver {
		peer = rank - pairs
	}
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		switch {
		case sender:
			for w := 0; w < window; w++ {
				if err := b.Send(peer, mbwTag); err != nil {
					return stats.Row{}, err
				}
			}
			if err := b.AckRecv(peer); err != nil {
				return stats.Row{}, err
			}
		case receiver:
			for w := 0; w < window; w++ {
				if err := b.Recv(peer, mbwTag); err != nil {
					return stats.Row{}, err
				}
			}
			if err := b.AckSend(peer); err != nil {
				return stats.Row{}, err
			}
		}
	}
	elapsed := float64(b.Wtime() - start) // us; ~0 on a rank outside the pairs
	var mbps float64
	if rank == 0 && elapsed > 0 {
		mbps = float64(pairs*size*window*iters) / elapsed
	}
	row, err := b.ReduceRow(elapsed/float64(iters), mbps)
	if err != nil || c.Rank() != 0 {
		return row, err
	}
	if msgRate && size > 0 {
		row.MsgRate = mbps * 1e6 / float64(size)
	}
	return row, nil
}
