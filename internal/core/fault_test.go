package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

// faultEngines are the engine configurations a fault-injected run must
// agree across: same classified failure, same perturbed numbers, byte for
// byte. The event engine needs timing-only worlds.
var faultEngines = []struct {
	name       string
	engine     string
	timingOnly bool
}{
	{"goroutine", "goroutine", true},
	{"event", "event", true},
}

// TestRunClassifiesKillFailure runs a fault scenario under a kill plan and
// checks Run returns a classified Report.Failure — not an error, not a
// hang — identically on both engines.
func TestRunClassifiesKillFailure(t *testing.T) {
	var want *Failure
	for _, eng := range faultEngines {
		opts := quickOpts(FaultAllreduce, ModeC)
		opts.Ranks, opts.PPN = 8, 4
		opts.MaxSize = 4 * 1024
		opts.Engine = eng.engine
		opts.TimingOnly = eng.timingOnly
		opts.Faults = "kill:rank=3,after=5:allreduce"
		rep, err := Run(opts)
		if err != nil {
			t.Fatalf("%s: Run = %v, want classified failure", eng.name, err)
		}
		f := rep.Failure
		if f == nil {
			t.Fatalf("%s: Report.Failure is nil under a kill plan", eng.name)
		}
		if f.Code != "MPI_ERR_PROC_FAILED" && f.Code != "RANK_KILLED" {
			t.Fatalf("%s: failure code %q", eng.name, f.Code)
		}
		if len(f.Failed) != 1 || f.Failed[0] != 3 {
			t.Fatalf("%s: failure blames %v, want [3]", eng.name, f.Failed)
		}
		if want == nil {
			want = f
			continue
		}
		if !reflect.DeepEqual(want, f) {
			t.Fatalf("engines disagree on the classified failure:\n%s: %+v\n%s: %+v",
				faultEngines[0].name, want, eng.name, f)
		}
	}
}

// TestFaultReportJSONFields pins the fault keys of the report schema: a
// fault-injected run serializes its plan and failure, and a clean run of
// the same options omits both keys entirely (the golden-fixture guarantee).
func TestFaultReportJSONFields(t *testing.T) {
	opts := quickOpts(Allreduce, ModeC)
	opts.Ranks, opts.PPN = 4, 2
	opts.MaxSize = 1024
	clean, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	cleanJSON, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	var cleanKeys map[string]json.RawMessage
	if err := json.Unmarshal(cleanJSON, &cleanKeys); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"faults", "failure"} {
		if _, ok := cleanKeys[key]; ok {
			t.Fatalf("clean report serializes %q; no-fault schema must be unchanged", key)
		}
	}

	opts.Faults = "kill:rank=1,after=2:allreduce"
	failed, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	failedJSON, err := json.Marshal(failed)
	if err != nil {
		t.Fatal(err)
	}
	var failedKeys map[string]json.RawMessage
	if err := json.Unmarshal(failedJSON, &failedKeys); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"faults", "failure"} {
		if _, ok := failedKeys[key]; !ok {
			t.Fatalf("fault-injected report is missing %q key", key)
		}
	}
}

// TestFaultNoiseSweepDeterministic re-runs a noise+jitter sweep across
// serial and parallel workers and across both engines: every combination
// must serialize byte-identically — the seeded perturbation depends only
// on the plan, never on the schedule or the engine.
func TestFaultNoiseSweepDeterministic(t *testing.T) {
	marshal := func(engine string, workers int) []byte {
		base := quickOpts(Allreduce, ModeC)
		base.Ranks, base.PPN = 8, 4
		base.MaxSize = 8 * 1024
		base.Engine = engine
		base.TimingOnly = true
		base.Faults = "noise:sigma=3us; jitter:link=0.15; seed:42"
		sweep := Sweep{
			Base:    base,
			Workers: workers,
			Variants: []Variant{
				{Name: "allreduce", Mutate: func(o *Options) {}},
				{Name: "bcast", Mutate: func(o *Options) { o.Benchmark = Bcast }},
				{Name: "alltoall", Mutate: func(o *Options) { o.Benchmark = Alltoall; o.MaxSize = 1024 }},
			},
		}
		res, err := sweep.Run()
		if err != nil {
			t.Fatalf("engine %s workers %d: %v", engine, workers, err)
		}
		blob, err := json.Marshal(res.Reports)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	want := marshal("goroutine", 1)
	for _, eng := range []string{"goroutine", "event"} {
		for _, workers := range []int{1, 4} {
			if eng == "goroutine" && workers == 1 {
				continue
			}
			got := marshal(eng, workers)
			if string(got) != string(want) {
				t.Fatalf("noise sweep not deterministic: engine %s workers %d differs from serial goroutine",
					eng, workers)
			}
		}
	}

	// The perturbation is live (differs from a clean run) and seeded
	// (differs under another seed).
	cleanOpts := quickOpts(Allreduce, ModeC)
	cleanOpts.Ranks, cleanOpts.PPN = 8, 4
	cleanOpts.MaxSize = 8 * 1024
	cleanOpts.TimingOnly = true
	clean, err := Run(cleanOpts)
	if err != nil {
		t.Fatal(err)
	}
	noisyOpts := cleanOpts
	noisyOpts.Faults = "noise:sigma=3us; jitter:link=0.15; seed:42"
	noisy, err := Run(noisyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(clean.Series.Rows, noisy.Series.Rows) {
		t.Fatal("noise plan did not perturb the numbers")
	}
	reseedOpts := cleanOpts
	reseedOpts.Faults = "noise:sigma=3us; jitter:link=0.15; seed:43"
	reseed, err := Run(reseedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(noisy.Series.Rows, reseed.Series.Rows) {
		t.Fatal("different seeds produced identical noisy numbers")
	}
}
