// Package core implements the OMB-Py benchmark suite itself: the paper's
// primary contribution. It provides every benchmark of the paper's Table II
// -- point-to-point latency, bandwidth, bi-directional bandwidth and
// multi-pair latency; the nine blocking collectives; and the four vector
// variants -- each runnable in three modes: C (the OMB baseline calling the
// native runtime directly), Py (OMB-Py through the mpi4py binding layer
// with a chosen buffer library), and Pickle (OMB-Py through the
// serializing object API). Timing is virtual and deterministic; reported
// numbers depend only on the calibrated cost models.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/mpi4py"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/topology"
)

// Mode selects the language binding under test.
type Mode int

// Benchmark modes.
const (
	// ModeC is the OMB baseline: benchmarks call the native runtime.
	ModeC Mode = iota
	// ModePy is OMB-Py with direct buffers (mpi4py upper-case methods).
	ModePy
	// ModePickle is OMB-Py with serialized objects (lower-case methods).
	ModePickle
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeC:
		return "omb-c"
	case ModePy:
		return "omb-py"
	case ModePickle:
		return "omb-py-pickle"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a mode by name.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "c", "omb", "omb-c":
		return ModeC, nil
	case "py", "omb-py", "python":
		return ModePy, nil
	case "pickle", "omb-py-pickle":
		return ModePickle, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q", s)
	}
}

// Benchmark identifies a test of the paper's Table II.
type Benchmark string

// The supported benchmarks.
const (
	Latency      Benchmark = "latency"
	Bandwidth    Benchmark = "bw"
	BiBandwidth  Benchmark = "bibw"
	MultiLatency Benchmark = "multi_lat"

	Allgather     Benchmark = "allgather"
	Allreduce     Benchmark = "allreduce"
	Alltoall      Benchmark = "alltoall"
	Barrier       Benchmark = "barrier"
	Bcast         Benchmark = "bcast"
	Gather        Benchmark = "gather"
	ReduceScatter Benchmark = "reduce_scatter"
	Reduce        Benchmark = "reduce"
	Scatter       Benchmark = "scatter"

	Allgatherv Benchmark = "allgatherv"
	Alltoallv  Benchmark = "alltoallv"
	Gatherv    Benchmark = "gatherv"
	Scatterv   Benchmark = "scatterv"

	// Overlap benchmarks (osu_iallreduce style, beyond the paper's first
	// release): post the nonblocking collective, inject calibrated virtual
	// compute, Wait, and report pure-communication time, total time and
	// the communication/computation overlap percentage.
	IAllreduce     Benchmark = "iallreduce"
	IBcast         Benchmark = "ibcast"
	IGather        Benchmark = "igather"
	IAllgather     Benchmark = "iallgather"
	IAlltoall      Benchmark = "ialltoall"
	IReduceScatter Benchmark = "ireduce_scatter"
	IScan          Benchmark = "iscan"
)

// Benchmarks lists every supported benchmark, grouped as in Table II.
func Benchmarks() []Benchmark {
	return []Benchmark{
		Latency, Bandwidth, BiBandwidth, MultiLatency,
		Allgather, Allreduce, Alltoall, Barrier, Bcast, Gather,
		ReduceScatter, Reduce, Scatter,
		Allgatherv, Alltoallv, Gatherv, Scatterv,
		IAllreduce, IBcast, IGather, IAllgather, IAlltoall,
		IReduceScatter, IScan,
	}
}

// Kind classifies a benchmark for option validation and reporting.
type Kind int

// Benchmark kinds.
const (
	KindPtPt Kind = iota
	KindCollective
	KindVector
	// KindOverlap marks the nonblocking-collective overlap benchmarks.
	KindOverlap
)

// Kind returns the benchmark's class.
func (b Benchmark) Kind() Kind {
	switch b {
	case Latency, Bandwidth, BiBandwidth, MultiLatency:
		return KindPtPt
	case Allgatherv, Alltoallv, Gatherv, Scatterv:
		return KindVector
	case IAllreduce, IBcast, IGather, IAllgather, IAlltoall, IReduceScatter, IScan:
		return KindOverlap
	default:
		return KindCollective
	}
}

// ParseBenchmark resolves a benchmark by name.
func ParseBenchmark(s string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if string(b) == strings.ToLower(s) {
			return b, nil
		}
	}
	return "", fmt.Errorf("core: unknown benchmark %q (have %s)", s, benchNames())
}

func benchNames() string {
	names := make([]string, 0, len(Benchmarks()))
	for _, b := range Benchmarks() {
		names = append(names, string(b))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Options configures one benchmark run. Zero values take OMB-style
// defaults via withDefaults.
type Options struct {
	Benchmark Benchmark
	Cluster   string
	Impl      netmodel.Impl
	Mode      Mode
	// Buffer is the Python buffer library (Py/Pickle modes).
	Buffer pybuf.Library
	// UseGPU binds ranks to GPUs and allocates device buffers.
	UseGPU bool
	// Ranks and PPN shape the job; pt2pt benchmarks need exactly 2 ranks
	// (multi_lat: any even count).
	Ranks, PPN int
	// MinSize and MaxSize bound the message-size sweep (bytes, powers of
	// two). Barrier ignores them.
	MinSize, MaxSize int
	// Iters/Warmup are per-size loop counts; sizes at or above
	// LargeThreshold use LargeIters/LargeWarmup, as OMB does.
	Iters, Warmup           int
	LargeThreshold          int
	LargeIters, LargeWarmup int
	// Window is the bandwidth-test window size.
	Window int
	// TimingOnly runs without payloads (huge-scale experiments).
	TimingOnly bool
	// Engine selects the runtime execution engine: "auto" (the default;
	// the discrete-event engine for timing-only runs, goroutines
	// otherwise), "goroutine", or "event" (timing-only runs only). Both
	// engines produce bit-identical virtual-time numbers.
	Engine string
	// Sizes, when non-empty, is the explicit message-size axis, replacing
	// the MinSize/MaxSize power-of-two sweep — the crossover-scan
	// experiments step linearly through the switch region. Sizes must be
	// positive and strictly increasing.
	Sizes []int
	// DType is the element type (defaults: uint8 pt2pt, float32 reductions).
	DType mpi.DType
	// Profiler, when set, records the binding layer's staging phases.
	Profiler *mpi4py.Profiler
	// Tuning overrides the runtime's collective algorithm thresholds
	// (zero fields keep defaults); used by the ablation benchmarks.
	Tuning mpi.Tuning
	// Algorithms forces a named algorithm per collective, mirroring
	// MVAPICH2's MV2_*_ALGORITHM knobs: keys are collective names
	// ("bcast", "allreduce", "allgather", "alltoall", "reduce_scatter"),
	// values are registered algorithm names or their aliases ("ring",
	// "rd", "raben", ...). Names are canonicalised and validated; a nil
	// map takes the process default set via SetDefaultAlgorithms.
	Algorithms map[string]string
}

// defaultEngine is the process-wide engine default applied when
// Options.Engine is empty; the CLIs' -engine flag sets it.
var defaultEngine = "auto"

// SetDefaultEngine installs the process-wide execution-engine default
// ("auto", "goroutine" or "event"). It is meant to be called once at CLI
// startup, before any Run.
func SetDefaultEngine(name string) { defaultEngine = name }

// engine resolves the options' engine choice. "auto" picks the
// discrete-event engine exactly when the run is timing-only: the event
// engine does not carry payloads, and the goroutine engine is the
// validated substrate for data-carrying correctness runs.
func (o Options) engine() (mpi.Engine, error) {
	name := o.Engine
	if name == "" {
		name = defaultEngine
	}
	if strings.ToLower(name) == "auto" {
		if o.TimingOnly {
			return mpi.EngineEvent, nil
		}
		return mpi.EngineGoroutine, nil
	}
	eng, err := mpi.ParseEngine(strings.ToLower(name))
	if err != nil {
		return 0, fmt.Errorf("core: unknown engine %q (have auto, goroutine, event)", name)
	}
	if eng == mpi.EngineEvent && !o.TimingOnly {
		return 0, fmt.Errorf("core: the event engine needs a timing-only run (pass -timing-only)")
	}
	return eng, nil
}

// defaultAlgorithms is the process-wide forced-algorithm default applied
// when Options.Algorithms is nil -- the CLIs' -algorithm flag sets it, the
// analogue of exporting MV2_*_ALGORITHM into a job's environment.
var defaultAlgorithms map[string]string

// SetDefaultAlgorithms installs the process-wide forced-algorithm default.
// It is meant to be called once at CLI startup, before any Run.
func SetDefaultAlgorithms(m map[string]string) { defaultAlgorithms = m }

// ParseAlgorithmList parses a comma-separated list of collective=algorithm
// pairs ("allgather=ring,allreduce=rd") into an Options.Algorithms map,
// validating both halves against the runtime registry.
func ParseAlgorithmList(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		coll, name, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("core: -algorithm entry %q is not collective=algorithm", pair)
		}
		c, err := mpi.ParseCollective(coll)
		if err != nil {
			return nil, err
		}
		canon, err := mpi.CanonicalAlgorithm(c, name)
		if err != nil {
			return nil, err
		}
		out[string(c)] = canon
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: -algorithm list %q is empty", s)
	}
	return out, nil
}

// mpiAlgorithms canonicalises Options.Algorithms into the runtime's forced
// map.
func (o Options) mpiAlgorithms() (map[mpi.Collective]string, error) {
	if len(o.Algorithms) == 0 {
		return nil, nil
	}
	out := make(map[mpi.Collective]string, len(o.Algorithms))
	for coll, name := range o.Algorithms {
		if name == "" {
			continue
		}
		c, err := mpi.ParseCollective(coll)
		if err != nil {
			return nil, err
		}
		canon, err := mpi.CanonicalAlgorithm(c, name)
		if err != nil {
			return nil, err
		}
		out[c] = canon
	}
	return out, nil
}

// Collective returns the runtime collective whose algorithm registry the
// benchmark exercises, if it has selectable algorithms.
func (b Benchmark) Collective() (mpi.Collective, bool) {
	switch b {
	case Bcast, IBcast:
		return mpi.CollBcast, true
	case Allreduce, IAllreduce:
		return mpi.CollAllreduce, true
	case Allgather, IAllgather:
		return mpi.CollAllgather, true
	case Alltoall, IAlltoall:
		return mpi.CollAlltoall, true
	case ReduceScatter, IReduceScatter:
		return mpi.CollReduceScatter, true
	}
	return "", false
}

// withDefaults fills OMB-style defaults and normalises sizes.
func (o Options) withDefaults() Options {
	if o.Cluster == "" {
		o.Cluster = topology.Frontera.Name
	}
	if o.Impl == "" {
		o.Impl = netmodel.MVAPICH2
	}
	if o.Ranks == 0 {
		o.Ranks = 2
	}
	if o.PPN == 0 {
		o.PPN = 1
	}
	if o.MinSize == 0 {
		o.MinSize = 1
	}
	if o.MaxSize == 0 {
		o.MaxSize = 1 << 20
	}
	if o.Iters == 0 {
		o.Iters = 100
	}
	if o.Warmup == 0 {
		o.Warmup = 10
	}
	if o.LargeThreshold == 0 {
		o.LargeThreshold = 8192
	}
	if o.LargeIters == 0 {
		o.LargeIters = 20
	}
	if o.LargeWarmup == 0 {
		o.LargeWarmup = 2
	}
	if o.Window == 0 {
		o.Window = 64
	}
	if o.DType == 0 && o.Benchmark.reduces() {
		o.DType = mpi.Float32
	}
	if es := o.DType.Size(); o.MinSize < es {
		o.MinSize = es
	}
	if o.Algorithms == nil {
		o.Algorithms = defaultAlgorithms
	}
	return o
}

// reduces reports whether the benchmark applies a reduction operator.
func (b Benchmark) reduces() bool {
	switch b {
	case Allreduce, Reduce, ReduceScatter, IAllreduce, IReduceScatter, IScan:
		return true
	}
	return false
}

// validate rejects inconsistent configurations.
func (o Options) validate() error {
	if o.Benchmark == "" {
		return fmt.Errorf("core: Options.Benchmark is required")
	}
	if _, err := ParseBenchmark(string(o.Benchmark)); err != nil {
		return err
	}
	switch o.Benchmark {
	case Latency, Bandwidth, BiBandwidth:
		if o.Ranks != 2 {
			return fmt.Errorf("core: %s needs exactly 2 ranks, got %d", o.Benchmark, o.Ranks)
		}
	case MultiLatency:
		if o.Ranks%2 != 0 {
			return fmt.Errorf("core: %s needs an even rank count, got %d", o.Benchmark, o.Ranks)
		}
	}
	if o.Mode == ModePickle && o.Benchmark.Kind() != KindPtPt && o.Benchmark != Allreduce && o.Benchmark != Bcast {
		return fmt.Errorf("core: pickle mode supports latency, bw, bibw, multi_lat, bcast and allreduce, not %s", o.Benchmark)
	}
	if o.Benchmark.Kind() == KindOverlap && o.Mode != ModeC {
		return fmt.Errorf("core: overlap benchmark %s runs in C mode only (the binding layer has no nonblocking API)", o.Benchmark)
	}
	if o.UseGPU && o.Mode != ModeC && !o.Buffer.OnGPU() {
		return fmt.Errorf("core: GPU runs need a GPU buffer library, got %v", o.Buffer)
	}
	if !o.UseGPU && o.Buffer.OnGPU() {
		return fmt.Errorf("core: buffer library %v needs UseGPU", o.Buffer)
	}
	if o.MinSize > o.MaxSize {
		return fmt.Errorf("core: MinSize %d > MaxSize %d", o.MinSize, o.MaxSize)
	}
	for i, s := range o.Sizes {
		if s <= 0 {
			return fmt.Errorf("core: Sizes[%d] = %d must be positive", i, s)
		}
		if i > 0 && s <= o.Sizes[i-1] {
			return fmt.Errorf("core: Sizes must be strictly increasing (%d after %d)", s, o.Sizes[i-1])
		}
	}
	if _, err := o.engine(); err != nil {
		return err
	}
	if _, err := o.mpiAlgorithms(); err != nil {
		return err
	}
	return nil
}
