// Package core implements the OMB-Py benchmark suite itself: the paper's
// primary contribution. Workloads are self-describing entries in an open
// registry (see registry.go): the built-in set covers every benchmark of
// the paper's Table II -- point-to-point latency, bandwidth, bi-directional
// bandwidth and multi-pair latency; the nine blocking collectives; and the
// four vector variants -- plus the nonblocking overlap family and the
// multi-pair bandwidth / message-rate family, and new workloads are a
// RegisterBenchmark call away. Each benchmark is runnable in three modes:
// C (the OMB baseline calling the native runtime directly), Py (OMB-Py
// through the mpi4py binding layer with a chosen buffer library), and
// Pickle (OMB-Py through the serializing object API). Timing is virtual
// and deterministic; reported numbers depend only on the calibrated cost
// models.
package core

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/mpi"
	"repro/internal/mpi4py"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/topology"
)

// Mode selects the language binding under test.
type Mode int

// Benchmark modes.
const (
	// ModeC is the OMB baseline: benchmarks call the native runtime.
	ModeC Mode = iota
	// ModePy is OMB-Py with direct buffers (mpi4py upper-case methods).
	ModePy
	// ModePickle is OMB-Py with serialized objects (lower-case methods).
	ModePickle
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeC:
		return "omb-c"
	case ModePy:
		return "omb-py"
	case ModePickle:
		return "omb-py-pickle"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a mode by name.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "c", "omb", "omb-c":
		return ModeC, nil
	case "py", "omb-py", "python":
		return ModePy, nil
	case "pickle", "omb-py-pickle":
		return ModePickle, nil
	default:
		return 0, fmt.Errorf("core: unknown mode %q", s)
	}
}

// Options configures one benchmark run. Zero values take OMB-style
// defaults via withDefaults.
type Options struct {
	Benchmark Benchmark
	Cluster   string
	Impl      netmodel.Impl
	Mode      Mode
	// Buffer is the Python buffer library (Py/Pickle modes).
	Buffer pybuf.Library
	// UseGPU binds ranks to GPUs and allocates device buffers.
	UseGPU bool
	// Ranks and PPN shape the job; pt2pt benchmarks need exactly 2 ranks
	// (multi_lat: any even count).
	Ranks, PPN int
	// MinSize and MaxSize bound the message-size sweep (bytes, powers of
	// two). Barrier ignores them.
	MinSize, MaxSize int
	// Iters/Warmup are per-size loop counts; sizes at or above
	// LargeThreshold use LargeIters/LargeWarmup, as OMB does.
	Iters, Warmup           int
	LargeThreshold          int
	LargeIters, LargeWarmup int
	// Window is the bandwidth-test window size.
	Window int
	// Pairs is the sender/receiver pair count of the multi-pair benchmarks
	// (mbw_mr, multi_bw); 0 means Ranks/2, the OSU default. Benchmarks
	// outside the multi-pair family ignore it.
	Pairs int
	// TimingOnly runs without payloads (huge-scale experiments).
	TimingOnly bool
	// Engine selects the runtime execution engine: "auto" (the default;
	// the discrete-event engine for timing-only runs, goroutines
	// otherwise), "goroutine", or "event" (timing-only runs only). Both
	// engines produce bit-identical virtual-time numbers.
	Engine string
	// NoFold disables the event engine's symmetry folding, forcing every
	// rank to execute individually. Folding changes no reported number —
	// the parity suite pins bit-identical virtual times either way — so
	// this exists for A/B measurement (the fold-speedup benchmarks) and as
	// an escape hatch. The goroutine engine never folds; it ignores this.
	NoFold bool
	// NoSchedFold disables schedule folding — the class-level compile and
	// replay layered on top of symmetry folding — while keeping the
	// schedule-level gather. Like NoFold it changes no reported number
	// (the three-way fold parity suite pins bit-identical virtual times);
	// it exists for A/B measurement and as an escape hatch. Implied by
	// NoFold: there is no schedule folding without the fold gather.
	NoSchedFold bool
	// Sizes, when non-empty, is the explicit message-size axis, replacing
	// the MinSize/MaxSize power-of-two sweep — the crossover-scan
	// experiments step linearly through the switch region. Sizes must be
	// positive and strictly increasing.
	Sizes []int
	// DType is the element type (defaults: uint8 pt2pt, float32 reductions).
	DType mpi.DType
	// Profiler, when set, records the binding layer's staging phases.
	Profiler *mpi4py.Profiler
	// Tuning overrides the runtime's collective algorithm thresholds
	// (zero fields keep defaults); used by the ablation benchmarks.
	Tuning mpi.Tuning
	// Algorithms forces a named algorithm per collective, mirroring
	// MVAPICH2's MV2_*_ALGORITHM knobs: keys are collective names
	// ("bcast", "allreduce", "allgather", "alltoall", "reduce_scatter"),
	// values are registered algorithm names or their aliases ("ring",
	// "rd", "raben", ...). Names are canonicalised and validated; a nil
	// map takes the process default set via SetDefaultAlgorithms.
	Algorithms map[string]string
	// Faults is a deterministic fault-injection spec (see internal/faults:
	// "kill:rank=3,after=2:allreduce; noise:sigma=5us; jitter:link=0.1").
	// A run whose world fails mid-benchmark reports the structured failure
	// in Report.Failure instead of aborting; the empty string (after
	// SetDefaultFaults) simulates a perfect machine at zero cost.
	Faults string
}

// defaultEngine is the process-wide engine default applied when
// Options.Engine is empty; the CLIs' -engine flag sets it.
var defaultEngine = "auto"

// SetDefaultEngine installs the process-wide execution-engine default
// ("auto", "goroutine" or "event"). It is meant to be called once at CLI
// startup, before any Run.
func SetDefaultEngine(name string) { defaultEngine = name }

// defaultNoFold is the process-wide fold default applied when
// Options.NoFold is false; the CLIs' -fold=false flag sets it.
var defaultNoFold bool

// SetDefaultFold installs the process-wide symmetry-folding default for
// the event engine (true = fold, the normal setting). It is meant to be
// called once at CLI startup, before any Run.
func SetDefaultFold(fold bool) { defaultNoFold = !fold }

// defaultNoSchedFold is the process-wide schedule-folding default applied
// when Options.NoSchedFold is false; the CLIs' -schedfold=false flag sets
// it.
var defaultNoSchedFold bool

// SetDefaultSchedFold installs the process-wide schedule-folding default
// for the event engine (true = fold at schedule level, the normal
// setting). It is meant to be called once at CLI startup, before any Run.
func SetDefaultSchedFold(fold bool) { defaultNoSchedFold = !fold }

// engine resolves the options' engine choice. "auto" picks the
// discrete-event engine exactly when the run is timing-only: the event
// engine's payload path is not yet pinned by the data-carrying
// correctness suite, and the goroutine engine is the validated substrate
// for data-carrying runs.
func (o Options) engine() (mpi.Engine, error) {
	name := o.Engine
	if name == "" {
		name = defaultEngine
	}
	if strings.ToLower(name) == "auto" {
		if o.TimingOnly {
			return mpi.EngineEvent, nil
		}
		return mpi.EngineGoroutine, nil
	}
	eng, err := mpi.ParseEngine(strings.ToLower(name))
	if err != nil {
		return 0, fmt.Errorf("core: unknown engine %q (have auto, goroutine, event)", name)
	}
	if eng == mpi.EngineEvent && !o.TimingOnly {
		return 0, fmt.Errorf("core: -engine=%s needs a timing-only run: the event engine's "+
			"payload path is not yet pinned by the data-carrying correctness suite (see "+
			"ROADMAP.md); pass -timing-only, or use -engine=goroutine for data-carrying runs", name)
	}
	return eng, nil
}

// defaultFaults is the process-wide fault-plan default applied when
// Options.Faults is empty; the CLIs' -faults flag sets it.
var defaultFaults string

// SetDefaultFaults installs the process-wide fault-injection spec. It is
// meant to be called once at CLI startup, before any Run.
func SetDefaultFaults(spec string) { defaultFaults = spec }

// defaultAlgorithms is the process-wide forced-algorithm default applied
// when Options.Algorithms is nil -- the CLIs' -algorithm flag sets it, the
// analogue of exporting MV2_*_ALGORITHM into a job's environment.
var defaultAlgorithms map[string]string

// SetDefaultAlgorithms installs the process-wide forced-algorithm default.
// It is meant to be called once at CLI startup, before any Run.
func SetDefaultAlgorithms(m map[string]string) { defaultAlgorithms = m }

// defaultTuningTable is the process-wide placement-indexed tuning table
// (the artifact ombtune generates); the CLIs' -tuning-table flag sets it.
var defaultTuningTable *mpi.TuningTable

// SetDefaultTuningTable installs a generated tuning table as the weakest
// process-wide default: a run whose placement matches an entry takes the
// entry's thresholds (unless Options.Tuning overrides any knob) and its
// forced algorithms (unless Options.Algorithms or SetDefaultAlgorithms
// supplies a map). It is meant to be called once at CLI startup, before
// any Run. Pass nil to clear.
func SetDefaultTuningTable(t *mpi.TuningTable) { defaultTuningTable = t }

// ParseAlgorithmList parses a comma-separated list of collective=algorithm
// pairs ("allgather=ring,allreduce=rd") into an Options.Algorithms map,
// validating both halves against the runtime registry.
func ParseAlgorithmList(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		coll, name, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("core: -algorithm entry %q is not collective=algorithm", pair)
		}
		c, err := mpi.ParseCollective(coll)
		if err != nil {
			return nil, err
		}
		canon, err := mpi.CanonicalAlgorithm(c, name)
		if err != nil {
			return nil, err
		}
		out[string(c)] = canon
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: -algorithm list %q is empty", s)
	}
	return out, nil
}

// mpiAlgorithms canonicalises Options.Algorithms into the runtime's forced
// map.
func (o Options) mpiAlgorithms() (map[mpi.Collective]string, error) {
	if len(o.Algorithms) == 0 {
		return nil, nil
	}
	out := make(map[mpi.Collective]string, len(o.Algorithms))
	for coll, name := range o.Algorithms {
		if name == "" {
			continue
		}
		c, err := mpi.ParseCollective(coll)
		if err != nil {
			return nil, err
		}
		canon, err := mpi.CanonicalAlgorithm(c, name)
		if err != nil {
			return nil, err
		}
		out[c] = canon
	}
	return out, nil
}

// withDefaults fills OMB-style defaults and normalises sizes. The
// benchmark name is canonicalised through the registry so aliases behave
// exactly like the canonical spelling everywhere downstream.
func (o Options) withDefaults() Options {
	if spec, err := LookupBenchmark(string(o.Benchmark)); err == nil {
		o.Benchmark = spec.Name
	}
	if o.Cluster == "" {
		o.Cluster = topology.Frontera.Name
	}
	if o.Impl == "" {
		o.Impl = netmodel.MVAPICH2
	}
	if o.Ranks == 0 {
		o.Ranks = 2
	}
	if o.PPN == 0 {
		o.PPN = 1
	}
	if o.MinSize == 0 {
		o.MinSize = 1
	}
	if o.MaxSize == 0 {
		o.MaxSize = 1 << 20
	}
	if o.Iters == 0 {
		o.Iters = 100
	}
	if o.Warmup == 0 {
		o.Warmup = 10
	}
	if o.LargeThreshold == 0 {
		o.LargeThreshold = 8192
	}
	if o.LargeIters == 0 {
		o.LargeIters = 20
	}
	if o.LargeWarmup == 0 {
		o.LargeWarmup = 2
	}
	if o.Window == 0 {
		o.Window = 64
	}
	if o.DType == 0 && o.Benchmark.reduces() {
		o.DType = mpi.Float32
	}
	if es := o.DType.Size(); o.MinSize < es {
		o.MinSize = es
	}
	if o.Algorithms == nil {
		o.Algorithms = defaultAlgorithms
	}
	// The tuning table is the weakest default: explicit Options fields and
	// the -algorithm process default both beat a matching table entry.
	if pol, ok := defaultTuningTable.Lookup(o.Ranks, o.PPN); ok {
		if o.Tuning == (mpi.Tuning{}) {
			o.Tuning = pol.Tuning
		}
		if o.Algorithms == nil && len(pol.Forced) > 0 {
			forced := make(map[string]string, len(pol.Forced))
			for coll, name := range pol.Forced {
				forced[string(coll)] = name
			}
			o.Algorithms = forced
		}
	}
	if o.Faults == "" {
		o.Faults = defaultFaults
	}
	if defaultNoFold {
		o.NoFold = true
	}
	if defaultNoSchedFold {
		o.NoSchedFold = true
	}
	return o
}

// validate rejects inconsistent configurations. Every benchmark-specific
// rule comes from the registry spec: supported modes and engines, minimum
// rank counts, and the spec's own Validate hook.
func (o Options) validate() error {
	if o.Benchmark == "" {
		return fmt.Errorf("core: Options.Benchmark is required")
	}
	spec, err := LookupBenchmark(string(o.Benchmark))
	if err != nil {
		return err
	}
	if spec.MinRanks > 0 && o.Ranks < spec.MinRanks {
		return fmt.Errorf("core: %s needs at least %d ranks, got %d", spec.Name, spec.MinRanks, o.Ranks)
	}
	if !spec.SupportsMode(o.Mode) {
		return fmt.Errorf("core: %s runs in modes %s only, not %s", spec.Name, spec.modeNames(), o.Mode)
	}
	if spec.Validate != nil {
		if err := spec.Validate(o); err != nil {
			return err
		}
	}
	if o.Pairs < 0 {
		return fmt.Errorf("core: Pairs %d must not be negative", o.Pairs)
	}
	if o.UseGPU && o.Mode != ModeC && !o.Buffer.OnGPU() {
		return fmt.Errorf("core: GPU runs need a GPU buffer library, got %v", o.Buffer)
	}
	if !o.UseGPU && o.Buffer.OnGPU() {
		return fmt.Errorf("core: buffer library %v needs UseGPU", o.Buffer)
	}
	if o.MinSize > o.MaxSize {
		return fmt.Errorf("core: MinSize %d > MaxSize %d", o.MinSize, o.MaxSize)
	}
	for i, s := range o.Sizes {
		if s <= 0 {
			return fmt.Errorf("core: Sizes[%d] = %d must be positive", i, s)
		}
		if i > 0 && s <= o.Sizes[i-1] {
			return fmt.Errorf("core: Sizes must be strictly increasing (%d after %d)", s, o.Sizes[i-1])
		}
	}
	eng, err := o.engine()
	if err != nil {
		return err
	}
	if !spec.supportsEngine(eng) {
		return fmt.Errorf("core: %s does not run on the %s engine", spec.Name, eng)
	}
	if _, err := o.mpiAlgorithms(); err != nil {
		return err
	}
	if _, err := faults.Parse(o.Faults); err != nil {
		return fmt.Errorf("core: -faults: %w", err)
	}
	return nil
}
