package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/mpi4py"
	"repro/internal/pybuf"
	"repro/internal/vtime"
)

// ops adapts one rank's benchmark body to the mode under test: ModeC calls
// the native runtime with raw slices (that is what OMB's C code does),
// ModePy goes through the binding layer with library buffers, ModePickle
// through the object-serialization API. Timing-only runs use the
// size-carrying nil-payload paths of each layer.
type ops struct {
	opts Options
	c    *mpi.Comm
	py   *mpi4py.Comm
	gpu  *device.GPU

	n          int // current message size in bytes
	sraw, rraw []byte
	sbuf, rbuf pybuf.Buffer

	// rowBuf holds ReduceRow's encoded local row (first 24 bytes) and the
	// reduced result (last 24). The aggregation reduce is blocking, so one
	// scratch per rank is reused across every size instead of allocating
	// two fresh buffers per row — at thousands of ranks the per-world
	// aggregation traffic shows up in allocation profiles.
	rowBuf [48]byte
}

// newOps prepares the adapter for one rank in caller-provided storage, so
// the run loop can slab-allocate the state for every rank at once.
func newOps(o *ops, opts Options, raw *mpi.Comm) error {
	*o = ops{opts: opts, c: raw}
	if opts.UseGPU {
		gpuIdx := raw.Proc().World().Placement().GPU(raw.WorldRank(raw.Rank()))
		o.gpu = device.NewGPU(gpuIdx, 0)
	}
	if opts.Mode != ModeC {
		var wrapOpts []mpi4py.Option
		if opts.Profiler != nil {
			wrapOpts = append(wrapOpts, mpi4py.WithProfiler(opts.Profiler))
		}
		if o.gpu != nil {
			wrapOpts = append(wrapOpts, mpi4py.WithRegistry(device.NewRegistry([]*device.GPU{o.gpu})))
		}
		py, err := mpi4py.Wrap(raw, wrapOpts...)
		if err != nil {
			return err
		}
		o.py = py
	}
	return nil
}

// spec returns the timing-only descriptor of the current size.
func (o *ops) spec() mpi4py.Spec { return mpi4py.Spec{Lib: o.opts.Buffer, N: o.n} }

// setup allocates (or sizes) the buffers for one message size. sendFactor
// and recvFactor scale the buffers for rooted/unrooted collectives that
// move p blocks (scatter sends p*n, gather receives p*n, and so on).
func (o *ops) setup(size, sendFactor, recvFactor int) error {
	o.teardown()
	o.n = size
	if o.opts.TimingOnly {
		return nil
	}
	if o.opts.Mode == ModeC {
		o.sraw = make([]byte, size*sendFactor)
		o.rraw = make([]byte, size*recvFactor)
		for i := range o.sraw {
			o.sraw[i] = byte(i)
		}
		return nil
	}
	count := size / o.opts.DType.Size()
	sb, err := pybuf.New(o.opts.Buffer, o.gpu, o.opts.DType, count*sendFactor)
	if err != nil {
		return err
	}
	rb, err := pybuf.New(o.opts.Buffer, o.gpu, o.opts.DType, count*recvFactor)
	if err != nil {
		return err
	}
	pybuf.FillPattern(sb, 1)
	o.sbuf, o.rbuf = sb, rb
	return nil
}

// teardown frees GPU allocations between sizes.
func (o *ops) teardown() {
	for _, b := range []pybuf.Buffer{o.sbuf, o.rbuf} {
		if db, ok := b.(pybuf.DeviceBuffer); ok {
			_ = db.Free()
		}
	}
	o.sbuf, o.rbuf = nil, nil
	o.sraw, o.rraw = nil, nil
}

func (o *ops) send(dst, tag int) error {
	switch o.opts.Mode {
	case ModeC:
		if o.opts.TimingOnly {
			return o.c.SendN(nil, o.n, dst, tag)
		}
		return o.c.Send(o.sraw, dst, tag)
	case ModePy:
		if o.opts.TimingOnly {
			return o.py.SendSpec(o.spec(), dst, tag)
		}
		return o.py.Send(o.sbuf, dst, tag)
	default: // ModePickle
		if o.opts.TimingOnly {
			return o.py.SendObjectSpec(o.spec(), dst, tag)
		}
		return o.py.SendObject(o.sbuf, dst, tag)
	}
}

func (o *ops) recv(src, tag int) error {
	switch o.opts.Mode {
	case ModeC:
		if o.opts.TimingOnly {
			_, err := o.c.RecvN(nil, o.n, src, tag)
			return err
		}
		_, err := o.c.Recv(o.rraw[:o.n], src, tag)
		return err
	case ModePy:
		if o.opts.TimingOnly {
			_, err := o.py.RecvSpec(o.spec(), src, tag)
			return err
		}
		_, err := o.py.Recv(o.rbuf, src, tag)
		return err
	default: // ModePickle
		if o.opts.TimingOnly {
			_, err := o.py.RecvObjectSpec(o.spec(), src, tag)
			return err
		}
		buf, _, err := o.py.RecvObject(src, tag, o.gpu)
		if err != nil {
			return err
		}
		if db, ok := buf.(pybuf.DeviceBuffer); ok {
			return db.Free()
		}
		return nil
	}
}

// exchange is the bidirectional transfer of the bibw test.
func (o *ops) exchange(peer int) error {
	switch o.opts.Mode {
	case ModeC:
		if o.opts.TimingOnly {
			_, err := o.c.SendrecvN(nil, o.n, peer, 4, nil, o.n, peer, 4)
			return err
		}
		_, err := o.c.Sendrecv(o.sraw, peer, 4, o.rraw[:o.n], peer, 4)
		return err
	case ModePy:
		if o.opts.TimingOnly {
			if err := o.py.SendSpec(o.spec(), peer, 4); err != nil {
				return err
			}
			_, err := o.py.RecvSpec(o.spec(), peer, 4)
			return err
		}
		_, err := o.py.Sendrecv(o.sbuf, peer, 4, o.rbuf, peer, 4)
		return err
	default:
		if err := o.send(peer, 4); err != nil {
			return err
		}
		return o.recv(peer, 4)
	}
}

// ack moves the 4-byte completion message of the bandwidth tests; it always
// uses the raw runtime, like OMB's C ack.
func (o *ops) ackSend(dst int) error { return o.c.SendN(nil, 4, dst, ackTag) }
func (o *ops) ackRecv(src int) error { _, err := o.c.RecvN(nil, 4, src, ackTag); return err }

const ackTag = 999

// barrier always runs through the layer under test.
func (o *ops) barrier() error {
	if o.opts.Mode == ModeC {
		return o.c.Barrier()
	}
	return o.py.Barrier()
}

// collective dispatches the named collective for the current size.
func (o *ops) collective(b Benchmark) error {
	switch o.opts.Mode {
	case ModeC:
		return o.collectiveC(b)
	case ModePy:
		if o.opts.TimingOnly {
			return o.collectivePySpec(b)
		}
		return o.collectivePy(b)
	default:
		return o.collectivePickle(b)
	}
}

func (o *ops) collectiveC(b Benchmark) error {
	p := o.c.Size()
	var s, r []byte
	if !o.opts.TimingOnly {
		s, r = o.sraw, o.rraw
	}
	switch b {
	case Barrier:
		return o.c.Barrier()
	case Bcast:
		return o.c.BcastN(s, o.n, 0)
	case Reduce:
		return o.c.ReduceN(s, r, o.n, o.opts.DType, mpi.OpSum, 0)
	case Allreduce:
		return o.c.AllreduceN(s, r, o.n, o.opts.DType, mpi.OpSum)
	case Gather:
		return o.c.GatherN(s, o.n, r, 0)
	case Scatter:
		return o.c.ScatterN(s, r, o.n, 0)
	case Allgather:
		return o.c.AllgatherN(s, o.n, r)
	case Alltoall:
		return o.c.AlltoallN(s, o.n, r)
	case ReduceScatter:
		return o.c.ReduceScatterBlockN(s, r, o.n, o.opts.DType, mpi.OpSum)
	case Gatherv:
		if o.opts.TimingOnly {
			return o.c.GathervN(o.n, nil, uniform(p, o.n), nil, 0)
		}
		if o.c.Rank() == 0 {
			return o.c.Gatherv(s[:o.n], r, uniform(p, o.n), nil, 0)
		}
		return o.c.Gatherv(s[:o.n], nil, nil, nil, 0)
	case Scatterv:
		if o.opts.TimingOnly {
			return o.c.ScattervN(uniform(p, o.n), o.n, 0)
		}
		return o.c.Scatterv(s, uniform(p, o.n), nil, r, 0)
	case Allgatherv:
		return o.c.Allgatherv(s, r, uniform(p, o.n), nil)
	case Alltoallv:
		return o.c.Alltoallv(s, uniform(p, o.n), nil, r, uniform(p, o.n), nil)
	default:
		return fmt.Errorf("core: %s is not a collective", b)
	}
}

func (o *ops) collectivePy(b Benchmark) error {
	switch b {
	case Barrier:
		return o.py.Barrier()
	case Bcast:
		return o.py.Bcast(o.sbuf, 0)
	case Reduce:
		return o.py.Reduce(o.sbuf, o.rbuf, mpi.OpSum, 0)
	case Allreduce:
		return o.py.Allreduce(o.sbuf, o.rbuf, mpi.OpSum)
	case Gather:
		return o.py.Gather(o.sbuf, o.rbuf, 0)
	case Scatter:
		return o.py.Scatter(o.sbuf, o.rbuf, 0)
	case Allgather:
		return o.py.Allgather(o.sbuf, o.rbuf)
	case Alltoall:
		return o.py.Alltoall(o.sbuf, o.rbuf)
	case ReduceScatter:
		return o.py.ReduceScatterBlock(o.sbuf, o.rbuf, mpi.OpSum)
	case Gatherv:
		return o.py.Gatherv(o.sbuf, o.rbuf, uniform(o.c.Size(), o.n), 0)
	case Scatterv:
		return o.py.Scatterv(o.sbuf, uniform(o.c.Size(), o.n), o.rbuf, 0)
	case Allgatherv:
		return o.py.Allgatherv(o.sbuf, o.rbuf, uniform(o.c.Size(), o.n))
	case Alltoallv:
		return o.py.Alltoallv(o.sbuf, uniform(o.c.Size(), o.n), o.rbuf, uniform(o.c.Size(), o.n))
	default:
		return fmt.Errorf("core: %s is not a collective", b)
	}
}

func (o *ops) collectivePySpec(b Benchmark) error {
	s := o.spec()
	switch b {
	case Barrier:
		return o.py.BarrierSpec()
	case Bcast:
		return o.py.BcastSpec(s, 0)
	case Reduce:
		return o.py.ReduceSpec(s, o.opts.DType, mpi.OpSum, 0)
	case Allreduce:
		return o.py.AllreduceSpec(s, o.opts.DType, mpi.OpSum)
	case Gather:
		return o.py.GatherSpec(s, 0)
	case Scatter:
		return o.py.ScatterSpec(s, 0)
	case Allgather:
		return o.py.AllgatherSpec(s)
	case Alltoall:
		return o.py.AlltoallSpec(s)
	case ReduceScatter:
		return o.py.ReduceScatterBlockSpec(s, o.opts.DType, mpi.OpSum)
	case Gatherv:
		return o.py.GathervSpec(s, 0)
	case Scatterv:
		return o.py.ScattervSpec(s, 0)
	case Allgatherv:
		return o.py.AllgathervSpec(s)
	case Alltoallv:
		return o.py.AlltoallvSpec(s)
	default:
		return fmt.Errorf("core: %s is not a collective", b)
	}
}

func (o *ops) collectivePickle(b Benchmark) error {
	switch b {
	case Bcast:
		_, err := o.py.BcastObject(o.sbuf, 0, o.gpu)
		return err
	case Allreduce:
		out, err := o.py.AllreduceObject(o.sbuf, mpi.OpSum, o.gpu)
		if err != nil {
			return err
		}
		if db, ok := out.(pybuf.DeviceBuffer); ok && out != o.sbuf {
			return db.Free()
		}
		return nil
	default:
		return fmt.Errorf("core: pickle mode does not support %s", b)
	}
}

// icollective posts the nonblocking collective of an overlap benchmark and
// returns its request. Overlap benchmarks run in C mode only, so the post
// always goes through the raw runtime.
func (o *ops) icollective(b Benchmark) (*mpi.Request, error) {
	var s, r []byte
	if !o.opts.TimingOnly {
		s, r = o.sraw, o.rraw
	}
	switch b {
	case IAllreduce:
		return o.c.IallreduceN(s, r, o.n, o.opts.DType, mpi.OpSum)
	case IBcast:
		return o.c.IbcastN(s, o.n, 0)
	case IGather:
		return o.c.IgatherN(s, o.n, r, 0)
	case IAllgather:
		return o.c.IallgatherN(s, o.n, r)
	case IAlltoall:
		return o.c.IalltoallN(s, o.n, r)
	case IReduceScatter:
		return o.c.IreduceScatterBlockN(s, r, o.n, o.opts.DType, mpi.OpSum)
	case IScan:
		return o.c.IscanN(s, r, o.n, o.opts.DType, mpi.OpSum)
	default:
		return nil, fmt.Errorf("core: %s is not an overlap benchmark", b)
	}
}

// compute injects d microseconds of virtual computation between the post
// and the Wait of an overlap iteration.
func (o *ops) compute(d vtime.Micros) { o.c.ChargeCompute(d) }

func uniform(p, n int) []int {
	counts := make([]int, p)
	for i := range counts {
		counts[i] = n
	}
	return counts
}
