package core

import (
	"reflect"
	"testing"

	"repro/internal/mpi"
)

// TestDefaultTuningTable pins the apply-a-generated-table option: a run
// whose placement matches a table entry behaves exactly as if the entry's
// thresholds and forced algorithms had been passed explicitly, explicit
// options still win, and unlisted placements keep the shipped defaults.
func TestDefaultTuningTable(t *testing.T) {
	table := &mpi.TuningTable{
		Entries: []mpi.TuningTableEntry{{
			Ranks: 4, PPN: 1,
			Policy: mpi.Policy{
				Tuning: mpi.Tuning{AllreduceRabenseifnerMin: -1},
				Forced: map[mpi.Collective]string{mpi.CollAllgather: "ring"},
			},
		}},
	}
	SetDefaultTuningTable(table)
	defer SetDefaultTuningTable(nil)

	base := Options{
		Benchmark: "allreduce", Ranks: 4, TimingOnly: true,
		Iters: 3, Warmup: 1, Sizes: []int{1024, 262144},
	}

	tabled, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := base
	explicit.Tuning = mpi.Tuning{AllreduceRabenseifnerMin: -1}
	// The forced allgather entry is irrelevant to an allreduce run but the
	// table still installs it; mirror it so the comparison is exact.
	explicit.Algorithms = map[string]string{"allgather": "ring"}
	want, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tabled.Series.Rows, want.Series.Rows) {
		t.Errorf("tabled run differs from explicit options:\n%v\n%v",
			tabled.Series.Rows, want.Series.Rows)
	}

	// A negative Min threshold switches every size to Rabenseifner, so the
	// small-size row demonstrably changes when the table applies.
	SetDefaultTuningTable(nil)
	shipped, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if shipped.Series.Rows[0].AvgUs == tabled.Series.Rows[0].AvgUs {
		t.Error("table entry had no effect on the matching placement")
	}
	SetDefaultTuningTable(table)

	// An unlisted placement keeps the shipped defaults.
	other := base
	other.Ranks = 8
	fromTable, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	SetDefaultTuningTable(nil)
	fromDefaults, err := Run(other)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromTable.Series.Rows, fromDefaults.Series.Rows) {
		t.Error("table leaked into an unlisted placement")
	}
	SetDefaultTuningTable(table)

	// Explicit options beat the table.
	override := base
	override.Tuning = mpi.Tuning{AllreduceRabenseifnerMin: 1024}
	got, err := Run(override)
	if err != nil {
		t.Fatal(err)
	}
	SetDefaultTuningTable(nil)
	wantOverride, err := Run(override)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Series.Rows, wantOverride.Series.Rows) {
		t.Error("explicit Tuning should beat the table entry")
	}
}

// TestTuningTableCacheKey pins that a table entry shifts CacheKey exactly
// like the equivalent explicit options — the content address covers the
// effective configuration, however it was assembled.
func TestTuningTableCacheKey(t *testing.T) {
	base := Options{Benchmark: "allreduce", Ranks: 4, TimingOnly: true, Sizes: []int{1024}}
	plain := base.CacheKey()

	table := &mpi.TuningTable{Entries: []mpi.TuningTableEntry{{
		Ranks: 4, PPN: 1,
		Policy: mpi.Policy{Tuning: mpi.Tuning{AllreduceRabenseifnerMin: -1}},
	}}}
	SetDefaultTuningTable(table)
	defer SetDefaultTuningTable(nil)
	tabled := base.CacheKey()
	if tabled == plain {
		t.Error("table entry should change the cache key")
	}

	SetDefaultTuningTable(nil)
	explicit := base
	explicit.Tuning = mpi.Tuning{AllreduceRabenseifnerMin: -1}
	if explicit.CacheKey() != tabled {
		t.Error("table entry and explicit tuning should share a cache key")
	}
}
