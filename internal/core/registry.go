package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// This file implements the open benchmark registry: every workload the
// suite can run is a self-describing BenchmarkSpec, and the run loop,
// option validation, report columns and CLI listings are all derived from
// the registered metadata. It mirrors the collective-algorithm registry in
// internal/mpi/registry.go one layer up: adding a workload is a
// RegisterBenchmark call from its own file (see multipair.go for the
// multi-pair family), never an edit to run.go or options.go dispatch.

// Benchmark identifies a registered workload by its canonical name.
type Benchmark string

// Kind classifies a benchmark for scale selection and grouping.
type Kind int

// Benchmark kinds.
const (
	KindPtPt Kind = iota
	KindCollective
	KindVector
	// KindOverlap marks the nonblocking-collective overlap benchmarks.
	KindOverlap
)

// Columns identifies the report-column set a benchmark fills.
type Columns int

// Column sets.
const (
	// ColumnsLatency reports Size, Avg(us), Min(us), Max(us).
	ColumnsLatency Columns = iota
	// ColumnsBandwidth reports Size, Bandwidth(MB/s).
	ColumnsBandwidth
	// ColumnsOverlap reports Size, Comm(us), Compute(us), Total(us),
	// Overlap(%).
	ColumnsOverlap
	// ColumnsMessageRate reports Size, MB/s, Messages/s.
	ColumnsMessageRate
)

// BenchmarkSpec describes one registered workload. Name, Kind, Group and
// Body are required; everything else has a permissive zero value.
type BenchmarkSpec struct {
	// Name is the canonical benchmark name (lowercase, '_' separators).
	Name Benchmark
	// Aliases are accepted alternative spellings for ParseBenchmark.
	Aliases []string
	// Kind classifies the workload (point-to-point, collective, ...).
	Kind Kind
	// Group labels the benchmark in listings; benchmarks registered with
	// the same group are listed together, groups appear in first-
	// registration order.
	Group string
	// Summary is a one-line description for the CLIs' -list output.
	Summary string
	// MinRanks is the smallest rank count the workload runs on (0 = no
	// minimum beyond the runtime's own).
	MinRanks int
	// Modes restricts the language bindings the workload supports; nil
	// means every mode (C, Py, Pickle).
	Modes []Mode
	// Engines restricts the execution engines the workload supports; nil
	// means every engine.
	Engines []mpi.Engine
	// Columns selects the report-column set.
	Columns Columns
	// Reduces marks workloads that apply a reduction operator (their
	// default element type is float32 rather than bytes).
	Reduces bool
	// Algo names the runtime collective whose algorithm registry the
	// workload exercises, if it has selectable algorithms ("" = none).
	Algo mpi.Collective
	// FixedSizes, when non-empty, replaces the message-size axis entirely
	// (barrier runs once at size 0).
	FixedSizes []int
	// Buffers returns the (sendFactor, recvFactor) buffer scaling on p
	// ranks (gather receives p blocks, alltoall moves p both ways, ...);
	// nil means (1, 1).
	Buffers func(p int) (sendFactor, recvFactor int)
	// Validate rejects option combinations the workload cannot run; it is
	// called after defaults are applied and the generic checks passed.
	Validate func(o Options) error
	// Body runs the workload for one message size on one rank and returns
	// rank 0's aggregated row (other ranks return a zero row, exactly as
	// Bench.ReduceRow does). Required.
	Body func(b *Bench) (stats.Row, error)
}

// SupportsMode reports whether the workload runs under the given binding.
func (s *BenchmarkSpec) SupportsMode(m Mode) bool {
	if len(s.Modes) == 0 {
		return true
	}
	for _, have := range s.Modes {
		if have == m {
			return true
		}
	}
	return false
}

// supportsEngine reports whether the workload runs on the given engine.
func (s *BenchmarkSpec) supportsEngine(e mpi.Engine) bool {
	if len(s.Engines) == 0 {
		return true
	}
	for _, have := range s.Engines {
		if have == e {
			return true
		}
	}
	return false
}

// modeNames renders the supported-mode list for error messages.
func (s *BenchmarkSpec) modeNames() string {
	modes := s.Modes
	if len(modes) == 0 {
		modes = []Mode{ModeC, ModePy, ModePickle}
	}
	names := make([]string, len(modes))
	for i, m := range modes {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}

// InventoryConfig returns the smallest (ranks, mode) configuration the
// spec supports, for inventory-style drivers that run every registered
// benchmark once (the table2 experiment, BenchmarkTable2AllBenchmarks):
// 2 ranks for point-to-point workloads and 4 otherwise, raised to the
// spec's minimum, in Py mode where the spec supports it and C otherwise.
func (s *BenchmarkSpec) InventoryConfig() (ranks int, mode Mode) {
	ranks = 2
	if s.Kind != KindPtPt {
		ranks = 4
	}
	if ranks < s.MinRanks {
		ranks = s.MinRanks
	}
	mode = ModePy
	if !s.SupportsMode(mode) {
		mode = ModeC
	}
	return ranks, mode
}

// buffers applies the spec's buffer scaling, defaulting to (1, 1).
func (s *BenchmarkSpec) buffers(p int) (int, int) {
	if s.Buffers == nil {
		return 1, 1
	}
	return s.Buffers(p)
}

// benchRegistry holds every registered workload: specs in registration
// order plus a name index covering canonical names and aliases. It is
// populated by init functions (and, for external workloads, by
// RegisterBenchmark calls before the first Run) and read-only afterwards.
var benchRegistry = struct {
	specs  []*BenchmarkSpec
	byName map[string]*BenchmarkSpec
}{byName: map[string]*BenchmarkSpec{}}

// normalizeBenchName lower-cases and unifies separators so "Reduce-Scatter"
// and "reduce_scatter" compare equal.
func normalizeBenchName(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, "-", "_")
	s = strings.ReplaceAll(s, " ", "_")
	return s
}

// RegisterBenchmark adds a workload to the registry. It panics on an
// invalid spec, a duplicate name, or an alias colliding with any registered
// name or alias: registration mistakes are programming errors and must
// fail loudly at init time, not surface as misrouted runs later. The spec
// is validated completely before the registry is touched, so a panicking
// registration leaves no partial state behind.
func RegisterBenchmark(spec BenchmarkSpec) {
	if spec.Name == "" {
		panic("core: RegisterBenchmark: spec has no name")
	}
	if string(spec.Name) != normalizeBenchName(string(spec.Name)) {
		panic(fmt.Sprintf("core: RegisterBenchmark: name %q is not canonical (want %q)",
			spec.Name, normalizeBenchName(string(spec.Name))))
	}
	if spec.Body == nil {
		panic(fmt.Sprintf("core: RegisterBenchmark: %s has no body", spec.Name))
	}
	if spec.Group == "" {
		panic(fmt.Sprintf("core: RegisterBenchmark: %s has no group", spec.Name))
	}
	names := append([]string{string(spec.Name)}, spec.Aliases...)
	seen := map[string]bool{}
	for i, raw := range names {
		n := normalizeBenchName(raw)
		if n == "" {
			panic(fmt.Sprintf("core: RegisterBenchmark: %s has an empty alias", spec.Name))
		}
		if seen[n] {
			panic(fmt.Sprintf("core: RegisterBenchmark: %s repeats name %q", spec.Name, n))
		}
		seen[n] = true
		if have, ok := benchRegistry.byName[n]; ok {
			what := "name"
			if i > 0 {
				what = "alias"
			}
			panic(fmt.Sprintf("core: RegisterBenchmark: %s %q of %s collides with registered benchmark %s",
				what, n, spec.Name, have.Name))
		}
	}
	s := new(BenchmarkSpec)
	*s = spec
	benchRegistry.specs = append(benchRegistry.specs, s)
	for n := range seen {
		benchRegistry.byName[n] = s
	}
}

// LookupBenchmark resolves a benchmark name (or alias) to its spec.
func LookupBenchmark(name string) (*BenchmarkSpec, error) {
	if s, ok := benchRegistry.byName[normalizeBenchName(name)]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("core: unknown benchmark %q (have %s)", name, benchNames())
}

// Benchmarks lists every registered benchmark in registration order
// (paper Table II order for the built-in set, later registrations after).
func Benchmarks() []Benchmark {
	out := make([]Benchmark, len(benchRegistry.specs))
	for i, s := range benchRegistry.specs {
		out[i] = s.Name
	}
	return out
}

// ParseBenchmark resolves a benchmark by name or alias, returning the
// canonical name.
func ParseBenchmark(s string) (Benchmark, error) {
	spec, err := LookupBenchmark(s)
	if err != nil {
		return "", err
	}
	return spec.Name, nil
}

// benchNames renders the sorted canonical names for error messages.
func benchNames() string {
	names := make([]string, 0, len(benchRegistry.specs))
	for _, s := range benchRegistry.specs {
		names = append(names, string(s.Name))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// spec returns the benchmark's registry entry, or nil if unregistered.
func (b Benchmark) spec() *BenchmarkSpec {
	return benchRegistry.byName[normalizeBenchName(string(b))]
}

// Kind returns the benchmark's class (KindCollective for unregistered
// names, matching the historical default).
func (b Benchmark) Kind() Kind {
	if s := b.spec(); s != nil {
		return s.Kind
	}
	return KindCollective
}

// Columns returns the benchmark's report-column set.
func (b Benchmark) Columns() Columns {
	if s := b.spec(); s != nil {
		return s.Columns
	}
	return ColumnsLatency
}

// Collective returns the runtime collective whose algorithm registry the
// benchmark exercises, if it has selectable algorithms.
func (b Benchmark) Collective() (mpi.Collective, bool) {
	if s := b.spec(); s != nil && s.Algo != "" {
		return s.Algo, true
	}
	return "", false
}

// reduces reports whether the benchmark applies a reduction operator.
func (b Benchmark) reduces() bool {
	s := b.spec()
	return s != nil && s.Reduces
}

// DescribeBenchmarks renders the registry as a grouped human-readable
// listing, used by the CLIs' -list output. Groups appear in registration
// order; aliases are listed at the end.
func DescribeBenchmarks() string {
	var sb strings.Builder
	var groups []string
	byGroup := map[string][]*BenchmarkSpec{}
	for _, s := range benchRegistry.specs {
		if _, ok := byGroup[s.Group]; !ok {
			groups = append(groups, s.Group)
		}
		byGroup[s.Group] = append(byGroup[s.Group], s)
	}
	for _, g := range groups {
		fmt.Fprintf(&sb, "%s:\n", g)
		for _, s := range byGroup[g] {
			fmt.Fprintf(&sb, "  %-16s %s\n", s.Name, s.Summary)
		}
	}
	var aliases []string
	for n, s := range benchRegistry.byName {
		if n != string(s.Name) {
			aliases = append(aliases, n+"="+string(s.Name))
		}
	}
	sort.Strings(aliases)
	if len(aliases) > 0 {
		fmt.Fprintf(&sb, "aliases: %s\n", strings.Join(aliases, ", "))
	}
	return sb.String()
}

// Bench is the per-rank harness handle a benchmark body runs against: it
// wraps the mode adapter (C / Py / Pickle dispatch, sized buffers), the
// current message size and loop counts, and the timing and aggregation
// helpers every body needs. The harness contract for a body:
//
//  1. The body is called once per message size on every rank, after the
//     buffers are sized, a barrier has isolated it from the previous size,
//     and every rank's virtual clock is reset to zero.
//  2. Move messages with Send/Recv/Exchange (mode-dispatched), Collective/
//     ICollective (named collectives), or AckSend/AckRecv (the raw 4-byte
//     window acknowledgements of the bandwidth tests).
//  3. Time with Wtime (the rank's virtual clock, microseconds); inject
//     virtual compute with Compute.
//  4. Aggregate with ReduceRow: it reduces the local latency across ranks
//     (average of averages, global min/max) and returns the filled row on
//     rank 0 and a zero row elsewhere. Bodies must return exactly that
//     shape — the run loop appends rank 0's row to the series.
type Bench struct {
	opts   Options
	o      *ops
	size   int
	iters  int
	warmup int
	// proc short-circuits the o.c.Proc() chain for Wtime: the benchmark
	// loop samples the clock twice per iteration on every rank, and at huge
	// world counts the two extra pointer hops are a measurable slice of the
	// sweep.
	proc *mpi.Proc
}

// Options returns the run's effective (defaulted) options.
func (b *Bench) Options() Options { return b.opts }

// Comm returns the rank's world communicator.
func (b *Bench) Comm() *mpi.Comm { return b.o.c }

// Size returns the current message size in bytes.
func (b *Bench) Size() int { return b.size }

// Iters returns the timed iteration count for the current size.
func (b *Bench) Iters() int { return b.iters }

// Warmup returns the warm-up iteration count for the current size.
func (b *Bench) Warmup() int { return b.warmup }

// Wtime returns the rank's virtual clock.
func (b *Bench) Wtime() vtime.Micros { return b.proc.Wtime() }

// Barrier synchronizes through the layer under test.
func (b *Bench) Barrier() error { return b.o.barrier() }

// Send moves one message of the current size to dst, through the mode
// under test.
func (b *Bench) Send(dst, tag int) error { return b.o.send(dst, tag) }

// Recv receives one message of the current size from src, through the
// mode under test.
func (b *Bench) Recv(src, tag int) error { return b.o.recv(src, tag) }

// Exchange performs the bidirectional transfer of the bibw test with peer.
func (b *Bench) Exchange(peer int) error { return b.o.exchange(peer) }

// AckSend sends the 4-byte window acknowledgement of the bandwidth tests;
// it always uses the raw runtime, like OMB's C ack.
func (b *Bench) AckSend(dst int) error { return b.o.ackSend(dst) }

// AckRecv receives the 4-byte window acknowledgement.
func (b *Bench) AckRecv(src int) error { return b.o.ackRecv(src) }

// Collective runs the named blocking collective for the current size.
func (b *Bench) Collective(name Benchmark) error { return b.o.collective(name) }

// ICollective posts the named nonblocking collective for the current size
// and returns its request (C mode only).
func (b *Bench) ICollective(name Benchmark) (*mpi.Request, error) { return b.o.icollective(name) }

// Compute injects d microseconds of virtual computation.
func (b *Bench) Compute(d vtime.Micros) { b.o.compute(d) }

// ReduceRow aggregates the local latency across ranks (average of
// averages, global min and max) into the row for the current size; mbps
// fills the bandwidth column from rank 0. It returns the filled row on
// rank 0 and a zero row on every other rank.
func (b *Bench) ReduceRow(localLat, mbps float64) (stats.Row, error) {
	return reduceRow(b.o, b.size, localLat, mbps)
}
