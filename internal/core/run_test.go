package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

// quickOpts returns fast options for correctness-focused runs.
func quickOpts(b Benchmark, mode Mode) Options {
	return Options{
		Benchmark:  b,
		Mode:       mode,
		Buffer:     pybuf.NumPy,
		Ranks:      2,
		PPN:        1,
		MinSize:    8,
		MaxSize:    64 * 1024,
		Iters:      10,
		Warmup:     2,
		LargeIters: 3, LargeWarmup: 1,
	}
}

func TestLatencyRunsAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeC, ModePy, ModePickle} {
		rep, err := Run(quickOpts(Latency, mode))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(rep.Series.Rows) == 0 {
			t.Fatalf("mode %v: empty series", mode)
		}
		for _, r := range rep.Series.Rows {
			if r.AvgUs <= 0 || math.IsNaN(r.AvgUs) {
				t.Errorf("mode %v size %d: bad latency %v", mode, r.Size, r.AvgUs)
			}
		}
	}
}

func TestLatencyDeterministic(t *testing.T) {
	a, err := Run(quickOpts(Latency, ModePy))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickOpts(Latency, ModePy))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Series.Rows, b.Series.Rows) {
		t.Fatal("repeated runs differ; virtual timing is not deterministic")
	}
}

func TestPyModeSlowerThanC(t *testing.T) {
	c, err := Run(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	py, err := Run(quickOpts(Latency, ModePy))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range py.Series.Rows {
		base, ok := c.Series.Get(r.Size)
		if !ok {
			t.Fatalf("size %d missing from C series", r.Size)
		}
		if r.AvgUs <= base.AvgUs {
			t.Errorf("size %d: OMB-Py %v us not above OMB %v us", r.Size, r.AvgUs, base.AvgUs)
		}
	}
}

func TestPickleSlowerThanDirect(t *testing.T) {
	py, err := Run(quickOpts(Latency, ModePy))
	if err != nil {
		t.Fatal(err)
	}
	pk, err := Run(quickOpts(Latency, ModePickle))
	if err != nil {
		t.Fatal(err)
	}
	over := stats.AvgOverheadUs(&pk.Series, &py.Series)
	if over <= 0 {
		t.Errorf("pickle overhead %v us, want positive", over)
	}
	// Divergence: pickle overhead at 64 KiB must exceed overhead at 8 B.
	small, _ := pk.Series.Get(8)
	smallBase, _ := py.Series.Get(8)
	large, _ := pk.Series.Get(64 * 1024)
	largeBase, _ := py.Series.Get(64 * 1024)
	if (large.AvgUs - largeBase.AvgUs) <= (small.AvgUs - smallBase.AvgUs) {
		t.Errorf("pickle overhead does not grow with size: small %.3f large %.3f",
			small.AvgUs-smallBase.AvgUs, large.AvgUs-largeBase.AvgUs)
	}
}

func TestBandwidthMonotoneAndBounded(t *testing.T) {
	opts := quickOpts(Bandwidth, ModeC)
	opts.MaxSize = 1 << 20
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, r := range rep.Series.Rows {
		if r.MBps <= 0 {
			t.Fatalf("size %d: bandwidth %v", r.Size, r.MBps)
		}
		if r.Size >= 64*1024 && r.MBps < prev*0.5 {
			t.Errorf("size %d: bandwidth collapsed: %v after %v", r.Size, r.MBps, prev)
		}
		prev = r.MBps
	}
	// Peak must approach but not exceed the modelled link bandwidth.
	last := rep.Series.Rows[len(rep.Series.Rows)-1]
	if last.MBps > 12.4*1024 {
		t.Errorf("peak bandwidth %v MB/s exceeds the 12.4 GB/s fabric", last.MBps)
	}
	if last.MBps < 6000 {
		t.Errorf("peak bandwidth %v MB/s too far below the fabric limit", last.MBps)
	}
}

func TestAllCollectivesRunBothModes(t *testing.T) {
	for _, b := range Benchmarks() {
		if b.Kind() == KindPtPt {
			continue
		}
		for _, mode := range []Mode{ModeC, ModePy} {
			if b.Kind() == KindOverlap && mode != ModeC {
				continue // overlap benchmarks are C-mode only
			}
			if !b.spec().SupportsMode(mode) {
				continue // e.g. fault scenarios are C-mode only
			}
			opts := quickOpts(b, mode)
			opts.Ranks, opts.PPN = 8, 4
			opts.MaxSize = 16 * 1024
			if b.spec().Group == groupFault {
				// Fault scenarios refuse to run without a plan; a small
				// noise plan keeps them on the clean path through the
				// latency pipeline.
				opts.Faults = "noise:sigma=1us"
			}
			rep, err := Run(opts)
			if err != nil {
				t.Fatalf("%s %v: %v", b, mode, err)
			}
			if len(rep.Series.Rows) == 0 {
				t.Fatalf("%s %v: empty series", b, mode)
			}
			for _, r := range rep.Series.Rows {
				if r.AvgUs <= 0 && b != Barrier {
					t.Errorf("%s %v size %d: latency %v", b, mode, r.Size, r.AvgUs)
				}
				if r.MinUs > r.AvgUs+1e-9 || r.AvgUs > r.MaxUs+1e-9 {
					t.Errorf("%s %v size %d: min %v avg %v max %v out of order",
						b, mode, r.Size, r.MinUs, r.AvgUs, r.MaxUs)
				}
			}
		}
	}
}

func TestTimingOnlyMatchesData(t *testing.T) {
	for _, b := range []Benchmark{Latency, Allreduce, Allgather} {
		opts := quickOpts(b, ModePy)
		if b != Latency {
			opts.Ranks, opts.PPN = 8, 4
		}
		opts.MaxSize = 128 * 1024
		withData, err := Run(opts)
		if err != nil {
			t.Fatalf("%s data: %v", b, err)
		}
		opts.TimingOnly = true
		timing, err := Run(opts)
		if err != nil {
			t.Fatalf("%s timing-only: %v", b, err)
		}
		if !reflect.DeepEqual(withData.Series.Rows, timing.Series.Rows) {
			t.Errorf("%s: timing-only diverges from data run\n data: %+v\n spec: %+v",
				b, withData.Series.Rows, timing.Series.Rows)
		}
	}
}

func TestGPUBufferHierarchy(t *testing.T) {
	// CuPy ~ PyCUDA < Numba overhead, the paper's GPU finding.
	base := Options{
		Benchmark: Latency, Mode: ModeC, Cluster: "bridges2",
		Ranks: 2, PPN: 1, UseGPU: true,
		MinSize: 8, MaxSize: 8 * 1024, Iters: 10, Warmup: 2,
	}
	c, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	over := map[pybuf.Library]float64{}
	for _, lib := range pybuf.GPULibraries() {
		opts := base
		opts.Mode = ModePy
		opts.Buffer = lib
		rep, err := Run(opts)
		if err != nil {
			t.Fatalf("%v: %v", lib, err)
		}
		over[lib] = stats.AvgOverheadUs(&rep.Series, &c.Series)
		if over[lib] <= 0 {
			t.Errorf("%v: overhead %v not positive", lib, over[lib])
		}
	}
	if !(over[pybuf.Numba] > over[pybuf.CuPy] && over[pybuf.Numba] > over[pybuf.PyCUDA]) {
		t.Errorf("Numba overhead %v should exceed CuPy %v and PyCUDA %v",
			over[pybuf.Numba], over[pybuf.CuPy], over[pybuf.PyCUDA])
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{Benchmark: "nope"},
		{Benchmark: Latency, Ranks: 4},                            // pt2pt needs 2
		{Benchmark: MultiLatency, Ranks: 5},                       // odd
		{Benchmark: Gather, Mode: ModePickle, Ranks: 4},           // pickle unsupported
		{Benchmark: Latency, Mode: ModePy, Buffer: pybuf.CuPy},    // GPU lib without GPU
		{Benchmark: Latency, Ranks: 2, MinSize: 1024, MaxSize: 8}, // inverted sizes
	}
	for i, o := range cases {
		if _, err := Run(o); err == nil {
			t.Errorf("case %d (%+v): expected error", i, o)
		}
	}
}

func TestIntelMPISlowerThanMVAPICH2(t *testing.T) {
	opts := quickOpts(Latency, ModePy)
	mv, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Impl = netmodel.IntelMPI
	impi, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	d := stats.AvgOverheadUs(&impi.Series, &mv.Series)
	if d <= 0 {
		t.Errorf("Intel MPI should trail MVAPICH2, got delta %v us", d)
	}
}

func TestBenchmarkKinds(t *testing.T) {
	if Latency.Kind() != KindPtPt || Allreduce.Kind() != KindCollective || Gatherv.Kind() != KindVector {
		t.Error("benchmark kinds misclassified")
	}
	if _, err := ParseBenchmark("allreduce"); err != nil {
		t.Error(err)
	}
	if _, err := ParseBenchmark("bogus"); err == nil {
		t.Error("bogus benchmark accepted")
	}
	if _, err := ParseMode("py"); err != nil {
		t.Error(err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestReduceRowAggregatesAcrossRanks(t *testing.T) {
	// Sanity-check min <= avg <= max on a multi-rank collective.
	opts := quickOpts(Allreduce, ModeC)
	opts.Ranks, opts.PPN = 16, 4
	opts.MinSize, opts.MaxSize = 4, 4096
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Series.Rows {
		if !(r.MinUs <= r.AvgUs && r.AvgUs <= r.MaxUs) {
			t.Errorf("size %d: min %v avg %v max %v", r.Size, r.MinUs, r.AvgUs, r.MaxUs)
		}
	}
	_ = mpi.OpSum // keep the import grouped with runtime types used above
}
