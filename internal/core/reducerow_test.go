package core

import (
	"reflect"
	"testing"

	"repro/internal/pybuf"
)

// TestRowReduceFusionUnchanged proves the satellite claim behind the fused
// min/sum/max aggregation: because every message size is clock-isolated
// (barrier + ResetClock before each size), the aggregation protocol runs
// outside anything that is measured, so collapsing three reduce rounds into
// one changes no reported number. The legacy three-round path is kept only
// for this comparison.
func TestRowReduceFusionUnchanged(t *testing.T) {
	configs := []Options{
		{Benchmark: Latency, Mode: ModeC, Ranks: 2, PPN: 1,
			MinSize: 1, MaxSize: 64 * 1024, Iters: 10, Warmup: 2, LargeIters: 4, LargeWarmup: 1},
		{Benchmark: Allreduce, Mode: ModePy, Buffer: pybuf.NumPy, Ranks: 12, PPN: 4,
			MinSize: 4, MaxSize: 64 * 1024, Iters: 10, Warmup: 2, LargeIters: 4, LargeWarmup: 1},
		{Benchmark: Bandwidth, Mode: ModeC, Ranks: 2, PPN: 1, Window: 16,
			MinSize: 1024, MaxSize: 64 * 1024, Iters: 10, Warmup: 2, LargeIters: 4, LargeWarmup: 1},
	}
	defer func() { fuseRowReduce = true }()
	for _, opts := range configs {
		fuseRowReduce = true
		fused, err := Run(opts)
		if err != nil {
			t.Fatalf("%s fused: %v", opts.Benchmark, err)
		}
		fuseRowReduce = false
		legacy, err := Run(opts)
		if err != nil {
			t.Fatalf("%s legacy: %v", opts.Benchmark, err)
		}
		if !reflect.DeepEqual(fused.Series, legacy.Series) {
			t.Errorf("%s: fused aggregation changed reported rows\nfused:  %+v\nlegacy: %+v",
				opts.Benchmark, fused.Series, legacy.Series)
		}
	}
}
