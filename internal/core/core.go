package core
