package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// CacheKey returns the content address of the simulation these options
// describe: a hex SHA-256 over the withDefaults-canonicalized fields, in a
// fixed order with sorted map keys. Determinism is the engine's contract —
// identical options produce bit-identical reports — so the key is a true
// content address: the tuning service's result cache and singleflight
// deduplication both key on it.
//
// Canonicalization means spelling cannot split the cache: benchmark
// aliases resolve through the registry, forced algorithm names resolve
// through the runtime registry ("rd" and "recursive_doubling" share a
// key), and defaulted fields hash at their effective values.
//
// Two kinds of fields are deliberately excluded:
//
//   - Execution knobs that cannot change a reported number: Engine, NoFold
//     and NoSchedFold select *how* the simulation runs, and the parity
//     suites pin their results bit-identical. Hashing them would split the
//     cache across entries holding the same bytes.
//   - The Profiler hook, which records binding-layer phases without
//     affecting any reported number (the serving layer rejects it anyway:
//     a hook cannot travel over JSON).
func (o Options) CacheKey() string {
	o = o.withDefaults()
	h := sha256.New()
	writeField := func(name string, v any) {
		fmt.Fprintf(h, "%s=%v\n", name, v)
	}
	writeField("benchmark", o.Benchmark)
	writeField("cluster", o.Cluster)
	writeField("impl", o.Impl)
	writeField("mode", o.Mode)
	writeField("buffer", o.Buffer)
	writeField("gpu", o.UseGPU)
	writeField("ranks", o.Ranks)
	writeField("ppn", o.PPN)
	writeField("min_size", o.MinSize)
	writeField("max_size", o.MaxSize)
	writeField("iters", o.Iters)
	writeField("warmup", o.Warmup)
	writeField("large_threshold", o.LargeThreshold)
	writeField("large_iters", o.LargeIters)
	writeField("large_warmup", o.LargeWarmup)
	writeField("window", o.Window)
	writeField("pairs", o.Pairs)
	writeField("timing_only", o.TimingOnly)
	writeField("sizes", o.Sizes)
	writeField("dtype", int(o.DType))
	writeField("tuning.bcast_scatter_ring_min", o.Tuning.BcastScatterRingMin)
	writeField("tuning.allreduce_rabenseifner_min", o.Tuning.AllreduceRabenseifnerMin)
	writeField("tuning.allgather_rd_max_total", o.Tuning.AllgatherRDMaxTotal)
	writeField("tuning.allgather_bruck_max_total", o.Tuning.AllgatherBruckMaxTotal)
	writeField("tuning.alltoall_bruck_max_block", o.Tuning.AlltoallBruckMaxBlock)
	writeField("faults", o.Faults)
	writeAlgorithms(h, o)
	return hex.EncodeToString(h.Sum(nil))
}

// writeAlgorithms hashes the forced-algorithm map with canonical collective
// and algorithm names in sorted key order. Options that fail to
// canonicalize (unknown collective or algorithm — validate rejects them
// before any run) hash the raw map instead, still sorted, so even invalid
// options get a stable key.
func writeAlgorithms(h io.Writer, o Options) {
	type pair struct{ coll, name string }
	var pairs []pair
	if m, err := o.mpiAlgorithms(); err == nil {
		for coll, name := range m {
			pairs = append(pairs, pair{string(coll), name})
		}
	} else {
		for coll, name := range o.Algorithms {
			pairs = append(pairs, pair{coll, name})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].coll < pairs[j].coll })
	for _, p := range pairs {
		fmt.Fprintf(h, "algorithm.%s=%s\n", p.coll, p.name)
	}
}
