package core

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// Tests for the multi-pair family (mbw_mr, multi_bw) — the workload
// registered from its own file with no dispatch-site edits.

func multiPairOpts(b Benchmark) Options {
	return Options{
		Benchmark: b, Mode: ModeC, Ranks: 16, PPN: 4,
		MinSize: 8, MaxSize: 16 * 1024, Window: 16,
		Iters: 10, Warmup: 2, LargeIters: 4, LargeWarmup: 1,
	}
}

func TestMultiPairBandwidthRuns(t *testing.T) {
	rep, err := Run(multiPairOpts(MultiBWMR))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series.Rows) == 0 {
		t.Fatal("empty series")
	}
	for _, r := range rep.Series.Rows {
		if r.MBps <= 0 || math.IsNaN(r.MBps) {
			t.Errorf("size %d: aggregate bandwidth %v", r.Size, r.MBps)
		}
		if r.MsgRate <= 0 {
			t.Errorf("size %d: message rate %v, want > 0", r.Size, r.MsgRate)
		}
		// The message-rate column is exactly the bandwidth divided through
		// by the message size.
		want := r.MBps * 1e6 / float64(r.Size)
		if math.Abs(r.MsgRate-want) > 1e-6*want {
			t.Errorf("size %d: msg rate %v, want mbps*1e6/size = %v", r.Size, r.MsgRate, want)
		}
	}
}

// TestMultiPairAggregatesOverPairs pins the multi-pair point: with
// independent virtual wires, 8 concurrent pairs must move strictly more
// aggregate bandwidth than one pair.
func TestMultiPairAggregatesOverPairs(t *testing.T) {
	one := multiPairOpts(MultiBWMR)
	one.Pairs = 1
	many := multiPairOpts(MultiBWMR)
	many.Pairs = 8
	repOne, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	repMany, err := Run(many)
	if err != nil {
		t.Fatal(err)
	}
	last := repOne.Series.Rows[len(repOne.Series.Rows)-1]
	lastMany, ok := repMany.Series.Get(last.Size)
	if !ok {
		t.Fatal("size missing")
	}
	if lastMany.MBps <= last.MBps {
		t.Errorf("8 pairs %v MB/s not above 1 pair %v MB/s", lastMany.MBps, last.MBps)
	}
}

// TestMultiBWMatchesMBWMRBandwidth pins that multi_bw is the same workload
// as mbw_mr minus the message-rate column.
func TestMultiBWMatchesMBWMRBandwidth(t *testing.T) {
	mr, err := Run(multiPairOpts(MultiBWMR))
	if err != nil {
		t.Fatal(err)
	}
	bw, err := Run(multiPairOpts(MultiBandwidth))
	if err != nil {
		t.Fatal(err)
	}
	for i := range mr.Series.Rows {
		a, b := mr.Series.Rows[i], bw.Series.Rows[i]
		if a.Size != b.Size || a.MBps != b.MBps || a.AvgUs != b.AvgUs {
			t.Errorf("row %d diverged: mbw_mr %+v, multi_bw %+v", i, a, b)
		}
		if b.MsgRate != 0 {
			t.Errorf("multi_bw row %d carries a message rate %v", i, b.MsgRate)
		}
	}
}

// TestMultiPairEngineParity runs mbw_mr timing-only under both execution
// engines and requires bit-identical series — the registry family must be
// a first-class citizen of the event executor.
func TestMultiPairEngineParity(t *testing.T) {
	for _, shape := range [][2]int{{16, 1}, {63, 7}} {
		opts := multiPairOpts(MultiBWMR)
		opts.Ranks, opts.PPN = shape[0], shape[1]
		opts.TimingOnly = true
		opts.Engine = "goroutine"
		goroutine, err := Run(opts)
		if err != nil {
			t.Fatalf("%dx%d goroutine: %v", shape[0], shape[1], err)
		}
		opts.Engine = "event"
		event, err := Run(opts)
		if err != nil {
			t.Fatalf("%dx%d event: %v", shape[0], shape[1], err)
		}
		if !reflect.DeepEqual(goroutine.Series.Rows, event.Series.Rows) {
			t.Errorf("%dx%d: engines diverged\ngoroutine: %+v\nevent:     %+v",
				shape[0], shape[1], goroutine.Series.Rows, event.Series.Rows)
		}
	}
}

// TestMultiPairOddRanksIdleLast runs with an odd rank count: the unpaired
// last rank sits the streams out but still joins the aggregation, so the
// run must complete and report positive aggregate bandwidth.
func TestMultiPairOddRanksIdleLast(t *testing.T) {
	opts := multiPairOpts(MultiBWMR)
	opts.Ranks, opts.PPN = 5, 5
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Series.Rows {
		if r.MBps <= 0 {
			t.Errorf("size %d: bandwidth %v with idle rank", r.Size, r.MBps)
		}
		// The idle rank's elapsed time is ~0, which must surface as the
		// row minimum without corrupting the average.
		if r.MinUs > r.AvgUs+1e-9 {
			t.Errorf("size %d: min %v above avg %v", r.Size, r.MinUs, r.AvgUs)
		}
	}
}

func TestMultiPairPairsValidation(t *testing.T) {
	opts := multiPairOpts(MultiBWMR)
	opts.Pairs = 9 // needs 18 ranks, only 16
	if _, err := Run(opts); err == nil || !strings.Contains(err.Error(), "pairs") {
		t.Errorf("oversized -pairs accepted: %v", err)
	}
	opts.Pairs = -1
	if _, err := Run(opts); err == nil {
		t.Error("negative -pairs accepted")
	}
	// Pairs is ignored outside the multi-pair family.
	lat := quickOpts(Latency, ModeC)
	lat.Pairs = 1
	if _, err := Run(lat); err != nil {
		t.Errorf("latency with Pairs set should run: %v", err)
	}
}

// TestMultiPairParallelSweepMatchesSerial pins bit-identical rows between
// serial and parallel sweeps over pair counts.
func TestMultiPairParallelSweepMatchesSerial(t *testing.T) {
	base := multiPairOpts(MultiBWMR)
	base.TimingOnly = true
	variants := []Variant{}
	for _, pairs := range []int{1, 2, 4, 8} {
		pairs := pairs
		variants = append(variants, Variant{
			Name:   string(rune('0'+pairs)) + " pairs",
			Mutate: func(o *Options) { o.Pairs = pairs },
		})
	}
	serial, err := (Sweep{Base: base, Variants: variants, Workers: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (Sweep{Base: base, Variants: variants, Workers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Reports {
		if !reflect.DeepEqual(serial.Reports[i].Series, parallel.Reports[i].Series) {
			t.Fatalf("variant %d diverged between serial and parallel sweeps", i)
		}
	}
}

// TestMultiPairReportColumns pins the rendered message-rate column and the
// JSON msg_rate field.
func TestMultiPairReportColumns(t *testing.T) {
	rep, err := Run(multiPairOpts(MultiBWMR))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Text()
	for _, want := range []string{"MB/s", "Messages/s"} {
		if !strings.Contains(text, want) {
			t.Errorf("mbw_mr text report misses %q:\n%s", want, text)
		}
	}
	raw, err := rep.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"msg_rate"`) {
		t.Errorf("mbw_mr JSON misses msg_rate: %s", raw)
	}
	// Latency reports must keep omitting it.
	lat, err := Run(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	raw, err = lat.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"msg_rate"`) {
		t.Errorf("latency JSON should omit msg_rate: %s", raw)
	}
}
