package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/stats"
)

// reportJSON is the stable serialization schema of a Report.
type reportJSON struct {
	Benchmark string `json:"benchmark"`
	Cluster   string `json:"cluster"`
	Impl      string `json:"impl"`
	Mode      string `json:"mode"`
	Buffer    string `json:"buffer,omitempty"`
	GPU       bool   `json:"gpu"`
	Ranks     int    `json:"ranks"`
	PPN       int    `json:"ppn"`
	// Faults and Failure appear only on fault-injected runs, keeping the
	// no-fault schema (and its golden fixtures) byte-identical.
	Faults  string    `json:"faults,omitempty"`
	Rows    []rowJSON `json:"rows"`
	Failure *Failure  `json:"failure,omitempty"`
}

type rowJSON struct {
	Size  int     `json:"size"`
	AvgUs float64 `json:"avg_us"`
	MinUs float64 `json:"min_us"`
	MaxUs float64 `json:"max_us"`
	MBps  float64 `json:"mbps,omitempty"`
	// Multi-pair message-rate column (omitted elsewhere).
	MsgRate float64 `json:"msg_rate,omitempty"`
	// Overlap-benchmark columns (omitted elsewhere).
	CommUs     float64 `json:"comm_us,omitempty"`
	ComputeUs  float64 `json:"compute_us,omitempty"`
	OverlapPct float64 `json:"overlap_pct,omitempty"`
}

// MarshalJSON implements json.Marshaler with a stable, documented schema.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Benchmark: string(r.Options.Benchmark),
		Cluster:   r.Options.Cluster,
		Impl:      string(r.Options.Impl),
		Mode:      r.Options.Mode.String(),
		GPU:       r.Options.UseGPU,
		Ranks:     r.Options.Ranks,
		PPN:       r.Options.PPN,
	}
	if r.Options.Mode != ModeC {
		out.Buffer = r.Options.Buffer.String()
	}
	out.Faults = r.Options.Faults
	out.Failure = r.Failure
	for _, row := range r.Series.Rows {
		out.Rows = append(out.Rows, rowJSON{
			Size: row.Size, AvgUs: row.AvgUs, MinUs: row.MinUs,
			MaxUs: row.MaxUs, MBps: row.MBps, MsgRate: row.MsgRate,
			CommUs: row.CommUs, ComputeUs: row.ComputeUs, OverlapPct: row.OverlapPct,
		})
	}
	return json.Marshal(out)
}

// Text renders the report in osu-style columns.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s (%s) on %s, %d ranks x (ppn %d)\n",
		r.Options.Benchmark, r.Series.Name, r.Options.Cluster, r.Options.Ranks, r.Options.PPN)
	cols := r.Options.Benchmark.Columns()
	switch cols {
	case ColumnsBandwidth:
		fmt.Fprintf(&sb, "%-12s %14s\n", "# Size(B)", "Bandwidth(MB/s)")
	case ColumnsMessageRate:
		fmt.Fprintf(&sb, "%-12s %14s %16s\n", "# Size(B)", "MB/s", "Messages/s")
	case ColumnsOverlap:
		fmt.Fprintf(&sb, "%-12s %12s %12s %12s %12s\n",
			"# Size(B)", "Comm(us)", "Compute(us)", "Total(us)", "Overlap(%)")
	default:
		fmt.Fprintf(&sb, "%-12s %12s %12s %12s\n", "# Size(B)", "Avg(us)", "Min(us)", "Max(us)")
	}
	for _, row := range r.Series.Rows {
		switch cols {
		case ColumnsBandwidth:
			fmt.Fprintf(&sb, "%-12d %14.2f\n", row.Size, row.MBps)
		case ColumnsMessageRate:
			fmt.Fprintf(&sb, "%-12d %14.2f %16.2f\n", row.Size, row.MBps, row.MsgRate)
		case ColumnsOverlap:
			fmt.Fprintf(&sb, "%-12s %12.2f %12.2f %12.2f %12.2f\n",
				stats.HumanBytes(row.Size), row.CommUs, row.ComputeUs, row.AvgUs, row.OverlapPct)
		default:
			fmt.Fprintf(&sb, "%-12s %12.2f %12.2f %12.2f\n",
				stats.HumanBytes(row.Size), row.AvgUs, row.MinUs, row.MaxUs)
		}
	}
	if f := r.Failure; f != nil {
		switch f.Code {
		case "timeout", "canceled":
			// Lead with the operational code so a glance (or a grep for
			// "# FAILED: timeout") tells expiry apart from fault injection.
			fmt.Fprintf(&sb, "# FAILED: %s (%s)\n", f.Code, f.Message)
		default:
			fmt.Fprintf(&sb, "# FAILED: %s\n", f.Message)
		}
	}
	return sb.String()
}
