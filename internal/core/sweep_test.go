package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pybuf"
	"repro/internal/stats"
)

func TestSweepRunsVariantsInOrder(t *testing.T) {
	sw := Sweep{
		Base: quickOpts(Latency, ModeC),
		Variants: []Variant{
			{Name: "baseline"},
			{Name: "python", Mutate: func(o *Options) { o.Mode = ModePy }},
			{Name: "pickle", Mutate: func(o *Options) { o.Mode = ModePickle }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports: %d", len(res.Reports))
	}
	names := []string{"baseline", "python", "pickle"}
	for i, rep := range res.Reports {
		if rep.Series.Name != names[i] {
			t.Errorf("report %d named %q", i, rep.Series.Name)
		}
	}
	// Ordering of cost: baseline < python < pickle at the largest size.
	sz := 64 * 1024
	b, _ := res.Reports[0].Series.Get(sz)
	p, _ := res.Reports[1].Series.Get(sz)
	k, _ := res.Reports[2].Series.Get(sz)
	if !(b.AvgUs < p.AvgUs && p.AvgUs < k.AvgUs) {
		t.Errorf("cost ordering broken: %v %v %v", b.AvgUs, p.AvgUs, k.AvgUs)
	}
}

func TestSweepTableAndSeries(t *testing.T) {
	sw := Sweep{
		Base: quickOpts(Latency, ModeC),
		Variants: []Variant{
			{Name: "A"},
			{Name: "B", Mutate: func(o *Options) { o.Mode = ModePy; o.Buffer = pybuf.NumPy }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series()) != 2 {
		t.Fatal("series missing")
	}
	tab := res.Table("demo", "latency(us)")
	out := tab.Render()
	for _, want := range []string{"demo", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("table misses %q", want)
		}
	}
}

// algorithmSweep builds a sweep whose variants force every registered
// allgather algorithm plus a mode change -- enough variety to catch
// cross-variant interference.
func algorithmSweep(workers int) Sweep {
	base := quickOpts(Allgather, ModeC)
	base.Ranks, base.PPN = 8, 4
	return Sweep{
		Base:    base,
		Workers: workers,
		Variants: []Variant{
			{Name: "default"},
			{Name: "rd", Mutate: func(o *Options) { o.Algorithms = map[string]string{"allgather": "rd"} }},
			{Name: "bruck", Mutate: func(o *Options) { o.Algorithms = map[string]string{"allgather": "bruck"} }},
			{Name: "ring", Mutate: func(o *Options) { o.Algorithms = map[string]string{"allgather": "ring"} }},
			{Name: "py", Mutate: func(o *Options) { o.Mode = ModePy }},
		},
	}
}

// TestSweepParallelBitIdentical: the worker pool must return reports in
// declaration order, bit-identical to a serial sweep.
func TestSweepParallelBitIdentical(t *testing.T) {
	serial, err := algorithmSweep(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, -1} {
		parallel, err := algorithmSweep(workers).Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel.Reports) != len(serial.Reports) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(parallel.Reports), len(serial.Reports))
		}
		for i := range serial.Reports {
			if !reflect.DeepEqual(serial.Reports[i].Series, parallel.Reports[i].Series) {
				t.Errorf("workers=%d variant %d (%s): parallel series differs from serial",
					workers, i, serial.Reports[i].Series.Name)
			}
		}
	}
}

// TestSweepForcedAlgorithmChangesNumbers: the ablation dimension is real --
// forcing ring on a small allgather must produce different latencies than
// the default recursive doubling, while forcing the default's own pick
// must not change anything.
func TestSweepForcedAlgorithmChangesNumbers(t *testing.T) {
	res, err := algorithmSweep(4).Run()
	if err != nil {
		t.Fatal(err)
	}
	def, rd, ring := res.Reports[0].Series, res.Reports[1].Series, res.Reports[3].Series
	sz := 8 // tiny: default policy picks recursive doubling on 8 ranks
	d, _ := def.Get(sz)
	r, _ := rd.Get(sz)
	g, _ := ring.Get(sz)
	if d.AvgUs != r.AvgUs {
		t.Errorf("forcing the default algorithm changed latency: %v vs %v", d.AvgUs, r.AvgUs)
	}
	if d.AvgUs == g.AvgUs {
		t.Errorf("forcing ring did not change latency (%v)", d.AvgUs)
	}
}

func TestOptionsAlgorithmsValidation(t *testing.T) {
	opts := quickOpts(Allgather, ModeC)
	opts.Algorithms = map[string]string{"allgather": "warp_drive"}
	if _, err := Run(opts); err == nil {
		t.Error("unknown algorithm must fail Run")
	}
	opts.Algorithms = map[string]string{"warp": "ring"}
	if _, err := Run(opts); err == nil {
		t.Error("unknown collective must fail Run")
	}
	if _, err := ParseAlgorithmList("allgather=ring,allreduce=rd"); err != nil {
		t.Errorf("valid list rejected: %v", err)
	}
	if m, _ := ParseAlgorithmList("allreduce=raben"); m["allreduce"] != "rabenseifner" {
		t.Errorf("alias not canonicalised: %v", m)
	}
	for _, bad := range []string{"", "ring", "allgather=warp", "warp=ring"} {
		if _, err := ParseAlgorithmList(bad); err == nil {
			t.Errorf("list %q should fail", bad)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := (Sweep{Base: quickOpts(Latency, ModeC)}).Run(); err == nil {
		t.Error("empty sweep should fail")
	}
	sw := Sweep{
		Base: quickOpts(Latency, ModeC),
		Variants: []Variant{
			{Name: "broken", Mutate: func(o *Options) { o.Ranks = 7 }},
		},
	}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Errorf("variant error not surfaced: %v", err)
	}
}

func TestBaselinePair(t *testing.T) {
	omb, ombpy, err := BaselinePair(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	if omb.Name != "OMB" || ombpy.Name != "OMB-Py" {
		t.Errorf("names %q %q", omb.Name, ombpy.Name)
	}
	if over := stats.AvgOverheadUs(ombpy, omb); over <= 0 {
		t.Errorf("overhead %v", over)
	}
}
