package core

import (
	"strings"
	"testing"

	"repro/internal/pybuf"
	"repro/internal/stats"
)

func TestSweepRunsVariantsInOrder(t *testing.T) {
	sw := Sweep{
		Base: quickOpts(Latency, ModeC),
		Variants: []Variant{
			{Name: "baseline"},
			{Name: "python", Mutate: func(o *Options) { o.Mode = ModePy }},
			{Name: "pickle", Mutate: func(o *Options) { o.Mode = ModePickle }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports: %d", len(res.Reports))
	}
	names := []string{"baseline", "python", "pickle"}
	for i, rep := range res.Reports {
		if rep.Series.Name != names[i] {
			t.Errorf("report %d named %q", i, rep.Series.Name)
		}
	}
	// Ordering of cost: baseline < python < pickle at the largest size.
	sz := 64 * 1024
	b, _ := res.Reports[0].Series.Get(sz)
	p, _ := res.Reports[1].Series.Get(sz)
	k, _ := res.Reports[2].Series.Get(sz)
	if !(b.AvgUs < p.AvgUs && p.AvgUs < k.AvgUs) {
		t.Errorf("cost ordering broken: %v %v %v", b.AvgUs, p.AvgUs, k.AvgUs)
	}
}

func TestSweepTableAndSeries(t *testing.T) {
	sw := Sweep{
		Base: quickOpts(Latency, ModeC),
		Variants: []Variant{
			{Name: "A"},
			{Name: "B", Mutate: func(o *Options) { o.Mode = ModePy; o.Buffer = pybuf.NumPy }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series()) != 2 {
		t.Fatal("series missing")
	}
	tab := res.Table("demo", "latency(us)")
	out := tab.Render()
	for _, want := range []string{"demo", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("table misses %q", want)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	if _, err := (Sweep{Base: quickOpts(Latency, ModeC)}).Run(); err == nil {
		t.Error("empty sweep should fail")
	}
	sw := Sweep{
		Base: quickOpts(Latency, ModeC),
		Variants: []Variant{
			{Name: "broken", Mutate: func(o *Options) { o.Ranks = 7 }},
		},
	}
	if _, err := sw.Run(); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Errorf("variant error not surfaced: %v", err)
	}
}

func TestBaselinePair(t *testing.T) {
	omb, ombpy, err := BaselinePair(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	if omb.Name != "OMB" || ombpy.Name != "OMB-Py" {
		t.Errorf("names %q %q", omb.Name, ombpy.Name)
	}
	if over := stats.AvgOverheadUs(ombpy, omb); over <= 0 {
		t.Errorf("overhead %v", over)
	}
}
