package core

import (
	"fmt"
	"math"

	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// This file registers the paper's Table II workloads (plus the overlap
// family of PR 3) on the benchmark registry and holds their bodies. The
// bodies are the OMB algorithms verbatim; only the harness handle changed
// when the closed enum dispatch became the registry — the golden fixture
// pins that the numbers did not.

// The built-in benchmarks. The constants are canonical registry names;
// ParseBenchmark also accepts the aliases declared at registration.
const (
	Latency      Benchmark = "latency"
	Bandwidth    Benchmark = "bw"
	BiBandwidth  Benchmark = "bibw"
	MultiLatency Benchmark = "multi_lat"

	Allgather     Benchmark = "allgather"
	Allreduce     Benchmark = "allreduce"
	Alltoall      Benchmark = "alltoall"
	Barrier       Benchmark = "barrier"
	Bcast         Benchmark = "bcast"
	Gather        Benchmark = "gather"
	ReduceScatter Benchmark = "reduce_scatter"
	Reduce        Benchmark = "reduce"
	Scatter       Benchmark = "scatter"

	Allgatherv Benchmark = "allgatherv"
	Alltoallv  Benchmark = "alltoallv"
	Gatherv    Benchmark = "gatherv"
	Scatterv   Benchmark = "scatterv"

	// Overlap benchmarks (osu_iallreduce style, beyond the paper's first
	// release): post the nonblocking collective, inject calibrated virtual
	// compute, Wait, and report pure-communication time, total time and
	// the communication/computation overlap percentage.
	IAllreduce     Benchmark = "iallreduce"
	IBcast         Benchmark = "ibcast"
	IGather        Benchmark = "igather"
	IAllgather     Benchmark = "iallgather"
	IAlltoall      Benchmark = "ialltoall"
	IReduceScatter Benchmark = "ireduce_scatter"
	IScan          Benchmark = "iscan"
)

// Listing groups of the built-in set (Table II order).
const (
	groupPtPt    = "point-to-point"
	groupColl    = "blocking collectives"
	groupVector  = "vector collectives"
	groupOverlap = "overlap (nonblocking, -mode c)"
)

// cAndPy is the mode set of benchmarks the serializing pickle path does
// not cover.
var cAndPy = []Mode{ModeC, ModePy}

// exactRanks is the validation hook of the 2-rank point-to-point tests.
func exactRanks(n int) func(Options) error {
	return func(o Options) error {
		if o.Ranks != n {
			return fmt.Errorf("core: %s needs exactly %d ranks, got %d", o.Benchmark, n, o.Ranks)
		}
		return nil
	}
}

// evenRanks is the validation hook of the pairwise tests.
func evenRanks(o Options) error {
	if o.Ranks%2 != 0 {
		return fmt.Errorf("core: %s needs an even rank count, got %d", o.Benchmark, o.Ranks)
	}
	return nil
}

// Buffer scalings of the rooted/unrooted collectives that move p blocks.
func buffersGather(p int) (int, int)  { return 1, p }
func buffersScatter(p int) (int, int) { return p, 1 }
func buffersAllpair(p int) (int, int) { return p, p }

func init() {
	// Point-to-point (Table II, first group).
	RegisterBenchmark(BenchmarkSpec{
		Name: Latency, Aliases: []string{"lat", "osu_latency"},
		Kind: KindPtPt, Group: groupPtPt,
		Summary:  "ping-pong latency between 2 ranks (osu_latency)",
		MinRanks: 2, Validate: exactRanks(2),
		Body: runLatency,
	})
	RegisterBenchmark(BenchmarkSpec{
		Name: Bandwidth, Aliases: []string{"bandwidth", "osu_bw"},
		Kind: KindPtPt, Group: groupPtPt,
		Summary:  "windowed unidirectional bandwidth (osu_bw)",
		MinRanks: 2, Validate: exactRanks(2), Columns: ColumnsBandwidth,
		Body: runBandwidth,
	})
	RegisterBenchmark(BenchmarkSpec{
		Name: BiBandwidth, Aliases: []string{"bibandwidth", "osu_bibw"},
		Kind: KindPtPt, Group: groupPtPt,
		Summary:  "windowed bidirectional bandwidth (osu_bibw)",
		MinRanks: 2, Validate: exactRanks(2), Columns: ColumnsBandwidth,
		Body: runBiBandwidth,
	})
	RegisterBenchmark(BenchmarkSpec{
		Name: MultiLatency, Aliases: []string{"multi_latency", "osu_multi_lat"},
		Kind: KindPtPt, Group: groupPtPt,
		Summary:  "concurrent pairwise ping-pong latency (osu_multi_lat)",
		MinRanks: 2, Validate: evenRanks,
		Body: runMultiLatency,
	})

	// Blocking collectives (Table II, second group).
	coll := func(name Benchmark, summary string, s BenchmarkSpec) {
		s.Name, s.Summary = name, summary
		s.Kind, s.Group, s.MinRanks = KindCollective, groupColl, 2
		if s.Modes == nil {
			s.Modes = cAndPy
		}
		s.Body = collectiveBody(name)
		RegisterBenchmark(s)
	}
	coll(Allgather, "MPI_Allgather latency", BenchmarkSpec{
		Algo: mpi.CollAllgather, Buffers: buffersGather,
	})
	coll(Allreduce, "MPI_Allreduce latency", BenchmarkSpec{
		Algo: mpi.CollAllreduce, Reduces: true, Modes: []Mode{ModeC, ModePy, ModePickle},
	})
	coll(Alltoall, "MPI_Alltoall latency", BenchmarkSpec{
		Algo: mpi.CollAlltoall, Buffers: buffersAllpair,
	})
	coll(Barrier, "MPI_Barrier latency (one size-0 row)", BenchmarkSpec{
		FixedSizes: []int{0},
	})
	coll(Bcast, "MPI_Bcast latency", BenchmarkSpec{
		Algo: mpi.CollBcast, Modes: []Mode{ModeC, ModePy, ModePickle},
	})
	coll(Gather, "MPI_Gather latency", BenchmarkSpec{Buffers: buffersGather})
	coll(ReduceScatter, "MPI_Reduce_scatter_block latency", BenchmarkSpec{
		Algo: mpi.CollReduceScatter, Reduces: true, Buffers: buffersScatter,
	})
	coll(Reduce, "MPI_Reduce latency", BenchmarkSpec{Reduces: true})
	coll(Scatter, "MPI_Scatter latency", BenchmarkSpec{Buffers: buffersScatter})

	// Vector variants (Table II, third group).
	vector := func(name Benchmark, summary string, buffers func(int) (int, int)) {
		RegisterBenchmark(BenchmarkSpec{
			Name: name, Summary: summary,
			Kind: KindVector, Group: groupVector, MinRanks: 2,
			Modes: cAndPy, Buffers: buffers,
			Body: collectiveBody(name),
		})
	}
	vector(Allgatherv, "MPI_Allgatherv latency (uniform counts)", buffersGather)
	vector(Alltoallv, "MPI_Alltoallv latency (uniform counts)", buffersAllpair)
	vector(Gatherv, "MPI_Gatherv latency (uniform counts)", buffersGather)
	vector(Scatterv, "MPI_Scatterv latency (uniform counts)", buffersScatter)

	// Overlap family (PR 3, beyond the paper's first release).
	overlap := func(name Benchmark, summary string, s BenchmarkSpec) {
		s.Name, s.Summary = name, summary
		s.Kind, s.Group, s.MinRanks = KindOverlap, groupOverlap, 2
		s.Modes, s.Columns = []Mode{ModeC}, ColumnsOverlap
		s.Body = overlapBody(name)
		RegisterBenchmark(s)
	}
	overlap(IAllreduce, "MPI_Iallreduce compute/communication overlap", BenchmarkSpec{
		Algo: mpi.CollAllreduce, Reduces: true,
	})
	overlap(IBcast, "MPI_Ibcast compute/communication overlap", BenchmarkSpec{
		Algo: mpi.CollBcast,
	})
	overlap(IGather, "MPI_Igather compute/communication overlap", BenchmarkSpec{
		Buffers: buffersGather,
	})
	overlap(IAllgather, "MPI_Iallgather compute/communication overlap", BenchmarkSpec{
		Algo: mpi.CollAllgather, Buffers: buffersGather,
	})
	overlap(IAlltoall, "MPI_Ialltoall compute/communication overlap", BenchmarkSpec{
		Algo: mpi.CollAlltoall, Buffers: buffersAllpair,
	})
	overlap(IReduceScatter, "MPI_Ireduce_scatter compute/communication overlap", BenchmarkSpec{
		Algo: mpi.CollReduceScatter, Reduces: true, Buffers: buffersScatter,
	})
	overlap(IScan, "MPI_Iscan compute/communication overlap", BenchmarkSpec{
		Reduces: true,
	})
}

// runLatency is the ping-pong of the paper's Algorithm 1: rank 0 sends and
// waits for the echo; rank 1 echoes. One-way latency is the averaged
// round-trip halved.
func runLatency(b *Bench) (stats.Row, error) {
	c := b.Comm()
	iters, warmup := b.Iters(), b.Warmup()
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		if c.Rank() == 0 {
			if err := b.Send(1, 1); err != nil {
				return stats.Row{}, err
			}
			if err := b.Recv(1, 1); err != nil {
				return stats.Row{}, err
			}
		} else {
			if err := b.Recv(0, 1); err != nil {
				return stats.Row{}, err
			}
			if err := b.Send(0, 1); err != nil {
				return stats.Row{}, err
			}
		}
	}
	lat := float64(b.Wtime()-start) / float64(2*iters)
	return b.ReduceRow(lat, 0)
}

// runBandwidth: rank 0 streams a window of messages, rank 1 acknowledges
// the window with a 4-byte message, as osu_bw does.
func runBandwidth(b *Bench) (stats.Row, error) {
	c := b.Comm()
	iters, warmup, window := b.Iters(), b.Warmup(), b.Options().Window
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		if c.Rank() == 0 {
			for w := 0; w < window; w++ {
				if err := b.Send(1, 2); err != nil {
					return stats.Row{}, err
				}
			}
			if err := b.AckRecv(1); err != nil {
				return stats.Row{}, err
			}
		} else {
			for w := 0; w < window; w++ {
				if err := b.Recv(0, 2); err != nil {
					return stats.Row{}, err
				}
			}
			if err := b.AckSend(0); err != nil {
				return stats.Row{}, err
			}
		}
	}
	elapsed := float64(b.Wtime() - start) // us
	mbps := float64(b.Size()*window*iters) / elapsed
	return b.ReduceRow(elapsed/float64(iters), mbps)
}

// runBiBandwidth exchanges windows in both directions simultaneously.
func runBiBandwidth(b *Bench) (stats.Row, error) {
	c := b.Comm()
	iters, warmup, window := b.Iters(), b.Warmup(), b.Options().Window
	peer := 1 - c.Rank()
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		for w := 0; w < window; w++ {
			if err := b.Exchange(peer); err != nil {
				return stats.Row{}, err
			}
		}
		if c.Rank() == 0 {
			if err := b.AckRecv(1); err != nil {
				return stats.Row{}, err
			}
		} else if err := b.AckSend(0); err != nil {
			return stats.Row{}, err
		}
	}
	elapsed := float64(b.Wtime() - start)
	mbps := float64(2*b.Size()*window*iters) / elapsed
	return b.ReduceRow(elapsed/float64(iters), mbps)
}

// runMultiLatency: ranks pair up (r, r+p/2) and ping-pong concurrently; the
// reported latency is averaged over pairs, as osu_multi_lat does.
func runMultiLatency(b *Bench) (stats.Row, error) {
	c := b.Comm()
	iters, warmup := b.Iters(), b.Warmup()
	p := c.Size()
	half := p / 2
	var peer int
	sender := c.Rank() < half
	if sender {
		peer = c.Rank() + half
	} else {
		peer = c.Rank() - half
	}
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		if sender {
			if err := b.Send(peer, 3); err != nil {
				return stats.Row{}, err
			}
			if err := b.Recv(peer, 3); err != nil {
				return stats.Row{}, err
			}
		} else {
			if err := b.Recv(peer, 3); err != nil {
				return stats.Row{}, err
			}
			if err := b.Send(peer, 3); err != nil {
				return stats.Row{}, err
			}
		}
	}
	lat := float64(b.Wtime()-start) / float64(2*iters)
	return b.ReduceRow(lat, 0)
}

// collectiveBody wraps runCollective for a named blocking collective.
func collectiveBody(name Benchmark) func(*Bench) (stats.Row, error) {
	return func(b *Bench) (stats.Row, error) { return runCollective(b, name) }
}

// runCollective times the operation per iteration and averages, then
// reduces avg/min/max across ranks, following the OMB collective pipeline
// the paper describes in Section III-C.
func runCollective(b *Bench, name Benchmark) (stats.Row, error) {
	iters, warmup := b.Iters(), b.Warmup()
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var elapsed vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		t0 := b.Wtime()
		if err := b.Collective(name); err != nil {
			return stats.Row{}, err
		}
		if i >= warmup {
			elapsed += b.Wtime() - t0
		}
	}
	lat := float64(elapsed) / float64(iters)
	return b.ReduceRow(lat, 0)
}

// overlapBody wraps runOverlap for a named nonblocking collective.
func overlapBody(name Benchmark) func(*Bench) (stats.Row, error) {
	return func(b *Bench) (stats.Row, error) { return runOverlap(b, name) }
}

// runOverlap is the osu_iallreduce-style overlap benchmark. Phase one
// measures the pure post+Wait latency of the nonblocking collective. Phase
// two calibrates a per-rank virtual compute block to that latency (OSU's
// dummy_compute calibration) and times post → compute → Wait. The row
// reports the total time (avg/min/max across ranks), the pure-communication
// and compute times, and the overlap percentage
//
//	overlap% = 100 * (1 - (t_total - t_compute) / t_pure)
//
// clamped to [0, 100]: 100 means the compute fully hid the communication,
// 0 means they serialized. Everything is virtual time, so the numbers are
// deterministic across runs and under parallel sweeps.
func runOverlap(b *Bench, name Benchmark) (stats.Row, error) {
	c := b.Comm()
	iters, warmup := b.Iters(), b.Warmup()
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	// Phase 1: pure communication.
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		req, err := b.ICollective(name)
		if err != nil {
			return stats.Row{}, err
		}
		if _, err := req.Wait(); err != nil {
			return stats.Row{}, err
		}
	}
	pureUs := float64(b.Wtime()-start) / float64(iters)
	// Per-rank calibrated compute block: the rank's own mean pure latency.
	computeBlock := vtime.Micros(pureUs)
	// Phase 2: post, inject compute, Wait.
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		req, err := b.ICollective(name)
		if err != nil {
			return stats.Row{}, err
		}
		b.Compute(computeBlock)
		if _, err := req.Wait(); err != nil {
			return stats.Row{}, err
		}
	}
	totalUs := float64(b.Wtime()-start) / float64(iters)
	computeUs := float64(computeBlock)
	overlap := 0.0
	if pureUs > 0 {
		overlap = 100 * (1 - (totalUs-computeUs)/pureUs)
		overlap = math.Max(0, math.Min(100, overlap))
	}
	row, err := b.ReduceRow(totalUs, 0)
	if err != nil {
		return stats.Row{}, err
	}
	// Second aggregation round: rank averages of the pure-communication
	// time, the injected compute and the overlap percentage.
	sums := make([]byte, 24)
	self := mpi.EncodeFloat64s([]float64{pureUs, computeUs, overlap})
	if err := c.Reduce(self, sums, mpi.Float64, mpi.OpSum, 0); err != nil {
		return stats.Row{}, err
	}
	if c.Rank() != 0 {
		return stats.Row{}, nil
	}
	v := mpi.DecodeFloat64s(sums)
	np := float64(c.Size())
	row.CommUs, row.ComputeUs, row.OverlapPct = v[0]/np, v[1]/np, v[2]/np
	return row, nil
}
